package main

import (
	"strings"
	"testing"
)

func TestParseConfig(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.n != 9 || c.faults != 2 || c.cut != 8 {
		t.Errorf("defaults = %+v", c)
	}
	if _, err := parseConfig([]string{"-n", "8", "-t", "2"}); err == nil {
		t.Error("accepted n <= 4t")
	}
	if _, err := parseConfig([]string{"-inputs", "bogus"}); err == nil {
		t.Error("accepted unknown input pattern")
	}
	c, err = parseConfig([]string{"-cut", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cut != -1 {
		t.Errorf("cut = %d, want -1 (disabled)", c.cut)
	}
	if _, err := parseConfig([]string{"-transport", "bogus"}); err == nil {
		t.Error("accepted unknown transport")
	}
	c, err = parseConfig([]string{"-transport", "tcp"})
	if err != nil {
		t.Fatal(err)
	}
	if c.rtTicks != 100 {
		t.Errorf("tcp default round-ticks = %d, want 100", c.rtTicks)
	}
	c, err = parseConfig([]string{"-transport", "tcp", "-round-ticks", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if c.rtTicks != 64 {
		t.Errorf("explicit round-ticks = %d, want 64", c.rtTicks)
	}
}

func TestRunTCPTransport(t *testing.T) {
	// The demo committee over real sockets: unanimity must hold exactly as
	// on loopback, and the report must show socket traffic.
	c, err := parseConfig([]string{"-transport", "tcp", "-n", "5", "-t", "1", "-inputs", "unanimous", "-round-ticks", "100"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(c, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "verdict: AGREEMENT") {
		t.Errorf("missing agreement verdict:\n%s", got)
	}
	if strings.Contains(got, "decided 0") || strings.Contains(got, "UNDECIDED") {
		t.Errorf("validity violated:\n%s", got)
	}
	if !strings.Contains(got, "transport: dials=") || strings.Contains(got, "dials=0") {
		t.Errorf("tcp run reported no socket traffic:\n%s", got)
	}
}

func TestRunDecidesUnderFaults(t *testing.T) {
	c, err := parseConfig([]string{"-inputs", "unanimous"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(c, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "verdict: AGREEMENT") {
		t.Errorf("missing agreement verdict:\n%s", got)
	}
	// Unanimous input 1 must survive arbitrary loss: every decision is 1.
	if strings.Contains(got, "decided 0") || strings.Contains(got, "UNDECIDED") {
		t.Errorf("validity violated:\n%s", got)
	}
	if !strings.Contains(got, "partition: node 8") {
		t.Errorf("partition not reported:\n%s", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	c, err := parseConfig([]string{"-inputs", "mixed"})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := run(c, &a); err != nil {
		t.Fatal(err)
	}
	c2, _ := parseConfig([]string{"-inputs", "mixed"})
	if err := run(c2, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same-seed runs diverged:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
}

func TestRunCleanNetwork(t *testing.T) {
	c, err := parseConfig([]string{"-drop", "0", "-cut", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(c, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "dropped(random=0 partition=0)") {
		t.Errorf("clean network dropped envelopes:\n%s", out.String())
	}
}
