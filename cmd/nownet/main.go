// Command nownet demonstrates the message-passing transport runtime: a
// phase-king committee runs over the deterministic loopback network in
// reliable (request/ack) mode while the command injects link loss and a
// temporary partition, and the protocol still decides — dropped envelopes
// degrade into retransmissions with capped backoff, never into a stuck
// round.
//
// Examples:
//
//	nownet                          # 9 nodes, 15% loss, node 8 partitioned
//	nownet -n 13 -t 3 -drop 0.3
//	nownet -drop 0 -cut -1          # clean network, no partition
//	nownet -transport tcp           # same committee over real sockets on localhost
//
// With -transport tcp the committee runs over the wall-clock TCP
// transport instead: every message crosses a real localhost socket and
// rounds are paced in milliseconds. Fault injection (-drop, -cut) is a
// loopback-net feature and is inert there.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/nownet"
	"nowover/internal/runtime"
)

// config is the parsed command line.
type config struct {
	n         int
	faults    int
	seed      uint64
	drop      float64
	cut       int64 // partitioned node id, -1 to disable
	healAt    int64
	inputs    string
	rtTicks   int64
	transport string
	rtSet     bool // -round-ticks given explicitly
}

// parseConfig parses the command line and validates the committee shape.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("nownet", flag.ContinueOnError)
	c := &config{}
	fs.IntVar(&c.n, "n", 9, "committee size")
	fs.IntVar(&c.faults, "t", 2, "max Byzantine faults tolerated (needs n > 4t)")
	fs.Uint64Var(&c.seed, "seed", 11, "seed for the per-link fault streams")
	fs.Float64Var(&c.drop, "drop", 0.15, "per-envelope drop probability on every link")
	fs.Int64Var(&c.cut, "cut", -1<<62, "node to partition away at tick 0 (default: highest id; -1 disables)")
	fs.Int64Var(&c.healAt, "heal", 500, "tick at which the partition heals")
	fs.StringVar(&c.inputs, "inputs", "mixed", "honest inputs: mixed | unanimous")
	fs.Int64Var(&c.rtTicks, "round-ticks", 1024, "length of one protocol round (virtual ticks on loopback, milliseconds on tcp; tcp defaults to 100)")
	fs.StringVar(&c.transport, "transport", "loopback", "transport: loopback (deterministic, fault-injectable) | tcp (real sockets on localhost)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "round-ticks" {
			c.rtSet = true
		}
	})
	if c.transport != "loopback" && c.transport != "tcp" {
		return nil, fmt.Errorf("unknown -transport %q", c.transport)
	}
	if c.transport == "tcp" && !c.rtSet {
		c.rtTicks = 100
	}
	if c.n <= 4*c.faults {
		return nil, fmt.Errorf("phase king needs n > 4t, got n=%d t=%d", c.n, c.faults)
	}
	if c.inputs != "mixed" && c.inputs != "unanimous" {
		return nil, fmt.Errorf("unknown -inputs %q", c.inputs)
	}
	if c.cut == -1<<62 {
		c.cut = int64(c.n - 1)
	}
	return c, nil
}

// run executes the demo scenario and writes the report.
func run(c *config, out io.Writer) error {
	rounds := 2*(c.faults+1) + 1
	cfg := runtime.PhaseKingConfig{MaxFaults: c.faults}
	for i := 0; i < c.n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	procs := make(map[ids.NodeID]runtime.Process, c.n)
	nodes := make(map[ids.NodeID]*runtime.PhaseKingNode, c.n)
	for i := 0; i < c.n; i++ {
		id := ids.NodeID(i)
		input := int64(1)
		if c.inputs == "mixed" {
			input = int64(i % 2)
		}
		node := runtime.NewPhaseKingNode(cfg, id, input)
		procs[id] = node
		nodes[id] = node
	}

	hostCfg := nownet.HostConfig{
		Rounds:     rounds,
		RoundTicks: c.rtTicks,
		Mode:       nownet.ModeReliable,
		Policy:     nownet.RetryPolicy{Timeout: 4, Retries: 4, Backoff: 2, Cap: 32},
		Class:      metrics.ClassAgreement,
	}
	var cluster *nownet.Cluster
	var err error
	var transportLine string
	if c.transport == "tcp" {
		// Real sockets on localhost: one transport hosts the whole
		// committee, every member's address mapped to the shared listener,
		// so each protocol message still crosses the loopback interface.
		// Fault injection is a loopback-net feature; -drop/-cut are inert.
		tr, terr := nownet.NewTCP(nownet.TCPConfig{})
		if terr != nil {
			return terr
		}
		defer tr.Close()
		for i := 0; i < c.n; i++ {
			tr.SetPeer(ids.NodeID(i), tr.Addr())
		}
		hostCfg.Policy = nownet.RetryPolicy{Timeout: c.rtTicks / 4, Retries: 3, Backoff: 2, Cap: c.rtTicks}
		cluster, err = nownet.NewCluster(tr, procs, hostCfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "nownet: phase king, n=%d t=%d rounds=%d, transport=tcp %s (fault flags inert)\n",
			c.n, c.faults, rounds, tr.Addr())
		cluster.Start()
		cluster.Wait()
		s := tr.Stats()
		transportLine = fmt.Sprintf("transport: dials=%d accepts=%d sent=%d delivered=%d resync_bytes=%d",
			s.Dials, s.Accepts, s.Sent, s.Delivered, s.ResyncBytes)
	} else {
		net := nownet.NewLoopback(nownet.Config{
			Seed: c.seed,
			Link: nownet.LinkConfig{Latency: 1, Drop: c.drop},
		})
		defer net.Close()
		cluster, err = nownet.NewCluster(net, procs, hostCfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "nownet: phase king, n=%d t=%d rounds=%d, drop=%.2f seed=%d\n",
			c.n, c.faults, rounds, c.drop, c.seed)
		if c.cut >= 0 {
			net.SetPartition(map[ids.NodeID]int{ids.NodeID(c.cut): 1})
			net.At(c.healAt, func() { net.SetPartition(nil) })
			fmt.Fprintf(out, "partition: node %d cut at tick 0, healed at tick %d\n", c.cut, c.healAt)
		}
		cluster.Start()
		net.Run()
		s := net.Stats()
		transportLine = fmt.Sprintf("transport: sent=%d delivered=%d dropped(random=%d partition=%d)",
			s.Sent, s.Delivered, s.DroppedRandom, s.DroppedPartition)
	}

	agree := true
	var first int64
	for i := 0; i < c.n; i++ {
		id := ids.NodeID(i)
		v, ok := nodes[id].Decision()
		if !ok {
			fmt.Fprintf(out, "node %d: UNDECIDED\n", i)
			agree = false
			continue
		}
		fmt.Fprintf(out, "node %d: decided %d\n", i, v)
		if i == 0 {
			first = v
		} else if v != first {
			agree = false
		}
	}
	ns, hs := cluster.Stats()
	led := cluster.Ledger()
	fmt.Fprintln(out, transportLine)
	fmt.Fprintf(out, "runtime: emitted=%d retries=%d timeouts=%d undelivered=%d duplicates=%d stale=%d\n",
		hs.Emitted, ns.Retries, ns.Timeouts, hs.Undelivered, hs.Duplicates, hs.Stale)
	fmt.Fprintf(out, "ledger: agreement=%d transport-overhead=%d\n",
		led.MessagesBy(metrics.ClassAgreement), led.MessagesBy(metrics.ClassTransport))
	if !agree {
		fmt.Fprintln(out, "verdict: DISAGREEMENT")
		return fmt.Errorf("committee failed to agree")
	}
	if c.transport == "tcp" {
		fmt.Fprintln(out, "verdict: AGREEMENT over real sockets")
	} else {
		fmt.Fprintln(out, "verdict: AGREEMENT despite injected faults")
	}
	return nil
}

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
