package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := parseConfig(nil)
	if err != nil {
		t.Fatalf("parseConfig(nil): %v", err)
	}
	if cfg.fmtGate || cfg.rules || cfg.dir != "." {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if want := []string{"./..."}; !reflect.DeepEqual(cfg.patterns, want) {
		t.Errorf("default patterns = %v, want %v", cfg.patterns, want)
	}
}

func TestParseConfigExplicit(t *testing.T) {
	cfg, err := parseConfig([]string{"-fmt", "-C", "sub", "./internal/core", "./internal/ba"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.fmtGate || cfg.dir != "sub" {
		t.Errorf("flags not parsed: %+v", cfg)
	}
	if want := []string{"./internal/core", "./internal/ba"}; !reflect.DeepEqual(cfg.patterns, want) {
		t.Errorf("patterns = %v, want %v", cfg.patterns, want)
	}
}

func TestParseConfigBadFlag(t *testing.T) {
	if _, err := parseConfig([]string{"-no-such-flag"}); err == nil {
		t.Error("want error for unknown flag")
	}
}

func TestRunRulesListing(t *testing.T) {
	cfg, err := parseConfig([]string{"-rules"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(cfg, &out, &out)
	if err != nil || code != 0 {
		t.Fatalf("run(-rules) = %d, %v", code, err)
	}
	for _, rule := range []string{"map-order", "rng-discipline", "float-fold-order", "shard-lock-order", "class-exhaustive"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules listing missing %q:\n%s", rule, out.String())
		}
	}
}

// TestRunCleanTree is the CLI-level self-check: the repo lints clean and
// the exit code is 0.
func TestRunCleanTree(t *testing.T) {
	cfg, err := parseConfig([]string{"-C", "../.."})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(cfg, &out, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("repo should lint clean, exit %d:\n%s", code, out.String())
	}
}
