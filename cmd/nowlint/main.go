// Command nowlint runs the determinism-contract static-analysis suite
// (internal/lint) over the module: the mechanical enforcement of the
// repo's load-bearing invariant that simulation output is byte-identical
// at any parallelism or shard count.
//
// Examples:
//
//	nowlint ./...            # the full suite over every package
//	nowlint ./internal/core  # one package (plus nothing else)
//	nowlint -fmt ./...       # the whole local static gate: gofmt -l,
//	                         # go vet, then the analyzers
//	nowlint -rules           # list the rules and suppression keys
//
// Diagnostics print as `file:line: [rule] message` and any finding makes
// the exit status nonzero, so `go run ./cmd/nowlint ./...` is a CI gate.
// Suppressions are //nowlint:<key> comments with mandatory written
// justifications; see the README's determinism-contract section.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"nowover/internal/lint"
)

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		os.Exit(2)
	}
	code, err := run(cfg, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// config is the parsed command line.
type config struct {
	fmtGate  bool
	rules    bool
	dir      string
	patterns []string
}

// parseConfig interprets the command line; patterns default to ./... so
// the bare command lints the whole module.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("nowlint", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cfg := &config{}
	fs.BoolVar(&cfg.fmtGate, "fmt", false, "also run gofmt -l and go vet first (the full local static gate)")
	fs.BoolVar(&cfg.rules, "rules", false, "list the analyzers and their suppression keys, then exit")
	fs.StringVar(&cfg.dir, "C", ".", "directory to run in (the module root)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg.patterns = fs.Args()
	if len(cfg.patterns) == 0 {
		cfg.patterns = []string{"./..."}
	}
	return cfg, nil
}

// run executes the gate, returning the process exit code: 0 clean, 1 when
// any diagnostic (or gofmt/vet failure) fired.
func run(cfg *config, stdout, stderr io.Writer) (int, error) {
	if cfg.rules {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s (suppress: //nowlint:%s <reason>)  %s\n", a.Name, a.Key, a.Doc)
		}
		return 0, nil
	}

	failed := false
	if cfg.fmtGate {
		dirty, err := gofmtList(cfg.dir)
		if err != nil {
			return 0, err
		}
		for _, f := range dirty {
			fmt.Fprintf(stdout, "%s:1: [gofmt] file is not gofmt-formatted\n", f)
			failed = true
		}
		vet := exec.Command("go", append([]string{"vet"}, cfg.patterns...)...)
		vet.Dir = cfg.dir
		vet.Stdout = stderr
		vet.Stderr = stderr
		if err := vet.Run(); err != nil {
			if _, isExit := err.(*exec.ExitError); !isExit {
				return 0, fmt.Errorf("go vet: %v", err)
			}
			failed = true
		}
	}

	pkgs, _, err := lint.Load(cfg.dir, cfg.patterns...)
	if err != nil {
		return 0, err
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		d.Pos.Filename = relPath(cfg.dir, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
		failed = true
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

// gofmtList runs gofmt -l over the directory tree, resolving the binary
// from $PATH with a $GOROOT/bin fallback (the toolchain always ships it).
func gofmtList(dir string) ([]string, error) {
	bin, err := exec.LookPath("gofmt")
	if err != nil {
		out, gerr := exec.Command("go", "env", "GOROOT").Output()
		if gerr != nil {
			return nil, fmt.Errorf("gofmt not found: %v", err)
		}
		bin = filepath.Join(strings.TrimSpace(string(out)), "bin", "gofmt")
	}
	cmd := exec.Command(bin, "-l", ".")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("gofmt -l: %v", err)
	}
	var files []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			files = append(files, line)
		}
	}
	return files, nil
}

// relPath shortens absolute diagnostic paths relative to the lint root.
func relPath(dir, path string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(abs, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
