package main

import (
	"strings"
	"testing"

	"nowover"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatalf("parseConfig(nil): %v", err)
	}
	if c.maxN != 4096 {
		t.Errorf("N = %d, want 4096", c.maxN)
	}
	if c.n0 != 1024 {
		t.Errorf("derived n0 = %d, want N/4 = 1024", c.n0)
	}
	if c.every != 200 {
		t.Errorf("derived report cadence = %d, want steps/10 = 200", c.every)
	}
	if c.runs != 1 || c.reportSet {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestParseConfigShortRunCadence(t *testing.T) {
	c, err := parseConfig([]string{"-steps", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if c.every != 1 {
		t.Errorf("cadence for 5 steps = %d, want 1", c.every)
	}
}

func TestParseConfigExplicitReport(t *testing.T) {
	c, err := parseConfig([]string{"-report", "50"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.reportSet || c.every != 50 {
		t.Errorf("reportSet=%v every=%d, want true/50", c.reportSet, c.every)
	}
}

func TestParseConfigBadRuns(t *testing.T) {
	_, err := parseConfig([]string{"-runs", "0"})
	if err == nil || !strings.Contains(err.Error(), "-runs") {
		t.Errorf("want -runs validation error, got %v", err)
	}
}

func TestSimConfigSelectionErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-schedule", "wobble"}, "unknown schedule"},
		{[]string{"-attack", "teleport"}, "unknown attack"},
		{[]string{"-merge", "blend"}, "unknown merge strategy"},
	} {
		c, err := parseConfig(tc.args)
		if err != nil {
			t.Fatalf("parseConfig(%v): %v", tc.args, err)
		}
		if _, err := c.simConfig(1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("simConfig(%v) error = %v, want containing %q", tc.args, err, tc.want)
		}
	}
}

func TestSimConfigNoShuffleAblation(t *testing.T) {
	c, err := parseConfig([]string{"-noshuffle"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := c.simConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Core.ExchangeOnJoin || cfg.Core.ExchangeOnLeave || cfg.Core.LeaveCascade {
		t.Error("-noshuffle should disable exchange-on-join, exchange-on-leave and cascades")
	}
}

func TestSimConfigScheduleAndAttack(t *testing.T) {
	c, err := parseConfig([]string{"-schedule", "grow", "-attack", "joinleave"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := c.simConfig(9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.Core.Seed != 9 {
		t.Errorf("replica seed not threaded: sim %d core %d", cfg.Seed, cfg.Core.Seed)
	}
	if _, ok := cfg.Schedule.(nowover.Linear); !ok {
		t.Errorf("grow schedule = %T, want nowover.Linear", cfg.Schedule)
	}
	if _, ok := cfg.Strategy.(*nowover.JoinLeaveAttack); !ok {
		t.Errorf("strategy = %T, want *nowover.JoinLeaveAttack", cfg.Strategy)
	}
	if !cfg.InstallHijacker {
		t.Error("joinleave attack should install the walk hijacker")
	}
}
