// Command nowsim runs one NOW churn simulation and prints the invariant
// timeline: population, cluster counts, worst Byzantine fraction, overlay
// degrees — the live view of Theorem 3 holding (or, with ablation flags,
// failing).
//
// With -runs R > 1 it instead fans R independent replicas of the same
// scenario (seeds seed, seed+1, ..., seed+R-1) across the experiment
// worker pool and prints one summary line per replica plus an aggregate
// verdict — the Monte-Carlo view of the same invariant.
//
// Examples:
//
//	nowsim -N 4096 -n0 1024 -tau 0.2 -steps 4000
//	nowsim -N 4096 -n0 512 -tau 0.25 -schedule grow -steps 3000
//	nowsim -N 2048 -tau 0.3 -attack joinleave -noshuffle -steps 2000
//	nowsim -N 2048 -tau 0.25 -steps 2000 -runs 16        # replica sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"nowover"
)

// config is the parsed and defaulted command line: n0 and the audit
// cadence are resolved, the replica count validated.
type config struct {
	maxN       int
	n0         int
	tau        float64
	steps      int
	seed       uint64
	k          float64
	schedule   string
	attack     string
	noShuffle  bool
	merge      string
	every      int
	runs       int
	parallel   int
	shards     int
	opsPerStep int
	grouped    bool
	exact      bool
	// reportSet records whether -report was given explicitly, so sweep
	// mode can warn that it will be ignored.
	reportSet bool
}

// parseConfig parses the command line and applies the derived defaults.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("nowsim", flag.ContinueOnError)
	c := &config{}
	fs.IntVar(&c.maxN, "N", 4096, "name-space bound N (max network size)")
	fs.IntVar(&c.n0, "n0", 0, "initial size (default N/4)")
	fs.Float64Var(&c.tau, "tau", 0.20, "adversary corruption budget (fraction)")
	fs.IntVar(&c.steps, "steps", 2000, "time steps to simulate")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	fs.Float64Var(&c.k, "k", 2, "cluster size security parameter K")
	fs.StringVar(&c.schedule, "schedule", "steady", "size schedule: steady | grow | shrink | oscillate | flash")
	fs.StringVar(&c.attack, "attack", "none", "adversary strategy: none | joinleave | dos")
	fs.BoolVar(&c.noShuffle, "noshuffle", false, "ablation: disable all shuffling (exchange on join/leave, cascades)")
	fs.StringVar(&c.merge, "merge", "absorb", "merge strategy: absorb | rejoin")
	fs.IntVar(&c.every, "report", 0, "print an audit every k steps (default steps/10)")
	fs.IntVar(&c.runs, "runs", 1, "independent replicas to run (seeds seed..seed+runs-1)")
	fs.IntVar(&c.parallel, "parallel", 0, "worker count for -runs: 1 = serial, 0 = auto (NOWBENCH_PARALLEL, then GOMAXPROCS)")
	fs.IntVar(&c.shards, "world-shards", 1, "lockable world-state segments: 1 = serial layout, n > 1 enables intra-world concurrency (results identical at any value)")
	fs.IntVar(&c.opsPerStep, "ops-per-step", 1, "operations per time step: > 1 batches them through the concurrent op scheduler (incompatible with -attack hijacking)")
	fs.BoolVar(&c.grouped, "grouped-cascade", false, "batch each leave's cascade into one grouped shuffle round over the receiver set (~|C| write footprint instead of ~|C|^2)")
	fs.BoolVar(&c.exact, "exact-samples", false, "retain full per-operation cost histories instead of fixed-memory sketches (pre-sketch output byte for byte; memory grows with -steps)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "report" {
			c.reportSet = true
		}
	})
	if c.n0 == 0 {
		c.n0 = c.maxN / 4
	}
	if c.every == 0 {
		c.every = c.steps / 10
		if c.every == 0 {
			c.every = 1
		}
	}
	if c.runs < 1 {
		return nil, fmt.Errorf("-runs must be >= 1, got %d", c.runs)
	}
	return c, nil
}

// simConfig builds the simulation config for one replica seed. Selection
// errors (unknown schedule, attack or merge strategy) surface here.
func (c *config) simConfig(runSeed uint64) (nowover.SimConfig, error) {
	cfg := nowover.SimConfig{
		Core:          nowover.DefaultConfig(c.maxN),
		InitialSize:   c.n0,
		Tau:           c.tau,
		Steps:         c.steps,
		Seed:          runSeed,
		AuditEvery:    c.every,
		SampleOpCosts: true,
		ExactSamples:  c.exact,
	}
	cfg.Core.Seed = runSeed
	cfg.Core.K = c.k
	cfg.Core.Shards = c.shards
	cfg.Core.GroupedCascade = c.grouped
	cfg.OpsPerStep = c.opsPerStep
	if c.noShuffle {
		cfg.Core.ExchangeOnJoin = false
		cfg.Core.ExchangeOnLeave = false
		cfg.Core.LeaveCascade = false
	}
	switch c.merge {
	case "absorb":
		cfg.Core.MergeStrategy = nowover.MergeAbsorbRandom
	case "rejoin":
		cfg.Core.MergeStrategy = nowover.MergeRejoinAll
	default:
		return cfg, fmt.Errorf("unknown merge strategy %q", c.merge)
	}

	switch c.schedule {
	case "steady":
		cfg.Schedule = nowover.Steady{Size: c.n0}
	case "grow":
		cfg.Schedule = nowover.Linear{From: c.n0, To: c.maxN, Steps: c.steps}
	case "shrink":
		cfg.Schedule = nowover.Linear{From: c.n0, To: c.n0 / 4, Steps: c.steps}
	case "oscillate":
		cfg.Schedule = nowover.Oscillate{Lo: c.n0 / 2, Hi: c.n0 * 2, Period: c.steps / 2}
	case "flash":
		cfg.Schedule = nowover.FlashCrowd{Base: c.n0, Peak: c.n0 * 2, SpikeAt: c.steps / 3, SpikeLen: c.steps / 3}
	default:
		return cfg, fmt.Errorf("unknown schedule %q", c.schedule)
	}

	budget := nowover.Budget{Tau: c.tau}
	switch c.attack {
	case "none":
		// default RandomChurn
	case "joinleave":
		cfg.Strategy = &nowover.JoinLeaveAttack{Budget: budget}
		cfg.InstallHijacker = true
	case "dos":
		cfg.Strategy = &nowover.DOSAttack{Budget: budget}
		cfg.InstallHijacker = true
	default:
		return cfg, fmt.Errorf("unknown attack %q", c.attack)
	}
	return cfg, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	c, err := parseConfig(args)
	if err != nil {
		return err
	}
	if c.runs > 1 && c.reportSet {
		fmt.Fprintln(os.Stderr, "nowsim: -report is ignored with -runs > 1 (replica sweeps print summaries, not audit timelines)")
	}
	nowover.SetParallelism(c.parallel)

	// Validate the flag set once before fanning out.
	refCfg, err := c.simConfig(c.seed)
	if err != nil {
		return err
	}

	fmt.Printf("nowsim: N=%d n0=%d tau=%.2f K=%.1f steps=%d schedule=%s attack=%s shuffle=%v merge=%s shards=%d ops/step=%d grouped-cascade=%v\n",
		c.maxN, c.n0, c.tau, c.k, c.steps, c.schedule, c.attack, !c.noShuffle, c.merge, c.shards, c.opsPerStep, c.grouped)
	fmt.Printf("cluster size target %d (split >%d, merge <%d), overlay degree target %d (cap %d)\n\n",
		refCfg.Core.TargetClusterSize(), refCfg.Core.SplitThreshold(), refCfg.Core.MergeThreshold(),
		refCfg.Core.TargetDegree(), refCfg.Core.DegreeCap())

	if c.runs > 1 {
		return runReplicas(c.simConfig, c.seed, c.runs, c.exact)
	}

	res, err := nowover.Simulate(refCfg)
	if err != nil {
		return err
	}

	fmt.Println("step timeline (sampled):")
	for i, a := range res.Audits {
		fmt.Printf("  t=%-6d %s\n", i*c.every, a)
	}
	fmt.Printf("\nfinal: %s\n", res.Final.String())
	fmt.Printf("stats: joins=%d leaves=%d splits=%d merges=%d swaps=%d\n",
		res.Stats.Joins, res.Stats.Leaves, res.Stats.Splits, res.Stats.Merges, res.Stats.Swaps)
	fmt.Printf("security: maxByzFracEver=%.3f degradedEvents=%d capturedEvents=%d hijackedWalks=%d\n",
		res.Stats.MaxByzFractionEver, res.Stats.DegradedEvents, res.Stats.CapturedEvents,
		res.Stats.HijackedWalks)
	fmt.Printf("degraded steps: %d/%d  captured steps: %d/%d\n",
		res.DegradedSteps, res.Steps, res.CapturedSteps, res.Steps)
	if res.BatchedOps > 0 {
		fmt.Printf("scheduler: %d batched ops, %d deferred to the serial tail (%d of those skipped: target vanished)\n",
			res.BatchedOps, res.DeferredOps, res.SkippedOps)
	}
	fmt.Printf("size range: [%d, %d]\n", res.TroughSize, res.PeakSize)
	fmt.Printf("cost: %v\n", res.TotalCost)
	if res.OpCosts.JoinMsgs.N() > 0 {
		fmt.Printf("per-op: join mean=%.0f p95=%.0f msgs; leave mean=%.0f p95=%.0f msgs\n",
			res.OpCosts.JoinMsgs.Mean(), res.OpCosts.JoinMsgs.Quantile(0.95),
			res.OpCosts.LeaveMsgs.Mean(), res.OpCosts.LeaveMsgs.Quantile(0.95))
	}
	if !c.exact {
		printClassHists(&res.OpCosts)
	}
	verdict := "HELD"
	if res.Stats.CapturedEvents > 0 {
		verdict = "VIOLATED (cluster captured)"
	}
	fmt.Printf("\nTheorem 3 invariant: %s\n", verdict)
	return nil
}

// printClassHists summarizes the per-traffic-class message histograms of
// the sampled operations (sketch mode only): count, rank-exact p50/p99
// located to within one power of two (the log-scale bucket width). Every
// histogram covers ALL sampled ops (zero charges included); classes no
// operation used are omitted from the printout.
func printClassHists(oc *nowover.SimOpCosts) {
	printed := false
	for c := 0; c < nowover.NumTrafficClasses; c++ {
		h := &oc.ClassMsgs[c]
		if h.N() == h.Bucket(0) {
			continue // no op charged this class anything
		}
		if !printed {
			fmt.Println("per-op msgs by class (log2 buckets over all sampled ops, p50/p99 are bucket upper bounds):")
			printed = true
		}
		fmt.Printf("  %-13s n=%-7d p50<%.3g p99<%.3g\n",
			nowover.TrafficClass(c), h.N(), h.Quantile(0.5), h.Quantile(0.99))
	}
}

// runReplicas fans runs independent replicas across the experiment worker
// pool (each with its own derived seed and world) and prints per-replica
// summaries in seed order plus the aggregate Theorem 3 verdict.
func runReplicas(makeConfig func(uint64) (nowover.SimConfig, error), seed uint64, runs int, exact bool) error {
	fmt.Printf("replica sweep: %d runs on %d worker(s)\n\n", runs, nowover.Parallelism())
	results := make([]*nowover.SimResult, runs)
	err := nowover.ForEachRun(runs, func(i int) error {
		cfg, err := makeConfig(seed + uint64(i))
		if err != nil {
			return err
		}
		cfg.AuditEvery = 0 // timelines are per-run noise in sweep mode
		res, err := nowover.Simulate(cfg)
		if err != nil {
			return fmt.Errorf("replica %d (seed %d): %w", i, seed+uint64(i), err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	captured := 0
	degraded := 0
	worst := 0.0
	for i, res := range results {
		verdict := "HELD"
		if res.Stats.CapturedEvents > 0 {
			verdict = "VIOLATED"
			captured++
		}
		if res.Stats.DegradedEvents > 0 {
			degraded++
		}
		if res.Stats.MaxByzFractionEver > worst {
			worst = res.Stats.MaxByzFractionEver
		}
		fmt.Printf("  run %-3d seed=%-6d maxByzFrac=%.3f degraded=%-4d captured=%-4d dwell=%4.1f%%/%4.1f%%  %s\n",
			i, seed+uint64(i), res.Stats.MaxByzFractionEver,
			res.Stats.DegradedEvents, res.Stats.CapturedEvents,
			100*float64(res.DegradedSteps)/float64(res.Steps),
			100*float64(res.CapturedSteps)/float64(res.Steps),
			verdict)
	}
	// Cross-replica per-op cost distribution: per-replica accumulators
	// merged in seed (submission) order, so the aggregate is deterministic
	// at any -parallel setting.
	agg := nowover.NewSimOpCosts(exact)
	for _, res := range results {
		agg.Merge(&res.OpCosts)
	}
	if agg.JoinMsgs.N() > 0 {
		fmt.Printf("\nper-op across replicas: join n=%d mean=%.0f p50=%.0f p95=%.0f; leave n=%d mean=%.0f p50=%.0f p95=%.0f msgs\n",
			agg.JoinMsgs.N(), agg.JoinMsgs.Mean(), agg.JoinMsgs.Quantile(0.5), agg.JoinMsgs.Quantile(0.95),
			agg.LeaveMsgs.N(), agg.LeaveMsgs.Mean(), agg.LeaveMsgs.Quantile(0.5), agg.LeaveMsgs.Quantile(0.95))
	}
	fmt.Printf("\naggregate: %d/%d runs captured, %d/%d degraded, worst byz fraction %.3f\n",
		captured, runs, degraded, runs, worst)
	verdict := "HELD"
	if captured > 0 {
		verdict = fmt.Sprintf("VIOLATED in %d/%d runs", captured, runs)
	}
	fmt.Printf("Theorem 3 invariant across replicas: %s\n", verdict)
	return nil
}
