// Command nowsim runs one NOW churn simulation and prints the invariant
// timeline: population, cluster counts, worst Byzantine fraction, overlay
// degrees — the live view of Theorem 3 holding (or, with ablation flags,
// failing).
//
// With -runs R > 1 it instead fans R independent replicas of the same
// scenario (seeds seed, seed+1, ..., seed+R-1) across the experiment
// worker pool and prints one summary line per replica plus an aggregate
// verdict — the Monte-Carlo view of the same invariant.
//
// Examples:
//
//	nowsim -N 4096 -n0 1024 -tau 0.2 -steps 4000
//	nowsim -N 4096 -n0 512 -tau 0.25 -schedule grow -steps 3000
//	nowsim -N 2048 -tau 0.3 -attack joinleave -noshuffle -steps 2000
//	nowsim -N 2048 -tau 0.25 -steps 2000 -runs 16        # replica sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"nowover"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nowsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		maxN       = flag.Int("N", 4096, "name-space bound N (max network size)")
		n0         = flag.Int("n0", 0, "initial size (default N/4)")
		tau        = flag.Float64("tau", 0.20, "adversary corruption budget (fraction)")
		steps      = flag.Int("steps", 2000, "time steps to simulate")
		seed       = flag.Uint64("seed", 1, "random seed")
		k          = flag.Float64("k", 2, "cluster size security parameter K")
		schedule   = flag.String("schedule", "steady", "size schedule: steady | grow | shrink | oscillate | flash")
		attack     = flag.String("attack", "none", "adversary strategy: none | joinleave | dos")
		noShuffle  = flag.Bool("noshuffle", false, "ablation: disable all shuffling (exchange on join/leave, cascades)")
		merge      = flag.String("merge", "absorb", "merge strategy: absorb | rejoin")
		every      = flag.Int("report", 0, "print an audit every k steps (default steps/10)")
		runs       = flag.Int("runs", 1, "independent replicas to run (seeds seed..seed+runs-1)")
		parallel   = flag.Int("parallel", 0, "worker count for -runs: 1 = serial, 0 = auto (NOWBENCH_PARALLEL, then GOMAXPROCS)")
		shards     = flag.Int("world-shards", 1, "lockable world-state segments: 1 = serial layout, n > 1 enables intra-world concurrency (results identical at any value)")
		opsPerStep = flag.Int("ops-per-step", 1, "operations per time step: > 1 batches them through the concurrent op scheduler (incompatible with -attack hijacking)")
		grouped    = flag.Bool("grouped-cascade", false, "batch each leave's cascade into one grouped shuffle round over the receiver set (~|C| write footprint instead of ~|C|^2)")
		exact      = flag.Bool("exact-samples", false, "retain full per-operation cost histories instead of fixed-memory sketches (pre-sketch output byte for byte; memory grows with -steps)")
	)
	flag.Parse()

	if *n0 == 0 {
		*n0 = *maxN / 4
	}
	if *every == 0 {
		*every = *steps / 10
		if *every == 0 {
			*every = 1
		}
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be >= 1, got %d", *runs)
	}
	if *runs > 1 {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "report" {
				fmt.Fprintln(os.Stderr, "nowsim: -report is ignored with -runs > 1 (replica sweeps print summaries, not audit timelines)")
			}
		})
	}
	nowover.SetParallelism(*parallel)

	makeConfig := func(runSeed uint64) (nowover.SimConfig, error) {
		cfg := nowover.SimConfig{
			Core:          nowover.DefaultConfig(*maxN),
			InitialSize:   *n0,
			Tau:           *tau,
			Steps:         *steps,
			Seed:          runSeed,
			AuditEvery:    *every,
			SampleOpCosts: true,
			ExactSamples:  *exact,
		}
		cfg.Core.Seed = runSeed
		cfg.Core.K = *k
		cfg.Core.Shards = *shards
		cfg.Core.GroupedCascade = *grouped
		cfg.OpsPerStep = *opsPerStep
		if *noShuffle {
			cfg.Core.ExchangeOnJoin = false
			cfg.Core.ExchangeOnLeave = false
			cfg.Core.LeaveCascade = false
		}
		switch *merge {
		case "absorb":
			cfg.Core.MergeStrategy = nowover.MergeAbsorbRandom
		case "rejoin":
			cfg.Core.MergeStrategy = nowover.MergeRejoinAll
		default:
			return cfg, fmt.Errorf("unknown merge strategy %q", *merge)
		}

		switch *schedule {
		case "steady":
			cfg.Schedule = nowover.Steady{Size: *n0}
		case "grow":
			cfg.Schedule = nowover.Linear{From: *n0, To: *maxN, Steps: *steps}
		case "shrink":
			cfg.Schedule = nowover.Linear{From: *n0, To: *n0 / 4, Steps: *steps}
		case "oscillate":
			cfg.Schedule = nowover.Oscillate{Lo: *n0 / 2, Hi: *n0 * 2, Period: *steps / 2}
		case "flash":
			cfg.Schedule = nowover.FlashCrowd{Base: *n0, Peak: *n0 * 2, SpikeAt: *steps / 3, SpikeLen: *steps / 3}
		default:
			return cfg, fmt.Errorf("unknown schedule %q", *schedule)
		}

		budget := nowover.Budget{Tau: *tau}
		switch *attack {
		case "none":
			// default RandomChurn
		case "joinleave":
			cfg.Strategy = &nowover.JoinLeaveAttack{Budget: budget}
			cfg.InstallHijacker = true
		case "dos":
			cfg.Strategy = &nowover.DOSAttack{Budget: budget}
			cfg.InstallHijacker = true
		default:
			return cfg, fmt.Errorf("unknown attack %q", *attack)
		}
		return cfg, nil
	}

	// Validate the flag set once before fanning out.
	refCfg, err := makeConfig(*seed)
	if err != nil {
		return err
	}

	fmt.Printf("nowsim: N=%d n0=%d tau=%.2f K=%.1f steps=%d schedule=%s attack=%s shuffle=%v merge=%s shards=%d ops/step=%d grouped-cascade=%v\n",
		*maxN, *n0, *tau, *k, *steps, *schedule, *attack, !*noShuffle, *merge, *shards, *opsPerStep, *grouped)
	fmt.Printf("cluster size target %d (split >%d, merge <%d), overlay degree target %d (cap %d)\n\n",
		refCfg.Core.TargetClusterSize(), refCfg.Core.SplitThreshold(), refCfg.Core.MergeThreshold(),
		refCfg.Core.TargetDegree(), refCfg.Core.DegreeCap())

	if *runs > 1 {
		return runReplicas(makeConfig, *seed, *runs, *exact)
	}

	res, err := nowover.Simulate(refCfg)
	if err != nil {
		return err
	}

	fmt.Println("step timeline (sampled):")
	for i, a := range res.Audits {
		fmt.Printf("  t=%-6d %s\n", i**every, a)
	}
	fmt.Printf("\nfinal: %s\n", res.Final.String())
	fmt.Printf("stats: joins=%d leaves=%d splits=%d merges=%d swaps=%d\n",
		res.Stats.Joins, res.Stats.Leaves, res.Stats.Splits, res.Stats.Merges, res.Stats.Swaps)
	fmt.Printf("security: maxByzFracEver=%.3f degradedEvents=%d capturedEvents=%d hijackedWalks=%d\n",
		res.Stats.MaxByzFractionEver, res.Stats.DegradedEvents, res.Stats.CapturedEvents,
		res.Stats.HijackedWalks)
	fmt.Printf("degraded steps: %d/%d  captured steps: %d/%d\n",
		res.DegradedSteps, res.Steps, res.CapturedSteps, res.Steps)
	if res.BatchedOps > 0 {
		fmt.Printf("scheduler: %d batched ops, %d deferred to the serial tail (%d of those skipped: target vanished)\n",
			res.BatchedOps, res.DeferredOps, res.SkippedOps)
	}
	fmt.Printf("size range: [%d, %d]\n", res.TroughSize, res.PeakSize)
	fmt.Printf("cost: %v\n", res.TotalCost)
	if res.OpCosts.JoinMsgs.N() > 0 {
		fmt.Printf("per-op: join mean=%.0f p95=%.0f msgs; leave mean=%.0f p95=%.0f msgs\n",
			res.OpCosts.JoinMsgs.Mean(), res.OpCosts.JoinMsgs.Quantile(0.95),
			res.OpCosts.LeaveMsgs.Mean(), res.OpCosts.LeaveMsgs.Quantile(0.95))
	}
	if !*exact {
		printClassHists(&res.OpCosts)
	}
	verdict := "HELD"
	if res.Stats.CapturedEvents > 0 {
		verdict = "VIOLATED (cluster captured)"
	}
	fmt.Printf("\nTheorem 3 invariant: %s\n", verdict)
	return nil
}

// printClassHists summarizes the per-traffic-class message histograms of
// the sampled operations (sketch mode only): count, rank-exact p50/p99
// located to within one power of two (the log-scale bucket width). Every
// histogram covers ALL sampled ops (zero charges included); classes no
// operation used are omitted from the printout.
func printClassHists(oc *nowover.SimOpCosts) {
	printed := false
	for c := 0; c < nowover.NumTrafficClasses; c++ {
		h := &oc.ClassMsgs[c]
		if h.N() == h.Bucket(0) {
			continue // no op charged this class anything
		}
		if !printed {
			fmt.Println("per-op msgs by class (log2 buckets over all sampled ops, p50/p99 are bucket upper bounds):")
			printed = true
		}
		fmt.Printf("  %-13s n=%-7d p50<%.3g p99<%.3g\n",
			nowover.TrafficClass(c), h.N(), h.Quantile(0.5), h.Quantile(0.99))
	}
}

// runReplicas fans runs independent replicas across the experiment worker
// pool (each with its own derived seed and world) and prints per-replica
// summaries in seed order plus the aggregate Theorem 3 verdict.
func runReplicas(makeConfig func(uint64) (nowover.SimConfig, error), seed uint64, runs int, exact bool) error {
	fmt.Printf("replica sweep: %d runs on %d worker(s)\n\n", runs, nowover.Parallelism())
	results := make([]*nowover.SimResult, runs)
	err := nowover.ForEachRun(runs, func(i int) error {
		cfg, err := makeConfig(seed + uint64(i))
		if err != nil {
			return err
		}
		cfg.AuditEvery = 0 // timelines are per-run noise in sweep mode
		res, err := nowover.Simulate(cfg)
		if err != nil {
			return fmt.Errorf("replica %d (seed %d): %w", i, seed+uint64(i), err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}

	captured := 0
	degraded := 0
	worst := 0.0
	for i, res := range results {
		verdict := "HELD"
		if res.Stats.CapturedEvents > 0 {
			verdict = "VIOLATED"
			captured++
		}
		if res.Stats.DegradedEvents > 0 {
			degraded++
		}
		if res.Stats.MaxByzFractionEver > worst {
			worst = res.Stats.MaxByzFractionEver
		}
		fmt.Printf("  run %-3d seed=%-6d maxByzFrac=%.3f degraded=%-4d captured=%-4d dwell=%4.1f%%/%4.1f%%  %s\n",
			i, seed+uint64(i), res.Stats.MaxByzFractionEver,
			res.Stats.DegradedEvents, res.Stats.CapturedEvents,
			100*float64(res.DegradedSteps)/float64(res.Steps),
			100*float64(res.CapturedSteps)/float64(res.Steps),
			verdict)
	}
	// Cross-replica per-op cost distribution: per-replica accumulators
	// merged in seed (submission) order, so the aggregate is deterministic
	// at any -parallel setting.
	agg := nowover.NewSimOpCosts(exact)
	for _, res := range results {
		agg.Merge(&res.OpCosts)
	}
	if agg.JoinMsgs.N() > 0 {
		fmt.Printf("\nper-op across replicas: join n=%d mean=%.0f p50=%.0f p95=%.0f; leave n=%d mean=%.0f p50=%.0f p95=%.0f msgs\n",
			agg.JoinMsgs.N(), agg.JoinMsgs.Mean(), agg.JoinMsgs.Quantile(0.5), agg.JoinMsgs.Quantile(0.95),
			agg.LeaveMsgs.N(), agg.LeaveMsgs.Mean(), agg.LeaveMsgs.Quantile(0.5), agg.LeaveMsgs.Quantile(0.95))
	}
	fmt.Printf("\naggregate: %d/%d runs captured, %d/%d degraded, worst byz fraction %.3f\n",
		captured, runs, degraded, runs, worst)
	verdict := "HELD"
	if captured > 0 {
		verdict = fmt.Sprintf("VIOLATED in %d/%d runs", captured, runs)
	}
	fmt.Printf("Theorem 3 invariant across replicas: %s\n", verdict)
	return nil
}
