// Command nowattack explores the attacks that motivate NOW's shuffling
// (paper section 3.3): it runs the same adversary against the full
// protocol and against the no-shuffle ablation side by side, reporting
// how far each attack gets.
//
// Example:
//
//	nowattack -N 2048 -tau 0.30 -steps 4000 -attack joinleave
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nowover"
)

// config is the parsed command line.
type config struct {
	maxN       int
	tau        float64
	steps      int
	seed       uint64
	attack     string
	k          float64
	opsPerStep int
	shards     int
	grouped    bool
	benchJSON  string
}

// parseConfig parses the command line.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("nowattack", flag.ContinueOnError)
	c := &config{}
	fs.IntVar(&c.maxN, "N", 2048, "name-space bound N")
	fs.Float64Var(&c.tau, "tau", 0.30, "adversary corruption budget")
	fs.IntVar(&c.steps, "steps", 2000, "attack duration (time steps)")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	fs.StringVar(&c.attack, "attack", "joinleave", "attack: joinleave | dos")
	fs.Float64Var(&c.k, "k", 5, "cluster size security parameter K")
	fs.IntVar(&c.opsPerStep, "ops-per-step", 0,
		"batch this many ops per time step through the concurrent scheduler (0/1 = classic driver)")
	fs.IntVar(&c.shards, "world-shards", 0, "world shard count for the batched driver (0 = package default)")
	fs.BoolVar(&c.grouped, "grouped-cascade", false, "use the grouped leave-cascade variant")
	fs.StringVar(&c.benchJSON, "bench-json", "",
		"run the hooked-plan arm matrix (classic / batched serial / batched sharded) and write machine-readable results to this path")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return c, nil
}

// simConfig builds the simulation config for one defense arm; shuffle
// false selects the no-shuffle ablation. Unknown attacks surface here.
func (c *config) simConfig(shuffle bool) (nowover.SimConfig, error) {
	cfg := nowover.SimConfig{
		Core:            nowover.DefaultConfig(c.maxN),
		InitialSize:     c.maxN / 2,
		Tau:             c.tau,
		Steps:           c.steps,
		Seed:            c.seed,
		InstallHijacker: true,
		OpsPerStep:      c.opsPerStep,
	}
	cfg.Core.Seed = c.seed
	cfg.Core.K = c.k
	cfg.Core.L = 1.6
	cfg.Core.Shards = c.shards
	cfg.Core.GroupedCascade = c.grouped
	if !shuffle {
		cfg.Core.ExchangeOnJoin = false
		cfg.Core.ExchangeOnLeave = false
		cfg.Core.LeaveCascade = false
	}
	budget := nowover.Budget{Tau: c.tau}
	switch c.attack {
	case "joinleave":
		cfg.Strategy = &nowover.JoinLeaveAttack{Budget: budget}
	case "dos":
		cfg.Strategy = &nowover.DOSAttack{Budget: budget}
	default:
		return cfg, fmt.Errorf("unknown attack %q", c.attack)
	}
	return cfg, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowattack:", err)
		os.Exit(1)
	}
}

// benchArm is one row of the hooked-plan arm matrix.
type benchArm struct {
	Name             string  `json:"name"`
	Grouped          bool    `json:"grouped_cascade"`
	OpsPerStep       int     `json:"ops_per_step"`
	Shards           int     `json:"shards"`
	WallMs           int64   `json:"wall_ms"`
	BatchedOps       int     `json:"batched_ops"`
	DeferredOps      int     `json:"deferred_ops"`
	SkippedOps       int     `json:"skipped_ops"`
	DeferredPct      float64 `json:"deferred_pct"`
	PlanPathOpShare  float64 `json:"plan_path_op_share"`
	HijackedWalks    int64   `json:"hijacked_walks"`
	MaxByzFrac       float64 `json:"max_byz_frac"`
	DegradedDwellPct float64 `json:"degraded_dwell_pct"`
	CapturedDwellPct float64 `json:"captured_dwell_pct"`
}

// runBench executes the hooked-plan arm matrix — the classic one-op
// driver, the batched driver on a serial-layout world, and the batched
// driver on an 8-shard world, all with the hijacker installed — and
// writes the results to c.benchJSON. Wall-clock is per whole arm (the
// only timing cmd-level code can take; phase-level timing would need the
// simulation core to read the wall clock, which the determinism lint
// forbids). plan_path_op_share is the fraction of batched ops fully
// served by the parallelizable plan/apply phases, i.e. everything that
// did not fall to the serial tail — the capacity a multi-core box can
// actually exploit; on a 1-core runner it is the honest stand-in for a
// parallel speedup measurement.
func (c *config) runBench() error {
	ops := c.opsPerStep
	if ops <= 1 {
		ops = 8
	}
	arms := []struct {
		name       string
		opsPerStep int
		shards     int
	}{
		{"classic-hooked", 0, 1},
		{"serial-hooked", ops, 1},
		{"sharded-hooked", ops, 8},
	}
	out := struct {
		Attack   string     `json:"attack"`
		N        int        `json:"n"`
		Tau      float64    `json:"tau"`
		Steps    int        `json:"steps"`
		Seed     uint64     `json:"seed"`
		MaxProcs int        `json:"gomaxprocs"`
		Arms     []benchArm `json:"arms"`
	}{Attack: c.attack, N: c.maxN, Tau: c.tau, Steps: c.steps, Seed: c.seed}
	out.MaxProcs = runtime.GOMAXPROCS(0)
	for _, grouped := range []bool{false, true} {
		for _, arm := range arms {
			ac := *c
			ac.opsPerStep = arm.opsPerStep
			ac.shards = arm.shards
			ac.grouped = grouped
			cfg, err := ac.simConfig(true)
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := nowover.Simulate(cfg)
			if err != nil {
				return fmt.Errorf("arm %s: %w", arm.name, err)
			}
			wall := time.Since(start)
			row := benchArm{
				Name:             arm.name,
				Grouped:          grouped,
				OpsPerStep:       arm.opsPerStep,
				Shards:           arm.shards,
				WallMs:           wall.Milliseconds(),
				BatchedOps:       res.BatchedOps,
				DeferredOps:      res.DeferredOps,
				SkippedOps:       res.SkippedOps,
				HijackedWalks:    res.Stats.HijackedWalks,
				MaxByzFrac:       res.Stats.MaxByzFractionEver,
				DegradedDwellPct: 100 * float64(res.DegradedSteps) / float64(res.Steps),
				CapturedDwellPct: 100 * float64(res.CapturedSteps) / float64(res.Steps),
			}
			if res.BatchedOps > 0 {
				row.DeferredPct = 100 * float64(res.DeferredOps) / float64(res.BatchedOps)
				row.PlanPathOpShare = 100 * float64(res.BatchedOps-res.DeferredOps-res.SkippedOps) / float64(res.BatchedOps)
			}
			out.Arms = append(out.Arms, row)
			fmt.Printf("%-16s  grouped=%-5v ops/step=%d shards=%d  wall=%dms  deferred=%.1f%%  hijacked=%d\n",
				arm.name, grouped, arm.opsPerStep, arm.shards, row.WallMs, row.DeferredPct, row.HijackedWalks)
		}
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(c.benchJSON, append(blob, '\n'), 0o644)
}

func run(args []string) error {
	c, err := parseConfig(args)
	if err != nil {
		return err
	}
	if c.benchJSON != "" {
		return c.runBench()
	}

	fmt.Printf("nowattack: %s attack, N=%d tau=%.2f K=%.1f steps=%d\n\n", c.attack, c.maxN, c.tau, c.k, c.steps)
	fmt.Printf("%-22s  %-12s  %-14s  %-14s  %-10s\n",
		"defense", "maxByzFrac", "degradedEvts", "capturedEvts", "verdict")

	for _, defense := range []struct {
		name    string
		shuffle bool
	}{
		{"full NOW (shuffled)", true},
		{"no-shuffle ablation", false},
	} {
		cfg, err := c.simConfig(defense.shuffle)
		if err != nil {
			return err
		}
		res, err := nowover.Simulate(cfg)
		if err != nil {
			return err
		}
		verdict := "held"
		if res.Stats.CapturedEvents > 0 {
			verdict = "CAPTURED"
		} else if res.Stats.DegradedEvents > 0 {
			verdict = "degraded"
		}
		fmt.Printf("%-22s  %-12.3f  %-14d  %-14d  %-10s\n",
			defense.name, res.Stats.MaxByzFractionEver,
			res.Stats.DegradedEvents, res.Stats.CapturedEvents, verdict)
	}
	fmt.Println("\nsection 3.3: without shuffling the adversary concentrates its nodes in the")
	fmt.Println("target cluster; with exchange-on-join and leave cascades the placement is")
	fmt.Println("re-randomized every operation and the attack gains nothing (Theorem 3).")
	return nil
}
