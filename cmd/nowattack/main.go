// Command nowattack explores the attacks that motivate NOW's shuffling
// (paper section 3.3): it runs the same adversary against the full
// protocol and against the no-shuffle ablation side by side, reporting
// how far each attack gets.
//
// Example:
//
//	nowattack -N 2048 -tau 0.30 -steps 4000 -attack joinleave
package main

import (
	"flag"
	"fmt"
	"os"

	"nowover"
)

// config is the parsed command line.
type config struct {
	maxN   int
	tau    float64
	steps  int
	seed   uint64
	attack string
	k      float64
}

// parseConfig parses the command line.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("nowattack", flag.ContinueOnError)
	c := &config{}
	fs.IntVar(&c.maxN, "N", 2048, "name-space bound N")
	fs.Float64Var(&c.tau, "tau", 0.30, "adversary corruption budget")
	fs.IntVar(&c.steps, "steps", 2000, "attack duration (time steps)")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	fs.StringVar(&c.attack, "attack", "joinleave", "attack: joinleave | dos")
	fs.Float64Var(&c.k, "k", 5, "cluster size security parameter K")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return c, nil
}

// simConfig builds the simulation config for one defense arm; shuffle
// false selects the no-shuffle ablation. Unknown attacks surface here.
func (c *config) simConfig(shuffle bool) (nowover.SimConfig, error) {
	cfg := nowover.SimConfig{
		Core:            nowover.DefaultConfig(c.maxN),
		InitialSize:     c.maxN / 2,
		Tau:             c.tau,
		Steps:           c.steps,
		Seed:            c.seed,
		InstallHijacker: true,
	}
	cfg.Core.Seed = c.seed
	cfg.Core.K = c.k
	cfg.Core.L = 1.6
	if !shuffle {
		cfg.Core.ExchangeOnJoin = false
		cfg.Core.ExchangeOnLeave = false
		cfg.Core.LeaveCascade = false
	}
	budget := nowover.Budget{Tau: c.tau}
	switch c.attack {
	case "joinleave":
		cfg.Strategy = &nowover.JoinLeaveAttack{Budget: budget}
	case "dos":
		cfg.Strategy = &nowover.DOSAttack{Budget: budget}
	default:
		return cfg, fmt.Errorf("unknown attack %q", c.attack)
	}
	return cfg, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	c, err := parseConfig(args)
	if err != nil {
		return err
	}

	fmt.Printf("nowattack: %s attack, N=%d tau=%.2f K=%.1f steps=%d\n\n", c.attack, c.maxN, c.tau, c.k, c.steps)
	fmt.Printf("%-22s  %-12s  %-14s  %-14s  %-10s\n",
		"defense", "maxByzFrac", "degradedEvts", "capturedEvts", "verdict")

	for _, defense := range []struct {
		name    string
		shuffle bool
	}{
		{"full NOW (shuffled)", true},
		{"no-shuffle ablation", false},
	} {
		cfg, err := c.simConfig(defense.shuffle)
		if err != nil {
			return err
		}
		res, err := nowover.Simulate(cfg)
		if err != nil {
			return err
		}
		verdict := "held"
		if res.Stats.CapturedEvents > 0 {
			verdict = "CAPTURED"
		} else if res.Stats.DegradedEvents > 0 {
			verdict = "degraded"
		}
		fmt.Printf("%-22s  %-12.3f  %-14d  %-14d  %-10s\n",
			defense.name, res.Stats.MaxByzFractionEver,
			res.Stats.DegradedEvents, res.Stats.CapturedEvents, verdict)
	}
	fmt.Println("\nsection 3.3: without shuffling the adversary concentrates its nodes in the")
	fmt.Println("target cluster; with exchange-on-join and leave cascades the placement is")
	fmt.Println("re-randomized every operation and the attack gains nothing (Theorem 3).")
	return nil
}
