// Command nowattack explores the attacks that motivate NOW's shuffling
// (paper section 3.3): it runs the same adversary against the full
// protocol and against the no-shuffle ablation side by side, reporting
// how far each attack gets.
//
// Example:
//
//	nowattack -N 2048 -tau 0.30 -steps 4000 -attack joinleave
package main

import (
	"flag"
	"fmt"
	"os"

	"nowover"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nowattack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		maxN   = flag.Int("N", 2048, "name-space bound N")
		tau    = flag.Float64("tau", 0.30, "adversary corruption budget")
		steps  = flag.Int("steps", 2000, "attack duration (time steps)")
		seed   = flag.Uint64("seed", 1, "random seed")
		attack = flag.String("attack", "joinleave", "attack: joinleave | dos")
		k      = flag.Float64("k", 5, "cluster size security parameter K")
	)
	flag.Parse()

	fmt.Printf("nowattack: %s attack, N=%d tau=%.2f K=%.1f steps=%d\n\n", *attack, *maxN, *tau, *k, *steps)
	fmt.Printf("%-22s  %-12s  %-14s  %-14s  %-10s\n",
		"defense", "maxByzFrac", "degradedEvts", "capturedEvts", "verdict")

	for _, defense := range []struct {
		name    string
		shuffle bool
	}{
		{"full NOW (shuffled)", true},
		{"no-shuffle ablation", false},
	} {
		cfg := nowover.SimConfig{
			Core:            nowover.DefaultConfig(*maxN),
			InitialSize:     *maxN / 2,
			Tau:             *tau,
			Steps:           *steps,
			Seed:            *seed,
			InstallHijacker: true,
		}
		cfg.Core.Seed = *seed
		cfg.Core.K = *k
		cfg.Core.L = 1.6
		if !defense.shuffle {
			cfg.Core.ExchangeOnJoin = false
			cfg.Core.ExchangeOnLeave = false
			cfg.Core.LeaveCascade = false
		}
		budget := nowover.Budget{Tau: *tau}
		switch *attack {
		case "joinleave":
			cfg.Strategy = &nowover.JoinLeaveAttack{Budget: budget}
		case "dos":
			cfg.Strategy = &nowover.DOSAttack{Budget: budget}
		default:
			return fmt.Errorf("unknown attack %q", *attack)
		}
		res, err := nowover.Simulate(cfg)
		if err != nil {
			return err
		}
		verdict := "held"
		if res.Stats.CapturedEvents > 0 {
			verdict = "CAPTURED"
		} else if res.Stats.DegradedEvents > 0 {
			verdict = "degraded"
		}
		fmt.Printf("%-22s  %-12.3f  %-14d  %-14d  %-10s\n",
			defense.name, res.Stats.MaxByzFractionEver,
			res.Stats.DegradedEvents, res.Stats.CapturedEvents, verdict)
	}
	fmt.Println("\nsection 3.3: without shuffling the adversary concentrates its nodes in the")
	fmt.Println("target cluster; with exchange-on-join and leave cascades the placement is")
	fmt.Println("re-randomized every operation and the attack gains nothing (Theorem 3).")
	return nil
}
