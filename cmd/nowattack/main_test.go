package main

import (
	"strings"
	"testing"

	"nowover"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatalf("parseConfig(nil): %v", err)
	}
	if c.maxN != 2048 || c.tau != 0.30 || c.steps != 2000 || c.attack != "joinleave" {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestSimConfigArms(t *testing.T) {
	c, err := parseConfig([]string{"-attack", "dos", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.simConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Core.ExchangeOnJoin || !full.Core.ExchangeOnLeave || !full.Core.LeaveCascade {
		t.Error("shuffled arm should keep all shuffling enabled")
	}
	if _, ok := full.Strategy.(*nowover.DOSAttack); !ok {
		t.Errorf("strategy = %T, want *nowover.DOSAttack", full.Strategy)
	}
	if full.Seed != 3 || full.Core.Seed != 3 {
		t.Errorf("seed not threaded: sim %d core %d", full.Seed, full.Core.Seed)
	}

	ablated, err := c.simConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Core.ExchangeOnJoin || ablated.Core.ExchangeOnLeave || ablated.Core.LeaveCascade {
		t.Error("ablation arm should disable all shuffling")
	}
}

func TestSimConfigUnknownAttack(t *testing.T) {
	c, err := parseConfig([]string{"-attack", "teleport"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.simConfig(true); err == nil || !strings.Contains(err.Error(), "unknown attack") {
		t.Errorf("want unknown-attack error, got %v", err)
	}
}
