package main

import (
	"reflect"
	"strings"
	"testing"

	"nowover"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatalf("parseConfig(nil): %v", err)
	}
	if !reflect.DeepEqual(c.selected, nowover.ExperimentIDs()) {
		t.Errorf("default selection = %v, want all experiment IDs", c.selected)
	}
	if c.seed != 1 || c.shards != 1 || c.full || c.exact || c.maxN != 0 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestParseConfigSelection(t *testing.T) {
	c, err := parseConfig([]string{"-exp", "E1, E4"})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if want := []string{"E1", "E4"}; !reflect.DeepEqual(c.selected, want) {
		t.Errorf("selection = %v, want %v", c.selected, want)
	}
}

func TestParseConfigUnknownExperiment(t *testing.T) {
	_, err := parseConfig([]string{"-exp", "E1,E999"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("want unknown-experiment error, got %v", err)
	}
}

func TestParseConfigBadFlag(t *testing.T) {
	if _, err := parseConfig([]string{"-no-such-flag"}); err == nil {
		t.Error("want error for unknown flag")
	}
}

func TestParseConfigStrayArgs(t *testing.T) {
	_, err := parseConfig([]string{"stray"})
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("want stray-argument error, got %v", err)
	}
}

func TestScaleDerivation(t *testing.T) {
	c, err := parseConfig([]string{"-seed", "7", "-exact-samples"})
	if err != nil {
		t.Fatal(err)
	}
	s := c.scale()
	if s.Seed != 7 || !s.ExactSamples {
		t.Errorf("scale seed/exact = %d/%v, want 7/true", s.Seed, s.ExactSamples)
	}

	c2, err := parseConfig([]string{"-max-n", "65536"})
	if err != nil {
		t.Fatal(err)
	}
	s2 := c2.scale()
	if top := s2.Ns[len(s2.Ns)-1]; top != 65536 {
		t.Errorf("extended sweep tops out at %d, want 65536", top)
	}
}
