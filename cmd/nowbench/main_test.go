package main

import (
	"reflect"
	"strings"
	"testing"

	"nowover"
)

func TestParseConfigDefaults(t *testing.T) {
	c, err := parseConfig(nil)
	if err != nil {
		t.Fatalf("parseConfig(nil): %v", err)
	}
	if !reflect.DeepEqual(c.selected, nowover.ExperimentIDs()) {
		t.Errorf("default selection = %v, want all experiment IDs", c.selected)
	}
	if c.seed != 1 || c.shards != 1 || c.full || c.exact || c.maxN != 0 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestParseConfigSelection(t *testing.T) {
	c, err := parseConfig([]string{"-exp", "E1, E4"})
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if want := []string{"E1", "E4"}; !reflect.DeepEqual(c.selected, want) {
		t.Errorf("selection = %v, want %v", c.selected, want)
	}
}

func TestParseConfigUnknownExperiment(t *testing.T) {
	_, err := parseConfig([]string{"-exp", "E1,E999"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("want unknown-experiment error, got %v", err)
	}
}

func TestParseConfigBadFlag(t *testing.T) {
	if _, err := parseConfig([]string{"-no-such-flag"}); err == nil {
		t.Error("want error for unknown flag")
	}
}

func TestParseConfigStrayArgs(t *testing.T) {
	_, err := parseConfig([]string{"stray"})
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("want stray-argument error, got %v", err)
	}
}

func TestScaleDerivation(t *testing.T) {
	c, err := parseConfig([]string{"-seed", "7", "-exact-samples"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.scale()
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || !s.ExactSamples {
		t.Errorf("scale seed/exact = %d/%v, want 7/true", s.Seed, s.ExactSamples)
	}

	c2, err := parseConfig([]string{"-max-n", "65536"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.scale()
	if err != nil {
		t.Fatal(err)
	}
	if top := s2.Ns[len(s2.Ns)-1]; top != 65536 {
		t.Errorf("extended sweep tops out at %d, want 65536", top)
	}
}

// TestParseConfigMaxN2e20 covers the million-node grid: 2^20 extends both
// standard scales exactly, and unreachable bounds are usage errors at
// parse time, not silent caps hours into a sweep.
func TestParseConfigMaxN2e20(t *testing.T) {
	for _, args := range [][]string{
		{"-max-n", "1048576"},
		{"-full", "-max-n", "1048576"},
	} {
		c, err := parseConfig(args)
		if err != nil {
			t.Fatalf("parseConfig(%v): %v", args, err)
		}
		s, err := c.scale()
		if err != nil {
			t.Fatalf("scale(%v): %v", args, err)
		}
		if top := s.Ns[len(s.Ns)-1]; top != 1<<20 {
			t.Errorf("%v: sweep tops out at %d, want %d", args, top, 1<<20)
		}
	}
	// 10^6 is not on the doubling grid; the old code silently ran 2^19.
	if _, err := parseConfig([]string{"-max-n", "1000000"}); err == nil ||
		!strings.Contains(err.Error(), "524288 or 1048576") {
		t.Errorf("parseConfig(-max-n 1000000) = %v, want nearest-grid-top usage error", err)
	}
	if _, err := parseConfig([]string{"-full", "-max-n", "100"}); err == nil {
		t.Error("parseConfig(-max-n below grid top) must error")
	}
}
