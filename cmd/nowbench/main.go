// Command nowbench regenerates the paper-reproduction tables (experiments
// E1-E12 plus ablations A1-A4; see DESIGN.md for the claim index and
// EXPERIMENTS.md for recorded results).
//
// Examples:
//
//	nowbench                  # every experiment at quick scale
//	nowbench -exp E1,E4       # selected experiments
//	nowbench -full            # the long-running sweep
//	nowbench -csv out/        # also write CSV files
//	nowbench -parallel 1      # force the serial runner (default: GOMAXPROCS)
//	nowbench -full -max-n 65536 -exp E4,E5,E6
//	                          # the wide-range 2^16 separation sweep
//	                          # (sketch-mode cost sampling keeps it in memory)
//	nowbench -exact-samples   # retained-history accounting: byte-identical
//	                          # to pre-sketch tables, memory grows with ops
//
// Both the selected experiments AND each experiment's independent cells
// fan out across a worker pool sized by -parallel (or the
// NOWBENCH_PARALLEL environment variable when the flag is 0), so E1-E12
// run concurrently while rendering stays in ID order; tables are
// byte-identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nowover"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nowbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		full     = flag.Bool("full", false, "use the long-running scale")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSV files")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "experiment worker count: 1 = serial, 0 = auto (NOWBENCH_PARALLEL, then GOMAXPROCS)")
		shards   = flag.Int("world-shards", 1, "lockable state segments per experiment world (tables are byte-identical at any value; the harness drives ops serially, so this exercises the sharded layout rather than speeding tables up)")
		grouped  = flag.Bool("grouped-cascade", false, "batch leave cascades into one grouped shuffle round per leave (~|C| write footprint instead of ~|C|^2; changes measured costs, tables stay deterministic)")
		exact    = flag.Bool("exact-samples", false, "retain full per-operation cost histories (metrics.Sample) instead of fixed-memory sketches; reproduces pre-sketch tables byte for byte but memory grows with the operation count — avoid with -max-n")
		maxN     = flag.Int("max-n", 0, "extend the N sweep by doubling the top size up to this bound (e.g. 65536 for the 2^16 separation sweep); 0 keeps the selected scale's grid")
	)
	flag.Parse()

	nowover.SetParallelism(*parallel)
	nowover.SetWorldShards(*shards)
	nowover.SetGroupedCascade(*grouped)

	scale := nowover.QuickScale()
	if *full {
		scale = nowover.FullScale()
	}
	scale.Seed = *seed
	scale.ExactSamples = *exact
	if *maxN > 0 {
		scale = scale.ExtendTo(*maxN)
	}
	fmt.Printf("nowbench: %d worker(s), %d world shard(s), grouped-cascade=%v, samples=%s, Ns=%v\n\n",
		nowover.Parallelism(), nowover.WorldShards(), nowover.GroupedCascade(),
		map[bool]string{false: "sketch", true: "exact"}[*exact], scale.Ns)

	registry := nowover.Experiments()
	var selected []string
	if *expFlag == "" {
		selected = nowover.ExperimentIDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := registry[id]; !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)",
					id, strings.Join(nowover.ExperimentIDs(), ", "))
			}
			selected = append(selected, id)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	// Fan the selected experiments across the worker pool — on top of the
	// per-cell fan-out inside each experiment — so one experiment's serial
	// head/tail overlaps another's cells. Tables come back positionally
	// aligned with the selection and are rendered in ID order, so output
	// is byte-identical to a serial sweep at any parallelism.
	sweepStart := time.Now()
	tables, err := nowover.RunExperiments(selected, scale)
	if err != nil {
		return err
	}
	for i, id := range selected {
		if err := tables[i].Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err != nil {
				return err
			}
			werr := tables[i].CSV(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
		}
	}
	fmt.Printf("(%d experiment(s) completed in %v)\n", len(selected), time.Since(sweepStart).Round(time.Millisecond))
	return nil
}
