// Command nowbench regenerates the paper-reproduction tables (experiments
// E1-E12 plus ablations A1-A4; see DESIGN.md for the claim index and
// EXPERIMENTS.md for recorded results).
//
// Examples:
//
//	nowbench                  # every experiment at quick scale
//	nowbench -exp E1,E4       # selected experiments
//	nowbench -full            # the long-running sweep
//	nowbench -csv out/        # also write CSV files
//	nowbench -parallel 1      # force the serial runner (default: GOMAXPROCS)
//	nowbench -full -max-n 65536 -exp E4,E5,E6
//	                          # the wide-range 2^16 separation sweep
//	                          # (sketch-mode cost sampling keeps it in memory)
//	nowbench -exact-samples   # retained-history accounting: byte-identical
//	                          # to pre-sketch tables, memory grows with ops
//
// Both the selected experiments AND each experiment's independent cells
// fan out across a worker pool sized by -parallel (or the
// NOWBENCH_PARALLEL environment variable when the flag is 0), so E1-E12
// run concurrently while rendering stays in ID order; tables are
// byte-identical at any parallelism.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nowover"
)

// config is the fully-resolved command configuration: flags parsed,
// experiment selection validated against the registry.
type config struct {
	selected   []string
	full       bool
	csvDir     string
	seed       uint64
	parallel   int
	shards     int
	grouped    bool
	exact      bool
	maxN       int
	opsPerStep int
	checkpoint string
	benchJSON  string
}

// parseConfig parses the command line and resolves the experiment
// selection, so every usage error is reportable without running anything.
func parseConfig(args []string) (*config, error) {
	fs := flag.NewFlagSet("nowbench", flag.ContinueOnError)
	c := &config{}
	expFlag := fs.String("exp", "", "comma-separated experiment IDs (default: all)")
	fs.BoolVar(&c.full, "full", false, "use the long-running scale")
	fs.StringVar(&c.csvDir, "csv", "", "directory to write per-experiment CSV files")
	fs.Uint64Var(&c.seed, "seed", 1, "random seed")
	fs.IntVar(&c.parallel, "parallel", 0, "experiment worker count: 1 = serial, 0 = auto (NOWBENCH_PARALLEL, then GOMAXPROCS)")
	fs.IntVar(&c.shards, "world-shards", 1, "lockable state segments per experiment world (tables are byte-identical at any value; the harness drives ops serially, so this exercises the sharded layout rather than speeding tables up)")
	fs.BoolVar(&c.grouped, "grouped-cascade", false, "batch leave cascades into one grouped shuffle round per leave (~|C| write footprint instead of ~|C|^2; changes measured costs, tables stay deterministic)")
	fs.BoolVar(&c.exact, "exact-samples", false, "retain full per-operation cost histories (metrics.Sample) instead of fixed-memory sketches; reproduces pre-sketch tables byte for byte but memory grows with the operation count — avoid with -max-n")
	fs.IntVar(&c.maxN, "max-n", 0, "extend the N sweep by doubling the top size up to this bound (e.g. 65536 for the 2^16 separation sweep, 1048576 for the 2^20 run); must be a power-of-two multiple of the scale's top size; 0 keeps the selected scale's grid")
	fs.IntVar(&c.opsPerStep, "ops-per-step", 0, "batch this many adversary-cell operations per time step through the concurrent op scheduler (A2/A4 run hooked on the sharded world at full plan parallelism; a deterministic but distinct trajectory from the classic driver, and per-operation cost columns are unavailable); 0/1 keeps the classic driver and the recorded baseline tables")
	fs.StringVar(&c.checkpoint, "checkpoint", "", "per-cell result journal: completed sweep cells are appended here and served from it on the next run, so an interrupted sweep resumes from its last completed cell with byte-identical tables; the journal is bound to the run configuration (seed/scale/mode flags) and refuses to resume under a different one")
	fs.StringVar(&c.benchJSON, "bench-json", "", "write per-cell wall-clock timings (from the -checkpoint journal) as JSON, so future changes prove speedups against a recorded trajectory; requires -checkpoint")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	selected, err := resolveExperiments(*expFlag)
	if err != nil {
		return nil, err
	}
	c.selected = selected
	// Validate the grid extension now: an unreachable -max-n is a usage
	// error and must not surface hours into a sweep.
	if _, err := c.scale(); err != nil {
		return nil, err
	}
	if c.benchJSON != "" && c.checkpoint == "" {
		return nil, fmt.Errorf("-bench-json requires -checkpoint (timings come from the cell journal)")
	}
	return c, nil
}

// fingerprint identifies the run configuration a checkpoint journal is
// bound to: everything cell results depend on. Parallelism is absent by
// design (cells are byte-identical at any worker count); the CSV
// directory only affects where tables are copied.
func (c *config) fingerprint(scale nowover.ExperimentScale) string {
	fp := fmt.Sprintf("ns=%v of=%g trials=%d walks=%d seed=%d exact=%v shards=%d grouped=%v",
		scale.Ns, scale.OpsFactor, scale.Trials, scale.Walks,
		scale.Seed, scale.ExactSamples, c.shards, c.grouped)
	// The batched-driver marker is appended only when active so journals
	// recorded before the flag existed (ops-per-step 0) still resume.
	if scale.OpsPerStep > 1 {
		fp += fmt.Sprintf(" ops=%d", scale.OpsPerStep)
	}
	return fp
}

// resolveExperiments expands the -exp flag against the registry; an empty
// selection means every experiment in ID order.
func resolveExperiments(expFlag string) ([]string, error) {
	if expFlag == "" {
		return nowover.ExperimentIDs(), nil
	}
	registry := nowover.Experiments()
	var selected []string
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)",
				id, strings.Join(nowover.ExperimentIDs(), ", "))
		}
		selected = append(selected, id)
	}
	return selected, nil
}

// scale derives the experiment scale from the resolved flags; it errors
// when -max-n cannot extend the selected grid exactly.
func (c *config) scale() (nowover.ExperimentScale, error) {
	scale := nowover.QuickScale()
	if c.full {
		scale = nowover.FullScale()
	}
	scale.Seed = c.seed
	scale.ExactSamples = c.exact
	scale.OpsPerStep = c.opsPerStep
	if c.maxN > 0 {
		return scale.ExtendTo(c.maxN)
	}
	return scale, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	c, err := parseConfig(args)
	if err != nil {
		return err
	}

	nowover.SetParallelism(c.parallel)
	nowover.SetWorldShards(c.shards)
	nowover.SetGroupedCascade(c.grouped)

	scale, err := c.scale()
	if err != nil {
		return err
	}
	fmt.Printf("nowbench: %d worker(s), %d world shard(s), grouped-cascade=%v, samples=%s, Ns=%v\n\n",
		nowover.Parallelism(), nowover.WorldShards(), nowover.GroupedCascade(),
		map[bool]string{false: "sketch", true: "exact"}[c.exact], scale.Ns)

	if c.checkpoint != "" {
		if err := nowover.OpenCheckpointJournal(c.checkpoint, c.fingerprint(scale),
			func() int64 { return time.Now().UnixMilli() }); err != nil {
			return err
		}
		defer nowover.CloseCheckpointJournal()
	}

	if c.csvDir != "" {
		if err := os.MkdirAll(c.csvDir, 0o755); err != nil {
			return err
		}
	}

	// Fan the selected experiments across the worker pool — on top of the
	// per-cell fan-out inside each experiment — so one experiment's serial
	// head/tail overlaps another's cells. Tables come back positionally
	// aligned with the selection and are rendered in ID order, so output
	// is byte-identical to a serial sweep at any parallelism.
	sweepStart := time.Now()
	tables, err := nowover.RunExperiments(c.selected, scale)
	if err != nil {
		return err
	}
	for i, id := range c.selected {
		if err := tables[i].Render(os.Stdout); err != nil {
			return err
		}
		if c.csvDir != "" {
			f, err := os.Create(filepath.Join(c.csvDir, id+".csv"))
			if err != nil {
				return err
			}
			werr := tables[i].CSV(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
		}
	}
	fmt.Printf("(%d experiment(s) completed in %v)\n", len(c.selected), time.Since(sweepStart).Round(time.Millisecond))

	if c.benchJSON != "" {
		if err := writeBenchJSON(c.benchJSON); err != nil {
			return err
		}
	}
	return nil
}

// benchFile is the -bench-json document: the per-cell wall-clock
// trajectory of a checkpointed sweep.
type benchFile struct {
	Cells   []nowover.BenchPoint `json:"cells"`
	TotalMs int64                `json:"total_ms"`
}

func writeBenchJSON(path string) error {
	points, totalMs, ok := nowover.BenchTrajectory()
	if !ok {
		return fmt.Errorf("bench-json: no checkpoint journal active")
	}
	doc, err := json.MarshalIndent(benchFile{Cells: points, TotalMs: totalMs}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}
