package main

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"nowover/internal/ids"
	"nowover/internal/runtime"
	"nowover/internal/xrand"
)

// startCommittee brings up n daemons on ephemeral ports, fully peered
// (every member id, including a daemon's own, mapped at every daemon), and
// returns their control addresses. Cleanup stops them through the control
// protocol, exactly as an operator would.
func startCommittee(t *testing.T, n int) []string {
	t.Helper()
	daemons := make([]*daemon, n)
	var wg sync.WaitGroup
	for i := range daemons {
		d, err := newDaemon(daemonConfig{id: uint64(i), listen: "127.0.0.1:0", control: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		daemons[i] = d
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Serve()
		}()
	}
	t.Cleanup(func() {
		for _, d := range daemons {
			var out bytes.Buffer
			_ = runClient("stop", []string{"-control", d.ControlAddr()}, &out)
		}
		wg.Wait()
	})
	controls := make([]string, n)
	for i, d := range daemons {
		controls[i] = d.ControlAddr()
		var pairs []string
		for j, p := range daemons {
			pairs = append(pairs, fmt.Sprintf("%d=%s", j, p.Addr()))
		}
		var out bytes.Buffer
		if err := runClient("peer", append([]string{"-control", d.ControlAddr()}, pairs...), &out); err != nil {
			t.Fatal(err)
		}
	}
	return controls
}

// resultOf blocks until the member finished its rounds and returns the
// decided value, or fails the test on UNDECIDED.
func resultOf(t *testing.T, control string) int64 {
	t.Helper()
	var out bytes.Buffer
	if err := runClient("result", []string{"-control", control, "-wait"}, &out); err != nil {
		t.Fatal(err)
	}
	reply := strings.TrimSpace(out.String())
	v, err := strconv.ParseInt(strings.TrimPrefix(reply, "DECIDED "), 10, 64)
	if err != nil {
		t.Fatalf("member at %s: reply %q", control, reply)
	}
	return v
}

func TestDaemonCommitteePhaseKing(t *testing.T) {
	// Five daemons, one playing the scripted liar, started one after
	// another over their control sockets — the start-skew the round hosts'
	// start-relative pacing exists for. Honest members hold unanimous
	// input 1, so every honest daemon must report DECIDED 1.
	const n, liar = 5, 2
	controls := startCommittee(t, n)
	for i, control := range controls {
		input := "1"
		if i == liar {
			input = "-1"
		}
		var out bytes.Buffer
		err := runClient("start", []string{
			"-control", control, "-proto", "phaseking",
			"-n", "5", "-t", "1", "-round-ticks", "100", "-input", input,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(out.String(), "OK phaseking") {
			t.Fatalf("start reply %q", out.String())
		}
	}
	for i, control := range controls {
		if i == liar {
			continue
		}
		if v := resultOf(t, control); v != 1 {
			t.Errorf("member %d decided %d, want 1", i, v)
		}
	}
	var out bytes.Buffer
	if err := runClient("stats", []string{"-control", controls[0]}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "delivered=") || !strings.Contains(out.String(), "forged=0") {
		t.Errorf("stats line %q", out.String())
	}
}

func TestDaemonCommitteeRandNumMatchesLockstep(t *testing.T) {
	// Four daemons run commit-reveal with a shared seed; the lockstep
	// engine over the same per-member substreams is the oracle for the
	// value they must all output.
	const n, seed = 4, 42
	procs := make(map[ids.NodeID]runtime.Process, n)
	var oracle *runtime.RandNumNode
	cfg := runtime.RandNumConfig{R: 64}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	for i := 0; i < n; i++ {
		node, err := runtime.NewRandNumNode(cfg, ids.NodeID(i), xrand.New(seed).Split(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		procs[ids.NodeID(i)] = node
		if i == 0 {
			oracle = node
		}
	}
	e := runtime.NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	want, ok := oracle.Output()
	if !ok {
		t.Fatal("lockstep oracle produced no output")
	}

	controls := startCommittee(t, n)
	for _, control := range controls {
		var out bytes.Buffer
		err := runClient("start", []string{
			"-control", control, "-proto", "randnum",
			"-n", "4", "-seed", strconv.Itoa(seed), "-round-ticks", "100", "-input", "64",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, control := range controls {
		if v := resultOf(t, control); v != want {
			t.Errorf("member %d output %d, want lockstep oracle's %d", i, v, want)
		}
	}
}

func TestDaemonControlErrors(t *testing.T) {
	controls := startCommittee(t, 1)
	control := controls[0]

	var out bytes.Buffer
	if err := runClient("ping", []string{"-control", control}, &out); err != nil || strings.TrimSpace(out.String()) != "PONG" {
		t.Fatalf("ping: %v %q", err, out.String())
	}
	// RESULT before START, a malformed START, and a second START after a
	// successful one must all come back as daemon-side errors.
	if err := runClient("result", []string{"-control", control}, &out); err == nil {
		t.Error("result before start succeeded")
	}
	if err := runClient("start", []string{"-control", control, "-proto", "phaseking", "-n", "5", "-t", "2"}, &out); err == nil {
		t.Error("phase king with n <= 4t accepted")
	}
	if err := runClient("start", []string{"-control", control, "-proto", "nosuch", "-n", "1"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := runClient("start", []string{"-control", control, "-proto", "phaseking", "-n", "1", "-t", "0", "-round-ticks", "50"}, &out); err != nil {
		t.Fatalf("singleton committee: %v", err)
	}
	if err := runClient("start", []string{"-control", control, "-proto", "phaseking", "-n", "1", "-t", "0"}, &out); err == nil {
		t.Error("second START accepted")
	}
	if v := resultOf(t, control); v != 1 {
		t.Errorf("singleton committee decided %d, want its own input 1", v)
	}
	if err := run(nil, &out); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
}
