// Command nowd is the wall-clock daemon half of nownet, in the shape of
// drand's daemon/client split: `nowd daemon` hosts one committee member —
// a nownet node behind a TCP transport, driven by a round host — and a
// control client (`nowd ping|peer|start|result|stats|stop`) talks to it
// over a local control connection with a one-line text protocol.
//
// A committee of daemons is wired up from the outside: start one daemon
// per member, tell each about its peers' transport addresses (`nowd
// peer`), then `nowd start` the same protocol instance on each. Daemons
// need not start rounds simultaneously — round pacing is relative to each
// host's own start and the round hosts requeue messages from peers that
// are a round ahead — and `nowd result -wait` blocks until the member has
// decided.
//
// Example (one member of a five-node phase-king committee):
//
//	nowd daemon -id 0 -listen 127.0.0.1:7000 -control 127.0.0.1:7100 &
//	nowd peer -control 127.0.0.1:7100 1=127.0.0.1:7001 2=127.0.0.1:7002 ...
//	nowd start -control 127.0.0.1:7100 -proto phaseking -n 5 -t 1 -input 1
//	nowd result -control 127.0.0.1:7100 -wait
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/nownet"
	"nowover/internal/runtime"
	"nowover/internal/xrand"
)

// daemonConfig is the parsed `nowd daemon` command line.
type daemonConfig struct {
	id      uint64
	listen  string
	control string
}

// roundState is the one protocol instance a daemon runs. Open on the
// transport is per-id, so a daemon hosts exactly one round per lifetime;
// a second START is refused rather than half-reusing endpoints.
type roundState struct {
	proto    string
	cluster  *nownet.Cluster
	decided  func() (int64, bool)
	finished chan struct{}
}

// daemon hosts one committee member and its control listener.
type daemon struct {
	cfg daemonConfig
	tr  *nownet.TCPTransport
	ctl net.Listener

	mu    sync.Mutex
	round *roundState

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// newDaemon binds the transport and the control listener; Serve runs the
// control loop until STOP or Close.
func newDaemon(cfg daemonConfig) (*daemon, error) {
	tr, err := nownet.NewTCP(nownet.TCPConfig{Listen: cfg.listen})
	if err != nil {
		return nil, err
	}
	ctl, err := net.Listen("tcp", cfg.control)
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &daemon{cfg: cfg, tr: tr, ctl: ctl, stopped: make(chan struct{})}, nil
}

// Addr is the transport address peers dial.
func (d *daemon) Addr() string { return d.tr.Addr() }

// ControlAddr is the local control address clients dial.
func (d *daemon) ControlAddr() string { return d.ctl.Addr().String() }

// Serve accepts control connections until the daemon stops.
func (d *daemon) Serve() {
	for {
		conn, err := d.ctl.Accept()
		if err != nil {
			d.wg.Wait()
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handleControl(conn)
		}()
	}
}

// Close stops the control loop and tears the member down. Safe to call
// concurrently with Serve (STOP does exactly this).
func (d *daemon) Close() {
	d.stopOnce.Do(func() {
		close(d.stopped)
		d.ctl.Close()
		d.tr.Close()
	})
}

// handleControl runs the line protocol on one control connection. Every
// request line gets exactly one reply line.
func (d *daemon) handleControl(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		reply := d.dispatch(strings.Fields(sc.Text()))
		if _, err := fmt.Fprintln(conn, reply); err != nil {
			return
		}
		if strings.HasPrefix(reply, "OK stopping") {
			d.Close()
			return
		}
	}
}

// dispatch maps one control command to its reply line.
func (d *daemon) dispatch(words []string) string {
	if len(words) == 0 {
		return "ERR empty command"
	}
	switch words[0] {
	case "PING":
		return "PONG"
	case "PEER":
		if len(words) != 3 {
			return "ERR usage: PEER <id> <host:port>"
		}
		id, err := strconv.ParseUint(words[1], 10, 64)
		if err != nil {
			return "ERR bad peer id: " + err.Error()
		}
		d.tr.SetPeer(ids.NodeID(id), words[2])
		return "OK"
	case "START":
		return d.startRound(words[1:])
	case "RESULT":
		return d.result()
	case "STATS":
		return d.statsLine()
	case "STOP":
		return "OK stopping"
	default:
		return "ERR unknown command " + words[0]
	}
}

// startRound parses `START <proto> <n> <t> <seed> <rounds> <roundticks>
// <input>` and launches this member's round host. The fixed arity keeps
// the protocol trivially parseable; fields a protocol does not need are
// still present (and reused where sensible: <t> is the per-level cluster
// size for relay, <input> is the output range for randnum).
func (d *daemon) startRound(words []string) string {
	if len(words) != 7 {
		return "ERR usage: START <proto> <n> <t> <seed> <rounds> <roundticks> <input>"
	}
	proto := words[0]
	num := make([]int64, 6)
	for i, w := range words[1:] {
		v, err := strconv.ParseInt(w, 10, 64)
		if err != nil {
			return fmt.Sprintf("ERR bad %s field: %v", []string{"n", "t", "seed", "rounds", "roundticks", "input"}[i], err)
		}
		num[i] = v
	}
	n, t, seed, rounds, roundTicks, input := int(num[0]), int(num[1]), uint64(num[2]), int(num[3]), num[4], num[5]
	if n <= 0 || d.cfg.id >= uint64(n) {
		return fmt.Sprintf("ERR member id %d outside committee of %d", d.cfg.id, n)
	}
	self := ids.NodeID(d.cfg.id)
	members := make([]ids.NodeID, n)
	for i := range members {
		members[i] = ids.NodeID(i)
	}

	var proc runtime.Process
	var decided func() (int64, bool)
	var class metrics.Class
	switch proto {
	case "phaseking":
		if n <= 4*t {
			return fmt.Sprintf("ERR phase king needs n > 4t, got n=%d t=%d", n, t)
		}
		if rounds <= 0 {
			rounds = 2*(t+1) + 1
		}
		cfg := runtime.PhaseKingConfig{Members: members, MaxFaults: t}
		if input < 0 {
			liar := runtime.NewPKLiarNode(cfg, self)
			proc, decided = liar, func() (int64, bool) { return -1, true }
		} else {
			node := runtime.NewPhaseKingNode(cfg, self, input)
			proc, decided = node, node.Decision
		}
		class = metrics.ClassAgreement
	case "randnum":
		if rounds <= 0 {
			rounds = 4
		}
		if input <= 0 {
			input = 64
		}
		// Every daemon derives its member's share from the shared seed's
		// per-member substream, so independently started daemons stay
		// aligned with each other and with the loopback oracle.
		sub := xrand.New(seed).Split(d.cfg.id)
		node, err := runtime.NewRandNumNode(runtime.RandNumConfig{Members: members, R: input}, self, sub)
		if err != nil {
			return "ERR " + err.Error()
		}
		proc, decided = node, node.Output
		class = metrics.ClassRandNum
	case "relay":
		if t <= 0 || n%t != 0 {
			return fmt.Sprintf("ERR relay needs <t> to be a cluster size dividing n, got n=%d t=%d", n, t)
		}
		levels := n / t
		chain := make([][]ids.NodeID, levels)
		for k := range chain {
			chain[k] = members[k*t : (k+1)*t]
		}
		level := int(d.cfg.id) / t
		var origin any
		if level == 0 {
			origin = runtime.NewToken(seed, input)
		}
		node := runtime.NewRelayNode(self, chain, level, origin)
		proc = node
		decided = func() (int64, bool) {
			tk, ok := node.Accepted()
			return int64(tk.WalkID), ok
		}
		if rounds <= 0 {
			rounds = levels
		}
		class = metrics.ClassWalk
	default:
		return "ERR unknown protocol " + proto
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.round != nil {
		return "ERR round already started"
	}
	cluster, err := nownet.NewCluster(d.tr, map[ids.NodeID]runtime.Process{self: proc}, nownet.HostConfig{
		Rounds:     rounds,
		RoundTicks: roundTicks,
		Mode:       nownet.ModeReliable,
		Policy:     nownet.RetryPolicy{Timeout: roundTicks / 4, Retries: 3, Backoff: 2, Cap: roundTicks},
		Class:      class,
	})
	if err != nil {
		return "ERR " + err.Error()
	}
	rs := &roundState{proto: proto, cluster: cluster, decided: decided, finished: make(chan struct{})}
	d.round = rs
	cluster.Start()
	go func() {
		cluster.Wait()
		close(rs.finished)
	}()
	return fmt.Sprintf("OK %s member %d of %d, %d rounds", proto, d.cfg.id, n, rounds)
}

// result reports the member's outcome: PENDING while rounds run, DECIDED
// once the host finished and the protocol produced a value, UNDECIDED if
// it finished without one.
func (d *daemon) result() string {
	d.mu.Lock()
	rs := d.round
	d.mu.Unlock()
	if rs == nil {
		return "ERR no round started"
	}
	select {
	case <-rs.finished:
	default:
		return "PENDING"
	}
	if v, ok := rs.decided(); ok {
		return fmt.Sprintf("DECIDED %d", v)
	}
	return "UNDECIDED"
}

// statsLine renders transport plus (if a round ran) node/host counters.
func (d *daemon) statsLine() string {
	ts := d.tr.Stats()
	line := fmt.Sprintf("STATS dials=%d redials=%d accepts=%d sent=%d delivered=%d resync_bytes=%d",
		ts.Dials, ts.Redials, ts.Accepts, ts.Sent, ts.Delivered, ts.ResyncBytes)
	d.mu.Lock()
	rs := d.round
	d.mu.Unlock()
	if rs != nil {
		ns, hs := rs.cluster.Stats()
		line += fmt.Sprintf(" retries=%d timeouts=%d failed=%d forged=%d misrouted=%d stale=%d duplicates=%d",
			ns.Retries, ns.Timeouts, ns.Failed, ns.ForgedResponses, ns.Misrouted, hs.Stale, hs.Duplicates)
	}
	return line
}

// newFlagSet builds a flag set that reports errors instead of exiting.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}

// controlDo sends one command line over a fresh control connection and
// returns the single reply line.
func controlDo(addr, line string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return "", err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	return sc.Text(), nil
}

// errDaemon marks replies the daemon itself refused.
var errDaemon = errors.New("nowd: daemon refused")

// check passes through a reply unless it is an ERR line.
func check(reply string, err error) (string, error) {
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(reply, "ERR") {
		return "", fmt.Errorf("%w: %s", errDaemon, strings.TrimPrefix(reply, "ERR "))
	}
	return reply, nil
}

// runDaemon is the `nowd daemon` subcommand.
func runDaemon(args []string, out io.Writer) error {
	fs := newFlagSet("nowd daemon")
	id := fs.Uint64("id", 0, "committee member id this daemon hosts")
	listen := fs.String("listen", "127.0.0.1:0", "transport listen address peers dial")
	control := fs.String("control", "127.0.0.1:0", "local control address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := newDaemon(daemonConfig{id: *id, listen: *listen, control: *control})
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Fprintf(out, "nowd: member %d, transport %s, control %s\n", *id, d.Addr(), d.ControlAddr())
	d.Serve()
	fmt.Fprintln(out, "nowd: stopped")
	return nil
}

// runClient is every control subcommand: it renders one command line,
// sends it, and prints the reply. `result -wait` repolls until the round
// finishes.
func runClient(sub string, args []string, out io.Writer) error {
	fs := newFlagSet("nowd " + sub)
	control := fs.String("control", "127.0.0.1:7100", "daemon control address")
	proto := fs.String("proto", "phaseking", "protocol: phaseking | randnum | relay")
	n := fs.Int("n", 5, "committee size")
	t := fs.Int("t", 1, "faults tolerated (phaseking) or per-level cluster size (relay)")
	seed := fs.Uint64("seed", 11, "shared committee seed")
	rounds := fs.Int("rounds", 0, "protocol rounds (0 = protocol default)")
	roundTicks := fs.Int64("round-ticks", 200, "round length in transport ticks (1ms each)")
	input := fs.Int64("input", 1, "member input (phaseking; <0 plays the liar), range (randnum), or walk length (relay)")
	wait := fs.Bool("wait", false, "result only: poll until the round finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var line string
	switch sub {
	case "ping":
		line = "PING"
	case "peer":
		// Positional args: id=host:port pairs, one PEER command each.
		for _, pair := range fs.Args() {
			id, addr, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("nowd peer: want id=host:port, got %q", pair)
			}
			reply, err := check(controlDo(*control, "PEER "+id+" "+addr))
			if err != nil {
				return err
			}
			fmt.Fprintln(out, reply)
		}
		return nil
	case "start":
		line = fmt.Sprintf("START %s %d %d %d %d %d %d", *proto, *n, *t, *seed, *rounds, *roundTicks, *input)
	case "result":
		for {
			reply, err := check(controlDo(*control, "RESULT"))
			if err != nil {
				return err
			}
			if !*wait || reply != "PENDING" {
				fmt.Fprintln(out, reply)
				return nil
			}
			time.Sleep(50 * time.Millisecond)
		}
	case "stats":
		line = "STATS"
	case "stop":
		line = "STOP"
	default:
		return fmt.Errorf("nowd: unknown subcommand %q", sub)
	}
	reply, err := check(controlDo(*control, line))
	if err != nil {
		return err
	}
	fmt.Fprintln(out, reply)
	return nil
}

func usage(out io.Writer) {
	fmt.Fprintln(out, "usage: nowd daemon|ping|peer|start|result|stats|stop [flags]")
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return errors.New("nowd: missing subcommand")
	}
	if args[0] == "daemon" {
		return runDaemon(args[1:], out)
	}
	return runClient(args[0], args[1:], out)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
