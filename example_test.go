package nowover_test

import (
	"fmt"
	"log"

	"nowover"
)

// Example shows the minimal lifecycle: bootstrap, churn, audit.
func Example() {
	cfg := nowover.DefaultConfig(1024)
	cfg.Seed = 1
	sys, err := nowover.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(400, nowover.FractionCorrupt(400, 0.20)); err != nil {
		log.Fatal(err)
	}
	id, err := sys.JoinAuto(false)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Leave(id); err != nil {
		log.Fatal(err)
	}
	a := sys.Audit()
	fmt.Println("nodes:", a.Nodes)
	fmt.Println("no captured clusters:", a.Captured == 0)
	fmt.Println("overlay connected:", a.OverlayConnected)
	// Output:
	// nodes: 400
	// no captured clusters: true
	// overlay connected: true
}

// ExampleSystem_Broadcast demonstrates the O~(n) reliable broadcast.
func ExampleSystem_Broadcast() {
	cfg := nowover.DefaultConfig(1024)
	cfg.Seed = 2
	sys, err := nowover.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(300, nil); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Broadcast(sys.Clusters()[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all nodes reached:", rep.NodesReached == sys.NumNodes())
	fmt.Println("cheaper than flooding:", rep.Messages < rep.FloodingMessages)
	// Output:
	// all nodes reached: true
	// cheaper than flooding: true
}

// ExampleSystem_Aggregate counts the network through the overlay tree.
func ExampleSystem_Aggregate() {
	cfg := nowover.DefaultConfig(1024)
	cfg.Seed = 3
	sys, err := nowover.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(300, nil); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Aggregate(sys.Clusters()[0], func(nowover.ClusterID, int) int64 { return 1 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", rep.Value)
	// Output:
	// count: 300
}

// ExampleSimulate runs a churn simulation end to end.
func ExampleSimulate() {
	cfg := nowover.SimConfig{
		Core:        nowover.DefaultConfig(1024),
		InitialSize: 300,
		Tau:         0.10,
		Steps:       100,
		Seed:        4,
	}
	cfg.Core.Seed = 4
	res, err := nowover.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steps:", res.Steps)
	fmt.Println("no captures:", res.Stats.CapturedEvents == 0)
	// Output:
	// steps: 100
	// no captures: true
}
