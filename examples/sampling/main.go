// Sampling: the polylog-per-sample uniform node sampling service built on
// randCl (paper sections 3.1 and 6). Draws thousands of samples, verifies
// statistical uniformity over the node population, and reports the
// per-sample message cost.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"
	"math"

	"nowover"
)

func main() {
	const n0 = 512
	cfg := nowover.DefaultConfig(2048)
	cfg.Seed = 23
	sys, err := nowover.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(n0, nowover.FractionCorrupt(n0, 0.10)); err != nil {
		log.Fatal(err)
	}

	const draws = 4000
	counts := make(map[nowover.NodeID]int)
	var totalMsgs, totalRounds int64
	insecure := 0
	for i := 0; i < draws; i++ {
		rep, err := sys.Sample()
		if err != nil {
			log.Fatal(err)
		}
		counts[rep.Node]++
		totalMsgs += rep.Messages
		totalRounds += rep.Rounds
		if rep.Security != nowover.Secure {
			insecure++
		}
	}

	// Uniformity: chi-square against the uniform distribution.
	var chi float64
	expected := float64(draws) / float64(sys.NumNodes())
	nodesHit := 0
	maxCount := 0
	for _, c := range sys.Clusters() {
		for _, x := range sys.Members(c) {
			k := counts[x]
			d := float64(k) - expected
			chi += d * d / expected
			if k > 0 {
				nodesHit++
			}
			if k > maxCount {
				maxCount = k
			}
		}
	}
	dof := float64(sys.NumNodes() - 1)
	sigma := (chi - dof) / math.Sqrt(2*dof)

	fmt.Printf("uniform sampling over %d nodes, %d draws\n", sys.NumNodes(), draws)
	fmt.Printf("  distinct nodes hit : %d\n", nodesHit)
	fmt.Printf("  max hits on one    : %d (expected ~%.1f +/- %.1f)\n",
		maxCount, expected, math.Sqrt(expected))
	fmt.Printf("  chi-square         : %.1f (dof %.0f, %.1f sigma from uniform)\n", chi, dof, sigma)
	fmt.Printf("  insecure samples   : %d\n", insecure)
	fmt.Printf("  mean cost/sample   : %.0f msgs, %.1f rounds (polylog: log2(N)^5 = %.0f)\n",
		float64(totalMsgs)/draws, float64(totalRounds)/draws,
		math.Pow(math.Log2(float64(cfg.N)), 5))

	if sigma > 6 {
		log.Fatal("sampling distribution implausibly far from uniform")
	}
	fmt.Println("\nsampling is uniform: randCl picks clusters with probability |C|/n and a")
	fmt.Println("cluster-internal randNum picks the member — polylog messages per sample,")
	fmt.Println("against Omega(n) for naive random-node contact without the overlay.")
}
