// Churnstorm: the paper's headline regime — the network grows
// polynomially from near sqrt(N) toward N and collapses back, under a
// targeted join-leave attack, while the clustering invariants are audited
// continuously. This is the scenario no prior scheme (static cluster
// count, constant-factor size variation) survives.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"log"

	"nowover"
)

func main() {
	const maxN = 1024
	base := maxN / 8 // 128 ~ a few sqrt(N) — the lower regime

	// The security parameter K and slack L set the smallest cluster the
	// protocol ever tolerates (K*log2(N)/L ~ 31 here). A churn run makes
	// tens of thousands of cluster re-rolls, so Lemma 1's Chernoff tail
	// must be ~1e-6 per re-roll at that minimum size — which K=5, L=1.6,
	// tau=0.15 delivers. (The tau/K boundary itself is charted by
	// experiments E1 and E12; this demo runs where the theorem holds.)
	cfg := nowover.SimConfig{
		Core:            nowover.DefaultConfig(maxN),
		InitialSize:     base,
		Tau:             0.15,
		Strategy:        &nowover.JoinLeaveAttack{Budget: nowover.Budget{Tau: 0.15}},
		InstallHijacker: true,
		Steps:           maxN, // grow phase length
		Schedule:        nowover.Linear{From: base, To: maxN, Steps: maxN},
		AuditEvery:      maxN / 8,
		SampleOpCosts:   true,
		Seed:            7,
	}
	cfg.Core.Seed = 7
	cfg.Core.K = 5
	cfg.Core.L = 1.6

	fmt.Printf("churnstorm: %d -> %d -> %d nodes under a join-leave attack (tau=%.2f)\n\n",
		base, maxN, base, cfg.Tau)

	runner, err := nowover.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	grow, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("growth phase audits:")
	for _, a := range grow.Audits {
		fmt.Printf("  %s\n", a)
	}
	fmt.Printf("grew to %d nodes in %d clusters; splits=%d\n\n",
		grow.Final.Nodes, grow.Final.Clusters, grow.Stats.Splits)

	shrink, err := runner.Continue(
		nowover.Linear{From: grow.Final.Nodes, To: base, Steps: maxN}, maxN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shrink phase audits:")
	for _, a := range shrink.Audits {
		fmt.Printf("  %s\n", a)
	}
	stats := shrink.Stats // cumulative world stats
	fmt.Printf("\ncollapsed to %d nodes; merges=%d splits=%d\n",
		shrink.Final.Nodes, stats.Merges, stats.Splits)
	fmt.Printf("attack outcome: maxByzFracEver=%.3f degradedEvents=%d capturedEvents=%d\n",
		stats.MaxByzFractionEver, stats.DegradedEvents, stats.CapturedEvents)
	fmt.Printf("per-op cost: join mean %.0f msgs, leave mean %.0f msgs (polylog(N), N=%d)\n",
		shrink.OpCosts.JoinMsgs.Mean(), shrink.OpCosts.LeaveMsgs.Mean(), maxN)

	if stats.CapturedEvents > 0 {
		log.Fatal("a cluster was captured — Theorem 3 violated")
	}
	fmt.Println("\nsurvived 8x growth and 8x collapse under attack: Theorem 3 held.")
}
