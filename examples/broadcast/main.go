// Broadcast: the section 6 application — reliable broadcast over the
// cluster overlay at O~(n) messages versus the O(n^2) unclustered
// reference, measured across a growing network.
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"nowover"
)

func main() {
	fmt.Println("clustered broadcast vs O(n^2) flooding (paper section 6)")
	fmt.Printf("%-8s %-10s %-14s %-14s %-8s %-8s\n",
		"n", "clusters", "clusteredMsgs", "floodingMsgs", "ratio", "rounds")

	for _, n0 := range []int{256, 512, 1024, 2048} {
		cfg := nowover.DefaultConfig(4096)
		cfg.Seed = 11
		sys, err := nowover.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Bootstrap(n0, nowover.FractionCorrupt(n0, 0.15)); err != nil {
			log.Fatal(err)
		}
		src := sys.Clusters()[0]
		rep, err := sys.Broadcast(src)
		if err != nil {
			log.Fatal(err)
		}
		if rep.NodesReached != sys.NumNodes() {
			log.Fatalf("broadcast reached %d of %d nodes", rep.NodesReached, sys.NumNodes())
		}
		fmt.Printf("%-8d %-10d %-14d %-14d %-8.1f %-8d\n",
			n0, sys.NumClusters(), rep.Messages, rep.FloodingMessages,
			float64(rep.FloodingMessages)/float64(rep.Messages), rep.Rounds)
	}

	fmt.Println("\nthe ratio grows with n: clustered cost is n*polylog(n) against n^2.")
	fmt.Println("delivery is Byzantine-reliable: each inter-cluster hop is accepted only")
	fmt.Println("on >1/2 identical copies, and NOW keeps every cluster >2/3 honest w.h.p.")

	// Aggregation rides the same tree: count the network.
	cfg := nowover.DefaultConfig(4096)
	cfg.Seed = 12
	sys, err := nowover.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(1024, nowover.FractionCorrupt(1024, 0.15)); err != nil {
		log.Fatal(err)
	}
	agg, err := sys.Aggregate(sys.Clusters()[0], func(nowover.ClusterID, int) int64 { return 1 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregation demo: network self-count = %d (exact %d) at %d msgs\n",
		agg.Value, agg.Exact, agg.Messages)

	dec, err := sys.Agree(sys.Clusters()[0], func(nowover.ClusterID) int64 { return 1 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agreement demo: network-wide decision=%d rootSecure=%v at %d msgs\n",
		dec.Decision, dec.RootSecure, dec.Messages)
}
