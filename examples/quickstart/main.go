// Quickstart: bring up a NOW system, churn it, and watch the Theorem 3
// invariant hold.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nowover"
)

func main() {
	// N is the name-space bound: the network may grow to N nodes and
	// shrink to sqrt(N). Clusters hold ~K*log2(N) nodes each.
	const maxN = 4096
	cfg := nowover.DefaultConfig(maxN)
	cfg.Seed = 42

	sys, err := nowover.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Start with 1024 nodes; the adversary controls 20% of them from the
	// beginning (the paper's static Byzantine adversary at tau <= 1/3-eps).
	const n0 = 1024
	if err := sys.Bootstrap(n0, nowover.FractionCorrupt(n0, 0.20)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped: %d nodes in %d clusters (target size %d)\n",
		sys.NumNodes(), sys.NumClusters(), cfg.TargetClusterSize())

	// Churn: 200 honest arrivals and departures. Every join and leave
	// triggers the full maintenance machinery — biased random walks on the
	// expander overlay, cluster-wide node exchanges, splits and merges.
	var joined []nowover.NodeID
	for i := 0; i < 200; i++ {
		id, err := sys.JoinAuto(false)
		if err != nil {
			log.Fatal(err)
		}
		joined = append(joined, id)
	}
	for _, id := range joined[:100] {
		if err := sys.Leave(id); err != nil {
			log.Fatal(err)
		}
	}

	// Audit: the quantities Theorem 3 bounds.
	a := sys.Audit()
	fmt.Printf("after churn: %s\n", a)
	fmt.Printf("worst cluster is %.0f%% Byzantine (must stay below 50%%; below 33%% w.h.p.)\n",
		100*a.MaxByzFraction)

	// The overlay must remain a bounded-degree expander (OVER Props 1-2).
	h := sys.CheckOverlay()
	fmt.Printf("overlay: %d clusters, degrees [%d,%d] (cap %d), spectral gap %.3f, connected=%v\n",
		h.Vertices, h.MinDegree, h.MaxDegree, cfg.DegreeCap(), h.SpectralGap, h.Connected)

	// Communication cost so far, by protocol component.
	fmt.Printf("total cost: %v\n", sys.TotalCost())

	if a.Captured > 0 {
		log.Fatal("invariant violated: a cluster was captured")
	}
	fmt.Println("Theorem 3 invariant held.")
}
