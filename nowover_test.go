package nowover_test

import (
	"testing"

	"nowover"
)

func system(t *testing.T) *nowover.System {
	t.Helper()
	cfg := nowover.DefaultConfig(1024)
	cfg.Seed = 99
	sys, err := nowover.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(400, nowover.FractionCorrupt(400, 0.20)); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := system(t)
	if sys.NumNodes() != 400 {
		t.Fatalf("nodes = %d", sys.NumNodes())
	}
	x, err := sys.JoinAuto(false)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := sys.ClusterOf(x)
	if !ok {
		t.Fatal("joined node unplaced")
	}
	found := false
	for _, m := range sys.Members(c) {
		if m == x {
			found = true
		}
	}
	if !found {
		t.Error("node not in its cluster's member list")
	}
	if err := sys.Leave(x); err != nil {
		t.Fatal(err)
	}
	a := sys.Audit()
	if a.Captured != 0 {
		t.Errorf("captured clusters at bootstrap+2 ops: %+v", a)
	}
	if !a.OverlayConnected {
		t.Error("overlay disconnected")
	}
	if sys.TotalCost().Messages == 0 {
		t.Error("no cost accounted")
	}
	s := sys.Stats()
	if s.Joins != 1 || s.Leaves != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFractionCorrupt(t *testing.T) {
	f := nowover.FractionCorrupt(100, 0.25)
	count := 0
	for i := 0; i < 100; i++ {
		if f(i) {
			count++
		}
	}
	if count != 25 {
		t.Errorf("corrupted %d of 100, want 25", count)
	}
}

func TestApplicationServices(t *testing.T) {
	sys := system(t)
	src := sys.Clusters()[0]

	bc, err := sys.Broadcast(src)
	if err != nil {
		t.Fatal(err)
	}
	if bc.NodesReached != sys.NumNodes() {
		t.Errorf("broadcast reached %d of %d", bc.NodesReached, sys.NumNodes())
	}

	sample, err := sys.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.ClusterOf(sample.Node); !ok {
		t.Error("sampled node not in network")
	}

	agg, err := sys.Aggregate(src, func(nowover.ClusterID, int) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if agg.Value != int64(sys.NumNodes()) {
		t.Errorf("aggregate = %d, want %d", agg.Value, sys.NumNodes())
	}

	dec, err := sys.Agree(src, func(nowover.ClusterID) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if dec.Decision != 1 {
		t.Errorf("decision = %d", dec.Decision)
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg := nowover.SimConfig{
		Core:        nowover.DefaultConfig(1024),
		InitialSize: 300,
		Tau:         0.15,
		Steps:       50,
		Seed:        7,
	}
	cfg.Core.Seed = 7
	res, err := nowover.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 50 {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestSimulationContinue(t *testing.T) {
	cfg := nowover.SimConfig{
		Core:        nowover.DefaultConfig(1024),
		InitialSize: 300,
		Tau:         0.1,
		Steps:       30,
		Seed:        8,
	}
	cfg.Core.Seed = 8
	runner, err := nowover.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := runner.Continue(nowover.Linear{From: 300, To: 360, Steps: 80}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Nodes < 350 {
		t.Errorf("continued run reached %d nodes", res.Final.Nodes)
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	reg := nowover.Experiments()
	ids := nowover.ExperimentIDs()
	if len(reg) == 0 || len(ids) != len(reg) {
		t.Fatalf("registry %d vs ids %d", len(reg), len(ids))
	}
	if _, ok := reg["E1"]; !ok {
		t.Error("E1 missing")
	}
	if len(nowover.QuickScale().Ns) == 0 || len(nowover.FullScale().Ns) == 0 {
		t.Error("scales empty")
	}
}

func TestOverlayHealthExposed(t *testing.T) {
	sys := system(t)
	h := sys.CheckOverlay()
	if !h.Connected || h.MaxDegree == 0 {
		t.Errorf("health = %+v", h)
	}
}

func TestAdvancedWorldAccess(t *testing.T) {
	sys := system(t)
	w := sys.World()
	c := sys.Clusters()[0]
	if err := w.ForceExchange(c); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestExecBatchFacade(t *testing.T) {
	prev := nowover.WorldShards()
	nowover.SetWorldShards(8)
	defer nowover.SetWorldShards(prev)

	cfg := nowover.DefaultConfig(512) // Shards=0: picks up the default above
	sys, err := nowover.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(200, nowover.FractionCorrupt(200, 0.2)); err != nil {
		t.Fatal(err)
	}
	if got := sys.World().ShardCount(); got != 8 {
		t.Fatalf("world has %d shards, want 8 from SetWorldShards", got)
	}
	before := sys.NumNodes()
	res := sys.ExecBatch([]nowover.WorldOp{
		{Kind: nowover.WorldOpJoin},
		{Kind: nowover.WorldOpJoin, Byz: true},
	})
	for i, rr := range res {
		if rr.Err != nil {
			t.Fatalf("batch op %d: %v", i, rr.Err)
		}
	}
	if sys.NumNodes() != before+2 {
		t.Fatalf("population %d after 2 joins, want %d", sys.NumNodes(), before+2)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Leave(res[0].Node); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
