package discovery

import (
	"testing"

	"nowover/internal/graph"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

func nodeIDs(n int) []ids.NodeID {
	out := make([]ids.NodeID, n)
	for i := range out {
		out[i] = ids.NodeID(i)
	}
	return out
}

func allHonest(ids.NodeID) bool { return true }

func TestEmptyGraphRejected(t *testing.T) {
	var led metrics.Ledger
	if _, err := Run(&led, graph.New[ids.NodeID](), allHonest); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestPathGraphCompletes(t *testing.T) {
	g := graph.New[ids.NodeID]()
	vs := nodeIDs(10)
	for _, v := range vs {
		g.AddVertex(v)
	}
	for i := 0; i+1 < len(vs); i++ {
		if err := g.AddEdge(vs[i], vs[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	var led metrics.Ledger
	rep, err := Run(&led, g, allHonest)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("flooding on a path did not complete")
	}
	// Knowledge must traverse the diameter: ends know each other only
	// after ~n-2 relay rounds (neighbors are known at round 0).
	if rep.Rounds < 7 || rep.Rounds > 11 {
		t.Errorf("rounds = %d, want ~8-10 on a 10-path", rep.Rounds)
	}
	if rep.Messages == 0 || led.MessagesBy(metrics.ClassDiscovery) != rep.Messages {
		t.Errorf("message accounting inconsistent: %d vs ledger %d",
			rep.Messages, led.MessagesBy(metrics.ClassDiscovery))
	}
}

func TestCompleteGraphFast(t *testing.T) {
	g := graph.New[ids.NodeID]()
	vs := nodeIDs(12)
	for _, v := range vs {
		g.AddVertex(v)
	}
	if err := graph.Complete(g, vs); err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	rep, err := Run(&led, g, allHonest)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("incomplete on K12")
	}
	if rep.Rounds > 2 {
		t.Errorf("rounds = %d on a complete graph", rep.Rounds)
	}
}

func TestByzantineRelaysBlocked(t *testing.T) {
	// Path a - b - c with b Byzantine: a and c never learn of each other
	// (the honest subgraph is disconnected, violating the model
	// assumption) -> Complete must be false.
	g := graph.New[ids.NodeID]()
	for _, v := range nodeIDs(3) {
		g.AddVertex(v)
	}
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	var led metrics.Ledger
	rep, err := Run(&led, g, func(x ids.NodeID) bool { return x != 1 })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("discovery claimed completion across a Byzantine cut vertex")
	}
}

func TestByzantineOnFringeDoesNotBlock(t *testing.T) {
	// Honest ring with Byzantine nodes hanging off it (each adjacent to an
	// honest node): the paper's model assumptions hold, so every honest
	// node must learn all identities including the Byzantine ones.
	g := graph.New[ids.NodeID]()
	honestCount := 8
	total := 12
	vs := nodeIDs(total)
	for _, v := range vs {
		g.AddVertex(v)
	}
	for i := 0; i < honestCount; i++ {
		_ = g.AddEdge(vs[i], vs[(i+1)%honestCount])
	}
	for i := honestCount; i < total; i++ {
		_ = g.AddEdge(vs[i], vs[i%honestCount])
	}
	var led metrics.Ledger
	rep, err := Run(&led, g, func(x ids.NodeID) bool { return int(x) < honestCount })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("discovery failed with fringe Byzantine nodes")
	}
}

func TestMessageBoundAgainstPaper(t *testing.T) {
	// Communication must stay within the paper's O(n*e) envelope.
	r := xrand.New(1)
	g := graph.New[ids.NodeID]()
	vs := nodeIDs(128)
	for _, v := range vs {
		g.AddVertex(v)
	}
	if err := graph.RandomRegularish(g, r, vs, 6); err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	rep, err := Run(&led, g, allHonest)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatal("incomplete on expander")
	}
	bound := int64(rep.Nodes) * int64(rep.Edges)
	if rep.Messages > bound {
		t.Errorf("messages %d exceed n*e = %d", rep.Messages, bound)
	}
}
