// Package discovery implements the initialization-phase network discovery
// algorithm (paper section 3.2): flooding over the initial node graph until
// every honest node knows the identifiers of all nodes. The paper's bound
// is O(n*e) messages and a round count at most the diameter of the graph
// restricted to edges adjacent to at least one honest node.
//
// Byzantine nodes cannot forge identities (model assumption) but can
// refuse to relay; the implementation models them as non-forwarding, the
// worst case for propagation. The initial-graph assumptions of the paper
// (honest nodes connected among themselves, every Byzantine node adjacent
// to an honest one) are exactly what makes discovery terminate; violations
// surface as Complete=false in the report.
package discovery

import (
	"fmt"
	"math/bits"

	"nowover/internal/graph"
	"nowover/internal/ids"
	"nowover/internal/metrics"
)

// Report summarizes one discovery execution.
type Report struct {
	Nodes    int
	Edges    int
	Rounds   int
	Messages int64
	// Complete is true when every honest node learned every identifier.
	Complete bool
}

// Run executes flooding on g. honest reports honesty per node; Byzantine
// nodes contribute their identity (identities are unforgeable and visible
// to neighbors) but never relay third-party knowledge. A node transmits to
// its neighbors in every round in which its knowledge grew (including the
// first), each transmission costing one message per the paper's
// equal-size-message accounting.
func Run(led *metrics.Ledger, g *graph.Graph[ids.NodeID], honest func(ids.NodeID) bool) (Report, error) {
	nodes := g.Vertices()
	n := len(nodes)
	if n == 0 {
		return Report{}, fmt.Errorf("discovery: empty graph")
	}
	idx := make(map[ids.NodeID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	words := (n + 63) / 64
	know := make([][]uint64, n)
	for i := range know {
		know[i] = make([]uint64, words)
		know[i][i/64] |= 1 << uint(i%64)
	}
	// A node's own identity is immediately visible to its neighbors
	// (channels are authenticated), seeding round 0 knowledge.
	for i, v := range nodes {
		for _, u := range g.Neighbors(v) {
			j := idx[u]
			know[i][j/64] |= 1 << uint(j%64)
		}
	}

	rep := Report{Nodes: n, Edges: g.NumEdges()}
	active := make([]bool, n)
	for i, v := range nodes {
		active[i] = honest(v)
	}
	// prev snapshots knowledge at the start of each round so delivery is
	// synchronous: everything sent in round t reflects knowledge after
	// round t-1.
	prev := make([][]uint64, n)
	for i := range prev {
		prev[i] = make([]uint64, words)
	}
	for {
		for i := range know {
			copy(prev[i], know[i])
		}
		grew := make([]bool, n)
		anyGrowth := false
		for i, v := range nodes {
			if !active[i] {
				continue
			}
			// Honest node floods its round-start knowledge to all neighbors.
			deg := g.Degree(v)
			rep.Messages += int64(deg)
			led.Charge(metrics.ClassDiscovery, int64(deg))
			for _, u := range g.Neighbors(v) {
				j := idx[u]
				if !honest(u) {
					continue // Byzantine sinks refuse to relay
				}
				for w := 0; w < words; w++ {
					nw := know[j][w] | prev[i][w]
					if nw != know[j][w] {
						know[j][w] = nw
						grew[j] = true
						anyGrowth = true
					}
				}
			}
		}
		rep.Rounds++
		led.AddRounds(1)
		if !anyGrowth {
			break
		}
		// Next round only nodes with new knowledge transmit.
		for i, v := range nodes {
			active[i] = grew[i] && honest(v)
		}
	}

	rep.Complete = true
	for i, v := range nodes {
		if !honest(v) {
			continue
		}
		c := 0
		for _, w := range know[i] {
			c += bits.OnesCount64(w)
		}
		if c != n {
			rep.Complete = false
			break
		}
	}
	return rep, nil
}
