package nownet

import (
	"bytes"
	"testing"

	"nowover/internal/ids"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 1},
		{Kind: KindRequest, Type: 0, From: 0, To: 0, MsgID: 0, Payload: []byte{}},
		{Kind: KindResponse, Type: 255, From: ids.NodeID(^uint64(0)), To: 7, MsgID: ^uint64(0), Payload: []byte("hello")},
		{Kind: KindOneway, Type: 9, From: 3, To: 4, MsgID: 12, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for i, e := range cases {
		wire, err := e.Encode(nil)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, n, err := DecodeEnvelope(wire)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(wire) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(wire))
		}
		if got.Kind != e.Kind || got.Type != e.Type || got.From != e.From ||
			got.To != e.To || got.MsgID != e.MsgID || !bytes.Equal(got.Payload, e.Payload) {
			t.Errorf("case %d: round trip %+v -> %+v", i, e, got)
		}
	}
}

func TestEnvelopeEncodeAppends(t *testing.T) {
	e := Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 3, Payload: []byte("x")}
	prefix := []byte("prefix")
	wire, err := e.Encode(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(wire, prefix) {
		t.Fatal("Encode did not append to the supplied buffer")
	}
	if _, _, err := DecodeEnvelope(wire[len(prefix):]); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeDecodeConsumesOneFrame(t *testing.T) {
	a := Envelope{Kind: KindRequest, Type: 1, From: 1, To: 2, MsgID: 1, Payload: []byte("first")}
	b := Envelope{Kind: KindResponse, Type: 1, From: 2, To: 1, MsgID: 1, Payload: []byte("second")}
	wire, err := a.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	wire, err = b.Encode(wire)
	if err != nil {
		t.Fatal(err)
	}
	got1, n, err := DecodeEnvelope(wire)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := DecodeEnvelope(wire[n:])
	if err != nil {
		t.Fatal(err)
	}
	if string(got1.Payload) != "first" || string(got2.Payload) != "second" {
		t.Errorf("frames out of order: %q, %q", got1.Payload, got2.Payload)
	}
}

func TestEnvelopePayloadCopied(t *testing.T) {
	e := Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 3, Payload: []byte("abc")}
	wire, err := e.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeEnvelope(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)-1] = 'Z' // scribble on the buffer after decode
	if string(got.Payload) != "abc" {
		t.Error("decoded payload aliases the wire buffer")
	}
}

func TestEnvelopeRejects(t *testing.T) {
	valid, err := Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 3, Payload: []byte("abc")}.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Envelope{Kind: 0, Type: 1}).Encode(nil); err == nil {
		t.Error("encoded the invalid zero kind")
	}
	if _, err := (Envelope{Kind: 17, Type: 1}).Encode(nil); err == nil {
		t.Error("encoded an out-of-range kind")
	}
	if _, err := (Envelope{Kind: KindOneway, Payload: make([]byte, MaxPayload+1)}).Encode(nil); err == nil {
		t.Error("encoded an oversize payload")
	}
	if _, _, err := DecodeEnvelope(valid[:envHeaderSize-1]); err == nil {
		t.Error("decoded a short header")
	}
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 0x00
	if _, _, err := DecodeEnvelope(badMagic); err == nil {
		t.Error("decoded a frame with bad magic")
	}
	badKind := append([]byte(nil), valid...)
	badKind[1] = 0
	if _, _, err := DecodeEnvelope(badKind); err == nil {
		t.Error("decoded a frame with an invalid kind")
	}
	if _, _, err := DecodeEnvelope(valid[:len(valid)-1]); err == nil {
		t.Error("decoded a truncated payload")
	}
	// A hostile length prefix must be rejected before allocation.
	huge := append([]byte(nil), valid[:envHeaderSize]...)
	huge[27], huge[28], huge[29], huge[30] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := DecodeEnvelope(huge); err == nil {
		t.Error("accepted a length prefix beyond MaxPayload")
	}
}

// FuzzEnvelope round-trips the codec both ways: any envelope that encodes
// must decode back to itself, and any byte soup that decodes must
// re-encode to the exact bytes it consumed.
func FuzzEnvelope(f *testing.F) {
	seed, _ := Envelope{Kind: KindRequest, Type: 3, From: 1, To: 2, MsgID: 42, Payload: []byte("seed")}.Encode(nil)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{envMagic})
	f.Add(bytes.Repeat([]byte{0xE7}, envHeaderSize+4))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, n, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		if n < envHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		re, err := env.Encode(nil)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], re)
		}
		again, n2, err := DecodeEnvelope(re)
		if err != nil || n2 != n {
			t.Fatalf("second decode: n=%d err=%v", n2, err)
		}
		if again.Kind != env.Kind || again.Type != env.Type || again.From != env.From ||
			again.To != env.To || again.MsgID != env.MsgID || !bytes.Equal(again.Payload, env.Payload) {
			t.Fatalf("decode not stable: %+v vs %+v", env, again)
		}
	})
}
