package nownet

import (
	"encoding/binary"
	"errors"
	"io"
)

// StreamDecoder reframes envelopes off a byte stream. DecodeEnvelope
// already frames for a stream — every envelope is length-prefixed behind
// a magic byte — so the decoder only has to carry partial frames across
// read boundaries and resynchronize after corruption: bytes that cannot
// start a well-formed frame (wrong magic, illegal kind, oversized length)
// are discarded one at a time, counted in Skipped, until a plausible
// header lines up again. Payload bytes are never scanned for magic — a
// frame is consumed wholesale by its length prefix — so resync only ever
// runs over genuine garbage between frames.
//
// The decoded sequence is a pure function of the underlying byte string:
// chunking (how many bytes each Read returns) affects neither the
// envelopes, nor the skip count, nor the final error. FuzzReframe pins
// that property.
type StreamDecoder struct {
	r       io.Reader
	buf     []byte
	eof     bool
	skipped int64
}

// NewStreamDecoder wraps a byte stream.
func NewStreamDecoder(r io.Reader) *StreamDecoder { return &StreamDecoder{r: r} }

// Skipped returns the number of garbage bytes discarded during resync so
// far. Transports surface it as a corruption counter.
func (d *StreamDecoder) Skipped() int64 { return d.skipped }

// Next returns the next well-formed envelope. At end of stream it returns
// io.EOF if nothing partial remains buffered (trailing garbage that can
// never start a frame is skipped and still counts as a clean end), and
// io.ErrUnexpectedEOF if the stream ends mid-frame.
func (d *StreamDecoder) Next() (Envelope, error) {
	for {
		// Resync: drop bytes that cannot begin a frame. The magic byte is
		// necessary but not sufficient — a magic inside garbage is moved
		// past one byte at a time once its header proves illegal.
		i := 0
		for i < len(d.buf) && d.buf[i] != envMagic {
			i++
		}
		if i > 0 {
			d.skipped += int64(i)
			d.buf = d.buf[:copy(d.buf, d.buf[i:])]
		}
		if len(d.buf) >= envHeaderSize {
			k := Kind(d.buf[1])
			plen := binary.BigEndian.Uint32(d.buf[envHeaderSize-4 : envHeaderSize])
			if k < KindOneway || k > KindResponse || plen > MaxPayload {
				d.skipped++
				d.buf = d.buf[:copy(d.buf, d.buf[1:])]
				continue
			}
			if total := envHeaderSize + int(plen); len(d.buf) >= total {
				env, consumed, err := DecodeEnvelope(d.buf[:total])
				if err != nil {
					// The header checks above mirror DecodeEnvelope's, so
					// this cannot happen; resync anyway rather than wedge.
					d.skipped++
					d.buf = d.buf[:copy(d.buf, d.buf[1:])]
					continue
				}
				d.buf = d.buf[:copy(d.buf, d.buf[consumed:])]
				return env, nil
			}
		}
		// A (possible) frame start with not enough bytes behind it yet.
		if d.eof {
			if len(d.buf) == 0 {
				return Envelope{}, io.EOF
			}
			return Envelope{}, io.ErrUnexpectedEOF
		}
		if err := d.fill(); err != nil {
			return Envelope{}, err
		}
	}
}

// fill appends one read's worth of bytes to the carry buffer. A final
// short read that returns data alongside EOF keeps the data; the EOF is
// remembered for the next pass.
func (d *StreamDecoder) fill() error {
	var chunk [4096]byte
	n, err := d.r.Read(chunk[:])
	if n > 0 {
		d.buf = append(d.buf, chunk[:n]...)
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) {
		d.eof = true
		return nil
	}
	return err
}
