package nownet

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/runtime"
)

// RoundHost lifts a lockstep protocol state machine (runtime.Process) onto
// a nownet node: rounds are paced by virtual timers instead of the
// engine's barrier, inboxes accumulate from delivered envelopes, and the
// Step outputs go back out through the transport. Two modes:
//
//   - ModeLockstep sends each protocol message as a oneway envelope over
//     unit-latency lossless links. Under that fixed schedule the host
//     reproduces the lockstep Engine byte-for-byte (the equivalence suite
//     pins it), because deliveries due at a tick are processed before the
//     round timers of that tick, in sender-sorted order.
//   - ModeReliable sends each protocol message as a request and waits for
//     the receiver's ack, retrying with capped backoff — the degradation
//     path that keeps a round from deadlocking on a dropped envelope.
//     Receivers dedupe retransmissions on (From, MsgID) and late arrivals
//     from earlier rounds are discarded, so loss converts into either a
//     recovered delivery or a cleanly missing vote, never a corrupted
//     round.
type RoundHost struct {
	node  *Node
	cfg   HostConfig
	trace *Trace
	done  chan struct{} // closed when the round loop finishes

	mu      sync.Mutex
	led     metrics.Ledger
	pending []runtime.Message
	seen    map[dedupKey]bool
	stats   HostStats
}

// HostMode selects the delivery discipline.
type HostMode int

// Host modes.
const (
	ModeLockstep HostMode = iota
	ModeReliable
)

// Envelope types used by round hosts.
const (
	// TypeRound carries one protocol round message (frame: round, payload
	// tag, payload body).
	TypeRound byte = 1
)

// HostConfig describes one hosted protocol participant.
type HostConfig struct {
	// Proc is the state machine to host; it is stepped Rounds times.
	Proc runtime.Process
	// Rounds is the number of Step calls.
	Rounds int
	// RoundTicks is the virtual-time length of one round. Defaults to 1
	// in ModeLockstep and 1024 in ModeReliable (room for the retry span).
	RoundTicks int64
	// Mode selects oneway lockstep-equivalent delivery or reliable
	// request/ack delivery.
	Mode HostMode
	// Policy is the retry policy for ModeReliable.
	Policy RetryPolicy
	// Class is the ledger traffic class protocol messages are charged to
	// (acks and retransmissions go to metrics.ClassTransport).
	Class metrics.Class
}

// HostStats counts a host's delivery outcomes.
type HostStats struct {
	Emitted     int64 // protocol messages emitted by Step
	Undelivered int64 // reliable sends that exhausted every retry
	Duplicates  int64 // retransmissions deduped on arrival
	Stale       int64 // arrivals discarded for belonging to an older round
	Malformed   int64 // frames that failed to decode
}

type dedupKey struct {
	from  ids.NodeID
	msgID uint64
}

// withDefaults resolves zero fields.
func (c HostConfig) withDefaults() HostConfig {
	if c.RoundTicks <= 0 {
		if c.Mode == ModeReliable {
			c.RoundTicks = 1024
		} else {
			c.RoundTicks = 1
		}
	}
	return c
}

// NewRoundHost attaches a host to a node and registers its handler. The
// shared trace may be nil.
func NewRoundHost(node *Node, cfg HostConfig, trace *Trace) *RoundHost {
	h := &RoundHost{node: node, cfg: cfg.withDefaults(), trace: trace, done: make(chan struct{})}
	if h.cfg.Mode == ModeReliable {
		h.seen = make(map[dedupKey]bool)
	}
	node.Handle(TypeRound, h.onRound)
	return h
}

// Start launches the node reader and the host's round loop.
func (h *RoundHost) Start() {
	h.node.Start()
	h.node.Go(h.run)
}

// Stats snapshots the host counters.
func (h *RoundHost) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Ledger returns the host's accumulated charges.
func (h *RoundHost) Ledger() metrics.Ledger {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.led
}

// onRound is the inbound handler: decode the frame, ack and dedupe in
// reliable mode, queue the message for the round it targets.
func (h *RoundHost) onRound(n *Node, env Envelope) {
	round, payload, err := decodeRoundFrame(env.Payload)
	if err != nil {
		h.mu.Lock()
		h.stats.Malformed++
		h.mu.Unlock()
		return
	}
	if env.Kind == KindRequest {
		// Ack every copy — a retransmission means our previous ack was
		// lost — but queue only the first.
		_ = n.Respond(env, nil)
		h.mu.Lock()
		h.led.Charge(metrics.ClassTransport, 1)
		key := dedupKey{from: env.From, msgID: env.MsgID}
		if h.seen[key] {
			h.stats.Duplicates++
			h.mu.Unlock()
			return
		}
		h.seen[key] = true
		h.mu.Unlock()
	}
	h.mu.Lock()
	h.pending = append(h.pending, runtime.Message{
		From: env.From, To: n.ID(), Round: round, Payload: payload,
	})
	h.mu.Unlock()
}

// run is the round loop: sleep to the boundary, collect the previous
// round's arrivals, step, emit. Round boundaries are relative to the tick
// the loop starts on: on the loopback net every host starts at tick 0, so
// this is identical to absolute pacing (the equivalence suite pins it),
// while on a wall-clock transport a host started late — a daemon whose
// control client issued START after its peers — still paces full rounds.
func (h *RoundHost) run() {
	defer close(h.done)
	ep := h.node.Endpoint()
	base := ep.Now()
	for r := 0; r < h.cfg.Rounds; r++ {
		if r > 0 {
			ep.SleepUntil(base + int64(r)*h.cfg.RoundTicks)
		}
		inbox := h.collect(r)
		for _, m := range h.cfg.Proc.Step(r, inbox) {
			h.emit(r, m)
		}
	}
}

// Wait blocks until the round loop has stepped every round. On the
// loopback net Run already implies it; on a wall-clock transport it is
// how the driver learns the protocol finished.
func (h *RoundHost) Wait() { <-h.done }

// collect drains the pending queue for round r. Lockstep mode takes
// everything (unit latency makes every arrival previous-round by
// construction); reliable mode keeps exactly the messages emitted in round
// r-1, re-queues messages from rounds we have not reached (a peer ahead of
// us in wall-clock time — daemon start skew — must not cost a vote), and
// discards older stragglers.
func (h *RoundHost) collect(r int) []runtime.Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	msgs := h.pending
	h.pending = nil
	if h.cfg.Mode == ModeLockstep {
		return msgs
	}
	kept := msgs[:0]
	for _, m := range msgs {
		switch {
		case m.Round == r-1:
			kept = append(kept, m)
		case m.Round > r-1:
			h.pending = append(h.pending, m)
		default:
			h.stats.Stale++
		}
	}
	return kept
}

// emit traces, charges and transmits one Step output.
func (h *RoundHost) emit(r int, m runtime.Message) {
	if h.trace != nil {
		h.trace.Record(r, m)
	}
	h.mu.Lock()
	h.stats.Emitted++
	h.led.Charge(h.cfg.Class, 1)
	h.mu.Unlock()
	frame, err := encodeRoundFrame(r, m.Payload)
	if err != nil {
		panic(fmt.Sprintf("nownet: unencodable protocol payload: %v", err))
	}
	switch h.cfg.Mode {
	case ModeLockstep:
		_ = h.node.Cast(m.To, TypeRound, frame)
	case ModeReliable:
		if _, attempts, err := h.node.Request(m.To, TypeRound, frame, h.cfg.Policy); err != nil {
			h.mu.Lock()
			h.stats.Undelivered++
			h.led.Charge(metrics.ClassTransport, int64(attempts-1))
			h.mu.Unlock()
		} else if attempts > 1 {
			h.mu.Lock()
			h.led.Charge(metrics.ClassTransport, int64(attempts-1))
			h.mu.Unlock()
		}
	}
}

// Round frame: emission round (u32) | payload tag (u8) | payload body.
func encodeRoundFrame(round int, payload any) ([]byte, error) {
	tag, body, err := runtime.EncodePayload(payload)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 0, 5+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(round))
	frame = append(frame, tag)
	return append(frame, body...), nil
}

func decodeRoundFrame(frame []byte) (round int, payload any, err error) {
	if len(frame) < 5 {
		return 0, nil, fmt.Errorf("nownet: round frame has %d bytes, want >= 5", len(frame))
	}
	payload, err = runtime.DecodePayload(frame[4], frame[5:])
	if err != nil {
		return 0, nil, err
	}
	return int(binary.BigEndian.Uint32(frame)), payload, nil
}

// Trace is an append-only record of protocol message emissions, rendered
// identically by the lockstep engine's Observe hook and by round hosts:
// byte-equal traces are the sim-vs-runtime oracle.
type Trace struct {
	mu   sync.Mutex
	b    strings.Builder
	msgs int64
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record appends one emission.
func (t *Trace) Record(round int, m runtime.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(&t.b, "r%03d %v->%v %#v\n", round, m.From, m.To, m.Payload)
	t.msgs++
}

// String renders the trace.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.String()
}

// Messages returns the number of recorded emissions.
func (t *Trace) Messages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.msgs
}

// Cluster wires a set of processes onto one transport: an endpoint, node
// and round host per process, built and started in sorted ID order so the
// loopback schedule is deterministic.
type Cluster struct {
	order []ids.NodeID
	nodes map[ids.NodeID]*Node
	hosts map[ids.NodeID]*RoundHost
	trace *Trace
}

// NewCluster opens an endpoint per process and builds its host. cfg.Proc
// is ignored; each process from procs is hosted with the remaining cfg.
func NewCluster(t Transport, procs map[ids.NodeID]runtime.Process, cfg HostConfig) (*Cluster, error) {
	c := &Cluster{
		nodes: make(map[ids.NodeID]*Node, len(procs)),
		hosts: make(map[ids.NodeID]*RoundHost, len(procs)),
		trace: NewTrace(),
	}
	for id := range procs {
		c.order = append(c.order, id)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	for _, id := range c.order {
		ep, err := t.Open(id)
		if err != nil {
			return nil, err
		}
		node := NewNode(ep)
		hostCfg := cfg
		hostCfg.Proc = procs[id]
		c.nodes[id] = node
		c.hosts[id] = NewRoundHost(node, hostCfg, c.trace)
	}
	return c, nil
}

// Start launches every node and host, in sorted ID order.
func (c *Cluster) Start() {
	for _, id := range c.order {
		c.hosts[id].Start()
	}
}

// Wait blocks until every host's round loop has finished, in sorted ID
// order. Loopback drivers get this for free from Run; wall-clock drivers
// (TCP) call it to learn the committee is done.
func (c *Cluster) Wait() {
	for _, id := range c.order {
		c.hosts[id].Wait()
	}
}

// Trace returns the shared emission trace.
func (c *Cluster) Trace() *Trace { return c.trace }

// Node returns one member's node runtime.
func (c *Cluster) Node(id ids.NodeID) *Node { return c.nodes[id] }

// Host returns one member's round host.
func (c *Cluster) Host(id ids.NodeID) *RoundHost { return c.hosts[id] }

// Ledger merges the per-host ledgers in sorted ID order.
func (c *Cluster) Ledger() metrics.Ledger {
	var led metrics.Ledger
	for _, id := range c.order {
		l := c.hosts[id].Ledger()
		led.Merge(&l)
	}
	return led
}

// Stats aggregates node and host counters across the cluster.
func (c *Cluster) Stats() (NodeStats, HostStats) {
	var ns NodeStats
	var hs HostStats
	for _, id := range c.order {
		s := c.nodes[id].Stats()
		ns.Casts += s.Casts
		ns.Requests += s.Requests
		ns.Retries += s.Retries
		ns.Timeouts += s.Timeouts
		ns.Failed += s.Failed
		ns.Responses += s.Responses
		ns.LateResponses += s.LateResponses
		ns.ForgedResponses += s.ForgedResponses
		ns.Misrouted += s.Misrouted
		ns.Unhandled += s.Unhandled
		h := c.hosts[id].Stats()
		hs.Emitted += h.Emitted
		hs.Undelivered += h.Undelivered
		hs.Duplicates += h.Duplicates
		hs.Stale += h.Stale
		hs.Malformed += h.Malformed
	}
	return ns, hs
}
