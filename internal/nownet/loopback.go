package nownet

import (
	"container/heap"
	"fmt"

	"nowover/internal/ids"
	"nowover/internal/xrand"
)

// LoopbackNet is the deterministic in-process transport: a discrete-event
// scheduler over virtual ticks with injectable per-link latency, jitter,
// drop probability and partition sets. Node goroutines are cooperatively
// scheduled — exactly one hosted goroutine runs at a time, and the floor
// is handed over through rendezvous channels — so every run is a pure
// function of the seed and the configured schedule: event order is the
// total order (due tick, event class, sequence number), and all fault
// draws come from xrand substreams derived per directed link.
//
// Within a tick, deliveries are processed before control events, and
// control events before timers. That ordering is load-bearing: a node
// woken by a round timer at tick t observes every envelope due at t, and
// partition changes scheduled At(t) apply to the sends of tick t.
//
// The external API (Open, SetLink, SetPartition, At, Run, Close) belongs
// to the driving goroutine — Run executes the scheduler inline on the
// caller. Hosted goroutines interact only through their Endpoint. Neither
// side is safe for concurrent use from additional goroutines.
type LoopbackNet struct {
	cfg     Config
	now     int64
	seq     uint64
	events  eventHeap
	runq    []*parker
	floor   chan struct{}
	current *parker
	live    int // hosted goroutines not yet done
	eps     map[ids.NodeID]*loopEndpoint
	order   []ids.NodeID // endpoint registration order
	links   map[linkKey]LinkConfig
	streams map[linkKey]*xrand.Rand
	groups  map[ids.NodeID]int
	stats   NetStats
	closed  bool
	running bool
}

// Config seeds a loopback network.
type Config struct {
	// Seed roots every per-link fault stream (xrand.Derive(Seed, from, to)).
	Seed uint64
	// Link is the default behavior of every link without an override.
	Link LinkConfig
}

// LinkConfig is one directed link's fault model.
type LinkConfig struct {
	// Latency is the fixed delivery delay in ticks (minimum 1: an
	// envelope is never delivered in the tick it was sent).
	Latency int64
	// Jitter adds a uniform extra delay in [0, Jitter] ticks.
	Jitter int64
	// Drop is the probability an envelope vanishes in transit.
	Drop float64
}

// NetStats counts transport-level outcomes.
type NetStats struct {
	Sent             int64 // envelopes handed to Send
	Delivered        int64 // envelopes that reached an endpoint inbox
	DroppedRandom    int64 // lost to link drop probability
	DroppedPartition int64 // blocked by the active partition
	DroppedUnknown   int64 // addressed to an unopened or closed endpoint
}

type linkKey struct{ from, to ids.NodeID }

// Event classes: the within-tick ordering (see the type comment).
const (
	classDeliver = iota
	classControl
	classTimer
)

// event is one scheduled occurrence.
type event struct {
	due   int64
	class uint8
	seq   uint64
	wire  []byte  // classDeliver: the encoded envelope
	p     *parker // classTimer: goroutine to wake
	gen   uint64  // classTimer: park session the timer belongs to
	fn    func()  // classControl: runs on the scheduler goroutine
}

// eventHeap orders events by (due, class, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// parker states.
const (
	stateRunnable = iota
	stateRunning
	stateParked
	stateDone
)

// parker is one hosted goroutine's scheduling handle.
type parker struct {
	resume chan struct{}
	state  int
	// gen counts park sessions; a timer wakes its parker only when the
	// generations match, so a goroutine woken early (response arrived)
	// cannot be re-woken by its stale timeout.
	gen uint64
}

// NewLoopback builds an empty network.
func NewLoopback(cfg Config) *LoopbackNet {
	return &LoopbackNet{
		cfg:     cfg,
		floor:   make(chan struct{}),
		eps:     make(map[ids.NodeID]*loopEndpoint),
		links:   make(map[linkKey]LinkConfig),
		streams: make(map[linkKey]*xrand.Rand),
	}
}

// Open implements Transport.
func (n *LoopbackNet) Open(id ids.NodeID) (Endpoint, error) {
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.eps[id]; dup {
		return nil, fmt.Errorf("nownet: endpoint %v already open", id)
	}
	ep := &loopEndpoint{net: n, id: id}
	n.eps[id] = ep
	n.order = append(n.order, id)
	return ep, nil
}

// SetLink overrides the fault model of one directed link.
func (n *LoopbackNet) SetLink(from, to ids.NodeID, lc LinkConfig) {
	n.links[linkKey{from, to}] = lc
}

// SetPartition installs a partition: envelopes between nodes in different
// groups are dropped at send time. Nodes absent from the map are in group
// 0. A nil map heals the network. Call from the driver between runs or
// from an At control event.
func (n *LoopbackNet) SetPartition(groups map[ids.NodeID]int) {
	if groups == nil {
		n.groups = nil
		return
	}
	cp := make(map[ids.NodeID]int, len(groups))
	for id, g := range groups {
		cp[id] = g
	}
	n.groups = cp
}

// At schedules fn to run on the scheduler goroutine at the given tick,
// after that tick's deliveries and before its timers — the fault-injection
// hook (partition, heal, link changes).
func (n *LoopbackNet) At(tick int64, fn func()) {
	if n.closed {
		return
	}
	if tick < n.now {
		tick = n.now
	}
	n.push(event{due: tick, class: classControl, fn: fn})
}

// Now returns the current virtual time.
func (n *LoopbackNet) Now() int64 { return n.now }

// Stats returns the transport counters.
func (n *LoopbackNet) Stats() NetStats { return n.stats }

// push stamps and enqueues an event.
func (n *LoopbackNet) push(e event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.events, e)
}

// Run executes the scheduler until the network is quiescent: no runnable
// goroutine and no pending event. Goroutines parked in Recv (idle readers)
// do not block quiescence — Await and SleepUntil always carry timers, so
// they resolve before Run returns.
func (n *LoopbackNet) Run() {
	if n.running {
		panic("nownet: Run is not reentrant")
	}
	n.running = true
	defer func() { n.running = false }()
	for {
		if len(n.runq) > 0 {
			n.runOne()
			continue
		}
		if n.events.Len() > 0 {
			e := heap.Pop(&n.events).(event)
			if e.due > n.now {
				n.now = e.due
			}
			n.handle(e)
			continue
		}
		return
	}
}

// runOne resumes the front runnable goroutine and waits for it to park or
// finish.
func (n *LoopbackNet) runOne() {
	p := n.runq[0]
	n.runq = n.runq[:copy(n.runq, n.runq[1:])]
	p.state = stateRunning
	n.current = p
	p.resume <- struct{}{}
	<-n.floor
	n.current = nil
	if p.state == stateDone {
		n.live--
	}
}

// handle applies one event.
func (n *LoopbackNet) handle(e event) {
	switch e.class {
	case classDeliver:
		env, _, err := DecodeEnvelope(e.wire)
		if err != nil {
			// Send validated the encoding; a decode failure here is a
			// codec bug, not a runtime condition.
			panic(fmt.Sprintf("nownet: undecodable envelope in transit: %v", err))
		}
		dst, ok := n.eps[env.To]
		if !ok || dst.closed {
			n.stats.DroppedUnknown++
			return
		}
		dst.inbox = append(dst.inbox, env)
		n.stats.Delivered++
		if dst.reader != nil {
			n.ready(dst.reader)
			dst.reader = nil
		}
	case classControl:
		e.fn()
	case classTimer:
		if e.p.state == stateParked && e.p.gen == e.gen {
			n.ready(e.p)
		}
	}
}

// ready moves a parked goroutine to the runnable queue.
func (n *LoopbackNet) ready(p *parker) {
	if p.state != stateParked {
		return
	}
	p.state = stateRunnable
	p.gen++ // invalidate the park session's timer, if it hasn't fired
	n.runq = append(n.runq, p)
}

// parkCurrent suspends the floor-holding goroutine until ready() wakes it.
// deadline >= 0 also arms a timer for this park session.
func (n *LoopbackNet) parkCurrent(deadline int64) {
	p := n.current
	p.state = stateParked
	p.gen++
	if deadline >= 0 {
		due := deadline
		if due < n.now {
			due = n.now
		}
		n.push(event{due: due, class: classTimer, p: p, gen: p.gen})
	}
	n.floor <- struct{}{}
	<-p.resume
}

// mustCurrent asserts the caller is a hosted goroutine holding the floor.
func (n *LoopbackNet) mustCurrent(op string) *parker {
	if n.current == nil {
		panic(fmt.Sprintf("nownet: %s called from a goroutine not started via Endpoint.Go", op))
	}
	return n.current
}

// spawn registers fn as a hosted goroutine, runnable on the next Run.
func (n *LoopbackNet) spawn(fn func()) {
	p := &parker{resume: make(chan struct{}), state: stateRunnable}
	n.live++
	n.runq = append(n.runq, p)
	go func() {
		<-p.resume
		fn()
		p.state = stateDone
		n.floor <- struct{}{}
	}()
}

// Close implements Transport: wakes every parked goroutine with a closed
// indication, discards pending events, and waits for all hosted goroutines
// to finish. Call after Run has returned.
func (n *LoopbackNet) Close() {
	if n.closed {
		return
	}
	if n.running {
		panic("nownet: Close during Run")
	}
	n.closed = true
	for _, id := range n.order {
		ep := n.eps[id]
		ep.closed = true
		if ep.reader != nil {
			n.ready(ep.reader)
			ep.reader = nil
		}
	}
	// Goroutines parked in Await or SleepUntil are reachable through
	// their armed timers.
	for _, e := range n.events {
		if e.class == classTimer && e.p != nil && e.p.gen == e.gen {
			n.ready(e.p)
		}
	}
	n.events = nil
	for n.live > 0 {
		if len(n.runq) == 0 {
			panic("nownet: Close: live goroutines but nothing runnable")
		}
		n.runOne()
	}
}

// linkFor resolves a directed link's fault model.
func (n *LoopbackNet) linkFor(from, to ids.NodeID) LinkConfig {
	if lc, ok := n.links[linkKey{from, to}]; ok {
		return lc
	}
	return n.cfg.Link
}

// streamFor returns the link's fault stream, derived as a pure function of
// the seed and the directed pair so lazy creation order is irrelevant.
func (n *LoopbackNet) streamFor(from, to ids.NodeID) *xrand.Rand {
	key := linkKey{from, to}
	st, ok := n.streams[key]
	if !ok {
		st = xrand.Derive(n.cfg.Seed, uint64(from), uint64(to))
		n.streams[key] = st
	}
	return st
}

// loopEndpoint is one node's attachment to a LoopbackNet.
type loopEndpoint struct {
	net    *LoopbackNet
	id     ids.NodeID
	inbox  []Envelope
	reader *parker // goroutine parked in Recv, nil when none
	closed bool
}

// ID implements Endpoint.
func (ep *loopEndpoint) ID() ids.NodeID { return ep.id }

// Now implements Endpoint.
func (ep *loopEndpoint) Now() int64 { return ep.net.now }

// Go implements Endpoint.
func (ep *loopEndpoint) Go(fn func()) { ep.net.spawn(fn) }

// Send implements Endpoint: fault draws happen here, at send time, so the
// active partition and link model at the moment of sending decide the
// envelope's fate.
func (ep *loopEndpoint) Send(env Envelope) error {
	n := ep.net
	if n.closed || ep.closed {
		return ErrClosed
	}
	if env.From != ep.id {
		return fmt.Errorf("nownet: endpoint %v cannot send as %v (links are authenticated)", ep.id, env.From)
	}
	wire, err := env.Encode(nil)
	if err != nil {
		return err
	}
	n.stats.Sent++
	if n.groups != nil && n.groups[env.From] != n.groups[env.To] {
		n.stats.DroppedPartition++
		return nil
	}
	if _, ok := n.eps[env.To]; !ok {
		n.stats.DroppedUnknown++
		return nil
	}
	lc := n.linkFor(env.From, env.To)
	lat := lc.Latency
	if lat < 1 {
		lat = 1
	}
	if lc.Drop > 0 || lc.Jitter > 0 {
		st := n.streamFor(env.From, env.To)
		if lc.Drop > 0 && st.Bool(lc.Drop) {
			n.stats.DroppedRandom++
			return nil
		}
		if lc.Jitter > 0 {
			lat += int64(st.Intn(int(lc.Jitter) + 1))
		}
	}
	n.push(event{due: n.now + lat, class: classDeliver, wire: wire})
	return nil
}

// Recv implements Endpoint.
func (ep *loopEndpoint) Recv() (Envelope, bool) {
	n := ep.net
	for {
		if len(ep.inbox) > 0 {
			env := ep.inbox[0]
			ep.inbox = ep.inbox[:copy(ep.inbox, ep.inbox[1:])]
			return env, true
		}
		if n.closed || ep.closed {
			return Envelope{}, false
		}
		ep.reader = n.mustCurrent("Recv")
		n.parkCurrent(-1)
	}
}

// Await implements Endpoint.
func (ep *loopEndpoint) Await(w *Waiter, deadline int64) (Envelope, bool) {
	n := ep.net
	if env, ok := w.take(); ok {
		return env, true
	}
	if n.closed || ep.closed {
		return Envelope{}, false
	}
	n.mustCurrent("Await")
	w.park = n.current
	n.parkCurrent(deadline)
	w.park = nil
	return w.take()
}

// Wake implements Endpoint.
func (ep *loopEndpoint) Wake(w *Waiter) {
	if p, ok := w.park.(*parker); ok && p != nil {
		ep.net.ready(p)
	}
}

// SleepUntil implements Endpoint.
func (ep *loopEndpoint) SleepUntil(tick int64) {
	n := ep.net
	if n.closed || ep.closed || tick <= n.now {
		return
	}
	n.mustCurrent("SleepUntil")
	n.parkCurrent(tick)
}
