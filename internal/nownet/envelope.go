package nownet

import (
	"encoding/binary"
	"fmt"

	"nowover/internal/ids"
)

// Kind classifies an envelope's role in the request/response protocol.
type Kind uint8

// Envelope kinds. Zero is reserved as invalid so a forgotten field can
// never decode as a legal envelope.
const (
	KindOneway   Kind = 1 + iota // fire-and-forget
	KindRequest                  // expects a KindResponse with the same MsgID
	KindResponse                 // correlated to a request by MsgID
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOneway:
		return "oneway"
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Envelope is the wire unit: every message crosses a Transport in this
// shape, encoded by Encode. MsgID correlates a response to its request;
// the (From, MsgID) pair is unique per sender, which is what receivers
// dedupe retransmissions on.
type Envelope struct {
	Kind    Kind
	Type    byte // protocol-defined message type, dispatched to handlers
	From    ids.NodeID
	To      ids.NodeID
	MsgID   uint64
	Payload []byte
}

// Wire layout: magic, kind, type, from(8), to(8), msgid(8), plen(4),
// payload. All integers big-endian.
const (
	envMagic      = 0xE7
	envHeaderSize = 3 + 8 + 8 + 8 + 4
	// MaxPayload bounds a single envelope's payload; a length prefix
	// beyond it is rejected at decode so a hostile frame cannot force a
	// giant allocation.
	MaxPayload = 1 << 20
)

// Encode serializes the envelope, appending to buf (which may be nil) and
// returning the extended slice.
func (e Envelope) Encode(buf []byte) ([]byte, error) {
	if e.Kind < KindOneway || e.Kind > KindResponse {
		return nil, fmt.Errorf("nownet: encode: invalid kind %d", e.Kind)
	}
	if len(e.Payload) > MaxPayload {
		return nil, fmt.Errorf("nownet: encode: payload %d bytes exceeds max %d", len(e.Payload), MaxPayload)
	}
	buf = append(buf, envMagic, byte(e.Kind), e.Type)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.To))
	buf = binary.BigEndian.AppendUint64(buf, e.MsgID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	return buf, nil
}

// DecodeEnvelope parses one envelope from the front of buf, returning it
// and the number of bytes consumed. The payload is copied out of buf, so
// the caller may reuse the buffer.
func DecodeEnvelope(buf []byte) (Envelope, int, error) {
	if len(buf) < envHeaderSize {
		return Envelope{}, 0, fmt.Errorf("nownet: decode: %d bytes is shorter than the %d-byte header", len(buf), envHeaderSize)
	}
	if buf[0] != envMagic {
		return Envelope{}, 0, fmt.Errorf("nownet: decode: bad magic 0x%02x", buf[0])
	}
	k := Kind(buf[1])
	if k < KindOneway || k > KindResponse {
		return Envelope{}, 0, fmt.Errorf("nownet: decode: invalid kind %d", buf[1])
	}
	plen := binary.BigEndian.Uint32(buf[27:31])
	if plen > MaxPayload {
		return Envelope{}, 0, fmt.Errorf("nownet: decode: payload length %d exceeds max %d", plen, MaxPayload)
	}
	total := envHeaderSize + int(plen)
	if len(buf) < total {
		return Envelope{}, 0, fmt.Errorf("nownet: decode: truncated payload (%d of %d bytes)", len(buf)-envHeaderSize, plen)
	}
	e := Envelope{
		Kind:  k,
		Type:  buf[2],
		From:  ids.NodeID(binary.BigEndian.Uint64(buf[3:11])),
		To:    ids.NodeID(binary.BigEndian.Uint64(buf[11:19])),
		MsgID: binary.BigEndian.Uint64(buf[19:27]),
	}
	if plen > 0 {
		e.Payload = append([]byte(nil), buf[envHeaderSize:total]...)
	}
	return e, total, nil
}
