package nownet

import (
	"testing"

	"nowover/internal/ids"
)

// openOrFatal opens an endpoint or fails the test.
func openOrFatal(t *testing.T, n *LoopbackNet, id ids.NodeID) Endpoint {
	t.Helper()
	ep, err := n.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestLoopbackDeliversAtLatency(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 5}})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	var gotAt int64 = -1
	b.Go(func() {
		if _, ok := b.Recv(); ok {
			gotAt = b.Now()
		}
	})
	a.Go(func() {
		if err := a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 1}); err != nil {
			t.Error(err)
		}
	})
	net.Run()
	if gotAt != 5 {
		t.Errorf("delivered at tick %d, want 5", gotAt)
	}
	if s := net.Stats(); s.Sent != 1 || s.Delivered != 1 {
		t.Errorf("stats = %+v", s)
	}
	net.Close()
}

func TestLoopbackFIFOPerLink(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	var order []uint64
	b.Go(func() {
		for i := 0; i < 3; i++ {
			env, ok := b.Recv()
			if !ok {
				return
			}
			order = append(order, env.MsgID)
		}
	})
	a.Go(func() {
		for i := uint64(1); i <= 3; i++ {
			_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: i})
		}
	})
	net.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("same-link same-tick envelopes reordered: %v", order)
	}
	net.Close()
}

func TestLoopbackDeliveriesBeforeTimers(t *testing.T) {
	// A goroutine sleeping to tick 3 must observe the envelope due at tick 3
	// when it wakes: deliveries are processed before timers within a tick.
	net := NewLoopback(Config{Link: LinkConfig{Latency: 3}})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	sawAtWake := -1
	bEp := b.(*loopEndpoint)
	b.Go(func() {
		b.SleepUntil(3)
		sawAtWake = len(bEp.inbox)
	})
	a.Go(func() {
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 1})
	})
	net.Run()
	if sawAtWake != 1 {
		t.Errorf("woke with %d envelopes in the inbox, want 1", sawAtWake)
	}
	net.Close()
}

func TestLoopbackDropDeterministic(t *testing.T) {
	run := func() (NetStats, []uint64) {
		net := NewLoopback(Config{Seed: 7, Link: LinkConfig{Latency: 1, Drop: 0.4, Jitter: 3}})
		a := openOrFatal(t, net, 1)
		b := openOrFatal(t, net, 2)
		var got []uint64
		b.Go(func() {
			for {
				env, ok := b.Recv()
				if !ok {
					return
				}
				got = append(got, env.MsgID)
			}
		})
		a.Go(func() {
			for i := uint64(1); i <= 50; i++ {
				_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: i})
			}
		})
		net.Run()
		s := net.Stats()
		net.Close()
		return s, got
	}
	s1, got1 := run()
	s2, got2 := run()
	if s1 != s2 {
		t.Errorf("same-seed stats diverged: %+v vs %+v", s1, s2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("same-seed deliveries diverged: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("same-seed delivery order diverged at %d: %d vs %d", i, got1[i], got2[i])
		}
	}
	if s1.DroppedRandom == 0 {
		t.Error("drop probability 0.4 dropped nothing in 50 sends")
	}
	if s1.Delivered == 0 {
		t.Error("drop probability 0.4 dropped everything")
	}
	if s1.Sent != 50 || s1.Delivered+s1.DroppedRandom != 50 {
		t.Errorf("stats don't add up: %+v", s1)
	}
}

func TestLoopbackPartitionAndHeal(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	var got []uint64
	b.Go(func() {
		for {
			env, ok := b.Recv()
			if !ok {
				return
			}
			got = append(got, env.MsgID)
		}
	})
	net.SetPartition(map[ids.NodeID]int{2: 1}) // 1 is in group 0 by default
	a.Go(func() {
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 1}) // blocked
		a.SleepUntil(10)
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 2}) // after heal
	})
	net.At(5, func() { net.SetPartition(nil) })
	net.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("deliveries across partition = %v, want [2]", got)
	}
	if s := net.Stats(); s.DroppedPartition != 1 {
		t.Errorf("stats = %+v, want DroppedPartition 1", s)
	}
	net.Close()
}

func TestLoopbackSetLinkOverride(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	net.SetLink(1, 2, LinkConfig{Drop: 1.0, Latency: 1})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	c := openOrFatal(t, net, 3)
	var gotB, gotC int
	b.Go(func() {
		for {
			if _, ok := b.Recv(); !ok {
				return
			}
			gotB++
		}
	})
	c.Go(func() {
		for {
			if _, ok := c.Recv(); !ok {
				return
			}
			gotC++
		}
	})
	a.Go(func() {
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 1})
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 3, MsgID: 2})
	})
	net.Run()
	if gotB != 0 || gotC != 1 {
		t.Errorf("link override leaked: b got %d, c got %d", gotB, gotC)
	}
	net.Close()
}

func TestLoopbackRejects(t *testing.T) {
	net := NewLoopback(Config{})
	a := openOrFatal(t, net, 1)
	if _, err := net.Open(1); err == nil {
		t.Error("duplicate Open accepted")
	}
	var sendErr error
	a.Go(func() {
		// Links are authenticated: an endpoint cannot send as another node.
		sendErr = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 9, To: 1, MsgID: 1})
	})
	net.Run()
	if sendErr == nil {
		t.Error("spoofed From accepted")
	}
	net.Close()
	if _, err := net.Open(2); err == nil {
		t.Error("Open on closed transport accepted")
	}
}

func TestLoopbackUnknownDestination(t *testing.T) {
	net := NewLoopback(Config{})
	a := openOrFatal(t, net, 1)
	a.Go(func() {
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 99, MsgID: 1})
	})
	net.Run()
	if s := net.Stats(); s.DroppedUnknown != 1 {
		t.Errorf("stats = %+v, want DroppedUnknown 1", s)
	}
	net.Close()
}

func TestLoopbackCloseWakesParkedReader(t *testing.T) {
	net := NewLoopback(Config{})
	a := openOrFatal(t, net, 1)
	recvClosed := false
	a.Go(func() {
		_, ok := a.Recv() // parks forever; Close must wake it
		recvClosed = !ok
	})
	net.Run() // quiescent with a parked in Recv
	net.Close()
	if !recvClosed {
		t.Error("Close did not unblock the parked Recv")
	}
	net.Close() // idempotent
}

func TestLoopbackCloseDrainsUnrunGoroutines(t *testing.T) {
	// Goroutines spawned but never scheduled: Close must still run them to
	// completion, with every blocking call observing the closed transport.
	net := NewLoopback(Config{})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	c := openOrFatal(t, net, 3)
	recvClosed, awaitClosed, sleptThrough := false, false, false
	a.Go(func() {
		_, ok := a.Recv()
		recvClosed = !ok
	})
	w := NewWaiter()
	b.Go(func() {
		_, ok := b.Await(w, 1<<40)
		awaitClosed = !ok
	})
	c.Go(func() {
		c.SleepUntil(1 << 40)
		sleptThrough = true
	})
	net.Close()
	if !recvClosed {
		t.Error("Recv did not observe the closed transport")
	}
	if !awaitClosed {
		t.Error("Await did not observe the closed transport")
	}
	if !sleptThrough {
		t.Error("SleepUntil did not release on the closed transport")
	}
}

func TestLoopbackControlEventOrder(t *testing.T) {
	// At the same tick: deliveries first, then control events, then timers.
	net := NewLoopback(Config{Link: LinkConfig{Latency: 2}})
	a := openOrFatal(t, net, 1)
	b := openOrFatal(t, net, 2)
	var order []string
	b.Go(func() {
		if _, ok := b.Recv(); ok {
			order = append(order, "deliver")
		}
	})
	c := openOrFatal(t, net, 3)
	c.Go(func() {
		c.SleepUntil(2)
		order = append(order, "timer")
	})
	net.At(2, func() { order = append(order, "control") })
	a.Go(func() {
		_ = a.Send(Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 1})
	})
	net.Run()
	if len(order) != 3 || order[0] != "deliver" || order[1] != "control" || order[2] != "timer" {
		t.Errorf("within-tick order = %v, want [deliver control timer]", order)
	}
	net.Close()
}
