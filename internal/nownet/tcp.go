package nownet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"nowover/internal/ids"
)

// TCPTransport is the wall-clock half of nownet: the same
// Transport/Endpoint contract as LoopbackNet, over real sockets. It is
// the gateway to everything the virtual-time scheduler cannot express —
// asynchrony, clock skew, kernel buffering, real stacks — and therefore
// intentionally nondeterministic: goroutines are scheduled by the Go
// runtime, time is the wall clock quantized into ticks, and delivery
// order is whatever TCP produces. Every site that reads the clock below
// carries a written //nowlint justification; the package's determinism
// oracle (sim-vs-runtime byte equality) applies to the loopback half
// only, and nothing here feeds a simulation table.
//
// Wire format: envelopes cross a connection back to back in their Encode
// framing; the receiving side reframes with StreamDecoder, so a torn or
// corrupted prefix degrades into counted resync bytes, never a wedged
// connection.
//
// Connection management: one outbound connection per destination node,
// dialed on demand at first send and serialized per peer. A send onto a
// connection the peer has torn down (daemon restart) reconnects once and
// rewrites; a second failure loses the envelope — exactly a real
// network's contract — and Node.Request's retry/backoff owns recovery.
// Inbound connections are accepted independently and only ever read;
// envelopes are routed to the local endpoint addressed by To.
type TCPTransport struct {
	cfg   TCPConfig
	start time.Time
	ln    net.Listener
	done  chan struct{}

	hostWG sync.WaitGroup // goroutines started via Endpoint.Go
	connWG sync.WaitGroup // accept loop and per-connection readers

	mu      sync.Mutex
	eps     map[ids.NodeID]*tcpEndpoint
	peers   map[ids.NodeID]string
	conns   map[ids.NodeID]*tcpConn
	inbound []net.Conn
	stats   TCPStats
	closed  bool
}

// TCPConfig shapes a TCP transport.
type TCPConfig struct {
	// Listen is the address to bind, e.g. "127.0.0.1:0" (the default).
	Listen string
	// Tick is the wall-clock duration of one transport tick — the unit
	// behind Now, Await deadlines and SleepUntil. Default 1ms, so default
	// RetryPolicy windows mean milliseconds here and virtual ticks on the
	// loopback net.
	Tick time.Duration
	// DialTimeout bounds one dial attempt. Default 2s.
	DialTimeout time.Duration
	// InboxDepth is the per-endpoint receive buffer in envelopes. When an
	// inbox is full the connection reader blocks, pushing backpressure
	// into TCP itself. Default 1024.
	InboxDepth int
}

// TCPStats counts transport-level outcomes. Snapshot via Stats; all
// fields only ever increase.
type TCPStats struct {
	Dials          int64 // first dials to a peer address
	Redials        int64 // reconnect attempts after a dead connection
	Accepts        int64 // inbound connections accepted
	Sent           int64 // envelopes handed to a connection write
	Delivered      int64 // envelopes routed into a local endpoint inbox
	DroppedNoRoute int64 // sends to a node with no known address
	DroppedUnknown int64 // arrivals addressed to no local endpoint
	WriteErrors    int64 // envelopes lost to a socket error after reconnect
	ResyncBytes    int64 // garbage bytes skipped by stream reframing
}

// withDefaults resolves zero fields.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 1024
	}
	return c
}

// tcpConn serializes writes (and the dial that precedes the first one)
// to one destination node.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCP binds the listener and starts the accept loop. Register peer
// addresses with SetPeer, attach nodes with Open.
func NewTCP(cfg TCPConfig) (*TCPTransport, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("nownet: tcp listen %s: %w", cfg.Listen, err)
	}
	t := &TCPTransport{
		cfg: cfg,
		//nowlint:rng the tick epoch of the wall-clock transport half; tick values pace socket timeouts and never reach a simulation table
		start: time.Now(),
		ln:    ln,
		done:  make(chan struct{}),
		eps:   make(map[ids.NodeID]*tcpEndpoint),
		peers: make(map[ids.NodeID]string),
		conns: make(map[ids.NodeID]*tcpConn),
	}
	t.connWG.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) the dial address for a node. Safe to
// call while traffic is flowing; the next (re)dial uses the new address.
func (t *TCPTransport) SetPeer(id ids.NodeID, addr string) {
	t.mu.Lock()
	t.peers[id] = addr
	t.mu.Unlock()
}

// Stats snapshots the transport counters.
func (t *TCPTransport) Stats() TCPStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Open implements Transport.
func (t *TCPTransport) Open(id ids.NodeID) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.eps[id]; dup {
		return nil, fmt.Errorf("nownet: endpoint %v already open", id)
	}
	ep := &tcpEndpoint{t: t, id: id, inbox: make(chan Envelope, t.cfg.InboxDepth)}
	t.eps[id] = ep
	return ep, nil
}

// Close implements Transport: stops accepting, tears down every
// connection, and waits for connection readers and hosted goroutines to
// drain. Blocked endpoint calls (Recv, Await, SleepUntil) unblock with a
// closed indication.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	inbound := t.inbound
	t.inbound = nil
	outbound := make([]*tcpConn, 0, len(t.conns))
	//nowlint:ordered teardown: every collected conn is closed unconditionally, so the close order of dead sockets is unobservable
	for _, pc := range t.conns {
		outbound = append(outbound, pc)
	}
	t.mu.Unlock()

	close(t.done)
	t.ln.Close()
	for _, pc := range outbound {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
	for _, c := range inbound {
		c.Close()
	}
	t.connWG.Wait()
	t.hostWG.Wait()
}

// nowTick converts elapsed wall-clock time into ticks.
func (t *TCPTransport) nowTick() int64 {
	//nowlint:rng the wall-clock transport's clock read: ticks here time out socket requests and pace daemon rounds, and never feed a simulation table
	return int64(time.Since(t.start) / t.cfg.Tick)
}

// untilTick converts an absolute tick deadline into a wall-clock wait.
func (t *TCPTransport) untilTick(tick int64) time.Duration {
	d := time.Duration(tick-t.nowTick()) * t.cfg.Tick
	if d < 0 {
		d = 0
	}
	return d
}

// bumpStat applies a counter update under the lock.
func (t *TCPTransport) bumpStat(f func(*TCPStats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// acceptLoop admits inbound connections until the listener closes.
func (t *TCPTransport) acceptLoop() {
	defer t.connWG.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.inbound = append(t.inbound, c)
		t.stats.Accepts++
		t.mu.Unlock()
		t.connWG.Add(1)
		go t.readConn(c)
	}
}

// readConn reframes envelopes off one inbound stream and routes each to
// the local endpoint it addresses. Any terminal stream error — peer
// hangup, reset, our own Close — simply ends the connection; the peer
// re-dials on demand.
func (t *TCPTransport) readConn(c net.Conn) {
	defer t.connWG.Done()
	defer c.Close()
	dec := NewStreamDecoder(c)
	var seenSkipped int64
	for {
		env, err := dec.Next()
		if skipped := dec.Skipped(); skipped != seenSkipped {
			delta := skipped - seenSkipped
			seenSkipped = skipped
			t.bumpStat(func(s *TCPStats) { s.ResyncBytes += delta })
		}
		if err != nil {
			return
		}
		t.deliver(env)
	}
}

// deliver routes one arrived envelope into its endpoint's inbox. A full
// inbox blocks the connection reader — backpressure flows into TCP — and
// Close unblocks it.
func (t *TCPTransport) deliver(env Envelope) {
	t.mu.Lock()
	ep := t.eps[env.To]
	if ep == nil {
		t.stats.DroppedUnknown++
		t.mu.Unlock()
		return
	}
	t.stats.Delivered++
	t.mu.Unlock()
	select {
	case ep.inbox <- env:
	case <-t.done:
	}
}

// send writes one envelope to its destination's connection, dialing on
// demand and reconnecting once over a dead connection. Losing an
// envelope (no route, unreachable peer, write error after reconnect)
// returns nil, mirroring the loopback net: transports lose messages
// silently and the node runtime's retries own recovery.
func (t *TCPTransport) send(env Envelope) error {
	wire, err := env.Encode(nil)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	addr, routed := t.peers[env.To]
	if !routed {
		t.stats.DroppedNoRoute++
		t.mu.Unlock()
		return nil
	}
	pc := t.conns[env.To]
	if pc == nil {
		pc = &tcpConn{}
		t.conns[env.To] = pc
	}
	t.stats.Sent++
	t.mu.Unlock()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		if !t.dial(pc, addr, false) {
			return nil
		}
	}
	if _, err := pc.conn.Write(wire); err == nil {
		return nil
	}
	// The connection went stale — peer restarted, socket reset. Reconnect
	// once and rewrite; envelopes written into the dead socket before the
	// error surfaced are already lost, like any network loss.
	pc.conn.Close()
	pc.conn = nil
	if !t.dial(pc, addr, true) {
		t.bumpStat(func(s *TCPStats) { s.WriteErrors++ })
		return nil
	}
	if _, err := pc.conn.Write(wire); err != nil {
		pc.conn.Close()
		pc.conn = nil
		t.bumpStat(func(s *TCPStats) { s.WriteErrors++ })
	}
	return nil
}

// dial attempts one connection to addr, recording it on pc. The caller
// holds pc.mu, so concurrent senders to the same peer wait rather than
// racing dials.
func (t *TCPTransport) dial(pc *tcpConn, addr string, redial bool) bool {
	c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	t.mu.Lock()
	if redial {
		t.stats.Redials++
	} else {
		t.stats.Dials++
	}
	closed := t.closed
	t.mu.Unlock()
	if err != nil {
		return false
	}
	if closed {
		c.Close()
		return false
	}
	pc.conn = c
	return true
}

// tcpEndpoint is one node's attachment to a TCPTransport.
type tcpEndpoint struct {
	t     *TCPTransport
	id    ids.NodeID
	inbox chan Envelope
}

// ID implements Endpoint.
func (ep *tcpEndpoint) ID() ids.NodeID { return ep.id }

// Now implements Endpoint.
func (ep *tcpEndpoint) Now() int64 { return ep.t.nowTick() }

// Send implements Endpoint: it validates the authenticated From and hands
// the envelope to the connection layer.
func (ep *tcpEndpoint) Send(env Envelope) error {
	if env.From != ep.id {
		return fmt.Errorf("nownet: endpoint %v cannot send as %v (links are authenticated)", ep.id, env.From)
	}
	return ep.t.send(env)
}

// Recv implements Endpoint.
func (ep *tcpEndpoint) Recv() (Envelope, bool) {
	select {
	case env := <-ep.inbox:
		return env, true
	case <-ep.t.done:
		return Envelope{}, false
	}
}

// Await implements Endpoint: park on the waiter's own slot until the
// reader completes it or the wall-clock deadline passes.
func (ep *tcpEndpoint) Await(w *Waiter, deadline int64) (Envelope, bool) {
	if env, ok := w.take(); ok {
		return env, true
	}
	//nowlint:rng wall-clock request timeout for the TCP half: the timer realizes the caller's RetryPolicy window in real time, nothing simulation-visible depends on it
	timer := time.NewTimer(ep.t.untilTick(deadline))
	defer timer.Stop()
	select {
	case env := <-w.ch:
		return env, true
	case <-timer.C:
		return w.take()
	case <-ep.t.done:
		return w.take()
	}
}

// Wake implements Endpoint. TCP waiters park on their own channel (Await
// selects on it directly), so completion is the wakeup and there is no
// scheduler handle to prod.
func (ep *tcpEndpoint) Wake(*Waiter) {}

// SleepUntil implements Endpoint.
func (ep *tcpEndpoint) SleepUntil(tick int64) {
	d := ep.t.untilTick(tick)
	if d <= 0 {
		return
	}
	//nowlint:rng wall-clock round pacing for the TCP half: the timer spaces protocol rounds in real time, mirroring the loopback net's virtual timers
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ep.t.done:
	}
}

// Go implements Endpoint: hosted goroutines run on the Go scheduler, and
// Close waits for them.
func (ep *tcpEndpoint) Go(fn func()) {
	ep.t.hostWG.Add(1)
	go func() {
		defer ep.t.hostWG.Done()
		fn()
	}()
}
