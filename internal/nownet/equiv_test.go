package nownet

import (
	"testing"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/runtime"
	"nowover/internal/xrand"
)

// The sim-vs-runtime oracle: the same protocol processes, stepped by the
// lockstep Engine and by round hosts over the loopback transport under a
// fixed schedule (unit latency, no loss), must produce byte-identical
// traces — same messages, same order, same rounds — plus equal message
// counts, per-class ledger charges, and decisions. Builders construct the
// process set twice from identical seeds so the two runs are independent
// but deterministic.

// runOnEngine executes procs on the lockstep engine, returning the trace
// and a ledger charged one message of class per emission.
func runOnEngine(t *testing.T, procs map[ids.NodeID]runtime.Process, rounds int, class metrics.Class) (*Trace, *metrics.Ledger) {
	t.Helper()
	e := runtime.NewEngine(procs)
	defer e.Close()
	trace := NewTrace()
	var led metrics.Ledger
	e.Observe(func(round int, m runtime.Message) {
		trace.Record(round, m)
		led.Charge(class, 1)
	})
	if err := e.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	return trace, &led
}

// runOnLoopback executes procs as round hosts over a lossless unit-latency
// loopback network and returns the cluster after quiescence.
func runOnLoopback(t *testing.T, procs map[ids.NodeID]runtime.Process, rounds int, class metrics.Class) *Cluster {
	t.Helper()
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	t.Cleanup(net.Close)
	cluster, err := NewCluster(net, procs, HostConfig{
		Rounds: rounds,
		Mode:   ModeLockstep,
		Class:  class,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	net.Run()
	return cluster
}

// assertEquivalent compares the two runs' traces and ledgers.
func assertEquivalent(t *testing.T, engineTrace *Trace, engineLed *metrics.Ledger, cluster *Cluster, class metrics.Class) {
	t.Helper()
	et, lt := engineTrace.String(), cluster.Trace().String()
	if et != lt {
		t.Fatalf("traces diverge:\n--- engine ---\n%s--- loopback ---\n%s", et, lt)
	}
	if em, lm := engineTrace.Messages(), cluster.Trace().Messages(); em != lm {
		t.Errorf("message counts diverge: engine %d, loopback %d", em, lm)
	}
	cled := cluster.Ledger()
	if e, l := engineLed.MessagesBy(class), cled.MessagesBy(class); e != l {
		t.Errorf("class %v charges diverge: engine %d, loopback %d", class, e, l)
	}
	if tr := cled.MessagesBy(metrics.ClassTransport); tr != 0 {
		t.Errorf("lossless lockstep run charged %d transport messages, want 0", tr)
	}
}

// buildRandNumProcs mirrors the runtime test fixture: n members, seed 42,
// per-node substreams, with silent Byzantine nodes at the given indices.
func buildRandNumProcs(t *testing.T, n int, silent map[int]bool) (map[ids.NodeID]runtime.Process, map[ids.NodeID]*runtime.RandNumNode) {
	t.Helper()
	cfg := runtime.RandNumConfig{R: 64}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	r := xrand.New(42)
	procs := make(map[ids.NodeID]runtime.Process, n)
	honest := make(map[ids.NodeID]*runtime.RandNumNode)
	for i := 0; i < n; i++ {
		id := ids.NodeID(i)
		sub := r.Split(uint64(i)) // always consume, to keep seeds aligned
		if silent[i] {
			procs[id] = runtime.SilentNode{}
			continue
		}
		node, err := runtime.NewRandNumNode(cfg, id, sub)
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = node
		honest[id] = node
	}
	return procs, honest
}

func TestEquivRandNum(t *testing.T) {
	const n, rounds = 8, 4
	engineProcs, engineHonest := buildRandNumProcs(t, n, nil)
	loopProcs, loopHonest := buildRandNumProcs(t, n, nil)

	engineTrace, engineLed := runOnEngine(t, engineProcs, rounds, metrics.ClassRandNum)
	cluster := runOnLoopback(t, loopProcs, rounds, metrics.ClassRandNum)
	assertEquivalent(t, engineTrace, engineLed, cluster, metrics.ClassRandNum)

	for id, en := range engineHonest {
		ev, eok := en.Output()
		lv, lok := loopHonest[id].Output()
		if eok != lok || ev != lv {
			t.Errorf("node %v outputs diverge: engine %d,%v loopback %d,%v", id, ev, eok, lv, lok)
		}
		if !lok {
			t.Errorf("node %v has no output on loopback", id)
		}
	}

	// Cross-check against the counted simulator's cost model, same as the
	// engine's own integration test: 3*s*(s-1) messages per draw.
	var led metrics.Ledger
	if _, _, err := (randnum.Ideal{}).Draw(&led, xrand.New(1), randnum.Params{Size: n, Byz: 0, R: 64}, nil); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Trace().Messages(); got != led.Messages() {
		t.Errorf("loopback messages %d != counted charge %d", got, led.Messages())
	}
}

func TestEquivRandNumSilentByzantine(t *testing.T) {
	const n, rounds = 9, 4
	silent := map[int]bool{3: true, 7: true}
	engineProcs, engineHonest := buildRandNumProcs(t, n, silent)
	loopProcs, loopHonest := buildRandNumProcs(t, n, silent)

	engineTrace, engineLed := runOnEngine(t, engineProcs, rounds, metrics.ClassRandNum)
	cluster := runOnLoopback(t, loopProcs, rounds, metrics.ClassRandNum)
	assertEquivalent(t, engineTrace, engineLed, cluster, metrics.ClassRandNum)

	var want int64
	var got bool
	for id, en := range engineHonest {
		ev, ok := en.Output()
		if !ok {
			t.Fatalf("engine node %v has no output", id)
		}
		lv, lok := loopHonest[id].Output()
		if !lok || lv != ev {
			t.Errorf("node %v outputs diverge: %d vs %d", id, ev, lv)
		}
		if got && ev != want {
			t.Errorf("engine nodes disagree: %d vs %d", ev, want)
		}
		want, got = ev, true
	}
}

// buildPhaseKingProcs mirrors the runtime test committee: n members, a
// scripted liar at the given index, fixed inputs.
func buildPhaseKingProcs(t *testing.T, n, maxFaults, liar int, inputs []int64) (map[ids.NodeID]runtime.Process, map[ids.NodeID]*runtime.PhaseKingNode) {
	t.Helper()
	cfg := runtime.PhaseKingConfig{MaxFaults: maxFaults}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	procs := make(map[ids.NodeID]runtime.Process, n)
	honest := make(map[ids.NodeID]*runtime.PhaseKingNode)
	for i := 0; i < n; i++ {
		id := ids.NodeID(i)
		if i == liar {
			procs[id] = runtime.NewPKLiarNode(cfg, id)
			continue
		}
		node := runtime.NewPhaseKingNode(cfg, id, inputs[i])
		procs[id] = node
		honest[id] = node
	}
	return procs, honest
}

func TestEquivPhaseKing(t *testing.T) {
	const n, tFaults, liar = 9, 2, 4
	inputs := []int64{1, 1, 0, 1, 0, 1, 1, 0, 1}
	rounds := 2*(tFaults+1) + 1 // protocol rounds plus the decision round

	engineProcs, engineHonest := buildPhaseKingProcs(t, n, tFaults, liar, inputs)
	loopProcs, loopHonest := buildPhaseKingProcs(t, n, tFaults, liar, inputs)

	engineTrace, engineLed := runOnEngine(t, engineProcs, rounds, metrics.ClassAgreement)
	cluster := runOnLoopback(t, loopProcs, rounds, metrics.ClassAgreement)
	assertEquivalent(t, engineTrace, engineLed, cluster, metrics.ClassAgreement)

	var first int64
	got := false
	for id, en := range engineHonest {
		ev, eok := en.Decision()
		lv, lok := loopHonest[id].Decision()
		if !eok || !lok {
			t.Fatalf("node %v undecided: engine %v loopback %v", id, eok, lok)
		}
		if ev != lv {
			t.Errorf("node %v decisions diverge: engine %d loopback %d", id, ev, lv)
		}
		if got && lv != first {
			t.Errorf("loopback disagreement at %v: %d vs %d", id, lv, first)
		}
		first, got = lv, true
	}
}

// buildRelayProcs mirrors the runtime relay fixture: a chain of clusters
// with forgers at byzAt (level -> count).
func buildRelayProcs(t *testing.T, levels, size int, byzAt map[int]int) (map[ids.NodeID]runtime.Process, []*runtime.RelayNode) {
	t.Helper()
	chain := make([][]ids.NodeID, levels)
	next := ids.NodeID(0)
	for l := 0; l < levels; l++ {
		for j := 0; j < size; j++ {
			chain[l] = append(chain[l], next)
			next++
		}
	}
	tok := runtime.NewToken(77, 1000)
	forged := runtime.NewToken(666, 0)
	procs := make(map[ids.NodeID]runtime.Process)
	var lastLevel []*runtime.RelayNode
	for l := 0; l < levels; l++ {
		nByz := byzAt[l]
		for j, id := range chain[l] {
			if j < nByz {
				procs[id] = runtime.NewForgingRelayNode(id, chain, l, forged)
				continue
			}
			var origin any
			if l == 0 {
				origin = tok
			}
			node := runtime.NewRelayNode(id, chain, l, origin)
			procs[id] = node
			if l == levels-1 {
				lastLevel = append(lastLevel, node)
			}
		}
	}
	return procs, lastLevel
}

func TestEquivRelay(t *testing.T) {
	const levels, size, rounds = 4, 7, 5
	byzAt := map[int]int{1: 3} // minority forgers at level 1
	engineProcs, engineLast := buildRelayProcs(t, levels, size, byzAt)
	loopProcs, loopLast := buildRelayProcs(t, levels, size, byzAt)

	engineTrace, engineLed := runOnEngine(t, engineProcs, rounds, metrics.ClassWalk)
	cluster := runOnLoopback(t, loopProcs, rounds, metrics.ClassWalk)
	assertEquivalent(t, engineTrace, engineLed, cluster, metrics.ClassWalk)

	want := runtime.NewToken(77, 1000)
	for i := range engineLast {
		etok, eok := engineLast[i].Accepted()
		ltok, lok := loopLast[i].Accepted()
		if !eok || !lok {
			t.Fatalf("last-level node %d missing token: engine %v loopback %v", i, eok, lok)
		}
		if any(etok) != any(ltok) {
			t.Errorf("last-level node %d tokens diverge: %+v vs %+v", i, etok, ltok)
		}
		if any(ltok) != want {
			t.Errorf("last-level node %d accepted %+v, want %+v", i, ltok, want)
		}
	}
}

// The degradation path: a phase-king committee over a lossy, temporarily
// partitioned network in reliable mode still reaches its decision —
// dropped envelopes convert into retransmissions, the partitioned member
// into a within-budget fault.
func TestLossyPhaseKingStillDecides(t *testing.T) {
	const n, tFaults = 9, 2
	rounds := 2*(tFaults+1) + 1

	cfg := runtime.PhaseKingConfig{MaxFaults: tFaults}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	procs := make(map[ids.NodeID]runtime.Process, n)
	honest := make(map[ids.NodeID]*runtime.PhaseKingNode)
	for i := 0; i < n; i++ {
		id := ids.NodeID(i)
		node := runtime.NewPhaseKingNode(cfg, id, 1) // unanimous input
		procs[id] = node
		honest[id] = node
	}

	net := NewLoopback(Config{Seed: 11, Link: LinkConfig{Latency: 1, Drop: 0.15}})
	defer net.Close()
	cluster, err := NewCluster(net, procs, HostConfig{
		Rounds:     rounds,
		RoundTicks: 1024,
		Mode:       ModeReliable,
		Policy:     RetryPolicy{Timeout: 4, Retries: 4, Backoff: 2, Cap: 32},
		Class:      metrics.ClassAgreement,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cut node 8 off for the first half of round 0, then heal.
	net.SetPartition(map[ids.NodeID]int{8: 1})
	net.At(500, func() { net.SetPartition(nil) })
	cluster.Start()
	net.Run()

	for id, node := range honest {
		v, ok := node.Decision()
		if !ok {
			t.Fatalf("node %v did not decide under loss", id)
		}
		if v != 1 {
			t.Errorf("node %v decided %d, validity violated", id, v)
		}
	}
	ns, hs := cluster.Stats()
	if ns.Retries == 0 {
		t.Error("lossy run made no retransmissions — fault injection inert?")
	}
	s := net.Stats()
	if s.DroppedRandom == 0 {
		t.Error("drop probability 0.15 dropped nothing")
	}
	if s.DroppedPartition == 0 {
		t.Error("partition dropped nothing")
	}
	// Transport overhead (acks + retransmissions) is charged to its own
	// class, never to the protocol's.
	led := cluster.Ledger()
	if led.MessagesBy(metrics.ClassTransport) == 0 {
		t.Error("reliable mode charged no transport overhead")
	}
	if em := led.MessagesBy(metrics.ClassAgreement); em != hs.Emitted {
		t.Errorf("agreement charges %d != emitted %d", em, hs.Emitted)
	}
}
