package nownet

import (
	"errors"
	"net"
	"testing"
	"time"

	"nowover/internal/ids"
	"nowover/internal/metrics"
)

// newTCPOrFatal builds a transport on an ephemeral localhost port.
func newTCPOrFatal(t *testing.T, cfg TCPConfig) *TCPTransport {
	t.Helper()
	tr, err := NewTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestTCPRequestResponse(t *testing.T) {
	// Two transports, two processes, one request/response over real
	// sockets: client dials on demand, server's response dials back.
	a := newTCPOrFatal(t, TCPConfig{})
	b := newTCPOrFatal(t, TCPConfig{})
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())

	server := NewNode(openTCPOrFatal(t, b, 2))
	server.Handle(typEcho, func(n *Node, env Envelope) {
		_ = n.Respond(env, env.Payload)
	})
	server.Start()
	client := NewNode(openTCPOrFatal(t, a, 1))
	client.Start()

	resp, attempts, err := client.Request(2, typEcho, []byte("ping"), RetryPolicy{Timeout: 2000, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "ping" || resp.From != 2 || attempts != 1 {
		t.Errorf("resp = %+v attempts = %d", resp, attempts)
	}
	as, bs := a.Stats(), b.Stats()
	if as.Dials != 1 || as.Sent != 1 || as.Delivered != 1 {
		t.Errorf("client transport stats = %+v", as)
	}
	if bs.Accepts != 1 || bs.Dials != 1 || bs.Delivered != 1 {
		t.Errorf("server transport stats = %+v", bs)
	}
}

func openTCPOrFatal(t *testing.T, tr *TCPTransport, id ids.NodeID) Endpoint {
	t.Helper()
	ep, err := tr.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	// The reconnect path: the server's transport dies and a replacement
	// comes up on a fresh address. The client's first write after the
	// restart either fails immediately (reconnect inside the same send) or
	// vanishes into the dead socket's buffer (recovered by Request's
	// retry); either way the request must eventually succeed over a new
	// connection.
	a := newTCPOrFatal(t, TCPConfig{})
	b, err := NewTCP(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())
	serverOn := func(tr *TCPTransport) {
		ep, err := tr.Open(2)
		if err != nil {
			t.Fatal(err)
		}
		s := NewNode(ep)
		s.Handle(typEcho, func(n *Node, env Envelope) { _ = n.Respond(env, env.Payload) })
		s.Start()
	}
	serverOn(b)
	client := NewNode(openTCPOrFatal(t, a, 1))
	client.Start()
	if _, _, err := client.Request(2, typEcho, []byte("one"), RetryPolicy{Timeout: 2000, Retries: 2}); err != nil {
		t.Fatal(err)
	}

	b.Close()
	b2 := newTCPOrFatal(t, TCPConfig{})
	b2.SetPeer(1, a.Addr())
	serverOn(b2)
	a.SetPeer(2, b2.Addr())

	resp, _, err := client.Request(2, typEcho, []byte("two"), RetryPolicy{Timeout: 200, Retries: 6})
	if err != nil {
		t.Fatalf("request after peer restart: %v", err)
	}
	if string(resp.Payload) != "two" {
		t.Errorf("resp = %+v", resp)
	}
	if as := a.Stats(); as.Dials+as.Redials < 2 {
		t.Errorf("client transport stats = %+v, want a second (re)dial after restart", as)
	}
}

func TestTCPNoRouteBehavesLikeLoss(t *testing.T) {
	// A destination with no registered address is silent loss, mirroring
	// the loopback net's unknown-endpoint drop: Request times out and the
	// transport counts the unroutable sends.
	a := newTCPOrFatal(t, TCPConfig{})
	client := NewNode(openTCPOrFatal(t, a, 1))
	client.Start()
	_, attempts, err := client.Request(9, typEcho, nil, RetryPolicy{Timeout: 20, Retries: 1})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if as := a.Stats(); as.DroppedNoRoute != 2 {
		t.Errorf("transport stats = %+v, want DroppedNoRoute 2", as)
	}
	if cs := client.Stats(); cs.Failed != 1 || cs.Timeouts != 2 {
		t.Errorf("client stats = %+v", cs)
	}
}

func TestTCPStreamResyncAndUnknownEndpoint(t *testing.T) {
	// A raw hostile connection: garbage bytes resync and are counted, a
	// well-formed frame addressed to nobody is dropped and counted, and a
	// well-formed frame to a real endpoint still gets through afterwards.
	b := newTCPOrFatal(t, TCPConfig{})
	got := make(chan Envelope, 1)
	server := NewNode(openTCPOrFatal(t, b, 2))
	server.Handle(typEcho, func(_ *Node, env Envelope) { got <- env })
	server.Start()

	c, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	garbage := []byte{0x01, 0x02, 0x03, 0x04}
	orphan, _ := Envelope{Kind: KindOneway, Type: typEcho, From: 7, To: 99, MsgID: 1}.Encode(nil)
	real, _ := Envelope{Kind: KindOneway, Type: typEcho, From: 7, To: 2, MsgID: 2, Payload: []byte("through")}.Encode(nil)
	var wire []byte
	wire = append(wire, garbage...)
	wire = append(wire, orphan...)
	wire = append(wire, real...)
	if _, err := c.Write(wire); err != nil {
		t.Fatal(err)
	}

	select {
	case env := <-got:
		if string(env.Payload) != "through" {
			t.Errorf("delivered %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame after garbage never delivered")
	}
	waitFor(t, "resync and orphan counters", func() bool {
		s := b.Stats()
		return s.ResyncBytes == int64(len(garbage)) && s.DroppedUnknown == 1
	})
}

// TestTCPPhaseKingMatchesLoopback is the cross-transport oracle from the
// acceptance criteria: the same phase-king committee — five members, one
// scripted liar, unanimous honest inputs — runs once over the
// deterministic loopback net (lockstep mode) and once over TCP on
// localhost (reliable request/ack mode, real sockets, wall-clock rounds).
// The TCP run must decide with unanimous validity on exactly the
// decisions the loopback run produced.
func TestTCPPhaseKingMatchesLoopback(t *testing.T) {
	const n, tFaults, liar = 5, 1, 2
	inputs := []int64{1, 1, 0, 1, 1} // index 2 is the liar; honest inputs unanimous
	rounds := 2*(tFaults+1) + 1

	loopProcs, loopHonest := buildPhaseKingProcs(t, n, tFaults, liar, inputs)
	runOnLoopback(t, loopProcs, rounds, metrics.ClassAgreement)

	tcpProcs, tcpHonest := buildPhaseKingProcs(t, n, tFaults, liar, inputs)
	tr := newTCPOrFatal(t, TCPConfig{})
	for i := 0; i < n; i++ {
		tr.SetPeer(ids.NodeID(i), tr.Addr())
	}
	cluster, err := NewCluster(tr, tcpProcs, HostConfig{
		Rounds:     rounds,
		RoundTicks: 100, // 100ms rounds at the default 1ms tick
		Mode:       ModeReliable,
		Policy:     RetryPolicy{Timeout: 30, Retries: 3, Backoff: 2, Cap: 100},
		Class:      metrics.ClassAgreement,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	cluster.Wait()

	var first int64
	got := false
	for id, ln := range loopHonest {
		lv, lok := ln.Decision()
		tv, tok := tcpHonest[id].Decision()
		if !lok || !tok {
			t.Fatalf("node %v undecided: loopback %v tcp %v", id, lok, tok)
		}
		if lv != tv {
			t.Errorf("node %v decisions diverge: loopback %d tcp %d", id, lv, tv)
		}
		if tv != 1 {
			t.Errorf("node %v decided %d, validity violated (honest inputs unanimous 1)", id, tv)
		}
		if got && tv != first {
			t.Errorf("tcp disagreement at %v: %d vs %d", id, tv, first)
		}
		first, got = tv, true
	}
	// Every protocol message crossed a real socket: the transport must
	// have dialed itself and delivered the committee's traffic.
	s := tr.Stats()
	if s.Dials == 0 || s.Accepts == 0 || s.Delivered == 0 {
		t.Errorf("tcp run used no sockets: %+v", s)
	}
	ns, _ := cluster.Stats()
	if ns.ForgedResponses != 0 || ns.Misrouted != 0 {
		t.Errorf("clean localhost run counted forgeries or misroutes: %+v", ns)
	}
}
