package nownet

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"
)

// chunkReader yields the input in caller-chosen chunk sizes, cycling
// through cuts, to exercise every read-boundary placement.
type chunkReader struct {
	data []byte
	cuts []int
	i    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.cuts[c.i%len(c.cuts)]
	c.i++
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// mustEncode concatenates the envelopes' wire forms.
func mustEncode(t *testing.T, envs ...Envelope) []byte {
	t.Helper()
	var wire []byte
	for _, e := range envs {
		var err error
		wire, err = e.Encode(wire)
		if err != nil {
			t.Fatal(err)
		}
	}
	return wire
}

// drain decodes envelopes until the stream ends, returning them with the
// terminal error.
func drain(r io.Reader) ([]Envelope, int64, error) {
	d := NewStreamDecoder(r)
	var envs []Envelope
	for {
		env, err := d.Next()
		if err != nil {
			return envs, d.Skipped(), err
		}
		envs = append(envs, env)
	}
}

func sameEnvelope(a, b Envelope) bool {
	return a.Kind == b.Kind && a.Type == b.Type && a.From == b.From &&
		a.To == b.To && a.MsgID == b.MsgID && bytes.Equal(a.Payload, b.Payload)
}

func TestStreamPartialHeaderAcrossReads(t *testing.T) {
	// One byte per read: every header field arrives split across a read
	// boundary, and the decoder must carry the partial header until it has
	// all of it.
	envs := []Envelope{
		{Kind: KindRequest, Type: 3, From: 1, To: 2, MsgID: 42, Payload: []byte("ping")},
		{Kind: KindResponse, Type: 3, From: 2, To: 1, MsgID: 42, Payload: []byte("pong")},
	}
	wire := mustEncode(t, envs...)
	got, skipped, err := drain(iotest.OneByteReader(bytes.NewReader(wire)))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("terminal err = %v, want io.EOF", err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d bytes of a clean stream", skipped)
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i := range envs {
		if !sameEnvelope(got[i], envs[i]) {
			t.Errorf("envelope %d: %+v, want %+v", i, got[i], envs[i])
		}
	}
}

func TestStreamPayloadSplitMidFrame(t *testing.T) {
	// Awkward cut points: mid-magic-run, mid-payload, exactly on a frame
	// boundary. The payload itself contains magic bytes — framing is by
	// length prefix, so they must never trigger a resync.
	payload := bytes.Repeat([]byte{envMagic, 0x00}, 300)
	envs := []Envelope{
		{Kind: KindOneway, Type: 9, From: 7, To: 8, MsgID: 1, Payload: payload},
		{Kind: KindRequest, Type: 1, From: 8, To: 7, MsgID: 2},
	}
	wire := mustEncode(t, envs...)
	for _, cuts := range [][]int{{1}, {2, 3}, {7, 31, 1}, {len(wire)}, {envHeaderSize}, {envHeaderSize - 1, 512}} {
		got, skipped, err := drain(&chunkReader{data: append([]byte(nil), wire...), cuts: cuts})
		if !errors.Is(err, io.EOF) {
			t.Fatalf("cuts %v: terminal err = %v, want io.EOF", cuts, err)
		}
		if skipped != 0 || len(got) != len(envs) {
			t.Fatalf("cuts %v: %d envelopes (want %d), %d skipped (want 0)", cuts, len(got), len(envs), skipped)
		}
		for i := range envs {
			if !sameEnvelope(got[i], envs[i]) {
				t.Errorf("cuts %v: envelope %d diverged", cuts, i)
			}
		}
	}
}

func TestStreamResyncOnGarbage(t *testing.T) {
	env := Envelope{Kind: KindRequest, Type: 3, From: 1, To: 2, MsgID: 9, Payload: []byte("alive")}
	frame := mustEncode(t, env)
	// Garbage before the frame: plain junk without magic, then a lone magic
	// byte whose "header" is illegal (kind 0xFF), then the real frame, then
	// trailing junk without magic (a clean end, not a truncated frame).
	junk := []byte{0x00, 0x01, 0x02, 0xFF, 0x42}
	decoy := append([]byte{envMagic, 0xFF, 0x00}, bytes.Repeat([]byte{0x99}, envHeaderSize)...)
	trailer := []byte{0x10, 0x20, 0x30}
	var stream []byte
	stream = append(stream, junk...)
	stream = append(stream, decoy...)
	stream = append(stream, frame...)
	stream = append(stream, trailer...)

	for name, r := range map[string]io.Reader{
		"one-shot":    bytes.NewReader(stream),
		"byte-a-time": iotest.OneByteReader(bytes.NewReader(append([]byte(nil), stream...))),
	} {
		got, skipped, err := drain(r)
		if !errors.Is(err, io.EOF) {
			t.Fatalf("%s: terminal err = %v, want io.EOF (trailing junk is a clean end)", name, err)
		}
		if len(got) != 1 || !sameEnvelope(got[0], env) {
			t.Fatalf("%s: decoded %d envelopes, want the one real frame", name, len(got))
		}
		want := int64(len(junk) + len(decoy) + len(trailer))
		if skipped != want {
			t.Errorf("%s: skipped %d bytes, want %d", name, skipped, want)
		}
	}
}

func TestStreamMidFrameEOF(t *testing.T) {
	env := Envelope{Kind: KindOneway, Type: 1, From: 1, To: 2, MsgID: 3, Payload: []byte("truncated payload")}
	frame := mustEncode(t, env)
	for _, cut := range []int{1, envHeaderSize - 1, envHeaderSize, len(frame) - 1} {
		_, _, err := drain(bytes.NewReader(frame[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestStreamReadError(t *testing.T) {
	boom := errors.New("socket reset")
	_, _, err := drain(iotest.ErrReader(boom))
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the reader's error surfaced", err)
	}
}

// FuzzReframe pins the decoder's two load-bearing properties on arbitrary
// byte soup: it never panics or over-consumes, and the decoded sequence —
// envelopes, skip count and terminal error — is chunking-independent (the
// same bytes fed one byte at a time must reproduce the one-shot decode
// exactly). Every decoded envelope must also survive the codec round trip.
func FuzzReframe(f *testing.F) {
	frame, _ := Envelope{Kind: KindRequest, Type: 3, From: 1, To: 2, MsgID: 42, Payload: []byte("seed")}.Encode(nil)
	f.Add(frame)
	f.Add(append([]byte{0x00, envMagic, 0xFF}, frame...))
	f.Add(frame[:len(frame)-2])
	f.Add(bytes.Repeat([]byte{envMagic}, envHeaderSize+8))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		oneShot, skipOne, errOne := drain(bytes.NewReader(data))
		byteWise, skipByte, errByte := drain(iotest.OneByteReader(bytes.NewReader(data)))
		if len(oneShot) != len(byteWise) || skipOne != skipByte || !errors.Is(errOne, errByte) {
			t.Fatalf("chunking changed the decode: %d/%d envelopes, %d/%d skipped, %v/%v",
				len(oneShot), len(byteWise), skipOne, skipByte, errOne, errByte)
		}
		var consumed int64 = skipOne
		for i, env := range oneShot {
			if !sameEnvelope(env, byteWise[i]) {
				t.Fatalf("envelope %d diverged across chunkings", i)
			}
			re, err := env.Encode(nil)
			if err != nil {
				t.Fatalf("decoded envelope failed to re-encode: %v", err)
			}
			consumed += int64(len(re))
		}
		if consumed > int64(len(data)) {
			t.Fatalf("accounted for %d bytes of a %d-byte stream", consumed, len(data))
		}
	})
}
