// Package nownet is the message-passing transport runtime: the gateway
// from the single-process step simulator to nodes that communicate only
// through envelopes on links with latency, loss and partitions.
//
// The layer cake, bottom up:
//
//   - Envelope is the wire format: Kind (oneway / request / response),
//     Type, From, To, MsgID, payload bytes, with a fixed binary codec
//     (every envelope crosses the transport as bytes, even in-process).
//   - Transport / Endpoint abstract the medium. The one implementation
//     here, LoopbackNet, is a deterministic in-process virtual-time
//     network: per-link latency, jitter, drop probability and partition
//     sets are driven by xrand substreams keyed on the directed link, so
//     a run is a pure function of the seed and the schedule. No wall
//     clock, no math/rand — time is a tick counter the scheduler owns.
//   - Node is the per-process runtime in the Kademlia shape: a single
//     reader goroutine drains the endpoint, routes responses to parked
//     waiter channels through an inflight map keyed by MsgID, and
//     dispatches requests to registered handlers. The reader never
//     blocks: waiter completion is a non-blocking send into a 1-buffered
//     slot, and late responses are counted, not delivered.
//   - Request retries with capped exponential backoff, so a dropped
//     envelope degrades into retransmissions instead of deadlocking the
//     round that was waiting on it.
//   - RoundHost lifts the lockstep engine's protocol state machines
//     (runtime.Process: commit-reveal randNum, phase-king, majority
//     relay) onto nownet nodes unchanged, pacing rounds with virtual
//     timers.
//
// The determinism contract survives the lift and is the package's oracle:
// under a fixed schedule (unit latency, no loss) a loopback run of any of
// the ported primitives reproduces the lockstep Engine's trace
// byte-for-byte — message counts, decisions and per-class ledger charges —
// extending the repo's serial-vs-sharded lockstep idiom to sim-vs-runtime.
package nownet

import (
	"errors"

	"nowover/internal/ids"
)

// ErrClosed is returned by operations on a closed transport or endpoint.
var ErrClosed = errors.New("nownet: transport closed")

// ErrTimeout is returned (wrapped) by Request when every attempt, retries
// included, timed out without a response.
var ErrTimeout = errors.New("nownet: request timed out")

// Transport hands out endpoints, one per node identity.
type Transport interface {
	// Open attaches a node to the transport. Each identity may be opened
	// at most once.
	Open(id ids.NodeID) (Endpoint, error)
	// Close tears the transport down; every blocked endpoint operation
	// unblocks with a closed indication.
	Close()
}

// Endpoint is one node's attachment to a transport. Send never blocks on
// the receiver; the blocking calls (Recv, Await, SleepUntil) suspend the
// calling goroutine under the transport's notion of time — virtual ticks
// for the loopback net. Blocking calls must be made from goroutines
// started through Go, so the transport can account for them.
type Endpoint interface {
	// ID returns the node identity this endpoint was opened for.
	ID() ids.NodeID
	// Send enqueues one envelope. It validates that From matches the
	// endpoint identity (links are authenticated in the paper's model)
	// and never blocks; envelopes lost to faults vanish silently, exactly
	// like a real network.
	Send(env Envelope) error
	// Recv blocks until an envelope arrives or the endpoint closes.
	Recv() (Envelope, bool)
	// Now returns the transport's current time in ticks.
	Now() int64
	// SleepUntil blocks until the given tick (no-op if already past).
	SleepUntil(tick int64)
	// Await blocks until the waiter is completed and woken, or the
	// deadline tick passes, whichever is first.
	Await(w *Waiter, deadline int64) (Envelope, bool)
	// Wake unblocks the goroutine parked in Await on w, if any. Callers
	// complete the waiter first, then wake.
	Wake(w *Waiter)
	// Go starts fn as a transport-scheduled goroutine.
	Go(fn func())
}

// Waiter is the one-shot response slot a requester parks on and the reader
// loop completes: the "waiter channel in the inflight map". The channel is
// buffered so completion never blocks the reader.
type Waiter struct {
	ch chan Envelope
	// park is the transport's handle for the goroutine blocked in Await
	// (nil when none). Owned by the transport.
	park any
}

// NewWaiter returns an empty waiter.
func NewWaiter() *Waiter { return &Waiter{ch: make(chan Envelope, 1)} }

// Complete delivers the response into the waiter without blocking. It
// returns false if the slot was already filled (a duplicate response).
func (w *Waiter) Complete(env Envelope) bool {
	select {
	case w.ch <- env:
		return true
	default:
		return false
	}
}

// take drains the slot without blocking.
func (w *Waiter) take() (Envelope, bool) {
	select {
	case env := <-w.ch:
		return env, true
	default:
		return Envelope{}, false
	}
}

// RetryPolicy shapes Request's timeout and retransmission behavior: the
// first attempt waits Timeout ticks, every retry multiplies the window by
// Backoff up to Cap. Zero fields take the defaults.
type RetryPolicy struct {
	Timeout int64 // initial response window, ticks (default 8)
	Retries int   // retransmissions after the first attempt (default 3)
	Backoff int64 // window multiplier per retry (default 2)
	Cap     int64 // ceiling on the window (default 8*Timeout)
}

// normalized fills defaulted fields.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 8
	}
	if p.Retries < 0 {
		p.Retries = 0
	}
	if p.Backoff < 2 {
		p.Backoff = 2
	}
	if p.Cap <= 0 {
		p.Cap = 8 * p.Timeout
	}
	if p.Cap < p.Timeout {
		p.Cap = p.Timeout
	}
	return p
}
