package nownet

import (
	"errors"
	"sync"
	"testing"

	"nowover/internal/ids"
)

const typEcho byte = 7

// newEchoNode builds a started node whose typEcho handler echoes request
// payloads back.
func newEchoNode(t *testing.T, net *LoopbackNet, id ids.NodeID) *Node {
	t.Helper()
	n := NewNode(openOrFatal(t, net, id))
	n.Handle(typEcho, func(n *Node, env Envelope) {
		_ = n.Respond(env, env.Payload)
	})
	n.Start()
	return n
}

func TestNodeRequestResponse(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	server := newEchoNode(t, net, 1)
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	var resp Envelope
	var attempts int
	var err error
	client.Go(func() {
		resp, attempts, err = client.Request(1, typEcho, []byte("ping"), RetryPolicy{})
	})
	net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
	if string(resp.Payload) != "ping" || resp.Kind != KindResponse || resp.From != 1 {
		t.Errorf("response = %+v", resp)
	}
	cs, ss := client.Stats(), server.Stats()
	if cs.Requests != 1 || cs.Retries != 0 || cs.Timeouts != 0 || cs.Failed != 0 {
		t.Errorf("client stats = %+v", cs)
	}
	if ss.Responses != 1 {
		t.Errorf("server stats = %+v", ss)
	}
}

func TestNodeRequestTimesOut(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	var attempts int
	var err error
	var doneAt int64
	pol := RetryPolicy{Timeout: 4, Retries: 2, Backoff: 2, Cap: 100}
	client.Go(func() {
		_, attempts, err = client.Request(99, typEcho, nil, pol) // no such peer
		doneAt = client.Endpoint().Now()
	})
	net.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
	// Windows 4, 8, 16: the request must give up exactly at tick 28.
	if doneAt != 28 {
		t.Errorf("gave up at tick %d, want 28 (4+8+16)", doneAt)
	}
	cs := client.Stats()
	if cs.Retries != 2 || cs.Timeouts != 3 || cs.Failed != 1 {
		t.Errorf("client stats = %+v", cs)
	}
}

func TestNodeBackoffCapped(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	var doneAt int64
	pol := RetryPolicy{Timeout: 4, Retries: 3, Backoff: 4, Cap: 8}
	client.Go(func() {
		_, _, _ = client.Request(99, typEcho, nil, pol)
		doneAt = client.Endpoint().Now()
	})
	net.Run()
	// Windows 4, then 16 capped to 8, 8, 8: give up at 28, not 4+16+64+256.
	if doneAt != 28 {
		t.Errorf("gave up at tick %d, want 28 (4+8+8+8 capped)", doneAt)
	}
}

func TestNodeRetryRecoversDrop(t *testing.T) {
	// Drop every envelope on the request link until tick 6: the first
	// attempt dies, the retransmission gets through, and the receiver sees
	// the request exactly once (same MsgID both times).
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	var serverSeen []uint64
	server := NewNode(openOrFatal(t, net, 1))
	server.Handle(typEcho, func(n *Node, env Envelope) {
		serverSeen = append(serverSeen, env.MsgID)
		_ = n.Respond(env, nil)
	})
	server.Start()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	net.SetLink(2, 1, LinkConfig{Latency: 1, Drop: 1.0})
	net.At(6, func() { net.SetLink(2, 1, LinkConfig{Latency: 1}) })
	var attempts int
	var err error
	client.Go(func() {
		_, attempts, err = client.Request(1, typEcho, nil, RetryPolicy{Timeout: 4, Retries: 3})
	})
	net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (first send was dropped)", attempts)
	}
	if len(serverSeen) != 1 {
		t.Errorf("server saw %d requests, want 1", len(serverSeen))
	}
	if cs := client.Stats(); cs.Retries == 0 {
		t.Errorf("client stats = %+v, want retries > 0", cs)
	}
}

func TestNodeLateResponseCounted(t *testing.T) {
	// The server answers after the client's whole retry span: the response
	// finds no parked waiter and must be counted, not delivered.
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	server := NewNode(openOrFatal(t, net, 1))
	server.Handle(typEcho, func(n *Node, env Envelope) {
		n.Go(func() {
			n.Endpoint().SleepUntil(50)
			_ = n.Respond(env, nil)
		})
	})
	server.Start()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	var err error
	client.Go(func() {
		_, _, err = client.Request(1, typEcho, nil, RetryPolicy{Timeout: 4, Retries: 1})
	})
	net.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Two handler invocations (original + retransmission) each answer late.
	if cs := client.Stats(); cs.LateResponses != 2 {
		t.Errorf("client stats = %+v, want LateResponses 2", cs)
	}
}

func TestNodeCastAndUnhandled(t *testing.T) {
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	var got []byte
	server := NewNode(openOrFatal(t, net, 1))
	server.Handle(typEcho, func(_ *Node, env Envelope) {
		got = append(got, env.Payload...)
	})
	server.Start()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	client.Go(func() {
		_ = client.Cast(1, typEcho, []byte("one"))
		_ = client.Cast(1, 42, []byte("no handler"))
	})
	net.Run()
	if string(got) != "one" {
		t.Errorf("handler got %q", got)
	}
	if ss := server.Stats(); ss.Unhandled != 1 {
		t.Errorf("server stats = %+v, want Unhandled 1", ss)
	}
	if cs := client.Stats(); cs.Casts != 2 {
		t.Errorf("client stats = %+v, want Casts 2", cs)
	}
}

func TestNodeForgedResponseDropped(t *testing.T) {
	// The response-forgery regression: a Byzantine third node that observes
	// (or, here, guesses — per-node MsgIDs start at 1) the MsgID of a
	// request addressed to someone else races a forged response against the
	// honest one. Links are authenticated, so the forgery necessarily
	// carries From=3; correlating by MsgID alone would deliver it anyway.
	// Pre-fix the forged payload won the race and Request returned it;
	// post-fix it is counted in ForgedResponses and the honest response,
	// arriving 19 ticks later, still completes the waiter.
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	server := NewNode(openOrFatal(t, net, 1))
	server.Handle(typEcho, func(n *Node, env Envelope) {
		n.Go(func() {
			n.Endpoint().SleepUntil(20)
			_ = n.Respond(env, []byte("honest"))
		})
	})
	server.Start()
	byz := NewNode(openOrFatal(t, net, 3))
	byz.Start()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	byz.Go(func() {
		_ = byz.Endpoint().Send(Envelope{
			Kind: KindResponse, Type: typEcho,
			From: 3, To: 2, MsgID: 1, Payload: []byte("forged"),
		})
	})
	var resp Envelope
	var err error
	client.Go(func() {
		resp, _, err = client.Request(1, typEcho, []byte("ping"), RetryPolicy{Timeout: 64})
	})
	net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.From != 1 || string(resp.Payload) != "honest" {
		t.Fatalf("request completed by forged response: from %v payload %q", resp.From, resp.Payload)
	}
	cs := client.Stats()
	if cs.ForgedResponses != 1 {
		t.Errorf("client stats = %+v, want ForgedResponses 1", cs)
	}
	if cs.Failed != 0 || cs.LateResponses != 0 {
		t.Errorf("client stats = %+v, want no failures or late responses", cs)
	}
}

// scriptEndpoint is a minimal Endpoint for accounting paths the loopback
// net cannot reach by construction: transport send errors mid-retry, and
// misrouted deliveries from a transport with a bad peer table (loopback
// routes by To, so it never misdelivers).
type scriptEndpoint struct {
	id      ids.NodeID
	sendErr []error // result of the k-th Send; nil beyond the script
	sends   int
	inbox   chan Envelope
	wg      sync.WaitGroup
}

func newScriptEndpoint(id ids.NodeID, sendErr ...error) *scriptEndpoint {
	return &scriptEndpoint{id: id, sendErr: sendErr, inbox: make(chan Envelope, 16)}
}

func (s *scriptEndpoint) ID() ids.NodeID { return s.id }
func (s *scriptEndpoint) Send(env Envelope) error {
	var err error
	if s.sends < len(s.sendErr) {
		err = s.sendErr[s.sends]
	}
	s.sends++
	return err
}
func (s *scriptEndpoint) Recv() (Envelope, bool) {
	env, ok := <-s.inbox
	return env, ok
}
func (s *scriptEndpoint) Now() int64       { return 0 }
func (s *scriptEndpoint) SleepUntil(int64) {}

// Await times out immediately: the waiter's slot is all there is.
func (s *scriptEndpoint) Await(w *Waiter, _ int64) (Envelope, bool) { return w.take() }
func (s *scriptEndpoint) Wake(*Waiter)                              {}
func (s *scriptEndpoint) Go(fn func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		fn()
	}()
}

func TestNodeRequestSendErrorBumpsFailed(t *testing.T) {
	// The retry-accounting regression: a transport send error must count
	// the request as Failed on every exit path, not only on retry
	// exhaustion. Attempt 1 sends fine and times out; attempt 2's Send
	// errors — pre-fix that path returned with Failed still 0.
	errBoom := errors.New("boom")
	for _, tc := range []struct {
		name     string
		script   []error
		retries  int
		failedAt int
	}{
		{name: "first attempt", script: []error{errBoom}, retries: 3, failedAt: 1},
		{name: "retry attempt", script: []error{nil, errBoom}, retries: 3, failedAt: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ep := newScriptEndpoint(2, tc.script...)
			n := NewNode(ep)
			_, attempts, err := n.Request(1, typEcho, nil, RetryPolicy{Timeout: 4, Retries: tc.retries})
			if !errors.Is(err, errBoom) {
				t.Fatalf("err = %v, want %v", err, errBoom)
			}
			if attempts != tc.failedAt {
				t.Errorf("attempts = %d, want %d", attempts, tc.failedAt)
			}
			if s := n.Stats(); s.Failed != 1 {
				t.Errorf("stats = %+v, want Failed 1", s)
			}
		})
	}
}

func TestNodeMisroutedDropped(t *testing.T) {
	// An envelope whose To is some other node must be dropped and counted,
	// never dispatched to a handler or matched against a waiter — on a real
	// transport it is another node's mail, misdelivered.
	ep := newScriptEndpoint(2)
	n := NewNode(ep)
	handled := 0
	n.Handle(typEcho, func(*Node, Envelope) { handled++ })
	n.Start()
	ep.inbox <- Envelope{Kind: KindOneway, Type: typEcho, From: 1, To: 3, MsgID: 9}
	ep.inbox <- Envelope{Kind: KindResponse, Type: typEcho, From: 1, To: 3, MsgID: 9}
	ep.inbox <- Envelope{Kind: KindOneway, Type: typEcho, From: 1, To: 2, MsgID: 10}
	close(ep.inbox)
	ep.wg.Wait()
	s := n.Stats()
	if s.Misrouted != 2 {
		t.Errorf("stats = %+v, want Misrouted 2", s)
	}
	if s.LateResponses != 0 || s.Unhandled != 0 {
		t.Errorf("stats = %+v: misrouted envelopes leaked into other counters", s)
	}
	if handled != 1 {
		t.Errorf("handler ran %d times, want 1 (only the correctly-addressed envelope)", handled)
	}
}

func TestNodeConcurrentRequests(t *testing.T) {
	// Two outstanding requests from the same node: responses come back in
	// reverse order and the inflight map must route each to its own waiter.
	net := NewLoopback(Config{Link: LinkConfig{Latency: 1}})
	defer net.Close()
	server := NewNode(openOrFatal(t, net, 1))
	server.Handle(typEcho, func(n *Node, env Envelope) {
		delay := int64(10)
		if string(env.Payload) == "slow" {
			delay = 20
		}
		n.Go(func() {
			n.Endpoint().SleepUntil(n.Endpoint().Now() + delay)
			_ = n.Respond(env, env.Payload)
		})
	})
	server.Start()
	client := NewNode(openOrFatal(t, net, 2))
	client.Start()
	results := make(map[string]string)
	for _, name := range []string{"slow", "fast"} {
		name := name
		client.Go(func() {
			resp, _, err := client.Request(1, typEcho, []byte(name), RetryPolicy{Timeout: 64})
			if err != nil {
				t.Errorf("request %q: %v", name, err)
				return
			}
			results[name] = string(resp.Payload)
		})
	}
	net.Run()
	if results["slow"] != "slow" || results["fast"] != "fast" {
		t.Errorf("responses misrouted: %v", results)
	}
}
