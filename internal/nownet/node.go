package nownet

import (
	"fmt"
	"sync"

	"nowover/internal/ids"
)

// Handler processes an inbound request or oneway envelope. Handlers run
// inline on the node's reader goroutine and must not block — reply with
// Respond, hand longer work to Go. (Blocking the reader would stall every
// response correlation on the node; "the reader never blocks" is the
// design rule inherited from the Kademlia exemplar.)
type Handler func(n *Node, env Envelope)

// NodeStats counts a node's request/response outcomes.
type NodeStats struct {
	Casts           int64 // oneway envelopes sent
	Requests        int64 // Request calls
	Retries         int64 // retransmissions beyond each first attempt
	Timeouts        int64 // attempt windows that expired
	Failed          int64 // Requests that gave up (every retry timed out, or a send error)
	Responses       int64 // responses sent by handlers
	LateResponses   int64 // responses with no parked waiter (post-timeout)
	ForgedResponses int64 // responses whose From is not the peer the request went to
	Misrouted       int64 // inbound envelopes addressed to some other node, dropped
	Unhandled       int64 // inbound envelopes with no registered handler
}

// Node is the per-process runtime over an Endpoint: one reader goroutine
// drains the transport, routes responses to parked waiters via the
// inflight map, and dispatches requests to handlers by envelope Type.
type Node struct {
	ep Endpoint

	mu       sync.Mutex
	inflight map[uint64]inflightEntry
	nextID   uint64
	stats    NodeStats
	started  bool

	handlers [256]Handler
}

// inflightEntry binds a parked waiter to the peer its request was sent
// to. Correlating responses by MsgID alone would let any third node that
// observes (or guesses) the ID forge the response to a request addressed
// to someone else; the reader only completes a waiter when the response's
// authenticated From matches the recorded peer.
type inflightEntry struct {
	w    *Waiter
	peer ids.NodeID
}

// NewNode wraps an endpoint. Register handlers, then Start.
func NewNode(ep Endpoint) *Node {
	return &Node{ep: ep, inflight: make(map[uint64]inflightEntry)}
}

// ID returns the node's transport identity.
func (n *Node) ID() ids.NodeID { return n.ep.ID() }

// Endpoint returns the underlying endpoint.
func (n *Node) Endpoint() Endpoint { return n.ep }

// Handle registers the handler for one envelope type. Must be called
// before Start.
func (n *Node) Handle(typ byte, h Handler) { n.handlers[typ] = h }

// Start launches the reader loop. Idempotent.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.ep.Go(n.readLoop)
}

// Go starts a protocol goroutine on the node's transport.
func (n *Node) Go(fn func()) { n.ep.Go(fn) }

// Stats snapshots the node counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// readLoop is the reader: it never blocks on anything but Recv itself.
func (n *Node) readLoop() {
	for {
		env, ok := n.ep.Recv()
		if !ok {
			return
		}
		if env.To != n.ID() {
			// Someone else's mail. The loopback net routes by To so this
			// cannot happen there, but a real transport with a stale or
			// hostile peer table can misdeliver; processing the envelope
			// anyway would answer (or complete waiters) on another node's
			// behalf.
			n.bump(func(s *NodeStats) { s.Misrouted++ })
			continue
		}
		switch env.Kind {
		case KindResponse:
			n.mu.Lock()
			e := n.inflight[env.MsgID]
			n.mu.Unlock()
			// Complete is a non-blocking send into the waiter's buffered
			// slot; a missing waiter or an already-filled slot means the
			// requester gave up or a duplicate arrived — count it, drop it.
			// A waiter whose recorded peer differs is a forgery: links are
			// authenticated, so From is trustworthy and the response did
			// not come from the node the request was sent to.
			if e.w == nil {
				n.bump(func(s *NodeStats) { s.LateResponses++ })
				continue
			}
			if env.From != e.peer {
				n.bump(func(s *NodeStats) { s.ForgedResponses++ })
				continue
			}
			if !e.w.Complete(env) {
				n.bump(func(s *NodeStats) { s.LateResponses++ })
				continue
			}
			n.ep.Wake(e.w)
		default:
			h := n.handlers[env.Type]
			if h == nil {
				n.bump(func(s *NodeStats) { s.Unhandled++ })
				continue
			}
			h(n, env)
		}
	}
}

// bump applies a counter update under the lock.
func (n *Node) bump(f func(*NodeStats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// allocID mints a per-node-unique message ID.
func (n *Node) allocID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	return n.nextID
}

// Cast sends a fire-and-forget envelope.
func (n *Node) Cast(to ids.NodeID, typ byte, payload []byte) error {
	n.bump(func(s *NodeStats) { s.Casts++ })
	return n.ep.Send(Envelope{
		Kind: KindOneway, Type: typ,
		From: n.ID(), To: to,
		MsgID: n.allocID(), Payload: payload,
	})
}

// Respond answers a request, echoing its MsgID so the peer's reader can
// correlate it to the parked waiter.
func (n *Node) Respond(req Envelope, payload []byte) error {
	n.bump(func(s *NodeStats) { s.Responses++ })
	return n.ep.Send(Envelope{
		Kind: KindResponse, Type: req.Type,
		From: n.ID(), To: req.From,
		MsgID: req.MsgID, Payload: payload,
	})
}

// Request sends a request and blocks until its response arrives, retrying
// with capped exponential backoff per pol. Retransmissions reuse the
// original MsgID, so receivers dedupe on (From, MsgID) and a late response
// to any attempt completes the same waiter. Returns the response, the
// number of attempts made, and an error wrapping ErrTimeout when every
// attempt expired.
func (n *Node) Request(to ids.NodeID, typ byte, payload []byte, pol RetryPolicy) (Envelope, int, error) {
	pol = pol.normalized()
	msgID := n.allocID()
	w := NewWaiter()
	n.mu.Lock()
	n.stats.Requests++
	n.inflight[msgID] = inflightEntry{w: w, peer: to}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.inflight, msgID)
		n.mu.Unlock()
	}()

	env := Envelope{
		Kind: KindRequest, Type: typ,
		From: n.ID(), To: to,
		MsgID: msgID, Payload: payload,
	}
	window := pol.Timeout
	attempts := 0
	for {
		attempts++
		if attempts > 1 {
			n.bump(func(s *NodeStats) { s.Retries++ })
		}
		if err := n.ep.Send(env); err != nil {
			// Every failed exit bumps Failed, retries included — a send
			// error on attempt k>1 is still a request that gave up.
			n.bump(func(s *NodeStats) { s.Failed++ })
			return Envelope{}, attempts, err
		}
		if resp, ok := n.ep.Await(w, n.ep.Now()+window); ok {
			return resp, attempts, nil
		}
		n.bump(func(s *NodeStats) { s.Timeouts++ })
		if attempts > pol.Retries {
			n.bump(func(s *NodeStats) { s.Failed++ })
			return Envelope{}, attempts, fmt.Errorf("nownet: request type %d to %v after %d attempts: %w", typ, to, attempts, ErrTimeout)
		}
		window *= pol.Backoff
		if window > pol.Cap {
			window = pol.Cap
		}
	}
}
