// Package adversary implements the paper's adversary model (section 2): a
// static Byzantine adversary with full knowledge of the network that
// controls a fraction tau <= 1/3 - epsilon of the nodes, corrupts joining
// nodes at its discretion, and induces churn — either by cycling its own
// nodes through join-leave operations or by forcing honest nodes out (DoS).
//
// A Strategy decides, for each time step's churn direction, exactly which
// node joins or leaves and whether a joiner is corrupted, subject to the
// global tau budget enforced by the Budget helper. The baseline
// RandomChurn strategy models benign dynamics; JoinLeaveAttack and
// DOSAttack implement the targeted attacks that motivate NOW's shuffling
// (section 3.3).
package adversary

import (
	"nowover/internal/ids"
	"nowover/internal/xrand"
)

// View is the full-information snapshot a strategy sees (the paper grants
// the adversary knowledge of every node's position). core.World implements
// it.
type View interface {
	NumNodes() int
	NumByzantine() int
	Clusters() []ids.ClusterID
	Size(c ids.ClusterID) int
	Byz(c ids.ClusterID) int
	Members(c ids.ClusterID) []ids.NodeID
	ClusterOf(x ids.NodeID) (ids.ClusterID, bool)
	IsByzantine(x ids.NodeID) bool
	RandomNode(r *xrand.Rand) (ids.NodeID, bool)
	RandomHonestNode(r *xrand.Rand) (ids.NodeID, bool)
	RandomByzantineNode(r *xrand.Rand) (ids.NodeID, bool)
	RandomCluster(r *xrand.Rand) (ids.ClusterID, bool)
}

// Direction is the net churn the workload schedule wants this step.
type Direction int

// Churn directions.
const (
	Grow Direction = iota
	Shrink
)

// OpKind discriminates operations.
type OpKind int

// Operation kinds.
const (
	OpJoin OpKind = iota
	OpLeave
	OpNoop
)

// Op is one churn operation decided by a strategy.
type Op struct {
	Kind OpKind
	// Byz marks a corrupted joiner (OpJoin).
	Byz bool
	// Contact, when HasContact, is the adversary-chosen contact cluster
	// for a join; otherwise the joiner contacts a uniform cluster.
	Contact    ids.ClusterID
	HasContact bool
	// Victim is the departing node (OpLeave).
	Victim ids.NodeID
}

// Strategy decides the step's operation.
type Strategy interface {
	Decide(v View, r *xrand.Rand, dir Direction) Op
	// Name labels the strategy in experiment tables.
	Name() string
}

// Budget enforces the tau bound: may one more Byzantine node enter?
type Budget struct{ Tau float64 }

// CanCorrupt reports whether corrupting the next joiner keeps the
// Byzantine fraction at or below Tau.
func (b Budget) CanCorrupt(v View) bool {
	return float64(v.NumByzantine()+1) <= b.Tau*float64(v.NumNodes()+1)
}

// RandomChurn is benign dynamics: joiners are corrupted only to track the
// tau budget (the adversary corrupts what it is entitled to), leavers are
// uniform over all nodes.
type RandomChurn struct {
	Budget Budget
}

var _ Strategy = (*RandomChurn)(nil)

// Name implements Strategy.
func (s *RandomChurn) Name() string { return "random-churn" }

// Decide implements Strategy.
func (s *RandomChurn) Decide(v View, r *xrand.Rand, dir Direction) Op {
	if dir == Shrink {
		x, ok := v.RandomNode(r)
		if !ok {
			return Op{Kind: OpNoop}
		}
		return Op{Kind: OpLeave, Victim: x}
	}
	// Corrupt with probability tau, subject to budget, so the Byzantine
	// fraction tracks tau through growth.
	byz := r.Bool(s.Budget.Tau) && s.Budget.CanCorrupt(v)
	return Op{Kind: OpJoin, Byz: byz}
}

// JoinLeaveAttack is the section 3.3 attack: the adversary fixates on one
// cluster and cycles its Byzantine nodes through leave/re-join, hoping
// placement randomness eventually concentrates them in the target. Against
// randCl-based placement plus exchange this is futile (Theorem 3); against
// the no-shuffle ablation it captures the target quickly.
type JoinLeaveAttack struct {
	Budget Budget
	target ids.ClusterID
	hasTgt bool
}

var _ Strategy = (*JoinLeaveAttack)(nil)

// Name implements Strategy.
func (s *JoinLeaveAttack) Name() string { return "join-leave-attack" }

// TargetProvider is the two-sided target contract the world's hook
// lifecycle consumes. Target is the COMMIT-scoped side: called serially
// (by Decide at step boundaries, by CapturedHijacker.BeginBatch before a
// batch plans), it may mutate the strategy — re-validate the fixation,
// ratchet onto a new beachhead. PlanTarget is the PLAN-scoped side: a
// pure read of the cached fixation that concurrent plan workers may call
// while an op batch is in flight. Keeping the mutation on the serial side
// is what lets hooked worlds plan in parallel deterministically.
type TargetProvider interface {
	Target(v View) ids.ClusterID
	PlanTarget() (ids.ClusterID, bool)
}

// Target returns the currently attacked cluster, re-fixating if the
// cached target dissolved. Commit-scoped: must not be called while a
// batch is planning (see TargetProvider).
func (s *JoinLeaveAttack) Target(v View) ids.ClusterID {
	if s.hasTgt {
		// Re-validate: the target may have merged away.
		for _, c := range v.Clusters() {
			if c == s.target {
				return s.target
			}
		}
		s.hasTgt = false
	}
	// Fixate on the cluster where the adversary already holds the largest
	// fraction — the most promising beachhead.
	best := v.Clusters()[0]
	bestFrac := -1.0
	for _, c := range v.Clusters() {
		if sz := v.Size(c); sz > 0 {
			if f := float64(v.Byz(c)) / float64(sz); f > bestFrac {
				best, bestFrac = c, f
			}
		}
	}
	s.target, s.hasTgt = best, true
	return best
}

// PlanTarget returns the cached fixation without validating or mutating
// it: the pure plan-scoped read of TargetProvider. The target may have
// dissolved since the last commit-scoped Target call; readers that care
// (CapturedHijacker.Redirect) check liveness against their view and treat
// a dead target as a miss.
func (s *JoinLeaveAttack) PlanTarget() (ids.ClusterID, bool) { return s.target, s.hasTgt }

// Decide implements Strategy.
func (s *JoinLeaveAttack) Decide(v View, r *xrand.Rand, dir Direction) Op {
	target := s.Target(v)
	if dir == Shrink {
		// Re-rolling placement means leaving and later re-joining; during
		// a net-shrink phase re-joins are scarce, so the adversary only
		// cycles its own nodes while it holds (nearly) its full budget —
		// otherwise it would grind its corruption mass away. Below budget
		// it spends the departure on an honest node instead.
		atBudget := float64(v.NumByzantine()) >= 0.95*s.Budget.Tau*float64(v.NumNodes())
		if atBudget {
			for attempt := 0; attempt < 8; attempt++ {
				x, ok := v.RandomByzantineNode(r)
				if !ok {
					break
				}
				if c, ok2 := v.ClusterOf(x); ok2 && c != target {
					return Op{Kind: OpLeave, Victim: x}
				}
			}
		}
		x, ok := v.RandomHonestNode(r)
		if !ok {
			return Op{Kind: OpNoop}
		}
		return Op{Kind: OpLeave, Victim: x}
	}
	if s.Budget.CanCorrupt(v) {
		// Corrupted joiner contacts the target directly (the walk still
		// re-randomizes placement — that is the defense being tested).
		return Op{Kind: OpJoin, Byz: true, Contact: target, HasContact: true}
	}
	return Op{Kind: OpJoin, Byz: false}
}

// DOSAttack forces honest members of the target cluster out of the
// network (the paper allows the adversary to evict honest nodes, e.g. via
// denial of service), trying to raise its relative share there, while
// spending its corruption budget on joiners aimed at the same cluster.
type DOSAttack struct {
	Budget Budget
	attack JoinLeaveAttack
}

var _ Strategy = (*DOSAttack)(nil)

// Name implements Strategy.
func (s *DOSAttack) Name() string { return "dos-attack" }

// PlanTarget exposes the embedded join-leave ratchet's cached fixation
// (pure, plan-scoped). DOSAttack deliberately does NOT implement the
// commit-scoped Target side of TargetProvider: its per-target state is
// ratcheted exclusively through Decide, which the drivers call serially
// at step boundaries, so there is nothing for a batch commit to fold.
func (s *DOSAttack) PlanTarget() (ids.ClusterID, bool) { return s.attack.PlanTarget() }

// Decide implements Strategy.
func (s *DOSAttack) Decide(v View, r *xrand.Rand, dir Direction) Op {
	s.attack.Budget = s.Budget
	target := s.attack.Target(v)
	if dir == Shrink {
		// Evict an honest member of the target cluster.
		var honest []ids.NodeID
		for _, x := range v.Members(target) {
			if !v.IsByzantine(x) {
				honest = append(honest, x)
			}
		}
		if len(honest) > 0 {
			return Op{Kind: OpLeave, Victim: honest[r.Intn(len(honest))]}
		}
		x, ok := v.RandomHonestNode(r)
		if !ok {
			return Op{Kind: OpNoop}
		}
		return Op{Kind: OpLeave, Victim: x}
	}
	if s.Budget.CanCorrupt(v) {
		return Op{Kind: OpJoin, Byz: true, Contact: target, HasContact: true}
	}
	return Op{Kind: OpJoin, Byz: false}
}

// CapturedHijacker is the walk-redirection hook the adversary installs:
// any walk transiting a captured cluster is steered to the attack target.
//
// The hook is snapshot-scoped so hooked worlds can plan op batches in
// parallel: Redirect and Score are pure reads of the strategy's cached
// fixation (PlanTarget) validated against the view, safe to call from
// concurrent plan workers; all mutation happens on the serial lifecycle —
// BeginBatch re-fixates the target against the pre-batch world through
// the strategy's commit-scoped Target, and CommitOp folds the hook's
// ratchet counters in op order after the batch applies. Under the classic
// one-op-per-step drivers the same split holds with the strategy's Decide
// call playing BeginBatch's refresh role.
type CapturedHijacker struct {
	// View is the adversary's full-information world view (core.World).
	View View
	// Strategy supplies the target fixation (e.g. *JoinLeaveAttack).
	Strategy TargetProvider

	// Hijacked counts walks this hook redirected, folded deterministically
	// by CommitOp from the scheduler's per-op hijack tallies (Redirect
	// itself runs concurrently and must not count).
	Hijacked int64
	// CommittedOps counts operations folded through CommitOp.
	CommittedOps int64
}

// Redirect implements walk.Hijacker: a pure read of the cached fixation.
// Misses (ok=false) when no strategy is wired, when nothing has fixated
// yet, or when the cached target has dissolved since the last
// commit-scoped refresh — a mid-walk re-fixation here would mutate shared
// state under concurrent planning.
func (h *CapturedHijacker) Redirect(_ *xrand.Rand, _ ids.ClusterID) (ids.ClusterID, bool) {
	if h.Strategy == nil {
		return 0, false
	}
	tgt, ok := h.Strategy.PlanTarget()
	if !ok {
		return 0, false
	}
	if h.View != nil && h.View.Size(tgt) == 0 {
		return 0, false
	}
	return tgt, true
}

// Score implements the steer hook (core.Steerer): the cached target
// scores 1, everything else 0. Pure, like Redirect.
func (h *CapturedHijacker) Score(c ids.ClusterID) float64 {
	if h.Strategy == nil {
		return 0
	}
	if tgt, ok := h.Strategy.PlanTarget(); ok && c == tgt {
		return 1
	}
	return 0
}

// BeginBatch implements the serial half of core.BatchHook: re-fixate the
// strategy's target against the pre-batch world so every plan-phase
// Redirect/Score of the coming batch reads one coherent snapshot
// decision. The refresh is skipped while the cached target is still live
// — the ratchet holds, and the steady-state hooked plan path stays
// allocation-free.
func (h *CapturedHijacker) BeginBatch() {
	if h.Strategy == nil || h.View == nil {
		return
	}
	if tgt, ok := h.Strategy.PlanTarget(); ok && h.View.Size(tgt) > 0 {
		return
	}
	h.Strategy.Target(h.View)
}

// CommitOp implements the op-ordered commit half of core.BatchHook,
// folding the scheduler's per-op hijack tally into the hook's ratchet
// counters. Called serially in op order after the batch's effects are in
// place, alongside the scheduler's own order-sensitive bookkeeping.
func (h *CapturedHijacker) CommitOp(_ int, _ bool, hijacked int64) {
	h.CommittedOps++
	h.Hijacked += hijacked
}
