package adversary_test

import (
	"testing"

	"nowover/internal/adversary"
	"nowover/internal/core"
	"nowover/internal/ids"
	"nowover/internal/xrand"
)

func view(t *testing.T, n0 int, tau float64) *core.World {
	t.Helper()
	cfg := core.DefaultConfig(1024)
	cfg.Seed = 21
	w, err := core.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := int(tau * float64(n0))
	if err := w.Bootstrap(n0, func(slot int) bool { return slot < budget }); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBudgetEnforcement(t *testing.T) {
	w := view(t, 300, 0.30)
	b := adversary.Budget{Tau: 0.30}
	// Exactly at budget: corrupting one more must be rejected.
	if b.CanCorrupt(w) {
		t.Errorf("budget allowed corruption at %d/%d with tau=0.3",
			w.NumByzantine(), w.NumNodes())
	}
	loose := adversary.Budget{Tau: 0.5}
	if !loose.CanCorrupt(w) {
		t.Error("loose budget refused corruption")
	}
}

func TestRandomChurnDirections(t *testing.T) {
	w := view(t, 300, 0.1)
	s := &adversary.RandomChurn{Budget: adversary.Budget{Tau: 0.1}}
	r := xrand.New(1)
	if s.Name() == "" {
		t.Error("empty name")
	}
	joins, leaves := 0, 0
	for i := 0; i < 100; i++ {
		op := s.Decide(w, r, adversary.Grow)
		if op.Kind != adversary.OpJoin {
			t.Fatalf("grow produced %v", op.Kind)
		}
		if op.HasContact {
			t.Error("benign churn picked a contact")
		}
		joins++
		op = s.Decide(w, r, adversary.Shrink)
		if op.Kind != adversary.OpLeave {
			t.Fatalf("shrink produced %v", op.Kind)
		}
		if !w.Contains(op.Victim) {
			t.Error("victim not in network")
		}
		leaves++
	}
	if joins != 100 || leaves != 100 {
		t.Error("direction not respected")
	}
}

func TestRandomChurnRespectsBudget(t *testing.T) {
	w := view(t, 300, 0.30)
	s := &adversary.RandomChurn{Budget: adversary.Budget{Tau: 0.30}}
	r := xrand.New(2)
	for i := 0; i < 200; i++ {
		op := s.Decide(w, r, adversary.Grow)
		if op.Byz {
			t.Fatal("corrupted joiner beyond budget")
		}
	}
}

func TestJoinLeaveAttackTargetsSticky(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	t1 := s.Target(w)
	t2 := s.Target(w)
	if t1 != t2 {
		t.Errorf("target drifted %v -> %v without cause", t1, t2)
	}
	// The chosen target must be the most-polluted cluster.
	bestFrac := -1.0
	for _, c := range w.Clusters() {
		if sz := w.Size(c); sz > 0 {
			f := float64(w.Byz(c)) / float64(sz)
			if f > bestFrac {
				bestFrac = f
			}
		}
	}
	if got := float64(w.Byz(t1)) / float64(w.Size(t1)); got < bestFrac-1e-9 {
		t.Errorf("target fraction %.3f below best %.3f", got, bestFrac)
	}
}

func TestJoinLeaveAttackOps(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	r := xrand.New(3)
	op := s.Decide(w, r, adversary.Grow)
	if op.Kind != adversary.OpJoin || !op.Byz || !op.HasContact {
		t.Errorf("grow op = %+v, want corrupted join with contact", op)
	}
	if op.Contact != s.Target(w) {
		t.Error("join contact is not the target")
	}
	op = s.Decide(w, r, adversary.Shrink)
	if op.Kind != adversary.OpLeave {
		t.Fatalf("shrink op = %+v", op)
	}
	if c, _ := w.ClusterOf(op.Victim); c == s.Target(w) && w.IsByzantine(op.Victim) {
		t.Error("attack pulled its own node out of the target cluster")
	}
}

func TestJoinLeaveAttackBudgetFallback(t *testing.T) {
	w := view(t, 300, 0.30)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.30}}
	op := s.Decide(w, xrand.New(4), adversary.Grow)
	if op.Byz {
		t.Error("attack corrupted beyond budget")
	}
}

func TestDOSAttackEvictsTargetHonest(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.DOSAttack{Budget: adversary.Budget{Tau: 0.25}}
	r := xrand.New(5)
	op := s.Decide(w, r, adversary.Shrink)
	if op.Kind != adversary.OpLeave {
		t.Fatalf("shrink op = %+v", op)
	}
	if w.IsByzantine(op.Victim) {
		t.Error("DoS evicted a Byzantine node")
	}
	op = s.Decide(w, r, adversary.Grow)
	if op.Kind != adversary.OpJoin || !op.Byz || !op.HasContact {
		t.Errorf("grow op = %+v", op)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

// fixedProvider is a TargetProvider with a directly settable fixation.
type fixedProvider struct {
	target ids.ClusterID
	has    bool
	// commits counts commit-scoped Target calls (BeginBatch refreshes).
	commits int
}

func (p *fixedProvider) Target(adversary.View) ids.ClusterID {
	p.commits++
	p.has = true
	return p.target
}

func (p *fixedProvider) PlanTarget() (ids.ClusterID, bool) { return p.target, p.has }

func TestCapturedHijackerRedirectMissPaths(t *testing.T) {
	r := xrand.New(1)
	// No strategy wired: always a miss.
	h := &adversary.CapturedHijacker{}
	if _, ok := h.Redirect(r, 0); ok {
		t.Error("strategy-less hijacker redirected")
	}
	// Strategy wired but nothing fixated yet: miss (no mid-walk
	// re-fixation under the pure plan-phase contract).
	p := &fixedProvider{target: 7}
	h = &adversary.CapturedHijacker{Strategy: p}
	if _, ok := h.Redirect(r, 3); ok {
		t.Error("redirected before any fixation")
	}
	// Fixated, no view: hit without a liveness check.
	p.has = true
	if tgt, ok := h.Redirect(r, 3); !ok || tgt != 7 {
		t.Errorf("redirect = %v,%v, want 7,true", tgt, ok)
	}
	// Fixated on a cluster the view reports dissolved: miss.
	w := view(t, 300, 0.2)
	dead := ids.ClusterID(1 << 20) // never minted
	h = &adversary.CapturedHijacker{View: w, Strategy: &fixedProvider{target: dead, has: true}}
	if _, ok := h.Redirect(r, 3); ok {
		t.Error("redirected to a dissolved target")
	}
	// Fixated on a live cluster with a view: hit.
	live := w.Clusters()[0]
	h = &adversary.CapturedHijacker{View: w, Strategy: &fixedProvider{target: live, has: true}}
	if tgt, ok := h.Redirect(r, 3); !ok || tgt != live {
		t.Errorf("redirect = %v,%v, want %v,true", tgt, ok, live)
	}
}

func TestCapturedHijackerScore(t *testing.T) {
	p := &fixedProvider{target: 7, has: true}
	h := &adversary.CapturedHijacker{Strategy: p}
	if got := h.Score(7); got != 1 {
		t.Errorf("Score(target) = %v, want 1", got)
	}
	if got := h.Score(8); got != 0 {
		t.Errorf("Score(other) = %v, want 0", got)
	}
	if got := (&adversary.CapturedHijacker{}).Score(7); got != 0 {
		t.Errorf("strategy-less Score = %v, want 0", got)
	}
	p.has = false
	if got := h.Score(7); got != 0 {
		t.Errorf("unfixated Score = %v, want 0", got)
	}
}

func TestCapturedHijackerLifecycle(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	h := &adversary.CapturedHijacker{View: w, Strategy: s}
	// BeginBatch fixates when nothing is cached...
	h.BeginBatch()
	tgt, ok := s.PlanTarget()
	if !ok {
		t.Fatal("BeginBatch did not fixate a target")
	}
	// ...and holds the ratchet while the fixation is live.
	h.BeginBatch()
	if tgt2, _ := s.PlanTarget(); tgt2 != tgt {
		t.Errorf("live target drifted %v -> %v across BeginBatch", tgt, tgt2)
	}
	// CommitOp folds the scheduler's per-op hijack tallies in op order.
	h.CommitOp(0, true, 2)
	h.CommitOp(1, false, 0)
	h.CommitOp(2, true, 1)
	if h.Hijacked != 3 || h.CommittedOps != 3 {
		t.Errorf("commit fold = hijacked %d ops %d, want 3 and 3", h.Hijacked, h.CommittedOps)
	}
}

func TestBudgetCanCorruptEdges(t *testing.T) {
	// CanCorrupt is (byz+1) <= tau*(n+1): exercise the exact boundary,
	// both sides of it, and the degenerate budgets.
	cases := []struct {
		name    string
		tau     float64
		n, byz  int
		corrupt bool
	}{
		{"exact boundary holds", 0.5, 99, 49, true},       // 50 <= 0.5*100
		{"one over boundary", 0.5, 99, 50, false},         // 51 > 0.5*100
		{"zero tau refuses always", 0, 10, 0, false},      // 1 > 0
		{"empty network, positive tau", 0.5, 0, 0, false}, // 1 > 0.5
		{"empty network, tau 1", 1, 0, 0, true},           // 1 <= 1
		{"saturated", 0.3, 9, 9, false},
		{"well under budget", 0.3, 999, 100, true},
	}
	for _, tc := range cases {
		b := adversary.Budget{Tau: tc.tau}
		v := &countView{n: tc.n, byz: tc.byz}
		if got := b.CanCorrupt(v); got != tc.corrupt {
			t.Errorf("%s: CanCorrupt(tau=%v, n=%d, byz=%d) = %v, want %v",
				tc.name, tc.tau, tc.n, tc.byz, got, tc.corrupt)
		}
	}
}

// countView is a minimal View for budget arithmetic tests.
type countView struct{ n, byz int }

func (v *countView) NumNodes() int                                      { return v.n }
func (v *countView) NumByzantine() int                                  { return v.byz }
func (v *countView) Clusters() []ids.ClusterID                          { return nil }
func (v *countView) Size(ids.ClusterID) int                             { return 0 }
func (v *countView) Byz(ids.ClusterID) int                              { return 0 }
func (v *countView) Members(ids.ClusterID) []ids.NodeID                 { return nil }
func (v *countView) ClusterOf(ids.NodeID) (ids.ClusterID, bool)         { return 0, false }
func (v *countView) IsByzantine(ids.NodeID) bool                        { return false }
func (v *countView) RandomNode(*xrand.Rand) (ids.NodeID, bool)          { return 0, false }
func (v *countView) RandomHonestNode(*xrand.Rand) (ids.NodeID, bool)    { return 0, false }
func (v *countView) RandomByzantineNode(*xrand.Rand) (ids.NodeID, bool) { return 0, false }
func (v *countView) RandomCluster(*xrand.Rand) (ids.ClusterID, bool)    { return 0, false }

func TestJoinLeaveAttackTargetDeterministicAcrossSplitSubstreams(t *testing.T) {
	// Two identical worlds, two strategies, decision randomness drawn
	// from substreams split off one base stream with equal labels: the
	// fixation ratchet and the full op sequence must match exactly. This
	// is the property the batched driver's per-op substream discipline
	// stands on — Target/PlanTarget never consume randomness, so the
	// fixation cannot depend on which substream (or how much of it) each
	// op consumed.
	w1 := view(t, 300, 0.2)
	w2 := view(t, 300, 0.2)
	s1 := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	s2 := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	base1 := xrand.New(42)
	base2 := xrand.New(42)
	for i := 0; i < 64; i++ {
		r1 := base1.Split(uint64(i))
		r2 := base2.Split(uint64(i))
		dir := adversary.Grow
		if i%2 == 1 {
			dir = adversary.Shrink
		}
		op1 := s1.Decide(w1, r1, dir)
		op2 := s2.Decide(w2, r2, dir)
		if op1 != op2 {
			t.Fatalf("step %d: ops diverged %+v vs %+v", i, op1, op2)
		}
		t1, ok1 := s1.PlanTarget()
		t2, ok2 := s2.PlanTarget()
		if t1 != t2 || ok1 != ok2 {
			t.Fatalf("step %d: fixation diverged %v,%v vs %v,%v", i, t1, ok1, t2, ok2)
		}
		// Burn an extra draw on stream 1 only: the fixation must not move
		// (PlanTarget is rng-free), even though the substream positions
		// now differ.
		_ = r1.Intn(7)
		if t1b, _ := s1.PlanTarget(); t1b != t1 {
			t.Fatalf("step %d: fixation moved after an unrelated draw", i)
		}
	}
}

func TestJoinLeaveAttackTargetRevalidated(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	first := s.Target(w)
	// Shrink until the original target may have merged away; the
	// strategy must always return a live cluster.
	r := xrand.New(7)
	for i := 0; i < 150; i++ {
		x, ok := w.RandomNode(r)
		if !ok {
			break
		}
		if err := w.Leave(x); err != nil {
			t.Fatal(err)
		}
	}
	tgt := s.Target(w)
	alive := false
	for _, c := range w.Clusters() {
		if c == tgt {
			alive = true
		}
	}
	if !alive {
		t.Errorf("target %v (was %v) is not a live cluster", tgt, first)
	}
}

func TestJoinLeaveAttackShrinkBelowBudgetSparesByz(t *testing.T) {
	// With byz mass well below budget, the attack must not burn its own
	// nodes on shrink steps.
	w := view(t, 300, 0.05)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.30}}
	r := xrand.New(9)
	for i := 0; i < 50; i++ {
		op := s.Decide(w, r, adversary.Shrink)
		if op.Kind == adversary.OpLeave && w.IsByzantine(op.Victim) {
			t.Fatal("attack evicted its own node while under budget")
		}
	}
}

func TestDOSAttackShrinkFallbackWithoutTargetHonest(t *testing.T) {
	// Make the target cluster fully Byzantine so the preferred victims
	// are absent; the fallback must still produce an honest victim.
	w := view(t, 300, 0.2)
	s := &adversary.DOSAttack{Budget: adversary.Budget{Tau: 0.9}}
	r := xrand.New(11)
	op := s.Decide(w, r, adversary.Grow) // fixes the target
	if op.Kind != adversary.OpJoin {
		t.Fatal("expected a join")
	}
	// Corrupt every member of the target (experiment hook).
	tgt := s.Decide(w, r, adversary.Shrink).Victim
	c, _ := w.ClusterOf(tgt)
	for _, x := range w.Members(c) {
		if err := w.SetCorrupted(x, true); err != nil {
			t.Fatal(err)
		}
	}
	op = s.Decide(w, r, adversary.Shrink)
	if op.Kind != adversary.OpLeave {
		t.Fatalf("shrink produced %v", op.Kind)
	}
	if w.IsByzantine(op.Victim) {
		t.Error("DoS fallback evicted a Byzantine node")
	}
}
