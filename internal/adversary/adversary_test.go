package adversary_test

import (
	"testing"

	"nowover/internal/adversary"
	"nowover/internal/core"
	"nowover/internal/ids"
	"nowover/internal/xrand"
)

func view(t *testing.T, n0 int, tau float64) *core.World {
	t.Helper()
	cfg := core.DefaultConfig(1024)
	cfg.Seed = 21
	w, err := core.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := int(tau * float64(n0))
	if err := w.Bootstrap(n0, func(slot int) bool { return slot < budget }); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBudgetEnforcement(t *testing.T) {
	w := view(t, 300, 0.30)
	b := adversary.Budget{Tau: 0.30}
	// Exactly at budget: corrupting one more must be rejected.
	if b.CanCorrupt(w) {
		t.Errorf("budget allowed corruption at %d/%d with tau=0.3",
			w.NumByzantine(), w.NumNodes())
	}
	loose := adversary.Budget{Tau: 0.5}
	if !loose.CanCorrupt(w) {
		t.Error("loose budget refused corruption")
	}
}

func TestRandomChurnDirections(t *testing.T) {
	w := view(t, 300, 0.1)
	s := &adversary.RandomChurn{Budget: adversary.Budget{Tau: 0.1}}
	r := xrand.New(1)
	if s.Name() == "" {
		t.Error("empty name")
	}
	joins, leaves := 0, 0
	for i := 0; i < 100; i++ {
		op := s.Decide(w, r, adversary.Grow)
		if op.Kind != adversary.OpJoin {
			t.Fatalf("grow produced %v", op.Kind)
		}
		if op.HasContact {
			t.Error("benign churn picked a contact")
		}
		joins++
		op = s.Decide(w, r, adversary.Shrink)
		if op.Kind != adversary.OpLeave {
			t.Fatalf("shrink produced %v", op.Kind)
		}
		if !w.Contains(op.Victim) {
			t.Error("victim not in network")
		}
		leaves++
	}
	if joins != 100 || leaves != 100 {
		t.Error("direction not respected")
	}
}

func TestRandomChurnRespectsBudget(t *testing.T) {
	w := view(t, 300, 0.30)
	s := &adversary.RandomChurn{Budget: adversary.Budget{Tau: 0.30}}
	r := xrand.New(2)
	for i := 0; i < 200; i++ {
		op := s.Decide(w, r, adversary.Grow)
		if op.Byz {
			t.Fatal("corrupted joiner beyond budget")
		}
	}
}

func TestJoinLeaveAttackTargetsSticky(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	t1 := s.Target(w)
	t2 := s.Target(w)
	if t1 != t2 {
		t.Errorf("target drifted %v -> %v without cause", t1, t2)
	}
	// The chosen target must be the most-polluted cluster.
	bestFrac := -1.0
	for _, c := range w.Clusters() {
		if sz := w.Size(c); sz > 0 {
			f := float64(w.Byz(c)) / float64(sz)
			if f > bestFrac {
				bestFrac = f
			}
		}
	}
	if got := float64(w.Byz(t1)) / float64(w.Size(t1)); got < bestFrac-1e-9 {
		t.Errorf("target fraction %.3f below best %.3f", got, bestFrac)
	}
}

func TestJoinLeaveAttackOps(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	r := xrand.New(3)
	op := s.Decide(w, r, adversary.Grow)
	if op.Kind != adversary.OpJoin || !op.Byz || !op.HasContact {
		t.Errorf("grow op = %+v, want corrupted join with contact", op)
	}
	if op.Contact != s.Target(w) {
		t.Error("join contact is not the target")
	}
	op = s.Decide(w, r, adversary.Shrink)
	if op.Kind != adversary.OpLeave {
		t.Fatalf("shrink op = %+v", op)
	}
	if c, _ := w.ClusterOf(op.Victim); c == s.Target(w) && w.IsByzantine(op.Victim) {
		t.Error("attack pulled its own node out of the target cluster")
	}
}

func TestJoinLeaveAttackBudgetFallback(t *testing.T) {
	w := view(t, 300, 0.30)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.30}}
	op := s.Decide(w, xrand.New(4), adversary.Grow)
	if op.Byz {
		t.Error("attack corrupted beyond budget")
	}
}

func TestDOSAttackEvictsTargetHonest(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.DOSAttack{Budget: adversary.Budget{Tau: 0.25}}
	r := xrand.New(5)
	op := s.Decide(w, r, adversary.Shrink)
	if op.Kind != adversary.OpLeave {
		t.Fatalf("shrink op = %+v", op)
	}
	if w.IsByzantine(op.Victim) {
		t.Error("DoS evicted a Byzantine node")
	}
	op = s.Decide(w, r, adversary.Grow)
	if op.Kind != adversary.OpJoin || !op.Byz || !op.HasContact {
		t.Errorf("grow op = %+v", op)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestCapturedHijacker(t *testing.T) {
	h := adversary.CapturedHijacker{}
	if _, ok := h.Redirect(0); ok {
		t.Error("nil hijacker redirected")
	}
	h.TargetFn = func() (ids.ClusterID, bool) { return 7, true }
	if tgt, ok := h.Redirect(3); !ok || tgt != 7 {
		t.Errorf("redirect = %v,%v", tgt, ok)
	}
}

func TestJoinLeaveAttackTargetRevalidated(t *testing.T) {
	w := view(t, 300, 0.2)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}}
	first := s.Target(w)
	// Shrink until the original target may have merged away; the
	// strategy must always return a live cluster.
	r := xrand.New(7)
	for i := 0; i < 150; i++ {
		x, ok := w.RandomNode(r)
		if !ok {
			break
		}
		if err := w.Leave(x); err != nil {
			t.Fatal(err)
		}
	}
	tgt := s.Target(w)
	alive := false
	for _, c := range w.Clusters() {
		if c == tgt {
			alive = true
		}
	}
	if !alive {
		t.Errorf("target %v (was %v) is not a live cluster", tgt, first)
	}
}

func TestJoinLeaveAttackShrinkBelowBudgetSparesByz(t *testing.T) {
	// With byz mass well below budget, the attack must not burn its own
	// nodes on shrink steps.
	w := view(t, 300, 0.05)
	s := &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.30}}
	r := xrand.New(9)
	for i := 0; i < 50; i++ {
		op := s.Decide(w, r, adversary.Shrink)
		if op.Kind == adversary.OpLeave && w.IsByzantine(op.Victim) {
			t.Fatal("attack evicted its own node while under budget")
		}
	}
}

func TestDOSAttackShrinkFallbackWithoutTargetHonest(t *testing.T) {
	// Make the target cluster fully Byzantine so the preferred victims
	// are absent; the fallback must still produce an honest victim.
	w := view(t, 300, 0.2)
	s := &adversary.DOSAttack{Budget: adversary.Budget{Tau: 0.9}}
	r := xrand.New(11)
	op := s.Decide(w, r, adversary.Grow) // fixes the target
	if op.Kind != adversary.OpJoin {
		t.Fatal("expected a join")
	}
	// Corrupt every member of the target (experiment hook).
	tgt := s.Decide(w, r, adversary.Shrink).Victim
	c, _ := w.ClusterOf(tgt)
	for _, x := range w.Members(c) {
		if err := w.SetCorrupted(x, true); err != nil {
			t.Fatal(err)
		}
	}
	op = s.Decide(w, r, adversary.Shrink)
	if op.Kind != adversary.OpLeave {
		t.Fatalf("shrink produced %v", op.Kind)
	}
	if w.IsByzantine(op.Victim) {
		t.Error("DoS fallback evicted a Byzantine node")
	}
}
