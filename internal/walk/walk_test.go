package walk

import (
	"math"
	"testing"

	"nowover/internal/graph"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/xrand"
)

// fakeTopo is an in-memory Topology over an explicit graph with per-cluster
// sizes and Byzantine counts.
type fakeTopo struct {
	g     *graph.Graph[ids.ClusterID]
	sizes map[ids.ClusterID]int
	byz   map[ids.ClusterID]int
	maxSz int
}

func newFakeTopo(t *testing.T, n int, degree int, seed uint64) *fakeTopo {
	t.Helper()
	ft := &fakeTopo{
		g:     graph.New[ids.ClusterID](),
		sizes: make(map[ids.ClusterID]int),
		byz:   make(map[ids.ClusterID]int),
	}
	var vs []ids.ClusterID
	for i := 0; i < n; i++ {
		c := ids.ClusterID(i)
		ft.g.AddVertex(c)
		vs = append(vs, c)
		ft.sizes[c] = 10
		ft.maxSz = 10
	}
	if err := graph.RandomRegularish(ft.g, xrand.New(seed), vs, degree); err != nil {
		t.Fatal(err)
	}
	return ft
}

func (f *fakeTopo) NumClusters() int                                { return f.g.NumVertices() }
func (f *fakeTopo) NumOverlayEdges() int                            { return f.g.NumEdges() }
func (f *fakeTopo) Degree(c ids.ClusterID) int                      { return f.g.Degree(c) }
func (f *fakeTopo) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return f.g.NeighborAt(c, i) }
func (f *fakeTopo) Size(c ids.ClusterID) int                        { return f.sizes[c] }
func (f *fakeTopo) Byz(c ids.ClusterID) int                         { return f.byz[c] }
func (f *fakeTopo) MaxClusterSize() int                             { return f.maxSz }

var _ Topology = (*fakeTopo)(nil)

func defaultCfg() Config {
	return Config{DurationFactor: 1, MaxRestarts: 32, Gen: randnum.Ideal{}}
}

func TestConfigValidation(t *testing.T) {
	topo := &fakeTopo{g: graph.New[ids.ClusterID]()}
	bad := []Config{
		{DurationFactor: 0, MaxRestarts: 1, Gen: randnum.Ideal{}},
		{DurationFactor: 1, MaxRestarts: 0, Gen: randnum.Ideal{}},
		{DurationFactor: 1, MaxRestarts: 1, Gen: nil},
	}
	for _, c := range bad {
		if _, err := NewWalker(c, topo); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	if _, err := NewWalker(defaultCfg(), nil); err == nil {
		t.Error("accepted nil topology")
	}
}

func TestUniformEndpointDistribution(t *testing.T) {
	// CTRW on an irregular-ish expander must land ~uniformly regardless
	// of degree differences — the property the paper uses CTRWs for.
	topo := newFakeTopo(t, 24, 4, 1)
	// Make the graph irregular: add extra edges around vertex 0.
	for i := 10; i < 20; i++ {
		if !topo.g.HasEdge(0, ids.ClusterID(i)) {
			if err := topo.g.AddEdge(0, ids.ClusterID(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(2)
	counts := make([]float64, 24)
	const walks = 8000
	for i := 0; i < walks; i++ {
		out, err := w.Uniform(&led, r, ids.ClusterID(i%24))
		if err != nil {
			t.Fatal(err)
		}
		counts[out.End]++
	}
	uniform := make([]float64, 24)
	for i := range uniform {
		uniform[i] = 1
	}
	if tv := metrics.TVDistance(counts, uniform); tv > 0.08 {
		t.Errorf("TV distance from uniform = %.4f", tv)
	}
}

func TestBiasedEndpointProportionalToSize(t *testing.T) {
	topo := newFakeTopo(t, 16, 4, 3)
	// Heterogeneous sizes: cluster i has size 5 + i.
	topo.maxSz = 0
	for i := 0; i < 16; i++ {
		topo.sizes[ids.ClusterID(i)] = 5 + i
		if 5+i > topo.maxSz {
			topo.maxSz = 5 + i
		}
	}
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(4)
	counts := make([]float64, 16)
	const walks = 12000
	for i := 0; i < walks; i++ {
		out, err := w.Biased(&led, r, ids.ClusterID(i%16))
		if err != nil {
			t.Fatal(err)
		}
		counts[out.End]++
	}
	want := make([]float64, 16)
	for i := range want {
		want[i] = float64(5 + i)
	}
	if tv := metrics.TVDistance(counts, want); tv > 0.08 {
		t.Errorf("TV distance from size-proportional = %.4f", tv)
	}
}

func TestBiasedUniformOverNodes(t *testing.T) {
	// The composition randCl-then-uniform-member must be uniform over
	// nodes: P(cluster)*1/|C| = 1/n for all clusters.
	topo := newFakeTopo(t, 12, 4, 5)
	for i := 0; i < 12; i++ {
		topo.sizes[ids.ClusterID(i)] = 4 * (1 + i%3)
	}
	topo.maxSz = 12
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(6)
	perNode := make([]float64, 12)
	const walks = 12000
	for i := 0; i < walks; i++ {
		out, err := w.Biased(&led, r, ids.ClusterID(i%12))
		if err != nil {
			t.Fatal(err)
		}
		perNode[out.End] += 1 / float64(topo.sizes[out.End])
	}
	uniform := make([]float64, 12)
	for i := range uniform {
		uniform[i] = 1
	}
	if tv := metrics.TVDistance(perNode, uniform); tv > 0.08 {
		t.Errorf("per-node selection TV from uniform = %.4f", tv)
	}
}

func TestWalkChargesCosts(t *testing.T) {
	topo := newFakeTopo(t, 16, 4, 7)
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	out, err := w.Biased(&led, xrand.New(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hops == 0 {
		t.Fatal("walk made no hops")
	}
	if led.MessagesBy(metrics.ClassWalk) == 0 {
		t.Error("no walk handoff messages charged")
	}
	if led.MessagesBy(metrics.ClassRandNum) == 0 {
		t.Error("no randnum messages charged")
	}
	if led.Rounds() == 0 {
		t.Error("no rounds charged")
	}
}

func TestWalkHopsScale(t *testing.T) {
	// Expected hops per segment ~ DurationFactor * log2(n)^2.
	topo := newFakeTopo(t, 64, 6, 9)
	cfg := defaultCfg()
	cfg.DurationFactor = 1
	w, err := NewWalker(cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(10)
	total := 0
	const walks = 300
	for i := 0; i < walks; i++ {
		out, err := w.Uniform(&led, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += out.Hops
	}
	mean := float64(total) / walks
	want := math.Pow(math.Log2(64), 2) // 36
	if mean < want/2 || mean > want*2 {
		t.Errorf("mean hops %.1f, want ~%.1f", mean, want)
	}
}

func TestSingleClusterWalkStaysPut(t *testing.T) {
	topo := &fakeTopo{
		g:     graph.New[ids.ClusterID](),
		sizes: map[ids.ClusterID]int{7: 5},
		byz:   map[ids.ClusterID]int{},
		maxSz: 5,
	}
	topo.g.AddVertex(7)
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	out, err := w.Biased(&led, xrand.New(11), 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.End != 7 || out.Hops != 0 {
		t.Errorf("single-cluster walk moved: %+v", out)
	}
}

type fixedHijacker struct{ target ids.ClusterID }

func (h fixedHijacker) Redirect(*xrand.Rand, ids.ClusterID) (ids.ClusterID, bool) {
	return h.target, true
}

func TestHijackFromCapturedCluster(t *testing.T) {
	topo := newFakeTopo(t, 16, 4, 12)
	captured := ids.ClusterID(3)
	topo.byz[captured] = 5 // 5 of 10 = captured
	cfg := defaultCfg()
	cfg.Hijack = fixedHijacker{target: 9}
	w, err := NewWalker(cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	out, err := w.Biased(&led, xrand.New(13), captured)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Hijacked || out.End != 9 {
		t.Errorf("walk from captured cluster not hijacked: %+v", out)
	}
	if out.WorstSecurity != randnum.Captured {
		t.Errorf("WorstSecurity = %v", out.WorstSecurity)
	}
}

func TestWorstSecurityReported(t *testing.T) {
	topo := newFakeTopo(t, 8, 3, 14)
	for i := 0; i < 8; i++ {
		topo.byz[ids.ClusterID(i)] = 4 // 4/10 >= 1/3: degraded everywhere
	}
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	out, err := w.Biased(&led, xrand.New(15), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.WorstSecurity != randnum.Degraded {
		t.Errorf("WorstSecurity = %v, want degraded", out.WorstSecurity)
	}
}

func TestSteerBiasesCommitReveal(t *testing.T) {
	// With the biasable generator and Byzantine presence everywhere, a
	// steered walk must land on the adversary's target more often than an
	// unsteered one.
	target := ids.ClusterID(5)
	run := func(steer bool) float64 {
		topo := newFakeTopo(t, 16, 4, 16)
		for i := 0; i < 16; i++ {
			topo.byz[ids.ClusterID(i)] = 3 // biasable but secure-majority
		}
		cfg := defaultCfg()
		cfg.Gen = randnum.CommitReveal{}
		if steer {
			cfg.Steer = func(c ids.ClusterID) float64 {
				if c == target {
					return 1
				}
				return 0
			}
		}
		w, err := NewWalker(cfg, topo)
		if err != nil {
			t.Fatal(err)
		}
		var led metrics.Ledger
		r := xrand.New(17)
		hits := 0
		const walks = 3000
		for i := 0; i < walks; i++ {
			out, err := w.Biased(&led, r, ids.ClusterID(i%16))
			if err != nil {
				t.Fatal(err)
			}
			if out.End == target {
				hits++
			}
		}
		return float64(hits) / walks
	}
	base, steered := run(false), run(true)
	if steered <= base*1.5 {
		t.Errorf("steering ineffective: base %.4f steered %.4f", base, steered)
	}
}

func TestBiasedRestartCapRespected(t *testing.T) {
	// One giant cluster among tiny ones: acceptance for tiny endpoints is
	// rare, so restarts are consumed; the cap must bound them.
	topo := newFakeTopo(t, 12, 4, 20)
	for i := 1; i < 12; i++ {
		topo.sizes[ids.ClusterID(i)] = 1
	}
	topo.sizes[0] = 1000
	topo.maxSz = 1000
	cfg := defaultCfg()
	cfg.MaxRestarts = 3
	w, err := NewWalker(cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(21)
	for i := 0; i < 50; i++ {
		out, err := w.Biased(&led, r, ids.ClusterID(1))
		if err != nil {
			t.Fatal(err)
		}
		if out.Restarts > 3 {
			t.Fatalf("restarts %d exceed cap 3", out.Restarts)
		}
	}
}

func TestWalkOnEdgelessMultiClusterFails(t *testing.T) {
	topo := &fakeTopo{
		g:     graph.New[ids.ClusterID](),
		sizes: map[ids.ClusterID]int{0: 5, 1: 5},
		byz:   map[ids.ClusterID]int{},
		maxSz: 5,
	}
	topo.g.AddVertex(0)
	topo.g.AddVertex(1)
	w, err := NewWalker(defaultCfg(), topo)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	if _, err := w.Uniform(&led, xrand.New(22), 0); err == nil {
		t.Error("edgeless multi-cluster overlay accepted")
	}
}
