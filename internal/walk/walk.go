// Package walk implements the continuous-time random walk (CTRW) machinery
// at the heart of NOW's sampling (paper sections 3.1 and 4).
//
// A CTRW with an independent rate-1 exponential clock on every edge has
// jump rate deg(v) at vertex v and *uniform* stationary distribution on any
// connected graph — this is why the paper uses continuous rather than
// discrete walks on the irregular overlay. The biased walk of footnote
// (randCl) converts the uniform cluster sample into a cluster sample
// proportional to cluster size (|C|/n) by rejection: when a walk segment's
// duration expires at cluster C, the walk accepts with probability
// |C|/max|C| and otherwise starts a new segment.
//
// Every hop is a distributed step: the current cluster's members agree on
// the holding time and the next neighbor via randNum, and the next cluster
// accepts the walk token only when more than half of the current cluster's
// members send identical messages. Costs are charged accordingly. A
// captured cluster (>= 1/2 Byzantine) controls its outgoing messages
// entirely, so the adversary may hijack any walk that transits one; this is
// the failure mode whose absence the protocol maintains.
package walk

import (
	"fmt"
	"math"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/xrand"
)

// Topology is the read-only view of the cluster overlay a walk needs. The
// NOW world implements it.
type Topology interface {
	// NumClusters returns the current number of overlay vertices.
	NumClusters() int
	// NumOverlayEdges returns the current number of overlay edges.
	NumOverlayEdges() int
	// Degree returns the overlay degree of c.
	Degree(c ids.ClusterID) int
	// NeighborAt returns the i-th overlay neighbor of c, 0 <= i < Degree(c).
	NeighborAt(c ids.ClusterID, i int) ids.ClusterID
	// Size returns |C|, the number of member nodes of c.
	Size(c ids.ClusterID) int
	// Byz returns the number of Byzantine members of c.
	Byz(c ids.ClusterID) int
	// MaxClusterSize returns max over clusters of |C| (the rejection
	// denominator of the biased walk).
	MaxClusterSize() int
}

// Hijacker is the adversary's hook into walks that transit captured
// clusters. Redirect is consulted when the walk is at a captured cluster;
// returning ok=true ends the walk at the returned cluster (the captured
// cluster forges the remaining protocol).
//
// Redirect must be PURE with respect to the walk: it may read the hook's
// own snapshot-scoped decision state and draw from r — the walk's per-op
// substream, so hook randomness is charged to the op that consulted it —
// but it must not mutate shared hook state. The op scheduler plans every
// op of a batch concurrently and consults hooks from worker goroutines in
// scheduling-dependent order; a Redirect that writes anywhere reachable
// from another op's Redirect breaks the determinism contract (and the
// race detector). Hook bookkeeping belongs in the batch lifecycle the
// world drives (core.BatchHook): decision state refreshes serially before
// planning, ratchet counters fold serially in op order after apply.
type Hijacker interface {
	Redirect(r *xrand.Rand, at ids.ClusterID) (ids.ClusterID, bool)
}

// Config parameterizes the walker.
type Config struct {
	// DurationFactor scales segment duration; a segment aims for roughly
	// DurationFactor * log2(#C)^2 expected hops, the paper's O(log^2 n)
	// walk length.
	DurationFactor float64
	// MaxRestarts bounds rejection restarts of the biased walk. The paper
	// needs O(log n) restarts w.h.p.; the bound exists so a pathological
	// topology cannot stall the simulator, and hitting it is reported.
	MaxRestarts int
	// Gen is the cluster randomness source used for every distributed
	// choice along the walk.
	Gen randnum.Generator
	// Hijack, when non-nil, gives the adversary control of walks that
	// visit captured clusters. Subject to the purity contract on the
	// Hijacker interface.
	Hijack Hijacker
	// Steer, when non-nil, scores clusters by their value to the
	// adversary. It is translated into per-draw objectives, which only
	// biasable generators (randnum.CommitReveal) act on: next-hop draws
	// prefer higher-scored neighbors and acceptance draws prefer stopping
	// at higher-scored endpoints. With the Ideal generator Steer has no
	// effect below capture. Steer is under the same purity contract as
	// Hijacker.Redirect: concurrent plan workers score clusters in
	// scheduling-dependent order, so the function must be a read of
	// snapshot-scoped state, never a mutation.
	Steer func(c ids.ClusterID) float64
}

func (c Config) validate() error {
	if c.DurationFactor <= 0 {
		return fmt.Errorf("walk: non-positive duration factor %v", c.DurationFactor)
	}
	if c.MaxRestarts < 1 {
		return fmt.Errorf("walk: max restarts %d < 1", c.MaxRestarts)
	}
	if c.Gen == nil {
		return fmt.Errorf("walk: nil randomness generator")
	}
	return nil
}

// Walker runs CTRWs over a Topology. It is NOT safe for concurrent use:
// the steer objectives below carry per-draw state through walker fields so
// the hot path builds no closures. Give each concurrent planner its own
// walker (the op scheduler does).
type Walker struct {
	cfg  Config
	topo Topology

	// Cached steer objectives (built once when cfg.Steer is set). The
	// historical code built an equivalent closure per draw; hoisting the
	// per-draw state into fields keeps the draws allocation-free while the
	// objective values passed to the generator stay identical.
	acceptObj   randnum.Objective
	hopObj      randnum.Objective
	acceptSize  int64
	acceptScore float64
	hopAt       ids.ClusterID
}

// NewWalker validates cfg and returns a walker bound to topo.
func NewWalker(cfg Config, topo Topology) (*Walker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if topo == nil {
		return nil, fmt.Errorf("walk: nil topology")
	}
	w := &Walker{cfg: cfg, topo: topo}
	if cfg.Steer != nil {
		w.acceptObj = func(v int64) float64 {
			if v < w.acceptSize {
				return w.acceptScore
			}
			return 0
		}
		w.hopObj = func(v int64) float64 {
			return w.cfg.Steer(w.topo.NeighborAt(w.hopAt, int(v)))
		}
	}
	return w, nil
}

// Outcome reports one walk's endpoint and diagnostics.
type Outcome struct {
	End      ids.ClusterID
	Hops     int  // clusters transited across all segments
	Restarts int  // rejection restarts consumed (biased walk only)
	Hijacked bool // an adversary-captured cluster redirected the walk
	// WorstSecurity is the weakest randnum security level observed along
	// the walk; anything above Secure taints the uniformity guarantee.
	WorstSecurity randnum.Security
}

// _holdGrid discretizes holding-time randomness: randNum yields an integer
// in [0, _holdGrid) that is mapped through the exponential inverse CDF.
// 1<<16 keeps quantization far below walk-length noise.
const _holdGrid = 1 << 16

// Uniform runs one unbiased CTRW from start and returns its endpoint,
// which is distributed ~uniformly over clusters once the duration exceeds
// the mixing time. Used by OVER to draw edge endpoints.
func (w *Walker) Uniform(led *metrics.Ledger, r *xrand.Rand, start ids.ClusterID) (Outcome, error) {
	out := Outcome{End: start}
	err := w.segment(led, r, &out)
	return out, err
}

// Biased runs the paper's randCl: a sequence of CTRW segments with
// size-proportional rejection, returning a cluster with probability
// ~|C|/n. The sequence is capped at MaxRestarts segments; if the cap is
// hit the current endpoint is returned with Restarts == MaxRestarts.
func (w *Walker) Biased(led *metrics.Ledger, r *xrand.Rand, start ids.ClusterID) (Outcome, error) {
	out := Outcome{End: start}
	for out.Restarts = 0; out.Restarts < w.cfg.MaxRestarts; out.Restarts++ {
		if err := w.segment(led, r, &out); err != nil {
			return out, err
		}
		if out.Hijacked {
			return out, nil
		}
		// Acceptance coin: the endpoint cluster draws a number in
		// [0, maxSize) and accepts when it falls below its own size.
		maxSize := w.topo.MaxClusterSize()
		var obj randnum.Objective
		if w.cfg.Steer != nil {
			w.acceptSize = int64(w.topo.Size(out.End))
			w.acceptScore = w.cfg.Steer(out.End)
			obj = w.acceptObj
		}
		v, sec, err := w.drawObj(led, r, out.End, int64(maxSize), obj)
		if err != nil {
			return out, err
		}
		out.WorstSecurity = maxSecurity(out.WorstSecurity, sec)
		if v < int64(w.topo.Size(out.End)) {
			return out, nil
		}
	}
	return out, nil
}

// segment advances one CTRW of duration DurationFactor * log2(#C)^2 /
// meanDegree (so the expected number of jumps is ~DurationFactor *
// log2(#C)^2) starting at out.End, updating out in place.
func (w *Walker) segment(led *metrics.Ledger, r *xrand.Rand, out *Outcome) error {
	n := w.topo.NumClusters()
	if n <= 1 {
		return nil // single-cluster overlay: the walk stays put
	}
	meanDeg := 2 * float64(w.topo.NumOverlayEdges()) / float64(n)
	if meanDeg <= 0 {
		return fmt.Errorf("walk: overlay has no edges")
	}
	l2 := math.Log2(float64(n))
	if l2 < 1 {
		l2 = 1
	}
	remaining := w.cfg.DurationFactor * l2 * l2 / meanDeg

	cur := out.End
	for remaining > 0 {
		if w.cfg.Hijack != nil && randnum.Classify(w.topo.Size(cur), w.topo.Byz(cur)) == randnum.Captured {
			if target, ok := w.cfg.Hijack.Redirect(r, cur); ok {
				out.End = target
				out.Hijacked = true
				out.WorstSecurity = randnum.Captured
				return nil
			}
		}
		deg := w.topo.Degree(cur)
		if deg == 0 {
			break // isolated vertex: the walk cannot move
		}
		// Holding time ~ Exp(deg): cluster-agreed via a gridded draw.
		hv, sec, err := w.draw(led, r, cur, _holdGrid)
		if err != nil {
			return err
		}
		out.WorstSecurity = maxSecurity(out.WorstSecurity, sec)
		u := (float64(hv) + 0.5) / _holdGrid
		remaining -= -math.Log(1-u) / float64(deg)
		if remaining <= 0 {
			break
		}
		// Next hop: uniform neighbor, cluster-agreed.
		var obj randnum.Objective
		if w.cfg.Steer != nil {
			w.hopAt = cur
			obj = w.hopObj
		}
		nv, sec2, err := w.drawObj(led, r, cur, int64(deg), obj)
		if err != nil {
			return err
		}
		out.WorstSecurity = maxSecurity(out.WorstSecurity, sec2)
		next := w.topo.NeighborAt(cur, int(nv))
		// Handoff: every member of cur messages every member of next; next
		// accepts on >1/2 identical copies.
		led.Charge(metrics.ClassWalk, int64(w.topo.Size(cur))*int64(w.topo.Size(next)))
		led.AddRounds(1)
		cur = next
		out.Hops++
	}
	out.End = cur
	return nil
}

// draw is one cluster-agreed random integer in [0, rng).
func (w *Walker) draw(led *metrics.Ledger, r *xrand.Rand, c ids.ClusterID, rng int64) (int64, randnum.Security, error) {
	return w.drawObj(led, r, c, rng, nil)
}

// drawObj is draw with an adversary objective attached.
func (w *Walker) drawObj(led *metrics.Ledger, r *xrand.Rand, c ids.ClusterID, rng int64, obj randnum.Objective) (int64, randnum.Security, error) {
	v, sec, err := w.cfg.Gen.Draw(led, r, randnum.Params{
		Size: w.topo.Size(c),
		Byz:  w.topo.Byz(c),
		R:    rng,
	}, obj)
	if err != nil {
		return 0, sec, fmt.Errorf("walk: draw at %v: %w", c, err)
	}
	return v, sec, nil
}

func maxSecurity(a, b randnum.Security) randnum.Security {
	if b > a {
		return b
	}
	return a
}
