// Package workload provides the size schedules that drive churn: the
// paper's headline regime is a network whose size varies polynomially
// between sqrt(N) and N (section 2), which no prior clustering scheme
// tolerated. A Schedule maps a time step to the size the network should
// have; the simulator converts the difference against the live size into
// join/leave directions for the adversary strategy.
package workload

import (
	"fmt"
	"math"
)

// Schedule prescribes the target network size per time step.
type Schedule interface {
	// TargetSize returns the wanted size at the given step.
	TargetSize(step int) int
	// Name labels the schedule in experiment tables.
	Name() string
}

// Steady holds the size constant: pure churn with no net growth, the
// regime of Lemmas 1-3.
type Steady struct{ Size int }

var _ Schedule = Steady{}

// TargetSize implements Schedule.
func (s Steady) TargetSize(int) int { return s.Size }

// Name implements Schedule.
func (s Steady) Name() string { return fmt.Sprintf("steady(%d)", s.Size) }

// Linear ramps from From to To over Steps steps, then holds — the
// polynomial growth sqrt(N) -> N (or shrink) that is the paper's novelty.
type Linear struct {
	From, To int
	Steps    int
}

var _ Schedule = Linear{}

// TargetSize implements Schedule.
func (l Linear) TargetSize(step int) int {
	if l.Steps <= 0 || step >= l.Steps {
		return l.To
	}
	frac := float64(step) / float64(l.Steps)
	return l.From + int(math.Round(frac*float64(l.To-l.From)))
}

// Name implements Schedule.
func (l Linear) Name() string { return fmt.Sprintf("linear(%d->%d)", l.From, l.To) }

// Oscillate swings the size between Lo and Hi with the given period
// (triangle wave) — repeated polynomial expansion and contraction.
type Oscillate struct {
	Lo, Hi int
	Period int
}

var _ Schedule = Oscillate{}

// TargetSize implements Schedule.
func (o Oscillate) TargetSize(step int) int {
	if o.Period <= 0 {
		return o.Lo
	}
	phase := step % o.Period
	half := o.Period / 2
	if half == 0 {
		return o.Lo
	}
	var frac float64
	if phase < half {
		frac = float64(phase) / float64(half)
	} else {
		frac = float64(o.Period-phase) / float64(half)
	}
	return o.Lo + int(math.Round(frac*float64(o.Hi-o.Lo)))
}

// Name implements Schedule.
func (o Oscillate) Name() string {
	return fmt.Sprintf("oscillate(%d..%d,period=%d)", o.Lo, o.Hi, o.Period)
}

// FlashCrowd holds at Base, spikes to Peak for the window
// [SpikeAt, SpikeAt+SpikeLen), then returns to Base — the join-storm /
// mass-departure stress case.
type FlashCrowd struct {
	Base, Peak        int
	SpikeAt, SpikeLen int
}

var _ Schedule = FlashCrowd{}

// TargetSize implements Schedule.
func (f FlashCrowd) TargetSize(step int) int {
	if step >= f.SpikeAt && step < f.SpikeAt+f.SpikeLen {
		return f.Peak
	}
	return f.Base
}

// Name implements Schedule.
func (f FlashCrowd) Name() string {
	return fmt.Sprintf("flash(%d->%d@%d+%d)", f.Base, f.Peak, f.SpikeAt, f.SpikeLen)
}
