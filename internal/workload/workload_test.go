package workload

import "testing"

func TestSteady(t *testing.T) {
	s := Steady{Size: 100}
	for _, step := range []int{0, 1, 500} {
		if s.TargetSize(step) != 100 {
			t.Fatalf("steady moved at step %d", step)
		}
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestLinearRampUp(t *testing.T) {
	l := Linear{From: 100, To: 200, Steps: 100}
	if got := l.TargetSize(0); got != 100 {
		t.Errorf("start = %d", got)
	}
	if got := l.TargetSize(50); got != 150 {
		t.Errorf("midpoint = %d", got)
	}
	if got := l.TargetSize(100); got != 200 {
		t.Errorf("end = %d", got)
	}
	if got := l.TargetSize(500); got != 200 {
		t.Errorf("after end = %d, want hold at 200", got)
	}
	// Monotone non-decreasing.
	prev := 0
	for s := 0; s <= 100; s++ {
		v := l.TargetSize(s)
		if v < prev {
			t.Fatalf("ramp not monotone at %d: %d < %d", s, v, prev)
		}
		prev = v
	}
}

func TestLinearRampDown(t *testing.T) {
	l := Linear{From: 200, To: 100, Steps: 10}
	if got := l.TargetSize(5); got != 150 {
		t.Errorf("midpoint = %d", got)
	}
	if got := l.TargetSize(10); got != 100 {
		t.Errorf("end = %d", got)
	}
}

func TestLinearDegenerate(t *testing.T) {
	l := Linear{From: 5, To: 9, Steps: 0}
	if got := l.TargetSize(0); got != 9 {
		t.Errorf("zero-step ramp = %d, want To", got)
	}
}

func TestOscillate(t *testing.T) {
	o := Oscillate{Lo: 10, Hi: 30, Period: 20}
	if got := o.TargetSize(0); got != 10 {
		t.Errorf("phase 0 = %d", got)
	}
	if got := o.TargetSize(10); got != 30 {
		t.Errorf("half period = %d, want 30", got)
	}
	if got := o.TargetSize(20); got != 10 {
		t.Errorf("full period = %d, want 10", got)
	}
	if got := o.TargetSize(5); got != 20 {
		t.Errorf("quarter period = %d, want 20", got)
	}
	// Stays within bounds over several cycles.
	for s := 0; s < 100; s++ {
		v := o.TargetSize(s)
		if v < 10 || v > 30 {
			t.Fatalf("step %d outside [10,30]: %d", s, v)
		}
	}
}

func TestOscillateDegenerate(t *testing.T) {
	o := Oscillate{Lo: 5, Hi: 10, Period: 0}
	if got := o.TargetSize(3); got != 5 {
		t.Errorf("degenerate oscillate = %d", got)
	}
	o1 := Oscillate{Lo: 5, Hi: 10, Period: 1}
	if got := o1.TargetSize(3); got != 5 {
		t.Errorf("period-1 oscillate = %d", got)
	}
}

func TestFlashCrowd(t *testing.T) {
	f := FlashCrowd{Base: 100, Peak: 500, SpikeAt: 10, SpikeLen: 5}
	cases := []struct{ step, want int }{
		{0, 100}, {9, 100}, {10, 500}, {14, 500}, {15, 100}, {100, 100},
	}
	for _, c := range cases {
		if got := f.TargetSize(c.step); got != c.want {
			t.Errorf("step %d = %d, want %d", c.step, got, c.want)
		}
	}
}

func TestNames(t *testing.T) {
	for _, s := range []Schedule{
		Steady{Size: 1}, Linear{From: 1, To: 2, Steps: 3},
		Oscillate{Lo: 1, Hi: 2, Period: 3}, FlashCrowd{Base: 1, Peak: 2, SpikeAt: 3, SpikeLen: 4},
	} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
