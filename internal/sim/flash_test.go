package sim

import (
	"testing"

	"nowover/internal/core"
	"nowover/internal/workload"
)

func TestFlashCrowdSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("flash-crowd sweep skipped in -short mode")
	}
	// A join storm doubling the network inside a window, then mass
	// departure back to base — splits on the way up, merges on the way
	// down, invariants throughout.
	cfg := Config{
		Core:             core.DefaultConfig(1024),
		InitialSize:      250,
		Tau:              0.10,
		Schedule:         workload.FlashCrowd{Base: 250, Peak: 500, SpikeAt: 100, SpikeLen: 300},
		Steps:            700,
		Seed:             31,
		ConsistencyEvery: 100,
		TrackSizes:       true,
	}
	cfg.Core.Seed = 31
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakSize < 480 {
		t.Errorf("spike not realized: peak %d", res.PeakSize)
	}
	if res.Final.Nodes > 300 {
		t.Errorf("did not return to base: %d", res.Final.Nodes)
	}
	if res.Stats.Splits == 0 || res.Stats.Merges == 0 {
		t.Errorf("splits=%d merges=%d; flash crowd should force both",
			res.Stats.Splits, res.Stats.Merges)
	}
	if !res.Final.OverlayConnected {
		t.Error("overlay disconnected after flash crowd")
	}
	if res.CapturedSteps > 0 {
		t.Errorf("captured dwell %d steps at tau=0.10", res.CapturedSteps)
	}
}

func TestNoShuffleAblationConfig(t *testing.T) {
	// The fully shuffle-less configuration must still run and preserve
	// bookkeeping (it is the E11 strawman).
	cfg := Config{
		Core:             core.DefaultConfig(1024),
		InitialSize:      300,
		Tau:              0.15,
		Steps:            120,
		Seed:             33,
		ConsistencyEvery: 30,
	}
	cfg.Core.Seed = 33
	cfg.Core.ExchangeOnJoin = false
	cfg.Core.ExchangeOnLeave = false
	cfg.Core.LeaveCascade = false
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Swaps != 0 {
		t.Errorf("no-shuffle config performed %d swaps", res.Stats.Swaps)
	}
	if res.Steps != 120 {
		t.Errorf("steps = %d", res.Steps)
	}
}
