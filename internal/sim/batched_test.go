package sim

import (
	"testing"

	"nowover/internal/adversary"
	"nowover/internal/core"
	"nowover/internal/workload"
)

func batchedConfig(shards, opsPerStep int, seed uint64) Config {
	cfg := Config{
		Core:        core.DefaultConfig(2048),
		InitialSize: 512,
		Tau:         0.15,
		Steps:       60,
		Seed:        seed,
		OpsPerStep:  opsPerStep,
	}
	cfg.Core.Seed = seed
	cfg.Core.Shards = shards
	return cfg
}

func TestBatchedDriverRuns(t *testing.T) {
	cfg := batchedConfig(8, 8, 1)
	if testing.Short() {
		cfg.Core = core.DefaultConfig(1024)
		cfg.Core.Seed = 1
		cfg.Core.Shards = 8
		cfg.InitialSize = 256
		cfg.Steps = 25
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != cfg.Steps {
		t.Fatalf("ran %d steps, want %d", res.Steps, cfg.Steps)
	}
	if res.BatchedOps == 0 {
		t.Fatal("concurrent driver issued no batched ops")
	}
	if res.Stats.Joins == 0 || res.Stats.Leaves == 0 {
		t.Fatalf("no churn recorded: %+v", res.Stats)
	}
	if err := core.CheckInvariants(r.World()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedDriverShardCountInvariant: the whole simulation — strategy
// decisions, scheduler batches, audits — is deterministic in the seeds and
// independent of the shard count.
func TestBatchedDriverShardCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("shard-count sweep skipped in -short mode (covered at small scale by core's TestShardedMatchesSerial)")
	}
	run := func(shards int) *Result {
		r, err := New(batchedConfig(shards, 8, 7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := core.CheckInvariants(r.World()); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged across shard counts:\n%+v\nvs\n%+v", a.Stats, b.Stats)
	}
	if a.Final != b.Final {
		t.Fatalf("final audit diverged:\n%+v\nvs\n%+v", a.Final, b.Final)
	}
	if a.TotalCost.Messages != b.TotalCost.Messages || a.TotalCost.Rounds != b.TotalCost.Rounds {
		t.Fatalf("cost diverged: %v vs %v", a.TotalCost, b.TotalCost)
	}
	if a.BatchedOps != b.BatchedOps || a.DeferredOps != b.DeferredOps || a.SkippedOps != b.SkippedOps {
		t.Fatalf("scheduler counters diverged: %d/%d/%d vs %d/%d/%d",
			a.BatchedOps, a.DeferredOps, a.SkippedOps, b.BatchedOps, b.DeferredOps, b.SkippedOps)
	}
}

func TestBatchedValidation(t *testing.T) {
	cfg := batchedConfig(8, -1, 1)
	if _, err := New(cfg); err == nil {
		t.Fatal("negative OpsPerStep accepted")
	}
	cfg = batchedConfig(8, 4, 1)
	cfg.InstallHijacker = true
	cfg.Strategy = &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.15}}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("OpsPerStep>1 with InstallHijacker rejected: %v", err)
	}
	if r.Hijacker() == nil {
		t.Fatal("hijacker requested but not installed on the batched driver")
	}
	cfg.InstallHijacker = false
	if _, err := New(cfg); err != nil {
		t.Fatalf("attack strategy without hijacker rejected: %v", err)
	}
}

// TestBatchedHookedShardCountInvariant pins the tentpole contract at the
// driver level: a fully hooked world — hijacker redirecting walks AND the
// same hook object steering randCl draws — batched through the scheduler
// is byte-identical across shard counts, down to the hijack tallies the
// commit step folds in op order.
func TestBatchedHookedShardCountInvariant(t *testing.T) {
	run := func(shards int) (*Result, *adversary.CapturedHijacker) {
		cfg := batchedConfig(shards, 8, 11)
		if testing.Short() {
			cfg.Core = core.DefaultConfig(1024)
			cfg.Core.Seed = 11
			cfg.Core.Shards = shards
			cfg.InitialSize = 256
			cfg.Steps = 30
		}
		cfg.Strategy = &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.15}}
		cfg.InstallHijacker = true
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := r.Hijacker()
		if h == nil {
			t.Fatal("no hijacker installed")
		}
		r.World().SetSteerHook(h)
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := core.CheckInvariants(r.World()); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, h
	}
	a, ha := run(1)
	b, hb := run(8)
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged across shard counts:\n%+v\nvs\n%+v", a.Stats, b.Stats)
	}
	if a.Stats.HijackedWalks == 0 {
		t.Fatal("hooked run hijacked no walks: the redirect path never ran")
	}
	if a.Final != b.Final {
		t.Fatalf("final audit diverged:\n%+v\nvs\n%+v", a.Final, b.Final)
	}
	if ha.Hijacked != hb.Hijacked || ha.CommittedOps != hb.CommittedOps {
		t.Fatalf("hook bookkeeping diverged: hijacked %d/%d ops %d/%d",
			ha.Hijacked, hb.Hijacked, ha.CommittedOps, hb.CommittedOps)
	}
	if ha.Hijacked != a.Stats.HijackedWalks {
		t.Fatalf("commit fold lost walks: hook saw %d, world recorded %d",
			ha.Hijacked, a.Stats.HijackedWalks)
	}
	if a.BatchedOps != b.BatchedOps || a.DeferredOps != b.DeferredOps || a.SkippedOps != b.SkippedOps {
		t.Fatalf("scheduler counters diverged: %d/%d/%d vs %d/%d/%d",
			a.BatchedOps, a.DeferredOps, a.SkippedOps, b.BatchedOps, b.DeferredOps, b.SkippedOps)
	}
}

func TestBatchedGrowShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-phase batched run skipped in -short mode")
	}
	cfg := batchedConfig(8, 6, 3)
	cfg.Steps = 80
	cfg.Schedule = workload.Linear{From: 512, To: 1400, Steps: 80}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	grown := r.World().NumNodes()
	if grown <= 512 {
		t.Fatalf("population %d did not grow", grown)
	}
	if res.Stats.Splits == 0 {
		t.Fatal("growth produced no splits (structural tail never ran)")
	}
	if err := core.CheckInvariants(r.World()); err != nil {
		t.Fatal(err)
	}
	res2, err := r.Continue(workload.Linear{From: grown, To: 512, Steps: 80}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if r.World().NumNodes() >= grown {
		t.Fatalf("population %d did not shrink from %d", r.World().NumNodes(), grown)
	}
	if res2.Stats.Merges == 0 {
		t.Fatal("shrink produced no merges")
	}
	if err := core.CheckInvariants(r.World()); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedRejoinAllDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("rejoin-all batched shrink skipped in -short mode")
	}
	cfg := batchedConfig(8, 6, 9)
	cfg.Core.MergeStrategy = core.MergeRejoinAll
	cfg.Steps = 120
	cfg.Schedule = workload.Linear{From: 512, To: 200, Steps: 100}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merges == 0 {
		t.Fatal("rejoin-all shrink produced no merges")
	}
	if res.Stats.Rejoins == 0 {
		t.Fatal("merges displaced nodes but none rejoined")
	}
	if err := core.CheckInvariants(r.World()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedAttackStrategySurvivesMerges is the regression for the
// vanished-contact hazard: JoinLeaveAttack emits HasContact joins at a
// fixated target cluster, and under shrink pressure an earlier deferred
// leave can merge that exact cluster away on the scheduler's tail before
// the join runs. The driver must skip such ops (ErrUnknownCluster /
// ErrUnknownNode), not abort the run.
func TestBatchedAttackStrategySurvivesMerges(t *testing.T) {
	if testing.Short() {
		t.Skip("attack-strategy batched shrink skipped in -short mode")
	}
	cfg := batchedConfig(8, 8, 5)
	cfg.Strategy = &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.15}}
	cfg.Steps = 120
	cfg.Schedule = workload.Linear{From: 512, To: 200, Steps: 100}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merges == 0 {
		t.Fatal("shrink produced no merges: the hazard path never ran")
	}
	if err := core.CheckInvariants(r.World()); err != nil {
		t.Fatal(err)
	}
}
