package sim

import (
	"testing"

	"nowover/internal/adversary"
	"nowover/internal/core"
	"nowover/internal/metrics"
	"nowover/internal/workload"
)

func baseConfig() Config {
	cc := core.DefaultConfig(1024)
	cc.Seed = 3
	return Config{
		Core:             cc,
		InitialSize:      300,
		Tau:              0.15,
		Steps:            100,
		Seed:             9,
		AuditEvery:       25,
		ConsistencyEvery: 50,
		SampleOpCosts:    true,
		TrackSizes:       true,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.InitialSize = 0 },
		func(c *Config) { c.Steps = -1 },
		func(c *Config) { c.Tau = -0.1 },
		func(c *Config) { c.Tau = 1.0 },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSteadyRun(t *testing.T) {
	res, err := mustRun(t, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 100 {
		t.Errorf("steps = %d", res.Steps)
	}
	if res.Final.Nodes < 250 || res.Final.Nodes > 350 {
		t.Errorf("steady run drifted to %d nodes", res.Final.Nodes)
	}
	if res.Stats.Joins+res.Stats.Leaves == 0 {
		t.Error("no churn executed")
	}
	if res.TotalCost.Messages == 0 {
		t.Error("no cost recorded")
	}
	if res.OpCosts.JoinMsgs.N() == 0 || res.OpCosts.LeaveMsgs.N() == 0 {
		t.Error("no op cost samples")
	}
	if len(res.Audits) == 0 || len(res.Sizes) != 100 {
		t.Errorf("audits=%d sizes=%d", len(res.Audits), len(res.Sizes))
	}
}

// TestExactAndSketchSamplesAgree runs the SAME seeded simulation under
// both cost-accounting modes: the protocol trajectory must be untouched
// by the accounting choice (identical stats, audits and total cost), the
// exact aggregates of every per-op series must match bit for bit, sketch
// quantiles must sit near their exact counterparts, and the per-class
// histograms — exact in both modes — must be identical.
func TestExactAndSketchSamplesAgree(t *testing.T) {
	cfg := baseConfig()
	cfg.Steps = 300
	cfg.ExactSamples = true
	exact, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ExactSamples = false
	sketch, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats != sketch.Stats {
		t.Errorf("accounting mode changed the trajectory: %+v vs %+v", exact.Stats, sketch.Stats)
	}
	if exact.TotalCost.Messages != sketch.TotalCost.Messages ||
		exact.TotalCost.Rounds != sketch.TotalCost.Rounds {
		t.Errorf("total cost diverged: %v vs %v", exact.TotalCost, sketch.TotalCost)
	}
	series := []struct {
		name string
		e, s *metrics.Dist
	}{
		{"JoinMsgs", &exact.OpCosts.JoinMsgs, &sketch.OpCosts.JoinMsgs},
		{"JoinRounds", &exact.OpCosts.JoinRounds, &sketch.OpCosts.JoinRounds},
		{"LeaveMsgs", &exact.OpCosts.LeaveMsgs, &sketch.OpCosts.LeaveMsgs},
		{"LeaveRounds", &exact.OpCosts.LeaveRounds, &sketch.OpCosts.LeaveRounds},
	}
	for _, sr := range series {
		if sr.e.N() != sr.s.N() || sr.e.Mean() != sr.s.Mean() || sr.e.Max() != sr.s.Max() {
			t.Errorf("%s exact aggregates diverged: n=%d/%d mean=%v/%v max=%v/%v",
				sr.name, sr.e.N(), sr.s.N(), sr.e.Mean(), sr.s.Mean(), sr.e.Max(), sr.s.Max())
		}
		if sr.e.N() < 10 {
			continue // quantile comparison is meaningless on a handful of ops
		}
		ep, sp := sr.e.Quantile(0.95), sr.s.Quantile(0.95)
		// Per-op costs are heavy-tailed; a rank-bounded sketch p95 stays
		// within the exact p90..max value band.
		if lo, hi := sr.e.Quantile(0.90), sr.e.Max(); sp < lo || sp > hi {
			t.Errorf("%s sketch p95 %v outside exact [p90 %v, max %v] (exact p95 %v)",
				sr.name, sp, lo, hi, ep)
		}
	}
	if exact.OpCosts.ClassMsgs != sketch.OpCosts.ClassMsgs {
		t.Error("per-class histograms diverged between modes (they are exact in both)")
	}
	hasClassData := false
	for c := range exact.OpCosts.ClassMsgs {
		if exact.OpCosts.ClassMsgs[c].N() > 0 {
			hasClassData = true
		}
	}
	if !hasClassData {
		t.Error("no per-class histogram data recorded")
	}
}

func mustRun(t *testing.T, cfg Config) (*Result, error) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.Run()
}

func TestGrowthRun(t *testing.T) {
	cfg := baseConfig()
	cfg.Schedule = workload.Linear{From: 300, To: 500, Steps: 250}
	cfg.Steps = 250
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Nodes < 480 {
		t.Errorf("growth run reached only %d nodes", res.Final.Nodes)
	}
	if res.Final.Clusters <= res.Initial.Clusters {
		t.Errorf("clusters did not grow: %d -> %d", res.Initial.Clusters, res.Final.Clusters)
	}
	if !res.Final.OverlayConnected {
		t.Error("overlay disconnected after growth")
	}
}

func TestShrinkRun(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink sweep skipped in -short mode")
	}
	cfg := baseConfig()
	cfg.InitialSize = 600
	cfg.Schedule = workload.Linear{From: 600, To: 300, Steps: 350}
	cfg.Steps = 350
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Nodes > 320 {
		t.Errorf("shrink run stuck at %d nodes", res.Final.Nodes)
	}
	if res.Stats.Merges == 0 {
		t.Error("no merges during 50% shrink")
	}
	if !res.Final.OverlayConnected {
		t.Error("overlay disconnected after shrink")
	}
}

func TestSizeClampedAtBounds(t *testing.T) {
	cfg := baseConfig()
	// Demand growth far beyond N; the runner must clamp at N.
	cfg.Schedule = workload.Linear{From: 300, To: 10000, Steps: 100}
	cfg.Steps = 120
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakSize > cfg.Core.N {
		t.Errorf("size %d exceeded N=%d", res.PeakSize, cfg.Core.N)
	}
}

func TestJoinLeaveAttackRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: cfg.Tau}}
	cfg.InstallHijacker = true
	cfg.Steps = 150
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Against full NOW defenses the attack must not capture anything in a
	// short run at tau=0.15.
	if res.CapturedSteps > 0 {
		t.Errorf("attack captured a cluster within %d steps at tau=0.15", cfg.Steps)
	}
	frac := float64(res.Final.Byz) / float64(res.Final.Nodes)
	if frac > cfg.Tau+0.02 {
		t.Errorf("budget exceeded: byz fraction %.3f > tau %.2f", frac, cfg.Tau)
	}
}

func TestDOSAttackRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy = &adversary.DOSAttack{Budget: adversary.Budget{Tau: cfg.Tau}}
	cfg.Steps = 120
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedSteps > 0 {
		t.Errorf("DoS attack captured a cluster at tau=0.15 in %d steps", cfg.Steps)
	}
}

func TestRejoinAllStrategyDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("rejoin-all drain sweep skipped in -short mode")
	}
	cfg := baseConfig()
	cfg.Core.MergeStrategy = core.MergeRejoinAll
	cfg.InitialSize = 500
	cfg.Schedule = workload.Linear{From: 500, To: 300, Steps: 300}
	cfg.Steps = 400
	runner, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Merges == 0 {
		t.Error("no merges under rejoin-all")
	}
	// Conservation: merge removals equal executed rejoins plus still-queued
	// nodes, so population = initial + fresh joins - leaves - queued,
	// where fresh joins = Joins - Rejoins.
	queued := runner.QueuedRejoins() + len(runner.World().PendingRejoins())
	want := cfg.InitialSize + int(res.Stats.Joins-res.Stats.Rejoins-res.Stats.Leaves) - queued
	if res.Final.Nodes != want {
		t.Errorf("population %d, want %d (joins=%d rejoins=%d leaves=%d queued=%d)",
			res.Final.Nodes, want, res.Stats.Joins, res.Stats.Rejoins, res.Stats.Leaves, queued)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := baseConfig()
		cfg.Steps = 60
		res, err := mustRun(t, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Final.Nodes != b.Final.Nodes || a.Stats.Joins != b.Stats.Joins ||
		a.TotalCost.Messages != b.TotalCost.Messages {
		t.Errorf("identical configs diverged: %+v vs %+v", a.Final, b.Final)
	}
}

func TestOscillationSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("oscillation sweep skipped in -short mode")
	}
	// One op per time step bounds the achievable slope at 1 node/step, so
	// the triangle wave must stay within that: amplitude 100 per
	// half-period of 200 steps.
	cfg := baseConfig()
	cfg.InitialSize = 300
	cfg.Schedule = workload.Oscillate{Lo: 250, Hi: 420, Period: 400}
	cfg.Steps = 400
	cfg.ConsistencyEvery = 100
	res, err := mustRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakSize < 390 || res.TroughSize > 280 {
		t.Errorf("oscillation amplitude not realized: [%d, %d]", res.TroughSize, res.PeakSize)
	}
	if !res.Final.OverlayConnected {
		t.Error("overlay disconnected after oscillation")
	}
}
