// Package sim is the synchronous simulation engine: it drives a NOW world
// through a churn trace produced by a workload schedule (net size over
// time) and an adversary strategy (who joins/leaves, who is corrupted),
// recording invariant audits and per-operation communication costs. One
// simulator step is one paper time step: a single join or leave with all
// of its induced maintenance (exchange cascades, splits, merges), matching
// the paper's one-operation-per-step presentation.
package sim

import (
	"fmt"
	"math"

	"nowover/internal/adversary"
	"nowover/internal/core"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/workload"
	"nowover/internal/xrand"
)

// Config assembles one simulation run.
type Config struct {
	// Core is the NOW protocol configuration.
	Core core.Config
	// InitialSize is n at bootstrap.
	InitialSize int
	// Tau is the adversary's corruption budget (fraction of nodes).
	Tau float64
	// Schedule drives the target network size; nil means Steady at
	// InitialSize.
	Schedule workload.Schedule
	// Strategy decides churn specifics; nil means benign RandomChurn.
	Strategy adversary.Strategy
	// Steps is the number of time steps to simulate.
	Steps int
	// AuditEvery records a full audit every k steps (0 disables periodic
	// audits; the final audit is always taken).
	AuditEvery int
	// ConsistencyEvery cross-checks all redundant bookkeeping every k
	// steps (0 disables; expensive, for tests).
	ConsistencyEvery int
	// SampleOpCosts records per-operation message/round samples.
	SampleOpCosts bool
	// ExactSamples selects the per-operation cost accumulator: false (the
	// default) summarizes each cost series with a fixed-memory quantile
	// sketch plus per-class log-scale histograms (metrics.Digest /
	// metrics.Hist), so memory stays O(1) per series no matter how many
	// operations run — the mode that keeps -full sweeps at N >= 2^16 in
	// memory. True retains the full observation history (metrics.Sample),
	// reproducing pre-sketch tables byte for byte; use it at small N or
	// when regression-diffing outputs. Means, counts and maxima are exact
	// in BOTH modes; only quantile columns differ, within the sketch's
	// rank-error bounds.
	ExactSamples bool
	// TrackSizes records the size trajectory.
	TrackSizes bool
	// Seed drives the strategy's randomness (kept separate from protocol
	// randomness so the adversary cannot be accidentally correlated with
	// it).
	Seed uint64
	// InstallHijacker wires the adversary's captured-cluster walk
	// redirection when the strategy exposes a target.
	InstallHijacker bool
	// OpsPerStep > 1 switches to the concurrent churn driver: each time
	// step issues up to OpsPerStep operations as one batch through the
	// world's op scheduler (core.World.ExecBatch), so non-conflicting
	// join/leave/exchange work executes concurrently on sharded worlds
	// (Core.Shards > 1). Results stay deterministic in the seeds at any
	// shard count — including with InstallHijacker: the hook contract
	// (core hooks.go) makes plan-phase hijack/steer decisions pure reads
	// of state fixed at the batch boundary, so hooked batches plan at
	// full parallelism. Batched attack traces are a distinct (equally
	// deterministic) trajectory from the classic driver's: the hijacker
	// reads the step-boundary target snapshot instead of re-fixating
	// mid-operation. 0 or 1 keeps the classic one-op-per-step driver.
	// Batched mode does not collect per-operation cost samples
	// (SampleOpCosts is ignored).
	OpsPerStep int
}

func (c Config) validate() error {
	if c.InitialSize <= 0 {
		return fmt.Errorf("sim: non-positive initial size")
	}
	if c.Steps < 0 {
		return fmt.Errorf("sim: negative step count")
	}
	if c.Tau < 0 || c.Tau >= 1 {
		return fmt.Errorf("sim: tau %v outside [0,1)", c.Tau)
	}
	if c.OpsPerStep < 0 {
		return fmt.Errorf("sim: negative OpsPerStep %d", c.OpsPerStep)
	}
	return nil
}

// OpCosts holds per-operation cost distributions by operation kind, plus a
// per-traffic-class histogram of each sampled operation's message count.
// The series accumulators follow Config.ExactSamples (exact history vs
// fixed-memory sketch); the class histograms are log-scale and exactly
// mergeable in both modes.
type OpCosts struct {
	JoinMsgs, JoinRounds   metrics.Dist
	LeaveMsgs, LeaveRounds metrics.Dist
	// ClassMsgs[c] histograms the per-operation message count charged to
	// traffic class c across all sampled operations.
	ClassMsgs [metrics.NumClasses]metrics.Hist
}

// NewOpCosts returns an empty OpCosts whose series accumulators are in the
// requested mode — the seed for cross-run aggregation via Merge.
func NewOpCosts(exact bool) OpCosts {
	return OpCosts{
		JoinMsgs:    metrics.NewDist(exact),
		JoinRounds:  metrics.NewDist(exact),
		LeaveMsgs:   metrics.NewDist(exact),
		LeaveRounds: metrics.NewDist(exact),
	}
}

// Merge folds another OpCosts into this one in submission order. Modes
// must match (see metrics.Dist.Merge). Replica sweeps use it to aggregate
// per-operation cost distributions across runs.
func (o *OpCosts) Merge(other *OpCosts) {
	o.JoinMsgs.Merge(&other.JoinMsgs)
	o.JoinRounds.Merge(&other.JoinRounds)
	o.LeaveMsgs.Merge(&other.LeaveMsgs)
	o.LeaveRounds.Merge(&other.LeaveRounds)
	for c := range o.ClassMsgs {
		o.ClassMsgs[c].Merge(&other.ClassMsgs[c])
	}
}

// Result is the outcome of one run.
type Result struct {
	Steps     int
	Initial   core.Audit
	Final     core.Audit
	Stats     core.Stats
	Audits    []core.Audit
	Sizes     []int
	TotalCost metrics.Cost
	OpCosts   OpCosts
	// DegradedSteps / CapturedSteps count time steps at whose end at
	// least one cluster was >= 1/3 / >= 1/2 Byzantine: the paper's
	// failure-state dwell time.
	DegradedSteps, CapturedSteps int
	// PeakSize / TroughSize bracket the realized size trajectory.
	PeakSize, TroughSize int
	// BatchedOps / DeferredOps count, in concurrent-driver mode
	// (OpsPerStep > 1), the operations fed to the scheduler and how many
	// of them fell to its serial tail (conflicting footprints or
	// structural splits/merges). SkippedOps counts ops whose victim node
	// or contact/target cluster was already gone by the time they ran
	// (e.g. displaced by an earlier tail merge); skipped ops are a subset
	// of the deferred ones, not a third disjoint bucket.
	BatchedOps, DeferredOps, SkippedOps int
}

// Runner executes a configured simulation.
type Runner struct {
	cfg      Config
	world    *core.World
	strategy adversary.Strategy
	schedule workload.Schedule
	hijacker *adversary.CapturedHijacker
	rng      *xrand.Rand
	rejoins  []ids.NodeID

	// Concurrent-driver scratch, reused across steps so long runs do not
	// allocate per step (the million-node sweeps run ~N steps per cell).
	victims map[ids.NodeID]bool
	ops     []core.Op
	results []core.OpResult
}

// New builds a runner: world bootstrap (with the adversary corrupting its
// tau budget up front, as the model allows) plus strategy wiring.
func New(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w, err := core.NewWorld(cfg.Core)
	if err != nil {
		return nil, err
	}
	byzBudget := int(cfg.Tau * float64(cfg.InitialSize))
	if err := w.Bootstrap(cfg.InitialSize, func(slot int) bool { return slot < byzBudget }); err != nil {
		return nil, err
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = &adversary.RandomChurn{Budget: adversary.Budget{Tau: cfg.Tau}}
	}
	schedule := cfg.Schedule
	if schedule == nil {
		schedule = workload.Steady{Size: cfg.InitialSize}
	}
	r := &Runner{
		cfg:      cfg,
		world:    w,
		strategy: strategy,
		schedule: schedule,
		rng:      xrand.New(cfg.Seed ^ 0xAD5A11),
	}
	if cfg.InstallHijacker {
		// The hijacker reads the strategy's cached fixation (pure
		// PlanTarget) and ratchets it through the serial batch lifecycle;
		// under the classic driver the per-step Decide call keeps the
		// fixation equally fresh. Strategies without the commit-scoped
		// Target side (e.g. DOSAttack) expose no coherent fixation to
		// redirect to, so no hook is installed — same as before.
		if tgt, ok := strategy.(adversary.TargetProvider); ok {
			r.hijacker = &adversary.CapturedHijacker{View: w, Strategy: tgt}
			w.SetHijacker(r.hijacker)
		}
	}
	return r, nil
}

// Hijacker returns the captured-cluster redirection hook New installed
// (Config.InstallHijacker), or nil. Experiments use it to wire the same
// snapshot-scoped target fixation into the steer hook
// (World.SetSteerHook) so both hooks ride one batch lifecycle.
func (r *Runner) Hijacker() *adversary.CapturedHijacker { return r.hijacker }

// World exposes the underlying world (for experiments that need mid-run
// inspection).
func (r *Runner) World() *core.World { return r.world }

// QueuedRejoins reports how many merge-displaced nodes still await their
// rejoin step (MergeRejoinAll only).
func (r *Runner) QueuedRejoins() int { return len(r.rejoins) }

// Continue runs additional steps on the same world, optionally under a
// new schedule (nil keeps the current one). Multi-phase experiments use
// it to chain growth and shrink epochs on one protocol instance.
func (r *Runner) Continue(sched workload.Schedule, steps int) (*Result, error) {
	if sched != nil {
		r.schedule = sched
	}
	r.cfg.Steps = steps
	return r.Run()
}

// Run executes the configured number of steps.
func (r *Runner) Run() (*Result, error) {
	res := &Result{
		Initial:    r.world.Audit(),
		PeakSize:   r.world.NumNodes(),
		TroughSize: r.world.NumNodes(),
		OpCosts:    NewOpCosts(r.cfg.ExactSamples),
	}
	ledger := r.world.Ledger()
	startSnap := ledger.Snapshot()
	minSize := r.minimumSize()

	for step := 0; step < r.cfg.Steps; step++ {
		var err error
		if r.cfg.OpsPerStep > 1 {
			err = r.stepBatch(step, minSize, res)
		} else {
			err = r.step(step, minSize, res)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: step %d: %w", step, err)
		}
		n := r.world.NumNodes()
		if n > res.PeakSize {
			res.PeakSize = n
		}
		if n < res.TroughSize {
			res.TroughSize = n
		}
		if r.cfg.TrackSizes {
			res.Sizes = append(res.Sizes, n)
		}
		deg, cap := r.world.CurrentInsecure()
		if deg > 0 {
			res.DegradedSteps++
		}
		if cap > 0 {
			res.CapturedSteps++
		}
		if r.cfg.AuditEvery > 0 && step%r.cfg.AuditEvery == 0 {
			res.Audits = append(res.Audits, r.world.Audit())
		}
		if r.cfg.ConsistencyEvery > 0 && step%r.cfg.ConsistencyEvery == 0 {
			if err := r.world.CheckConsistency(); err != nil {
				return nil, fmt.Errorf("sim: step %d: %w", step, err)
			}
		}
		res.Steps++
	}
	res.Final = r.world.Audit()
	res.Stats = r.world.Stats()
	res.TotalCost = ledger.Since(startSnap)
	return res, nil
}

// minimumSize is the floor the trajectory may not cross: the model's
// sqrt(N), but never below two clusters' worth of nodes.
func (r *Runner) minimumSize() int {
	sqrtN := int(math.Ceil(math.Sqrt(float64(r.cfg.Core.N))))
	floor := 2 * r.cfg.Core.TargetClusterSize()
	if sqrtN > floor {
		return sqrtN
	}
	return floor
}

func (r *Runner) step(step, minSize int, res *Result) error {
	// Displaced nodes from MergeRejoinAll re-join on subsequent steps,
	// taking priority over scheduled churn.
	r.rejoins = append(r.rejoins, r.world.PendingRejoins()...)
	if len(r.rejoins) > 0 {
		x := r.rejoins[0]
		r.rejoins = r.rejoins[1:]
		snap := r.world.Ledger().Snapshot()
		if err := r.world.Rejoin(x); err != nil {
			return err
		}
		r.recordOpCost(res, adversary.OpJoin, snap)
		return nil
	}

	n := r.world.NumNodes()
	target := r.schedule.TargetSize(step)
	if target > r.cfg.Core.N {
		target = r.cfg.Core.N
	}
	if target < minSize {
		target = minSize
	}
	var dir adversary.Direction
	switch {
	case target > n:
		dir = adversary.Grow
	case target < n:
		dir = adversary.Shrink
	default:
		// Steady state: keep churning without net growth.
		if r.rng.Bool(0.5) && n < r.cfg.Core.N {
			dir = adversary.Grow
		} else {
			dir = adversary.Shrink
		}
	}
	// Hard clamps at the model boundary.
	if n >= r.cfg.Core.N {
		dir = adversary.Shrink
	}
	if n <= minSize {
		dir = adversary.Grow
	}

	op := r.strategy.Decide(r.world, r.rng, dir)
	snap := r.world.Ledger().Snapshot()
	switch op.Kind {
	case adversary.OpJoin:
		var err error
		if op.HasContact {
			_, err = r.world.Join(op.Byz, op.Contact)
		} else {
			_, err = r.world.JoinAuto(op.Byz)
		}
		if err != nil {
			return err
		}
		r.recordOpCost(res, adversary.OpJoin, snap)
	case adversary.OpLeave:
		if err := r.world.Leave(op.Victim); err != nil {
			return err
		}
		r.recordOpCost(res, adversary.OpLeave, snap)
	case adversary.OpNoop:
		// Nothing to do this step.
	default:
		return fmt.Errorf("sim: unknown op kind %d", op.Kind)
	}
	return nil
}

// stepBatch is one concurrent-driver time step (OpsPerStep > 1): drain
// pending rejoins first (classic and serial — they reuse reserved
// identities), otherwise let the strategy decide up to OpsPerStep
// operations against the step-boundary state — the adversary's view in
// the paper's model — and execute them as one batch through the world's
// op scheduler. Victims are deduplicated within the step; a victim that
// still vanishes before its sub-operation runs (displaced by an earlier
// tail merge) is counted as skipped, not fatal.
func (r *Runner) stepBatch(step, minSize int, res *Result) error {
	r.rejoins = append(r.rejoins, r.world.PendingRejoins()...)
	if len(r.rejoins) > 0 {
		k := r.cfg.OpsPerStep
		if k > len(r.rejoins) {
			k = len(r.rejoins)
		}
		for i := 0; i < k; i++ {
			if err := r.world.Rejoin(r.rejoins[i]); err != nil {
				return err
			}
		}
		r.rejoins = r.rejoins[k:]
		return nil
	}

	target := r.schedule.TargetSize(step)
	if target > r.cfg.Core.N {
		target = r.cfg.Core.N
	}
	if target < minSize {
		target = minSize
	}

	startN := r.world.NumNodes()
	projN := startN
	joins := 0
	if r.victims == nil {
		r.victims = make(map[ids.NodeID]bool)
	} else {
		clear(r.victims)
	}
	victims := r.victims
	ops := r.ops[:0]
	for tries := 0; len(ops) < r.cfg.OpsPerStep && tries < 4*r.cfg.OpsPerStep; tries++ {
		var dir adversary.Direction
		switch {
		case target > projN:
			dir = adversary.Grow
		case target < projN:
			dir = adversary.Shrink
		default:
			// Steady state: keep churning without net growth.
			if r.rng.Bool(0.5) && projN < r.cfg.Core.N {
				dir = adversary.Grow
			} else {
				dir = adversary.Shrink
			}
		}
		// Hard clamps at the model boundary, projected through the batch.
		if projN >= r.cfg.Core.N {
			dir = adversary.Shrink
		}
		if projN <= minSize {
			dir = adversary.Grow
		}

		op := r.strategy.Decide(r.world, r.rng, dir)
		switch op.Kind {
		case adversary.OpJoin:
			// Hard N bound without leave credit: a planned leave can still
			// be skipped (victim displaced by a tail merge), so joins are
			// admitted only against the step-start population. The classic
			// driver enforces n <= N against the live count; this is the
			// batched equivalent.
			if startN+joins >= r.cfg.Core.N {
				continue
			}
			cop := core.Op{Kind: core.OpJoin, Byz: op.Byz}
			if op.HasContact {
				cop.Contact, cop.HasContact = op.Contact, true
			}
			ops = append(ops, cop)
			joins++
			projN++
		case adversary.OpLeave:
			if victims[op.Victim] {
				continue // already departing this step; re-draw
			}
			victims[op.Victim] = true
			ops = append(ops, core.Op{Kind: core.OpLeave, Victim: op.Victim})
			projN--
		case adversary.OpNoop:
			// Nothing decided for this slot.
		default:
			return fmt.Errorf("sim: unknown op kind %d", op.Kind)
		}
	}

	r.ops = ops
	results := r.world.ExecBatchInto(r.results, ops)
	r.results = results
	res.BatchedOps += len(ops)
	for _, rr := range results {
		if rr.Deferred {
			res.DeferredOps++
		}
		if rr.Err != nil {
			// A victim or contact/target cluster can legitimately vanish
			// mid-batch (displaced by an earlier tail merge): skip, don't
			// abort.
			if core.IsUnknownNode(rr.Err) || core.IsUnknownCluster(rr.Err) {
				res.SkippedOps++
				continue
			}
			return rr.Err
		}
	}
	return nil
}

func (r *Runner) recordOpCost(res *Result, kind adversary.OpKind, snap metrics.Snapshot) {
	if !r.cfg.SampleOpCosts {
		return
	}
	// SinceVec is the dense, allocation-free form of Since: its ByClass
	// array holds every class, including the zero charges Cost.ByClass
	// omits, so each histogram's N is the sampled-op count and its
	// quantiles are true per-op distributions, not distributions
	// conditioned on the class having been used.
	cost := r.world.Ledger().SinceVec(snap)
	switch kind {
	case adversary.OpJoin:
		res.OpCosts.JoinMsgs.Add(float64(cost.Messages))
		res.OpCosts.JoinRounds.Add(float64(cost.Rounds))
	case adversary.OpLeave:
		res.OpCosts.LeaveMsgs.Add(float64(cost.Messages))
		res.OpCosts.LeaveRounds.Add(float64(cost.Rounds))
	}
	for c := 0; c < metrics.NumClasses; c++ {
		res.OpCosts.ClassMsgs[c].Add(float64(cost.ByClass[c]))
	}
}
