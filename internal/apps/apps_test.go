package apps_test

import (
	"math"
	"testing"

	"nowover/internal/apps"
	"nowover/internal/core"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/xrand"
)

func world(t *testing.T, n0 int, tau float64) *core.World {
	t.Helper()
	cfg := core.DefaultConfig(1024)
	cfg.Seed = 31
	w, err := core.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := int(tau * float64(n0))
	if err := w.Bootstrap(n0, func(slot int) bool { return slot < budget }); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBroadcastReachesEveryone(t *testing.T) {
	w := world(t, 400, 0.1)
	var led metrics.Ledger
	src := w.Clusters()[0]
	rep, err := apps.Broadcast(&led, w, src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClustersReached != w.NumClusters() {
		t.Errorf("reached %d of %d clusters", rep.ClustersReached, w.NumClusters())
	}
	if rep.NodesReached != w.NumNodes() {
		t.Errorf("reached %d of %d nodes", rep.NodesReached, w.NumNodes())
	}
	if rep.Messages == 0 || rep.Rounds == 0 {
		t.Error("no cost recorded")
	}
	if led.MessagesBy(metrics.ClassApplication) != rep.Messages {
		t.Error("ledger and report disagree")
	}
}

func TestBroadcastBeatsFlooding(t *testing.T) {
	// The section 6 claim: clustered broadcast is O~(n) vs O(n^2); at
	// n=600 the clustered cost must be well below the flooding reference.
	w := world(t, 600, 0)
	var led metrics.Ledger
	rep, err := apps.Broadcast(&led, w, w.Clusters()[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages*3 > rep.FloodingMessages {
		t.Errorf("clustered %d not well below flooding %d", rep.Messages, rep.FloodingMessages)
	}
}

func TestBroadcastEmptySourceFails(t *testing.T) {
	w := world(t, 300, 0)
	var led metrics.Ledger
	if _, err := apps.Broadcast(&led, w, ids.ClusterID(1<<40)); err == nil {
		t.Error("broadcast from nonexistent cluster accepted")
	}
}

func TestSamplerUniformity(t *testing.T) {
	w := world(t, 300, 0)
	s, err := apps.NewSampler(w, w.Walker(), w.Generator(), w.MemberAt)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(5)
	counts := make(map[ids.NodeID]int)
	const draws = 6000
	for i := 0; i < draws; i++ {
		contact, _ := w.RandomCluster(r)
		rep, err := s.Sample(&led, r, contact)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Security != randnum.Secure {
			t.Fatalf("insecure sample in honest network: %v", rep.Security)
		}
		if rep.Messages == 0 {
			t.Fatal("free sample")
		}
		counts[rep.Node]++
	}
	// Chi-square against uniform over 300 nodes: expected 20 per node.
	obs := make([]int64, 0, w.NumNodes())
	expect := make([]float64, 0, w.NumNodes())
	for _, c := range w.Clusters() {
		for i := 0; i < w.Size(c); i++ {
			obs = append(obs, int64(counts[w.MemberAt(c, i)]))
			expect = append(expect, 1)
		}
	}
	stat := metrics.ChiSquare(obs, expect)
	// dof = 299; mean 299, sd ~ sqrt(2*299) ~ 24.5; allow 5 sigma.
	if stat > 299+5*24.5 {
		t.Errorf("chi-square %.0f implausibly high for uniform sampling", stat)
	}
}

func TestSamplerCostPolylog(t *testing.T) {
	w := world(t, 500, 0)
	s, err := apps.NewSampler(w, w.Walker(), w.Generator(), w.MemberAt)
	if err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	r := xrand.New(6)
	var total int64
	const draws = 50
	for i := 0; i < draws; i++ {
		contact, _ := w.RandomCluster(r)
		rep, err := s.Sample(&led, r, contact)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.Messages
	}
	mean := float64(total) / draws
	// Polylog budget: log2(1024)^5 = 10^5; a sample must cost far less
	// than contacting the whole network n=500 times.
	if mean > 1e5 {
		t.Errorf("mean sample cost %.0f exceeds polylog budget", mean)
	}
}

func TestSamplerValidation(t *testing.T) {
	w := world(t, 300, 0)
	if _, err := apps.NewSampler(nil, w.Walker(), w.Generator(), w.MemberAt); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := apps.NewSampler(w, nil, w.Generator(), w.MemberAt); err == nil {
		t.Error("nil walker accepted")
	}
	if _, err := apps.NewSampler(w, w.Walker(), nil, w.MemberAt); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := apps.NewSampler(w, w.Walker(), w.Generator(), nil); err == nil {
		t.Error("nil member resolver accepted")
	}
}

func TestAggregateCountsNodes(t *testing.T) {
	w := world(t, 400, 0.15)
	var led metrics.Ledger
	root := w.Clusters()[0]
	rep, err := apps.Aggregate(&led, w, root, func(ids.ClusterID, int) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != int64(w.NumNodes()) {
		t.Errorf("aggregate = %d, want %d", rep.Value, w.NumNodes())
	}
	if rep.Value != rep.Exact {
		t.Errorf("root value %d != exact %d", rep.Value, rep.Exact)
	}
	if rep.Messages == 0 || rep.Rounds == 0 {
		t.Error("no cost recorded")
	}
}

func TestAggregateWeightedSum(t *testing.T) {
	w := world(t, 300, 0)
	var led metrics.Ledger
	rep, err := apps.Aggregate(&led, w, w.Clusters()[1], func(c ids.ClusterID, i int) int64 {
		return int64(w.MemberAt(c, i)) % 7
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, c := range w.Clusters() {
		for i := 0; i < w.Size(c); i++ {
			want += int64(w.MemberAt(c, i)) % 7
		}
	}
	if rep.Value != want {
		t.Errorf("aggregate = %d, want %d", rep.Value, want)
	}
}

func TestAgreeMajorityDecision(t *testing.T) {
	w := world(t, 400, 0.1)
	var led metrics.Ledger
	root := w.Clusters()[0]
	// Every cluster proposes 1: decision must be 1.
	rep, err := apps.Agree(&led, w, root, func(ids.ClusterID) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision != 1 {
		t.Errorf("decision = %d, want 1", rep.Decision)
	}
	if !rep.RootSecure {
		t.Error("root cluster insecure in a 10% network")
	}
	// Every cluster proposes 0.
	rep0, err := apps.Agree(&led, w, root, func(ids.ClusterID) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Decision != 0 {
		t.Errorf("decision = %d, want 0", rep0.Decision)
	}
	if rep.Messages == 0 {
		t.Error("free agreement")
	}
}

func TestCostScalingNearLinear(t *testing.T) {
	// Broadcast cost across growing n should scale ~n*polylog, far from
	// quadratic: fit the power-law exponent.
	var xs, ys []float64
	for _, n0 := range []int{200, 400, 800} {
		w := world(t, n0, 0)
		var led metrics.Ledger
		rep, err := apps.Broadcast(&led, w, w.Clusters()[0])
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, float64(n0))
		ys = append(ys, float64(rep.Messages))
	}
	fit := metrics.FitPowerLaw(xs, ys)
	if fit.Slope > 1.5 {
		t.Errorf("broadcast cost exponent %.2f, want ~1 (far below 2)", fit.Slope)
	}
	if math.IsNaN(fit.Slope) {
		t.Error("degenerate fit")
	}
}
