// Package apps implements the application-layer protocols the paper's
// conclusion derives from NOW clustering (section 6): broadcast with
// O~(n) message complexity (vs O(n^2) unclustered), uniform node sampling
// at polylog(n) messages per sample, network-wide aggregation, and a
// network-wide agreement service — each running over the cluster overlay
// with the paper's inter-cluster communication rule (a message from
// cluster C is accepted on more than half identical copies, so every
// cluster-to-cluster hop costs |Ci|*|Cj| messages).
//
// Reliability tracking: any degraded cluster (>= 1/3 Byzantine) on a
// protocol's communication tree taints the result; captured clusters
// (>= 1/2) corrupt it outright. The reports surface both, because the
// whole point of NOW is to make such clusters vanishingly rare.
package apps

import (
	"fmt"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// World is the read view the applications need; core.World implements it.
type World interface {
	walk.Topology
	Clusters() []ids.ClusterID
	NumNodes() int
}

// bfsTree computes parent pointers of a BFS spanning tree of the overlay
// rooted at root, using only Degree/NeighborAt. Returns the visit order.
func bfsTree(w World, root ids.ClusterID) (order []ids.ClusterID, parent map[ids.ClusterID]ids.ClusterID) {
	parent = make(map[ids.ClusterID]ids.ClusterID)
	parent[root] = root
	order = append(order, root)
	for i := 0; i < len(order); i++ {
		c := order[i]
		for j, d := 0, w.Degree(c); j < d; j++ {
			nb := w.NeighborAt(c, j)
			if _, seen := parent[nb]; !seen {
				parent[nb] = c
				order = append(order, nb)
			}
		}
	}
	return order, parent
}

// interClusterCost is the paper's bipartite cost of one cluster-to-cluster
// message.
func interClusterCost(w World, a, b ids.ClusterID) int64 {
	return int64(w.Size(a)) * int64(w.Size(b))
}

// BroadcastReport summarizes one clustered broadcast.
type BroadcastReport struct {
	// Source is the originating cluster.
	Source ids.ClusterID
	// ClustersReached counts overlay vertices the spanning tree covered.
	ClustersReached int
	// NodesReached counts member nodes in reached clusters.
	NodesReached int
	// Messages/Rounds are the clustered protocol's cost.
	Messages int64
	Rounds   int64
	// FloodingMessages is the unclustered O(n^2) reference the paper
	// compares against (every node relays to every node once).
	FloodingMessages int64
	// TaintedClusters counts reached clusters that were degraded or
	// captured (result reliability at risk there).
	TaintedClusters int
}

// Broadcast delivers a message from a source cluster to every node: the
// source's members flood their own cluster, then the message travels the
// BFS spanning tree of the overlay, each tree edge paying the bipartite
// inter-cluster cost and each receiving cluster relaying internally.
func Broadcast(led *metrics.Ledger, w World, source ids.ClusterID) (BroadcastReport, error) {
	if w.Size(source) == 0 {
		return BroadcastReport{}, fmt.Errorf("apps: broadcast from empty cluster %v", source)
	}
	rep := BroadcastReport{Source: source}
	order, parent := bfsTree(w, source)
	maxDepth := map[ids.ClusterID]int64{source: 0}
	for _, c := range order {
		rep.ClustersReached++
		rep.NodesReached += w.Size(c)
		if randnum.Classify(w.Size(c), w.Byz(c)) != randnum.Secure {
			rep.TaintedClusters++
		}
		// Intra-cluster relay: every member tells every member.
		intra := int64(w.Size(c)) * int64(w.Size(c)-1)
		led.Charge(metrics.ClassApplication, intra)
		rep.Messages += intra
		if c != source {
			p := parent[c]
			cost := interClusterCost(w, p, c)
			led.Charge(metrics.ClassApplication, cost)
			rep.Messages += cost
			maxDepth[c] = maxDepth[p] + 1
		}
	}
	var depth int64
	for _, d := range maxDepth {
		if d > depth {
			depth = d
		}
	}
	rep.Rounds = 2*depth + 2 // one hop + one intra relay per level
	led.AddRounds(rep.Rounds)
	n := int64(w.NumNodes())
	rep.FloodingMessages = n * (n - 1)
	return rep, nil
}

// SampleReport summarizes one uniform node sample.
type SampleReport struct {
	Node     ids.NodeID
	Cluster  ids.ClusterID
	Messages int64
	Rounds   int64
	// Security is the weakest randnum level observed along the walk.
	Security randnum.Security
}

// Sampler provides uniform node samples via randCl + intra-cluster
// randNum, the paper's polylog-per-sample sampling service.
type Sampler struct {
	world  World
	member func(c ids.ClusterID, i int) ids.NodeID
	walker *walk.Walker
	gen    randnum.Generator
}

// NewSampler builds a sampler. member resolves the i-th member of a
// cluster (core.World.MemberAt).
func NewSampler(w World, walker *walk.Walker, gen randnum.Generator, member func(ids.ClusterID, int) ids.NodeID) (*Sampler, error) {
	if w == nil || walker == nil || gen == nil || member == nil {
		return nil, fmt.Errorf("apps: nil sampler dependency")
	}
	return &Sampler{world: w, member: member, walker: walker, gen: gen}, nil
}

// Sample draws one ~uniform node starting from the given contact cluster.
func (s *Sampler) Sample(led *metrics.Ledger, r *xrand.Rand, contact ids.ClusterID) (SampleReport, error) {
	snap := led.Snapshot()
	out, err := s.walker.Biased(led, r, contact)
	if err != nil {
		return SampleReport{}, err
	}
	idx, sec, err := s.gen.Draw(led, r, randnum.Params{
		Size: s.world.Size(out.End),
		Byz:  s.world.Byz(out.End),
		R:    int64(s.world.Size(out.End)),
	}, nil)
	if err != nil {
		return SampleReport{}, err
	}
	if sec < out.WorstSecurity {
		sec = out.WorstSecurity
	}
	cost := led.Since(snap)
	return SampleReport{
		Node:     s.member(out.End, int(idx)),
		Cluster:  out.End,
		Messages: cost.Messages,
		Rounds:   cost.Rounds,
		Security: sec,
	}, nil
}

// AggregateReport summarizes one network-wide aggregation.
type AggregateReport struct {
	// Value is the aggregate computed at the root.
	Value int64
	// Exact is the true aggregate for verification.
	Exact           int64
	Messages        int64
	Rounds          int64
	TaintedClusters int
}

// Aggregate sums a per-node integer function over the whole network by
// convergecast on the overlay spanning tree: leaves send partial sums up,
// each cluster adding its own members' contributions; every tree edge
// pays the bipartite cost.
func Aggregate(led *metrics.Ledger, w World, root ids.ClusterID, value func(c ids.ClusterID, i int) int64) (AggregateReport, error) {
	if w.Size(root) == 0 {
		return AggregateReport{}, fmt.Errorf("apps: aggregate at empty cluster %v", root)
	}
	rep := AggregateReport{}
	order, parent := bfsTree(w, root)
	partial := make(map[ids.ClusterID]int64, len(order))
	for _, c := range order {
		var own int64
		for i := 0; i < w.Size(c); i++ {
			own += value(c, i)
		}
		partial[c] += own
		rep.Exact += own
		if randnum.Classify(w.Size(c), w.Byz(c)) != randnum.Secure {
			rep.TaintedClusters++
		}
		// Intra-cluster agreement on the partial sum.
		intra := int64(w.Size(c)) * int64(w.Size(c)-1)
		led.Charge(metrics.ClassApplication, intra)
		rep.Messages += intra
	}
	// Convergecast in reverse BFS order.
	var depth int64
	for i := len(order) - 1; i >= 1; i-- {
		c := order[i]
		p := parent[c]
		cost := interClusterCost(w, c, p)
		led.Charge(metrics.ClassApplication, cost)
		rep.Messages += cost
		partial[p] += partial[c]
	}
	// Depth bounds the round count.
	dist := map[ids.ClusterID]int64{root: 0}
	for _, c := range order[1:] {
		dist[c] = dist[parent[c]] + 1
		if dist[c] > depth {
			depth = dist[c]
		}
	}
	rep.Rounds = 2 * (depth + 1)
	led.AddRounds(rep.Rounds)
	rep.Value = partial[root]
	return rep, nil
}

// AgreementReport summarizes one network-wide agreement.
type AgreementReport struct {
	Decision int64
	Messages int64
	Rounds   int64
	// RootSecure reports whether the deciding cluster was > 2/3 honest.
	RootSecure      bool
	TaintedClusters int
}

// Agree drives network-wide agreement on a proposal: proposals
// convergecast to a root cluster (majority wins ties toward the smaller
// value), the root runs intra-cluster Byzantine agreement, and the
// decision is broadcast back — the "reduce the system to several reliable
// processes" pattern from the paper's introduction.
func Agree(led *metrics.Ledger, w World, root ids.ClusterID, proposal func(c ids.ClusterID) int64) (AgreementReport, error) {
	if w.Size(root) == 0 {
		return AgreementReport{}, fmt.Errorf("apps: agreement at empty cluster %v", root)
	}
	rep := AgreementReport{}
	snap := led.Snapshot()

	// Convergecast proposals (cluster-level majority).
	agg, err := Aggregate(led, w, root, func(c ids.ClusterID, i int) int64 {
		if proposal(c) > 0 {
			return 1
		}
		return 0
	})
	if err != nil {
		return rep, err
	}
	rep.TaintedClusters = agg.TaintedClusters
	if agg.Value*2 >= int64(w.NumNodes()) {
		rep.Decision = 1
	}

	// Root cluster decides internally.
	rep.RootSecure = 3*w.Byz(root) < w.Size(root)
	led.Charge(metrics.ClassAgreement, int64(w.Size(root))*int64(w.Size(root)-1))
	led.AddRounds(3)

	// Broadcast the decision.
	if _, err := Broadcast(led, w, root); err != nil {
		return rep, err
	}
	cost := led.Since(snap)
	rep.Messages = cost.Messages
	rep.Rounds = cost.Rounds
	return rep, nil
}
