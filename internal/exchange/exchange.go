// Package exchange implements the paper's node-shuffling primitive
// (section 3.1): a cluster C exchanges each of its nodes with a node chosen
// uniformly at random from the whole network. For every member x of C, a
// partner cluster C' is selected with probability |C'|/n via the biased
// CTRW (randCl); C' picks one of its members uniformly via randNum and the
// two nodes swap clusters. Shuffling is what prevents the adversary from
// gradually polluting a single cluster through join-leave churn (section
// 3.3), and Lemmas 1-3 analyze exactly this process.
//
// Costs follow the paper's accounting: each swap pays its walk, the
// membership installation messages for both moved nodes, and composition
// updates to every cluster adjacent to C and C' (a node accepts a message
// from a neighboring cluster only when more than half of that cluster's
// members send it, so composition must be propagated eagerly).
package exchange

import (
	"fmt"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// World is the mutable view of the cluster partition the shuffle needs; the
// NOW world implements it. It extends the walk topology with membership
// access and the transfer operation.
type World interface {
	walk.Topology
	// MemberAt returns the i-th member of c, 0 <= i < Size(c).
	MemberAt(c ids.ClusterID, i int) ids.NodeID
	// Members returns a snapshot copy of c's member list.
	Members(c ids.ClusterID) []ids.NodeID
	// Transfer moves node x from cluster `from` to cluster `to`, updating
	// all membership bookkeeping.
	Transfer(x ids.NodeID, from, to ids.ClusterID) error
}

// Report summarizes one exchange operation.
type Report struct {
	Swaps     int // completed swaps with a distinct partner cluster
	SelfSwaps int // walks that ended at C itself (no movement)
	Hops      int // total walk hops across all swaps
	Hijacked  int // walks redirected by the adversary
	// Receivers lists the distinct partner clusters that received a node
	// from C; the leave operation cascades an exchange onto each.
	Receivers []ids.ClusterID
	// WorstSecurity is the weakest randnum security observed.
	WorstSecurity randnum.Security
}

// Exchanger runs exchange operations.
type Exchanger struct {
	world  World
	walker *walk.Walker
	gen    randnum.Generator
}

// New returns an Exchanger bound to the world.
func New(world World, walker *walk.Walker, gen randnum.Generator) (*Exchanger, error) {
	if world == nil || walker == nil || gen == nil {
		return nil, fmt.Errorf("exchange: nil dependency")
	}
	return &Exchanger{world: world, walker: walker, gen: gen}, nil
}

// Run shuffles every node of c per the protocol and returns the report.
func (e *Exchanger) Run(led *metrics.Ledger, r *xrand.Rand, c ids.ClusterID) (Report, error) {
	rep := Report{}
	seen := make(map[ids.ClusterID]bool)
	// Snapshot: the protocol exchanges the nodes that are members when the
	// operation starts; replacement nodes arriving mid-operation are not
	// re-exchanged.
	members := e.world.Members(c)
	for _, x := range members {
		out, err := e.walker.Biased(led, r, c)
		if err != nil {
			return rep, fmt.Errorf("exchange: walk from %v: %w", c, err)
		}
		rep.Hops += out.Hops
		if out.Hijacked {
			rep.Hijacked++
		}
		if out.WorstSecurity > rep.WorstSecurity {
			rep.WorstSecurity = out.WorstSecurity
		}
		partner := out.End
		if partner == c {
			rep.SelfSwaps++
			continue
		}
		// C' picks the replacement node uniformly via randNum.
		idx, sec, err := e.gen.Draw(led, r, randnum.Params{
			Size: e.world.Size(partner),
			Byz:  e.world.Byz(partner),
			R:    int64(e.world.Size(partner)),
		}, nil)
		if err != nil {
			return rep, fmt.Errorf("exchange: partner draw at %v: %w", partner, err)
		}
		if sec > rep.WorstSecurity {
			rep.WorstSecurity = sec
		}
		y := e.world.MemberAt(partner, int(idx))
		if err := e.world.Transfer(x, c, partner); err != nil {
			return rep, fmt.Errorf("exchange: %w", err)
		}
		if err := e.world.Transfer(y, partner, c); err != nil {
			return rep, fmt.Errorf("exchange: %w", err)
		}
		e.chargeSwap(led, c, partner)
		rep.Swaps++
		if !seen[partner] {
			seen[partner] = true
			rep.Receivers = append(rep.Receivers, partner)
		}
	}
	return rep, nil
}

// chargeSwap applies the per-swap cost model: installation state for the
// two moved nodes (each learns its new cluster's membership and the
// membership of every adjacent cluster) plus composition updates to all
// neighbors of both clusters.
func (e *Exchanger) chargeSwap(led *metrics.Ledger, c, partner ids.ClusterID) {
	install := int64(e.world.Size(c)) + int64(e.world.Size(partner))
	install += e.neighborMass(c) + e.neighborMass(partner)
	led.Charge(metrics.ClassExchange, install)
	led.Charge(metrics.ClassInterCluster, e.compositionUpdate(c)+e.compositionUpdate(partner))
	led.AddRounds(2)
}

// neighborMass is the number of nodes in clusters adjacent to c (the moved
// node must learn their identities).
func (e *Exchanger) neighborMass(c ids.ClusterID) int64 {
	var total int64
	for i, d := 0, e.world.Degree(c); i < d; i++ {
		total += int64(e.world.Size(e.world.NeighborAt(c, i)))
	}
	return total
}

// compositionUpdate is the cost of telling every node of every neighbor of
// c the new composition of c: sum over neighbors D of |C|*|D| messages.
func (e *Exchanger) compositionUpdate(c ids.ClusterID) int64 {
	size := int64(e.world.Size(c))
	var total int64
	for i, d := 0, e.world.Degree(c); i < d; i++ {
		total += size * int64(e.world.Size(e.world.NeighborAt(c, i)))
	}
	return total
}
