// Package exchange implements the paper's node-shuffling primitive
// (section 3.1): a cluster C exchanges each of its nodes with a node chosen
// uniformly at random from the whole network. For every member x of C, a
// partner cluster C' is selected with probability |C'|/n via the biased
// CTRW (randCl); C' picks one of its members uniformly via randNum and the
// two nodes swap clusters. Shuffling is what prevents the adversary from
// gradually polluting a single cluster through join-leave churn (section
// 3.3), and Lemmas 1-3 analyze exactly this process.
//
// Costs follow the paper's accounting: each swap pays its walk, the
// membership installation messages for both moved nodes, and composition
// updates to every cluster adjacent to C and C' (a node accepts a message
// from a neighboring cluster only when more than half of that cluster's
// members send it, so composition must be propagated eagerly).
package exchange

import (
	"fmt"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// World is the mutable view of the cluster partition the shuffle needs; the
// NOW world implements it. It extends the walk topology with membership
// access and the transfer operation.
type World interface {
	walk.Topology
	// MemberAt returns the i-th member of c, 0 <= i < Size(c).
	MemberAt(c ids.ClusterID, i int) ids.NodeID
	// Members returns a snapshot copy of c's member list.
	Members(c ids.ClusterID) []ids.NodeID
	// Transfer moves node x from cluster `from` to cluster `to`, updating
	// all membership bookkeeping.
	Transfer(x ids.NodeID, from, to ids.ClusterID) error
}

// Report summarizes one exchange operation.
type Report struct {
	Swaps int // completed swaps with a distinct partner cluster
	// SelfSwaps counts swap slots that produced no movement: in Run,
	// walks that ended at C itself; in CascadeRound, receivers with an
	// empty partner pool (no walk was spent).
	SelfSwaps int
	Hops      int // total walk hops across all swaps
	Hijacked  int // walks redirected by the adversary
	// Receivers lists the distinct partner clusters that received a node
	// from C; the leave operation cascades an exchange onto each. The
	// slice aliases a scratch buffer owned by the Exchanger: it is valid
	// until the next Run (resp. CascadeRound) call on the same Exchanger;
	// callers that retain it across calls must copy it first.
	Receivers []ids.ClusterID
	// WorstSecurity is the weakest randnum security observed.
	WorstSecurity randnum.Security
}

// Exchanger runs exchange operations. It is not safe for concurrent use:
// the scratch buffers below make steady-state exchanges allocation-free,
// so each concurrent planner needs its own Exchanger (the op scheduler
// provides one per worker).
type Exchanger struct {
	world  World
	walker *walk.Walker
	gen    randnum.Generator

	// Reused scratch: the member snapshot of Run's target, Run's receiver
	// accumulator, CascadeRound's receiver accumulator (distinct from
	// Run's, because a cascade round consumes the primary Run's receiver
	// list while building its own) and the cascade's per-receiver partner
	// pool.
	members     []ids.NodeID
	runRecv     []ids.ClusterID
	cascadeRecv []ids.ClusterID
	pool        []ids.ClusterID
}

// New returns an Exchanger bound to the world.
func New(world World, walker *walk.Walker, gen randnum.Generator) (*Exchanger, error) {
	if world == nil || walker == nil || gen == nil {
		return nil, fmt.Errorf("exchange: nil dependency")
	}
	return &Exchanger{world: world, walker: walker, gen: gen}, nil
}

// containsCluster reports membership by linear scan; receiver lists are
// O(cluster size) = O(polylog n), where the scan beats a map and
// allocates nothing.
func containsCluster(xs []ids.ClusterID, c ids.ClusterID) bool {
	for _, x := range xs {
		if x == c {
			return true
		}
	}
	return false
}

// Run shuffles every node of c per the protocol and returns the report.
// The report's Receivers slice is valid until the next Run call.
func (e *Exchanger) Run(led *metrics.Ledger, r *xrand.Rand, c ids.ClusterID) (Report, error) {
	rep := Report{Receivers: e.runRecv[:0]}
	// Snapshot: the protocol exchanges the nodes that are members when the
	// operation starts; replacement nodes arriving mid-operation are not
	// re-exchanged.
	e.members = e.members[:0]
	for i, n := 0, e.world.Size(c); i < n; i++ {
		e.members = append(e.members, e.world.MemberAt(c, i))
	}
	members := e.members
	for _, x := range members {
		out, err := e.walker.Biased(led, r, c)
		if err != nil {
			return rep, fmt.Errorf("exchange: walk from %v: %w", c, err)
		}
		rep.Hops += out.Hops
		if out.Hijacked {
			rep.Hijacked++
		}
		if out.WorstSecurity > rep.WorstSecurity {
			rep.WorstSecurity = out.WorstSecurity
		}
		partner := out.End
		if partner == c {
			rep.SelfSwaps++
			continue
		}
		// C' picks the replacement node uniformly via randNum.
		idx, sec, err := e.gen.Draw(led, r, randnum.Params{
			Size: e.world.Size(partner),
			Byz:  e.world.Byz(partner),
			R:    int64(e.world.Size(partner)),
		}, nil)
		if err != nil {
			return rep, fmt.Errorf("exchange: partner draw at %v: %w", partner, err)
		}
		if sec > rep.WorstSecurity {
			rep.WorstSecurity = sec
		}
		y := e.world.MemberAt(partner, int(idx))
		if err := e.world.Transfer(x, c, partner); err != nil {
			return rep, fmt.Errorf("exchange: %w", err)
		}
		if err := e.world.Transfer(y, partner, c); err != nil {
			return rep, fmt.Errorf("exchange: %w", err)
		}
		e.chargeSwap(led, c, partner)
		rep.Swaps++
		if !containsCluster(rep.Receivers, partner) {
			rep.Receivers = append(rep.Receivers, partner)
		}
	}
	e.runRecv = rep.Receivers[:0]
	return rep, nil
}

// CascadeRound runs the leave cascade as ONE grouped shuffle round over
// the receiver set, instead of one full exchange per receiver: every
// receiver agrees (randNum) on one of its own members to re-export and on
// a partner drawn uniformly from the round's own pool — the other
// receivers plus the leave's source cluster — whose agreed member swaps
// back. All draws come from the one provided rng substream in receiver
// order, so the round is a deterministic function of (state, source,
// receivers, stream).
//
// This is the diffusion-style amortization of Algorithm 2's cascade. The
// pool is itself a fresh uniform sample: each receiver was selected by an
// independent biased CTRW of the source's exchange moments earlier, so a
// uniform draw over the pool composes two uniform draws and the re-export
// still lands ~uniformly over the network — while the adversary's
// knowledge of which receiver holds which exported node is destroyed,
// which is what the Theorem 3 proof step needs the cascade for. What the
// grouping buys: the per-leave write footprint shrinks from ~|C|^2
// clusters (every receiver exchanging ALL its nodes network-wide) to ~|C|
// (the round's writes stay INSIDE the set the primary exchange already
// wrote), no fresh walks are spent, and the round costs two communication
// rounds total rather than two per swap — the swaps are simultaneous,
// exactly like the simultaneous operations of one paper time step. Swap
// traffic is charged to metrics.ClassCascade so cascade cost stays
// separable from primary-exchange cost.
//
// The returned Report's Receivers lists the partner clusters of the round
// (callers must NOT cascade onto them again — the round IS the cascade);
// the slice is valid until the next CascadeRound call.
func (e *Exchanger) CascadeRound(led *metrics.Ledger, r *xrand.Rand, source ids.ClusterID, receivers []ids.ClusterID) (Report, error) {
	rep := Report{Receivers: e.cascadeRecv[:0]}
	for i, rc := range receivers {
		if e.world.Size(rc) == 0 {
			continue // receiver dissolved between exchange and cascade
		}
		// The swap pool: the source plus every OTHER live receiver, in
		// round order (deterministic at any shard count).
		pool := e.pool[:0]
		if e.world.Size(source) > 0 && source != rc {
			pool = append(pool, source)
		}
		for j, other := range receivers {
			if j != i && other != rc && e.world.Size(other) > 0 {
				pool = append(pool, other)
			}
		}
		e.pool = pool[:0]
		if len(pool) == 0 {
			rep.SelfSwaps++ // lone receiver of its own source: nothing to mix with
			continue
		}
		// The receiver agrees on the partner and on which member to
		// re-export; the partner agrees on the replacement, as in Run.
		pick, sec, err := e.gen.Draw(led, r, randnum.Params{
			Size: e.world.Size(rc),
			Byz:  e.world.Byz(rc),
			R:    int64(len(pool)),
		}, nil)
		if err != nil {
			return rep, fmt.Errorf("exchange: cascade partner pick at %v: %w", rc, err)
		}
		if sec > rep.WorstSecurity {
			rep.WorstSecurity = sec
		}
		partner := pool[int(pick)]
		idx, sec, err := e.gen.Draw(led, r, randnum.Params{
			Size: e.world.Size(rc),
			Byz:  e.world.Byz(rc),
			R:    int64(e.world.Size(rc)),
		}, nil)
		if err != nil {
			return rep, fmt.Errorf("exchange: cascade draw at %v: %w", rc, err)
		}
		if sec > rep.WorstSecurity {
			rep.WorstSecurity = sec
		}
		x := e.world.MemberAt(rc, int(idx))
		pidx, psec, err := e.gen.Draw(led, r, randnum.Params{
			Size: e.world.Size(partner),
			Byz:  e.world.Byz(partner),
			R:    int64(e.world.Size(partner)),
		}, nil)
		if err != nil {
			return rep, fmt.Errorf("exchange: cascade partner draw at %v: %w", partner, err)
		}
		if psec > rep.WorstSecurity {
			rep.WorstSecurity = psec
		}
		y := e.world.MemberAt(partner, int(pidx))
		if err := e.world.Transfer(x, rc, partner); err != nil {
			return rep, fmt.Errorf("exchange: cascade: %w", err)
		}
		if err := e.world.Transfer(y, partner, rc); err != nil {
			return rep, fmt.Errorf("exchange: cascade: %w", err)
		}
		e.chargeSwapClass(led, rc, partner, metrics.ClassCascade, false)
		rep.Swaps++
		if !containsCluster(rep.Receivers, partner) {
			rep.Receivers = append(rep.Receivers, partner)
		}
	}
	if rep.Swaps > 0 {
		led.AddRounds(2) // one grouped round: swaps are simultaneous
	}
	e.cascadeRecv = rep.Receivers[:0]
	return rep, nil
}

// chargeSwap applies the per-swap cost model: installation state for the
// two moved nodes (each learns its new cluster's membership and the
// membership of every adjacent cluster) plus composition updates to all
// neighbors of both clusters.
func (e *Exchanger) chargeSwap(led *metrics.Ledger, c, partner ids.ClusterID) {
	e.chargeSwapClass(led, c, partner, metrics.ClassExchange, true)
}

// chargeSwapClass is chargeSwap with the transfer class and per-swap round
// charging made explicit; the grouped cascade round charges ClassCascade
// and amortizes rounds across the whole round.
func (e *Exchanger) chargeSwapClass(led *metrics.Ledger, c, partner ids.ClusterID, class metrics.Class, perSwapRounds bool) {
	install := int64(e.world.Size(c)) + int64(e.world.Size(partner))
	install += e.neighborMass(c) + e.neighborMass(partner)
	led.Charge(class, install)
	led.Charge(metrics.ClassInterCluster, e.compositionUpdate(c)+e.compositionUpdate(partner))
	if perSwapRounds {
		led.AddRounds(2)
	}
}

// neighborMass is the number of nodes in clusters adjacent to c (the moved
// node must learn their identities).
func (e *Exchanger) neighborMass(c ids.ClusterID) int64 {
	var total int64
	for i, d := 0, e.world.Degree(c); i < d; i++ {
		total += int64(e.world.Size(e.world.NeighborAt(c, i)))
	}
	return total
}

// compositionUpdate is the cost of telling every node of every neighbor of
// c the new composition of c: sum over neighbors D of |C|*|D| messages.
func (e *Exchanger) compositionUpdate(c ids.ClusterID) int64 {
	size := int64(e.world.Size(c))
	var total int64
	for i, d := 0, e.world.Degree(c); i < d; i++ {
		total += size * int64(e.world.Size(e.world.NeighborAt(c, i)))
	}
	return total
}
