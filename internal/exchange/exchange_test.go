package exchange

import (
	"fmt"
	"testing"

	"nowover/internal/graph"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// fakeWorld implements World over an explicit partition + overlay graph.
type fakeWorld struct {
	g       *graph.Graph[ids.ClusterID]
	members map[ids.ClusterID][]ids.NodeID
	byz     map[ids.NodeID]bool
	home    map[ids.NodeID]ids.ClusterID
	maxSz   int
}

func newFakeWorld(t *testing.T, clusters, size, degree int, seed uint64) *fakeWorld {
	t.Helper()
	fw := &fakeWorld{
		g:       graph.New[ids.ClusterID](),
		members: make(map[ids.ClusterID][]ids.NodeID),
		byz:     make(map[ids.NodeID]bool),
		home:    make(map[ids.NodeID]ids.ClusterID),
		maxSz:   size,
	}
	var vs []ids.ClusterID
	next := ids.NodeID(0)
	for i := 0; i < clusters; i++ {
		c := ids.ClusterID(i)
		fw.g.AddVertex(c)
		vs = append(vs, c)
		for j := 0; j < size; j++ {
			fw.members[c] = append(fw.members[c], next)
			fw.home[next] = c
			next++
		}
	}
	if err := graph.RandomRegularish(fw.g, xrand.New(seed), vs, degree); err != nil {
		t.Fatal(err)
	}
	return fw
}

func (f *fakeWorld) NumClusters() int                                { return f.g.NumVertices() }
func (f *fakeWorld) NumOverlayEdges() int                            { return f.g.NumEdges() }
func (f *fakeWorld) Degree(c ids.ClusterID) int                      { return f.g.Degree(c) }
func (f *fakeWorld) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return f.g.NeighborAt(c, i) }
func (f *fakeWorld) Size(c ids.ClusterID) int                        { return len(f.members[c]) }
func (f *fakeWorld) MaxClusterSize() int                             { return f.maxSz }
func (f *fakeWorld) MemberAt(c ids.ClusterID, i int) ids.NodeID      { return f.members[c][i] }

func (f *fakeWorld) Byz(c ids.ClusterID) int {
	n := 0
	for _, x := range f.members[c] {
		if f.byz[x] {
			n++
		}
	}
	return n
}

func (f *fakeWorld) Members(c ids.ClusterID) []ids.NodeID {
	out := make([]ids.NodeID, len(f.members[c]))
	copy(out, f.members[c])
	return out
}

func (f *fakeWorld) Transfer(x ids.NodeID, from, to ids.ClusterID) error {
	if f.home[x] != from {
		return fmt.Errorf("node %v not in %v", x, from)
	}
	lst := f.members[from]
	for i, m := range lst {
		if m == x {
			f.members[from] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	f.members[to] = append(f.members[to], x)
	f.home[x] = to
	if len(f.members[to]) > f.maxSz {
		f.maxSz = len(f.members[to])
	}
	return nil
}

var _ World = (*fakeWorld)(nil)

func newExchanger(t *testing.T, fw *fakeWorld) *Exchanger {
	t.Helper()
	walker, err := walk.NewWalker(walk.Config{
		DurationFactor: 1, MaxRestarts: 32, Gen: randnum.Ideal{},
	}, fw)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(fw, walker, randnum.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	fw := newFakeWorld(t, 4, 5, 2, 1)
	walker, err := walk.NewWalker(walk.Config{DurationFactor: 1, MaxRestarts: 4, Gen: randnum.Ideal{}}, fw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, walker, randnum.Ideal{}); err == nil {
		t.Error("nil world accepted")
	}
	if _, err := New(fw, nil, randnum.Ideal{}); err == nil {
		t.Error("nil walker accepted")
	}
	if _, err := New(fw, walker, nil); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestRunPreservesSizesAndPopulation(t *testing.T) {
	fw := newFakeWorld(t, 10, 8, 4, 2)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	sizesBefore := make(map[ids.ClusterID]int)
	for c := range fw.members {
		sizesBefore[c] = len(fw.members[c])
	}
	total := len(fw.home)
	rep, err := e.Run(&led, xrand.New(3), ids.ClusterID(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps+rep.SelfSwaps != 8 {
		t.Errorf("swaps+self = %d, want 8", rep.Swaps+rep.SelfSwaps)
	}
	for c, s := range sizesBefore {
		if len(fw.members[c]) != s {
			t.Errorf("cluster %v size changed %d -> %d", c, s, len(fw.members[c]))
		}
	}
	if len(fw.home) != total {
		t.Errorf("population changed: %d -> %d", total, len(fw.home))
	}
	// Every node lives where the index says.
	for x, c := range fw.home {
		found := false
		for _, m := range fw.members[c] {
			if m == x {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %v index points at %v but is not a member", x, c)
		}
	}
}

func TestRunMovesMostMembers(t *testing.T) {
	fw := newFakeWorld(t, 12, 10, 4, 4)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	c0 := ids.ClusterID(0)
	before := map[ids.NodeID]bool{}
	for _, x := range fw.members[c0] {
		before[x] = true
	}
	rep, err := e.Run(&led, xrand.New(5), c0)
	if err != nil {
		t.Fatal(err)
	}
	stayed := 0
	for _, x := range fw.members[c0] {
		if before[x] {
			stayed++
		}
	}
	// Each original member leaves unless its walk self-returned or it was
	// randomly drawn back as some later replacement; most must move.
	if stayed > rep.SelfSwaps+3 {
		t.Errorf("%d of 10 members stayed (self-swaps %d)", stayed, rep.SelfSwaps)
	}
}

func TestRunChargesAllClasses(t *testing.T) {
	fw := newFakeWorld(t, 10, 8, 4, 6)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	if _, err := e.Run(&led, xrand.New(7), ids.ClusterID(1)); err != nil {
		t.Fatal(err)
	}
	for _, cls := range []metrics.Class{
		metrics.ClassWalk, metrics.ClassRandNum,
		metrics.ClassExchange, metrics.ClassInterCluster,
	} {
		if led.MessagesBy(cls) == 0 {
			t.Errorf("no %v messages charged", cls)
		}
	}
}

func TestReceiversDistinct(t *testing.T) {
	fw := newFakeWorld(t, 10, 8, 4, 8)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	rep, err := e.Run(&led, xrand.New(9), ids.ClusterID(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ids.ClusterID]bool{}
	for _, r := range rep.Receivers {
		if seen[r] {
			t.Errorf("receiver %v listed twice", r)
		}
		if r == ids.ClusterID(2) {
			t.Error("cluster listed as its own receiver")
		}
		seen[r] = true
	}
	if len(rep.Receivers) == 0 && rep.Swaps > 0 {
		t.Error("swaps happened but no receivers recorded")
	}
}

// cloneMembers snapshots the full partition for before/after comparisons.
func cloneMembers(fw *fakeWorld) map[ids.ClusterID][]ids.NodeID {
	out := make(map[ids.ClusterID][]ids.NodeID, len(fw.members))
	for c, ms := range fw.members {
		cp := make([]ids.NodeID, len(ms))
		copy(cp, ms)
		out[c] = cp
	}
	return out
}

func TestCascadeRoundOneSwapPerReceiver(t *testing.T) {
	fw := newFakeWorld(t, 12, 8, 4, 21)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	receivers := []ids.ClusterID{1, 3, 5, 7}
	before := cloneMembers(fw)
	total := len(fw.home)
	rep, err := e.CascadeRound(&led, xrand.New(13), ids.ClusterID(0), receivers)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one swap slot per receiver: each receiver swaps with a pool
	// partner or (with an empty pool) self-passes.
	if rep.Swaps+rep.SelfSwaps != len(receivers) {
		t.Errorf("swaps+self = %d, want one per receiver (%d)", rep.Swaps+rep.SelfSwaps, len(receivers))
	}
	for c, ms := range before {
		if len(fw.members[c]) != len(ms) {
			t.Errorf("cluster %v size changed %d -> %d", c, len(ms), len(fw.members[c]))
		}
	}
	if len(fw.home) != total {
		t.Errorf("population changed: %d -> %d", total, len(fw.home))
	}
	for x, c := range fw.home {
		found := false
		for _, m := range fw.members[c] {
			if m == x {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %v index points at %v but is not a member", x, c)
		}
	}
}

func TestCascadeRoundChargesCascadeClass(t *testing.T) {
	fw := newFakeWorld(t, 12, 8, 4, 22)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	rep, err := e.CascadeRound(&led, xrand.New(17), ids.ClusterID(10), []ids.ClusterID{0, 2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps == 0 {
		t.Fatal("no swaps happened; pick another seed")
	}
	if led.MessagesBy(metrics.ClassCascade) == 0 {
		t.Error("cascade swaps charged no cascade-class messages")
	}
	if led.MessagesBy(metrics.ClassExchange) != 0 {
		t.Errorf("cascade round charged %d exchange-class messages; cascade traffic must be separable",
			led.MessagesBy(metrics.ClassExchange))
	}
}

// TestCascadeRoundCheaperThanPerReceiverExchanges pins the amortization
// claim: one grouped round over k receivers must cost well under k full
// exchanges, in messages AND rounds, on identical starting states.
func TestCascadeRoundCheaperThanPerReceiverExchanges(t *testing.T) {
	receivers := []ids.ClusterID{1, 2, 3, 4, 5, 6}
	grouped := newFakeWorld(t, 14, 10, 4, 23)
	var gl metrics.Ledger
	if _, err := newExchanger(t, grouped).CascadeRound(&gl, xrand.New(19), ids.ClusterID(0), receivers); err != nil {
		t.Fatal(err)
	}
	classic := newFakeWorld(t, 14, 10, 4, 23)
	var cl metrics.Ledger
	ce := newExchanger(t, classic)
	r := xrand.New(19)
	for _, rc := range receivers {
		if _, err := ce.Run(&cl, r, rc); err != nil {
			t.Fatal(err)
		}
	}
	if gl.Messages()*2 >= cl.Messages() {
		t.Errorf("grouped round msgs %d not well under per-receiver msgs %d", gl.Messages(), cl.Messages())
	}
	if gl.Rounds()*2 >= cl.Rounds() {
		t.Errorf("grouped round rounds %d not well under per-receiver rounds %d", gl.Rounds(), cl.Rounds())
	}
}

// TestCascadeRoundWritesStayInPool pins the footprint property the op
// scheduler's admission relies on: every node the round moves travels
// between clusters of {source} ∪ receivers — the set the leave's primary
// exchange already wrote — so the cascade adds NO clusters to a leave
// plan's write footprint.
func TestCascadeRoundWritesStayInPool(t *testing.T) {
	fw := newFakeWorld(t, 16, 8, 4, 26)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	source := ids.ClusterID(9)
	receivers := []ids.ClusterID{2, 4, 11, 14}
	pool := map[ids.ClusterID]bool{source: true}
	for _, rc := range receivers {
		pool[rc] = true
	}
	before := cloneMembers(fw)
	rep, err := e.CascadeRound(&led, xrand.New(31), source, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps == 0 {
		t.Fatal("no swaps happened; pick another seed")
	}
	for _, p := range rep.Receivers {
		if !pool[p] {
			t.Errorf("round partner %v outside the pool", p)
		}
	}
	for c, ms := range before {
		if pool[c] {
			continue
		}
		if fmt.Sprint(fw.members[c]) != fmt.Sprint(ms) {
			t.Errorf("cluster %v outside the pool was mutated: %v -> %v", c, ms, fw.members[c])
		}
	}
}

func TestCascadeRoundSkipsDissolvedReceiver(t *testing.T) {
	fw := newFakeWorld(t, 10, 8, 4, 24)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	// Cluster 99 does not exist: the round must skip it, not fail.
	rep, err := e.CascadeRound(&led, xrand.New(23), ids.ClusterID(0), []ids.ClusterID{1, 99, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps+rep.SelfSwaps != 2 {
		t.Errorf("swaps+self = %d, want 2 (dissolved receiver skipped)", rep.Swaps+rep.SelfSwaps)
	}
}

// TestCascadeRoundNoSwapsNoRounds: a round that moves nothing (every
// receiver dissolved) must not charge round latency either.
func TestCascadeRoundNoSwapsNoRounds(t *testing.T) {
	fw := newFakeWorld(t, 6, 8, 3, 27)
	e := newExchanger(t, fw)
	var led metrics.Ledger
	rep, err := e.CascadeRound(&led, xrand.New(33), ids.ClusterID(0), []ids.ClusterID{77, 88})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swaps != 0 {
		t.Fatalf("swaps = %d, want 0", rep.Swaps)
	}
	if led.Rounds() != 0 || led.Messages() != 0 {
		t.Errorf("empty round charged rounds=%d msgs=%d, want 0/0", led.Rounds(), led.Messages())
	}
}

func TestCascadeRoundDeterministic(t *testing.T) {
	run := func() map[ids.ClusterID][]ids.NodeID {
		fw := newFakeWorld(t, 12, 8, 4, 25)
		e := newExchanger(t, fw)
		var led metrics.Ledger
		if _, err := e.CascadeRound(&led, xrand.New(29), ids.ClusterID(6), []ids.ClusterID{0, 1, 2, 3, 4, 5}); err != nil {
			t.Fatal(err)
		}
		return fw.members
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("cascade round is not deterministic under a fixed seed")
	}
}

func TestExchangeRandomizesByzantinePlacement(t *testing.T) {
	// A fully-Byzantine cluster exchanged against an honest network must
	// end up near the global Byzantine fraction — Lemma 1 in miniature.
	fw := newFakeWorld(t, 20, 10, 5, 10)
	target := ids.ClusterID(0)
	for _, x := range fw.members[target] {
		fw.byz[x] = true
	}
	e := newExchanger(t, fw)
	var led metrics.Ledger
	if _, err := e.Run(&led, xrand.New(11), target); err != nil {
		t.Fatal(err)
	}
	if after := fw.Byz(target); after > 5 {
		t.Errorf("byzantine members after exchange = %d of 10, want near global 5%%", after)
	}
}
