package baseline

import (
	"testing"

	"nowover/internal/xrand"
)

func TestNewStaticClusterValidation(t *testing.T) {
	if _, err := NewStaticCluster(0, 10, 0.1, 1); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := NewStaticCluster(10, 5, 0.1, 1); err == nil {
		t.Error("fewer nodes than clusters accepted")
	}
}

func TestStaticClusterBootstrap(t *testing.T) {
	s, err := NewStaticCluster(16, 320, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Audit()
	if a.Nodes != 320 || a.Clusters != 16 {
		t.Fatalf("audit = %+v", a)
	}
	if a.MinSize != 20 || a.MaxSize != 20 {
		t.Errorf("uneven bootstrap: %+v", a)
	}
}

func TestStaticClusterSizesGrowWithN(t *testing.T) {
	// The paper's core criticism of static-#C schemes: cluster sizes are
	// Theta(n/#C) — they grow linearly with the network instead of staying
	// O(log N).
	s, err := NewStaticCluster(16, 320, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 960; i++ {
		s.Join(false)
	}
	a := s.Audit()
	if a.MeanSize < 75 || a.MeanSize > 85 {
		t.Errorf("mean size %.1f, want ~80 after 4x growth", a.MeanSize)
	}
	if a.MaxSize < 60 {
		t.Errorf("max size %d did not grow", a.MaxSize)
	}
}

func TestStaticClusterJoinCostGrows(t *testing.T) {
	s, err := NewStaticCluster(8, 160, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	early := s.Ledger().Snapshot()
	for i := 0; i < 50; i++ {
		s.Join(false)
	}
	earlyCost := s.Ledger().Since(early).Messages
	for i := 0; i < 1000; i++ {
		s.Join(false)
	}
	late := s.Ledger().Snapshot()
	for i := 0; i < 50; i++ {
		s.Join(false)
	}
	lateCost := s.Ledger().Since(late).Messages
	if lateCost < 10*earlyCost {
		t.Errorf("per-join cost did not blow up with n: early %d late %d", earlyCost, lateCost)
	}
}

func TestStaticClusterLeave(t *testing.T) {
	s, err := NewStaticCluster(4, 40, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(6)
	x, ok := s.RandomNode(r)
	if !ok {
		t.Fatal("no node")
	}
	if err := s.Leave(x); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 39 {
		t.Errorf("nodes = %d", s.NumNodes())
	}
	if err := s.Leave(x); err == nil {
		t.Error("double leave accepted")
	}
}

func TestStaticClusterByzantineTracking(t *testing.T) {
	s, err := NewStaticCluster(8, 160, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Audit()
	if a.MaxByzFraction <= 0 || a.MaxByzFraction > 0.8 {
		t.Errorf("max byz fraction %.2f implausible", a.MaxByzFraction)
	}
}

func TestSingleClusterCosts(t *testing.T) {
	var sc SingleCluster
	if sc.DecisionCost(100) != 9900 {
		t.Errorf("decision cost = %d", sc.DecisionCost(100))
	}
	if sc.BroadcastCost(100) != 9900 {
		t.Errorf("broadcast cost = %d", sc.BroadcastCost(100))
	}
	// Clustered reference must beat the quadratic one at scale.
	n := 10000
	if ClusteredDecisionCost(n, 28) >= sc.DecisionCost(n) {
		t.Error("clustered decision not cheaper at n=10000")
	}
}

func TestExpectedStaticSize(t *testing.T) {
	if got := ExpectedStaticSize(1000, 10); got != 100 {
		t.Errorf("expected size = %v", got)
	}
}

func TestStaticCaptureProbabilityMonotone(t *testing.T) {
	// Larger clusters are exponentially safer at fixed tau.
	p20 := StaticCaptureProbability(20, 0.2)
	p40 := StaticCaptureProbability(40, 0.2)
	p80 := StaticCaptureProbability(80, 0.2)
	if !(p80 < p40 && p40 < p20) {
		t.Errorf("capture probability not decreasing: %g %g %g", p20, p40, p80)
	}
	// tau at the threshold is hopeless.
	if StaticCaptureProbability(100, 1.0/3) != 1 {
		t.Error("tau=1/3 should give probability 1 (eps<=0)")
	}
	if StaticCaptureProbability(0, 0.2) != 0 {
		t.Error("empty cluster probability should be 0")
	}
}

func TestRandomNodeCoverage(t *testing.T) {
	s, err := NewStaticCluster(4, 12, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		x, ok := s.RandomNode(r)
		if !ok {
			t.Fatal("no node")
		}
		seen[int(x)] = true
	}
	if len(seen) != 12 {
		t.Errorf("RandomNode reached %d of 12 nodes", len(seen))
	}
}
