// Package baseline implements the comparison points the paper positions
// NOW against:
//
//   - StaticCluster: the prior-work regime ([6, 7, 31] in the paper) where
//     the number of clusters is fixed at initialization. Under polynomial
//     size variation its cluster sizes grow as Theta(n/#C) — no longer
//     O(log N) — and every operation's cost grows with them, which is
//     precisely the scaling failure the paper's introduction describes.
//   - SingleCluster: the one-committee reduction (whole network runs
//     Byzantine agreement for every decision) with O(n^2) per-decision
//     cost; the complexity strawman from the introduction.
//
// The third baseline — NOW with shuffling disabled (the attack target of
// section 3.3) — is expressed through core.Config ablation flags
// (ExchangeOnJoin=false, LeaveCascade=false) rather than a separate
// implementation, so the attacked code path is the real one.
package baseline

import (
	"fmt"
	"math"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

// StaticCluster is a fixed-#C clustering: joiners land in a uniformly
// random cluster (shuffling within a static cluster map, as in the
// rotation schemes of prior work), leavers are removed in place. There is
// no split/merge, so sizes track n/#C.
type StaticCluster struct {
	clusters [][]ids.NodeID
	byz      map[ids.NodeID]bool
	home     map[ids.NodeID]int
	alloc    ids.NodeAllocator
	led      *metrics.Ledger
	rng      *xrand.Rand
}

// NewStaticCluster builds the baseline with numClusters clusters and n0
// initial nodes, of which the first byzBudget (after placement
// randomization) are Byzantine.
func NewStaticCluster(numClusters, n0 int, tau float64, seed uint64) (*StaticCluster, error) {
	if numClusters < 1 {
		return nil, fmt.Errorf("baseline: numClusters %d < 1", numClusters)
	}
	if n0 < numClusters {
		return nil, fmt.Errorf("baseline: n0 %d below cluster count %d", n0, numClusters)
	}
	s := &StaticCluster{
		clusters: make([][]ids.NodeID, numClusters),
		byz:      make(map[ids.NodeID]bool),
		home:     make(map[ids.NodeID]int),
		led:      &metrics.Ledger{},
		rng:      xrand.New(seed),
	}
	byzBudget := int(tau * float64(n0))
	perm := s.rng.Perm(n0)
	for i := 0; i < n0; i++ {
		x := s.alloc.NextNode()
		c := i % numClusters
		s.clusters[c] = append(s.clusters[c], x)
		s.home[x] = c
		if perm[i] < byzBudget {
			s.byz[x] = true
		}
	}
	return s, nil
}

// Ledger exposes the cost ledger.
func (s *StaticCluster) Ledger() *metrics.Ledger { return s.led }

// NumNodes returns the population.
func (s *StaticCluster) NumNodes() int { return len(s.home) }

// NumClusters returns the (fixed) cluster count.
func (s *StaticCluster) NumClusters() int { return len(s.clusters) }

// Join inserts a node into a uniformly random cluster and re-randomizes
// that cluster's member positions (the rotation-style shuffle of prior
// work): cost O(|C|^2) — which grows with n under a static cluster count.
func (s *StaticCluster) Join(byzantine bool) ids.NodeID {
	x := s.alloc.NextNode()
	c := s.rng.Intn(len(s.clusters))
	s.clusters[c] = append(s.clusters[c], x)
	s.home[x] = c
	if byzantine {
		s.byz[x] = true
	}
	size := int64(len(s.clusters[c]))
	s.led.Charge(metrics.ClassIntraCluster, size*(size-1))
	s.led.AddRounds(2)
	return x
}

// Leave removes a node; its cluster re-synchronizes views at O(|C|^2).
func (s *StaticCluster) Leave(x ids.NodeID) error {
	c, ok := s.home[x]
	if !ok {
		return fmt.Errorf("baseline: unknown node %v", x)
	}
	lst := s.clusters[c]
	for i, m := range lst {
		if m == x {
			s.clusters[c] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	delete(s.home, x)
	delete(s.byz, x)
	size := int64(len(s.clusters[c]) + 1)
	s.led.Charge(metrics.ClassIntraCluster, size*(size-1))
	s.led.AddRounds(2)
	return nil
}

// RandomNode returns a uniform member.
func (s *StaticCluster) RandomNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(s.home) == 0 {
		return 0, false
	}
	// Reservoir over clusters keeps this allocation-free.
	target := r.Intn(len(s.home))
	for _, lst := range s.clusters {
		if target < len(lst) {
			return lst[target], true
		}
		target -= len(lst)
	}
	return 0, false
}

// Audit summarizes the baseline's state.
type Audit struct {
	Nodes, Clusters  int
	MinSize, MaxSize int
	MeanSize         float64
	MaxByzFraction   float64
}

// Audit computes the baseline's invariant snapshot.
func (s *StaticCluster) Audit() Audit {
	a := Audit{Nodes: len(s.home), Clusters: len(s.clusters)}
	first := true
	var sum int
	for _, lst := range s.clusters {
		size := len(lst)
		sum += size
		if first {
			a.MinSize, a.MaxSize = size, size
			first = false
		} else {
			if size < a.MinSize {
				a.MinSize = size
			}
			if size > a.MaxSize {
				a.MaxSize = size
			}
		}
		if size == 0 {
			continue
		}
		byz := 0
		for _, x := range lst {
			if s.byz[x] {
				byz++
			}
		}
		if f := float64(byz) / float64(size); f > a.MaxByzFraction {
			a.MaxByzFraction = f
		}
	}
	if len(s.clusters) > 0 {
		a.MeanSize = float64(sum) / float64(len(s.clusters))
	}
	return a
}

// SingleCluster models the whole-network-as-one-committee reduction: a
// cost oracle, since the paper only compares complexities.
type SingleCluster struct{}

// DecisionCost returns the per-decision message cost of whole-network
// Byzantine agreement: O(n^2) (quadratic all-to-all voting).
func (SingleCluster) DecisionCost(n int) int64 {
	return int64(n) * int64(n-1)
}

// BroadcastCost returns the unclustered reliable-broadcast cost O(n^2).
func (SingleCluster) BroadcastCost(n int) int64 {
	return int64(n) * int64(n-1)
}

// ClusteredDecisionCost is the NOW-style reference: polylog-size
// representative cluster agreement plus tree dissemination, O~(n).
func ClusteredDecisionCost(n int, clusterSize int) int64 {
	cs := int64(clusterSize)
	return cs*cs + int64(n)*cs // committee BA + tree with bipartite edges
}

// ExpectedStaticSize returns the cluster size a static-#C scheme reaches
// at population n.
func ExpectedStaticSize(n, numClusters int) float64 {
	return float64(n) / float64(numClusters)
}

// StaticCaptureProbability estimates, by Chernoff bound, the probability
// that a *uniformly re-randomized* cluster of the given size exceeds the
// 1/3 threshold at corruption rate tau — the quantity Lemma 1 bounds. It
// decays exponentially in size, which is why NOW insists on Theta(log N)
// sizes rather than the n/#C of static schemes (too big = wasteful, and
// under shrink n/#C can drop below the safety scale).
func StaticCaptureProbability(size int, tau float64) float64 {
	if size <= 0 || tau <= 0 {
		return 0
	}
	eps := 1.0/(3*tau) - 1
	if eps <= 0 {
		return 1
	}
	return math.Exp(-eps * eps * tau * float64(size) / 3)
}
