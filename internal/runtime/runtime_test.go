package runtime

import (
	"testing"

	"nowover/internal/ba"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/xrand"
)

// echoProc counts its inbox and echoes one message to a fixed peer.
type echoProc struct {
	self, peer ids.NodeID
	got        int
}

func (p *echoProc) Step(round int, inbox []Message) []Message {
	p.got += len(inbox)
	return []Message{{From: p.self, To: p.peer, Round: round, Payload: "ping"}}
}

func TestEngineDeliversNextRound(t *testing.T) {
	a, b := ids.NodeID(1), ids.NodeID(2)
	pa := &echoProc{self: a, peer: b}
	pb := &echoProc{self: b, peer: a}
	e := NewEngine(map[ids.NodeID]Process{a: pa, b: pb})
	defer e.Close()
	if err := e.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	// Round 0 inboxes empty; rounds 1,2 deliver one message each.
	if pa.got != 2 || pb.got != 2 {
		t.Errorf("deliveries = %d/%d, want 2/2", pa.got, pb.got)
	}
	if e.Messages() != 6 {
		t.Errorf("messages = %d, want 6", e.Messages())
	}
	if e.Rounds() != 3 {
		t.Errorf("rounds = %d", e.Rounds())
	}
}

func TestEngineRejectsForgedSender(t *testing.T) {
	a, b := ids.NodeID(1), ids.NodeID(2)
	forger := processFunc(func(round int, _ []Message) []Message {
		return []Message{{From: b, To: b, Round: round, Payload: "forged"}}
	})
	e := NewEngine(map[ids.NodeID]Process{a: forger, b: processFunc(nopStep)})
	defer e.Close()
	if err := e.Round(); err == nil {
		t.Error("forged sender accepted")
	}
}

type processFunc func(int, []Message) []Message

func (f processFunc) Step(round int, inbox []Message) []Message { return f(round, inbox) }

func nopStep(int, []Message) []Message { return nil }

func TestEngineCloseIdempotent(t *testing.T) {
	e := NewEngine(map[ids.NodeID]Process{1: processFunc(nopStep)})
	e.Close()
	e.Close()
	if err := e.Round(); err == nil {
		t.Error("round on closed engine accepted")
	}
}

func TestMajorityPayload(t *testing.T) {
	senders := []ids.NodeID{1, 2, 3, 4, 5}
	mk := func(from ids.NodeID, payload string) Message {
		return Message{From: from, To: 9, Payload: payload}
	}
	inbox := []Message{mk(1, "v"), mk(2, "v"), mk(3, "v"), mk(4, "x"), mk(5, "x")}
	got, ok := MajorityPayload(inbox, senders)
	if !ok || got != "v" {
		t.Errorf("majority = %v,%v", got, ok)
	}
	// Exactly half is not enough.
	tied := []Message{mk(1, "v"), mk(2, "v"), mk(3, "x"), mk(4, "x"), mk(5, "y")}
	if _, ok := MajorityPayload(tied, senders); ok {
		t.Error("accepted without strict majority")
	}
	// Messages from outside the sender cluster are ignored.
	outsiders := []Message{mk(7, "w"), mk(8, "w"), mk(9, "w"), mk(1, "v")}
	if _, ok := MajorityPayload(outsiders, senders); ok {
		t.Error("outsiders counted toward majority")
	}
}

// buildRandNum assembles a commit-reveal cluster with the given byzantine
// processes substituted in.
func buildRandNum(t *testing.T, n int, byz map[int]func(RandNumConfig, ids.NodeID, *xrand.Rand) Process) (map[ids.NodeID]Process, []*RandNumNode, RandNumConfig) {
	t.Helper()
	cfg := RandNumConfig{R: 64}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	r := xrand.New(42)
	procs := make(map[ids.NodeID]Process, n)
	var honest []*RandNumNode
	for i := 0; i < n; i++ {
		id := ids.NodeID(i)
		if mk, bad := byz[i]; bad {
			procs[id] = mk(cfg, id, r.Split(uint64(i)))
			continue
		}
		node, err := NewRandNumNode(cfg, id, r.Split(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = node
		honest = append(honest, node)
	}
	return procs, honest, cfg
}

func TestRandNumAllHonestAgree(t *testing.T) {
	procs, honest, _ := buildRandNum(t, 8, nil)
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	first, ok := honest[0].Output()
	if !ok {
		t.Fatal("no output after 4 rounds")
	}
	for _, h := range honest[1:] {
		v, ok := h.Output()
		if !ok || v != first {
			t.Fatalf("disagreement: %d vs %d (ok=%v)", v, first, ok)
		}
	}
	if first < 0 || first >= 64 {
		t.Errorf("output %d outside range", first)
	}
}

func TestRandNumSilentByzantine(t *testing.T) {
	procs, honest, _ := buildRandNum(t, 9, map[int]func(RandNumConfig, ids.NodeID, *xrand.Rand) Process{
		3: func(RandNumConfig, ids.NodeID, *xrand.Rand) Process { return SilentNode{} },
		7: func(RandNumConfig, ids.NodeID, *xrand.Rand) Process { return SilentNode{} },
	})
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	first, ok := honest[0].Output()
	if !ok {
		t.Fatal("no output")
	}
	for _, h := range honest[1:] {
		if v, ok := h.Output(); !ok || v != first {
			t.Fatalf("disagreement with silent byzantine: %d vs %d", v, first)
		}
	}
}

func TestRandNumBindingViolationExcluded(t *testing.T) {
	procs, honest, _ := buildRandNum(t, 9, map[int]func(RandNumConfig, ids.NodeID, *xrand.Rand) Process{
		4: func(cfg RandNumConfig, id ids.NodeID, r *xrand.Rand) Process {
			return NewBadRevealNode(cfg, id, r)
		},
	})
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	first, ok := honest[0].Output()
	if !ok {
		t.Fatal("no output")
	}
	for _, h := range honest[1:] {
		if v, ok := h.Output(); !ok || v != first {
			t.Fatalf("binding violation broke agreement: %d vs %d", v, first)
		}
	}
}

func TestRandNumMessageCountMatchesCostModel(t *testing.T) {
	// The counted simulator charges 3*s*(s-1) messages per randNum draw
	// (commit + reveal all-to-all plus one agreement round). The live
	// protocol sends commit, reveal and vote rounds of s*(s-1) each: the
	// totals must match exactly.
	const s = 10
	procs, _, _ := buildRandNum(t, s, nil)
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	if _, _, err := (randnum.Ideal{}).Draw(&led, xrand.New(1), randnum.Params{Size: s, Byz: 0, R: 64}, nil); err != nil {
		t.Fatal(err)
	}
	if e.Messages() != led.Messages() {
		t.Errorf("live messages %d != counted charge %d", e.Messages(), led.Messages())
	}
}

func TestPhaseKingRuntimeMatchesCentralized(t *testing.T) {
	// Same committee, same inputs, one scripted liar: the message-passing
	// phase king must agree internally and decide the same value as the
	// centralized ba implementation under its liar script.
	const n, tFaults = 9, 2
	inputs := []int64{1, 1, 0, 1, 0, 1, 1, 0, 1}
	cfg := PhaseKingConfig{MaxFaults: tFaults}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	procs := make(map[ids.NodeID]Process, n)
	honest := make(map[ids.NodeID]*PhaseKingNode, n-1)
	for i := 0; i < n; i++ {
		id := ids.NodeID(i)
		if i == 4 {
			procs[id] = NewPKLiarNode(cfg, id)
			continue
		}
		node := NewPhaseKingNode(cfg, id, inputs[i])
		procs[id] = node
		honest[id] = node
	}
	e := NewEngine(procs)
	defer e.Close()
	decisions, err := RunPhaseKing(e, cfg, honest)
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	got := false
	for id, v := range decisions {
		if !got {
			first, got = v, true
			continue
		}
		if v != first {
			t.Fatalf("runtime disagreement at %v: %d vs %d", id, v, first)
		}
	}

	// Centralized reference with an equivalent equivocating liar.
	bcfg := ba.Config{
		N:         n,
		Inputs:    make([]ba.Value, n),
		Byzantine: map[int]ba.Behavior{4: ba.Equivocator{}},
	}
	for i, v := range inputs {
		bcfg.Inputs[i] = ba.Value(v)
	}
	res, err := ba.PhaseKing(bcfg, tFaults)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agree(bcfg.Byzantine); !ok {
		t.Fatal("centralized phase king disagreed (reference broken)")
	}
}

func TestPhaseKingRuntimeValidity(t *testing.T) {
	// Unanimous honest inputs must survive a liar.
	const n, tFaults = 5, 1
	cfg := PhaseKingConfig{MaxFaults: tFaults}
	for i := 0; i < n; i++ {
		cfg.Members = append(cfg.Members, ids.NodeID(i))
	}
	procs := make(map[ids.NodeID]Process, n)
	honest := make(map[ids.NodeID]*PhaseKingNode)
	for i := 0; i < n; i++ {
		id := ids.NodeID(i)
		if i == 2 {
			procs[id] = NewPKLiarNode(cfg, id)
			continue
		}
		node := NewPhaseKingNode(cfg, id, 1)
		procs[id] = node
		honest[id] = node
	}
	e := NewEngine(procs)
	defer e.Close()
	decisions, err := RunPhaseKing(e, cfg, honest)
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range decisions {
		if v != 1 {
			t.Errorf("node %v decided %d, validity violated", id, v)
		}
	}
}

// buildChain assembles a relay chain of clusters, with byzLevels marking
// (level -> number of forgers).
func buildChain(t *testing.T, levels, size int, byzAt map[int]int) (map[ids.NodeID]Process, [][]ids.NodeID, []*RelayNode, token) {
	t.Helper()
	chain := make([][]ids.NodeID, levels)
	next := ids.NodeID(0)
	for l := 0; l < levels; l++ {
		for j := 0; j < size; j++ {
			chain[l] = append(chain[l], next)
			next++
		}
	}
	tok := token{WalkID: 77, Remaining: 1000}
	forged := token{WalkID: 666, Remaining: 0}
	procs := make(map[ids.NodeID]Process)
	var lastLevel []*RelayNode
	for l := 0; l < levels; l++ {
		nByz := byzAt[l]
		for j, id := range chain[l] {
			if j < nByz {
				procs[id] = NewForgingRelayNode(id, chain, l, forged)
				continue
			}
			var origin any
			if l == 0 {
				origin = tok
			}
			node := NewRelayNode(id, chain, l, origin)
			procs[id] = node
			if l == levels-1 {
				lastLevel = append(lastLevel, node)
			}
		}
	}
	return procs, chain, lastLevel, tok
}

func TestRelayDeliversToken(t *testing.T) {
	procs, _, last, tok := buildChain(t, 4, 7, nil)
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(5); err != nil {
		t.Fatal(err)
	}
	for _, n := range last {
		got, ok := n.Accepted()
		if !ok || got != tok {
			t.Fatalf("token not delivered intact: %+v ok=%v", got, ok)
		}
	}
	// Cost: 3 inter-cluster hops of 7*7 each (honest senders only send to
	// the next cluster).
	if e.Messages() != 3*7*7 {
		t.Errorf("messages = %d, want %d", e.Messages(), 3*7*7)
	}
}

func TestRelayToleratesMinorityForgers(t *testing.T) {
	procs, _, last, tok := buildChain(t, 3, 7, map[int]int{1: 3})
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	for _, n := range last {
		got, ok := n.Accepted()
		if !ok || got != tok {
			t.Fatalf("minority forgers corrupted the token: %+v", got)
		}
	}
}

func TestRelayCapturedClusterForges(t *testing.T) {
	// 4 of 7 forgers at level 1: the captured cluster speaks for itself
	// and the forged token wins.
	procs, _, last, _ := buildChain(t, 3, 7, map[int]int{1: 4})
	e := NewEngine(procs)
	defer e.Close()
	if err := e.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	for _, n := range last {
		got, ok := n.Accepted()
		if !ok {
			t.Fatal("no token accepted")
		}
		if got.WalkID != 666 {
			t.Fatalf("captured cluster failed to hijack: %+v", got)
		}
	}
}
