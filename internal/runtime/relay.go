package runtime

import (
	"fmt"

	"nowover/internal/ids"
)

// Walk-token relay: the message-level form of one CTRW hop. Every member
// of the current cluster sends the token to every member of the next
// cluster; a receiver accepts the token only when more than half of the
// sender cluster delivered identical copies (the paper's inter-cluster
// rule). Byzantine members may equivocate; with fewer than half of them
// the token still goes through unmodified, and with at least half the
// sending cluster can forge it — the capture failure mode.

// token is the relayed walk state.
type token struct {
	WalkID    uint64
	Remaining int64 // remaining duration, protocol-scaled
}

// RelayNode is an honest member of a relay chain cluster. Cluster k
// forwards to cluster k+1 on round k.
type RelayNode struct {
	self ids.NodeID
	// chain[k] is the membership of the k-th cluster.
	chain [][]ids.NodeID
	// position of this node's cluster in the chain.
	level int
	// accepted is the token this node accepted, if any.
	accepted *token
	// seed tokens: level-0 nodes originate this token.
	origin *token
}

// NewRelayNode builds an honest relay participant. origin is the token a
// level-0 node originates (build one with NewToken); nil for every other
// node. The parameter is any because the token type is unexported; a
// non-nil non-token origin panics.
func NewRelayNode(self ids.NodeID, chain [][]ids.NodeID, level int, origin any) *RelayNode {
	n := &RelayNode{self: self, chain: chain, level: level}
	if origin != nil {
		tk, ok := origin.(token)
		if !ok {
			panic(fmt.Sprintf("runtime: relay origin must come from NewToken, got %T", origin))
		}
		n.origin = &tk
	}
	return n
}

// Accepted returns the token this node accepted.
func (n *RelayNode) Accepted() (token, bool) {
	if n.accepted == nil {
		return token{}, false
	}
	return *n.accepted, true
}

// Step implements Process: messages sent by level k-1 in round k-1 are
// delivered in round k, so at round == level the node evaluates the
// majority rule on its inbox and forwards in the same round.
func (n *RelayNode) Step(round int, inbox []Message) []Message {
	if n.level == 0 && round == 0 {
		n.accepted = n.origin
	} else if round == n.level && n.accepted == nil && n.level > 0 {
		if payload, ok := MajorityPayload(inbox, n.chain[n.level-1]); ok {
			if tk, ok2 := payload.(token); ok2 {
				n.accepted = &tk
			}
		}
	}
	if round == n.level && n.accepted != nil && n.level+1 < len(n.chain) {
		out := make([]Message, 0, len(n.chain[n.level+1]))
		for _, to := range n.chain[n.level+1] {
			out = append(out, Message{From: n.self, To: to, Round: round, Payload: *n.accepted})
		}
		return out
	}
	return nil
}

// ForgingRelayNode is a Byzantine relay member that substitutes its own
// token, attempting to hijack the walk.
type ForgingRelayNode struct {
	self  ids.NodeID
	chain [][]ids.NodeID
	level int
	forge token
}

// NewForgingRelayNode builds the attacker. forge is the substituted token,
// built with NewToken; anything else panics.
func NewForgingRelayNode(self ids.NodeID, chain [][]ids.NodeID, level int, forge any) *ForgingRelayNode {
	tk, ok := forge.(token)
	if !ok {
		panic(fmt.Sprintf("runtime: forged token must come from NewToken, got %T", forge))
	}
	return &ForgingRelayNode{self: self, chain: chain, level: level, forge: tk}
}

// Step implements Process.
func (n *ForgingRelayNode) Step(round int, _ []Message) []Message {
	if round != n.level || n.level+1 >= len(n.chain) {
		return nil
	}
	out := make([]Message, 0, len(n.chain[n.level+1]))
	for _, to := range n.chain[n.level+1] {
		out = append(out, Message{From: n.self, To: to, Round: round, Payload: n.forge})
	}
	return out
}
