package runtime

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for the protocol payloads the lockstep engine passes as Go
// values. The nownet transport carries payloads as bytes, so every payload
// type gets a tag and a fixed big-endian layout; encoding then decoding
// reproduces the value exactly (payloads are comparable, so the round-trip
// is testable with ==). The codec is deliberately closed: an unknown tag
// or a short body is an error, never a zero value, because a Byzantine
// peer owns every byte of an incoming frame.

// Payload tags. Tag 0 is reserved as invalid.
const (
	tagCommit byte = 1 + iota
	tagReveal
	tagVote
	tagPKValue
	tagToken
)

// EncodePayload serializes a protocol payload to its wire tag and body.
func EncodePayload(p any) (tag byte, body []byte, err error) {
	switch v := p.(type) {
	case commitMsg:
		return tagCommit, be64(v.Tag), nil
	case revealMsg:
		body = append(be64(v.Tag), be64(uint64(v.Share))...)
		return tagReveal, body, nil
	case voteMsg:
		return tagVote, be64(v.Mask), nil
	case pkValue:
		body = append([]byte{byte(v.Kind)}, be64(uint64(v.Value))...)
		return tagPKValue, body, nil
	case token:
		body = append(be64(v.WalkID), be64(uint64(v.Remaining))...)
		return tagToken, body, nil
	}
	return 0, nil, fmt.Errorf("runtime: no wire encoding for payload type %T", p)
}

// DecodePayload reverses EncodePayload.
func DecodePayload(tag byte, body []byte) (any, error) {
	switch tag {
	case tagCommit:
		if len(body) != 8 {
			return nil, fmt.Errorf("runtime: commit body has %d bytes, want 8", len(body))
		}
		return commitMsg{Tag: binary.BigEndian.Uint64(body)}, nil
	case tagReveal:
		if len(body) != 16 {
			return nil, fmt.Errorf("runtime: reveal body has %d bytes, want 16", len(body))
		}
		return revealMsg{
			Tag:   binary.BigEndian.Uint64(body),
			Share: int64(binary.BigEndian.Uint64(body[8:])),
		}, nil
	case tagVote:
		if len(body) != 8 {
			return nil, fmt.Errorf("runtime: vote body has %d bytes, want 8", len(body))
		}
		return voteMsg{Mask: binary.BigEndian.Uint64(body)}, nil
	case tagPKValue:
		if len(body) != 9 {
			return nil, fmt.Errorf("runtime: pkValue body has %d bytes, want 9", len(body))
		}
		k := pkKind(body[0])
		if k != pkBroadcast && k != pkKingSay {
			return nil, fmt.Errorf("runtime: unknown pkValue kind %d", body[0])
		}
		return pkValue{Kind: k, Value: int64(binary.BigEndian.Uint64(body[1:]))}, nil
	case tagToken:
		if len(body) != 16 {
			return nil, fmt.Errorf("runtime: token body has %d bytes, want 16", len(body))
		}
		return token{
			WalkID:    binary.BigEndian.Uint64(body),
			Remaining: int64(binary.BigEndian.Uint64(body[8:])),
		}, nil
	}
	return nil, fmt.Errorf("runtime: unknown payload tag %d", tag)
}

func be64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// NewToken builds a relay walk token; the nownet port and the demo driver
// originate tokens through this constructor since the type is unexported.
func NewToken(walkID uint64, remaining int64) any {
	return token{WalkID: walkID, Remaining: remaining}
}
