// Package runtime executes protocol primitives as real concurrent
// message-passing code: every node is a goroutine, rounds are lockstep
// (the paper's synchronous model), and messages are delivered through
// channels at the start of the round after they were sent. It exists to
// demonstrate the protocol as running code and to cross-validate the
// counted simulator's cost model: integration tests assert that the
// messages actually sent by these implementations match the charges the
// analytic ledger applies for the same primitive.
//
// Implemented at message level: intra-cluster commit-reveal randNum with
// Byzantine equivocators, the inter-cluster majority-accept rule, and
// CTRW token handoff across clusters.
package runtime

import (
	"fmt"
	"slices"
	"sync"

	"nowover/internal/ids"
)

// Message is one point-to-point protocol message. Payload contents are
// protocol-specific; equality of payloads (==) defines "identical
// messages" for the majority-accept rule, so payloads must be comparable.
type Message struct {
	From, To ids.NodeID
	Round    int
	Payload  any
}

// Process is a node's protocol state machine: it consumes the inbox of
// round r and emits the messages to deliver in round r+1.
type Process interface {
	Step(round int, inbox []Message) []Message
}

// Engine runs a set of node processes in lockstep rounds, each node on its
// own goroutine. Not safe for concurrent use by multiple callers.
type Engine struct {
	order    []ids.NodeID
	workers  map[ids.NodeID]*worker
	pending  map[ids.NodeID][]Message
	messages int64
	rounds   int
	closed   bool
	// poisoned marks an engine whose last Round aborted mid-collection (a
	// node forged a sender). The inboxes consumed by that round are gone,
	// so the round structure is broken: further Rounds are refused, but
	// Close still reclaims the goroutines.
	poisoned bool
	// observe, when set, is called for every collected message in the
	// deterministic collect order (senders sorted, emission order within a
	// sender). Trace oracles hang off this hook.
	observe func(round int, m Message)
}

// worker is one node goroutine plus its rendezvous channels.
type worker struct {
	in   chan stepReq
	out  chan []Message
	done chan struct{}
}

type stepReq struct {
	round int
	inbox []Message
}

// NewEngine starts one goroutine per process. Callers must Close the
// engine to reclaim the goroutines.
func NewEngine(procs map[ids.NodeID]Process) *Engine {
	e := &Engine{
		workers: make(map[ids.NodeID]*worker, len(procs)),
		pending: make(map[ids.NodeID][]Message),
	}
	for id := range procs {
		e.order = append(e.order, id)
	}
	// Deterministic goroutine wiring order.
	slices.Sort(e.order)
	for _, id := range e.order {
		w := &worker{
			in:   make(chan stepReq),
			out:  make(chan []Message),
			done: make(chan struct{}),
		}
		e.workers[id] = w
		go func(p Process, w *worker) {
			defer close(w.done)
			for req := range w.in {
				w.out <- p.Step(req.round, req.inbox)
			}
		}(procs[id], w)
	}
	return e
}

// Round executes one synchronous round: delivers each node's pending
// inbox, runs all Step calls concurrently, and queues the emitted messages
// for the next round. Messages to unknown nodes are dropped (counted as
// sent — the channel exists even if the peer left).
func (e *Engine) Round() error {
	if e.closed {
		return fmt.Errorf("runtime: engine closed")
	}
	if e.poisoned {
		return fmt.Errorf("runtime: engine poisoned by an earlier failed round")
	}
	round := e.rounds
	// Fan out.
	var wg sync.WaitGroup
	results := make(map[ids.NodeID][]Message, len(e.order))
	var mu sync.Mutex
	for _, id := range e.order {
		w := e.workers[id]
		inbox := e.pending[id]
		delete(e.pending, id)
		wg.Add(1)
		go func(id ids.NodeID, w *worker) {
			defer wg.Done()
			w.in <- stepReq{round: round, inbox: inbox}
			out := <-w.out
			mu.Lock()
			results[id] = out
			mu.Unlock()
		}(id, w)
	}
	wg.Wait()
	// Validate every result before touching engine state: an error that
	// surfaced mid-collection used to leave e.pending half-queued and
	// e.rounds unincremented, so a caller that continued after the error
	// ran on a corrupted half-round. Now either the whole round commits or
	// none of it does — and a failed round poisons the engine (this round's
	// inboxes were already consumed by the Step calls, so the lockstep
	// structure cannot be resumed), while Close stays available.
	for _, id := range e.order {
		for _, m := range results[id] {
			if m.From != id {
				e.poisoned = true
				return fmt.Errorf("runtime: node %v forged sender %v", id, m.From)
			}
		}
	}
	// Collect in deterministic order.
	for _, id := range e.order {
		for _, m := range results[id] {
			e.messages++
			if e.observe != nil {
				e.observe(round, m)
			}
			if _, ok := e.workers[m.To]; ok {
				e.pending[m.To] = append(e.pending[m.To], m)
			}
		}
	}
	e.rounds++
	return nil
}

// Observe registers fn to be called once per collected message, in the
// deterministic collect order (sorted senders, emission order within each
// sender), with the round the message was emitted in. The sim-vs-runtime
// equivalence suite records the lockstep trace through this hook. Must be
// set before the first Round; a nil fn clears it.
func (e *Engine) Observe(fn func(round int, m Message)) { e.observe = fn }

// RunRounds executes n rounds.
func (e *Engine) RunRounds(n int) error {
	for i := 0; i < n; i++ {
		if err := e.Round(); err != nil {
			return err
		}
	}
	return nil
}

// Messages returns the total messages sent so far.
func (e *Engine) Messages() int64 { return e.messages }

// Rounds returns the number of rounds executed.
func (e *Engine) Rounds() int { return e.rounds }

// Close shuts down all node goroutines and waits for them to exit.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, id := range e.order {
		close(e.workers[id].in)
	}
	for _, id := range e.order {
		<-e.workers[id].done
	}
}

// MajorityPayload applies the paper's inter-cluster acceptance rule to an
// inbox: it returns the payload that more than half of the members of the
// sending cluster delivered identically, if any. senders is the expected
// membership of the sending cluster.
//
// Each expected sender contributes at most ONE vote — the first message it
// delivered, matching the paper's delivery rule. Counting raw messages
// would let a single Byzantine member repeat a payload k times and push it
// past the strict-majority threshold on its own.
func MajorityPayload(inbox []Message, senders []ids.NodeID) (any, bool) {
	expected := make(map[ids.NodeID]bool, len(senders))
	for _, s := range senders {
		expected[s] = true
	}
	counts := make(map[any]int)
	voted := make(map[ids.NodeID]bool, len(senders))
	for _, m := range inbox {
		if expected[m.From] && !voted[m.From] {
			voted[m.From] = true
			counts[m.Payload]++
		}
	}
	//nowlint:ordered a strict majority (> half the senders) is unique, so at most one iteration can satisfy the return condition — the result is order-independent
	for payload, n := range counts {
		if 2*n > len(senders) {
			return payload, true
		}
	}
	return nil, false
}
