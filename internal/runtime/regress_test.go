package runtime

import (
	"testing"

	"nowover/internal/ids"
)

// Regression: MajorityPayload used to count messages instead of senders,
// so a single equivocator could repeat a payload past the strict-majority
// threshold on its own.
func TestMajorityPayloadEquivocatorCannotForge(t *testing.T) {
	senders := []ids.NodeID{1, 2, 3, 4, 5}
	inbox := []Message{
		// One Byzantine member repeats the forged payload four times: under
		// message counting 4 > 5/2 would have accepted it.
		{From: 3, To: 9, Payload: "forged"},
		{From: 3, To: 9, Payload: "forged"},
		{From: 3, To: 9, Payload: "forged"},
		{From: 3, To: 9, Payload: "forged"},
		{From: 1, To: 9, Payload: "real"},
		{From: 2, To: 9, Payload: "real"},
	}
	if got, ok := MajorityPayload(inbox, senders); ok {
		t.Fatalf("equivocator forged a majority: accepted %v", got)
	}
}

func TestMajorityPayloadFirstMessageWins(t *testing.T) {
	senders := []ids.NodeID{1, 2, 3}
	inbox := []Message{
		{From: 1, To: 9, Payload: "v"},
		{From: 2, To: 9, Payload: "v"},
		// Sender 2 equivocates after its first delivery; the duplicate must
		// not count as a second vote for either payload.
		{From: 2, To: 9, Payload: "w"},
		{From: 3, To: 9, Payload: "w"},
	}
	got, ok := MajorityPayload(inbox, senders)
	if !ok || got != "v" {
		t.Fatalf("majority = %v,%v, want v (first message per sender)", got, ok)
	}
}

// Regression: a forged-sender error used to surface mid-collection,
// leaving e.pending half-queued and e.rounds unincremented. A failed Round
// must commit nothing, refuse further rounds, and leave Close working.
func TestEngineFailedRoundPoisons(t *testing.T) {
	a, b, c := ids.NodeID(1), ids.NodeID(2), ids.NodeID(3)
	// Node a (first in sorted order) emits honestly; node b forges. Under
	// the old mid-collection error, a's messages were already queued.
	honest := &echoProc{self: a, peer: c}
	forger := processFunc(func(round int, _ []Message) []Message {
		return []Message{{From: c, To: c, Round: round, Payload: "forged"}}
	})
	sink := &echoProc{self: c, peer: a}
	e := NewEngine(map[ids.NodeID]Process{a: honest, b: forger, c: sink})
	defer e.Close()
	if err := e.Round(); err == nil {
		t.Fatal("forged sender accepted")
	}
	if e.Rounds() != 0 {
		t.Errorf("failed round incremented counter to %d", e.Rounds())
	}
	if e.Messages() != 0 {
		t.Errorf("failed round counted %d messages", e.Messages())
	}
	if len(e.pending) != 0 {
		t.Errorf("failed round left %d pending inboxes queued", len(e.pending))
	}
	if err := e.Round(); err == nil {
		t.Error("poisoned engine accepted another round")
	}
}

func TestEngineCloseAfterFailedRound(t *testing.T) {
	a, b := ids.NodeID(1), ids.NodeID(2)
	forger := processFunc(func(round int, _ []Message) []Message {
		return []Message{{From: b, To: b, Round: round, Payload: "forged"}}
	})
	e := NewEngine(map[ids.NodeID]Process{a: forger, b: processFunc(nopStep)})
	if err := e.Round(); err == nil {
		t.Fatal("forged sender accepted")
	}
	// Close must still reclaim the node goroutines (it blocks on their done
	// channels, so a leak would deadlock the test) and stay idempotent.
	e.Close()
	e.Close()
	if err := e.Round(); err == nil {
		t.Error("closed engine accepted a round")
	}
}

func TestEngineObserveSeesCollectOrder(t *testing.T) {
	a, b := ids.NodeID(2), ids.NodeID(7)
	pa := &echoProc{self: a, peer: b}
	pb := &echoProc{self: b, peer: a}
	e := NewEngine(map[ids.NodeID]Process{a: pa, b: pb})
	defer e.Close()
	var seen []Message
	var rounds []int
	e.Observe(func(round int, m Message) {
		seen = append(seen, m)
		rounds = append(rounds, round)
	})
	if err := e.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("observed %d messages, want 4", len(seen))
	}
	// Collect order is sorted senders within each round.
	want := []ids.NodeID{a, b, a, b}
	for i, m := range seen {
		if m.From != want[i] {
			t.Errorf("observation %d from %v, want %v", i, m.From, want[i])
		}
	}
	if rounds[0] != 0 || rounds[3] != 1 {
		t.Errorf("observed rounds %v", rounds)
	}
}
