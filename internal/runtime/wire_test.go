package runtime

import (
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	payloads := []any{
		commitMsg{Tag: 0},
		commitMsg{Tag: ^uint64(0)},
		revealMsg{Tag: 12345, Share: -7},
		revealMsg{Tag: 1, Share: 1<<62 + 3},
		voteMsg{Mask: 0b1011},
		pkValue{Kind: pkBroadcast, Value: 1},
		pkValue{Kind: pkKingSay, Value: -1},
		token{WalkID: 77, Remaining: 1000},
		NewToken(666, 0),
	}
	for _, p := range payloads {
		tag, body, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("encode %#v: %v", p, err)
		}
		got, err := DecodePayload(tag, body)
		if err != nil {
			t.Fatalf("decode %#v: %v", p, err)
		}
		// Payloads are comparable by contract (majority-accept relies on ==).
		if got != p {
			t.Errorf("round trip %#v -> %#v", p, got)
		}
	}
}

func TestPayloadCodecRejects(t *testing.T) {
	if _, _, err := EncodePayload("not a protocol payload"); err == nil {
		t.Error("encoded an unknown payload type")
	}
	if _, err := DecodePayload(0, nil); err == nil {
		t.Error("decoded the reserved zero tag")
	}
	if _, err := DecodePayload(99, []byte{1, 2, 3}); err == nil {
		t.Error("decoded an unknown tag")
	}
	// Every tag rejects a short body rather than zero-filling.
	for tag := tagCommit; tag <= tagToken; tag++ {
		if _, err := DecodePayload(tag, []byte{1, 2}); err == nil {
			t.Errorf("tag %d decoded a short body", tag)
		}
	}
	// pkValue kinds are a closed set.
	bad := append([]byte{250}, be64(1)...)
	if _, err := DecodePayload(tagPKValue, bad); err == nil {
		t.Error("decoded a pkValue with an unknown kind")
	}
}
