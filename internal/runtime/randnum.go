package runtime

import (
	"fmt"

	"nowover/internal/ids"
	"nowover/internal/xrand"
)

// Message payloads for the commit-reveal protocol. All are comparable so
// MajorityPayload and map-keyed tallies work on them.

// commitMsg binds a member to a hidden share (the hash is modeled by an
// opaque tag: the binding property is what matters to the protocol logic,
// not the hash function).
type commitMsg struct {
	Tag uint64
}

// revealMsg opens a commitment.
type revealMsg struct {
	Tag   uint64
	Share int64
}

// voteMsg is the final round: the sender's view of the valid reveal set,
// encoded as a bitmask over member indices (comparable, unlike a slice).
type voteMsg struct {
	Mask uint64
}

// RandNumConfig describes one commit-reveal instance over a cluster.
type RandNumConfig struct {
	Members []ids.NodeID
	R       int64 // output range [0, R)
}

// RandNumNode is the honest commit-reveal state machine:
//
//	round 0: broadcast commit(tag)       — tag binds the share
//	round 1: broadcast reveal(tag, share)
//	round 2: broadcast vote(valid set)   — agreement on who revealed
//	round 3: output = sum of shares in the majority-valid set mod R
//
// A reveal is valid when its tag matches the unique commit received from
// that member; the final set is the bitwise-majority of received votes, so
// all honest nodes output the same value while Byzantine members are a
// minority.
type RandNumNode struct {
	cfg   RandNumConfig
	self  ids.NodeID
	index map[ids.NodeID]int
	share int64
	tag   uint64

	commits map[ids.NodeID]commitMsg
	reveals map[ids.NodeID]revealMsg
	votes   []voteMsg

	output    int64
	hasOutput bool
}

// NewRandNumNode builds the honest node; r seeds its share.
func NewRandNumNode(cfg RandNumConfig, self ids.NodeID, r *xrand.Rand) (*RandNumNode, error) {
	if cfg.R <= 0 {
		return nil, fmt.Errorf("runtime: non-positive range")
	}
	if len(cfg.Members) > 64 {
		return nil, fmt.Errorf("runtime: vote mask limited to 64 members, got %d", len(cfg.Members))
	}
	idx := make(map[ids.NodeID]int, len(cfg.Members))
	found := false
	for i, m := range cfg.Members {
		idx[m] = i
		if m == self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("runtime: node %v not a member", self)
	}
	return &RandNumNode{
		cfg:     cfg,
		self:    self,
		index:   idx,
		share:   int64(r.Intn(int(cfg.R))),
		tag:     r.Uint64(),
		commits: make(map[ids.NodeID]commitMsg, len(cfg.Members)),
		reveals: make(map[ids.NodeID]revealMsg, len(cfg.Members)),
	}, nil
}

// Output returns the agreed value once round 3 has run.
func (n *RandNumNode) Output() (int64, bool) { return n.output, n.hasOutput }

// Step implements Process.
func (n *RandNumNode) Step(round int, inbox []Message) []Message {
	n.absorb(inbox)
	switch round {
	case 0:
		return n.broadcast(round, commitMsg{Tag: n.tag})
	case 1:
		return n.broadcast(round, revealMsg{Tag: n.tag, Share: n.share})
	case 2:
		return n.broadcast(round, voteMsg{Mask: n.validMask()})
	case 3:
		n.decide()
	}
	return nil
}

func (n *RandNumNode) absorb(inbox []Message) {
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case commitMsg:
			if _, dup := n.commits[m.From]; !dup {
				n.commits[m.From] = p
			}
		case revealMsg:
			if _, dup := n.reveals[m.From]; !dup {
				n.reveals[m.From] = p
			}
		case voteMsg:
			n.votes = append(n.votes, p)
		}
	}
}

func (n *RandNumNode) broadcast(round int, payload any) []Message {
	out := make([]Message, 0, len(n.cfg.Members)-1)
	for _, to := range n.cfg.Members {
		if to == n.self {
			continue
		}
		out = append(out, Message{From: n.self, To: to, Round: round, Payload: payload})
	}
	return out
}

// validMask marks members whose reveal matches their commit.
func (n *RandNumNode) validMask() uint64 {
	var mask uint64
	for member, rv := range n.reveals {
		cm, ok := n.commits[member]
		if ok && cm.Tag == rv.Tag {
			mask |= 1 << uint(n.index[member])
		}
	}
	// The node's own share is always valid to itself.
	mask |= 1 << uint(n.index[n.self])
	return mask
}

// decide takes the bitwise majority of votes (own vote included) and sums
// the agreed shares.
func (n *RandNumNode) decide() {
	votes := append([]voteMsg{{Mask: n.validMask()}}, n.votes...)
	var final uint64
	for bit := 0; bit < len(n.cfg.Members); bit++ {
		cnt := 0
		for _, v := range votes {
			if v.Mask&(1<<uint(bit)) != 0 {
				cnt++
			}
		}
		if 2*cnt > len(n.cfg.Members) {
			final |= 1 << uint(bit)
		}
	}
	var sum int64
	for member, rv := range n.reveals {
		if final&(1<<uint(n.index[member])) != 0 {
			sum = (sum + rv.Share) % n.cfg.R
		}
	}
	if final&(1<<uint(n.index[n.self])) != 0 {
		sum = (sum + n.share) % n.cfg.R
	}
	n.output = sum
	n.hasOutput = true
}

// SilentNode models a crashed / withholding Byzantine member: it sends
// nothing.
type SilentNode struct{}

// Step implements Process.
func (SilentNode) Step(int, []Message) []Message { return nil }

// BadRevealNode commits one tag but opens a different one — a binding
// violation. Every honest node detects the mismatch and deterministically
// excludes the share, so the attacker only forfeits its own influence.
//
// Note on scope: full reveal-*equivocation* (different shares to different
// peers) defeats plain commit-reveal and is exactly why the paper's
// randNum construction (long version [16]) layers reliable broadcast /
// verifiable secret sharing underneath. This runtime demonstrates the
// commit-reveal skeleton against binding violations and withholding; the
// agreement layer that closes the equivocation gap is demonstrated
// separately by PhaseKingNode and, analytically, by randnum.Ideal.
type BadRevealNode struct {
	cfg   RandNumConfig
	self  ids.NodeID
	tag   uint64
	wrong uint64
	share int64
}

// NewBadRevealNode builds the attacker.
func NewBadRevealNode(cfg RandNumConfig, self ids.NodeID, r *xrand.Rand) *BadRevealNode {
	return &BadRevealNode{
		cfg:   cfg,
		self:  self,
		tag:   r.Uint64(),
		wrong: r.Uint64(),
		share: int64(r.Intn(int(cfg.R))),
	}
}

// Step implements Process.
func (n *BadRevealNode) Step(round int, _ []Message) []Message {
	var out []Message
	for _, to := range n.cfg.Members {
		if to == n.self {
			continue
		}
		var payload any
		switch round {
		case 0:
			payload = commitMsg{Tag: n.tag}
		case 1:
			payload = revealMsg{Tag: n.wrong, Share: n.share}
		case 2:
			// Vote for everything, trying to smuggle itself in.
			payload = voteMsg{Mask: ^uint64(0)}
		default:
			continue
		}
		out = append(out, Message{From: n.self, To: to, Round: round, Payload: payload})
	}
	return out
}
