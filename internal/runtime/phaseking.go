package runtime

import (
	"nowover/internal/ids"
)

// Phase-king as a message-passing Process: the same Berman-Garay-Perry
// algorithm the ba package executes centrally, here running over the
// lockstep engine so its decisions (and message counts) can be
// cross-validated against ba.PhaseKing on identical inputs. Correct for
// committees with n > 4t.

// pkValue is a phase-king protocol message.
type pkValue struct {
	Kind  pkKind
	Value int64
}

type pkKind int

const (
	pkBroadcast pkKind = iota
	pkKingSay
)

// PhaseKingConfig describes one agreement committee.
type PhaseKingConfig struct {
	Members   []ids.NodeID
	MaxFaults int
}

// rounds returns the total protocol length: two rounds per phase.
func (c PhaseKingConfig) rounds() int { return 2 * (c.MaxFaults + 1) }

// PhaseKingNode is an honest phase-king participant.
type PhaseKingNode struct {
	cfg   PhaseKingConfig
	self  ids.NodeID
	index map[ids.NodeID]int
	value int64

	maj     int64
	mult    int
	decided bool
}

// NewPhaseKingNode builds a participant with the given input value.
func NewPhaseKingNode(cfg PhaseKingConfig, self ids.NodeID, input int64) *PhaseKingNode {
	idx := make(map[ids.NodeID]int, len(cfg.Members))
	for i, m := range cfg.Members {
		idx[m] = i
	}
	return &PhaseKingNode{cfg: cfg, self: self, index: idx, value: input}
}

// Decision returns the decided value after the protocol completes.
func (n *PhaseKingNode) Decision() (int64, bool) { return n.value, n.decided }

// Step implements Process. Even rounds broadcast values; odd rounds carry
// the king's proposal and apply the retention rule. The round after the
// last protocol round delivers the final king message and fixes the
// decision.
func (n *PhaseKingNode) Step(round int, inbox []Message) []Message {
	if round >= n.cfg.rounds() {
		if !n.decided {
			n.applyKing(inbox, n.cfg.Members[n.cfg.MaxFaults%len(n.cfg.Members)])
			n.decided = true
		}
		return nil
	}
	phase := round / 2
	king := n.cfg.Members[phase%len(n.cfg.Members)]
	if round%2 == 0 {
		// Evaluate the previous phase's king message before broadcasting.
		if round > 0 {
			n.applyKing(inbox, n.cfg.Members[(phase-1)%len(n.cfg.Members)])
		}
		return n.broadcast(round, pkValue{Kind: pkBroadcast, Value: n.value})
	}
	// Odd round: tally the broadcast, king speaks.
	n.tally(inbox)
	if n.self == king {
		return n.broadcast(round, pkValue{Kind: pkKingSay, Value: n.maj})
	}
	return nil
}

func (n *PhaseKingNode) broadcast(round int, payload pkValue) []Message {
	out := make([]Message, 0, len(n.cfg.Members)-1)
	for _, to := range n.cfg.Members {
		if to == n.self {
			continue
		}
		out = append(out, Message{From: n.self, To: to, Round: round, Payload: payload})
	}
	return out
}

// tally computes majority value and multiplicity from a broadcast round
// (own value included).
func (n *PhaseKingNode) tally(inbox []Message) {
	counts := map[int64]int{n.value: 1}
	for _, m := range inbox {
		if p, ok := m.Payload.(pkValue); ok && p.Kind == pkBroadcast {
			counts[p.Value]++
		}
	}
	best, bestN := int64(0), -1
	for v, c := range counts {
		if c > bestN || (c == bestN && v < best) {
			best, bestN = v, c
		}
	}
	n.maj, n.mult = best, bestN
}

// applyKing applies the phase-king retention rule using the king message
// found in the inbox.
func (n *PhaseKingNode) applyKing(inbox []Message, king ids.NodeID) {
	kingVal := int64(0)
	for _, m := range inbox {
		if m.From != king {
			continue
		}
		if p, ok := m.Payload.(pkValue); ok && p.Kind == pkKingSay {
			kingVal = p.Value
			break
		}
	}
	if n.self == king {
		kingVal = n.maj
	}
	if n.mult > len(n.cfg.Members)/2+n.cfg.MaxFaults {
		n.value = n.maj
	} else {
		n.value = kingVal
	}
}

// PKLiarNode is a Byzantine participant that inverts every value it should
// send and equivocates king messages by recipient parity.
type PKLiarNode struct {
	cfg  PhaseKingConfig
	self ids.NodeID
}

// NewPKLiarNode builds the attacker.
func NewPKLiarNode(cfg PhaseKingConfig, self ids.NodeID) *PKLiarNode {
	return &PKLiarNode{cfg: cfg, self: self}
}

// Step implements Process.
func (n *PKLiarNode) Step(round int, _ []Message) []Message {
	if round >= n.cfg.rounds() {
		return nil
	}
	phase := round / 2
	king := n.cfg.Members[phase%len(n.cfg.Members)]
	var out []Message
	for i, to := range n.cfg.Members {
		if to == n.self {
			continue
		}
		switch {
		case round%2 == 0:
			out = append(out, Message{From: n.self, To: to, Round: round,
				Payload: pkValue{Kind: pkBroadcast, Value: int64(i % 2)}})
		case n.self == king:
			out = append(out, Message{From: n.self, To: to, Round: round,
				Payload: pkValue{Kind: pkKingSay, Value: int64((i + 1) % 2)}})
		}
	}
	return out
}

// RunPhaseKing drives a committee to completion on the engine and returns
// the honest nodes' decisions.
func RunPhaseKing(e *Engine, cfg PhaseKingConfig, honest map[ids.NodeID]*PhaseKingNode) (map[ids.NodeID]int64, error) {
	if err := e.RunRounds(cfg.rounds() + 1); err != nil {
		return nil, err
	}
	out := make(map[ids.NodeID]int64, len(honest))
	for id, n := range honest {
		v, _ := n.Decision()
		out[id] = v
	}
	return out, nil
}
