// Package ids defines the identifier types shared by every layer of the
// system: node identities (unforgeable per the paper's model) and cluster
// identities (vertices of the OVER overlay).
package ids

import (
	"fmt"
	"sort"
)

// NodeID uniquely identifies a node for the lifetime of the run. The
// paper's model states identities cannot be forged; the simulator enforces
// this by construction (IDs are allocated once by the world and never
// reused).
type NodeID uint64

// String implements fmt.Stringer.
func (n NodeID) String() string { return fmt.Sprintf("n%d", uint64(n)) }

// ClusterID identifies a vertex of the overlay graph. Cluster IDs are
// allocated monotonically; a split mints a fresh ID for the new half and a
// merge retires one.
type ClusterID uint64

// String implements fmt.Stringer.
func (c ClusterID) String() string { return fmt.Sprintf("C%d", uint64(c)) }

// NodeSet is a set of node identifiers with deterministic iteration via
// Sorted. The zero value is ready to use after a call to Add (nil map
// semantics are handled).
type NodeSet map[NodeID]struct{}

// NewNodeSet builds a set from the given members.
func NewNodeSet(members ...NodeID) NodeSet {
	s := make(NodeSet, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts id, returning true if it was not already present.
func (s NodeSet) Add(id NodeID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Remove deletes id, returning true if it was present.
func (s NodeSet) Remove(id NodeID) bool {
	if _, ok := s[id]; !ok {
		return false
	}
	delete(s, id)
	return true
}

// Has reports membership.
func (s NodeSet) Has(id NodeID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the cardinality.
func (s NodeSet) Len() int { return len(s) }

// Sorted returns the members in ascending order; used wherever iteration
// order must be deterministic (protocol decisions, tests).
func (s NodeSet) Sorted() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy.
func (s NodeSet) Clone() NodeSet {
	out := make(NodeSet, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

// ClusterSet is a set of cluster identifiers with deterministic iteration.
type ClusterSet map[ClusterID]struct{}

// NewClusterSet builds a set from the given members.
func NewClusterSet(members ...ClusterID) ClusterSet {
	s := make(ClusterSet, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts id, returning true if it was not already present.
func (s ClusterSet) Add(id ClusterID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Remove deletes id, returning true if it was present.
func (s ClusterSet) Remove(id ClusterID) bool {
	if _, ok := s[id]; !ok {
		return false
	}
	delete(s, id)
	return true
}

// Has reports membership.
func (s ClusterSet) Has(id ClusterID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the cardinality.
func (s ClusterSet) Len() int { return len(s) }

// Sorted returns the members in ascending order.
func (s ClusterSet) Sorted() []ClusterID {
	out := make([]ClusterID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeAllocator mints unique node identifiers.
type NodeAllocator struct{ next NodeID }

// NextNode returns a fresh, never-before-issued NodeID.
func (a *NodeAllocator) NextNode() NodeID {
	id := a.next
	a.next++
	return id
}

// Issued reports how many IDs have been allocated.
func (a *NodeAllocator) Issued() int { return int(a.next) }

// ClusterAllocator mints unique cluster identifiers.
type ClusterAllocator struct{ next ClusterID }

// NextCluster returns a fresh, never-before-issued ClusterID.
func (a *ClusterAllocator) NextCluster() ClusterID {
	id := a.next
	a.next++
	return id
}

// Issued reports how many IDs have been allocated.
func (a *ClusterAllocator) Issued() int { return int(a.next) }
