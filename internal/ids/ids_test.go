package ids

import (
	"testing"
	"testing/quick"
)

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(3, 1, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Add(7) {
		t.Error("Add of new element returned false")
	}
	if s.Add(7) {
		t.Error("Add of existing element returned true")
	}
	if !s.Has(7) {
		t.Error("Has(7) false after Add")
	}
	if !s.Remove(7) {
		t.Error("Remove of existing element returned false")
	}
	if s.Remove(7) {
		t.Error("Remove of missing element returned true")
	}
	got := s.Sorted()
	want := []NodeID{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestNodeSetCloneIndependent(t *testing.T) {
	s := NewNodeSet(1, 2)
	c := s.Clone()
	c.Add(3)
	if s.Has(3) {
		t.Error("mutation of clone leaked into original")
	}
}

func TestClusterSetBasics(t *testing.T) {
	s := NewClusterSet(5, 4)
	s.Add(6)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Sorted()
	if got[0] != 4 || got[2] != 6 {
		t.Fatalf("Sorted = %v", got)
	}
	if !s.Remove(5) || s.Has(5) {
		t.Error("Remove(5) failed")
	}
}

func TestAllocatorsMonotone(t *testing.T) {
	var na NodeAllocator
	var ca ClusterAllocator
	prevN := NodeID(0)
	prevC := ClusterID(0)
	for i := 0; i < 100; i++ {
		n := na.NextNode()
		c := ca.NextCluster()
		if i > 0 && (n <= prevN || c <= prevC) {
			t.Fatal("allocator not strictly increasing")
		}
		prevN, prevC = n, c
	}
	if na.Issued() != 100 || ca.Issued() != 100 {
		t.Fatalf("Issued = %d/%d, want 100/100", na.Issued(), ca.Issued())
	}
}

func TestSortedIsSortedProperty(t *testing.T) {
	if err := quick.Check(func(vals []uint64) bool {
		s := make(NodeSet)
		for _, v := range vals {
			s.Add(NodeID(v))
		}
		sorted := s.Sorted()
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] >= sorted[i] {
				return false
			}
		}
		return len(sorted) == s.Len()
	}, nil); err != nil {
		t.Fatal(err)
	}
}
