// Package over implements OVER (Over-Valued Erdos-Renyi graph), the
// protocol that maintains the expander overlay of clusters under vertex
// additions and removals. The proceedings paper defers OVER's construction
// to its long version; this package reconstructs it from the two properties
// NOW consumes and the hints the paper does give:
//
//   - Property 1: large isoperimetric constant (expansion) at all times.
//   - Property 2: maximum degree O(log^{1+alpha} N).
//   - The initial overlay is Erdos-Renyi with p = log^{1+alpha}N / sqrt(N)
//     (expected degree Theta(log^{1+alpha} N) at the initial scale).
//   - A new vertex (cluster split) acquires Theta(log^{1+alpha} N) edges
//     whose endpoints are chosen by random walks (Figure 2).
//   - Removed vertices are random (ensured by NOW's merge using randCl),
//     so removals do not bias the edge distribution.
//
// Add wires a new vertex to targetDegree endpoints supplied by a caller
// provided picker (NOW passes a CTRW-based uniform sampler); Remove deletes
// a vertex and repairs any neighbor whose degree fell below the floor by
// drawing replacement edges the same way. A hard degree cap enforces
// Property 2 by redirecting edges away from saturated vertices; expansion
// (Property 1) is not assumed but measured (Health).
package over

import (
	"fmt"

	"nowover/internal/graph"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

// Params sets the degree discipline of the overlay.
type Params struct {
	// TargetDegree is the number of edges a new vertex acquires
	// (Theta(log^{1+alpha} N)).
	TargetDegree int
	// DegreeCap is the hard maximum degree (Property 2's c*log^{1+alpha}N).
	DegreeCap int
	// DegreeFloor triggers repair: after a removal, neighbors whose degree
	// drops below the floor draw replacement edges.
	DegreeFloor int
	// Repair enables the post-removal repair pass (ablation knob).
	Repair bool
}

func (p Params) validate() error {
	if p.TargetDegree < 1 {
		return fmt.Errorf("over: target degree %d < 1", p.TargetDegree)
	}
	if p.DegreeCap < p.TargetDegree {
		return fmt.Errorf("over: degree cap %d below target %d", p.DegreeCap, p.TargetDegree)
	}
	if p.DegreeFloor < 0 || p.DegreeFloor > p.TargetDegree {
		return fmt.Errorf("over: degree floor %d outside [0,%d]", p.DegreeFloor, p.TargetDegree)
	}
	return nil
}

// Picker supplies candidate edge endpoints for a vertex being wired; NOW
// backs it with uniform CTRWs on the overlay itself. ok=false means no
// candidate could be produced (e.g. the overlay is a single vertex).
type Picker func(from ids.ClusterID) (ids.ClusterID, bool)

// Overlay is the maintained expander. Not safe for concurrent use.
type Overlay struct {
	params Params
	g      *graph.Graph[ids.ClusterID]
}

// New returns an empty overlay with the given degree discipline.
func New(params Params) (*Overlay, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return &Overlay{params: params, g: graph.New[ids.ClusterID]()}, nil
}

// Params returns the degree discipline.
func (o *Overlay) Params() Params { return o.params }

// Graph exposes the underlying graph for structural analysis. Callers must
// not mutate it.
func (o *Overlay) Graph() *graph.Graph[ids.ClusterID] { return o.g }

// NumVertices returns the overlay order.
func (o *Overlay) NumVertices() int { return o.g.NumVertices() }

// NumEdges returns the overlay size.
func (o *Overlay) NumEdges() int { return o.g.NumEdges() }

// Degree returns a vertex degree.
func (o *Overlay) Degree(c ids.ClusterID) int { return o.g.Degree(c) }

// NeighborAt returns the i-th neighbor of c.
func (o *Overlay) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return o.g.NeighborAt(c, i) }

// Neighbors returns a copy of c's adjacency list.
func (o *Overlay) Neighbors(c ids.ClusterID) []ids.ClusterID { return o.g.Neighbors(c) }

// Has reports whether c is an overlay vertex.
func (o *Overlay) Has(c ids.ClusterID) bool { return o.g.HasVertex(c) }

// Vertices returns the overlay vertices in insertion order.
func (o *Overlay) Vertices() []ids.ClusterID { return o.g.Vertices() }

// VertexAt returns the i-th overlay vertex in insertion order without
// copying the vertex list; 0 <= i < NumVertices.
func (o *Overlay) VertexAt(i int) ids.ClusterID { return o.g.VertexAt(i) }

// Bootstrap installs the initial Erdos-Renyi overlay over the given
// vertices with edge probability p, then adds a deterministic spanning
// chain between connected components so the walk-based machinery is usable
// even in small regimes where G(n,p) is disconnected (at the paper's scales
// the chain adds no edges w.h.p.). Returns the number of patch edges added.
func (o *Overlay) Bootstrap(r *xrand.Rand, vertices []ids.ClusterID, p float64) (int, error) {
	if o.g.NumVertices() != 0 {
		return 0, fmt.Errorf("over: bootstrap on non-empty overlay")
	}
	for _, v := range vertices {
		o.g.AddVertex(v)
	}
	if err := graph.ErdosRenyi(o.g, r, vertices, p); err != nil {
		return 0, err
	}
	patches := 0
	comps := o.g.Components()
	for i := 1; i < len(comps); i++ {
		// Link an arbitrary representative of each component to the first.
		if err := o.g.AddEdge(comps[0][0], comps[i][0]); err != nil {
			return patches, err
		}
		patches++
	}
	return patches, nil
}

// Add inserts vertex c and wires it to up to TargetDegree distinct
// endpoints obtained from pick, skipping self, duplicates and saturated
// endpoints (degree >= cap). attemptBudget bounds pick calls so a saturated
// or tiny overlay cannot loop forever. It charges one inter-cluster
// announcement per created edge. Returns the number of edges created.
func (o *Overlay) Add(led *metrics.Ledger, c ids.ClusterID, pick Picker, attemptBudget int) (int, error) {
	if o.g.HasVertex(c) {
		return 0, fmt.Errorf("over: add of existing vertex %v", c)
	}
	o.g.AddVertex(c)
	added := 0
	for attempts := 0; added < o.params.TargetDegree && attempts < attemptBudget; attempts++ {
		t, ok := pick(c)
		if !ok {
			break
		}
		if t == c || !o.g.HasVertex(t) || o.g.HasEdge(c, t) {
			continue
		}
		if o.g.Degree(t) >= o.params.DegreeCap {
			continue // redirect away from saturated vertices
		}
		if err := o.g.AddEdge(c, t); err != nil {
			return added, err
		}
		led.Charge(metrics.ClassInterCluster, 1)
		added++
	}
	return added, nil
}

// Remove deletes vertex c and, when Repair is enabled, tops the degree of
// every former neighbor that fell below DegreeFloor back up to the floor
// using pick. Returns the number of repair edges created.
func (o *Overlay) Remove(led *metrics.Ledger, c ids.ClusterID, pick Picker, attemptBudget int) (int, error) {
	if !o.g.HasVertex(c) {
		return 0, fmt.Errorf("over: remove of missing vertex %v", c)
	}
	former := o.g.Neighbors(c)
	o.g.RemoveVertex(c)
	if !o.params.Repair {
		return 0, nil
	}
	repaired := 0
	for _, u := range former {
		for attempts := 0; o.g.Degree(u) < o.params.DegreeFloor && attempts < attemptBudget; attempts++ {
			t, ok := pick(u)
			if !ok {
				break
			}
			if t == u || !o.g.HasVertex(t) || o.g.HasEdge(u, t) {
				continue
			}
			if o.g.Degree(t) >= o.params.DegreeCap {
				continue
			}
			if err := o.g.AddEdge(u, t); err != nil {
				return repaired, err
			}
			led.Charge(metrics.ClassInterCluster, 1)
			repaired++
		}
	}
	return repaired, nil
}

// Health is a structural audit of the two OVER properties.
type Health struct {
	Vertices    int
	Edges       int
	MinDegree   int
	MaxDegree   int
	MeanDegree  float64
	Connected   bool
	SpectralGap float64 // lazy-walk spectral gap (0 if not computed)
	IsoEstimate float64 // upper-bound estimate of the isoperimetric constant
	IsoExact    float64 // exact value for small overlays, else -1
}

// CheckHealth computes the audit; spectral and isoperimetric estimates are
// randomized and controlled by r. Exact isoperimetric runs only for tiny
// overlays.
func (o *Overlay) CheckHealth(r *xrand.Rand, spectralIters, randomCuts int) Health {
	h := Health{
		Vertices:   o.g.NumVertices(),
		Edges:      o.g.NumEdges(),
		MinDegree:  o.g.MinDegree(),
		MaxDegree:  o.g.MaxDegree(),
		MeanDegree: o.g.MeanDegree(),
		Connected:  o.g.Connected(),
		IsoExact:   -1,
	}
	if spectralIters > 0 {
		h.SpectralGap = o.g.SpectralGap(r, spectralIters)
	}
	if randomCuts > 0 {
		h.IsoEstimate = o.g.EstimateIsoperimetric(r, randomCuts)
	}
	if exact := o.g.ExactIsoperimetric(); exact >= 0 {
		h.IsoExact = exact
	}
	return h
}
