package over

import (
	"testing"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

func params() Params {
	return Params{TargetDegree: 6, DegreeCap: 18, DegreeFloor: 3, Repair: true}
}

func bootstrapped(t *testing.T, n int, p float64) (*Overlay, []ids.ClusterID) {
	t.Helper()
	o, err := New(params())
	if err != nil {
		t.Fatal(err)
	}
	var vs []ids.ClusterID
	for i := 0; i < n; i++ {
		vs = append(vs, ids.ClusterID(i))
	}
	if _, err := o.Bootstrap(xrand.New(1), vs, p); err != nil {
		t.Fatal(err)
	}
	return o, vs
}

// uniformPicker returns a Picker drawing uniformly from live vertices —
// the idealized stand-in for the CTRW-based picker NOW provides.
func uniformPicker(o *Overlay, r *xrand.Rand) Picker {
	return func(ids.ClusterID) (ids.ClusterID, bool) {
		vs := o.Vertices()
		if len(vs) == 0 {
			return 0, false
		}
		return vs[r.Intn(len(vs))], true
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{TargetDegree: 0, DegreeCap: 5, DegreeFloor: 0},
		{TargetDegree: 5, DegreeCap: 4, DegreeFloor: 2},
		{TargetDegree: 5, DegreeCap: 10, DegreeFloor: 6},
		{TargetDegree: 5, DegreeCap: 10, DegreeFloor: -1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("accepted invalid %+v", p)
		}
	}
}

func TestBootstrapConnectivityPatch(t *testing.T) {
	// p=0 forces a totally disconnected ER draw; the patch chain must
	// connect it.
	o, _ := bootstrapped(t, 10, 0)
	if !o.Graph().Connected() {
		t.Fatal("bootstrap left overlay disconnected")
	}
	if o.NumEdges() != 9 {
		t.Errorf("patch edges = %d, want 9", o.NumEdges())
	}
}

func TestBootstrapDensity(t *testing.T) {
	o, _ := bootstrapped(t, 100, 6.0/99)
	mean := o.Graph().MeanDegree()
	if mean < 4 || mean > 8 {
		t.Errorf("mean degree %.2f, want ~6", mean)
	}
	if !o.Graph().Connected() {
		t.Error("overlay disconnected at target density")
	}
}

func TestBootstrapTwiceFails(t *testing.T) {
	o, vs := bootstrapped(t, 10, 0.5)
	if _, err := o.Bootstrap(xrand.New(2), vs, 0.5); err == nil {
		t.Error("second bootstrap accepted")
	}
}

func TestAddWiresToTarget(t *testing.T) {
	o, _ := bootstrapped(t, 50, 6.0/49)
	r := xrand.New(3)
	var led metrics.Ledger
	c := ids.ClusterID(100)
	added, err := o.Add(&led, c, uniformPicker(o, r), 100)
	if err != nil {
		t.Fatal(err)
	}
	if added != o.Params().TargetDegree {
		t.Errorf("added %d edges, want %d", added, o.Params().TargetDegree)
	}
	if o.Degree(c) != added {
		t.Errorf("degree %d != added %d", o.Degree(c), added)
	}
	if led.MessagesBy(metrics.ClassInterCluster) != int64(added) {
		t.Errorf("charged %d, want %d", led.MessagesBy(metrics.ClassInterCluster), added)
	}
}

func TestAddDuplicateVertexFails(t *testing.T) {
	o, vs := bootstrapped(t, 10, 0.5)
	var led metrics.Ledger
	if _, err := o.Add(&led, vs[0], uniformPicker(o, xrand.New(4)), 10); err == nil {
		t.Error("Add of existing vertex accepted")
	}
}

func TestAddRespectsCap(t *testing.T) {
	// Tiny overlay where everyone is saturated: Add must stop short
	// rather than violate the cap.
	o, err := New(Params{TargetDegree: 2, DegreeCap: 2, DegreeFloor: 1, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	vs := []ids.ClusterID{0, 1, 2}
	if _, err := o.Bootstrap(xrand.New(5), vs, 1); err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	_, err = o.Add(&led, 9, uniformPicker(o, xrand.New(6)), 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range o.Vertices() {
		if o.Degree(v) > o.Params().DegreeCap {
			t.Errorf("vertex %v degree %d exceeds cap", v, o.Degree(v))
		}
	}
}

func TestRemoveRepairsFloor(t *testing.T) {
	o, _ := bootstrapped(t, 60, 6.0/59)
	r := xrand.New(7)
	var led metrics.Ledger
	// Remove a batch of vertices; all survivors must stay at or above the
	// floor (repair) and below the cap.
	vs := o.Vertices()
	for _, c := range vs[:20] {
		if _, err := o.Remove(&led, c, uniformPicker(o, r), 200); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range o.Vertices() {
		if d := o.Degree(v); d < o.Params().DegreeFloor {
			t.Errorf("vertex %v degree %d below floor %d after repairs", v, d, o.Params().DegreeFloor)
		}
		if d := o.Degree(v); d > o.Params().DegreeCap {
			t.Errorf("vertex %v degree %d above cap", v, d)
		}
	}
}

func TestRemoveWithoutRepair(t *testing.T) {
	p := params()
	p.Repair = false
	o, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	vs := []ids.ClusterID{0, 1, 2, 3}
	if _, err := o.Bootstrap(xrand.New(8), vs, 1); err != nil {
		t.Fatal(err)
	}
	var led metrics.Ledger
	repaired, err := o.Remove(&led, 0, uniformPicker(o, xrand.New(9)), 50)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Errorf("repair ran with Repair=false: %d edges", repaired)
	}
	if o.Degree(1) != 2 {
		t.Errorf("degree after unrepaired removal = %d, want 2", o.Degree(1))
	}
}

func TestRemoveMissingVertexFails(t *testing.T) {
	o, _ := bootstrapped(t, 5, 1)
	var led metrics.Ledger
	if _, err := o.Remove(&led, 99, uniformPicker(o, xrand.New(10)), 10); err == nil {
		t.Error("Remove of missing vertex accepted")
	}
}

func TestChurnMaintainsExpansion(t *testing.T) {
	// The OVER claim in miniature: after hundreds of random
	// additions/removals, the overlay stays connected with a healthy
	// spectral gap and bounded degrees.
	o, _ := bootstrapped(t, 80, 6.0/79)
	r := xrand.New(11)
	var led metrics.Ledger
	next := 1000
	for step := 0; step < 400; step++ {
		vs := o.Vertices()
		if r.Bool(0.5) && len(vs) > 40 {
			victim := vs[r.Intn(len(vs))]
			if _, err := o.Remove(&led, victim, uniformPicker(o, r), 100); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := o.Add(&led, ids.ClusterID(next), uniformPicker(o, r), 100); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	h := o.CheckHealth(r, 100, 50)
	if !h.Connected {
		t.Fatal("overlay disconnected after churn")
	}
	if h.MaxDegree > o.Params().DegreeCap {
		t.Errorf("max degree %d exceeds cap %d", h.MaxDegree, o.Params().DegreeCap)
	}
	if h.SpectralGap < 0.05 {
		t.Errorf("spectral gap %.4f collapsed", h.SpectralGap)
	}
	if h.IsoEstimate <= 0 {
		t.Errorf("isoperimetric estimate %v", h.IsoEstimate)
	}
}

func TestCheckHealthSmallExact(t *testing.T) {
	o, _ := bootstrapped(t, 8, 1) // K8
	h := o.CheckHealth(xrand.New(12), 50, 20)
	if h.IsoExact != 4 { // I(K8) = 4*4/4 = 4 at balanced cut
		t.Errorf("exact iso = %v, want 4", h.IsoExact)
	}
	if h.MinDegree != 7 || h.MaxDegree != 7 {
		t.Errorf("degrees = [%d,%d], want [7,7]", h.MinDegree, h.MaxDegree)
	}
}
