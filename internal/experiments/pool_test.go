package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// sampleModes is the cost-accounting mode axis both determinism
// regressions sweep; a new mode added here is exercised by both.
var sampleModes = []struct {
	name  string
	exact bool
}{{"sketch", false}, {"exact", true}}

// TestParallelMatchesSerial is the determinism regression test for the
// worker-pool runner: a fast subset of E1-E12 (covering every cell shape
// — grid sweeps, per-trial folds, multi-row fragments, heterogeneous
// sections) must produce byte-identical tables serially and with many
// workers racing on the pool. It runs in BOTH cost-accounting modes, so
// the sketch-mode rendering path (Dist quantile columns in E6/E12/A1)
// carries the same byte-identity guarantee as the exact path.
func TestParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	s := Scale{
		Ns:        []int{256, 512},
		OpsFactor: 0.25,
		Trials:    2,
		Walks:     40,
		Seed:      7,
	}
	subset := []string{"E1", "E2", "E3", "E6", "E8", "E9", "E11", "E12", "A1"}
	reg := Registry()
	for _, mode := range sampleModes {
		s := s
		s.ExactSamples = mode.exact
		for _, id := range subset {
			id := id
			t.Run(mode.name+"/"+id, func(t *testing.T) {
				SetParallelism(1)
				serial, err := reg[id](s)
				if err != nil {
					t.Fatalf("serial run failed: %v", err)
				}
				SetParallelism(8)
				parallel, err := reg[id](s)
				if err != nil {
					t.Fatalf("parallel run failed: %v", err)
				}
				if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
					t.Errorf("rows diverge between serial and parallel runs:\nserial:   %v\nparallel: %v",
						serial.Rows, parallel.Rows)
				}
				if !reflect.DeepEqual(serial.Notes, parallel.Notes) {
					t.Errorf("notes diverge:\nserial:   %v\nparallel: %v", serial.Notes, parallel.Notes)
				}
				var sb, pb bytes.Buffer
				if err := serial.Render(&sb); err != nil {
					t.Fatal(err)
				}
				if err := parallel.Render(&pb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Errorf("rendered tables not byte-identical:\n--- serial ---\n%s--- parallel ---\n%s",
						sb.String(), pb.String())
				}
			})
		}
	}
}

// TestCrossExperimentParallelMatchesSerial is the determinism regression
// for the cross-experiment fan-out (RunMany, behind cmd/nowbench): a
// subset of experiments run one-at-a-time serially must render
// byte-identical tables to the same subset racing each other — and their
// own cells — on a many-worker pool, in the requested order. This guards
// the global state RunMany composes over (the parallelism knob, the
// registry, per-experiment world seeding) against cross-experiment
// leakage. Both cost-accounting modes run, covering the sketch-mode
// rendering path (E6/E12 quantile columns).
func TestCrossExperimentParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	s := Scale{
		Ns:        []int{256, 512},
		OpsFactor: 0.25,
		Trials:    2,
		Walks:     40,
		Seed:      7,
	}
	subset := []string{"E1", "E3", "E6", "E8", "E9", "E12", "A1"}
	reg := Registry()
	for _, mode := range sampleModes {
		s := s
		s.ExactSamples = mode.exact
		t.Run(mode.name, func(t *testing.T) {
			SetParallelism(1)
			serial := make([]*Table, len(subset))
			for i, id := range subset {
				tbl, err := reg[id](s)
				if err != nil {
					t.Fatalf("serial %s failed: %v", id, err)
				}
				serial[i] = tbl
			}
			SetParallelism(8)
			parallel, err := RunMany(subset, s)
			if err != nil {
				t.Fatalf("parallel sweep failed: %v", err)
			}
			for i, id := range subset {
				if parallel[i].ID != id {
					t.Fatalf("slot %d holds table %s, want %s (order lost)", i, parallel[i].ID, id)
				}
				var sb, pb bytes.Buffer
				if err := serial[i].Render(&sb); err != nil {
					t.Fatal(err)
				}
				if err := parallel[i].Render(&pb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Errorf("%s tables not byte-identical:\n--- serial ---\n%s--- parallel ---\n%s",
						id, sb.String(), pb.String())
				}
			}
		})
	}
}

func TestRunManyUnknownExperiment(t *testing.T) {
	if _, err := RunMany([]string{"E1", "nope"}, QuickScale()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestRunManyErrorDeterministic: with several failing experiments the
// lowest-indexed failure is reported, as a serial sweep would.
func TestRunManyErrorDeterministic(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	// An impossible scale makes every experiment fail fast: OpsFactor 0
	// yields zero-step runs only for experiments that require steps; use a
	// bogus N below the minimum instead, which every runner rejects.
	s := Scale{Ns: []int{1}, OpsFactor: 0.1, Trials: 1, Walks: 1, Seed: 1}
	_, err := RunMany([]string{"E1", "E2"}, s)
	if err == nil {
		t.Fatal("sub-minimum N accepted")
	}
	if !strings.HasPrefix(err.Error(), "E1:") {
		t.Fatalf("error %q does not name the lowest-indexed failing experiment", err)
	}
}

func TestMapCellsOrdering(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	const count = 100
	out, err := mapCells(count, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != count {
		t.Fatalf("got %d results, want %d", len(out), count)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestMapCellsError(t *testing.T) {
	defer SetParallelism(0)
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		SetParallelism(workers)
		_, err := mapCells(10, func(i int) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: got %v, want the cell error", workers, err)
		}
	}
}

// TestMapCellsErrorDeterministic pins the error-path contract: with
// several failing cells, the lowest-indexed failure is reported at any
// parallelism — the same error a serial run returns.
func TestMapCellsErrorDeterministic(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 8} {
		SetParallelism(workers)
		for rep := 0; rep < 20; rep++ {
			_, err := mapCells(32, func(i int) (int, error) {
				if i == 5 || i == 20 || i == 31 {
					return 0, fmt.Errorf("cell %d failed", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "cell 5 failed" {
				t.Fatalf("workers=%d rep=%d: got %v, want the lowest-indexed failure", workers, rep, err)
			}
		}
	}
}

func TestMapCellsPanicBecomesError(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 8} {
		SetParallelism(workers)
		_, err := mapCells(4, func(i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was not converted to an error", workers)
		}
	}
}

func TestMapCellsEmpty(t *testing.T) {
	out, err := mapCells(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	const count = 50
	var hits [count]int32
	if err := ForEach(count, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d ran %d times", i, h)
		}
	}
}

func TestParallelismKnob(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("SetParallelism(3) -> Parallelism() = %d", got)
	}
	SetParallelism(1)
	if got := Parallelism(); got != 1 {
		t.Errorf("SetParallelism(1) -> Parallelism() = %d", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Errorf("default Parallelism() = %d, want >= 1", got)
	}
}

func TestParseParallelEnv(t *testing.T) {
	for _, tc := range []struct {
		in      string
		workers int
		ok      bool
	}{
		{"", 0, false},
		{"garbage", 0, false},
		{"-2", 0, false},
		{"0", 1, true},
		{"off", 1, true},
		{"false", 1, true},
		{"no", 1, true},
		{"4", 4, true},
		{" 6 ", 6, true},
	} {
		workers, ok := parseParallelEnv(tc.in)
		if ok != tc.ok || (ok && workers != tc.workers) {
			t.Errorf("parseParallelEnv(%q) = (%d, %v), want (%d, %v)",
				tc.in, workers, ok, tc.workers, tc.ok)
		}
	}
	// "on"-style values resolve to GOMAXPROCS: just require >= 1.
	for _, v := range []string{"on", "true", "yes", "auto"} {
		workers, ok := parseParallelEnv(v)
		if !ok || workers < 1 {
			t.Errorf("parseParallelEnv(%q) = (%d, %v), want enabled", v, workers, ok)
		}
	}
}

func TestGridCells(t *testing.T) {
	cells := gridCells([]int{1, 2}, []string{"a", "b", "c"})
	want := []pair[int, string]{{1, "a"}, {1, "b"}, {1, "c"}, {2, "a"}, {2, "b"}, {2, "c"}}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("gridCells = %v, want %v", cells, want)
	}
}

func TestFragmentSplice(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Claim: "c", Columns: []string{"a", "b"}}
	frag := tbl.Fragment()
	if frag.ID != tbl.ID || len(frag.Rows) != 0 {
		t.Fatalf("fragment not empty: %+v", frag)
	}
	frag.AddRow(1, 2)
	frag.Notes = append(frag.Notes, "n1")
	tbl.Splice(frag)
	if len(tbl.Rows) != 1 || len(tbl.Notes) != 1 {
		t.Errorf("splice lost data: rows=%d notes=%d", len(tbl.Rows), len(tbl.Notes))
	}
	if fmt.Sprint(tbl.Rows[0]) != "[1 2]" {
		t.Errorf("row content %v", tbl.Rows[0])
	}
}
