package experiments

// Resumable sweep cells: a per-cell result journal that lets a long
// nowbench sweep survive interruption. Every completed RunCells cell —
// the per-size / per-trial unit the worker pool schedules — appends one
// JSON line holding the cell's table rows, notes and aux vector. On the
// next run with the same journal, cells found in the journal are served
// from it instead of re-simulating, so a killed 2^20 sweep resumes from
// its last completed cell. Because a cell's record is exactly what it
// contributes to the assembled table (pre-rendered rows plus the aux
// floats cross-cell notes are fitted from), a resumed run's tables are
// byte-identical to an uninterrupted one.
//
// Crash tolerance: records are newline-terminated appends; a process
// killed mid-write leaves at most one truncated final line, which the
// loader drops (that cell simply re-runs). A malformed line anywhere
// else is reported as corruption, not skipped. The journal's first line
// is a fingerprint of the run configuration (scale grid, seeds, modes);
// resuming under any other configuration is refused rather than mixing
// incompatible cells.
//
// The journal file itself is not byte-deterministic — lines land in cell
// completion order, which depends on worker scheduling — but its CONTENT
// is: one record per key, each deterministic in the run seed. Consumers
// (resume, BenchJSON) are order-independent.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Journal     string `json:"journal"`
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
}

// cellRecord is one completed cell.
type cellRecord struct {
	Key   string     `json:"key"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
	Aux   []float64  `json:"aux,omitempty"`
	// Ms is the cell's wall-clock in milliseconds, from the clock the
	// opener injected (0 without one). It feeds benchmark trajectories
	// (BENCH_2e20.json), never tables, so it does not break resume
	// equivalence.
	Ms int64 `json:"ms,omitempty"`
}

// Journal is an open cell journal. Safe for concurrent use by the worker
// pool.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	cells map[string]*cellRecord
	now   func() int64 // millisecond clock, nil = no timing
}

const journalMagic = "nowbench-cells"

// activeJournal is the journal RunCells consults; nil disables
// checkpointing. Guarded by activeMu: it is set once before a sweep and
// cleared after, but tests open and close journals repeatedly.
var (
	activeMu      sync.Mutex
	activeJournal *Journal
)

// OpenJournal opens (creating or resuming) the cell journal at path and
// installs it for subsequent experiment runs. fingerprint must capture
// everything the cells' results depend on (scale grid, seed, sample mode,
// shard/cascade flavor); a journal recorded under a different fingerprint
// is refused. nowMillis supplies per-cell wall-clock timing for benchmark
// trajectories; nil records 0.
func OpenJournal(path, fingerprint string, nowMillis func() int64) error {
	j, err := loadJournal(path, fingerprint)
	if err != nil {
		return err
	}
	j.now = nowMillis
	activeMu.Lock()
	defer activeMu.Unlock()
	if activeJournal != nil {
		j.f.Close()
		return fmt.Errorf("experiments: a journal is already open")
	}
	activeJournal = j
	return nil
}

// CloseJournal uninstalls and closes the active journal (no-op when none
// is open).
func CloseJournal() error {
	activeMu.Lock()
	defer activeMu.Unlock()
	if activeJournal == nil {
		return nil
	}
	err := activeJournal.f.Close()
	activeJournal = nil
	return err
}

func currentJournal() *Journal {
	activeMu.Lock()
	defer activeMu.Unlock()
	return activeJournal
}

// loadJournal reads an existing journal (validating its header and every
// complete record) or creates a fresh one, and leaves the file open for
// appends.
func loadJournal(path, fingerprint string) (*Journal, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, cerr := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if cerr != nil {
			return nil, cerr
		}
		hdr, herr := json.Marshal(journalHeader{Journal: journalMagic, V: 1, Fingerprint: fingerprint})
		if herr != nil {
			f.Close()
			return nil, fmt.Errorf("experiments: journal header: %w", herr)
		}
		if _, werr := f.Write(append(hdr, '\n')); werr != nil {
			f.Close()
			return nil, werr
		}
		// Sync the header before any cell is recorded: "crash-tolerant"
		// must mean power-loss-tolerant, not just kill-9-tolerant — a
		// buffered header that never reached the disk would make every
		// synced cell after it unreadable.
		if serr := f.Sync(); serr != nil {
			f.Close()
			return nil, fmt.Errorf("experiments: journal header sync: %w", serr)
		}
		return &Journal{f: f, cells: make(map[string]*cellRecord)}, nil
	case err != nil:
		return nil, err
	}

	lines := strings.Split(string(data), "\n")
	// A crash mid-append leaves a final line without its terminating
	// newline; never treat that fragment as corruption — drop it and let
	// the cell re-run. (A cleanly written file ends with "\n", so the
	// final split element is empty and dropping it is a no-op.)
	lines = lines[:len(lines)-1]
	if len(lines) == 0 {
		return nil, fmt.Errorf("experiments: journal %s: empty header", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Journal != journalMagic {
		return nil, fmt.Errorf("experiments: journal %s: not a nowbench cell journal", path)
	}
	if hdr.V != 1 {
		return nil, fmt.Errorf("experiments: journal %s: unsupported version %d", path, hdr.V)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, fmt.Errorf("experiments: journal %s was recorded for a different run configuration (journal %q, this run %q); delete it or point -checkpoint elsewhere",
			path, hdr.Fingerprint, fingerprint)
	}
	// The trim above already dropped a truncated final record (its line
	// had no terminating newline); every remaining line must parse.
	cells := make(map[string]*cellRecord, len(lines)-1)
	for i, line := range lines[1:] {
		rec := &cellRecord{}
		if err := json.Unmarshal([]byte(line), rec); err != nil || rec.Key == "" {
			return nil, fmt.Errorf("experiments: journal %s: corrupt record on line %d", path, i+2)
		}
		cells[rec.Key] = rec
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, cells: cells}, nil
}

// lookup returns the journaled record for key, if any.
func (j *Journal) lookup(key string) (*cellRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.cells[key]
	return rec, ok
}

// record persists one completed cell. The line is written AND fsynced
// before the cell is considered checkpointed, so neither a crash nor a
// power loss after record returns can lose it.
func (j *Journal) record(rec *cellRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("experiments: journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("experiments: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiments: journal sync: %w", err)
	}
	j.cells[rec.Key] = rec
	return nil
}

// millis reads the injected clock (0 without one).
func (j *Journal) millis() int64 {
	if j.now == nil {
		return 0
	}
	return j.now()
}

// BenchPoint is one cell's timing in a benchmark trajectory.
type BenchPoint struct {
	Key string `json:"key"`
	Ms  int64  `json:"ms"`
}

// BenchTrajectory summarizes the active journal's per-cell timings, keys
// sorted, for BENCH_*.json emission: future changes prove speedups against
// a recorded trajectory instead of asserting them.
func BenchTrajectory() (points []BenchPoint, totalMs int64, ok bool) {
	j := currentJournal()
	if j == nil {
		return nil, 0, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	points = make([]BenchPoint, 0, len(j.cells))
	for key, rec := range j.cells {
		points = append(points, BenchPoint{Key: key, Ms: rec.Ms})
		totalMs += rec.Ms
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Key < points[j].Key })
	return points, totalMs, true
}

// fragRecord converts a completed fragment into its journal record.
func fragRecord(key string, frag *Table, ms int64) *cellRecord {
	rec := &cellRecord{Key: key, Rows: frag.Rows, Notes: frag.Notes, Aux: frag.Aux, Ms: ms}
	if rec.Rows == nil {
		rec.Rows = [][]string{}
	}
	return rec
}

// recordFrag reconstitutes a journaled cell as a table fragment.
func (rec *cellRecord) frag(t *Table) *Table {
	frag := t.Fragment()
	frag.Rows = rec.Rows
	frag.Notes = rec.Notes
	frag.Aux = rec.Aux
	return frag
}

// testCellInterrupt, when non-nil, is consulted before each live cell run;
// returning an error aborts the sweep exactly as a kill signal between
// cell completions would. Checkpoint equivalence tests use it to
// deterministically "die" mid-sweep.
var testCellInterrupt func(key string) error

// ReadJournalKeys reports the cell keys currently recorded in the journal
// at path, without installing it (diagnostics and tests).
func ReadJournalKeys(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	var keys []string
	for i, line := range lines[1:] {
		if line == "" || (i == len(lines)-2 && !strings.HasSuffix(string(data), "\n")) {
			continue
		}
		var rec cellRecord
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Key != "" {
			keys = append(keys, rec.Key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}
