package experiments

import (
	"fmt"
	"math"

	"nowover/internal/core"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/sim"
	"nowover/internal/xrand"
)

// E1HonestyUnderChurn tests Theorem 3: over a polynomially long churn
// sequence, every cluster keeps more than two thirds honest nodes w.h.p.
// For each (N, tau) it runs OpsFactor*N steady-churn time steps and
// reports the worst per-cluster Byzantine fraction ever observed, the
// number of >=1/3 and >=1/2 transitions, and the fraction of steps spent
// with any insecure cluster.
func E1HonestyUnderChurn(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Cluster honesty under sustained Byzantine churn",
		Claim: "Theorem 3: whp every cluster stays > 2/3 honest at every step of a poly(N) join/leave sequence (tau <= 1/3 - eps)",
		Columns: []string{"N", "tau", "steps", "maxByzFrac", "degradedEvents",
			"capturedEvents", "degradedStep%", "capturedStep%"},
	}
	taus := []float64{0.10, 0.20, 0.30}
	cells := gridCells(s.Ns, taus)
	if err := t.RunCells(len(cells), func(i int, frag *Table) error {
		n, tau := cells[i].a, cells[i].b
		cfg := sim.Config{
			Core:        core.DefaultConfig(n),
			InitialSize: n / 2,
			Tau:         tau,
			Steps:       int(s.OpsFactor * float64(n)),
			Seed:        s.Seed,
		}
		cfg.Core.Seed = s.Seed
		// "k large enough" regime: the smallest tolerated cluster is
		// K*log2(N)/L; K=4, L=1.6 pushes Lemma 1's tail below the
		// re-roll budget at tau <= 0.2 even for the smallest N here.
		cfg.Core.K = 4
		cfg.Core.L = 1.6
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		res, err := runner.Run()
		if err != nil {
			return err
		}
		frag.AddRow(n, tau, res.Steps,
			res.Stats.MaxByzFractionEver,
			res.Stats.DegradedEvents,
			res.Stats.CapturedEvents,
			100*float64(res.DegradedSteps)/float64(res.Steps),
			100*float64(res.CapturedSteps)/float64(res.Steps))
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"run at K=4, L=1.6 (the theorem's 'k large enough'); expect a gradient: clean at tau=0.1, marginal at 0.2, failing at 0.3 where the 1/3-eps margin is gone",
		"captured events (>= 1/2 Byzantine clusters) are full protocol failures; degraded (>= 1/3) marks the quorum rule at risk",
		"E12 charts the same failure rates against K — the knob that buys the w.h.p.")
	return t, nil
}

// E2PostExchangeTail tests Lemma 1: right after a cluster exchanges all
// its nodes, P(p_C > tau(1+eps)) <= N^-gamma. It sweeps the security
// parameter K, measures the empirical tail over repeated exchanges, and
// compares with the Chernoff bound exp(-eps^2 tau |C| / 3).
func E2PostExchangeTail(s Scale) (*Table, error) {
	const tau, eps = 0.30, 0.50
	t := &Table{
		ID:    "E2",
		Title: "Post-exchange Byzantine fraction tail vs Chernoff bound",
		Claim: "Lemma 1: after a full exchange, P(p_C > tau(1+eps)) <= n^-gamma for k large enough",
		Columns: []string{"N", "K", "|C|", "exchanges", "meanFrac",
			"P(frac>tau(1+eps))", "chernoffBound"},
	}
	n := s.Ns[len(s.Ns)-1]
	ks := []float64{1, 2, 3, 4}
	if err := t.RunCells(len(ks), func(i int, frag *Table) error {
		k := ks[i]
		cfg := core.DefaultConfig(n)
		cfg.K = k
		cfg.Seed = s.Seed
		w, err := core.NewWorld(cfg)
		if err != nil {
			return err
		}
		byzBudget := int(tau * float64(n/2))
		if err := w.Bootstrap(n/2, func(slot int) bool { return slot < byzBudget }); err != nil {
			return err
		}
		clusters := w.Clusters()
		target := clusters[0]
		trials := 40 * s.Trials
		var mean metrics.Welford
		exceed := 0
		for i := 0; i < trials; i++ {
			if err := w.ForceExchange(target); err != nil {
				return err
			}
			frac := float64(w.Byz(target)) / float64(w.Size(target))
			mean.Add(frac)
			if frac > tau*(1+eps) {
				exceed++
			}
		}
		size := w.Size(target)
		bound := math.Exp(-eps * eps * tau * float64(size) / 3)
		frag.AddRow(n, k, size, trials, mean.Mean(),
			float64(exceed)/float64(trials), bound)
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the empirical tail must decay with K (cluster size) and stay below the bound; eps=0.5 keeps the Chernoff expression non-vacuous at laptop-scale cluster sizes",
		"tau(1+eps) = 0.45 here: the probability that one full exchange leaves a cluster nearly captured")
	return t, nil
}

// E3DriftRecovery tests Lemmas 2-3: a cluster polluted above tau recovers
// below tau(1+eps/2) within O(log N) exchanges, and while between the
// thresholds never exceeds tau(1+eps) w.h.p.
func E3DriftRecovery(s Scale) (*Table, error) {
	const tau = 0.20
	t := &Table{
		ID:    "E3",
		Title: "Pollution decay: exchanges needed to shed concentrated Byzantine mass",
		Claim: "Lemmas 2-3: from a fraction near 1/3, O(log N) exchanges return the cluster below tau(1+eps/2) whp, without exceeding tau(1+eps) on the way",
		Columns: []string{"N", "p0", "trials", "meanRecovery(exch)",
			"p95Recovery", "logN", "maxFracSeen"},
	}
	// Fan out at per-trial granularity: every trial builds its own world
	// from a trial-derived seed, so trials of one (N, p0) cell run
	// concurrently; results are folded back in trial order.
	p0s := []float64{0.30, 0.40}
	type trialCell struct {
		n     int
		p0    float64
		trial int
	}
	type trialOut struct {
		steps   float64
		maxSeen float64
	}
	var cells []trialCell
	for _, n := range s.Ns {
		for _, p0 := range p0s {
			for trial := 0; trial < s.Trials; trial++ {
				cells = append(cells, trialCell{n, p0, trial})
			}
		}
	}
	outs, err := mapCells(len(cells), func(i int) (trialOut, error) {
		c := cells[i]
		cfg := core.DefaultConfig(c.n)
		cfg.Seed = s.Seed + uint64(c.trial)
		w, err := core.NewWorld(cfg)
		if err != nil {
			return trialOut{}, err
		}
		byzBudget := int(tau * float64(c.n/2))
		if err := w.Bootstrap(c.n/2, func(slot int) bool { return slot < byzBudget }); err != nil {
			return trialOut{}, err
		}
		target := w.Clusters()[0]
		if err := pollute(w, target, c.p0); err != nil {
			return trialOut{}, err
		}
		goal := tau * (1 + 0.5*0.5) // tau(1+eps/2) with eps=0.5
		steps := 0
		limit := 40 * int(math.Log2(float64(c.n)))
		maxSeen := 0.0
		for ; steps < limit; steps++ {
			frac := float64(w.Byz(target)) / float64(w.Size(target))
			if frac > maxSeen {
				maxSeen = frac
			}
			if frac <= goal {
				break
			}
			if err := w.ForceExchange(target); err != nil {
				return trialOut{}, err
			}
		}
		return trialOut{steps: float64(steps), maxSeen: maxSeen}, nil
	})
	if err != nil {
		return nil, err
	}
	next := 0
	for _, n := range s.Ns {
		for _, p0 := range p0s {
			rec := metrics.NewDist(s.ExactSamples)
			maxSeen := 0.0
			for trial := 0; trial < s.Trials; trial++ {
				out := outs[next]
				next++
				rec.Add(out.steps)
				if out.maxSeen > maxSeen {
					maxSeen = out.maxSeen
				}
			}
			t.AddRow(n, p0, rec.N(), rec.Mean(), rec.Quantile(0.95),
				math.Log2(float64(n)), maxSeen)
		}
	}
	t.Notes = append(t.Notes,
		"a single full exchange resamples every member uniformly, so recovery is expected in O(1) exchanges — well inside the lemmas' O(log N) budget of single-node exchanges")
	return t, nil
}

// pollute raises cluster c's Byzantine fraction to p0 by corrupting its
// honest members (and keeps the global budget by un-corrupting strays
// elsewhere).
func pollute(w *core.World, c ids.ClusterID, p0 float64) error {
	want := int(math.Ceil(p0 * float64(w.Size(c))))
	members := w.Members(c)
	r := xrand.New(0xBAD)
	for _, x := range members {
		if w.Byz(c) >= want {
			break
		}
		if !w.IsByzantine(x) {
			if err := w.SetCorrupted(x, true); err != nil {
				return err
			}
			// Keep the global count steady: release one Byzantine node
			// from elsewhere.
			for attempts := 0; attempts < 64; attempts++ {
				y, ok := w.RandomByzantineNode(r)
				if !ok {
					break
				}
				if cy, _ := w.ClusterOf(y); cy != c {
					if err := w.SetCorrupted(y, false); err != nil {
						return err
					}
					break
				}
			}
		}
	}
	if w.Byz(c) < want {
		return fmt.Errorf("experiments: could not pollute %v to %.2f", c, p0)
	}
	return nil
}
