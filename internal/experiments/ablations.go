package experiments

import (
	"nowover/internal/adversary"
	"nowover/internal/core"
	"nowover/internal/randnum"
	"nowover/internal/sim"
	"nowover/internal/workload"
)

// ablationRun executes one steady-churn run with a mutated config and
// returns the result; exact selects the per-operation cost accumulator
// mode (Scale.ExactSamples). opsPerStep > 1 switches the cell to the
// concurrent churn driver (Scale.OpsPerStep): per-operation cost
// sampling is unavailable there, so it is enabled only on the classic
// driver.
func ablationRun(n int, tau float64, steps int, seed uint64, exact bool, opsPerStep int,
	strategy adversary.Strategy, mutate func(*core.Config)) (*sim.Result, error) {
	cfg := sim.Config{
		Core:          core.DefaultConfig(n),
		InitialSize:   n / 2,
		Tau:           tau,
		Steps:         steps,
		Seed:          seed,
		Strategy:      strategy,
		SampleOpCosts: opsPerStep <= 1,
		ExactSamples:  exact,
		OpsPerStep:    opsPerStep,
	}
	cfg.Core.Seed = seed
	if mutate != nil {
		mutate(&cfg.Core)
	}
	runner, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return runner.Run()
}

// AblationMergeStrategy compares the paper's two inconsistent merge
// descriptions (DESIGN.md): absorb-random vs rejoin-all, on a shrinking
// network where merges dominate.
func AblationMergeStrategy(s Scale) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "Ablation: merge strategy (paper ambiguity)",
		Claim: "DESIGN.md: section 3.3 prose, Figure 2 and Algorithm 2 disagree on merge; both readings must preserve the invariants, differing only in cost",
		Columns: []string{"N", "strategy", "merges", "maxByzFrac", "captured",
			"leaveMsgs(mean)", "minDeg", "connected"},
	}
	n := s.Ns[len(s.Ns)-1]
	steps := int(s.OpsFactor * float64(n))
	strategies := []core.MergeStrategy{core.MergeAbsorbRandom, core.MergeRejoinAll}
	if err := t.RunCells(len(strategies), func(i int, frag *Table) error {
		strat := strategies[i]
		cfg := sim.Config{
			Core:          core.DefaultConfig(n),
			InitialSize:   n / 2,
			Tau:           0.20,
			Schedule:      workload.Linear{From: n / 2, To: n / 4, Steps: steps},
			Steps:         steps,
			Seed:          s.Seed,
			SampleOpCosts: true,
			ExactSamples:  s.ExactSamples,
		}
		cfg.Core.Seed = s.Seed
		cfg.Core.MergeStrategy = strat
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		res, err := runner.Run()
		if err != nil {
			return err
		}
		frag.AddRow(n, strat.String(), res.Stats.Merges,
			res.Stats.MaxByzFractionEver, res.Stats.CapturedEvents,
			res.OpCosts.LeaveMsgs.Mean(),
			res.Final.MinDegree, res.Final.OverlayConnected)
		return nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationLeaveCascade measures the Theorem 3 proof requirement that
// clusters receiving nodes from a leaving cluster also exchange ("we
// enforce C' to exchange all its nodes"): disabling the cascade cheapens
// leaves but weakens mixing under attack.
func AblationLeaveCascade(s Scale) (*Table, error) {
	t := &Table{
		ID:    "A2",
		Title: "Ablation: leave-cascade exchanges (Theorem 3 proof step)",
		Claim: "Theorem 3 proof: receivers of a leaving cluster's nodes must exchange too, else their composition is no longer a uniform sample",
		Columns: []string{"N", "cascade", "leaveMsgs(mean)", "maxByzFrac",
			"degradedDwell%", "capturedDwell%"},
	}
	n := s.Ns[len(s.Ns)-1]
	steps := int(s.OpsFactor * float64(n))
	cascades := []bool{true, false}
	if err := t.RunCells(len(cascades), func(i int, frag *Table) error {
		cascade := cascades[i]
		res, err := ablationRun(n, 0.25, steps, s.Seed, s.ExactSamples, s.OpsPerStep,
			&adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}},
			func(c *core.Config) {
				c.LeaveCascade = cascade
				c.K = 4
				c.L = 1.6
			})
		if err != nil {
			return err
		}
		// The batched driver does not sample per-operation costs; render
		// the column as absent rather than a NaN mean.
		leaveMsgs := any("-")
		if s.OpsPerStep <= 1 {
			leaveMsgs = res.OpCosts.LeaveMsgs.Mean()
		}
		frag.AddRow(n, cascade, leaveMsgs,
			res.Stats.MaxByzFractionEver,
			100*float64(res.DegradedSteps)/float64(res.Steps),
			100*float64(res.CapturedSteps)/float64(res.Steps))
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the cascade multiplies leave cost by ~|C| but keeps receiver clusters freshly mixed under targeted churn",
		"dwell (time spent with any insecure cluster) is the right comparison: more shuffling means more re-rolls, so raw transition counts would favor a frozen, persistently polluted system")
	return t, nil
}

// AblationDegreeRepair tests OVER's repair pass: without it, a shrinking
// overlay sheds degree and eventually expansion.
func AblationDegreeRepair(s Scale) (*Table, error) {
	t := &Table{
		ID:    "A3",
		Title: "Ablation: OVER degree repair on vertex removal",
		Claim: "OVER reconstruction (DESIGN.md): repairing neighbors below the degree floor preserves Properties 1-2 through removals",
		Columns: []string{"N", "repair", "minDeg", "maxDeg", "spectralGap",
			"isoEstimate", "connected"},
	}
	n := s.Ns[len(s.Ns)-1]
	steps := int(s.OpsFactor * float64(n))
	repairs := []bool{true, false}
	if err := t.RunCells(len(repairs), func(i int, frag *Table) error {
		repair := repairs[i]
		cfg := sim.Config{
			Core:        core.DefaultConfig(n),
			InitialSize: n / 2,
			Tau:         0.10,
			Schedule:    workload.Linear{From: n / 2, To: n / 5, Steps: steps},
			Steps:       steps,
			Seed:        s.Seed,
		}
		cfg.Core.Seed = s.Seed
		cfg.Core.OverlayRepair = repair
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		if _, err := runner.Run(); err != nil {
			return err
		}
		h := runner.World().OverlayHealth(60, 40)
		frag.AddRow(n, repair, h.MinDegree, h.MaxDegree, h.SpectralGap,
			h.IsoEstimate, h.Connected)
		return nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationCommitReveal swaps the idealized randNum for the biasable
// commit-reveal construction and lets the adversary steer: the measured
// gap quantifies how much the paper's (deferred) unbiasable construction
// actually buys.
func AblationCommitReveal(s Scale) (*Table, error) {
	t := &Table{
		ID:    "A4",
		Title: "Ablation: ideal randNum vs biasable commit-reveal under attack",
		Claim: "randNum's security claim (section 3.1): a last-revealer-biasable coin lets the adversary steer walks; the VSS-grade construction does not",
		Columns: []string{"N", "generator", "maxByzFrac", "degradedDwell%",
			"capturedDwell%", "hijackedWalks"},
	}
	n := s.Ns[len(s.Ns)-1] / 2
	steps := int(2 * s.OpsFactor * float64(n))
	gens := []struct {
		name string
		g    randnum.Generator
	}{
		{"ideal", randnum.Ideal{}},
		{"commit-reveal", randnum.CommitReveal{}},
	}
	if err := t.RunCells(len(gens), func(i int, frag *Table) error {
		gen := gens[i]
		cfg := sim.Config{
			Core:            core.DefaultConfig(n),
			InitialSize:     n / 2,
			Tau:             0.25,
			Strategy:        &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}},
			Steps:           steps,
			Seed:            s.Seed,
			InstallHijacker: true,
			OpsPerStep:      s.OpsPerStep,
		}
		cfg.Core.Seed = s.Seed
		cfg.Core.K = 3
		cfg.Core.Generator = gen.g
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		// Give the biasable generator an adversary objective: steer walks
		// toward the attack target. The installed hijacker already carries
		// the strategy's snapshot-scoped fixation, so its Score method IS
		// the steer function — one hook object, one batch lifecycle for
		// both redirect and steer decisions.
		if h := runner.Hijacker(); h != nil {
			runner.World().SetSteerHook(h)
		}
		res, err := runner.Run()
		if err != nil {
			return err
		}
		frag.AddRow(n, gen.name, res.Stats.MaxByzFractionEver,
			100*float64(res.DegradedSteps)/float64(res.Steps),
			100*float64(res.CapturedSteps)/float64(res.Steps),
			res.Stats.HijackedWalks)
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"commit-reveal should show elevated pollution of the attack target relative to the ideal generator — the cost of last-revealer bias")
	return t, nil
}
