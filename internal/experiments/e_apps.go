package experiments

import (
	"fmt"

	"nowover/internal/adversary"
	"nowover/internal/apps"
	"nowover/internal/baseline"
	"nowover/internal/core"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/sim"
	"nowover/internal/workload"
	"nowover/internal/xrand"
)

// E10Applications tests the section 6 claims: clustered broadcast at
// O~(n) vs O(n^2) flooding, sampling at polylog per sample, plus the
// aggregation service built the same way.
func E10Applications(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Application layer: broadcast, sampling, aggregation",
		Claim: "section 6: clustered broadcast O~(n) vs O(n^2) unclustered; sampling polylog(n) msgs per sample",
		Columns: []string{"n", "bcastMsgs", "floodingMsgs", "ratio",
			"sampleMsgs(mean)", "aggMsgs", "aggExact"},
	}
	if err := t.RunCells(len(s.Ns), func(i int, frag *Table) error {
		n := s.Ns[i]
		w, err := midWorld(n, 0.10, s.Seed, nil)
		if err != nil {
			return err
		}
		var led metrics.Ledger
		src := w.Clusters()[0]
		bc, err := apps.Broadcast(&led, w, src)
		if err != nil {
			return err
		}
		sampler, err := apps.NewSampler(w, w.Walker(), w.Generator(), w.MemberAt)
		if err != nil {
			return err
		}
		r := xrand.New(s.Seed ^ 0xE10)
		var sampleMsgs metrics.Welford
		samples := s.Walks / 4
		if samples < 20 {
			samples = 20
		}
		for i := 0; i < samples; i++ {
			contact, _ := w.RandomCluster(r)
			rep, err := sampler.Sample(&led, r, contact)
			if err != nil {
				return err
			}
			sampleMsgs.Add(float64(rep.Messages))
		}
		agg, err := apps.Aggregate(&led, w, src, func(ids.ClusterID, int) int64 { return 1 })
		if err != nil {
			return err
		}
		ok := agg.Value == agg.Exact
		frag.AddRow(w.NumNodes(), bc.Messages, bc.FloodingMessages,
			float64(bc.FloodingMessages)/float64(bc.Messages),
			sampleMsgs.Mean(), agg.Messages, ok)
		frag.AddAux(float64(w.NumNodes()), float64(bc.Messages))
		return nil
	}); err != nil {
		return nil, err
	}
	xs, ys := t.auxColumns(len(s.Ns), 2)
	if len(xs) >= 2 {
		fit := metrics.FitPowerLaw(xs, ys[0])
		t.Notes = append(t.Notes,
			"broadcast power-law exponent "+formatFloat(fit.Slope)+
				" (O~(n) predicts ~1 + polylog drift; flooding is exactly 2)")
	}
	return t, nil
}

// E11Baselines compares NOW against the prior-work regimes the paper
// positions itself against: (a) static-#clusters under polynomial growth
// — cluster sizes blow up; (b) NOW with shuffling disabled under the
// join-leave attack — the target cluster is polluted, while full NOW
// resists; (c) the single-cluster O(n^2) reduction.
func E11Baselines(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "NOW vs static clustering, no-shuffle ablation, single-cluster reduction",
		Claim: "intro + section 5: static-#C schemes lose the O(log N) cluster size under polynomial growth; without shuffling the join-leave attack pollutes a target cluster (section 3.3)",
		Columns: []string{"N", "system", "growth", "maxClusterSize", "targetSize",
			"maxByzFrac", "insecureDwell", "perOpMsgs"},
	}
	n := s.Ns[len(s.Ns)-1]
	growSteps := int(s.OpsFactor * float64(n) / 2)
	n0 := n / 4

	// Shared reference config: the target-cluster-size column of every row
	// uses the NOW growth run's parameters (K=4, L=1.6).
	refCore := core.DefaultConfig(n)
	refCore.K = 4
	refCore.L = 1.6
	target := refCore.TargetClusterSize()

	// The four expensive system runs — (a) NOW growth, (b) static-#C
	// growth, (c) attack with and without shuffling — are mutually
	// independent: fan them out as cells, splicing rows in section order.
	attackRun := func(frag *Table, shuffled bool) error {
		// Comparison metric is DWELL time in insecure states: shuffling
		// makes many independent re-rolls (each a small tail risk that the
		// next exchange repairs), while without shuffling pollution
		// persists. Raw transition counts would spuriously favor the
		// frozen system.
		acfg := sim.Config{
			Core:            core.DefaultConfig(n),
			InitialSize:     n / 2,
			Tau:             0.20,
			Strategy:        &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.20}},
			Steps:           int(s.OpsFactor * float64(n)),
			Seed:            s.Seed,
			InstallHijacker: true,
		}
		acfg.Core.Seed = s.Seed
		acfg.Core.K = 5
		acfg.Core.L = 1.6
		name := "NOW+attack"
		if !shuffled {
			acfg.Core.ExchangeOnJoin = false
			acfg.Core.ExchangeOnLeave = false
			acfg.Core.LeaveCascade = false
			name = "no-shuffle+attack"
		}
		arunner, err := sim.New(acfg)
		if err != nil {
			return err
		}
		ares, err := arunner.Run()
		if err != nil {
			return err
		}
		dwell := fmt.Sprintf("dwell %.1f%%/%.1f%%",
			100*float64(ares.DegradedSteps)/float64(ares.Steps),
			100*float64(ares.CapturedSteps)/float64(ares.Steps))
		frag.AddRow(n, name, "steady", ares.Final.MaxSize, acfg.Core.TargetClusterSize(),
			ares.Stats.MaxByzFractionEver, dwell, "n/a")
		return nil
	}
	sections := []func(frag *Table) error{
		func(frag *Table) error { // (a) NOW under growth.
			cfg := sim.Config{
				Core:          refCore,
				InitialSize:   n0,
				Tau:           0.20,
				Schedule:      workload.Linear{From: n0, To: n, Steps: growSteps},
				Steps:         growSteps,
				Seed:          s.Seed,
				SampleOpCosts: true,
				ExactSamples:  s.ExactSamples,
			}
			cfg.Core.Seed = s.Seed
			runner, err := sim.New(cfg)
			if err != nil {
				return err
			}
			res, err := runner.Run()
			if err != nil {
				return err
			}
			nowDwell := fmt.Sprintf("dwell %.1f%%/%.1f%%",
				100*float64(res.DegradedSteps)/float64(res.Steps),
				100*float64(res.CapturedSteps)/float64(res.Steps))
			frag.AddRow(n, "NOW", "4x", res.Final.MaxSize, target,
				res.Stats.MaxByzFractionEver, nowDwell,
				res.OpCosts.JoinMsgs.Mean())
			return nil
		},
		func(frag *Table) error { // (b) Static-#C under the same growth.
			static, err := baseline.NewStaticCluster(n0/target, n0, 0.20, s.Seed)
			if err != nil {
				return err
			}
			snapBefore := static.Ledger().Snapshot()
			joins := 0
			for static.NumNodes() < n {
				static.Join(false)
				joins++
			}
			staticAudit := static.Audit()
			perOp := float64(static.Ledger().Since(snapBefore).Messages) / float64(joins)
			frag.AddRow(n, "static-#C", "4x", staticAudit.MaxSize, target,
				staticAudit.MaxByzFraction, "n/a", perOp)
			return nil
		},
		func(frag *Table) error { return attackRun(frag, true) },  // (c) full NOW under attack
		func(frag *Table) error { return attackRun(frag, false) }, // (c) no-shuffle strawman
	}
	if err := t.RunCells(len(sections), func(i int, frag *Table) error {
		return sections[i](frag)
	}); err != nil {
		return nil, err
	}

	// (d) Single-cluster decision-cost reference.
	var sc baseline.SingleCluster
	t.AddRow(n, "single-cluster", "n/a", n, target,
		0.20, "n/a", float64(sc.DecisionCost(n)))
	t.Notes = append(t.Notes,
		"static-#C keeps tau-level safety only because its clusters balloon to n/#C — the very cost blow-up the paper's intro rejects; NOW keeps clusters at Theta(log N)",
		"attack rows run at tau=0.20, K=5, L=1.6 — the k-adequate regime: full NOW should show no captured dwell while the no-shuffle strawman's target cluster is ratcheted toward total capture")
	return t, nil
}

// E12SecurityMargins sweeps tau toward the 1/3 boundary and the security
// parameter K, measuring failure rates — the finite-size content of
// Lemma 1's "k large enough" and Remarks 1-2.
func E12SecurityMargins(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Failure rates vs tau (toward 1/3) and security parameter K",
		Claim: "Lemma 1 + Remarks: capture probability decays exponentially in K; tau approaching 1/3 erases the margin",
		Columns: []string{"N", "tau", "K", "|C|target", "steps",
			"degradedEvents", "capturedEvents", "maxByzFrac"},
	}
	n := s.Ns[len(s.Ns)-1] / 2 // keep the sweep affordable
	steps := int(s.OpsFactor * float64(n))
	cells := gridCells([]float64{0.10, 0.20, 0.30, 0.33}, []float64{1, 2, 4})
	if err := t.RunCells(len(cells), func(i int, frag *Table) error {
		tau, k := cells[i].a, cells[i].b
		cfg := sim.Config{
			Core:        core.DefaultConfig(n),
			InitialSize: n / 2,
			Tau:         tau,
			Steps:       steps,
			Seed:        s.Seed,
		}
		cfg.Core.K = k
		cfg.Core.Seed = s.Seed
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		res, err := runner.Run()
		if err != nil {
			return err
		}
		frag.AddRow(n, tau, k, cfg.Core.TargetClusterSize(), res.Steps,
			res.Stats.DegradedEvents, res.Stats.CapturedEvents,
			res.Stats.MaxByzFractionEver)
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"reading guide: at fixed tau, events should fall sharply as K doubles (Chernoff in |C|); at fixed K, tau -> 1/3 erases the epsilon margin exactly as the theory requires")
	return t, nil
}
