// Package experiments is the reproduction harness: every formal claim of
// the paper (the paper has no empirical tables — Section 4's lemmas and
// the complexity statements of Sections 2-3 and 6 are its evaluation) is
// converted into a measurable experiment E1-E12 producing a paper-style
// table. The per-experiment index lives in DESIGN.md; EXPERIMENTS.md
// records claim-vs-measured for each. cmd/nowbench and the root
// bench_test.go both drive this package.
//
// Experiments fan their independent cells (per-size, per-trial,
// per-repetition simulation runs) out across a worker pool (pool.go);
// every cell builds its own world from a derived seed and rows are
// assembled in submission order, so tables are byte-identical at any
// parallelism setting (SetParallelism / NOWBENCH_PARALLEL).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one experiment's result in paper style.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   []string

	// Aux carries a cell's numeric by-products (sweep x values, fitted y
	// values) out of RunCells alongside its rows. Cross-cell aggregates
	// (polylog fits, ratio notes) must read per-cell numbers from here via
	// CellAux, never from closure-captured slices: a cell served from a
	// resume journal does not re-run its body, so anything outside the
	// fragment would silently stay zero. Only fragments carry Aux; on the
	// parent table RunCells collects them per cell.
	Aux []float64

	cellAux [][]float64 // parent-side per-cell Aux, in cell order
	cellSeq int         // RunCells invocations on this table, for journal keys
}

// AddAux appends numeric by-products to a cell fragment (see Aux).
func (t *Table) AddAux(vs ...float64) { t.Aux = append(t.Aux, vs...) }

// CellAux returns cell i's Aux vector from the last RunCells, never nil.
func (t *Table) CellAux(i int) []float64 {
	if i < 0 || i >= len(t.cellAux) {
		return nil
	}
	return t.cellAux[i]
}

// AddRow appends a formatted row; values are stringified with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1e6 || x < 1e-3 && x > -1e-3 && x != 0:
		return fmt.Sprintf("%.3g", x)
	case x >= 100:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\nClaim: %s\n", t.ID, t.Title, t.Claim); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// CSV writes the table as comma-separated values (quotes are not needed:
// cells never contain commas by construction).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Scale sizes an experiment run. Quick keeps every experiment inside
// benchmark budgets; Full is the overnight setting for cmd/nowbench -full.
type Scale struct {
	// Ns is the N sweep (maximum network sizes).
	Ns []int
	// OpsFactor scales churn lengths: steps = OpsFactor * N.
	OpsFactor float64
	// Trials repeats stochastic measurements.
	Trials int
	// Walks is the per-configuration walk count for sampling experiments.
	Walks int
	// Seed anchors determinism.
	Seed uint64
	// ExactSamples switches per-operation cost accounting from the default
	// fixed-memory sketches (metrics.Digest) to retained-history samples
	// (metrics.Sample), reproducing pre-sketch tables byte for byte.
	// Leave false for wide-range sweeps: exact mode's memory grows with
	// the operation count. Means and counts are identical in both modes;
	// only quantile columns move, within the sketch's rank-error bounds.
	ExactSamples bool
	// OpsPerStep > 1 runs the adversary cells (A2, A4) through the
	// concurrent churn driver (sim.Config.OpsPerStep): each time step
	// batches up to this many operations through the op scheduler, so
	// hooked attack sweeps exploit sharded worlds (SetWorldShards) at
	// full plan parallelism. Tables stay deterministic at any shard count
	// and GOMAXPROCS, but the batched trace is a different (equally valid)
	// trajectory from the classic driver's, and per-operation cost columns
	// are unavailable in batched mode. 0 or 1 keeps the classic driver
	// and the recorded baseline tables.
	OpsPerStep int
}

// ExtendTo widens the N sweep by doubling the top size until exactly maxN,
// preserving the power-of-two grid the log2 scalings assume. It is how the
// CLI's -max-n flag stretches QuickScale/FullScale to the wide-range
// separation sweeps (N up to 2^16, 2^20) without redefining the standard
// scales.
//
// maxN must be reachable from the grid's top size by doubling; anything
// else errors rather than silently capping the sweep below the requested
// top (the old behavior, which made `-max-n 1000000` quietly run a 2^19
// sweep and report it as the million-node run). The error names the two
// nearest grid tops so the caller can snap explicitly.
func (s Scale) ExtendTo(maxN int) (Scale, error) {
	if len(s.Ns) == 0 {
		return s, nil
	}
	top := s.Ns[len(s.Ns)-1]
	if maxN < top {
		return s, fmt.Errorf("experiments: max N %d is below the scale's top size %d", maxN, top)
	}
	ns := append([]int(nil), s.Ns...)
	last := top
	for last < maxN {
		last *= 2
		ns = append(ns, last)
	}
	if last != maxN {
		return s, fmt.Errorf("experiments: max N %d is not a power-of-two multiple of the grid top %d; use %d or %d",
			maxN, top, last/2, last)
	}
	s.Ns = ns
	return s, nil
}

// QuickScale is the default used by `go test -bench` and CI.
func QuickScale() Scale {
	return Scale{
		Ns:        []int{256, 512, 1024},
		OpsFactor: 1,
		Trials:    3,
		Walks:     400,
		Seed:      1,
	}
}

// FullScale is the long-running setting.
func FullScale() Scale {
	return Scale{
		Ns:        []int{256, 512, 1024, 2048, 4096},
		OpsFactor: 4,
		Trials:    5,
		Walks:     2000,
		Seed:      1,
	}
}

// Runner is an experiment entry point.
type Runner func(Scale) (*Table, error)

// Registry maps experiment IDs to runners. IDs follow DESIGN.md.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  E1HonestyUnderChurn,
		"E2":  E2PostExchangeTail,
		"E3":  E3DriftRecovery,
		"E4":  E4RandClCost,
		"E5":  E5ExchangeCost,
		"E6":  E6OperationCost,
		"E7":  E7WalkUniformity,
		"E8":  E8OverlayHealth,
		"E9":  E9InitCost,
		"E10": E10Applications,
		"E11": E11Baselines,
		"E12": E12SecurityMargins,
		"A1":  AblationMergeStrategy,
		"A2":  AblationLeaveCascade,
		"A3":  AblationDegreeRepair,
		"A4":  AblationCommitReveal,
	}
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E* before A*, numeric within.
		pi, pj := out[i][0], out[j][0]
		if pi != pj {
			return pi < pj
		}
		var ni, nj int
		fmt.Sscanf(out[i][1:], "%d", &ni)
		fmt.Sscanf(out[j][1:], "%d", &nj)
		return ni < nj
	})
	return out
}
