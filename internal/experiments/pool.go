package experiments

// The parallel experiment runner: a shared worker-pool layer that fans
// independent simulation cells (per-size, per-trial, per-repetition units
// of an experiment) out across GOMAXPROCS goroutines and aggregates the
// results deterministically in submission order.
//
// Determinism contract: every cell is self-contained — it builds its own
// world from a per-cell derived seed and never shares a *xrand.Rand or
// *core.World with another cell. Results land in an index-addressed slot,
// so the assembled table is byte-identical to a serial run regardless of
// goroutine scheduling. The parallelism knob (SetParallelism or
// NOWBENCH_PARALLEL) only changes wall-clock, never output.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// parallelismOverride holds an explicit SetParallelism value; 0 means
// "unset, resolve from the environment".
var parallelismOverride atomic.Int32

// SetParallelism fixes the worker count for subsequent experiment runs.
// p == 1 forces the serial path; p > 1 uses exactly p workers; p <= 0
// restores the default resolution (NOWBENCH_PARALLEL, then GOMAXPROCS).
func SetParallelism(p int) {
	if p < 0 {
		p = 0
	}
	parallelismOverride.Store(int32(p))
}

// Parallelism reports the worker count the pool will use: an explicit
// SetParallelism value if one is set, else the NOWBENCH_PARALLEL
// environment variable ("0", "off", "false" or "no" force serial; a
// positive integer sets the count), else GOMAXPROCS. Parallel execution
// is the default: independent seeded cells scale with cores.
func Parallelism() int {
	if p := parallelismOverride.Load(); p > 0 {
		return int(p)
	}
	if v, ok := parseParallelEnv(os.Getenv("NOWBENCH_PARALLEL")); ok {
		return v
	}
	return runtime.GOMAXPROCS(0)
}

// parseParallelEnv interprets a NOWBENCH_PARALLEL value; ok is false when
// the value is empty or unrecognized (caller falls back to GOMAXPROCS).
func parseParallelEnv(v string) (workers int, ok bool) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "":
		return 0, false
	case "0", "off", "false", "no":
		return 1, true
	case "on", "true", "yes", "auto":
		return runtime.GOMAXPROCS(0), true
	}
	if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
		return n, true
	}
	return 0, false
}

// mapCells runs body(i) for every cell index in [0, count), in parallel
// when the pool has more than one worker, and returns the results in
// submission (index) order. On failure the lowest-indexed failing cell's
// error is returned — the same error a serial run reports: after a
// failure only cells above the lowest failing index seen so far are
// skipped, so any earlier failure still gets a chance to surface. A
// panicking cell is converted into an error rather than tearing down
// sibling workers mid-experiment.
func mapCells[T any](count int, body func(i int) (T, error)) ([]T, error) {
	out := make([]T, count)
	if count == 0 {
		return out, nil
	}
	workers := Parallelism()
	if workers > count {
		workers = count
	}
	run := func(i int) (v T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiments: cell %d panicked: %v", i, r)
			}
		}()
		return body(i)
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			v, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, count)
	idx := make(chan int)
	var minFailed atomic.Int64
	minFailed.Store(int64(count)) // sentinel: nothing failed yet
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if int64(i) > minFailed.Load() {
					continue // fail fast, but never skip a cell serial would have run
				}
				v, err := run(i)
				if err != nil {
					errs[i] = err
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	for i := 0; i < count; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach runs body(i) for every index in [0, count) on the worker pool.
// It is the result-free form of mapCells for callers (cmd/nowsim's
// multi-run mode, external drivers) that collect output through their own
// index-addressed storage.
func ForEach(count int, body func(i int) error) error {
	_, err := mapCells(count, func(i int) (struct{}, error) {
		return struct{}{}, body(i)
	})
	return err
}

// RunMany executes the named experiments concurrently and returns their
// tables positionally aligned with ids. Cross-experiment parallelism
// composes with each experiment's own cell fan-out as a SECOND pool
// layer: up to Parallelism() experiment workers each spawn their own
// cell pool, so the serial head and tail of one experiment's table
// overlap another experiment's cells and a full E1-E12 sweep keeps every
// core busy even while individual experiments drain. The composition
// oversubscribes goroutines (up to P*P runnable), not threads — the Go
// scheduler still executes at most GOMAXPROCS of them at once. Each
// experiment remains entirely self-contained (own worlds, own derived
// seeds), so the assembled tables are byte-identical to a serial run at
// any parallelism; on failure the lowest-indexed failing experiment's
// error is reported, exactly as a serial sweep would.
func RunMany(ids []string, s Scale) ([]*Table, error) {
	reg := Registry()
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
	}
	return mapCells(len(ids), func(i int) (*Table, error) {
		t, err := reg[ids[i]](s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
		return t, nil
	})
}

// pair is one point of a two-parameter sweep grid.
type pair[A, B any] struct {
	a A
	b B
}

// gridCells flattens a row-major (as x bs) sweep into a cell list, so a
// nested loop can fan out as one batch while keeping its serial row
// order.
func gridCells[A, B any](as []A, bs []B) []pair[A, B] {
	out := make([]pair[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, pair[A, B]{a, b})
		}
	}
	return out
}

// Fragment returns an empty table sharing t's identity and columns, for
// one parallel cell to fill independently of its siblings.
func (t *Table) Fragment() *Table {
	return &Table{ID: t.ID, Title: t.Title, Claim: t.Claim, Columns: t.Columns}
}

// Splice appends a fragment's rows and notes onto t.
func (t *Table) Splice(frag *Table) {
	t.Rows = append(t.Rows, frag.Rows...)
	t.Notes = append(t.Notes, frag.Notes...)
}

// RunCells executes body for each cell on the worker pool, handing every
// cell a private table fragment, then splices the fragments into t in
// submission order. Experiment-level notes computed from cross-cell
// aggregates belong after RunCells returns and must read per-cell numbers
// via frag.AddAux / t.CellAux — NOT closure-captured slices: when a
// resume journal (OpenJournal) is active, completed cells are served from
// the journal without re-running body, and only the fragment's contents
// survive that path.
func (t *Table) RunCells(count int, body func(i int, frag *Table) error) error {
	t.cellSeq++
	seq := t.cellSeq
	jnl := currentJournal()
	frags, err := mapCells(count, func(i int) (*Table, error) {
		key := fmt.Sprintf("%s#%d/%d", t.ID, seq, i)
		if jnl != nil {
			if rec, ok := jnl.lookup(key); ok {
				return rec.frag(t), nil
			}
		}
		if testCellInterrupt != nil {
			if err := testCellInterrupt(key); err != nil {
				return nil, err
			}
		}
		var startMs int64
		if jnl != nil {
			startMs = jnl.millis()
		}
		frag := t.Fragment()
		if err := body(i, frag); err != nil {
			return nil, err
		}
		if jnl != nil {
			if err := jnl.record(fragRecord(key, frag, jnl.millis()-startMs)); err != nil {
				return nil, err
			}
		}
		return frag, nil
	})
	if err != nil {
		return err
	}
	t.cellAux = t.cellAux[:0]
	for _, frag := range frags {
		t.Splice(frag)
		t.cellAux = append(t.cellAux, frag.Aux)
	}
	return nil
}
