package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// journalTestScale is a sweep small enough to run twice per mode in a
// unit test but with >= 2 cells per experiment, so there is something to
// interrupt between.
func journalTestScale(exact bool) Scale {
	return Scale{Ns: []int{256, 512}, OpsFactor: 1, Trials: 1, Walks: 60, Seed: 3, ExactSamples: exact}
}

// renderAll renders tables to one byte string for exact comparison.
func renderAll(t *testing.T, tables []*Table) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestJournalResumeEquivalence is the satellite's load-bearing check:
// interrupt a sweep mid-cell, resume from the journal, and the final
// tables are byte-identical to an uninterrupted run — in both metric
// modes (sketch and exact), covering rows, notes and the aux-derived
// cross-cell fits.
func TestJournalResumeEquivalence(t *testing.T) {
	ids := []string{"E4", "E6"}
	SetParallelism(1) // deterministic interruption point
	defer SetParallelism(0)
	for _, exact := range []bool{false, true} {
		t.Run(map[bool]string{false: "sketch", true: "exact"}[exact], func(t *testing.T) {
			s := journalTestScale(exact)

			baselineTables, err := RunMany(ids, s)
			if err != nil {
				t.Fatal(err)
			}
			baseline := renderAll(t, baselineTables)

			path := filepath.Join(t.TempDir(), "cells.journal")
			fp := fmt.Sprintf("test exact=%v", exact)

			// Pass 1: die mid-sweep, before E6's second cell. Everything
			// completed up to that point is on disk.
			if err := OpenJournal(path, fp, nil); err != nil {
				t.Fatal(err)
			}
			testCellInterrupt = func(key string) error {
				if key == "E6#1/1" {
					return fmt.Errorf("injected interrupt at %s", key)
				}
				return nil
			}
			_, err = RunMany(ids, s)
			testCellInterrupt = nil
			if err == nil || !strings.Contains(err.Error(), "injected interrupt") {
				CloseJournal()
				t.Fatalf("interrupted run: err = %v, want injected interrupt", err)
			}
			if err := CloseJournal(); err != nil {
				t.Fatal(err)
			}
			keys, err := ReadJournalKeys(path)
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{"E4#1/0", "E4#1/1", "E6#1/0"}; !reflect.DeepEqual(keys, want) {
				t.Fatalf("journal after interrupt holds %v, want %v", keys, want)
			}

			// Pass 2: resume. Journaled cells must be served from the
			// journal (the interrupt hook sees only live cells), and the
			// assembled tables must match the uninterrupted run exactly.
			if err := OpenJournal(path, fp, nil); err != nil {
				t.Fatal(err)
			}
			var ran []string
			testCellInterrupt = func(key string) error {
				ran = append(ran, key)
				return nil
			}
			resumedTables, err := RunMany(ids, s)
			testCellInterrupt = nil
			if err != nil {
				CloseJournal()
				t.Fatal(err)
			}
			if err := CloseJournal(); err != nil {
				t.Fatal(err)
			}
			if want := []string{"E6#1/1"}; !reflect.DeepEqual(ran, want) {
				t.Errorf("resume re-ran cells %v, want only %v", ran, want)
			}
			if resumed := renderAll(t, resumedTables); resumed != baseline {
				t.Errorf("resumed tables differ from uninterrupted run:\n--- baseline ---\n%s\n--- resumed ---\n%s", baseline, resumed)
			}

			// Pass 3: a fully-journaled sweep replays without running any
			// cell at all and still matches byte for byte.
			if err := OpenJournal(path, fp, nil); err != nil {
				t.Fatal(err)
			}
			testCellInterrupt = func(key string) error {
				return fmt.Errorf("cell %s ran despite a complete journal", key)
			}
			replayedTables, err := RunMany(ids, s)
			testCellInterrupt = nil
			if err != nil {
				CloseJournal()
				t.Fatal(err)
			}
			if err := CloseJournal(); err != nil {
				t.Fatal(err)
			}
			if replayed := renderAll(t, replayedTables); replayed != baseline {
				t.Error("full-journal replay diverged from uninterrupted run")
			}
		})
	}
}

// TestJournalTruncatedFinalLine: a crash mid-append leaves a final line
// without its newline; the loader must drop exactly that record and keep
// the rest.
func TestJournalTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	if err := OpenJournal(path, "fp", nil); err != nil {
		t.Fatal(err)
	}
	j := currentJournal()
	if err := j.record(&cellRecord{Key: "E1#1/0", Rows: [][]string{{"a"}}}); err != nil {
		t.Fatal(err)
	}
	if err := CloseJournal(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: append half a record, no terminating newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"E1#1/1","rows":[["tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := OpenJournal(path, "fp", nil); err != nil {
		t.Fatalf("truncated final line must be tolerated, got %v", err)
	}
	j = currentJournal()
	if _, ok := j.lookup("E1#1/0"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := j.lookup("E1#1/1"); ok {
		t.Error("truncated record resurrected")
	}
	if err := CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCorruptedRecord: a malformed line anywhere but the tail is
// corruption and must refuse to load, not silently skip cells.
func TestJournalCorruptedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	if err := OpenJournal(path, "fp", nil); err != nil {
		t.Fatal(err)
	}
	if err := currentJournal().record(&cellRecord{Key: "E1#1/0"}); err != nil {
		t.Fatal(err)
	}
	if err := CloseJournal(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage not json\n{\"key\":\"E1#1/2\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = OpenJournal(path, "fp", nil)
	if err == nil {
		CloseJournal()
		t.Fatal("corrupt mid-journal record must refuse to load")
	}
	if !strings.Contains(err.Error(), "corrupt record on line 3") {
		t.Errorf("error %v does not name the corrupt line", err)
	}
}

// TestJournalFingerprintMismatch: resuming under a different run
// configuration is refused.
func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	if err := OpenJournal(path, "seed=1", nil); err != nil {
		t.Fatal(err)
	}
	if err := CloseJournal(); err != nil {
		t.Fatal(err)
	}
	err := OpenJournal(path, "seed=2", nil)
	if err == nil {
		CloseJournal()
		t.Fatal("fingerprint mismatch must refuse to resume")
	}
	if !strings.Contains(err.Error(), "different run configuration") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestJournalNotAJournal: arbitrary files are rejected up front.
func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "README.md")
	if err := os.WriteFile(path, []byte("# hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := OpenJournal(path, "fp", nil); err == nil {
		CloseJournal()
		t.Fatal("non-journal file must be rejected")
	}
}

// TestBenchTrajectory: timings recorded through the injected clock come
// back sorted by key with a consistent total.
func TestBenchTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	var clock int64
	if err := OpenJournal(path, "fp", func() int64 { clock += 7; return clock }); err != nil {
		t.Fatal(err)
	}
	defer CloseJournal()
	j := currentJournal()
	for _, key := range []string{"E2#1/1", "E1#1/0"} {
		start := j.millis()
		if err := j.record(fragRecord(key, &Table{}, j.millis()-start)); err != nil {
			t.Fatal(err)
		}
	}
	points, total, ok := BenchTrajectory()
	if !ok {
		t.Fatal("no trajectory from an open journal")
	}
	if len(points) != 2 || points[0].Key != "E1#1/0" || points[1].Key != "E2#1/1" {
		t.Fatalf("points = %+v, want sorted keys", points)
	}
	if want := points[0].Ms + points[1].Ms; total != want || total != 14 {
		t.Errorf("total = %d, want %d (= 14)", total, want)
	}
}
