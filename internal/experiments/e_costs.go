package experiments

import (
	"math"

	"nowover/internal/core"
	"nowover/internal/metrics"
	"nowover/internal/sim"
	"nowover/internal/xrand"
)

// midWorld bootstraps a world at n = N/2 (mid-regime) with the given tau.
func midWorld(n int, tau float64, seed uint64, mutate func(*core.Config)) (*core.World, error) {
	cfg := core.DefaultConfig(n)
	cfg.Seed = seed
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := core.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	byzBudget := int(tau * float64(n/2))
	if err := w.Bootstrap(n/2, func(slot int) bool { return slot < byzBudget }); err != nil {
		return nil, err
	}
	return w, nil
}

// E4RandClCost measures the randCl primitive: the paper charges
// O(log^5 N) messages, O(log^4 N) rounds and O(log^3 N) visited clusters
// per biased walk. The polylog exponents are fitted from the N sweep.
func E4RandClCost(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "randCl (biased CTRW) cost per invocation",
		Claim: "section 3.1: randCl costs O(log^5 N) msgs, O(log^4 N) rounds, visiting O(log^3 N) clusters",
		Columns: []string{"N", "walks", "meanMsgs", "meanRounds", "meanHops",
			"msgs/log^5N", "rounds/log^4N"},
	}
	if err := t.RunCells(len(s.Ns), func(i int, frag *Table) error {
		n := s.Ns[i]
		w, err := midWorld(n, 0.15, s.Seed, nil)
		if err != nil {
			return err
		}
		led := w.Ledger()
		r := xrand.New(s.Seed ^ 0xE4)
		var msgs, rounds, hops metrics.Welford
		for i := 0; i < s.Walks; i++ {
			start, _ := w.RandomCluster(r)
			snap := led.Snapshot()
			out, err := w.Walker().Biased(led, w.Rng(), start)
			if err != nil {
				return err
			}
			cost := led.Since(snap)
			msgs.Add(float64(cost.Messages))
			rounds.Add(float64(cost.Rounds))
			hops.Add(float64(out.Hops))
		}
		l := math.Log2(float64(n))
		frag.AddRow(n, s.Walks, msgs.Mean(), rounds.Mean(), hops.Mean(),
			msgs.Mean()/math.Pow(l, 5), rounds.Mean()/math.Pow(l, 4))
		frag.AddAux(float64(n), msgs.Mean(), rounds.Mean(), hops.Mean())
		return nil
	}); err != nil {
		return nil, err
	}
	xs, ys := t.auxColumns(len(s.Ns), 4)
	if len(xs) >= 2 {
		t.Notes = append(t.Notes,
			noteFit("messages", xs, ys[0], 5),
			noteFit("rounds", xs, ys[1], 4),
			noteFit("hops", xs, ys[2], 3),
		)
	}
	return t, nil
}

// auxColumns unpacks per-cell Aux vectors of the shape (x, y1..yk) laid
// down by frag.AddAux into an x column plus k y columns for cross-cell
// fits. Cells lacking the expected width (impossible unless an old
// journal is replayed against newer code) are dropped from the fit rather
// than read out of bounds.
func (t *Table) auxColumns(count, width int) (xs []float64, ys [][]float64) {
	ys = make([][]float64, width-1)
	for i := 0; i < count; i++ {
		aux := t.CellAux(i)
		if len(aux) != width {
			continue
		}
		xs = append(xs, aux[0])
		for k := 1; k < width; k++ {
			ys[k-1] = append(ys[k-1], aux[k])
		}
	}
	return xs, ys
}

func noteFit(what string, xs, ys []float64, paperExp float64) string {
	fit := metrics.FitPolylog(xs, ys)
	return formatFitNote(what, fit, paperExp)
}

func formatFitNote(what string, fit metrics.LinearFit, paperExp float64) string {
	return what + ": fitted polylog exponent " + formatFloat(fit.Slope) +
		" (R2 " + formatFloat(fit.R2) + ") vs paper bound exponent " + formatFloat(paperExp) +
		"; exponent fits over a narrow N range are indicative only (the per-N ratio columns are the sharper check)"
}

// E5ExchangeCost measures the exchange primitive: O(log^6 N) messages and
// O(log^4 N) rounds per full-cluster shuffle.
func E5ExchangeCost(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "exchange (full-cluster shuffle) cost per invocation",
		Claim: "section 3.1: exchange costs O(log^6 N) msgs and O(log^4 N) rounds",
		Columns: []string{"N", "exchanges", "meanMsgs", "meanRounds",
			"msgs/log^6N", "rounds/log^4N"},
	}
	trials := 10 * s.Trials
	if err := t.RunCells(len(s.Ns), func(i int, frag *Table) error {
		n := s.Ns[i]
		w, err := midWorld(n, 0.15, s.Seed, nil)
		if err != nil {
			return err
		}
		led := w.Ledger()
		r := xrand.New(s.Seed ^ 0xE5)
		var msgs, rounds metrics.Welford
		for i := 0; i < trials; i++ {
			c, _ := w.RandomCluster(r)
			snap := led.Snapshot()
			if err := w.ForceExchange(c); err != nil {
				return err
			}
			cost := led.Since(snap)
			msgs.Add(float64(cost.Messages))
			rounds.Add(float64(cost.Rounds))
		}
		l := math.Log2(float64(n))
		frag.AddRow(n, trials, msgs.Mean(), rounds.Mean(),
			msgs.Mean()/math.Pow(l, 6), rounds.Mean()/math.Pow(l, 4))
		frag.AddAux(float64(n), msgs.Mean(), rounds.Mean())
		return nil
	}); err != nil {
		return nil, err
	}
	xs, ys := t.auxColumns(len(s.Ns), 3)
	if len(xs) >= 2 {
		t.Notes = append(t.Notes,
			noteFit("messages", xs, ys[0], 6),
			noteFit("rounds", xs, ys[1], 4))
	}
	return t, nil
}

// E6OperationCost measures the maintenance operations end to end: join
// and leave (with their induced exchanges, splits and merges) must stay
// polylog(N) per the abstract and Figure 2.
func E6OperationCost(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Join/Leave end-to-end cost (including induced split/merge)",
		Claim: "abstract + Figure 2: every maintenance operation costs polylog(N) messages",
		Columns: []string{"N", "ops", "join:mean", "join:p95", "leave:mean",
			"leave:p95", "joinRounds", "leaveRounds"},
	}
	if err := t.RunCells(len(s.Ns), func(i int, frag *Table) error {
		n := s.Ns[i]
		cfg := sim.Config{
			Core:          core.DefaultConfig(n),
			InitialSize:   n / 2,
			Tau:           0.15,
			Steps:         int(s.OpsFactor * float64(n) / 2),
			Seed:          s.Seed,
			SampleOpCosts: true,
			ExactSamples:  s.ExactSamples,
		}
		cfg.Core.Seed = s.Seed
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		res, err := runner.Run()
		if err != nil {
			return err
		}
		frag.AddRow(n, res.Steps,
			res.OpCosts.JoinMsgs.Mean(), res.OpCosts.JoinMsgs.Quantile(0.95),
			res.OpCosts.LeaveMsgs.Mean(), res.OpCosts.LeaveMsgs.Quantile(0.95),
			res.OpCosts.JoinRounds.Mean(), res.OpCosts.LeaveRounds.Mean())
		frag.AddAux(float64(n), res.OpCosts.JoinMsgs.Mean(), res.OpCosts.LeaveMsgs.Mean())
		return nil
	}); err != nil {
		return nil, err
	}
	xs, ys := t.auxColumns(len(s.Ns), 3)
	if len(xs) >= 2 {
		joinFit := metrics.FitPolylog(xs, ys[0])
		leaveFit := metrics.FitPolylog(xs, ys[1])
		t.Notes = append(t.Notes,
			"join polylog exponent "+formatFloat(joinFit.Slope)+" (R2 "+formatFloat(joinFit.R2)+"); join ~ exchange cost + insertion, so ~log^6-7 N is expected",
			"leave polylog exponent "+formatFloat(leaveFit.Slope)+" (R2 "+formatFloat(leaveFit.R2)+"); leave cascades ~|C| extra exchanges (~log^7-8 N) — still polylog, the paper's claim",
			"over a 4x range of N, polylog growth with a high exponent is numerically indistinguishable from a small power of n; the wide-range -full sweep separates them")
	}
	return t, nil
}

// E7WalkUniformity measures the X/Y decomposition of section 4: the
// CTRW endpoint distribution's total-variation distance from the target
// (|C|/n) as the walk duration grows.
func E7WalkUniformity(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "randCl endpoint distribution vs walk duration",
		Claim: "section 4: with duration past the mixing time, the CTRW endpoint distribution is within O(n^-c) of (|C|/n); residual bias is absorbed by the X/Y decomposition",
		Columns: []string{"durationFactor", "N", "walks", "TV(sizeProp)",
			"TV(perNodeUniform)", "meanHops"},
	}
	n := s.Ns[len(s.Ns)-1]
	factors := []float64{0.0625, 0.125, 0.25, 0.5, 1, 2}
	if err := t.RunCells(len(factors), func(i int, frag *Table) error {
		factor := factors[i]
		w, err := midWorld(n, 0, s.Seed, func(c *core.Config) {
			c.WalkDurationFactor = factor
		})
		if err != nil {
			return err
		}
		clusters := w.Clusters()
		index := make(map[int]int, len(clusters))
		for i, c := range clusters {
			index[int(c)] = i
		}
		counts := make([]float64, len(clusters))
		sizes := make([]float64, len(clusters))
		for i, c := range clusters {
			sizes[i] = float64(w.Size(c))
		}
		var hops metrics.Welford
		// All walks start from ONE fixed cluster: a uniform start would
		// make even a zero-hop walk look perfectly mixed.
		start := clusters[0]
		for i := 0; i < s.Walks; i++ {
			out, err := w.Walker().Biased(w.Ledger(), w.Rng(), start)
			if err != nil {
				return err
			}
			if j, ok := index[int(out.End)]; ok {
				counts[j]++
			}
			hops.Add(float64(out.Hops))
		}
		perNode := make([]float64, len(clusters))
		uniform := make([]float64, len(clusters))
		for i := range perNode {
			if sizes[i] > 0 {
				perNode[i] = counts[i] / sizes[i]
			}
			uniform[i] = 1
		}
		frag.AddRow(factor, n, s.Walks,
			metrics.TVDistance(counts, sizes),
			metrics.TVDistance(perNode, uniform),
			hops.Mean())
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"all walks start at one fixed cluster; TV falls to the sampling-noise floor (~0.5*sqrt(#C/walks)) once the duration passes the mixing time and plateaus after",
		"clusters are size-homogeneous right after bootstrap, so the two TV columns differ only under churn")
	return t, nil
}
