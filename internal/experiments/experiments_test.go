package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// tinyScale keeps every experiment affordable for unit tests.
func tinyScale() Scale {
	return Scale{
		Ns:        []int{256, 512},
		OpsFactor: 0.25,
		Trials:    1,
		Walks:     60,
		Seed:      3,
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7",
		"E8", "E9", "E10", "E11", "E12", "A1", "A2", "A3", "A4"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Errorf("IDs() returned %d of %d", len(ids), len(reg))
	}
	// E* sorted numerically before A-blocks intermixed check: E1 < E2 < E10.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if !(pos["E1"] < pos["E2"] && pos["E2"] < pos["E10"] && pos["E10"] < pos["E12"]) {
		t.Errorf("experiment ordering wrong: %v", ids)
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	s := tinyScale()
	for _, id := range IDs() {
		id := id
		runner := Registry()[id]
		t.Run(id, func(t *testing.T) {
			table, err := runner(s)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if table.ID != id {
				t.Errorf("table ID %q, want %q", table.ID, id)
			}
			if len(table.Rows) == 0 {
				t.Error("no rows produced")
			}
			if table.Claim == "" || table.Title == "" {
				t.Error("missing claim/title")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("row width %d != %d columns", len(row), len(table.Columns))
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), table.Title) {
				t.Error("render missing title")
			}
			buf.Reset()
			if err := table.CSV(&buf); err != nil {
				t.Fatal(err)
			}
			lines := strings.Count(buf.String(), "\n")
			if lines != len(table.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", lines, len(table.Rows)+1)
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		ID: "X", Title: "test", Claim: "c",
		Columns: []string{"a", "bb"},
	}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 1e9)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2.500") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "1e+09") {
		t.Errorf("big float formatting wrong:\n%s", out)
	}
}

func TestExtendTo(t *testing.T) {
	s := QuickScale() // Ns ends at 1024
	wide, err := s.ExtendTo(1 << 16)
	if err != nil {
		t.Fatalf("ExtendTo(2^16): %v", err)
	}
	want := []int{256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
	if !reflect.DeepEqual(wide.Ns, want) {
		t.Errorf("ExtendTo(2^16).Ns = %v, want %v", wide.Ns, want)
	}
	if !reflect.DeepEqual(s.Ns, []int{256, 512, 1024}) {
		t.Errorf("ExtendTo mutated the receiver's grid: %v", s.Ns)
	}
	if got, err := s.ExtendTo(1024); err != nil || !reflect.DeepEqual(got.Ns, s.Ns) {
		t.Errorf("ExtendTo(no-op) = %v, %v; want unchanged grid", got.Ns, err)
	}

	deep, err := s.ExtendTo(1 << 20)
	if err != nil {
		t.Fatalf("ExtendTo(2^20): %v", err)
	}
	if top := deep.Ns[len(deep.Ns)-1]; top != 1<<20 {
		t.Errorf("ExtendTo(2^20) tops out at %d, want %d", top, 1<<20)
	}

	// An unreachable bound errors instead of silently capping the sweep
	// below the requested top.
	if _, err := s.ExtendTo(3000); err == nil || !strings.Contains(err.Error(), "2048 or 4096") {
		t.Errorf("ExtendTo(3000) = %v, want nearest-grid-top error", err)
	}
	if _, err := s.ExtendTo(1000000); err == nil {
		t.Error("ExtendTo(1000000) silently accepted a non-power-of-two-multiple bound")
	}
	if _, err := s.ExtendTo(512); err == nil {
		t.Error("ExtendTo below the grid top must error")
	}
	empty := Scale{}
	if got, err := empty.ExtendTo(1024); err != nil || len(got.Ns) != 0 {
		t.Errorf("ExtendTo on an empty grid: %v, %v", got.Ns, err)
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{QuickScale(), FullScale()} {
		if len(s.Ns) == 0 || s.OpsFactor <= 0 || s.Trials < 1 || s.Walks < 1 {
			t.Errorf("degenerate scale %+v", s)
		}
		for _, n := range s.Ns {
			if n&(n-1) != 0 {
				t.Errorf("N=%d not a power of two (log2 scaling assumes it)", n)
			}
		}
	}
}
