package experiments

import (
	"math"

	"nowover/internal/core"
	"nowover/internal/discovery"
	"nowover/internal/graph"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/sim"
	"nowover/internal/workload"
	"nowover/internal/xrand"
)

// E8OverlayHealth tests OVER's Properties 1-2 under the paper's headline
// regime: the network grows from sqrt(N)-scale to N and back while the
// overlay must keep bounded degrees and expansion.
func E8OverlayHealth(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Overlay degree and expansion under polynomial size variation",
		Claim: "OVER Properties 1-2: max degree <= c log^{1+a} N and isoperimetric constant stays large through poly(N) vertex churn",
		Columns: []string{"N", "phase", "clusters", "minDeg", "maxDeg", "degCap",
			"spectralGap", "isoEstimate", "connected"},
	}
	// One cell per N; each cell emits its three phase rows into a private
	// fragment so the grown/shrunk rows stay adjacent to their bootstrap.
	if err := t.RunCells(len(s.Ns), func(i int, frag *Table) error {
		n := s.Ns[i]
		cfg := sim.Config{
			Core:        core.DefaultConfig(n),
			InitialSize: maxInt(2*core.DefaultConfig(n).TargetClusterSize()*2, int(4*math.Sqrt(float64(n)))),
			Tau:         0.15,
			Seed:        s.Seed,
		}
		cfg.Core.Seed = s.Seed
		grow := int(s.OpsFactor * float64(n) / 2)
		runner, err := sim.New(cfg)
		if err != nil {
			return err
		}
		record := func(phase string) {
			h := runner.World().OverlayHealth(60, 40)
			frag.AddRow(n, phase, h.Vertices, h.MinDegree, h.MaxDegree,
				cfg.Core.DegreeCap(), h.SpectralGap, h.IsoEstimate, h.Connected)
		}
		record("bootstrap")
		// Grow toward N, then shrink back — the sqrt(N) <-> N regime.
		if _, err := runner.Continue(workload.Linear{From: cfg.InitialSize, To: n, Steps: grow}, grow); err != nil {
			return err
		}
		record("grown")
		if _, err := runner.Continue(workload.Linear{From: runner.World().NumNodes(), To: cfg.InitialSize, Steps: grow}, grow); err != nil {
			return err
		}
		record("shrunk")
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the degree cap column is the configured Property-2 bound c*log^{1+a}N; maxDeg must stay at or below it",
		"spectral gap > 0 certifies expansion via Cheeger; isoEstimate upper-bounds I(G) and should track log^{1+a}N/2 in order of magnitude")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E9InitCost measures the initialization phase: discovery flooding at
// O(n*e) messages (run for real at message granularity) and the
// clusterization agreement at O~(n^{3/2}) (the paper's cited bound,
// charged by the cost model).
func E9InitCost(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Initialization: discovery flooding + clusterization agreement",
		Claim: "section 3.2 / Figure 1: discovery costs O(n*e); clusterization O~(n^{3/2}); total O(N^{3/2} log N) at n = sqrt(N)",
		Columns: []string{"n", "edges", "discoveryMsgs", "n*e bound", "rounds",
			"complete", "clusterizationMsgs"},
	}
	if err := t.RunCells(len(s.Ns), func(i int, frag *Table) error {
		n := s.Ns[i]
		// Initial graph per the model: honest connected (a random
		// expander), every Byzantine node adjacent to an honest one.
		g := graph.New[ids.NodeID]()
		var vs []ids.NodeID
		for i := 0; i < n; i++ {
			v := ids.NodeID(i)
			g.AddVertex(v)
			vs = append(vs, v)
		}
		r := xrand.New(s.Seed ^ 0xE9)
		honestCount := n - n/5 // tau = 0.2
		if err := graph.RandomRegularish(g, r, vs[:honestCount], 4); err != nil {
			return err
		}
		for i := honestCount; i < n; i++ {
			if err := g.AddEdge(vs[i], vs[r.Intn(honestCount)]); err != nil {
				return err
			}
		}
		var led metrics.Ledger
		rep, err := discovery.Run(&led, g, func(x ids.NodeID) bool { return int(x) < honestCount })
		if err != nil {
			return err
		}
		fn := float64(n)
		clusterization := int64(fn * math.Sqrt(fn) * math.Log2(fn))
		frag.AddRow(n, rep.Edges, rep.Messages, int64(rep.Nodes)*int64(rep.Edges),
			rep.Rounds, rep.Complete, clusterization)
		frag.AddAux(fn, float64(rep.Messages))
		return nil
	}); err != nil {
		return nil, err
	}
	xs, ys := t.auxColumns(len(s.Ns), 2)
	if len(xs) >= 2 {
		fit := metrics.FitPowerLaw(xs, ys[0])
		t.Notes = append(t.Notes,
			"discovery power-law exponent "+formatFloat(fit.Slope)+
				" (paper bound n*e with e=Theta(n) gives exponent <= 2; active-node flooding typically lands near the e*diameter regime)")
	}
	t.Notes = append(t.Notes,
		"clusterizationMsgs is the charged O~(n^{3/2}) King-Saia-style agreement cost [19]; the executable BA algorithms live in internal/ba")
	return t, nil
}
