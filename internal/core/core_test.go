package core

import (
	"testing"

	"nowover/internal/ids"
	"nowover/internal/xrand"
)

// testWorld bootstraps a world at n0 nodes with a deterministic tau
// fraction of Byzantine nodes spread uniformly by the random partition.
func testWorld(t *testing.T, cfg Config, n0 int, tau float64) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byzBudget := int(tau * float64(n0))
	if err := w.Bootstrap(n0, func(slot int) bool { return slot < byzBudget }); err != nil {
		t.Fatal(err)
	}
	return w
}

func smallConfig() Config {
	cfg := DefaultConfig(1024)
	cfg.Seed = 7
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 4 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.L = 1.2 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.DegreeFactor = 0 },
		func(c *Config) { c.DegreeCapFactor = 0.5 },
		func(c *Config) { c.WalkDurationFactor = 0 },
		func(c *Config) { c.MaxWalkRestarts = 0 },
		func(c *Config) { c.Generator = nil },
		func(c *Config) { c.EdgeAttemptFactor = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1024)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig(1024).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := DefaultConfig(1024) // log2 N = 10
	if got := cfg.TargetClusterSize(); got != 20 {
		t.Errorf("target size = %d, want 20", got)
	}
	if got := cfg.SplitThreshold(); got != 40 {
		t.Errorf("split threshold = %d, want 40", got)
	}
	if got := cfg.MergeThreshold(); got != 10 {
		t.Errorf("merge threshold = %d, want 10", got)
	}
	if cfg.TargetDegree() < 3 || cfg.DegreeCap() < cfg.TargetDegree() {
		t.Errorf("degree discipline inconsistent: %d/%d", cfg.TargetDegree(), cfg.DegreeCap())
	}
	if cfg.DegreeFloor() >= cfg.TargetDegree() {
		t.Errorf("floor %d >= target %d", cfg.DegreeFloor(), cfg.TargetDegree())
	}
}

func TestBootstrapInvariants(t *testing.T) {
	w := testWorld(t, smallConfig(), 400, 0.2)
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	a := w.Audit()
	if a.Nodes != 400 {
		t.Errorf("nodes = %d", a.Nodes)
	}
	if a.Byz != 80 {
		t.Errorf("byz = %d, want 80", a.Byz)
	}
	target := w.Config().TargetClusterSize()
	if a.Clusters != 400/target {
		t.Errorf("clusters = %d, want %d", a.Clusters, 400/target)
	}
	if a.MinSize < w.Config().MergeThreshold() || a.MaxSize > w.Config().SplitThreshold() {
		t.Errorf("size bounds violated: %v", a)
	}
	if !a.OverlayConnected {
		t.Error("overlay disconnected after bootstrap")
	}
	if a.Captured != 0 {
		t.Errorf("captured clusters at bootstrap: %d", a.Captured)
	}
}

func TestBootstrapValidation(t *testing.T) {
	w, err := NewWorld(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(5, nil); err == nil {
		t.Error("bootstrap below two clusters accepted")
	}
	if err := w.Bootstrap(4096, nil); err == nil {
		t.Error("bootstrap above N accepted")
	}
	if err := w.Bootstrap(400, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(400, nil); err == nil {
		t.Error("double bootstrap accepted")
	}
}

func TestJoinAddsNode(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0.1)
	before := w.NumNodes()
	x, err := w.JoinAuto(false)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumNodes() != before+1 {
		t.Errorf("nodes = %d, want %d", w.NumNodes(), before+1)
	}
	if !w.Contains(x) {
		t.Error("joined node missing")
	}
	if _, ok := w.ClusterOf(x); !ok {
		t.Error("joined node has no cluster")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Joins != 1 {
		t.Errorf("join stat = %d", w.Stats().Joins)
	}
}

func TestJoinByzantineTracked(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0)
	x, err := w.JoinAuto(true)
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsByzantine(x) {
		t.Error("byzantine joiner not tracked")
	}
	if w.NumByzantine() != 1 {
		t.Errorf("byz count = %d", w.NumByzantine())
	}
}

func TestLeaveRemovesNode(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0.1)
	x, ok := w.RandomHonestNode(xrand.New(99))
	if !ok {
		t.Fatal("no honest node")
	}
	before := w.NumNodes()
	if err := w.Leave(x); err != nil {
		t.Fatal(err)
	}
	if w.NumNodes() != before-1 {
		t.Errorf("nodes = %d, want %d", w.NumNodes(), before-1)
	}
	if w.Contains(x) {
		t.Error("left node still present")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveUnknownNodeFails(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0)
	if err := w.Leave(ids.NodeID(1 << 40)); err == nil {
		t.Error("leave of unknown node accepted")
	}
}

func TestJoinBeforeBootstrapFails(t *testing.T) {
	w, err := NewWorld(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.JoinAuto(false); err == nil {
		t.Error("join before bootstrap accepted")
	}
}

func TestSplitOnGrowth(t *testing.T) {
	cfg := smallConfig()
	w := testWorld(t, cfg, 300, 0)
	clustersBefore := w.NumClusters()
	// Push enough joins to force splits: average size grows to ~47,
	// beyond the split threshold of 40.
	for i := 0; i < 400; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Splits == 0 {
		t.Error("no split after 400 joins (133% growth)")
	}
	if w.NumClusters() <= clustersBefore {
		t.Errorf("clusters %d did not grow from %d", w.NumClusters(), clustersBefore)
	}
	a := w.Audit()
	if a.MaxSize > cfg.SplitThreshold() {
		t.Errorf("max size %d exceeds split threshold %d", a.MaxSize, cfg.SplitThreshold())
	}
	if !a.OverlayConnected {
		t.Error("overlay disconnected after splits")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeOnShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("merge churn sweep skipped in -short mode")
	}
	cfg := smallConfig()
	w := testWorld(t, cfg, 500, 0)
	r := xrand.New(5)
	for i := 0; i < 300; i++ {
		x, ok := w.RandomNode(r)
		if !ok {
			t.Fatal("network emptied")
		}
		if err := w.Leave(x); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Merges == 0 {
		t.Error("no merge after 60% shrink")
	}
	a := w.Audit()
	if a.MinSize < cfg.MergeThreshold() {
		t.Errorf("min size %d below merge threshold %d", a.MinSize, cfg.MergeThreshold())
	}
	if !a.OverlayConnected {
		t.Error("overlay disconnected after merges")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRejoinAllStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("merge churn sweep skipped in -short mode")
	}
	cfg := smallConfig()
	cfg.MergeStrategy = MergeRejoinAll
	w := testWorld(t, cfg, 500, 0)
	r := xrand.New(6)
	for i := 0; i < 250; i++ {
		x, ok := w.RandomNode(r)
		if !ok {
			break
		}
		if err := w.Leave(x); err != nil {
			t.Fatal(err)
		}
		// Drain rejoins as subsequent time steps.
		for _, q := range w.PendingRejoins() {
			if err := w.Rejoin(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Stats().Merges == 0 {
		t.Error("no merges under rejoin-all strategy")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangePreservesPopulation(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0.25)
	nodes, byz := w.NumNodes(), w.NumByzantine()
	for i := 0; i < 20; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
	}
	if w.NumNodes() != nodes+20 || w.NumByzantine() != byz {
		t.Errorf("population drifted: %d/%d -> %d/%d", nodes, byz, w.NumNodes(), w.NumByzantine())
	}
}

func TestStatsAccumulate(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0.2)
	r := xrand.New(7)
	for i := 0; i < 10; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
		x, _ := w.RandomNode(r)
		if err := w.Leave(x); err != nil {
			t.Fatal(err)
		}
	}
	s := w.Stats()
	if s.Joins != 10 || s.Leaves != 10 {
		t.Errorf("ops = %d/%d, want 10/10", s.Joins, s.Leaves)
	}
	if s.Swaps == 0 {
		t.Error("no swaps recorded despite exchanges")
	}
	if s.MaxByzFractionEver <= 0 {
		t.Error("max byz fraction never tracked")
	}
	if w.Ledger().Messages() == 0 || w.Ledger().Rounds() == 0 {
		t.Error("no costs charged")
	}
}

func TestChurnMaintainsInvariants(t *testing.T) {
	// The E1 miniature: sustained 10% Byzantine churn, every invariant
	// checked at every step. At tau=0.10 and clusters of ~20 the capture
	// probability per cluster-step is ~1e-5, so any capture in this short
	// run indicates a protocol bug rather than binomial bad luck. (The
	// tau/K tail-rate tradeoff itself is measured by experiments E1/E12.)
	cfg := smallConfig()
	cfg.Seed = 11
	w := testWorld(t, cfg, 400, 0.10)
	r := xrand.New(8)
	byzBudget := 0.10
	for step := 0; step < 120; step++ {
		wantByz := r.Bool(byzBudget)
		if r.Bool(0.5) && w.NumNodes() > 350 {
			var x ids.NodeID
			var ok bool
			if wantByz {
				x, ok = w.RandomByzantineNode(r)
			} else {
				x, ok = w.RandomHonestNode(r)
			}
			if !ok {
				continue
			}
			if err := w.Leave(x); err != nil {
				t.Fatal(err)
			}
		} else {
			canByz := float64(w.NumByzantine()+1) <= byzBudget*float64(w.NumNodes()+1)
			if _, err := w.JoinAuto(wantByz && canByz); err != nil {
				t.Fatal(err)
			}
		}
		if step%10 == 0 {
			if err := w.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		a := w.Audit()
		if a.Captured > 0 {
			t.Fatalf("step %d: cluster captured: %v", step, a)
		}
		if !a.OverlayConnected {
			t.Fatalf("step %d: overlay disconnected", step)
		}
	}
}

func TestOverlayHealthAfterChurn(t *testing.T) {
	w := testWorld(t, smallConfig(), 400, 0.1)
	for i := 0; i < 60; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
	}
	h := w.OverlayHealth(80, 40)
	if !h.Connected {
		t.Fatal("unhealthy overlay")
	}
	if h.MaxDegree > w.Config().DegreeCap() {
		t.Errorf("max degree %d above cap %d", h.MaxDegree, w.Config().DegreeCap())
	}
	if h.SpectralGap <= 0 {
		t.Errorf("spectral gap %v", h.SpectralGap)
	}
}

func TestHijackerInstallation(t *testing.T) {
	w := testWorld(t, smallConfig(), 300, 0)
	w.SetHijacker(nil) // must not panic; proxy handles nil
	if _, err := w.JoinAuto(false); err != nil {
		t.Fatal(err)
	}
}

func TestMergeStrategyString(t *testing.T) {
	if MergeAbsorbRandom.String() == "" || MergeRejoinAll.String() == "" {
		t.Error("empty merge strategy name")
	}
	if MergeStrategy(9).String() == "" {
		t.Error("unknown strategy produced empty string")
	}
}
