package core

import (
	"testing"

	"nowover/internal/ids"
)

// The clusterState.remove paths surfaced while writing the invariant
// layer: removing the last member must keep the backing array for arena
// recycling, a swap-moved node must stay removable, a double/absent
// removal must be an explicit error, and a mismatched byz flag must not
// underflow the Byzantine counter.

func newClusterState(members ...ids.NodeID) *clusterState {
	cs := &clusterState{}
	for _, x := range members {
		cs.add(x, false)
	}
	return cs
}

func TestClusterStateRemoveLast(t *testing.T) {
	cs := newClusterState(1, 2, 3)
	for _, x := range []ids.NodeID{2, 1, 3} {
		if err := cs.remove(x, false); err != nil {
			t.Fatal(err)
		}
	}
	if len(cs.members) != 0 {
		t.Fatalf("state not empty after removing all: %v", cs.members)
	}
	// The emptied record must RETAIN its backing array: retired records
	// return to the shard free list and the retained capacity is what
	// makes the recycled record's next fill allocation-free.
	if cap(cs.members) == 0 {
		t.Fatal("emptied member list released its backing array")
	}
	// The emptied state must remain usable (merge refill / recycle path).
	cs.add(9, true)
	if cs.indexOf(9) != 0 || cs.byz != 1 || len(cs.members) != 1 {
		t.Fatalf("re-add after empty broken: %+v", cs)
	}
}

func TestClusterStateRemoveMoved(t *testing.T) {
	cs := newClusterState(10, 20, 30)
	// Removing 10 swap-moves 30 into slot 0; 30 must still be removable
	// and its index must be correct.
	if err := cs.remove(10, false); err != nil {
		t.Fatal(err)
	}
	if cs.indexOf(30) != 0 || cs.members[0] != 30 {
		t.Fatalf("swap-move bookkeeping broken: %v", cs.members)
	}
	if err := cs.remove(30, false); err != nil {
		t.Fatalf("moved node not removable: %v", err)
	}
	if len(cs.members) != 1 || cs.members[0] != 20 {
		t.Fatalf("unexpected survivors: %v", cs.members)
	}
}

func TestClusterStateRemoveAbsent(t *testing.T) {
	cs := newClusterState(1, 2)
	if err := cs.remove(7, false); err == nil {
		t.Fatal("removing an absent node succeeded")
	}
	if err := cs.remove(1, false); err != nil {
		t.Fatal(err)
	}
	if err := cs.remove(1, false); err == nil {
		t.Fatal("double removal succeeded")
	}
	if len(cs.members) != 1 {
		t.Fatalf("failed removals mutated state: %v", cs.members)
	}
}

func TestClusterStateByzUnderflowGuard(t *testing.T) {
	cs := newClusterState(1, 2)
	if err := cs.remove(1, true); err == nil {
		t.Fatal("byz-flagged removal from a byz-free cluster succeeded")
	}
	if cs.indexOf(1) < 0 {
		t.Fatal("rejected removal still dropped the node")
	}
	cs.add(3, true)
	if err := cs.remove(3, true); err != nil {
		t.Fatal(err)
	}
	if cs.byz != 0 {
		t.Fatalf("byz count %d after symmetric add/remove", cs.byz)
	}
}

func TestClusterStateCloneIndependent(t *testing.T) {
	cs := newClusterState(1, 2, 3)
	cs.add(4, true)
	cl := cs.clone()
	if err := cl.remove(2, false); err != nil {
		t.Fatal(err)
	}
	cl.add(99, true)
	if len(cs.members) != 4 || cs.byz != 1 {
		t.Fatalf("clone mutation leaked into original: %+v", cs)
	}
	if cs.indexOf(99) >= 0 {
		t.Fatal("clone insertion leaked into original member list")
	}
}
