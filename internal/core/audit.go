package core

import (
	"fmt"
	"strings"

	"nowover/internal/over"
	"nowover/internal/randnum"
)

// Audit is a point-in-time invariant check of the world: the quantities
// the paper's theorems bound. Cheap (O(#clusters)); call as often as
// needed. Structural expansion checks are costlier — see OverlayHealth.
type Audit struct {
	Nodes    int
	Byz      int
	Clusters int

	MinSize, MaxSize int
	// SizeLo/SizeHi are the configured merge/split thresholds for
	// reference.
	SizeLo, SizeHi int

	// MaxByzFraction is the worst current per-cluster Byzantine fraction.
	MaxByzFraction float64
	// Degraded counts clusters at >= 1/3 Byzantine (quorum rule at risk);
	// Captured counts clusters at >= 1/2 (adversary speaks for them).
	Degraded, Captured int

	MinDegree, MaxDegree int
	OverlayConnected     bool
}

// OK reports whether every invariant the paper maintains holds: all
// clusters strictly below 1/3 Byzantine, sizes within thresholds, overlay
// connected.
func (a Audit) OK() bool {
	return a.Degraded == 0 && a.Captured == 0 &&
		a.MinSize >= a.SizeLo && a.MaxSize <= a.SizeHi &&
		a.OverlayConnected
}

// String renders the audit compactly.
func (a Audit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d (byz %d) clusters=%d size=[%d,%d] (bounds %d..%d) ",
		a.Nodes, a.Byz, a.Clusters, a.MinSize, a.MaxSize, a.SizeLo, a.SizeHi)
	fmt.Fprintf(&b, "maxByzFrac=%.3f degraded=%d captured=%d deg=[%d,%d] connected=%v",
		a.MaxByzFraction, a.Degraded, a.Captured, a.MinDegree, a.MaxDegree, a.OverlayConnected)
	return b.String()
}

// Audit computes the invariant check.
func (w *World) Audit() Audit {
	a := Audit{
		Nodes:    len(w.nodes),
		Byz:      len(w.byzNodes),
		Clusters: len(w.clusters),
		SizeLo:   w.cfg.MergeThreshold(),
		SizeHi:   w.cfg.SplitThreshold(),
	}
	first := true
	for c, cs := range w.clusters {
		size := len(cs.members)
		if first {
			a.MinSize, a.MaxSize = size, size
			first = false
		} else {
			if size < a.MinSize {
				a.MinSize = size
			}
			if size > a.MaxSize {
				a.MaxSize = size
			}
		}
		if size > 0 {
			if f := float64(cs.byz) / float64(size); f > a.MaxByzFraction {
				a.MaxByzFraction = f
			}
		}
		switch randnum.Classify(size, cs.byz) {
		case randnum.Degraded:
			a.Degraded++
		case randnum.Captured:
			a.Captured++
			a.Degraded++ // captured clusters are degraded too
		}
		_ = c
	}
	g := w.overlay.Graph()
	a.MinDegree = g.MinDegree()
	a.MaxDegree = g.MaxDegree()
	a.OverlayConnected = g.Connected()
	return a
}

// OverlayHealth runs the structural OVER audit (degrees + expansion
// estimates); randomized analyses draw from a stream split off the world's
// seed so they do not perturb protocol randomness.
func (w *World) OverlayHealth(spectralIters, randomCuts int) over.Health {
	return w.overlay.CheckHealth(w.rng.Split(0xAEA1), spectralIters, randomCuts)
}

// CheckConsistency exhaustively cross-checks the world's redundant
// bookkeeping (membership indexes, Byzantine counts, size multiset,
// overlay/partition correspondence). Used by tests and the simulator's
// paranoid mode; returns the first inconsistency found.
func (w *World) CheckConsistency() error {
	if len(w.allNodes) != len(w.nodes) {
		return fmt.Errorf("consistency: %d indexed nodes vs %d records", len(w.allNodes), len(w.nodes))
	}
	totalMembers := 0
	maxSize := 0
	for c, cs := range w.clusters {
		if !w.overlay.Has(c) {
			return fmt.Errorf("consistency: cluster %v missing from overlay", c)
		}
		byz := 0
		for i, x := range cs.members {
			info, ok := w.nodes[x]
			if !ok {
				return fmt.Errorf("consistency: member %v of %v unknown", x, c)
			}
			if info.cluster != c {
				return fmt.Errorf("consistency: node %v thinks it is in %v, member list says %v", x, info.cluster, c)
			}
			if cs.pos[x] != i {
				return fmt.Errorf("consistency: position index broken for %v in %v", x, c)
			}
			if info.byz {
				byz++
			}
		}
		if byz != cs.byz {
			return fmt.Errorf("consistency: cluster %v byz count %d, actual %d", c, cs.byz, byz)
		}
		totalMembers += len(cs.members)
		if len(cs.members) > maxSize {
			maxSize = len(cs.members)
		}
	}
	if totalMembers != len(w.nodes) {
		return fmt.Errorf("consistency: %d members across clusters vs %d nodes", totalMembers, len(w.nodes))
	}
	if w.overlay.NumVertices() != len(w.clusters) {
		return fmt.Errorf("consistency: overlay has %d vertices vs %d clusters", w.overlay.NumVertices(), len(w.clusters))
	}
	if maxSize != w.maxSize {
		return fmt.Errorf("consistency: tracked max size %d, actual %d", w.maxSize, maxSize)
	}
	sizes := make(map[int]int)
	for _, cs := range w.clusters {
		if len(cs.members) > 0 {
			sizes[len(cs.members)]++
		}
	}
	for s, n := range sizes {
		if w.sizeCount[s] != n {
			return fmt.Errorf("consistency: size multiset at %d is %d, actual %d", s, w.sizeCount[s], n)
		}
	}
	for s, n := range w.sizeCount {
		if sizes[s] != n {
			return fmt.Errorf("consistency: size multiset extra entry %d=%d", s, n)
		}
	}
	byzTotal := 0
	for _, x := range w.byzNodes {
		info, ok := w.nodes[x]
		if !ok || !info.byz {
			return fmt.Errorf("consistency: byz index entry %v invalid", x)
		}
		byzTotal++
	}
	for x, info := range w.nodes {
		if info.byz {
			if _, ok := w.byzPos[x]; !ok {
				return fmt.Errorf("consistency: byz node %v missing from index", x)
			}
		}
	}
	_ = byzTotal
	return nil
}
