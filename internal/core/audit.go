package core

import (
	"fmt"
	"strings"

	"nowover/internal/ids"
	"nowover/internal/over"
	"nowover/internal/randnum"
)

// Audit is a point-in-time invariant check of the world: the quantities
// the paper's theorems bound. Cheap (O(#clusters)); call as often as
// needed. Structural expansion checks are costlier — see OverlayHealth.
type Audit struct {
	Nodes    int
	Byz      int
	Clusters int

	MinSize, MaxSize int
	// SizeLo/SizeHi are the configured merge/split thresholds for
	// reference.
	SizeLo, SizeHi int

	// MaxByzFraction is the worst current per-cluster Byzantine fraction.
	MaxByzFraction float64
	// Degraded counts clusters at >= 1/3 Byzantine (quorum rule at risk);
	// Captured counts clusters at >= 1/2 (adversary speaks for them).
	Degraded, Captured int

	MinDegree, MaxDegree int
	OverlayConnected     bool
}

// OK reports whether every invariant the paper maintains holds: all
// clusters strictly below 1/3 Byzantine, sizes within thresholds, overlay
// connected.
func (a Audit) OK() bool {
	return a.Degraded == 0 && a.Captured == 0 &&
		a.MinSize >= a.SizeLo && a.MaxSize <= a.SizeHi &&
		a.OverlayConnected
}

// String renders the audit compactly.
func (a Audit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d (byz %d) clusters=%d size=[%d,%d] (bounds %d..%d) ",
		a.Nodes, a.Byz, a.Clusters, a.MinSize, a.MaxSize, a.SizeLo, a.SizeHi)
	fmt.Fprintf(&b, "maxByzFrac=%.3f degraded=%d captured=%d deg=[%d,%d] connected=%v",
		a.MaxByzFraction, a.Degraded, a.Captured, a.MinDegree, a.MaxDegree, a.OverlayConnected)
	return b.String()
}

// Audit computes the invariant check.
func (w *World) Audit() Audit {
	a := Audit{
		Nodes:    len(w.allNodes),
		Byz:      len(w.byzNodes),
		Clusters: w.nClusters,
		SizeLo:   w.cfg.MergeThreshold(),
		SizeHi:   w.cfg.SplitThreshold(),
	}
	first := true
	for _, s := range w.shards {
		s.mu.RLock()
		// Ascending slot walk = ascending ClusterID within the shard:
		// min/max/fraction folds are commutative, but the audit is part of
		// rendered output and the determinism contract is cheaper to hold
		// uniformly than to re-prove per fold.
		for _, cs := range s.clusters {
			if cs == nil {
				continue
			}
			size := len(cs.members)
			if first {
				a.MinSize, a.MaxSize = size, size
				first = false
			} else {
				if size < a.MinSize {
					a.MinSize = size
				}
				if size > a.MaxSize {
					a.MaxSize = size
				}
			}
			if size > 0 {
				if f := float64(cs.byz) / float64(size); f > a.MaxByzFraction {
					a.MaxByzFraction = f
				}
			}
			switch randnum.Classify(size, cs.byz) {
			case randnum.Degraded:
				a.Degraded++
			case randnum.Captured:
				a.Captured++
				a.Degraded++ // captured clusters are degraded too
			}
		}
		s.mu.RUnlock()
	}
	g := w.overlay.Graph()
	a.MinDegree = g.MinDegree()
	a.MaxDegree = g.MaxDegree()
	a.OverlayConnected = g.Connected()
	return a
}

// OverlayHealth runs the structural OVER audit (degrees + expansion
// estimates); randomized analyses draw from a stream split off the world's
// seed so they do not perturb protocol randomness.
func (w *World) OverlayHealth(spectralIters, randomCuts int) over.Health {
	return w.overlay.CheckHealth(w.rng.Split(0xAEA1), spectralIters, randomCuts)
}

// CheckConsistency exhaustively cross-checks the world's redundant
// bookkeeping (membership indexes, Byzantine counts, per-shard size
// multisets and max trackers, the incremental security classes and
// insecure counters, arena slot placement, overlay/partition
// correspondence). Used by tests and the simulator's paranoid mode;
// returns the first inconsistency found. All walks run in ascending
// slot (= ascending ID) order, so which inconsistency is reported first
// is a function of the state, not of any map hash seed.
func (w *World) CheckConsistency() error {
	nodeRecords := 0
	for _, ns := range w.nodeShards {
		present := 0
		for _, info := range ns.nodes {
			if info.present {
				present++
			}
		}
		if present != ns.count {
			return fmt.Errorf("consistency: node shard %d counts %d records, actual %d", ns.index, ns.count, present)
		}
		nodeRecords += present
	}
	if len(w.allNodes) != nodeRecords {
		return fmt.Errorf("consistency: %d indexed nodes vs %d records", len(w.allNodes), nodeRecords)
	}
	totalMembers := 0
	totalClusters := 0
	maxSize := 0
	for si, s := range w.shards {
		shardMax := 0
		liveSlots := 0
		degraded, captured := 0, 0
		sizes := make([]int32, len(s.sizeCount))
		queued := make(map[int32]bool, len(s.dirtySlots))
		for _, slot := range s.dirtySlots {
			queued[slot] = true
		}
		for slot, cs := range s.clusters {
			if cs == nil {
				continue
			}
			c := s.idAt(slot)
			liveSlots++
			if !w.overlay.Has(c) {
				return fmt.Errorf("consistency: cluster %v missing from overlay", c)
			}
			byz := 0
			for _, x := range cs.members {
				info, ok := w.nodeInfoOf(x)
				if !ok {
					return fmt.Errorf("consistency: member %v of %v unknown", x, c)
				}
				if info.cluster != c {
					return fmt.Errorf("consistency: node %v thinks it is in %v, member list says %v", x, info.cluster, c)
				}
				if info.byz {
					byz++
				}
			}
			if byz != cs.byz {
				return fmt.Errorf("consistency: cluster %v byz count %d, actual %d", c, cs.byz, byz)
			}
			want := randnum.Secure
			if len(cs.members) > 0 {
				want = randnum.Classify(len(cs.members), cs.byz)
			}
			if cs.sec != want {
				return fmt.Errorf("consistency: cluster %v live class %v, actual %v", c, cs.sec, want)
			}
			if cs.sec >= randnum.Degraded {
				degraded++
			}
			if cs.sec == randnum.Captured {
				captured++
			}
			if cs.dirty && !queued[int32(slot)] {
				return fmt.Errorf("consistency: cluster %v dirty but not queued for settle", c)
			}
			totalMembers += len(cs.members)
			totalClusters++
			if len(cs.members) > shardMax {
				shardMax = len(cs.members)
			}
			if n := len(cs.members); n > 0 {
				if n >= len(sizes) {
					sizes = append(sizes, make([]int32, n+1-len(sizes))...)
				}
				sizes[n]++
			}
		}
		if liveSlots != s.liveSlots {
			return fmt.Errorf("consistency: shard %d tracks %d live slots, actual %d", si, s.liveSlots, liveSlots)
		}
		if degraded != s.degraded || captured != s.captured {
			return fmt.Errorf("consistency: shard %d insecure counters %d/%d, actual %d/%d",
				si, s.degraded, s.captured, degraded, captured)
		}
		if shardMax != s.maxSize {
			return fmt.Errorf("consistency: shard %d tracked max size %d, actual %d", si, s.maxSize, shardMax)
		}
		if shardMax > maxSize {
			maxSize = shardMax
		}
		for sz := range sizes {
			var got int32
			if sz < len(s.sizeCount) {
				got = s.sizeCount[sz]
			}
			if got != sizes[sz] {
				return fmt.Errorf("consistency: shard %d size multiset at %d is %d, actual %d", si, sz, got, sizes[sz])
			}
		}
		for sz := len(sizes); sz < len(s.sizeCount); sz++ {
			if n := s.sizeCount[sz]; n != 0 {
				return fmt.Errorf("consistency: shard %d size multiset extra entry %d=%d", si, sz, n)
			}
		}
	}
	if totalMembers != nodeRecords {
		return fmt.Errorf("consistency: %d members across clusters vs %d nodes", totalMembers, nodeRecords)
	}
	if totalClusters != w.nClusters {
		return fmt.Errorf("consistency: cluster counter %d vs %d stored clusters", w.nClusters, totalClusters)
	}
	if w.overlay.NumVertices() != totalClusters {
		return fmt.Errorf("consistency: overlay has %d vertices vs %d clusters", w.overlay.NumVertices(), totalClusters)
	}
	if maxSize != w.MaxClusterSize() {
		return fmt.Errorf("consistency: tracked max size %d, actual %d", w.MaxClusterSize(), maxSize)
	}
	for _, x := range w.byzNodes {
		info, ok := w.nodeInfoOf(x)
		if !ok || !info.byz {
			return fmt.Errorf("consistency: byz index entry %v invalid", x)
		}
	}
	for _, ns := range w.nodeShards {
		for slot, info := range ns.nodes {
			if !info.present {
				continue
			}
			x := ids.NodeID(uint64(slot)*uint64(ns.stride) + uint64(ns.index))
			if p := w.samplePos(x); p < 0 || w.allNodes[p] != x {
				return fmt.Errorf("consistency: node %v missing from flat index", x)
			}
			if info.byz {
				if p := w.byzSamplePos(x); p < 0 || w.byzNodes[p] != x {
					return fmt.Errorf("consistency: byz node %v missing from index", x)
				}
			}
		}
	}
	return nil
}
