package core

import (
	"testing"

	"nowover/internal/ids"
)

// Regression layer for the size-multiset max tracker: the historical
// map-backed noteSizeChange deleted zeroed entries and then re-read the
// deleted count to decide whether the stale-max recompute was needed —
// an ordering hazard the dense slice multiset removes by construction.
// These tests pin the tracker against a ground-truth recompute through
// every transition kind, at the unit level and through the protocol's
// own shrink/split/merge paths.

// recountMax recomputes the true max from the multiset.
func recountMax(s *worldShard) int {
	for m := len(s.sizeCount) - 1; m > 0; m-- {
		if s.sizeCount[m] != 0 {
			return m
		}
	}
	return 0
}

func TestNoteSizeChangeMaxScanDown(t *testing.T) {
	s := newWorldShard(1, 0)
	check := func(want int) {
		t.Helper()
		if s.maxSize != want {
			t.Fatalf("tracked max %d, want %d", s.maxSize, want)
		}
		if got := recountMax(s); got != s.maxSize {
			t.Fatalf("tracked max %d, multiset recount %d", s.maxSize, got)
		}
	}
	s.noteSizeChange(0, 5) // first cluster appears at size 5
	s.noteSizeChange(0, 5) // a second cluster ties the max
	s.noteSizeChange(0, 3)
	check(5)
	s.noteSizeChange(5, 4) // one of the two maxima shrinks: max holds
	check(5)
	s.noteSizeChange(5, 4) // the unique max shrinks: scan down
	check(4)
	s.noteSizeChange(4, 6) // growth past the old max
	check(6)
	s.noteSizeChange(6, 0) // the unique max retires outright
	check(4)
	s.noteSizeChange(4, 0)
	check(3)
	s.noteSizeChange(3, 0) // last cluster gone
	check(0)
	s.noteSizeChange(0, 7) // repopulate from empty
	check(7)
}

// TestMaxSizeTrackerThroughShrinkSplitMerge drives the (unique) largest
// cluster through the transitions that stress the stale-max recompute —
// shrinking the current maximum member by member, splitting an oversized
// cluster in half, merging an undersized one away — and cross-checks the
// tracked max against ground truth after every operation through the
// CheckInvariants oracle (which recounts the true max on each call).
func TestMaxSizeTrackerThroughShrinkSplitMerge(t *testing.T) {
	for _, shards := range []int{1, 4} {
		w := newTestWorld(t, shards, 99)
		requireInvariants(t, w)

		pick := func(want func(sz, best int) bool) ids.ClusterID {
			var best ids.ClusterID
			bestSize := -1
			for _, c := range w.Clusters() {
				if sz := w.Size(c); bestSize < 0 || want(sz, bestSize) {
					best, bestSize = c, sz
				}
			}
			return best
		}
		largest := func() ids.ClusterID {
			return pick(func(sz, best int) bool { return sz > best })
		}
		smallest := func() ids.ClusterID {
			return pick(func(sz, best int) bool { return sz < best })
		}
		leaveOne := func(c ids.ClusterID) {
			t.Helper()
			members := w.Members(c)
			if len(members) == 0 {
				t.Fatalf("shards=%d: cluster %v empty", shards, c)
			}
			if err := w.Leave(members[0]); err != nil {
				t.Fatalf("shards=%d leave from %v: %v", shards, c, err)
			}
			requireInvariants(t, w)
		}

		// Shrink: peel members off whatever cluster currently holds the
		// max, forcing repeated scan-downs of the tracked maximum.
		maxBefore := w.MaxClusterSize()
		for i := 0; i < 30; i++ {
			leaveOne(largest())
		}
		if got := w.MaxClusterSize(); got >= maxBefore {
			t.Fatalf("shards=%d: max %d did not shrink from %d", shards, got, maxBefore)
		}

		// Merge: drain the smallest cluster through the merge threshold so
		// a retire + refill of the absorbing cluster goes through the
		// multiset.
		for i := 0; i < 100 && w.Stats().Merges == 0; i++ {
			leaveOne(smallest())
		}
		if w.Stats().Merges == 0 {
			t.Fatalf("shards=%d: drain phase produced no merge", shards)
		}

		// Grow: joins until at least one split bisects a max-size cluster.
		before := w.Stats().Splits
		for i := 0; i < 400 && w.Stats().Splits == before; i++ {
			if _, err := w.JoinAuto(i%7 == 0); err != nil {
				t.Fatalf("shards=%d join %d: %v", shards, i, err)
			}
			requireInvariants(t, w)
		}
		if w.Stats().Splits == before {
			t.Fatalf("shards=%d: growth phase produced no split", shards)
		}
	}
}
