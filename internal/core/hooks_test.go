package core

import (
	"fmt"
	"runtime"
	"testing"

	"nowover/internal/adversary"
	"nowover/internal/xrand"
)

// newHookedWorld wires the full adversary stack onto a test world: a
// JoinLeaveAttack fixation feeding a CapturedHijacker that both redirects
// walks (SetHijacker) and steers randCl scoring (SetSteerHook) — one hook
// object, both roles, one batch lifecycle.
func newHookedWorld(t testing.TB, shards int, seed uint64) (*World, *adversary.CapturedHijacker) {
	t.Helper()
	w := newTestWorld(t, shards, seed)
	h := &adversary.CapturedHijacker{
		View:     w,
		Strategy: &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}},
	}
	w.SetHijacker(h)
	w.SetSteerHook(h)
	return w, h
}

// TestHookedShardedMatchesSerial is the tentpole's determinism regression:
// a world with a hijacker redirecting walks AND a steer hook biasing
// randCl draws — the configuration the old scheduler forced onto the
// one-worker fallback — must now plan at full parallelism and still be
// byte-identical between Shards=1 and Shards=8, at any GOMAXPROCS. The
// contract that makes this possible: plan-phase Redirect/Score are pure
// reads of the pre-batch fixation, and all hook bookkeeping (capture
// tallies, ratchet refreshes) happens in BeginBatch/CommitOp, which the
// scheduler drives serially in op order.
func TestHookedShardedMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			serial, hs := newHookedWorld(t, 1, 42)
			sharded, h8 := newHookedWorld(t, 8, 42)
			if fp1, fp8 := worldFingerprint(serial), worldFingerprint(sharded); fp1 != fp8 {
				t.Fatalf("bootstrap fingerprints differ:\n%s\nvs\n%s", fp1, fp8)
			}
			rs := xrand.New(7)
			r8 := xrand.New(7)
			batches := 25
			if testing.Short() {
				batches = 8
			}
			deferred := false
			for i := 0; i < batches; i++ {
				b1 := randomBatch(serial, rs, 8)
				b8 := randomBatch(sharded, r8, 8)
				res1 := serial.ExecBatch(b1)
				res8 := sharded.ExecBatch(b8)
				for j := range res1 {
					e1, e8 := fmt.Sprint(res1[j].Err), fmt.Sprint(res8[j].Err)
					if res1[j].Node != res8[j].Node || e1 != e8 || res1[j].Deferred != res8[j].Deferred {
						t.Fatalf("batch %d op %d diverged: serial=%+v sharded=%+v", i, j, res1[j], res8[j])
					}
					deferred = deferred || res1[j].Deferred
				}
				if fp1, fp8 := worldFingerprint(serial), worldFingerprint(sharded); fp1 != fp8 {
					t.Fatalf("state diverged after batch %d:\n--- serial ---\n%s\n--- sharded ---\n%s", i, fp1, fp8)
				}
				if hs.Hijacked != h8.Hijacked || hs.CommittedOps != h8.CommittedOps {
					t.Fatalf("hook bookkeeping diverged after batch %d: hijacked %d/%d ops %d/%d",
						i, hs.Hijacked, h8.Hijacked, hs.CommittedOps, h8.CommittedOps)
				}
				if err := CheckInvariants(serial); err != nil {
					t.Fatalf("serial invariants after batch %d: %v", i, err)
				}
				if err := CheckInvariants(sharded); err != nil {
					t.Fatalf("sharded invariants after batch %d: %v", i, err)
				}
			}
			if serial.Stats() != sharded.Stats() {
				t.Fatalf("final stats diverged:\n%+v\nvs\n%+v", serial.Stats(), sharded.Stats())
			}
			if serial.Stats().HijackedWalks == 0 {
				t.Fatal("hooked run hijacked no walks: the redirect path never ran")
			}
			if hs.Hijacked != serial.Stats().HijackedWalks {
				t.Fatalf("commit fold lost walks: hook saw %d, world recorded %d",
					hs.Hijacked, serial.Stats().HijackedWalks)
			}
			if !deferred {
				t.Fatal("no op ever deferred: the hooked serial-tail path never ran")
			}
		})
	}
}

// TestHookedRepeatableAcrossRuns guards the hook lifecycle against
// map-iteration or scheduling order leaking into results (the hooked
// sibling of TestBatchRepeatableAcrossRuns).
func TestHookedRepeatableAcrossRuns(t *testing.T) {
	run := func() (string, int64, int64) {
		w, h := newHookedWorld(t, 8, 1234)
		r := xrand.New(5)
		for i := 0; i < 10; i++ {
			w.ExecBatch(randomBatch(w, r, 6))
		}
		return worldFingerprint(w), h.Hijacked, h.CommittedOps
	}
	fa, hija, opsa := run()
	fb, hijb, opsb := run()
	if fa != fb || hija != hijb || opsa != opsb {
		t.Fatalf("repeat hooked runs diverged: hijacked %d/%d ops %d/%d\n%s\nvs\n%s",
			hija, hijb, opsa, opsb, fa, fb)
	}
}

// TestHookLifecycleDedup: one object registered as both hijacker and
// steerer must see exactly one BeginBatch/CommitOp stream, and replacing
// or clearing hooks must detach the lifecycle.
func TestHookLifecycleDedup(t *testing.T) {
	w := newTestWorld(t, 1, 9)
	h := &adversary.CapturedHijacker{
		View:     w,
		Strategy: &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}},
	}
	w.SetHijacker(h)
	w.SetSteerHook(h)
	res := w.ExecBatch([]Op{{Kind: OpJoin}, {Kind: OpJoin}})
	for _, rr := range res {
		if rr.Err != nil {
			t.Fatal(rr.Err)
		}
	}
	if h.CommittedOps != 2 {
		t.Fatalf("dual-registered hook saw %d commits for a 2-op batch, want 2 (dedup failed)", h.CommittedOps)
	}
	w.SetHijacker(nil)
	w.SetSteerHook(nil)
	w.ExecBatch([]Op{{Kind: OpJoin}})
	if h.CommittedOps != 2 {
		t.Fatalf("cleared hook still saw commits: %d", h.CommittedOps)
	}
}

// BenchmarkExecBatchHookedExchange is the hooked-plan hot path the gate
// enforces: the lean exchange regime with a live hijacker+steer hook. The
// hook contract is designed so steady state adds ZERO allocations over the
// unhooked path — BeginBatch revalidates the cached fixation with a Size
// probe, Redirect/Score are pure reads, and CommitOp folds into existing
// counters.
func BenchmarkExecBatchHookedExchange(b *testing.B) {
	w, _ := newHookedWorld(b, 1, 42)
	r := xrand.New(7)
	var ops []Op
	var res []OpResult
	for i := 0; i < 32; i++ {
		ops = fillExchangeBatch(w, r, ops, 4)
		res = w.ExecBatchInto(res, ops)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = fillExchangeBatch(w, r, ops, 4)
		res = w.ExecBatchInto(res, ops)
	}
	_ = res
}
