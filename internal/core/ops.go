package core

import (
	"fmt"
	"math"

	"nowover/internal/exchange"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// The maintenance operations are written against an explicit (ledger, rng)
// pair rather than the world's own, so the op scheduler can replay a
// deferred operation on its per-op derived stream and ledger. The classic
// public API passes (w.led, w.rng, settle=true) and is byte-identical to
// the historical single-stream behavior.

// Bootstrap runs the initialization phase (paper section 3.2) at size n0:
// network discovery, Byzantine-agreement clusterization by a representative
// cluster, the random partition into clusters of K*log2(N) nodes, and the
// Erdos-Renyi overlay. corrupt decides which of the n0 initial node slots
// the adversary controls (the paper's adversary corrupts its tau fraction
// before the protocol starts).
//
// Discovery and agreement costs are charged analytically here (the paper's
// O(n*e) and O~(n^{3/2}) bounds); experiment E9 runs the message-accurate
// discovery implementation separately.
func (w *World) Bootstrap(n0 int, corrupt func(slot int) bool) error {
	if w.bootstrapped {
		return fmt.Errorf("core: world already bootstrapped")
	}
	target := w.cfg.TargetClusterSize()
	if n0 < 2*target {
		return fmt.Errorf("core: n0=%d below two clusters of %d", n0, target)
	}
	if n0 > w.cfg.N {
		return fmt.Errorf("core: n0=%d exceeds N=%d", n0, w.cfg.N)
	}

	// Initialization cost model: flooding discovery on a polylog-degree
	// initial graph (e = n*log2(n)/2 edges), then clusterization via an
	// off-the-shelf Byzantine agreement at O~(n^{3/2}).
	fn := float64(n0)
	l2 := math.Log2(fn)
	w.led.Charge(metrics.ClassDiscovery, int64(fn*fn*l2/2))
	w.led.AddRounds(int64(math.Ceil(l2)))
	w.led.Charge(metrics.ClassAgreement, int64(fn*math.Sqrt(fn)*l2))
	w.led.AddRounds(int64(math.Ceil(l2 * l2)))

	// Random partition by the representative cluster: a random ordering,
	// cut into consecutive chunks of the target size.
	slots := w.rng.Perm(n0)
	byz := make([]bool, n0)
	for i := range byz {
		byz[i] = corrupt != nil && corrupt(i)
	}
	var clusterIDs []ids.ClusterID
	for start := 0; start < n0; start += target {
		end := start + target
		if end > n0 {
			end = n0
		}
		if end-start < w.cfg.MergeThreshold() && len(clusterIDs) > 0 {
			// Fold an undersized tail into the previous cluster.
			prev := clusterIDs[len(clusterIDs)-1]
			for _, slot := range slots[start:end] {
				w.seedNode(prev, byz[slot])
			}
			break
		}
		c := w.clAlloc.NextCluster()
		w.putCluster(c)
		clusterIDs = append(clusterIDs, c)
		for _, slot := range slots[start:end] {
			w.seedNode(c, byz[slot])
		}
	}

	// Overlay: Erdos-Renyi at the density giving the OVER target degree.
	p := 1.0
	if len(clusterIDs) > 1 {
		p = float64(w.cfg.TargetDegree()) / float64(len(clusterIDs)-1)
		if p > 1 {
			p = 1
		}
	}
	if _, err := w.overlay.Bootstrap(w.rng.Split(0xB007), clusterIDs, p); err != nil {
		return err
	}

	// The representative cluster tells each node its cluster, the cluster
	// members, and the composition of adjacent clusters.
	for _, c := range clusterIDs {
		size := int64(w.Size(c))
		w.led.Charge(metrics.ClassInterCluster, size*(size-1))
	}
	g := w.overlay.Graph()
	for _, c := range clusterIDs {
		for _, d := range g.Neighbors(c) {
			w.led.Charge(metrics.ClassInterCluster, int64(w.Size(c))*int64(w.Size(d)))
		}
	}
	w.led.AddRounds(2)
	w.bootstrapped = true
	w.settleSecurity()
	return nil
}

// seedNode creates one initial node in cluster c.
func (w *World) seedNode(c ids.ClusterID, byz bool) {
	x := w.nodeAlloc.NextNode()
	if err := w.insertMember(c, x, byz); err != nil {
		panic(err) // bootstrap seeds only clusters it just created
	}
	w.registerNode(x, byz, c)
}

// JoinAuto performs a Join whose contact cluster is chosen uniformly — the
// honest arrival case.
func (w *World) JoinAuto(byz bool) (ids.NodeID, error) {
	contact, ok := w.RandomCluster(w.rng)
	if !ok {
		return 0, fmt.Errorf("core: no clusters to contact")
	}
	return w.Join(byz, contact)
}

// Join executes the paper's Join operation (Algorithm 1 + section 3.3): the
// new node contacts `contact`, randCl picks the insertion cluster, the
// cluster inserts the node and exchanges all of its nodes, splitting if it
// exceeded the threshold. Returns the new node's ID.
func (w *World) Join(byz bool, contact ids.ClusterID) (ids.NodeID, error) {
	x := w.nodeAlloc.NextNode()
	if err := w.joinExisting(w.led, w.rng, x, byz, contact, true); err != nil {
		return 0, err
	}
	return x, nil
}

// joinExisting inserts a specific node identity (fresh or rejoining).
func (w *World) joinExisting(led *metrics.Ledger, rng *xrand.Rand, x ids.NodeID, byz bool, contact ids.ClusterID, settle bool) error {
	if !w.bootstrapped {
		return fmt.Errorf("core: join before bootstrap")
	}
	if w.Contains(x) {
		return fmt.Errorf("core: node %v already present", x)
	}
	if !w.hasCluster(contact) {
		return fmt.Errorf("core: join contact %v is not a cluster: %w", contact, ErrUnknownCluster)
	}
	out, err := w.walker.Biased(led, rng, contact)
	if err != nil {
		return fmt.Errorf("core: join walk: %w", err)
	}
	if out.Hijacked {
		w.stats.HijackedWalks++
	}
	target := out.End
	if err := w.insertMember(target, x, byz); err != nil {
		return err
	}
	w.registerNode(x, byz, target)
	chargeInsertion(w, led, target)

	if w.cfg.ExchangeOnJoin {
		rep, err := w.exch.Run(led, rng, target)
		if err != nil {
			return fmt.Errorf("core: join exchange: %w", err)
		}
		w.stats.HijackedWalks += int64(rep.Hijacked)
	}
	if w.Size(target) > w.cfg.SplitThreshold() {
		if err := w.split(led, rng, target); err != nil {
			return fmt.Errorf("core: join split: %w", err)
		}
	}
	w.stats.Joins++
	if settle {
		w.settleSecurity()
	}
	return nil
}

// chargeInsertion charges the cost of installing one node into cluster c:
// the cluster's members update their views, adjacent clusters are informed,
// and the node downloads its cluster and neighborhood composition. It is
// written against walk.Topology so the classic path (on the world) and the
// op scheduler's planner (on a planView) share one cost model.
func chargeInsertion(t walk.Topology, led *metrics.Ledger, c ids.ClusterID) {
	size := int64(t.Size(c))
	led.Charge(metrics.ClassIntraCluster, size-1)
	var nbr int64
	for i, d := 0, t.Degree(c); i < d; i++ {
		nbr += int64(t.Size(t.NeighborAt(c, i)))
	}
	led.Charge(metrics.ClassInterCluster, size*nbr+size+nbr)
	led.AddRounds(2)
}

// chargeDeparture charges the cost of detecting one departure from c and
// cleaning up views: the remaining members all notice, and every adjacent
// cluster is told the new composition. Shared between the classic leave
// path and the scheduler's leave planner; call BEFORE removing the node.
func chargeDeparture(t walk.Topology, led *metrics.Ledger, c ids.ClusterID) {
	size := int64(t.Size(c))
	led.Charge(metrics.ClassIntraCluster, size-1)
	var nbrMass int64
	for i, d := 0, t.Degree(c); i < d; i++ {
		nbrMass += int64(t.Size(t.NeighborAt(c, i)))
	}
	led.Charge(metrics.ClassInterCluster, (size-1)*nbrMass)
	led.AddRounds(2)
}

// Leave executes the paper's Leave operation (Algorithm 2): the cluster
// detects the departure, exchanges all its nodes, cascades an exchange
// onto every cluster that received one of them (or, under
// Config.GroupedCascade, one grouped shuffle round over the whole
// receiver set — see exchange.CascadeRound), and merges if it fell below
// the threshold.
func (w *World) Leave(x ids.NodeID) error {
	return w.leaveWith(w.led, w.rng, x, true)
}

func (w *World) leaveWith(led *metrics.Ledger, rng *xrand.Rand, x ids.NodeID, settle bool) error {
	if !w.bootstrapped {
		return fmt.Errorf("core: leave before bootstrap")
	}
	info, ok := w.nodeInfoOf(x)
	if !ok {
		return fmt.Errorf("core: leave of node %v: %w", x, ErrUnknownNode)
	}
	c := info.cluster
	chargeDeparture(w, led, c)

	if err := w.removeMember(c, x, info.byz); err != nil {
		return err
	}
	w.unregisterNode(x)

	if w.Size(c) == 0 {
		// Pathological: cluster emptied (only possible with tiny
		// configurations); retire it from the overlay.
		w.removeClusterVertex(led, rng, c)
		w.stats.Leaves++
		if settle {
			w.settleSecurity()
		}
		return nil
	}

	if w.cfg.ExchangeOnLeave {
		rep, err := w.exch.Run(led, rng, c)
		if err != nil {
			return fmt.Errorf("core: leave exchange: %w", err)
		}
		w.stats.HijackedWalks += int64(rep.Hijacked)
		if w.cfg.LeaveCascade {
			hijacked, err := runLeaveCascade(w.cfg.GroupedCascade, w.exch, w, led, rng, c, rep.Receivers)
			if err != nil {
				return err
			}
			w.stats.HijackedWalks += hijacked
		}
	}
	if w.Size(c) < w.cfg.MergeThreshold() {
		if err := w.merge(led, rng, c); err != nil {
			return fmt.Errorf("core: leave merge: %w", err)
		}
	}
	w.stats.Leaves++
	if settle {
		w.settleSecurity()
	}
	return nil
}

// runLeaveCascade executes the configured cascade flavor over the primary
// leave exchange's receivers: Algorithm 2's full exchange per receiver,
// or — under Config.GroupedCascade — one grouped shuffle round over the
// whole set (exchange.CascadeRound: the round's swaps stay inside
// {source} ∪ receivers, so a leave's write footprint stays ~|C| clusters
// instead of ~|C|^2). It is shared between the classic serial path
// (leaveWith, t = the world) and the op scheduler's leave plan (planLeave,
// t = the planView) so the two paths stay draw-for-draw identical — the
// serial/sharded lockstep contract (TestGroupedCascadeMatchesSerial)
// depends on it. Returns the hijacked-walk count to fold into stats.
func runLeaveCascade(grouped bool, exch *exchange.Exchanger, t walk.Topology, led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID, receivers []ids.ClusterID) (int64, error) {
	if grouped {
		// CascadeRound reads the receiver list (which aliases the
		// exchanger's Run scratch) but only writes its own separate
		// cascade scratch, so no copy is needed.
		rep, err := exch.CascadeRound(led, rng, c, receivers)
		if err != nil {
			return 0, fmt.Errorf("core: leave cascade round: %w", err)
		}
		return int64(rep.Hijacked), nil
	}
	// The per-receiver cascade re-enters exch.Run, which recycles the very
	// scratch buffer the receiver list aliases — detach it first. One small
	// allocation per leave, on the legacy (non-grouped) flavor only.
	receivers = append([]ids.ClusterID(nil), receivers...)
	var hijacked int64
	for _, recv := range receivers {
		if t.Size(recv) == 0 {
			continue // receiver dissolved (clusters are never empty)
		}
		rep, err := exch.Run(led, rng, recv)
		if err != nil {
			return hijacked, fmt.Errorf("core: leave cascade exchange: %w", err)
		}
		hijacked += int64(rep.Hijacked)
	}
	return hijacked, nil
}

// ForceExchange runs the exchange primitive on a cluster outside the
// join/leave flow. The paper invokes exchange only from maintenance
// operations, but the primitive is well-defined on its own; experiments
// use it to measure Lemma 1-3 dynamics (post-exchange composition, drift,
// recovery) and its isolated cost (paper section 3.1).
func (w *World) ForceExchange(c ids.ClusterID) error {
	return w.forceExchangeWith(w.led, w.rng, c, true)
}

func (w *World) forceExchangeWith(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID, settle bool) error {
	if !w.hasCluster(c) {
		return fmt.Errorf("core: exchange on cluster %v: %w", c, ErrUnknownCluster)
	}
	rep, err := w.exch.Run(led, rng, c)
	if err != nil {
		return err
	}
	w.stats.HijackedWalks += int64(rep.Hijacked)
	if settle {
		w.settleSecurity()
	}
	return nil
}

// SetCorrupted flips a node's allegiance. The paper's adversary is static
// (it corrupts only at start and at join time); this hook exists so
// experiments can construct the *concentrated* corruption states whose
// decay Lemmas 2-3 analyze, without replaying the join-leave sequences
// that would produce them. It keeps every invariant index consistent.
func (w *World) SetCorrupted(x ids.NodeID, corrupted bool) error {
	info, ok := w.nodeInfoOf(x)
	if !ok {
		return fmt.Errorf("core: node %v: %w", x, ErrUnknownNode)
	}
	if info.byz == corrupted {
		return nil
	}
	s := w.shardFor(info.cluster)
	s.mu.Lock()
	slot, cs := s.clusterAt(info.cluster)
	if corrupted {
		cs.byz++
	} else {
		cs.byz--
	}
	s.reclassify(cs)
	s.markDirty(slot, cs)
	s.mu.Unlock()
	if corrupted {
		w.byzPos = growPos(w.byzPos, x)
		w.byzPos[x] = int32(len(w.byzNodes))
		w.byzNodes = append(w.byzNodes, x)
	} else {
		j := w.byzPos[x]
		last := len(w.byzNodes) - 1
		moved := w.byzNodes[last]
		w.byzNodes[j] = moved
		w.byzPos[moved] = j
		w.byzNodes = w.byzNodes[:last]
		w.byzPos[x] = -1
	}
	info.byz = corrupted
	w.setNodeInfo(x, info)
	w.settleSecurity()
	return nil
}

// split bipartitions an oversized cluster (section 3.3): a random half
// stays under the old identity (keeping its overlay edges), the other half
// becomes a fresh overlay vertex wired by OVER's Add.
func (w *World) split(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID) error {
	members := w.Members(c)
	// The partition is generated collectively: one randNum instance seeds
	// the permutation.
	if _, _, err := w.cfg.Generator.Draw(led, rng, randnum.Params{
		Size: len(members), Byz: w.Byz(c), R: 1 << 30,
	}, nil); err != nil {
		return err
	}
	rng.Shuffle(len(members), func(i, j int) {
		members[i], members[j] = members[j], members[i]
	})
	keep := (len(members) + 1) / 2

	c2 := w.clAlloc.NextCluster()
	w.putCluster(c2)
	for _, x := range members[keep:] {
		if err := w.moveNode(x, c, c2); err != nil {
			return err
		}
	}

	// OVER Add: wire the new vertex via uniform CTRWs started at the
	// sibling (the only vertex the new cluster is guaranteed to know).
	budget := w.cfg.TargetDegree() * w.cfg.EdgeAttemptFactor
	added, err := w.overlay.Add(led, c2, w.uniformPickerFrom(led, rng, c), budget)
	if err != nil {
		return err
	}
	_ = added

	// Costs: neighbors of the old cluster learn the replacement; each new
	// edge of c2 is a full bipartite introduction.
	var mass int64
	for i, d := 0, w.Degree(c); i < d; i++ {
		mass += int64(w.Size(w.NeighborAt(c, i)))
	}
	led.Charge(metrics.ClassInterCluster, int64(w.Size(c))*mass)
	for i, d := 0, w.Degree(c2); i < d; i++ {
		led.Charge(metrics.ClassInterCluster,
			int64(w.Size(c2))*int64(w.Size(w.NeighborAt(c2, i))))
	}
	led.AddRounds(2)
	w.stats.Splits++
	return nil
}

// merge handles an undersized cluster per the configured strategy.
func (w *World) merge(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID) error {
	if w.nClusters <= 1 {
		return nil // cannot merge the last cluster
	}
	switch w.cfg.MergeStrategy {
	case MergeAbsorbRandom:
		return w.mergeAbsorbRandom(led, rng, c)
	case MergeRejoinAll:
		return w.mergeRejoinAll(led, rng, c)
	default:
		return fmt.Errorf("core: unknown merge strategy %v", w.cfg.MergeStrategy)
	}
}

// mergeAbsorbRandom: a random cluster C' (chosen by randCl so that OVER's
// random-removal assumption holds) is dissolved into c, then c exchanges
// all its nodes.
func (w *World) mergeAbsorbRandom(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID) error {
	partner, err := w.randomOtherCluster(led, rng, c)
	if err != nil {
		return err
	}
	// Announce C' removal to its neighbors.
	var mass int64
	for i, d := 0, w.Degree(partner); i < d; i++ {
		mass += int64(w.Size(w.NeighborAt(partner, i)))
	}
	led.Charge(metrics.ClassInterCluster, int64(w.Size(partner))*mass)

	for _, x := range w.Members(partner) {
		if err := w.moveNode(x, partner, c); err != nil {
			return err
		}
		led.Charge(metrics.ClassExchange, int64(w.Size(c)))
	}
	w.removeClusterVertex(led, rng, partner)
	led.AddRounds(2)

	rep, err := w.exch.Run(led, rng, c)
	if err != nil {
		return err
	}
	w.stats.HijackedWalks += int64(rep.Hijacked)
	w.stats.Merges++
	if w.Size(c) > w.cfg.SplitThreshold() {
		return w.split(led, rng, c)
	}
	return nil
}

// mergeRejoinAll: the undersized cluster leaves the overlay and its
// members re-join individually on subsequent time steps (Algorithm 2).
func (w *World) mergeRejoinAll(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID) error {
	var mass int64
	for i, d := 0, w.Degree(c); i < d; i++ {
		mass += int64(w.Size(w.NeighborAt(c, i)))
	}
	led.Charge(metrics.ClassInterCluster, int64(w.Size(c))*mass)
	for _, x := range w.Members(c) {
		info, _ := w.nodeInfoOf(x)
		if err := w.removeMember(c, x, info.byz); err != nil {
			return err
		}
		w.unregisterNode(x)
		w.pendingRejoin = append(w.pendingRejoin, x)
		w.rejoinByz[x] = info.byz
	}
	w.removeClusterVertex(led, rng, c)
	led.AddRounds(2)
	w.stats.Merges++
	return nil
}

// Rejoin re-inserts a node displaced by MergeRejoinAll, preserving its
// identity and corruption status.
func (w *World) Rejoin(x ids.NodeID) error {
	byz, ok := w.rejoinByz[x]
	if !ok {
		return fmt.Errorf("core: node %v is not awaiting rejoin", x)
	}
	delete(w.rejoinByz, x)
	contact, ok2 := w.RandomCluster(w.rng)
	if !ok2 {
		return fmt.Errorf("core: no clusters to rejoin")
	}
	if err := w.joinExisting(w.led, w.rng, x, byz, contact, true); err != nil {
		return err
	}
	w.stats.Rejoins++
	return nil
}

// randomOtherCluster picks a random cluster != c via the biased walk,
// falling back to a uniform draw if every restart lands on c.
func (w *World) randomOtherCluster(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID) (ids.ClusterID, error) {
	out, err := w.walker.Biased(led, rng, c)
	if err != nil {
		return 0, err
	}
	if out.Hijacked {
		w.stats.HijackedWalks++
	}
	if out.End != c {
		return out.End, nil
	}
	n := w.overlay.NumVertices()
	for {
		cand := w.overlay.VertexAt(rng.Intn(n))
		if cand != c {
			return cand, nil
		}
	}
}

// moveNode relocates x without counting it as a protocol swap.
func (w *World) moveNode(x ids.NodeID, from, to ids.ClusterID) error {
	before := w.stats.Swaps
	if err := w.Transfer(x, from, to); err != nil {
		return err
	}
	w.stats.Swaps = before
	return nil
}

// removeClusterVertex retires c from both the partition bookkeeping and
// the overlay, running OVER's repair pass.
func (w *World) removeClusterVertex(led *metrics.Ledger, rng *xrand.Rand, c ids.ClusterID) {
	s := w.shardFor(c)
	s.mu.Lock()
	if s.retireLocked(c) {
		w.nClusters--
	}
	s.mu.Unlock()
	if w.overlay.Has(c) {
		budget := w.cfg.TargetDegree() * w.cfg.EdgeAttemptFactor
		// Repair walks start from the vertex being repaired.
		_, _ = w.overlay.Remove(led, c, w.uniformPickerFromSelf(led, rng), budget)
	}
}

// uniformPickerFrom returns an OVER edge-endpoint picker whose walks start
// at the fixed vertex `start` (used when the wired vertex itself has no
// edges yet).
func (w *World) uniformPickerFrom(led *metrics.Ledger, rng *xrand.Rand, start ids.ClusterID) func(ids.ClusterID) (ids.ClusterID, bool) {
	return func(ids.ClusterID) (ids.ClusterID, bool) {
		if !w.overlay.Has(start) {
			return 0, false
		}
		out, err := w.walker.Uniform(led, rng, start)
		if err != nil {
			return 0, false
		}
		if out.Hijacked {
			w.stats.HijackedWalks++
		}
		return out.End, true
	}
}

// uniformPickerFromSelf starts each walk at the vertex being repaired.
func (w *World) uniformPickerFromSelf(led *metrics.Ledger, rng *xrand.Rand) func(ids.ClusterID) (ids.ClusterID, bool) {
	return func(from ids.ClusterID) (ids.ClusterID, bool) {
		if !w.overlay.Has(from) {
			return 0, false
		}
		out, err := w.walker.Uniform(led, rng, from)
		if err != nil {
			return 0, false
		}
		if out.Hijacked {
			w.stats.HijackedWalks++
		}
		return out.End, true
	}
}
