package core

// The cascade-equivalence test layer: grouped leave cascades
// (Config.GroupedCascade) rewrite the hottest correctness-critical path
// of the protocol, so they get the same proof obligations the op
// scheduler got in sched_test.go — serial/sharded lockstep, determinism,
// invariant preservation — plus the two claims specific to grouping: the
// write-footprint drop (~|C|^2 -> ~|C| clusters per leave) and the
// ledger split (cascade traffic separable under metrics.ClassCascade).

import (
	"testing"

	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

// newCascadeWorld builds a bootstrapped world like newTestWorld, with the
// leave cascade batched into grouped shuffle rounds.
func newCascadeWorld(t testing.TB, shards int, seed uint64) *World {
	t.Helper()
	cfg := DefaultConfig(512)
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.GroupedCascade = true
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(200, func(slot int) bool { return slot%5 == 0 }); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestGroupedCascadeMatchesSerial is the determinism regression for
// grouped cascades, mirroring TestShardedMatchesSerial: in BOTH cascade
// modes, a serial-layout world (Shards=1) and a sharded world (Shards=8)
// fed identical batches must stay in IDENTICAL protocol states — same
// membership, same stats, same security counters, same ledger totals —
// with the full invariant layer holding after every batch. The grouped
// pair and the per-receiver pair run side by side in lockstep, so a
// grouped-path bug that only shows up against the classic composition
// (e.g. a stream drawn out of order) diverges here immediately.
func TestGroupedCascadeMatchesSerial(t *testing.T) {
	type pair struct {
		name             string
		serial, sharded  *World
		rngA, rngB       *xrand.Rand
		wantCascadeClass bool
	}
	pairs := []*pair{
		{name: "grouped", serial: newCascadeWorld(t, 1, 42), sharded: newCascadeWorld(t, 8, 42),
			rngA: xrand.New(7), rngB: xrand.New(7), wantCascadeClass: true},
		{name: "per-receiver", serial: newTestWorld(t, 1, 42), sharded: newTestWorld(t, 8, 42),
			rngA: xrand.New(7), rngB: xrand.New(7), wantCascadeClass: false},
	}
	batches := 25
	if testing.Short() {
		batches = 8
	}
	for _, p := range pairs {
		if fp1, fp8 := worldFingerprint(p.serial), worldFingerprint(p.sharded); fp1 != fp8 {
			t.Fatalf("%s: bootstrap fingerprints differ:\n%s\nvs\n%s", p.name, fp1, fp8)
		}
	}
	for i := 0; i < batches; i++ {
		for _, p := range pairs {
			b1 := randomBatch(p.serial, p.rngA, 8)
			b8 := randomBatch(p.sharded, p.rngB, 8)
			res1 := p.serial.ExecBatch(b1)
			res8 := p.sharded.ExecBatch(b8)
			for j := range res1 {
				if res1[j].Node != res8[j].Node || (res1[j].Err == nil) != (res8[j].Err == nil) ||
					res1[j].Deferred != res8[j].Deferred {
					t.Fatalf("%s: batch %d op %d diverged: serial=%+v sharded=%+v",
						p.name, i, j, res1[j], res8[j])
				}
			}
			if fp1, fp8 := worldFingerprint(p.serial), worldFingerprint(p.sharded); fp1 != fp8 {
				t.Fatalf("%s: state diverged after batch %d:\n--- serial ---\n%s\n--- sharded ---\n%s",
					p.name, i, fp1, fp8)
			}
			if err := CheckInvariants(p.serial); err != nil {
				t.Fatalf("%s: serial invariants after batch %d: %v", p.name, i, err)
			}
			if err := CheckInvariants(p.sharded); err != nil {
				t.Fatalf("%s: sharded invariants after batch %d: %v", p.name, i, err)
			}
		}
	}
	for _, p := range pairs {
		if p.serial.Stats() != p.sharded.Stats() {
			t.Fatalf("%s: final stats diverged:\n%+v\nvs\n%+v", p.name, p.serial.Stats(), p.sharded.Stats())
		}
		// The accounting split: grouped runs charge the cascade class,
		// the per-receiver composition never does.
		if got := p.serial.Ledger().MessagesBy(metrics.ClassCascade) > 0; got != p.wantCascadeClass {
			t.Errorf("%s: cascade-class traffic present=%v, want %v (total %d)",
				p.name, got, p.wantCascadeClass, p.serial.Ledger().MessagesBy(metrics.ClassCascade))
		}
	}
}

// TestGroupedCascadeClassicDeterminism: the classic one-op-per-call API
// with grouped cascades is a pure function of the seed (the grouped round
// draws from the same single stream the per-receiver cascade used).
func TestGroupedCascadeClassicDeterminism(t *testing.T) {
	run := func() string {
		w := newCascadeWorld(t, 1, 99)
		r := xrand.New(3)
		for i := 0; i < 30; i++ {
			if i%3 == 2 {
				if x, ok := w.RandomNode(r); ok {
					if err := w.Leave(x); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if _, err := w.JoinAuto(r.Bool(0.2)); err != nil {
				t.Fatal(err)
			}
		}
		if err := CheckInvariants(w); err != nil {
			t.Fatal(err)
		}
		return worldFingerprint(w)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("classic grouped-cascade runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// planLeaveFootprint plans a single leave against a quiescent world and
// reports its write footprint plus whether the plan reached the cascade
// (a deferred plan stopped before cascading is not a fair comparison).
func planLeaveFootprint(w *World, x ids.NodeID, planSeed uint64) (writes int, usable bool) {
	p := &batchPlan{
		op:     Op{Kind: OpLeave, Victim: x},
		writes: make(ids.ClusterSet),
	}
	ctx, err := newPlanContext(w)
	if err != nil {
		panic(err) // NewWorld validated the config; unreachable
	}
	w.planOp(ctx, p, xrand.New(planSeed))
	if p.err != nil || p.deferred {
		return len(p.writes), false
	}
	return len(p.writes), true
}

// TestGroupedCascadeShrinksLeaveFootprint is the tentpole's load-bearing
// claim, measured directly at the planner: the same leave planned on
// identical worlds must write FAR fewer clusters under the grouped
// cascade. The per-receiver cascade exchanges every member of every
// receiver (~|C|^2 cluster writes); the grouped round performs one swap
// per receiver (~|C|). The gap only materializes when the overlay has
// many more clusters than one cascade can touch (#clusters >> |C|^2 — the
// simulation-scale admission regime ROADMAP targets), so this test runs a
// cluster-rich configuration: |C| ~ 8 across ~128 clusters. Demand at
// least a 2x drop on every sampled victim and 3x on average; the
// asymptotic ratio is |C|/2, diluted here by birthday collisions among
// the per-receiver cascade's partner draws.
func TestGroupedCascadeShrinksLeaveFootprint(t *testing.T) {
	mk := func(grouped bool) *World {
		cfg := DefaultConfig(2048)
		cfg.Seed = 7
		cfg.K = 0.75 // small clusters -> cluster-rich overlay (n/|C| ~ 128)
		cfg.GroupedCascade = grouped
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bootstrap(1024, func(slot int) bool { return slot%7 == 0 }); err != nil {
			t.Fatal(err)
		}
		return w
	}
	classic, grouped := mk(false), mk(true)
	if a, b := worldFingerprint(classic), worldFingerprint(grouped); a != b {
		t.Fatalf("bootstrap fingerprints differ between cascade modes:\n%s\nvs\n%s", a, b)
	}
	r := xrand.New(11)
	samples, ratioSum := 0, 0.0
	for i := 0; i < 40 && samples < 8; i++ {
		x, ok := classic.RandomNode(r)
		if !ok {
			t.Fatal("no nodes to sample")
		}
		cw, cok := planLeaveFootprint(classic, x, uint64(1000+i))
		gw, gok := planLeaveFootprint(grouped, x, uint64(1000+i))
		if !cok || !gok {
			continue // deferred (merge/emptied): cascade never ran
		}
		if gw*2 > cw {
			t.Errorf("victim %v: grouped leave writes %d clusters vs %d per-receiver — less than a 2x drop", x, gw, cw)
		}
		ratioSum += float64(cw) / float64(gw)
		samples++
	}
	if samples < 4 {
		t.Fatalf("only %d comparable leave plans in 40 draws", samples)
	}
	if avg := ratioSum / float64(samples); avg < 3 {
		t.Errorf("mean footprint ratio %.1fx across %d leaves, want >= 3x", avg, samples)
	}
}

// TestGroupedCascadeIntoMerge pins the structural corner the fuzz seed
// corpus also steers at (seed-cascade-into-merge): a leave whose grouped
// cascade round is followed by the source cluster falling below the merge
// threshold must still merge correctly — on the scheduler's serial tail,
// since merges are structural — and leave every invariant intact.
func TestGroupedCascadeIntoMerge(t *testing.T) {
	w := newCascadeWorld(t, 8, 5)
	r := xrand.New(9)
	minPop := 2 * w.Config().TargetClusterSize()
	sawMergeDefer := false
	for i := 0; i < 200 && w.Stats().Merges == 0 && w.NumNodes() > minPop; i++ {
		ops := make([]Op, 0, 4)
		used := make(ids.NodeSet)
		for len(ops) < 4 {
			x, ok := w.RandomNode(r)
			if !ok || !used.Add(x) {
				continue
			}
			ops = append(ops, Op{Kind: OpLeave, Victim: x})
		}
		for _, rr := range w.ExecBatch(ops) {
			if rr.Err != nil && !IsUnknownNode(rr.Err) {
				t.Fatal(rr.Err)
			}
			if rr.Deferred && rr.DeferReason == "merge required" {
				sawMergeDefer = true
			}
		}
		if err := CheckInvariants(w); err != nil {
			t.Fatalf("invariants after shrink batch %d: %v", i, err)
		}
	}
	if w.Stats().Merges == 0 {
		t.Fatal("shrinking never triggered a merge after a grouped cascade")
	}
	if !sawMergeDefer {
		t.Fatal("merge happened without a merge-required deferral: structural work escaped the tail")
	}
}

// TestGroupedCascadeLedgerSplit: on one world, leave costs must split
// cleanly — primary-exchange traffic under ClassExchange, cascade traffic
// under ClassCascade — so experiments can attribute the cascade's share
// of a leave. Join-only churn must never charge the cascade class.
func TestGroupedCascadeLedgerSplit(t *testing.T) {
	w := newCascadeWorld(t, 1, 31)
	if got := w.Ledger().MessagesBy(metrics.ClassCascade); got != 0 {
		t.Fatalf("bootstrap charged %d cascade messages", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Ledger().MessagesBy(metrics.ClassCascade); got != 0 {
		t.Fatalf("joins charged %d cascade messages; only leave cascades may", got)
	}
	r := xrand.New(1)
	before := w.Ledger().Snapshot()
	for i := 0; i < 5; i++ {
		x, _ := w.RandomNode(r)
		if err := w.Leave(x); err != nil {
			t.Fatal(err)
		}
	}
	cost := w.Ledger().Since(before)
	if cost.ByClass[metrics.ClassCascade] == 0 {
		t.Error("five leaves charged no cascade-class traffic")
	}
	if cost.ByClass[metrics.ClassExchange] == 0 {
		t.Error("five leaves charged no primary exchange traffic")
	}
}
