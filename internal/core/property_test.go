package core

import (
	"testing"
	"testing/quick"

	"nowover/internal/ids"
	"nowover/internal/xrand"
)

// TestRandomOpScriptsPreserveConsistency drives worlds through random
// operation scripts derived from quick-check inputs and asserts full
// bookkeeping consistency plus structural invariants after every script.
func TestRandomOpScriptsPreserveConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	check := func(seed uint64, script []byte) bool {
		cfg := DefaultConfig(512)
		cfg.Seed = seed
		w, err := NewWorld(cfg)
		if err != nil {
			return false
		}
		if err := w.Bootstrap(200, func(slot int) bool { return slot%5 == 0 }); err != nil {
			return false
		}
		r := xrand.New(seed ^ 0xF00D)
		if len(script) > 60 {
			script = script[:60]
		}
		for _, op := range script {
			switch op % 4 {
			case 0, 1: // join (honest or byzantine by op parity)
				if w.NumNodes() >= cfg.N {
					continue
				}
				if _, err := w.JoinAuto(op&8 != 0); err != nil {
					t.Logf("join failed: %v", err)
					return false
				}
			case 2: // leave a random node
				if w.NumNodes() <= 2*cfg.TargetClusterSize() {
					continue
				}
				x, ok := w.RandomNode(r)
				if !ok {
					continue
				}
				if err := w.Leave(x); err != nil {
					t.Logf("leave failed: %v", err)
					return false
				}
			case 3: // force-exchange a random cluster
				c, ok := w.RandomCluster(r)
				if !ok {
					continue
				}
				if err := w.ForceExchange(c); err != nil {
					t.Logf("exchange failed: %v", err)
					return false
				}
			}
		}
		if err := w.CheckConsistency(); err != nil {
			t.Logf("consistency: %v", err)
			return false
		}
		a := w.Audit()
		if a.MaxSize > cfg.SplitThreshold() || (a.Clusters > 1 && a.MinSize < a.SizeLo && a.MinSize > 0) {
			t.Logf("size bounds violated: %+v", a)
			return false
		}
		return a.OverlayConnected
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupedCascadePreservesBounds is the cascade-equivalence property
// test: over randomized join/leave/exchange sequences, post-cascade
// cluster compositions under grouped shuffling must still satisfy the
// structural bounds the Lemma 1-3 analysis rests on — every node in
// exactly one cluster, Byzantine counters exact, sizes inside the
// [merge, split] window, overlay == cluster set — as checked by
// core.CheckInvariants, in BOTH execution modes: the classic serial API
// on a Shards=1 world and the op scheduler (ExecBatch) on a Shards=8
// world. The two modes draw different streams by design (per-op
// substreams vs one shared stream), so the property is checked
// independently per mode rather than by fingerprint equality; the
// fixed-stream lockstep regression is TestGroupedCascadeMatchesSerial.
func TestGroupedCascadePreservesBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	mk := func(seed uint64, shards int) (*World, error) {
		cfg := DefaultConfig(512)
		cfg.Seed = seed
		cfg.Shards = shards
		cfg.GroupedCascade = true
		w, err := NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		return w, w.Bootstrap(200, func(slot int) bool { return slot%5 == 0 })
	}
	check := func(seed uint64, script []byte) bool {
		serial, err := mk(seed, 1)
		if err != nil {
			return false
		}
		sharded, err := mk(seed^0xCA5CADE, 8)
		if err != nil {
			return false
		}
		r := xrand.New(seed ^ 0xF00D)
		if len(script) > 48 {
			script = script[:48]
		}
		minPop := 2 * serial.Config().TargetClusterSize()
		var pending []Op
		victims := make(ids.NodeSet)
		for _, op := range script {
			// Serial mode: one classic op per script byte.
			switch op % 4 {
			case 0, 1:
				if serial.NumNodes() < serial.Config().N {
					if _, err := serial.JoinAuto(op&8 != 0); err != nil {
						t.Logf("serial join: %v", err)
						return false
					}
				}
			case 2:
				if serial.NumNodes() > minPop {
					if x, ok := serial.RandomNode(r); ok {
						if err := serial.Leave(x); err != nil {
							t.Logf("serial leave: %v", err)
							return false
						}
					}
				}
			case 3:
				if c, ok := serial.RandomCluster(r); ok {
					if err := serial.ForceExchange(c); err != nil {
						t.Logf("serial exchange: %v", err)
						return false
					}
				}
			}
			if err := CheckInvariants(serial); err != nil {
				t.Logf("serial invariants: %v", err)
				return false
			}
			// Sharded mode: the same script byte queues a scheduler op;
			// every fourth byte flushes the batch.
			switch op % 4 {
			case 0, 1:
				pending = append(pending, Op{Kind: OpJoin, Byz: op&8 != 0})
			case 2:
				if sharded.NumNodes()-len(pending) > minPop {
					if x, ok := sharded.RandomNode(r); ok && victims.Add(x) {
						pending = append(pending, Op{Kind: OpLeave, Victim: x})
					}
				}
			case 3:
				if c, ok := sharded.RandomCluster(r); ok {
					pending = append(pending, Op{Kind: OpExchange, Target: c})
				}
			}
			if len(pending) >= 4 {
				for _, rr := range sharded.ExecBatch(pending) {
					if rr.Err != nil && !IsUnknownNode(rr.Err) && !IsUnknownCluster(rr.Err) {
						t.Logf("sharded op: %v", rr.Err)
						return false
					}
				}
				pending = pending[:0]
				victims = make(ids.NodeSet)
				if err := CheckInvariants(sharded); err != nil {
					t.Logf("sharded invariants: %v", err)
					return false
				}
			}
		}
		for _, w := range []*World{serial, sharded} {
			a := w.Audit()
			if a.MaxSize > w.Config().SplitThreshold() {
				t.Logf("size bound violated: %+v", a)
				return false
			}
			if !a.OverlayConnected {
				t.Logf("overlay disconnected: %+v", a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeIsPopulationPermutation: any number of forced exchanges is a
// permutation of the node population — nothing created, lost, or
// duplicated, and Byzantine count invariant.
func TestExchangeIsPopulationPermutation(t *testing.T) {
	cfg := DefaultConfig(1024)
	cfg.Seed = 77
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(400, func(slot int) bool { return slot < 100 }); err != nil {
		t.Fatal(err)
	}
	before := make(map[ids.NodeID]bool, 400)
	for _, c := range w.Clusters() {
		for _, x := range w.Members(c) {
			if before[x] {
				t.Fatalf("node %v in two clusters", x)
			}
			before[x] = true
		}
	}
	for i := 0; i < 10; i++ {
		c, _ := w.RandomCluster(w.Rng())
		if err := w.ForceExchange(c); err != nil {
			t.Fatal(err)
		}
	}
	after := 0
	for _, c := range w.Clusters() {
		for _, x := range w.Members(c) {
			if !before[x] {
				t.Fatalf("unknown node %v appeared", x)
			}
			after++
		}
	}
	if after != 400 {
		t.Fatalf("population %d after exchanges, want 400", after)
	}
	if w.NumByzantine() != 100 {
		t.Fatalf("byzantine count %d, want 100", w.NumByzantine())
	}
}

// TestSetCorruptedRoundTrip exercises the experiment hook's bookkeeping.
func TestSetCorruptedRoundTrip(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 5
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(200, nil); err != nil {
		t.Fatal(err)
	}
	x, _ := w.RandomNode(xrand.New(1))
	c, _ := w.ClusterOf(x)
	byzBefore := w.Byz(c)
	if err := w.SetCorrupted(x, true); err != nil {
		t.Fatal(err)
	}
	if !w.IsByzantine(x) || w.Byz(c) != byzBefore+1 || w.NumByzantine() != 1 {
		t.Fatal("corruption bookkeeping broken")
	}
	if err := w.SetCorrupted(x, true); err != nil { // idempotent
		t.Fatal(err)
	}
	if w.NumByzantine() != 1 {
		t.Fatal("double corruption double-counted")
	}
	if err := w.SetCorrupted(x, false); err != nil {
		t.Fatal(err)
	}
	if w.IsByzantine(x) || w.Byz(c) != byzBefore || w.NumByzantine() != 0 {
		t.Fatal("un-corruption bookkeeping broken")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := w.SetCorrupted(ids.NodeID(1<<40), true); err == nil {
		t.Fatal("corrupting unknown node accepted")
	}
}

// TestLedgerMonotone: operation costs only ever accumulate.
func TestLedgerMonotone(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 9
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(200, nil); err != nil {
		t.Fatal(err)
	}
	prev := w.Ledger().Messages()
	for i := 0; i < 10; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
		cur := w.Ledger().Messages()
		if cur <= prev {
			t.Fatalf("ledger did not grow: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

// TestWalkTopologyViewConsistency: the world's walk.Topology view agrees
// with its membership bookkeeping at all times.
func TestWalkTopologyViewConsistency(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 13
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(250, func(slot int) bool { return slot < 50 }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.JoinAuto(false); err != nil {
			t.Fatal(err)
		}
	}
	maxSize := 0
	for _, c := range w.Clusters() {
		if got, want := w.Size(c), len(w.Members(c)); got != want {
			t.Fatalf("Size(%v)=%d vs members %d", c, got, want)
		}
		byz := 0
		for _, x := range w.Members(c) {
			if w.IsByzantine(x) {
				byz++
			}
		}
		if got := w.Byz(c); got != byz {
			t.Fatalf("Byz(%v)=%d vs recount %d", c, got, byz)
		}
		if w.Size(c) > maxSize {
			maxSize = w.Size(c)
		}
		for i, d := 0, w.Degree(c); i < d; i++ {
			nb := w.NeighborAt(c, i)
			if w.Size(nb) == 0 {
				t.Fatalf("neighbor %v of %v has no members", nb, c)
			}
		}
	}
	if w.MaxClusterSize() != maxSize {
		t.Fatalf("MaxClusterSize %d vs recount %d", w.MaxClusterSize(), maxSize)
	}
	if w.NumOverlayEdges() != w.Overlay().NumEdges() {
		t.Fatal("edge count views disagree")
	}
}
