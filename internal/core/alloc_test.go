package core

import (
	"testing"

	"nowover/internal/xrand"
)

// fillExchangeBatch overwrites ops with n forced exchanges against
// distinct random clusters of w. Distinctness keeps every op on the
// admitted (concurrent-apply) path: identical targets would collide on
// footprints and fall to the serial tail, which is a different regime.
func fillExchangeBatch(w *World, r *xrand.Rand, ops []Op, n int) []Op {
	ops = ops[:0]
	for len(ops) < n {
		c, ok := w.RandomCluster(r)
		if !ok {
			break
		}
		dup := false
		for _, op := range ops {
			if op.Target == c {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ops = append(ops, Op{Kind: OpExchange, Target: c})
	}
	return ops
}

// TestHotPathAllocsSteadyState is the tentpole's allocation contract: once
// the pooled scratch is warm, the lean-regime batch path — plan views,
// copy-on-write snapshots, walker draws, exchanger shuffles, apply
// transfers, ledger merges — runs without any per-op heap garbage.
// Exchanges are the lean regime (no splits, merges or cascades); churn ops
// pay occasional amortized structural work and are benchmarked instead.
func TestHotPathAllocsSteadyState(t *testing.T) {
	w := newTestWorld(t, 1, 42)
	r := xrand.New(7)
	var ops []Op
	var res []OpResult
	runBatch := func() {
		ops = fillExchangeBatch(w, r, ops, 4)
		res = w.ExecBatchInto(res, ops)
		for _, rr := range res {
			if rr.Err != nil {
				t.Fatal(rr.Err)
			}
		}
	}
	for i := 0; i < 32; i++ {
		runBatch() // warm the pools to steady-state capacity
	}
	if avg := testing.AllocsPerRun(256, runBatch); avg > 0 {
		t.Errorf("steady-state exchange batch allocates %.2f objects per batch; want 0", avg)
	}
	requireInvariants(t, w)
}

// TestSnapshotCowAllocFree pins satellite coverage on the copy-on-write
// path specifically: planning the same op repeatedly against a quiescent
// world recycles its cluster copies through the view's free list instead
// of growing fresh ones.
func TestSnapshotCowAllocFree(t *testing.T) {
	w := newTestWorld(t, 1, 11)
	ctx, err := newPlanContext(w)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := w.RandomCluster(xrand.New(3))
	if !ok {
		t.Fatal("no clusters")
	}
	p := &batchPlan{}
	rng := xrand.New(0)
	seeds := xrand.New(9)
	plan := func() {
		seeds.SplitInto(rng, 0)
		p.reset(Op{Kind: OpExchange, Target: c}, 0)
		w.planOp(ctx, p, rng)
		if p.err != nil {
			t.Fatal(p.err)
		}
	}
	for i := 0; i < 16; i++ {
		plan()
	}
	if avg := testing.AllocsPerRun(256, plan); avg > 0 {
		t.Errorf("warm plan allocates %.2f objects per op; want 0", avg)
	}
}

// BenchmarkExecBatchExchange is the lean-regime hot path: run it with
// -benchmem and allocs/op must stay at 0 (the CI benchmem job enforces
// this).
func BenchmarkExecBatchExchange(b *testing.B) {
	w := newTestWorld(b, 1, 42)
	r := xrand.New(7)
	var ops []Op
	var res []OpResult
	for i := 0; i < 32; i++ {
		ops = fillExchangeBatch(w, r, ops, 4)
		res = w.ExecBatchInto(res, ops)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = fillExchangeBatch(w, r, ops, 4)
		res = w.ExecBatchInto(res, ops)
	}
	_ = res
}

// BenchmarkSnapshotClusterInto isolates the clone path the plan phase
// leans on: copy-on-write snapshots of a cluster into free-list-recycled
// scratch records. Warm, it must stay at 0 allocs/op (CI-enforced), since
// every planned op takes one snapshot per cluster it reads.
func BenchmarkSnapshotClusterInto(b *testing.B) {
	w := newTestWorld(b, 1, 11)
	ctx, err := newPlanContext(w)
	if err != nil {
		b.Fatal(err)
	}
	c, ok := w.RandomCluster(xrand.New(3))
	if !ok {
		b.Fatal("no clusters")
	}
	p := &batchPlan{}
	rng := xrand.New(0)
	seeds := xrand.New(9)
	plan := func() {
		seeds.SplitInto(rng, 0)
		p.reset(Op{Kind: OpExchange, Target: c}, 0)
		w.planOp(ctx, p, rng)
		if p.err != nil {
			b.Fatal(p.err)
		}
	}
	for i := 0; i < 16; i++ {
		plan()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan()
	}
}

// BenchmarkExecBatchChurn is the structural regime: balanced join/leave
// batches that occasionally split, merge and cascade. Allocations here are
// amortized structural state (arena growth, new clusters, overlay edges),
// not per-op garbage; the number to watch is its allocs/op staying small
// and flat, not zero.
func BenchmarkExecBatchChurn(b *testing.B) {
	w := newTestWorld(b, 1, 42)
	r := xrand.New(7)
	var ops []Op
	var res []OpResult
	step := func() {
		ops = ops[:0]
		for j := 0; j < 2; j++ {
			ops = append(ops, Op{Kind: OpJoin, Byz: r.Bool(0.2)})
		}
		seen := map[interface{}]bool{} // victims must be distinct within a batch
		for j := 0; j < 2; j++ {
			x, ok := w.RandomNode(r)
			if !ok || seen[x] {
				continue
			}
			seen[x] = true
			ops = append(ops, Op{Kind: OpLeave, Victim: x})
		}
		res = w.ExecBatchInto(res, ops)
	}
	for i := 0; i < 32; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	_ = res
}
