package core

import (
	"cmp"
	"slices"

	"nowover/internal/ids"
)

// Deterministic map-walk helpers. The determinism contract (byte-identical
// tables and ledgers at any parallelism or shard count) forbids letting Go's
// randomized map iteration order reach any observable output — including
// which invariant violation an oracle reports first. Every cluster/node map
// walk that feeds output, errors, or order-sensitive folds iterates one of
// these sorted key slices instead; `nowlint`'s map-order rule enforces the
// discipline mechanically.

// sortedKeys returns m's keys in ascending order.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	return sortedKeysInto(make([]K, 0, len(m)), m)
}

// sortedKeysInto appends m's keys to buf[:0] and sorts them, reusing buf's
// backing array. Hot per-operation walks (settleSecurity) use this with a
// retained scratch slice so sorted iteration stays allocation-free.
func sortedKeysInto[K cmp.Ordered, V any](buf []K, m map[K]V) []K {
	buf = buf[:0]
	for k := range m {
		buf = append(buf, k)
	}
	slices.Sort(buf)
	return buf
}

// lockShardPair is the canonical ordered-acquire helper for operations
// whose footprint spans two cluster shards: it locks the shards owning a
// and b in ascending shard-index order (one lock when they collide, with
// hi == nil) and returns them for unlockShardPair. Taking two shard locks
// any other way can deadlock against a concurrent acquirer of the same
// pair in the opposite order, so nowlint's shard-lock-order rule flags
// every ad-hoc second Lock in this package and points here. It returns the
// locked shards rather than a release closure so the per-transfer hot path
// stays allocation-free.
func (w *World) lockShardPair(a, b ids.ClusterID) (lo, hi *worldShard) {
	ia := uint64(a) % uint64(len(w.shards))
	ib := uint64(b) % uint64(len(w.shards))
	if ia == ib {
		s := w.shards[ia]
		s.mu.Lock()
		return s, nil
	}
	if ia > ib {
		ia, ib = ib, ia
	}
	lo, hi = w.shards[ia], w.shards[ib]
	lo.mu.Lock()
	hi.mu.Lock()
	return lo, hi
}

// unlockShardPair releases what lockShardPair acquired, in reverse order.
func unlockShardPair(lo, hi *worldShard) {
	if hi != nil {
		hi.mu.Unlock()
	}
	lo.mu.Unlock()
}
