package core

import (
	"fmt"

	"nowover/internal/exchange"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/over"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// nodeInfo is the world's per-node record.
type nodeInfo struct {
	cluster ids.ClusterID
	byz     bool
}

// clusterState is the world's per-cluster record: member list with a
// position index for O(1) removal, plus an incremental Byzantine count.
type clusterState struct {
	members []ids.NodeID
	pos     map[ids.NodeID]int
	byz     int
}

func (cs *clusterState) add(x ids.NodeID, byz bool) {
	cs.pos[x] = len(cs.members)
	cs.members = append(cs.members, x)
	if byz {
		cs.byz++
	}
}

func (cs *clusterState) remove(x ids.NodeID, byz bool) error {
	i, ok := cs.pos[x]
	if !ok {
		return fmt.Errorf("core: node %v not in cluster", x)
	}
	last := len(cs.members) - 1
	moved := cs.members[last]
	cs.members[i] = moved
	cs.pos[moved] = i
	cs.members = cs.members[:last]
	delete(cs.pos, x)
	if byz {
		cs.byz--
	}
	return nil
}

// Stats accumulates protocol-lifetime counters and security high-water
// marks.
type Stats struct {
	Joins, Leaves, Splits, Merges int64
	// Rejoins counts re-insertions of merge-displaced nodes; each is also
	// counted in Joins (a rejoin executes the Join operation).
	Rejoins int64
	// Swaps counts individual node exchanges.
	Swaps int64
	// HijackedWalks counts walks redirected through captured clusters.
	HijackedWalks int64
	// DegradedEvents / CapturedEvents count transitions of a cluster into
	// the >=1/3-Byzantine and >=1/2-Byzantine states. These are the
	// security failures whose absence Theorem 3 guarantees.
	DegradedEvents, CapturedEvents int64
	// MaxByzFractionEver is the worst per-cluster Byzantine fraction
	// observed at any point in the run.
	MaxByzFractionEver float64
}

// hijackProxy lets the adversary be installed after World construction.
type hijackProxy struct{ h walk.Hijacker }

func (p *hijackProxy) Redirect(at ids.ClusterID) (ids.ClusterID, bool) {
	if p.h == nil {
		return 0, false
	}
	return p.h.Redirect(at)
}

// World is the complete NOW protocol state. It is not safe for concurrent
// use; the paper's model is synchronous and the simulator single-threaded.
type World struct {
	cfg Config
	led *metrics.Ledger
	rng *xrand.Rand

	nodes    map[ids.NodeID]nodeInfo
	clusters map[ids.ClusterID]*clusterState
	overlay  *over.Overlay

	nodeAlloc ids.NodeAllocator
	clAlloc   ids.ClusterAllocator

	// Flat node indexes for O(1) uniform sampling by workloads.
	allNodes []ids.NodeID
	nodePos  map[ids.NodeID]int
	byzNodes []ids.NodeID
	byzPos   map[ids.NodeID]int

	// sizeCount is a multiset of cluster sizes maintaining MaxClusterSize
	// in O(1) amortized.
	sizeCount map[int]int
	maxSize   int

	// degraded is the live per-cluster security classification, updated on
	// every transfer. It reflects mid-operation transients (a split's
	// half-populated destination, a cluster one member short between the
	// two legs of a swap) and is what walks consult for capture.
	degraded map[ids.ClusterID]randnum.Security
	// settled is the classification at the last operation boundary; event
	// counters and high-water marks advance only on settled transitions,
	// matching the paper's per-time-step semantics.
	settled map[ids.ClusterID]randnum.Security

	walker *walk.Walker
	exch   *exchange.Exchanger
	hijack *hijackProxy
	steer  func(ids.ClusterID) float64

	pendingRejoin []ids.NodeID
	rejoinByz     map[ids.NodeID]bool
	stats         Stats
	bootstrapped  bool
}

// Interface compliance: the world is the topology the primitives run over.
var (
	_ walk.Topology  = (*World)(nil)
	_ exchange.World = (*World)(nil)
)

// NewWorld returns an empty world; call Bootstrap before operations.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ov, err := over.New(over.Params{
		TargetDegree: cfg.TargetDegree(),
		DegreeCap:    cfg.DegreeCap(),
		DegreeFloor:  cfg.DegreeFloor(),
		Repair:       cfg.OverlayRepair,
	})
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:       cfg,
		led:       &metrics.Ledger{},
		rng:       xrand.New(cfg.Seed),
		nodes:     make(map[ids.NodeID]nodeInfo),
		clusters:  make(map[ids.ClusterID]*clusterState),
		overlay:   ov,
		nodePos:   make(map[ids.NodeID]int),
		byzPos:    make(map[ids.NodeID]int),
		sizeCount: make(map[int]int),
		degraded:  make(map[ids.ClusterID]randnum.Security),
		settled:   make(map[ids.ClusterID]randnum.Security),
		rejoinByz: make(map[ids.NodeID]bool),
		hijack:    &hijackProxy{},
	}
	walker, err := walk.NewWalker(walk.Config{
		DurationFactor: cfg.WalkDurationFactor,
		MaxRestarts:    cfg.MaxWalkRestarts,
		Gen:            cfg.Generator,
		Hijack:         w.hijack,
		Steer:          func(c ids.ClusterID) float64 { return w.steerScore(c) },
	}, w)
	if err != nil {
		return nil, err
	}
	w.walker = walker
	exch, err := exchange.New(w, walker, cfg.Generator)
	if err != nil {
		return nil, err
	}
	w.exch = exch
	return w, nil
}

func (w *World) steerScore(c ids.ClusterID) float64 {
	if w.steer == nil {
		return 0
	}
	return w.steer(c)
}

// SetHijacker installs (or clears) the adversary's captured-cluster walk
// redirection hook.
func (w *World) SetHijacker(h walk.Hijacker) { w.hijack.h = h }

// SetSteer installs (or clears) the adversary's scoring of clusters used to
// bias last-revealer randomness (only effective with a biasable generator).
func (w *World) SetSteer(f func(ids.ClusterID) float64) { w.steer = f }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Ledger returns the world's cost ledger.
func (w *World) Ledger() *metrics.Ledger { return w.led }

// Stats returns the lifetime counters.
func (w *World) Stats() Stats { return w.stats }

// --- walk.Topology ---

// NumClusters implements walk.Topology.
func (w *World) NumClusters() int { return len(w.clusters) }

// NumOverlayEdges implements walk.Topology.
func (w *World) NumOverlayEdges() int { return w.overlay.NumEdges() }

// Degree implements walk.Topology.
func (w *World) Degree(c ids.ClusterID) int { return w.overlay.Degree(c) }

// NeighborAt implements walk.Topology.
func (w *World) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return w.overlay.NeighborAt(c, i) }

// Size implements walk.Topology.
func (w *World) Size(c ids.ClusterID) int {
	if cs, ok := w.clusters[c]; ok {
		return len(cs.members)
	}
	return 0
}

// Byz implements walk.Topology.
func (w *World) Byz(c ids.ClusterID) int {
	if cs, ok := w.clusters[c]; ok {
		return cs.byz
	}
	return 0
}

// MaxClusterSize implements walk.Topology.
func (w *World) MaxClusterSize() int { return w.maxSize }

// --- exchange.World ---

// MemberAt implements exchange.World.
func (w *World) MemberAt(c ids.ClusterID, i int) ids.NodeID {
	return w.clusters[c].members[i]
}

// Members implements exchange.World (snapshot copy).
func (w *World) Members(c ids.ClusterID) []ids.NodeID {
	cs, ok := w.clusters[c]
	if !ok {
		return nil
	}
	out := make([]ids.NodeID, len(cs.members))
	copy(out, cs.members)
	return out
}

// Transfer implements exchange.World: move x between clusters with all
// bookkeeping (membership, Byzantine counts, size multiset, security
// classification).
func (w *World) Transfer(x ids.NodeID, from, to ids.ClusterID) error {
	info, ok := w.nodes[x]
	if !ok {
		return fmt.Errorf("core: transfer of unknown node %v", x)
	}
	if info.cluster != from {
		return fmt.Errorf("core: node %v is in %v, not %v", x, info.cluster, from)
	}
	src, ok := w.clusters[from]
	if !ok {
		return fmt.Errorf("core: transfer from unknown cluster %v", from)
	}
	dst, ok := w.clusters[to]
	if !ok {
		return fmt.Errorf("core: transfer to unknown cluster %v", to)
	}
	w.noteSizeChange(from, len(src.members), len(src.members)-1)
	w.noteSizeChange(to, len(dst.members), len(dst.members)+1)
	if err := src.remove(x, info.byz); err != nil {
		return err
	}
	dst.add(x, info.byz)
	info.cluster = to
	w.nodes[x] = info
	w.reclassify(from)
	w.reclassify(to)
	w.stats.Swaps++
	return nil
}

// --- bookkeeping helpers ---

// noteSizeChange updates the size multiset and the max-size tracker for a
// cluster moving from size a to size b.
func (w *World) noteSizeChange(_ ids.ClusterID, a, b int) {
	if a == b {
		return
	}
	if a > 0 {
		w.sizeCount[a]--
		if w.sizeCount[a] == 0 {
			delete(w.sizeCount, a)
		}
	}
	if b > 0 {
		w.sizeCount[b]++
	}
	if b > w.maxSize {
		w.maxSize = b
	} else if a == w.maxSize && w.sizeCount[a] == 0 {
		// The (possibly unique) largest cluster shrank: scan down. Sizes
		// are O(log N), so this is trivial.
		m := 0
		for s := range w.sizeCount {
			if s > m {
				m = s
			}
		}
		w.maxSize = m
	}
}

// reclassify recomputes a cluster's live security level. Event counters
// are NOT advanced here — transients inside one operation are not time
// step states; settleSecurity handles accounting at operation boundaries.
func (w *World) reclassify(c ids.ClusterID) {
	cs, ok := w.clusters[c]
	if !ok || len(cs.members) == 0 {
		delete(w.degraded, c)
		return
	}
	now := randnum.Classify(len(cs.members), cs.byz)
	if now == randnum.Secure {
		delete(w.degraded, c)
	} else {
		w.degraded[c] = now
	}
}

// settleSecurity advances the security accounting to the current state:
// called at the end of every public operation (= paper time step). It
// counts transitions into the degraded (>= 1/3) and captured (>= 1/2)
// states and tracks the worst per-cluster Byzantine fraction.
func (w *World) settleSecurity() {
	for c, cs := range w.clusters {
		size := len(cs.members)
		if size == 0 {
			delete(w.settled, c)
			continue
		}
		if frac := float64(cs.byz) / float64(size); frac > w.stats.MaxByzFractionEver {
			w.stats.MaxByzFractionEver = frac
		}
		now := randnum.Classify(size, cs.byz)
		prev := w.settled[c]
		if now > prev {
			if now >= randnum.Degraded && prev < randnum.Degraded {
				w.stats.DegradedEvents++
			}
			if now == randnum.Captured && prev < randnum.Captured {
				w.stats.CapturedEvents++
			}
		}
		if now == randnum.Secure {
			delete(w.settled, c)
		} else {
			w.settled[c] = now
		}
	}
	// Drop settled entries for clusters that no longer exist.
	for c := range w.settled {
		if _, ok := w.clusters[c]; !ok {
			delete(w.settled, c)
		}
	}
}

// registerNode inserts a brand-new (or rejoining) node record into the
// flat indexes.
func (w *World) registerNode(x ids.NodeID, byz bool, c ids.ClusterID) {
	w.nodes[x] = nodeInfo{cluster: c, byz: byz}
	w.nodePos[x] = len(w.allNodes)
	w.allNodes = append(w.allNodes, x)
	if byz {
		w.byzPos[x] = len(w.byzNodes)
		w.byzNodes = append(w.byzNodes, x)
	}
}

// unregisterNode removes a node record from the flat indexes.
func (w *World) unregisterNode(x ids.NodeID) {
	info := w.nodes[x]
	delete(w.nodes, x)
	i := w.nodePos[x]
	last := len(w.allNodes) - 1
	moved := w.allNodes[last]
	w.allNodes[i] = moved
	w.nodePos[moved] = i
	w.allNodes = w.allNodes[:last]
	delete(w.nodePos, x)
	if info.byz {
		j := w.byzPos[x]
		lastB := len(w.byzNodes) - 1
		movedB := w.byzNodes[lastB]
		w.byzNodes[j] = movedB
		w.byzPos[movedB] = j
		w.byzNodes = w.byzNodes[:lastB]
		delete(w.byzPos, x)
	}
}

// --- public read accessors ---

// NumNodes returns the current network size n.
func (w *World) NumNodes() int { return len(w.nodes) }

// NumByzantine returns the number of Byzantine nodes currently present.
func (w *World) NumByzantine() int { return len(w.byzNodes) }

// Clusters returns the current cluster IDs (overlay insertion order).
func (w *World) Clusters() []ids.ClusterID { return w.overlay.Vertices() }

// ClusterOf returns the cluster containing x.
func (w *World) ClusterOf(x ids.NodeID) (ids.ClusterID, bool) {
	info, ok := w.nodes[x]
	return info.cluster, ok
}

// IsByzantine reports whether x is adversary-controlled.
func (w *World) IsByzantine(x ids.NodeID) bool { return w.nodes[x].byz }

// Contains reports whether x is currently in the network.
func (w *World) Contains(x ids.NodeID) bool {
	_, ok := w.nodes[x]
	return ok
}

// RandomNode returns a uniform member of the network.
func (w *World) RandomNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.allNodes) == 0 {
		return 0, false
	}
	return w.allNodes[r.Intn(len(w.allNodes))], true
}

// RandomHonestNode returns a uniform honest member (rejection sampling;
// honest nodes are a >2/3 majority so this terminates fast).
func (w *World) RandomHonestNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.allNodes) == len(w.byzNodes) {
		return 0, false
	}
	for {
		x := w.allNodes[r.Intn(len(w.allNodes))]
		if !w.nodes[x].byz {
			return x, true
		}
	}
}

// RandomByzantineNode returns a uniform Byzantine member.
func (w *World) RandomByzantineNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.byzNodes) == 0 {
		return 0, false
	}
	return w.byzNodes[r.Intn(len(w.byzNodes))], true
}

// RandomCluster returns a uniform cluster ID (used for join contacts).
func (w *World) RandomCluster(r *xrand.Rand) (ids.ClusterID, bool) {
	vs := w.overlay.Vertices()
	if len(vs) == 0 {
		return 0, false
	}
	return vs[r.Intn(len(vs))], true
}

// CurrentInsecure returns the number of clusters presently at or above
// the 1/3 (degraded) and 1/2 (captured) Byzantine thresholds, maintained
// incrementally so the check is O(insecure clusters).
func (w *World) CurrentInsecure() (degraded, captured int) {
	for _, sec := range w.degraded {
		switch sec {
		case randnum.Degraded:
			degraded++
		case randnum.Captured:
			degraded++
			captured++
		}
	}
	return degraded, captured
}

// Overlay exposes the OVER overlay for structural analysis. Callers must
// not mutate it.
func (w *World) Overlay() *over.Overlay { return w.overlay }

// Rng exposes the world's random stream for workloads that must share the
// run's determinism.
func (w *World) Rng() *xrand.Rand { return w.rng }

// Walker exposes the world's CTRW walker so applications (sampling,
// overlay maintenance by embedders) can run walks over the live topology.
func (w *World) Walker() *walk.Walker { return w.walker }

// Generator exposes the configured randNum construction.
func (w *World) Generator() randnum.Generator { return w.cfg.Generator }

// PendingRejoins drains the queue of nodes displaced by MergeRejoinAll;
// the simulator re-joins them on subsequent time steps.
func (w *World) PendingRejoins() []ids.NodeID {
	out := w.pendingRejoin
	w.pendingRejoin = nil
	return out
}

// NodeIsQueued reports whether x awaits rejoin (MergeRejoinAll only).
func (w *World) NodeIsQueued(x ids.NodeID) bool {
	_, ok := w.rejoinByz[x]
	return ok
}
