package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nowover/internal/exchange"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/over"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// ErrUnknownNode reports an operation aimed at a node that is not in the
// network. Batch drivers match it to distinguish "the victim already left"
// from genuine protocol failures.
var ErrUnknownNode = errors.New("core: unknown node")

// IsUnknownNode reports whether err indicates an operation aimed at a node
// that is not (or no longer) in the network.
func IsUnknownNode(err error) bool { return errors.Is(err, ErrUnknownNode) }

// ErrUnknownCluster reports an operation aimed at a cluster that is not in
// the overlay — typically one dissolved by a merge earlier in the same
// batch. Batch drivers match it the same way as ErrUnknownNode.
var ErrUnknownCluster = errors.New("core: unknown cluster")

// IsUnknownCluster reports whether err indicates an operation aimed at a
// cluster that is not (or no longer) in the overlay.
func IsUnknownCluster(err error) bool { return errors.Is(err, ErrUnknownCluster) }

// nodeInfo is the world's per-node record.
type nodeInfo struct {
	cluster ids.ClusterID
	byz     bool
}

// clusterState is the world's per-cluster record: member list with a
// position index for O(1) removal, plus an incremental Byzantine count.
type clusterState struct {
	members []ids.NodeID
	pos     map[ids.NodeID]int
	byz     int
}

func (cs *clusterState) add(x ids.NodeID, byz bool) {
	if cs.pos == nil {
		cs.pos = make(map[ids.NodeID]int)
	}
	cs.pos[x] = len(cs.members)
	cs.members = append(cs.members, x)
	if byz {
		cs.byz++
	}
}

func (cs *clusterState) remove(x ids.NodeID, byz bool) error {
	i, ok := cs.pos[x]
	if !ok {
		// Double removal (e.g. of a node that was swap-moved out by an
		// earlier removal) lands here: the position index is the guard.
		return fmt.Errorf("core: node %v not in cluster", x)
	}
	if byz && cs.byz == 0 {
		return fmt.Errorf("core: removing %v would underflow the Byzantine count", x)
	}
	last := len(cs.members) - 1
	moved := cs.members[last]
	cs.members[i] = moved
	cs.pos[moved] = i
	cs.members = cs.members[:last]
	delete(cs.pos, x)
	if byz {
		cs.byz--
	}
	if len(cs.members) == 0 {
		// Removing the last member: release the backing array instead of
		// keeping an empty slice pinning the full former capacity. The
		// cluster is about to be retired or refilled; either way a stale
		// array is a leak.
		cs.members = nil
	}
	return nil
}

// clone deep-copies the cluster record (used by the op scheduler's
// copy-on-write planning views).
func (cs *clusterState) clone() *clusterState {
	out := &clusterState{
		members: make([]ids.NodeID, len(cs.members)),
		pos:     make(map[ids.NodeID]int, len(cs.members)),
		byz:     cs.byz,
	}
	copy(out.members, cs.members)
	for x, i := range cs.pos {
		out.pos[x] = i
	}
	return out
}

// Stats accumulates protocol-lifetime counters and security high-water
// marks.
type Stats struct {
	Joins, Leaves, Splits, Merges int64
	// Rejoins counts re-insertions of merge-displaced nodes; each is also
	// counted in Joins (a rejoin executes the Join operation).
	Rejoins int64
	// Swaps counts individual node exchanges.
	Swaps int64
	// HijackedWalks counts walks redirected through captured clusters.
	HijackedWalks int64
	// DegradedEvents / CapturedEvents count transitions of a cluster into
	// the >=1/3-Byzantine and >=1/2-Byzantine states. These are the
	// security failures whose absence Theorem 3 guarantees.
	DegradedEvents, CapturedEvents int64
	// MaxByzFractionEver is the worst per-cluster Byzantine fraction
	// observed at any point in the run.
	MaxByzFractionEver float64
}

// accumulate folds per-operation deltas (from the op scheduler) into the
// lifetime counters. High-water fields are not deltas and are settled
// separately at batch boundaries.
func (s *Stats) accumulate(d Stats) {
	s.Joins += d.Joins
	s.Leaves += d.Leaves
	s.Splits += d.Splits
	s.Merges += d.Merges
	s.Rejoins += d.Rejoins
	s.Swaps += d.Swaps
	s.HijackedWalks += d.HijackedWalks
}

// hijackProxy lets the adversary be installed after World construction.
// The mutex guards installation against concurrent reads; the op scheduler
// additionally plans serially whenever a hijacker is installed (see
// planWorkers) so a stateful hijacker observes walks in deterministic op
// order.
type hijackProxy struct {
	mu sync.Mutex
	h  walk.Hijacker
}

func (p *hijackProxy) Redirect(at ids.ClusterID) (ids.ClusterID, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.h == nil {
		return 0, false
	}
	return p.h.Redirect(at)
}

func (p *hijackProxy) set(h walk.Hijacker) {
	p.mu.Lock()
	p.h = h
	p.mu.Unlock()
}

func (p *hijackProxy) installed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.h != nil
}

// worldShard is one independently lockable segment of the cluster-keyed
// state: the cluster records themselves plus every index derived from them
// (live/settled security classes, the size multiset and its max tracker).
// Clusters are assigned to shards by ClusterID modulo the shard count, so
// operations whose cluster footprints are disjoint touch disjoint shard
// entries and can run concurrently under the shard locks.
type worldShard struct {
	mu        sync.RWMutex
	clusters  map[ids.ClusterID]*clusterState
	degraded  map[ids.ClusterID]randnum.Security
	settled   map[ids.ClusterID]randnum.Security
	sizeCount map[int]int
	maxSize   int
}

func newWorldShard() *worldShard {
	return &worldShard{
		clusters:  make(map[ids.ClusterID]*clusterState),
		degraded:  make(map[ids.ClusterID]randnum.Security),
		settled:   make(map[ids.ClusterID]randnum.Security),
		sizeCount: make(map[int]int),
	}
}

// noteSizeChange updates the shard's size multiset and max-size tracker for
// a cluster moving from size a to size b. Caller holds s.mu.
func (s *worldShard) noteSizeChange(a, b int) {
	if a == b {
		return
	}
	if a > 0 {
		s.sizeCount[a]--
		if s.sizeCount[a] == 0 {
			delete(s.sizeCount, a)
		}
	}
	if b > 0 {
		s.sizeCount[b]++
	}
	if b > s.maxSize {
		s.maxSize = b
	} else if a == s.maxSize && s.sizeCount[a] == 0 {
		// The (possibly unique) largest cluster of this shard shrank: scan
		// down. Distinct sizes are O(log N), so this is trivial.
		m := 0
		for sz := range s.sizeCount {
			if sz > m {
				m = sz
			}
		}
		s.maxSize = m
	}
}

// reclassify recomputes a cluster's live security level. Event counters
// are NOT advanced here — transients inside one operation are not time
// step states; settleSecurity handles accounting at operation boundaries.
// Caller holds s.mu.
func (s *worldShard) reclassify(c ids.ClusterID) {
	cs, ok := s.clusters[c]
	if !ok || len(cs.members) == 0 {
		delete(s.degraded, c)
		return
	}
	now := randnum.Classify(len(cs.members), cs.byz)
	if now == randnum.Secure {
		delete(s.degraded, c)
	} else {
		s.degraded[c] = now
	}
}

// nodeShard is one lockable segment of the node index, keyed by NodeID
// modulo the shard count.
type nodeShard struct {
	mu    sync.RWMutex
	nodes map[ids.NodeID]nodeInfo
}

// defaultShards is the package-level default shard count applied when
// Config.Shards is zero; see SetDefaultShards.
var defaultShards atomic.Int32

// SetDefaultShards fixes the shard count used by worlds whose Config.Shards
// is zero: 1 restores the fully serial layout, n > 1 partitions cluster
// state across n lockable segments. Values below 1 reset to 1.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards.Store(int32(n))
}

// DefaultShards reports the package default shard count (minimum 1).
func DefaultShards() int {
	if v := defaultShards.Load(); v > 0 {
		return int(v)
	}
	return 1
}

// defaultGroupedCascade is the package-level default for
// Config.GroupedCascade, applied by DefaultConfig; see
// SetDefaultGroupedCascade.
var defaultGroupedCascade atomic.Bool

// SetDefaultGroupedCascade fixes whether configurations built by
// DefaultConfig run the leave cascade as one grouped shuffle round (true)
// or as Algorithm 2's per-receiver full exchanges (false, the paper
// default). It is the harness-wide knob behind the nowbench/nowsim
// -grouped-cascade flags; worlds built from an explicit Config are
// unaffected.
func SetDefaultGroupedCascade(on bool) { defaultGroupedCascade.Store(on) }

// DefaultGroupedCascade reports the package default cascade mode.
func DefaultGroupedCascade() bool { return defaultGroupedCascade.Load() }

// World is the complete NOW protocol state. Cluster-keyed state is
// partitioned across Config.Shards lockable segments so the op scheduler
// (ExecBatch) can execute operations with disjoint cluster footprints
// concurrently. Outside ExecBatch the world is not safe for concurrent
// use: the paper's model is synchronous and the classic per-operation API
// (Join/Leave/...) is single-threaded, exactly as before.
type World struct {
	cfg     Config
	led     *metrics.Ledger
	rng     *xrand.Rand
	walkCfg walk.Config

	shards     []*worldShard
	nodeShards []*nodeShard
	nClusters  int
	overlay    *over.Overlay

	nodeAlloc ids.NodeAllocator
	clAlloc   ids.ClusterAllocator

	// Flat node indexes for O(1) uniform sampling by workloads. They are
	// serial-only state: the op scheduler mutates them in its op-ordered
	// post-pass, never from apply workers, so they need no lock and their
	// ordering (which seeds RandomNode draws) stays deterministic.
	allNodes []ids.NodeID
	nodePos  map[ids.NodeID]int
	byzNodes []ids.NodeID
	byzPos   map[ids.NodeID]int

	walker *walk.Walker
	exch   *exchange.Exchanger
	hijack *hijackProxy
	steer  func(ids.ClusterID) float64

	pendingRejoin []ids.NodeID
	rejoinByz     map[ids.NodeID]bool
	stats         Stats
	bootstrapped  bool

	// clusterScratch is settleSecurity's reusable sorted-key buffer
	// (serial contexts only), keeping the per-operation sorted cluster
	// walk allocation-free.
	clusterScratch []ids.ClusterID
}

// Interface compliance: the world is the topology the primitives run over.
var (
	_ walk.Topology  = (*World)(nil)
	_ exchange.World = (*World)(nil)
)

// NewWorld returns an empty world; call Bootstrap before operations.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shardCount := cfg.Shards
	if shardCount == 0 {
		shardCount = DefaultShards()
	}
	ov, err := over.New(over.Params{
		TargetDegree: cfg.TargetDegree(),
		DegreeCap:    cfg.DegreeCap(),
		DegreeFloor:  cfg.DegreeFloor(),
		Repair:       cfg.OverlayRepair,
	})
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:        cfg,
		led:        &metrics.Ledger{},
		rng:        xrand.New(cfg.Seed),
		shards:     make([]*worldShard, shardCount),
		nodeShards: make([]*nodeShard, shardCount),
		overlay:    ov,
		nodePos:    make(map[ids.NodeID]int),
		byzPos:     make(map[ids.NodeID]int),
		rejoinByz:  make(map[ids.NodeID]bool),
		hijack:     &hijackProxy{},
	}
	for i := range w.shards {
		w.shards[i] = newWorldShard()
		w.nodeShards[i] = &nodeShard{nodes: make(map[ids.NodeID]nodeInfo)}
	}
	w.walkCfg = walk.Config{
		DurationFactor: cfg.WalkDurationFactor,
		MaxRestarts:    cfg.MaxWalkRestarts,
		Gen:            cfg.Generator,
		Hijack:         w.hijack,
		Steer:          func(c ids.ClusterID) float64 { return w.steerScore(c) },
	}
	walker, err := walk.NewWalker(w.walkCfg, w)
	if err != nil {
		return nil, err
	}
	w.walker = walker
	exch, err := exchange.New(w, walker, cfg.Generator)
	if err != nil {
		return nil, err
	}
	w.exch = exch
	return w, nil
}

func (w *World) steerScore(c ids.ClusterID) float64 {
	if w.steer == nil {
		return 0
	}
	return w.steer(c)
}

// SetHijacker installs (or clears) the adversary's captured-cluster walk
// redirection hook.
func (w *World) SetHijacker(h walk.Hijacker) { w.hijack.set(h) }

// SetSteer installs (or clears) the adversary's scoring of clusters used to
// bias last-revealer randomness (only effective with a biasable generator).
func (w *World) SetSteer(f func(ids.ClusterID) float64) { w.steer = f }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// ShardCount reports how many lockable segments cluster state is
// partitioned across (>= 1).
func (w *World) ShardCount() int { return len(w.shards) }

// Ledger returns the world's cost ledger.
func (w *World) Ledger() *metrics.Ledger { return w.led }

// Stats returns the lifetime counters.
func (w *World) Stats() Stats { return w.stats }

// --- shard routing ---

func (w *World) shardFor(c ids.ClusterID) *worldShard {
	return w.shards[uint64(c)%uint64(len(w.shards))]
}

func (w *World) nodeShardFor(x ids.NodeID) *nodeShard {
	return w.nodeShards[uint64(x)%uint64(len(w.nodeShards))]
}

func (w *World) hasCluster(c ids.ClusterID) bool {
	s := w.shardFor(c)
	s.mu.RLock()
	_, ok := s.clusters[c]
	s.mu.RUnlock()
	return ok
}

// putCluster installs a fresh cluster record. Serial contexts only
// (bootstrap, split, merge): cluster creation is structural and the op
// scheduler never admits structural plans for concurrent apply.
func (w *World) putCluster(c ids.ClusterID, cs *clusterState) {
	s := w.shardFor(c)
	s.mu.Lock()
	s.clusters[c] = cs
	s.mu.Unlock()
	w.nClusters++
}

// snapshotCluster deep-copies a cluster record for a planning view.
func (w *World) snapshotCluster(c ids.ClusterID) (*clusterState, bool) {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.clusters[c]
	if !ok {
		return nil, false
	}
	return cs.clone(), true
}

func (w *World) nodeInfoOf(x ids.NodeID) (nodeInfo, bool) {
	ns := w.nodeShardFor(x)
	ns.mu.RLock()
	info, ok := ns.nodes[x]
	ns.mu.RUnlock()
	return info, ok
}

func (w *World) setNodeInfo(x ids.NodeID, info nodeInfo) {
	ns := w.nodeShardFor(x)
	ns.mu.Lock()
	ns.nodes[x] = info
	ns.mu.Unlock()
}

func (w *World) deleteNodeInfo(x ids.NodeID) {
	ns := w.nodeShardFor(x)
	ns.mu.Lock()
	delete(ns.nodes, x)
	ns.mu.Unlock()
}

// --- core membership mutators (shared by the classic serial path and the
// scheduler's apply phase; all locking lives here) ---

// insertMember adds x (allegiance byz) to cluster c, updating the size
// multiset and live security class. It does not touch the node index.
func (w *World) insertMember(c ids.ClusterID, x ids.NodeID, byz bool) error {
	s := w.shardFor(c)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(c, x, byz)
}

// insertLocked is insertMember's body; the caller holds s.mu.
func (s *worldShard) insertLocked(c ids.ClusterID, x ids.NodeID, byz bool) error {
	cs, ok := s.clusters[c]
	if !ok {
		return fmt.Errorf("core: insert into unknown cluster %v", c)
	}
	s.noteSizeChange(len(cs.members), len(cs.members)+1)
	cs.add(x, byz)
	s.reclassify(c)
	return nil
}

// removeMember removes x from c, updating the size multiset and live
// security class. It does not touch the node index.
func (w *World) removeMember(c ids.ClusterID, x ids.NodeID, byz bool) error {
	s := w.shardFor(c)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(c, x, byz)
}

// removeLocked is removeMember's body; the caller holds s.mu.
func (s *worldShard) removeLocked(c ids.ClusterID, x ids.NodeID, byz bool) error {
	cs, ok := s.clusters[c]
	if !ok {
		return fmt.Errorf("core: remove from unknown cluster %v", c)
	}
	n := len(cs.members)
	if err := cs.remove(x, byz); err != nil {
		return err
	}
	s.noteSizeChange(n, n-1)
	s.reclassify(c)
	return nil
}

// --- walk.Topology ---

// NumClusters implements walk.Topology.
func (w *World) NumClusters() int { return w.nClusters }

// NumOverlayEdges implements walk.Topology.
func (w *World) NumOverlayEdges() int { return w.overlay.NumEdges() }

// Degree implements walk.Topology.
func (w *World) Degree(c ids.ClusterID) int { return w.overlay.Degree(c) }

// NeighborAt implements walk.Topology.
func (w *World) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return w.overlay.NeighborAt(c, i) }

// Size implements walk.Topology.
func (w *World) Size(c ids.ClusterID) int {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if cs, ok := s.clusters[c]; ok {
		return len(cs.members)
	}
	return 0
}

// Byz implements walk.Topology.
func (w *World) Byz(c ids.ClusterID) int {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if cs, ok := s.clusters[c]; ok {
		return cs.byz
	}
	return 0
}

// MaxClusterSize implements walk.Topology: the maximum over the per-shard
// max trackers.
func (w *World) MaxClusterSize() int {
	m := 0
	for _, s := range w.shards {
		s.mu.RLock()
		if s.maxSize > m {
			m = s.maxSize
		}
		s.mu.RUnlock()
	}
	return m
}

// --- exchange.World ---

// MemberAt implements exchange.World.
func (w *World) MemberAt(c ids.ClusterID, i int) ids.NodeID {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clusters[c].members[i]
}

// Members implements exchange.World (snapshot copy).
func (w *World) Members(c ids.ClusterID) []ids.NodeID {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.clusters[c]
	if !ok {
		return nil
	}
	out := make([]ids.NodeID, len(cs.members))
	copy(out, cs.members)
	return out
}

// Transfer implements exchange.World: move x between clusters with all
// bookkeeping (membership, Byzantine counts, size multiset, security
// classification).
func (w *World) Transfer(x ids.NodeID, from, to ids.ClusterID) error {
	info, ok := w.nodeInfoOf(x)
	if !ok {
		return fmt.Errorf("core: transfer of unknown node %v", x)
	}
	if info.cluster != from {
		return fmt.Errorf("core: node %v is in %v, not %v", x, info.cluster, from)
	}
	if !w.hasCluster(from) {
		return fmt.Errorf("core: transfer from unknown cluster %v", from)
	}
	if !w.hasCluster(to) {
		return fmt.Errorf("core: transfer to unknown cluster %v", to)
	}
	if err := w.applyTransfer(x, from, to, info.byz); err != nil {
		return err
	}
	w.stats.Swaps++
	return nil
}

// applyTransfer performs the raw cluster-and-node-record relocation without
// validation or swap accounting. Used by Transfer and by the scheduler's
// apply phase (where admitted plans guarantee validity and stats come from
// the plan deltas). Both footprint shards are held for the whole move via
// the canonical ordered-acquire helper, so no reader can observe x
// removed from one cluster but not yet inserted into the other.
func (w *World) applyTransfer(x ids.NodeID, from, to ids.ClusterID, byz bool) error {
	release := w.lockShardPair(from, to)
	defer release()
	if err := w.shardFor(from).removeLocked(from, x, byz); err != nil {
		return err
	}
	if err := w.shardFor(to).insertLocked(to, x, byz); err != nil {
		return err
	}
	w.setNodeInfo(x, nodeInfo{cluster: to, byz: byz})
	return nil
}

// --- bookkeeping helpers ---

// settleSecurity advances the security accounting to the current state:
// called at the end of every public operation (= paper time step) and at
// the end of every scheduler batch. It counts transitions into the
// degraded (>= 1/3) and captured (>= 1/2) states and tracks the worst
// per-cluster Byzantine fraction.
func (w *World) settleSecurity() {
	for _, s := range w.shards {
		s.mu.Lock()
		// Sorted cluster walk: the folds below are commutative today, but
		// the settled-transition accounting is exactly the kind of logic
		// that grows order-sensitive branches; fixing the order keeps the
		// whole pass trivially deterministic (and nowlint-clean).
		w.clusterScratch = sortedKeysInto(w.clusterScratch, s.clusters)
		for _, c := range w.clusterScratch {
			cs := s.clusters[c]
			size := len(cs.members)
			if size == 0 {
				delete(s.settled, c)
				continue
			}
			if frac := float64(cs.byz) / float64(size); frac > w.stats.MaxByzFractionEver {
				w.stats.MaxByzFractionEver = frac
			}
			now := randnum.Classify(size, cs.byz)
			prev := s.settled[c]
			if now > prev {
				if now >= randnum.Degraded && prev < randnum.Degraded {
					w.stats.DegradedEvents++
				}
				if now == randnum.Captured && prev < randnum.Captured {
					w.stats.CapturedEvents++
				}
			}
			if now == randnum.Secure {
				delete(s.settled, c)
			} else {
				s.settled[c] = now
			}
		}
		// Drop settled entries for clusters that no longer exist.
		for c := range s.settled {
			if _, ok := s.clusters[c]; !ok {
				delete(s.settled, c)
			}
		}
		s.mu.Unlock()
	}
}

// sampleAdd appends a node to the flat sampling indexes. Serial contexts
// only (classic ops and the scheduler's op-ordered post-pass): the append
// order seeds RandomNode draws and must stay deterministic.
func (w *World) sampleAdd(x ids.NodeID, byz bool) {
	w.nodePos[x] = len(w.allNodes)
	w.allNodes = append(w.allNodes, x)
	if byz {
		w.byzPos[x] = len(w.byzNodes)
		w.byzNodes = append(w.byzNodes, x)
	}
}

// sampleRemove swap-removes a node from the flat sampling indexes. Serial
// contexts only.
func (w *World) sampleRemove(x ids.NodeID, byz bool) {
	i := w.nodePos[x]
	last := len(w.allNodes) - 1
	moved := w.allNodes[last]
	w.allNodes[i] = moved
	w.nodePos[moved] = i
	w.allNodes = w.allNodes[:last]
	delete(w.nodePos, x)
	if byz {
		j := w.byzPos[x]
		lastB := len(w.byzNodes) - 1
		movedB := w.byzNodes[lastB]
		w.byzNodes[j] = movedB
		w.byzPos[movedB] = j
		w.byzNodes = w.byzNodes[:lastB]
		delete(w.byzPos, x)
	}
}

// registerNode inserts a brand-new (or rejoining) node record into the
// node index and the flat sampling indexes.
func (w *World) registerNode(x ids.NodeID, byz bool, c ids.ClusterID) {
	w.setNodeInfo(x, nodeInfo{cluster: c, byz: byz})
	w.sampleAdd(x, byz)
}

// unregisterNode removes a node record from the node index and the flat
// sampling indexes.
func (w *World) unregisterNode(x ids.NodeID) {
	info, _ := w.nodeInfoOf(x)
	w.deleteNodeInfo(x)
	w.sampleRemove(x, info.byz)
}

// --- public read accessors ---

// NumNodes returns the current network size n.
func (w *World) NumNodes() int { return len(w.allNodes) }

// NumByzantine returns the number of Byzantine nodes currently present.
func (w *World) NumByzantine() int { return len(w.byzNodes) }

// Clusters returns the current cluster IDs (overlay insertion order).
func (w *World) Clusters() []ids.ClusterID { return w.overlay.Vertices() }

// ClusterOf returns the cluster containing x.
func (w *World) ClusterOf(x ids.NodeID) (ids.ClusterID, bool) {
	info, ok := w.nodeInfoOf(x)
	return info.cluster, ok
}

// IsByzantine reports whether x is adversary-controlled.
func (w *World) IsByzantine(x ids.NodeID) bool {
	info, _ := w.nodeInfoOf(x)
	return info.byz
}

// Contains reports whether x is currently in the network.
func (w *World) Contains(x ids.NodeID) bool {
	_, ok := w.nodeInfoOf(x)
	return ok
}

// RandomNode returns a uniform member of the network.
func (w *World) RandomNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.allNodes) == 0 {
		return 0, false
	}
	return w.allNodes[r.Intn(len(w.allNodes))], true
}

// RandomHonestNode returns a uniform honest member (rejection sampling;
// honest nodes are a >2/3 majority so this terminates fast).
func (w *World) RandomHonestNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.allNodes) == len(w.byzNodes) {
		return 0, false
	}
	for {
		x := w.allNodes[r.Intn(len(w.allNodes))]
		if !w.IsByzantine(x) {
			return x, true
		}
	}
}

// RandomByzantineNode returns a uniform Byzantine member.
func (w *World) RandomByzantineNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.byzNodes) == 0 {
		return 0, false
	}
	return w.byzNodes[r.Intn(len(w.byzNodes))], true
}

// RandomCluster returns a uniform cluster ID (used for join contacts).
func (w *World) RandomCluster(r *xrand.Rand) (ids.ClusterID, bool) {
	vs := w.overlay.Vertices()
	if len(vs) == 0 {
		return 0, false
	}
	return vs[r.Intn(len(vs))], true
}

// CurrentInsecure returns the number of clusters presently at or above
// the 1/3 (degraded) and 1/2 (captured) Byzantine thresholds, maintained
// incrementally so the check is O(insecure clusters).
func (w *World) CurrentInsecure() (degraded, captured int) {
	for _, s := range w.shards {
		s.mu.RLock()
		for _, sec := range s.degraded {
			switch sec {
			case randnum.Degraded:
				degraded++
			case randnum.Captured:
				degraded++
				captured++
			}
		}
		s.mu.RUnlock()
	}
	return degraded, captured
}

// Overlay exposes the OVER overlay for structural analysis. Callers must
// not mutate it.
func (w *World) Overlay() *over.Overlay { return w.overlay }

// Rng exposes the world's random stream for workloads that must share the
// run's determinism.
func (w *World) Rng() *xrand.Rand { return w.rng }

// Walker exposes the world's CTRW walker so applications (sampling,
// overlay maintenance by embedders) can run walks over the live topology.
func (w *World) Walker() *walk.Walker { return w.walker }

// Generator exposes the configured randNum construction.
func (w *World) Generator() randnum.Generator { return w.cfg.Generator }

// PendingRejoins drains the queue of nodes displaced by MergeRejoinAll;
// the simulator re-joins them on subsequent time steps.
func (w *World) PendingRejoins() []ids.NodeID {
	out := w.pendingRejoin
	w.pendingRejoin = nil
	return out
}

// NodeIsQueued reports whether x awaits rejoin (MergeRejoinAll only).
func (w *World) NodeIsQueued(x ids.NodeID) bool {
	_, ok := w.rejoinByz[x]
	return ok
}
