package core

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"nowover/internal/exchange"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/over"
	"nowover/internal/randnum"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// ErrUnknownNode reports an operation aimed at a node that is not in the
// network. Batch drivers match it to distinguish "the victim already left"
// from genuine protocol failures.
var ErrUnknownNode = errors.New("core: unknown node")

// IsUnknownNode reports whether err indicates an operation aimed at a node
// that is not (or no longer) in the network.
func IsUnknownNode(err error) bool { return errors.Is(err, ErrUnknownNode) }

// ErrUnknownCluster reports an operation aimed at a cluster that is not in
// the overlay — typically one dissolved by a merge earlier in the same
// batch. Batch drivers match it the same way as ErrUnknownNode.
var ErrUnknownCluster = errors.New("core: unknown cluster")

// IsUnknownCluster reports whether err indicates an operation aimed at a
// cluster that is not (or no longer) in the overlay.
func IsUnknownCluster(err error) bool { return errors.Is(err, ErrUnknownCluster) }

// nodeInfo is the world's per-node record. Records live in a dense
// slot-indexed arena (see nodeShard); present distinguishes a live record
// from a never-used or vacated slot.
type nodeInfo struct {
	cluster ids.ClusterID
	byz     bool
	present bool
}

// clusterState is the world's per-cluster record: member list, incremental
// Byzantine count, and the security bookkeeping folded by settleSecurity
// at operation boundaries. Records are arena-managed by their shard —
// retired records keep their member capacity and return to a free list for
// recycling by putCluster — so steady-state churn allocates nothing.
//
// Member removal is a linear scan: cluster sizes are bounded by the split
// threshold (K·L·log2 N, ~80 at n=2^20), so the scan is cheaper than the
// position map it replaced and keeps the record to two words of header
// state per cluster.
type clusterState struct {
	members []ids.NodeID
	byz     int
	// sec is the current (live) security class, maintained incrementally
	// by worldShard.reclassify on every membership/allegiance change.
	sec randnum.Security
	// settled is the class as of the last settleSecurity pass; the
	// sec-vs-settled delta drives the Degraded/CapturedEvents counters.
	settled randnum.Security
	// dirty marks the record as queued in its shard's dirtySlots list.
	dirty bool
}

func (cs *clusterState) indexOf(x ids.NodeID) int {
	for i, m := range cs.members {
		if m == x {
			return i
		}
	}
	return -1
}

func (cs *clusterState) add(x ids.NodeID, byz bool) {
	cs.members = append(cs.members, x)
	if byz {
		cs.byz++
	}
}

func (cs *clusterState) remove(x ids.NodeID, byz bool) error {
	i := cs.indexOf(x)
	if i < 0 {
		// Double removal (e.g. of a node that was swap-moved out by an
		// earlier removal) lands here: the membership scan is the guard.
		return fmt.Errorf("core: node %v not in cluster", x)
	}
	if byz && cs.byz == 0 {
		return fmt.Errorf("core: removing %v would underflow the Byzantine count", x)
	}
	last := len(cs.members) - 1
	cs.members[i] = cs.members[last]
	cs.members = cs.members[:last]
	if byz {
		cs.byz--
	}
	// An emptied record deliberately keeps its backing array: the cluster
	// is about to be retired into the shard's free list (or refilled), and
	// the retained capacity is what makes the recycled record's next fill
	// allocation-free.
	return nil
}

// clone deep-copies the membership-relevant fields of the record (used by
// the op scheduler's copy-on-write planning views; the plan-local copy
// carries no security bookkeeping because plans never read it).
func (cs *clusterState) clone() *clusterState {
	out := &clusterState{
		members: make([]ids.NodeID, len(cs.members)),
		byz:     cs.byz,
	}
	copy(out.members, cs.members)
	return out
}

// Stats accumulates protocol-lifetime counters and security high-water
// marks.
type Stats struct {
	Joins, Leaves, Splits, Merges int64
	// Rejoins counts re-insertions of merge-displaced nodes; each is also
	// counted in Joins (a rejoin executes the Join operation).
	Rejoins int64
	// Swaps counts individual node exchanges.
	Swaps int64
	// HijackedWalks counts walks redirected through captured clusters.
	HijackedWalks int64
	// DegradedEvents / CapturedEvents count transitions of a cluster into
	// the >=1/3-Byzantine and >=1/2-Byzantine states. These are the
	// security failures whose absence Theorem 3 guarantees.
	DegradedEvents, CapturedEvents int64
	// MaxByzFractionEver is the worst per-cluster Byzantine fraction
	// observed at any point in the run.
	MaxByzFractionEver float64
}

// accumulate folds per-operation deltas (from the op scheduler) into the
// lifetime counters. High-water fields are not deltas and are settled
// separately at batch boundaries.
func (s *Stats) accumulate(d Stats) {
	s.Joins += d.Joins
	s.Leaves += d.Leaves
	s.Splits += d.Splits
	s.Merges += d.Merges
	s.Rejoins += d.Rejoins
	s.Swaps += d.Swaps
	s.HijackedWalks += d.HijackedWalks
}

// hijackProxy lets the adversary be installed after World construction:
// walker configs capture the proxy once and read whatever hook is current.
// Installation is serial (SetHijacker must not run concurrently with
// world operations); Redirect is called from concurrent plan workers, but
// the hook contract (hooks.go) makes those calls pure reads, so the proxy
// needs no lock — concurrent readers of an unchanging field race with
// nothing.
type hijackProxy struct {
	h walk.Hijacker
}

func (p *hijackProxy) Redirect(r *xrand.Rand, at ids.ClusterID) (ids.ClusterID, bool) {
	if p.h == nil {
		return 0, false
	}
	return p.h.Redirect(r, at)
}

func (p *hijackProxy) set(h walk.Hijacker) { p.h = h }

// worldShard is one independently lockable segment of the cluster-keyed
// state: a dense slot-indexed arena of cluster records plus every index
// derived from them (the size multiset with its max tracker, the insecure
// counters, the settle queue).
//
// Cluster c lives in shard c % stride at slot c / stride. Cluster IDs are
// minted densely and never reused, so each shard's slots fill 0,1,2,...
// with no gaps and one slot belongs to exactly one cluster ID for the
// lifetime of the world; ascending slot order IS ascending ClusterID
// order, which is what keeps every walk over the arena deterministic
// without sorting. Operations whose cluster footprints are disjoint touch
// disjoint shard entries and can run concurrently under the shard locks.
type worldShard struct {
	mu            sync.RWMutex
	stride, index int

	// clusters is the cluster arena; nil = retired or not yet minted.
	clusters []*clusterState
	// free holds retired records (capacity retained) for putCluster.
	free []*clusterState
	// liveSlots counts non-nil arena entries.
	liveSlots int

	// sizeCount is the cluster-size multiset — sizeCount[s] = number of
	// clusters of size s — with maxSize as its tracked maximum. The dense
	// int-indexed layout makes the stale-max recompute an exact scan-down
	// (no deleted-entry ordering hazards: the count for every size is
	// always addressable).
	sizeCount []int32
	maxSize   int

	// degraded/captured count clusters whose live class is >= Degraded
	// resp. == Captured, so CurrentInsecure is O(shards).
	degraded, captured int

	// dirtySlots queues slots whose record changed since the last settle
	// pass, deduplicated by clusterState.dirty.
	dirtySlots []int32
}

func newWorldShard(stride, index int) *worldShard {
	return &worldShard{stride: stride, index: index}
}

func (s *worldShard) slotOf(c ids.ClusterID) int {
	return int(uint64(c) / uint64(s.stride))
}

func (s *worldShard) idAt(slot int) ids.ClusterID {
	return ids.ClusterID(uint64(slot)*uint64(s.stride) + uint64(s.index))
}

// cluster returns the record for c, or nil when c is not a live cluster of
// this shard. Caller holds s.mu.
func (s *worldShard) cluster(c ids.ClusterID) *clusterState {
	slot := s.slotOf(c)
	if slot >= len(s.clusters) {
		return nil
	}
	return s.clusters[slot]
}

// clusterAt is cluster plus the slot, for callers that also mark dirty.
// Caller holds s.mu.
func (s *worldShard) clusterAt(c ids.ClusterID) (int, *clusterState) {
	slot := s.slotOf(c)
	if slot >= len(s.clusters) {
		return slot, nil
	}
	return slot, s.clusters[slot]
}

// noteSizeChange updates the shard's size multiset and max-size tracker for
// a cluster moving from size a to size b. Caller holds s.mu.
func (s *worldShard) noteSizeChange(a, b int) {
	if a == b {
		return
	}
	if a > 0 {
		s.sizeCount[a]--
	}
	if b > 0 {
		if b >= len(s.sizeCount) {
			s.sizeCount = append(s.sizeCount, make([]int32, b+1-len(s.sizeCount))...)
		}
		s.sizeCount[b]++
	}
	if b > s.maxSize {
		s.maxSize = b
	} else if a == s.maxSize && s.sizeCount[a] == 0 {
		// The (possibly unique) largest cluster of this shard shrank: scan
		// down to the next occupied size. The multiset is dense, so the
		// scan is exact by construction — there is no "entry already
		// deleted" state for the recompute to mis-read.
		m := a
		for m > 0 && s.sizeCount[m] == 0 {
			m--
		}
		s.maxSize = m
	}
}

// markDirty queues cs's slot for the next settleSecurity pass. Caller
// holds s.mu.
func (s *worldShard) markDirty(slot int, cs *clusterState) {
	if cs.dirty {
		return
	}
	cs.dirty = true
	s.dirtySlots = append(s.dirtySlots, int32(slot))
}

// reclassify recomputes a record's live security class after a membership
// or allegiance change, maintaining the shard's insecure counters. Event
// counters are NOT advanced here — transients inside one operation are not
// time step states; settleSecurity handles accounting at operation
// boundaries. Caller holds s.mu.
func (s *worldShard) reclassify(cs *clusterState) {
	now := randnum.Secure
	if len(cs.members) > 0 {
		now = randnum.Classify(len(cs.members), cs.byz)
	}
	if now == cs.sec {
		return
	}
	if cs.sec >= randnum.Degraded {
		s.degraded--
	}
	if cs.sec == randnum.Captured {
		s.captured--
	}
	if now >= randnum.Degraded {
		s.degraded++
	}
	if now == randnum.Captured {
		s.captured++
	}
	cs.sec = now
}

// retireLocked removes c's record from the arena and returns it — reset,
// capacity retained — to the free list, reporting whether c was live.
// Caller holds s.mu.
func (s *worldShard) retireLocked(c ids.ClusterID) bool {
	slot, cs := s.clusterAt(c)
	if cs == nil {
		return false
	}
	s.noteSizeChange(len(cs.members), 0)
	cs.members = cs.members[:0]
	cs.byz = 0
	s.reclassify(cs) // live class -> Secure, counters updated
	cs.settled = randnum.Secure
	// Any dirtySlots entry for this slot now points at a nil record and is
	// skipped by the settle pass; the flag must clear here so the recycled
	// record re-queues cleanly at its next home.
	cs.dirty = false
	s.clusters[slot] = nil
	s.liveSlots--
	s.free = append(s.free, cs)
	return true
}

// nodeShard is one lockable segment of the node index: a dense slot-indexed
// arena of node records, slot = NodeID / stride for the shard at
// NodeID % stride (node IDs are minted densely and never reused, mirroring
// the cluster arena's slot scheme).
type nodeShard struct {
	mu            sync.RWMutex
	stride, index int
	nodes         []nodeInfo
	count         int
}

func (ns *nodeShard) slotOf(x ids.NodeID) int {
	return int(uint64(x) / uint64(ns.stride))
}

// defaultShards is the package-level default shard count applied when
// Config.Shards is zero; see SetDefaultShards.
var defaultShards atomic.Int32

// SetDefaultShards fixes the shard count used by worlds whose Config.Shards
// is zero: 1 restores the fully serial layout, n > 1 partitions cluster
// state across n lockable segments. Values below 1 reset to 1.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards.Store(int32(n))
}

// DefaultShards reports the package default shard count (minimum 1).
func DefaultShards() int {
	if v := defaultShards.Load(); v > 0 {
		return int(v)
	}
	return 1
}

// defaultGroupedCascade is the package-level default for
// Config.GroupedCascade, applied by DefaultConfig; see
// SetDefaultGroupedCascade.
var defaultGroupedCascade atomic.Bool

// SetDefaultGroupedCascade fixes whether configurations built by
// DefaultConfig run the leave cascade as one grouped shuffle round (true)
// or as Algorithm 2's per-receiver full exchanges (false, the paper
// default). It is the harness-wide knob behind the nowbench/nowsim
// -grouped-cascade flags; worlds built from an explicit Config are
// unaffected.
func SetDefaultGroupedCascade(on bool) { defaultGroupedCascade.Store(on) }

// DefaultGroupedCascade reports the package default cascade mode.
func DefaultGroupedCascade() bool { return defaultGroupedCascade.Load() }

// World is the complete NOW protocol state. Cluster-keyed state is
// partitioned across Config.Shards lockable segments so the op scheduler
// (ExecBatch) can execute operations with disjoint cluster footprints
// concurrently. Outside ExecBatch the world is not safe for concurrent
// use: the paper's model is synchronous and the classic per-operation API
// (Join/Leave/...) is single-threaded, exactly as before.
type World struct {
	cfg     Config
	led     *metrics.Ledger
	rng     *xrand.Rand
	walkCfg walk.Config

	shards     []*worldShard
	nodeShards []*nodeShard
	nClusters  int
	overlay    *over.Overlay

	nodeAlloc ids.NodeAllocator
	clAlloc   ids.ClusterAllocator

	// Flat node indexes for O(1) uniform sampling by workloads. nodePos
	// and byzPos are NodeID-indexed position arrays (-1 = absent), dense
	// for the same reason the arenas are: IDs are minted densely and never
	// reused. They are serial-only state: the op scheduler mutates them in
	// its op-ordered post-pass, never from apply workers, so they need no
	// lock and their ordering (which seeds RandomNode draws) stays
	// deterministic.
	allNodes []ids.NodeID
	nodePos  []int32
	byzNodes []ids.NodeID
	byzPos   []int32

	walker *walk.Walker
	exch   *exchange.Exchanger
	hijack *hijackProxy
	steer  func(ids.ClusterID) float64

	// hijackHook/steerHook are the installed hooks' batch lifecycles
	// (BatchHook side of SetHijacker / SetSteerHook), driven serially by
	// ExecBatch: BeginBatch before planning, CommitOp in op order after
	// apply. See hooks.go.
	hijackHook BatchHook
	steerHook  BatchHook

	pendingRejoin []ids.NodeID
	rejoinByz     map[ids.NodeID]bool
	stats         Stats
	bootstrapped  bool

	// sched holds the pooled scratch of the batch scheduler (plan records,
	// RNG substreams, per-worker plan machinery). It is serial-only state:
	// ExecBatch alone touches it, and ExecBatch must not run concurrently
	// with itself.
	sched schedScratch
}

// Interface compliance: the world is the topology the primitives run over.
var (
	_ walk.Topology  = (*World)(nil)
	_ exchange.World = (*World)(nil)
)

// NewWorld returns an empty world; call Bootstrap before operations.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shardCount := cfg.Shards
	if shardCount == 0 {
		shardCount = DefaultShards()
	}
	ov, err := over.New(over.Params{
		TargetDegree: cfg.TargetDegree(),
		DegreeCap:    cfg.DegreeCap(),
		DegreeFloor:  cfg.DegreeFloor(),
		Repair:       cfg.OverlayRepair,
	})
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:        cfg,
		led:        &metrics.Ledger{},
		rng:        xrand.New(cfg.Seed),
		shards:     make([]*worldShard, shardCount),
		nodeShards: make([]*nodeShard, shardCount),
		overlay:    ov,
		rejoinByz:  make(map[ids.NodeID]bool),
		hijack:     &hijackProxy{},
	}
	for i := range w.shards {
		w.shards[i] = newWorldShard(shardCount, i)
		w.nodeShards[i] = &nodeShard{stride: shardCount, index: i}
	}
	w.walkCfg = walk.Config{
		DurationFactor: cfg.WalkDurationFactor,
		MaxRestarts:    cfg.MaxWalkRestarts,
		Gen:            cfg.Generator,
		Hijack:         w.hijack,
		Steer:          func(c ids.ClusterID) float64 { return w.steerScore(c) },
	}
	walker, err := walk.NewWalker(w.walkCfg, w)
	if err != nil {
		return nil, err
	}
	w.walker = walker
	exch, err := exchange.New(w, walker, cfg.Generator)
	if err != nil {
		return nil, err
	}
	w.exch = exch
	return w, nil
}

func (w *World) steerScore(c ids.ClusterID) float64 {
	if w.steer == nil {
		return 0
	}
	return w.steer(c)
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// ShardCount reports how many lockable segments cluster state is
// partitioned across (>= 1).
func (w *World) ShardCount() int { return len(w.shards) }

// Ledger returns the world's cost ledger.
func (w *World) Ledger() *metrics.Ledger { return w.led }

// Stats returns the lifetime counters.
func (w *World) Stats() Stats { return w.stats }

// --- shard routing ---

func (w *World) shardFor(c ids.ClusterID) *worldShard {
	return w.shards[uint64(c)%uint64(len(w.shards))]
}

func (w *World) nodeShardFor(x ids.NodeID) *nodeShard {
	return w.nodeShards[uint64(x)%uint64(len(w.nodeShards))]
}

func (w *World) hasCluster(c ids.ClusterID) bool {
	s := w.shardFor(c)
	s.mu.RLock()
	ok := s.cluster(c) != nil
	s.mu.RUnlock()
	return ok
}

// putCluster installs a fresh cluster record for c, recycling a retired
// record (with its member capacity) when the shard's free list has one.
// Serial contexts only (bootstrap, split, merge): cluster creation is
// structural and the op scheduler never admits structural plans for
// concurrent apply.
func (w *World) putCluster(c ids.ClusterID) {
	s := w.shardFor(c)
	s.mu.Lock()
	slot := s.slotOf(c)
	for len(s.clusters) <= slot {
		s.clusters = append(s.clusters, nil)
	}
	var cs *clusterState
	if n := len(s.free); n > 0 {
		cs, s.free = s.free[n-1], s.free[:n-1]
	} else {
		cs = &clusterState{}
	}
	s.clusters[slot] = cs
	s.liveSlots++
	s.mu.Unlock()
	w.nClusters++
}

// snapshotCluster deep-copies a cluster record for a planning view.
func (w *World) snapshotCluster(c ids.ClusterID) (*clusterState, bool) {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs := s.cluster(c)
	if cs == nil {
		return nil, false
	}
	return cs.clone(), true
}

// snapshotClusterInto copies c's record into dst, reusing dst's member
// capacity. It is snapshotCluster for the pooled planning path: a recycled
// dst makes the copy-on-write snapshot allocation-free in steady state.
func (w *World) snapshotClusterInto(c ids.ClusterID, dst *clusterState) bool {
	s := w.shardFor(c)
	s.mu.RLock()
	cs := s.cluster(c)
	if cs == nil {
		s.mu.RUnlock()
		return false
	}
	dst.members = append(dst.members[:0], cs.members...)
	dst.byz = cs.byz
	s.mu.RUnlock()
	return true
}

func (w *World) nodeInfoOf(x ids.NodeID) (nodeInfo, bool) {
	ns := w.nodeShardFor(x)
	ns.mu.RLock()
	var info nodeInfo
	if slot := ns.slotOf(x); slot < len(ns.nodes) {
		info = ns.nodes[slot]
	}
	ns.mu.RUnlock()
	return info, info.present
}

func (w *World) setNodeInfo(x ids.NodeID, info nodeInfo) {
	info.present = true
	ns := w.nodeShardFor(x)
	ns.mu.Lock()
	slot := ns.slotOf(x)
	for len(ns.nodes) <= slot {
		ns.nodes = append(ns.nodes, nodeInfo{})
	}
	if !ns.nodes[slot].present {
		ns.count++
	}
	ns.nodes[slot] = info
	ns.mu.Unlock()
}

func (w *World) deleteNodeInfo(x ids.NodeID) {
	ns := w.nodeShardFor(x)
	ns.mu.Lock()
	if slot := ns.slotOf(x); slot < len(ns.nodes) && ns.nodes[slot].present {
		ns.nodes[slot] = nodeInfo{}
		ns.count--
	}
	ns.mu.Unlock()
}

// --- core membership mutators (shared by the classic serial path and the
// scheduler's apply phase; all locking lives here) ---

// insertMember adds x (allegiance byz) to cluster c, updating the size
// multiset and live security class. It does not touch the node index.
func (w *World) insertMember(c ids.ClusterID, x ids.NodeID, byz bool) error {
	s := w.shardFor(c)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(c, x, byz)
}

// insertLocked is insertMember's body; the caller holds s.mu.
func (s *worldShard) insertLocked(c ids.ClusterID, x ids.NodeID, byz bool) error {
	slot, cs := s.clusterAt(c)
	if cs == nil {
		return fmt.Errorf("core: insert into unknown cluster %v", c)
	}
	s.noteSizeChange(len(cs.members), len(cs.members)+1)
	cs.add(x, byz)
	s.reclassify(cs)
	s.markDirty(slot, cs)
	return nil
}

// removeMember removes x from c, updating the size multiset and live
// security class. It does not touch the node index.
func (w *World) removeMember(c ids.ClusterID, x ids.NodeID, byz bool) error {
	s := w.shardFor(c)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(c, x, byz)
}

// removeLocked is removeMember's body; the caller holds s.mu.
func (s *worldShard) removeLocked(c ids.ClusterID, x ids.NodeID, byz bool) error {
	slot, cs := s.clusterAt(c)
	if cs == nil {
		return fmt.Errorf("core: remove from unknown cluster %v", c)
	}
	n := len(cs.members)
	if err := cs.remove(x, byz); err != nil {
		return err
	}
	s.noteSizeChange(n, n-1)
	s.reclassify(cs)
	s.markDirty(slot, cs)
	return nil
}

// --- walk.Topology ---

// NumClusters implements walk.Topology.
func (w *World) NumClusters() int { return w.nClusters }

// NumOverlayEdges implements walk.Topology.
func (w *World) NumOverlayEdges() int { return w.overlay.NumEdges() }

// Degree implements walk.Topology.
func (w *World) Degree(c ids.ClusterID) int { return w.overlay.Degree(c) }

// NeighborAt implements walk.Topology.
func (w *World) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return w.overlay.NeighborAt(c, i) }

// Size implements walk.Topology.
func (w *World) Size(c ids.ClusterID) int {
	s := w.shardFor(c)
	s.mu.RLock()
	n := 0
	if cs := s.cluster(c); cs != nil {
		n = len(cs.members)
	}
	s.mu.RUnlock()
	return n
}

// Byz implements walk.Topology.
func (w *World) Byz(c ids.ClusterID) int {
	s := w.shardFor(c)
	s.mu.RLock()
	n := 0
	if cs := s.cluster(c); cs != nil {
		n = cs.byz
	}
	s.mu.RUnlock()
	return n
}

// MaxClusterSize implements walk.Topology: the maximum over the per-shard
// max trackers.
func (w *World) MaxClusterSize() int {
	m := 0
	for _, s := range w.shards {
		s.mu.RLock()
		if s.maxSize > m {
			m = s.maxSize
		}
		s.mu.RUnlock()
	}
	return m
}

// --- exchange.World ---

// MemberAt implements exchange.World.
func (w *World) MemberAt(c ids.ClusterID, i int) ids.NodeID {
	s := w.shardFor(c)
	s.mu.RLock()
	x := s.cluster(c).members[i]
	s.mu.RUnlock()
	return x
}

// Members implements exchange.World (snapshot copy).
func (w *World) Members(c ids.ClusterID) []ids.NodeID {
	s := w.shardFor(c)
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs := s.cluster(c)
	if cs == nil {
		return nil
	}
	out := make([]ids.NodeID, len(cs.members))
	copy(out, cs.members)
	return out
}

// Transfer implements exchange.World: move x between clusters with all
// bookkeeping (membership, Byzantine counts, size multiset, security
// classification).
func (w *World) Transfer(x ids.NodeID, from, to ids.ClusterID) error {
	info, ok := w.nodeInfoOf(x)
	if !ok {
		return fmt.Errorf("core: transfer of unknown node %v", x)
	}
	if info.cluster != from {
		return fmt.Errorf("core: node %v is in %v, not %v", x, info.cluster, from)
	}
	if !w.hasCluster(from) {
		return fmt.Errorf("core: transfer from unknown cluster %v", from)
	}
	if !w.hasCluster(to) {
		return fmt.Errorf("core: transfer to unknown cluster %v", to)
	}
	if err := w.applyTransfer(x, from, to, info.byz); err != nil {
		return err
	}
	w.stats.Swaps++
	return nil
}

// applyTransfer performs the raw cluster-and-node-record relocation without
// validation or swap accounting. Used by Transfer and by the scheduler's
// apply phase (where admitted plans guarantee validity and stats come from
// the plan deltas). Both footprint shards are held for the whole move via
// the canonical ordered-acquire helper, so no reader can observe x
// removed from one cluster but not yet inserted into the other.
func (w *World) applyTransfer(x ids.NodeID, from, to ids.ClusterID, byz bool) error {
	lo, hi := w.lockShardPair(from, to)
	defer unlockShardPair(lo, hi)
	if err := w.shardFor(from).removeLocked(from, x, byz); err != nil {
		return err
	}
	if err := w.shardFor(to).insertLocked(to, x, byz); err != nil {
		return err
	}
	w.setNodeInfo(x, nodeInfo{cluster: to, byz: byz})
	return nil
}

// --- bookkeeping helpers ---

// settleSecurity advances the security accounting to the current state:
// called at the end of every public operation (= paper time step) and at
// the end of every scheduler batch. It counts transitions into the
// degraded (>= 1/3) and captured (>= 1/2) states and tracks the worst
// per-cluster Byzantine fraction.
//
// Only records that changed since the last pass are visited: an unchanged
// cluster's class equals its settled class (no transition to count) and
// its Byzantine fraction was already folded into the monotone
// MaxByzFractionEver when it last changed, so the dirty-only walk is
// fold-for-fold identical to the full scan it replaces.
func (w *World) settleSecurity() {
	for _, s := range w.shards {
		s.mu.Lock()
		// Ascending slot order = ascending ClusterID within the shard: the
		// folds below are commutative today, but the settled-transition
		// accounting is exactly the kind of logic that grows
		// order-sensitive branches; fixing the order keeps the whole pass
		// trivially deterministic (and nowlint-clean), exactly like the
		// sorted map walk it replaces.
		slices.Sort(s.dirtySlots)
		for _, slot := range s.dirtySlots {
			cs := s.clusters[slot]
			if cs == nil {
				continue // retired after it was queued
			}
			cs.dirty = false
			size := len(cs.members)
			if size == 0 {
				cs.settled = randnum.Secure
				continue
			}
			if frac := float64(cs.byz) / float64(size); frac > w.stats.MaxByzFractionEver {
				w.stats.MaxByzFractionEver = frac
			}
			now := cs.sec
			prev := cs.settled
			if now > prev {
				if now >= randnum.Degraded && prev < randnum.Degraded {
					w.stats.DegradedEvents++
				}
				if now == randnum.Captured && prev < randnum.Captured {
					w.stats.CapturedEvents++
				}
			}
			cs.settled = now
		}
		s.dirtySlots = s.dirtySlots[:0]
		s.mu.Unlock()
	}
}

// samplePos returns x's position in the flat sampling index, -1 if absent.
func (w *World) samplePos(x ids.NodeID) int32 {
	if int(x) >= len(w.nodePos) {
		return -1
	}
	return w.nodePos[x]
}

// byzSamplePos returns x's position in the Byzantine sampling index, -1 if
// absent.
func (w *World) byzSamplePos(x ids.NodeID) int32 {
	if int(x) >= len(w.byzPos) {
		return -1
	}
	return w.byzPos[x]
}

// growPos extends a NodeID-indexed position array to cover x, filling new
// entries with the absent marker.
func growPos(pos []int32, x ids.NodeID) []int32 {
	for int(x) >= len(pos) {
		pos = append(pos, -1)
	}
	return pos
}

// sampleAdd appends a node to the flat sampling indexes. Serial contexts
// only (classic ops and the scheduler's op-ordered post-pass): the append
// order seeds RandomNode draws and must stay deterministic.
func (w *World) sampleAdd(x ids.NodeID, byz bool) {
	w.nodePos = growPos(w.nodePos, x)
	w.nodePos[x] = int32(len(w.allNodes))
	w.allNodes = append(w.allNodes, x)
	if byz {
		w.byzPos = growPos(w.byzPos, x)
		w.byzPos[x] = int32(len(w.byzNodes))
		w.byzNodes = append(w.byzNodes, x)
	}
}

// sampleRemove swap-removes a node from the flat sampling indexes. Serial
// contexts only.
func (w *World) sampleRemove(x ids.NodeID, byz bool) {
	i := w.nodePos[x]
	last := len(w.allNodes) - 1
	moved := w.allNodes[last]
	w.allNodes[i] = moved
	w.nodePos[moved] = i
	w.allNodes = w.allNodes[:last]
	w.nodePos[x] = -1
	if byz {
		j := w.byzPos[x]
		lastB := len(w.byzNodes) - 1
		movedB := w.byzNodes[lastB]
		w.byzNodes[j] = movedB
		w.byzPos[movedB] = j
		w.byzNodes = w.byzNodes[:lastB]
		w.byzPos[x] = -1
	}
}

// registerNode inserts a brand-new (or rejoining) node record into the
// node index and the flat sampling indexes.
func (w *World) registerNode(x ids.NodeID, byz bool, c ids.ClusterID) {
	w.setNodeInfo(x, nodeInfo{cluster: c, byz: byz})
	w.sampleAdd(x, byz)
}

// unregisterNode removes a node record from the node index and the flat
// sampling indexes.
func (w *World) unregisterNode(x ids.NodeID) {
	info, _ := w.nodeInfoOf(x)
	w.deleteNodeInfo(x)
	w.sampleRemove(x, info.byz)
}

// --- public read accessors ---

// NumNodes returns the current network size n.
func (w *World) NumNodes() int { return len(w.allNodes) }

// NumByzantine returns the number of Byzantine nodes currently present.
func (w *World) NumByzantine() int { return len(w.byzNodes) }

// Clusters returns the current cluster IDs (overlay insertion order).
func (w *World) Clusters() []ids.ClusterID { return w.overlay.Vertices() }

// ClusterOf returns the cluster containing x.
func (w *World) ClusterOf(x ids.NodeID) (ids.ClusterID, bool) {
	info, ok := w.nodeInfoOf(x)
	return info.cluster, ok
}

// IsByzantine reports whether x is adversary-controlled.
func (w *World) IsByzantine(x ids.NodeID) bool {
	info, _ := w.nodeInfoOf(x)
	return info.byz
}

// Contains reports whether x is currently in the network.
func (w *World) Contains(x ids.NodeID) bool {
	_, ok := w.nodeInfoOf(x)
	return ok
}

// RandomNode returns a uniform member of the network.
func (w *World) RandomNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.allNodes) == 0 {
		return 0, false
	}
	return w.allNodes[r.Intn(len(w.allNodes))], true
}

// RandomHonestNode returns a uniform honest member (rejection sampling;
// honest nodes are a >2/3 majority so this terminates fast).
func (w *World) RandomHonestNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.allNodes) == len(w.byzNodes) {
		return 0, false
	}
	for {
		x := w.allNodes[r.Intn(len(w.allNodes))]
		if !w.IsByzantine(x) {
			return x, true
		}
	}
}

// RandomByzantineNode returns a uniform Byzantine member.
func (w *World) RandomByzantineNode(r *xrand.Rand) (ids.NodeID, bool) {
	if len(w.byzNodes) == 0 {
		return 0, false
	}
	return w.byzNodes[r.Intn(len(w.byzNodes))], true
}

// RandomCluster returns a uniform cluster ID (used for join contacts).
func (w *World) RandomCluster(r *xrand.Rand) (ids.ClusterID, bool) {
	n := w.overlay.NumVertices()
	if n == 0 {
		return 0, false
	}
	return w.overlay.VertexAt(r.Intn(n)), true
}

// CurrentInsecure returns the number of clusters presently at or above
// the 1/3 (degraded) and 1/2 (captured) Byzantine thresholds, maintained
// incrementally per shard so the check is O(shards).
func (w *World) CurrentInsecure() (degraded, captured int) {
	for _, s := range w.shards {
		s.mu.RLock()
		degraded += s.degraded
		captured += s.captured
		s.mu.RUnlock()
	}
	return degraded, captured
}

// Overlay exposes the OVER overlay for structural analysis. Callers must
// not mutate it.
func (w *World) Overlay() *over.Overlay { return w.overlay }

// Rng exposes the world's random stream for workloads that must share the
// run's determinism.
func (w *World) Rng() *xrand.Rand { return w.rng }

// Walker exposes the world's CTRW walker so applications (sampling,
// overlay maintenance by embedders) can run walks over the live topology.
func (w *World) Walker() *walk.Walker { return w.walker }

// Generator exposes the configured randNum construction.
func (w *World) Generator() randnum.Generator { return w.cfg.Generator }

// PendingRejoins drains the queue of nodes displaced by MergeRejoinAll;
// the simulator re-joins them on subsequent time steps.
func (w *World) PendingRejoins() []ids.NodeID {
	out := w.pendingRejoin
	w.pendingRejoin = nil
	return out
}

// NodeIsQueued reports whether x awaits rejoin (MergeRejoinAll only).
func (w *World) NodeIsQueued(x ids.NodeID) bool {
	_, ok := w.rejoinByz[x]
	return ok
}
