package core

// The adversary hook contract.
//
// Hijack and steer hooks are consulted from inside walks, and the op
// scheduler plans every op of a batch on concurrent workers — so hook
// DECISIONS and hook BOOKKEEPING live on opposite sides of a batch
// boundary:
//
//   - Phase 1 (plan): Redirect/Score calls are PURE reads. A hook may
//     read its own snapshot-scoped decision state (fixed before the batch
//     started) and the per-op substream handed to Redirect; it must not
//     write anything reachable from another op's calls. The pre-batch
//     world is quiescent during planning, so reading it (e.g. a target
//     liveness check) is deterministic too.
//   - Batch lifecycle (serial): a hook that also implements BatchHook
//     gets BeginBatch before Phase 1 — the one place to re-validate or
//     re-fixate decision state against the pre-batch world — and CommitOp
//     once per op, in op order, after the batch's effects (concurrent
//     applies and the serial tail) are all in place, folded alongside the
//     scheduler's own order-sensitive bookkeeping (sampling indexes,
//     ledgers, stats). Ratchet counters and budget spend belong here.
//
// Under this contract ExecBatch keeps its unconditional determinism —
// Shards=1 and Shards=8 worlds produce byte-identical results at any
// GOMAXPROCS — with hooks installed and planning fully parallel. The
// classic one-op-per-call path needs no lifecycle calls: it is serial by
// construction, and the sim drivers refresh strategy state through Decide
// at every step boundary.

import (
	"nowover/internal/ids"
	"nowover/internal/walk"
)

// BatchHook is the serial lifecycle of an adversary hook across one
// ExecBatch call (one paper time step). Implemented optionally by the
// values passed to SetHijacker / SetSteerHook; a hook without it simply
// has no per-batch state to refresh or fold.
type BatchHook interface {
	// BeginBatch runs serially before Phase 1 plans, against the
	// quiescent pre-batch world: refresh the snapshot-scoped decision
	// state the coming batch's Redirect/Score calls will read.
	BeginBatch()
	// CommitOp runs serially once per batch op, in op order, after all of
	// the batch's effects are in place: op index i, whether the op
	// succeeded, and how many of its walks were hijacked. This is where
	// hook bookkeeping (ratchets, spend, counters) folds.
	CommitOp(i int, ok bool, hijacked int64)
}

// Steerer scores clusters by their value to the adversary, biasing
// last-revealer randomness (see walk.Config.Steer). Score is under the
// plan-phase purity contract above.
type Steerer interface {
	Score(c ids.ClusterID) float64
}

// SetHijacker installs (or clears) the adversary's captured-cluster walk
// redirection hook. Redirect must follow the plan-phase purity contract
// (see the package comment above and walk.Hijacker); if h also implements
// BatchHook, ExecBatch drives its lifecycle. Must not be called
// concurrently with world operations.
func (w *World) SetHijacker(h walk.Hijacker) {
	w.hijack.set(h)
	w.hijackHook = nil
	if bh, ok := h.(BatchHook); ok {
		w.hijackHook = bh
	}
}

// SetSteer installs (or clears) the adversary's scoring of clusters used
// to bias last-revealer randomness (only effective with a biasable
// generator). The function must be pure per the plan-phase contract; a
// steerer whose decision state needs per-batch refresh should come in
// through SetSteerHook instead (or be the already-registered hijacker, as
// with adversary.CapturedHijacker.Score).
func (w *World) SetSteer(f func(ids.ClusterID) float64) {
	w.steer = f
	w.steerHook = nil
}

// SetSteerHook installs h.Score as the steer function and, when h also
// implements BatchHook, registers its lifecycle with ExecBatch. When the
// same value is already installed as the hijacker its lifecycle runs
// once, not twice. Passing nil clears the steer hook.
func (w *World) SetSteerHook(h Steerer) {
	if h == nil {
		w.steer = nil
		w.steerHook = nil
		return
	}
	w.steer = h.Score
	w.steerHook = nil
	if bh, ok := h.(BatchHook); ok {
		w.steerHook = bh
	}
}

// hookLifecycles returns the registered batch lifecycles, hijacker first,
// deduplicated so one value serving as both hijacker and steerer commits
// once per op.
func (w *World) hookLifecycles() (hooks [2]BatchHook, n int) {
	if w.hijackHook != nil {
		hooks[n] = w.hijackHook
		n++
	}
	if w.steerHook != nil && w.steerHook != w.hijackHook {
		hooks[n] = w.steerHook
		n++
	}
	return hooks, n
}
