// Package core implements NOW (Neighbors On Watch), the paper's primary
// contribution: a protocol maintaining a partition of the nodes into
// clusters of size Theta(log N), each more than two thirds honest w.h.p.,
// on top of the OVER expander overlay, while the network size varies
// polynomially (sqrt(N) <= n <= N) under a Byzantine adversary controlling
// a fraction tau <= 1/3 - epsilon of the nodes.
//
// The World type holds the full protocol state (partition + overlay +
// honesty bookkeeping) and exposes the paper's operations: Bootstrap
// (initialization phase, section 3.2) and Join / Leave with their induced
// Split / Merge (maintenance phase, section 3.3). Every operation executes
// the real protocol machinery — biased CTRWs, cluster-agreed randomness,
// full-cluster exchanges, overlay surgery — with communication costs
// charged to a ledger per the paper's accounting rules.
package core

import (
	"fmt"
	"math"

	"nowover/internal/randnum"
)

// MergeStrategy selects between the paper's mutually inconsistent
// descriptions of the merge operation (section 3.3 prose vs Figure 2 vs
// Algorithm 2); see DESIGN.md.
type MergeStrategy int

const (
	// MergeAbsorbRandom (default, section 3.3 prose): randCl picks a
	// random cluster C', C' leaves the overlay — satisfying OVER's
	// random-removal assumption — and its members are absorbed into the
	// undersized cluster, which then exchanges all its nodes.
	MergeAbsorbRandom MergeStrategy = iota
	// MergeRejoinAll (Algorithm 2): the undersized cluster itself leaves
	// the overlay and its members re-join the network individually via
	// Join operations on subsequent time steps.
	MergeRejoinAll
)

// String implements fmt.Stringer.
func (m MergeStrategy) String() string {
	switch m {
	case MergeAbsorbRandom:
		return "absorb-random"
	case MergeRejoinAll:
		return "rejoin-all"
	default:
		return fmt.Sprintf("merge(%d)", int(m))
	}
}

// Config parameterizes a NOW world. DefaultConfig supplies paper-faithful
// settings; zero values are rejected by validation so misconfiguration is
// loud.
type Config struct {
	// N is the maximum network size (the paper's name-space bound); the
	// live size n is expected to stay within [sqrt(N), N].
	N int
	// Seed drives all protocol randomness; equal seeds reproduce runs.
	Seed uint64

	// K is the cluster-size security parameter: clusters target K*log2(N)
	// members. Higher K lowers the adversary's per-cluster success
	// probability at higher per-operation cost (paper section 3.2).
	K float64
	// L is the split/merge slack (paper's l > sqrt(2)): a cluster splits
	// above K*L*log2(N) members and merges below K*log2(N)/L.
	L float64

	// Alpha is the overlay degree exponent: target degree is
	// DegreeFactor * log2(N)^(1+Alpha) (OVER Property 2).
	Alpha float64
	// DegreeFactor scales the overlay target degree.
	DegreeFactor float64
	// DegreeCapFactor sets the hard maximum degree as a multiple of the
	// target degree (Property 2's constant c).
	DegreeCapFactor float64

	// WalkDurationFactor scales CTRW segment durations (expected hops
	// ~ factor * log2(#C)^2, the paper's O(log^2 n) walk length).
	WalkDurationFactor float64
	// MaxWalkRestarts bounds randCl rejection restarts.
	MaxWalkRestarts int

	// Generator is the randNum construction (Ideal or CommitReveal).
	Generator randnum.Generator

	// MergeStrategy resolves the paper's merge ambiguity.
	MergeStrategy MergeStrategy
	// LeaveCascade enables the second-level exchanges on Leave required by
	// the Theorem 3 proof ("we enforce C' to exchange all its nodes").
	// Disabling it is an ablation.
	LeaveCascade bool
	// GroupedCascade batches the leave cascade into ONE grouped shuffle
	// round over the receiver set — one swap per receiver, partners drawn
	// from the round's own pool, all draws on one stream (see
	// exchange.CascadeRound) — instead of a full exchange per receiver,
	// shrinking a leave's write footprint from ~|C|^2 to ~|C| clusters
	// and its round cost by the cluster size. Cascade traffic is charged
	// to metrics.ClassCascade. Only meaningful with LeaveCascade; false
	// keeps Algorithm 2's per-receiver cascade byte-identically.
	GroupedCascade bool
	// ExchangeOnJoin enables the full-cluster exchange after an insertion
	// (section 3.3 Join). Disabling it is an ablation that reproduces the
	// attack motivating shuffling.
	ExchangeOnJoin bool
	// ExchangeOnLeave enables the full-cluster exchange after a departure
	// (section 3.3 Leave / Algorithm 2). Disabling it together with
	// ExchangeOnJoin yields the fully shuffle-less strawman of section
	// 3.3, against which the join-leave attack ratchets Byzantine mass
	// into its target unimpeded.
	ExchangeOnLeave bool
	// OverlayRepair enables OVER's post-removal degree repair.
	OverlayRepair bool
	// EdgeAttemptFactor bounds edge-placement walk attempts per requested
	// edge in OVER Add/Remove.
	EdgeAttemptFactor int

	// Shards is the number of independently lockable segments the world's
	// cluster-keyed state is partitioned across. 1 is the fully serial
	// layout (classic behavior, byte-identical under a fixed seed); values
	// above 1 let the op scheduler (World.ExecBatch) execute operations
	// with disjoint cluster footprints concurrently. 0 defers to the
	// package default (SetDefaultShards, normally 1).
	Shards int
}

// DefaultConfig returns paper-faithful parameters for maximum size n.
// GroupedCascade defaults to the paper's per-receiver cascade unless the
// package default was flipped with SetDefaultGroupedCascade (the harness
// knob behind the nowbench/nowsim -grouped-cascade flags).
func DefaultConfig(maxN int) Config {
	return Config{
		GroupedCascade:     DefaultGroupedCascade(),
		N:                  maxN,
		Seed:               1,
		K:                  2,
		L:                  2,
		Alpha:              0.25,
		DegreeFactor:       1,
		DegreeCapFactor:    3,
		WalkDurationFactor: 0.5,
		MaxWalkRestarts:    32,
		Generator:          randnum.Ideal{},
		MergeStrategy:      MergeAbsorbRandom,
		LeaveCascade:       true,
		ExchangeOnJoin:     true,
		ExchangeOnLeave:    true,
		OverlayRepair:      true,
		EdgeAttemptFactor:  4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.N < 16:
		return fmt.Errorf("core: N=%d too small (min 16)", c.N)
	case c.K <= 0:
		return fmt.Errorf("core: K=%v must be positive", c.K)
	case c.L <= math.Sqrt2:
		return fmt.Errorf("core: L=%v must exceed sqrt(2)", c.L)
	case c.Alpha < 0:
		return fmt.Errorf("core: Alpha=%v must be non-negative", c.Alpha)
	case c.DegreeFactor <= 0:
		return fmt.Errorf("core: DegreeFactor=%v must be positive", c.DegreeFactor)
	case c.DegreeCapFactor < 1:
		return fmt.Errorf("core: DegreeCapFactor=%v must be >= 1", c.DegreeCapFactor)
	case c.WalkDurationFactor <= 0:
		return fmt.Errorf("core: WalkDurationFactor=%v must be positive", c.WalkDurationFactor)
	case c.MaxWalkRestarts < 1:
		return fmt.Errorf("core: MaxWalkRestarts=%d must be >= 1", c.MaxWalkRestarts)
	case c.Generator == nil:
		return fmt.Errorf("core: nil Generator")
	case c.EdgeAttemptFactor < 1:
		return fmt.Errorf("core: EdgeAttemptFactor=%d must be >= 1", c.EdgeAttemptFactor)
	case c.Shards < 0 || c.Shards > 1<<12:
		return fmt.Errorf("core: Shards=%d outside [0, %d]", c.Shards, 1<<12)
	}
	return nil
}

// LogN returns log2(N), the paper's ubiquitous scale factor.
func (c Config) LogN() float64 { return math.Log2(float64(c.N)) }

// TargetClusterSize returns K*log2(N) rounded to the nearest integer,
// minimum 3 (a cluster must be able to out-vote one traitor).
func (c Config) TargetClusterSize() int {
	s := int(math.Round(c.K * c.LogN()))
	if s < 3 {
		s = 3
	}
	return s
}

// SplitThreshold returns the size above which a cluster splits.
func (c Config) SplitThreshold() int {
	return int(math.Round(c.K * c.L * c.LogN()))
}

// MergeThreshold returns the size below which a cluster merges.
func (c Config) MergeThreshold() int {
	t := int(math.Round(c.K * c.LogN() / c.L))
	if t < 2 {
		t = 2
	}
	return t
}

// TargetDegree returns OVER's target overlay degree
// DegreeFactor*log2(N)^(1+Alpha), minimum 3.
func (c Config) TargetDegree() int {
	d := int(math.Round(c.DegreeFactor * math.Pow(c.LogN(), 1+c.Alpha)))
	if d < 3 {
		d = 3
	}
	return d
}

// DegreeCap returns OVER's hard maximum degree.
func (c Config) DegreeCap() int {
	return int(math.Round(c.DegreeCapFactor * float64(c.TargetDegree())))
}

// DegreeFloor returns OVER's repair floor (half the target).
func (c Config) DegreeFloor() int {
	f := c.TargetDegree() / 2
	if f < 2 {
		f = 2
	}
	return f
}
