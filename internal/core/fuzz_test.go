package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"nowover/internal/adversary"
)

// FuzzWorldOps feeds fuzzer-chosen operation scripts through FOUR worlds:
// a serial-layout (Shards=1) and a sharded (Shards=8) world in each of
// the two cascade modes (per-receiver and grouped). After every scheduler
// batch it asserts that (a) the full invariant layer holds in all four
// and (b) each serial/sharded pair is in bit-identical protocol state —
// the classic pair exactly as before, the grouped pair pinning the
// grouped cascade's serial-vs-sharded lockstep under adversarial
// scripts. The two modes legitimately diverge from EACH OTHER (grouping
// changes which swaps happen), so cross-mode equality is not asserted;
// an op that targets a node/cluster present only in one mode's state is
// tolerated per pair as long as the pair agrees. The script drives
// joins, leaves, forced exchanges and allegiance flips; splits, merges
// and transfers are exercised through the operations that trigger them,
// including on the scheduler's serial tail (see seed-cascade-into-merge).
//
// Script encoding (one byte per instruction, wrapping reads for params):
//
//	b%6 == 0,1  queue a join (Byzantine iff b&0x40)
//	b%6 == 2    queue a leave of the (next byte)-indexed node
//	b%6 == 3    queue an exchange of the (next byte)-indexed cluster
//	b%6 == 4    flush the queued batch through ExecBatch
//	b%6 == 5    classic SetCorrupted flip of the (next byte)-indexed node
func FuzzWorldOps(f *testing.F) {
	f.Add(uint64(1), []byte{0, 0, 4, 2, 1, 4})
	f.Add(uint64(7), []byte{0, 2, 0, 3, 5, 4, 2, 2, 2, 3, 4})
	f.Add(uint64(42), []byte{2, 9, 2, 17, 2, 33, 4, 0, 0, 0, 0, 4, 5, 8, 4})
	f.Add(uint64(0xC0FFEE), []byte{3, 1, 3, 2, 4, 2, 250, 0, 64, 4, 2, 7, 2, 8, 2, 9, 4})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		// 128 bytes is enough churn to force merges from the bootstrap
		// population (see seed-cascade-into-merge) while keeping one
		// input's four-world replay cheap.
		if len(script) > 128 {
			script = script[:128]
		}
		mk := func(shards int, grouped bool) *World {
			cfg := DefaultConfig(256)
			cfg.Seed = seed
			cfg.Shards = shards
			cfg.GroupedCascade = grouped
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Bootstrap(96, func(slot int) bool { return slot%5 == 0 }); err != nil {
				t.Fatal(err)
			}
			return w
		}
		type lockstep struct {
			name   string
			s1, s8 *World
		}
		pairs := []lockstep{
			{"per-receiver", mk(1, false), mk(8, false)},
			{"grouped", mk(1, true), mk(8, true)},
		}
		w1 := pairs[0].s1 // the script's reference state
		minPop := 2 * w1.Config().TargetClusterSize()

		var pending []Op
		victims := make(map[uint64]bool)
		next := func(i *int) byte {
			if *i >= len(script) {
				return 0
			}
			b := script[*i]
			*i++
			return b
		}
		flush := func() {
			if len(pending) == 0 {
				return
			}
			for _, p := range pairs {
				r1 := p.s1.ExecBatch(pending)
				r8 := p.s8.ExecBatch(pending)
				for j := range r1 {
					if r1[j].Err != nil && !IsUnknownNode(r1[j].Err) && !IsUnknownCluster(r1[j].Err) {
						t.Fatalf("%s serial op %d: %v", p.name, j, r1[j].Err)
					}
					if (r1[j].Err == nil) != (r8[j].Err == nil) || r1[j].Node != r8[j].Node || r1[j].Deferred != r8[j].Deferred {
						t.Fatalf("%s op %d diverged: serial=%+v sharded=%+v", p.name, j, r1[j], r8[j])
					}
				}
				if err := CheckInvariants(p.s1); err != nil {
					t.Fatalf("%s serial invariants: %v", p.name, err)
				}
				if err := CheckInvariants(p.s8); err != nil {
					t.Fatalf("%s sharded invariants: %v", p.name, err)
				}
				if a, b := worldFingerprint(p.s1), worldFingerprint(p.s8); a != b {
					t.Fatalf("%s states diverged:\n--- serial ---\n%s\n--- sharded ---\n%s", p.name, a, b)
				}
			}
			pending = pending[:0]
			victims = make(map[uint64]bool)
		}

		projN := w1.NumNodes()
		for i := 0; i < len(script); {
			b := next(&i)
			switch b % 6 {
			case 0, 1:
				if projN >= w1.Config().N-1 || len(pending) >= 8 {
					continue
				}
				pending = append(pending, Op{Kind: OpJoin, Byz: b&0x40 != 0})
				projN++
			case 2:
				if projN <= minPop || len(pending) >= 8 || w1.NumNodes() == 0 {
					continue
				}
				idx := int(next(&i)) % w1.NumNodes()
				x := w1.allNodes[idx]
				if victims[uint64(x)] {
					continue
				}
				victims[uint64(x)] = true
				pending = append(pending, Op{Kind: OpLeave, Victim: x})
				projN--
			case 3:
				cs := w1.Clusters()
				if len(cs) == 0 || len(pending) >= 8 {
					continue
				}
				c := cs[int(next(&i))%len(cs)]
				pending = append(pending, Op{Kind: OpExchange, Target: c})
			case 4:
				flush()
			case 5:
				flush() // classic ops require a quiescent batch queue
				if w1.NumNodes() == 0 {
					continue
				}
				idx := int(next(&i)) % w1.NumNodes()
				x := w1.allNodes[idx]
				for _, p := range pairs {
					// The node may have already departed the other mode's
					// state (a leave that failed there); both worlds of a
					// pair agree, so the flip is applied or skipped
					// pair-consistently.
					if !p.s1.Contains(x) {
						continue
					}
					corrupted := !p.s1.IsByzantine(x)
					// Keep the tau regime: never corrupt past ~1/3.
					if corrupted && 3*(p.s1.NumByzantine()+1) > p.s1.NumNodes() {
						continue
					}
					if err := p.s1.SetCorrupted(x, corrupted); err != nil {
						t.Fatal(err)
					}
					if err := p.s8.SetCorrupted(x, corrupted); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		flush()
	})
}

// FuzzHookedWorldOps is the hooked sibling of FuzzWorldOps: the same
// script encoding drives a serial (Shards=1) and a sharded (Shards=8)
// world that each carry a live JoinLeaveAttack fixation through a
// CapturedHijacker registered as BOTH walk hijacker and steer hook — the
// configuration that used to force the one-worker planning fallback. The
// pair must stay in bit-identical protocol state after every batch, and
// the hooks' commit-folded bookkeeping (hijacked-walk tallies, committed
// op counts) must agree exactly, script after script. The bootstrap
// concentrates corruption in the low slots so captured clusters exist
// from the start and the fixation has something to bite on; seed bit 0
// selects the cascade mode so the corpus covers grouped and per-receiver
// tails. The two checked-in seeds (seed-tail-hijack-*) are verified by
// TestHookedFuzzSeedsExerciseTailHijack to drive hijacked walks through
// ops that land on the scheduler's serial tail — the replay path where
// hook purity is easiest to get wrong.
func FuzzHookedWorldOps(f *testing.F) {
	f.Add(uint64(1), []byte{0, 0, 4, 2, 1, 4})
	f.Add(uint64(7), []byte{0, 2, 0, 3, 5, 4, 2, 2, 2, 3, 4})
	f.Add(uint64(42), []byte{2, 9, 2, 17, 2, 33, 4, 0, 0, 0, 0, 4, 5, 8, 4})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		runHookedScript(t, seed, script)
	})
}

// hookedScriptResult summarizes one hooked-script replay for the corpus
// verification test: whether any op both deferred to the serial tail AND
// hijacked at least one walk there.
type hookedScriptResult struct {
	tailHijacks int64
	hijacked    int64
}

func runHookedScript(t *testing.T, seed uint64, script []byte) hookedScriptResult {
	if len(script) > 128 {
		script = script[:128]
	}
	grouped := seed&1 == 1
	mk := func(shards int) (*World, *adversary.CapturedHijacker) {
		cfg := DefaultConfig(256)
		cfg.Seed = seed
		cfg.Shards = shards
		cfg.GroupedCascade = grouped
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Concentrated corruption: the low slots are all Byzantine, so the
		// bootstrap yields captured clusters for the attack to fixate on.
		if err := w.Bootstrap(96, func(slot int) bool { return slot < 24 }); err != nil {
			t.Fatal(err)
		}
		h := &adversary.CapturedHijacker{
			View:     w,
			Strategy: &adversary.JoinLeaveAttack{Budget: adversary.Budget{Tau: 0.25}},
		}
		w.SetHijacker(h)
		w.SetSteerHook(h)
		return w, h
	}
	w1, h1 := mk(1)
	w8, h8 := mk(8)
	minPop := 2 * w1.Config().TargetClusterSize()
	var out hookedScriptResult

	var pending []Op
	victims := make(map[uint64]bool)
	next := func(i *int) byte {
		if *i >= len(script) {
			return 0
		}
		b := script[*i]
		*i++
		return b
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		r1 := w1.ExecBatch(pending)
		r8 := w8.ExecBatch(pending)
		for j := range r1 {
			if r1[j].Err != nil && !IsUnknownNode(r1[j].Err) && !IsUnknownCluster(r1[j].Err) {
				t.Fatalf("serial op %d: %v", j, r1[j].Err)
			}
			if (r1[j].Err == nil) != (r8[j].Err == nil) || r1[j].Node != r8[j].Node || r1[j].Deferred != r8[j].Deferred {
				t.Fatalf("op %d diverged: serial=%+v sharded=%+v", j, r1[j], r8[j])
			}
			// w1.sched.hijacked holds the per-op tallies the commit step just
			// folded; a deferred op with a nonzero tally is a tail hijack.
			if r1[j].Deferred && w1.sched.hijacked[j] > 0 {
				out.tailHijacks += w1.sched.hijacked[j]
			}
		}
		if err := CheckInvariants(w1); err != nil {
			t.Fatalf("serial invariants: %v", err)
		}
		if err := CheckInvariants(w8); err != nil {
			t.Fatalf("sharded invariants: %v", err)
		}
		if a, b := worldFingerprint(w1), worldFingerprint(w8); a != b {
			t.Fatalf("states diverged:\n--- serial ---\n%s\n--- sharded ---\n%s", a, b)
		}
		if h1.Hijacked != h8.Hijacked || h1.CommittedOps != h8.CommittedOps {
			t.Fatalf("hook bookkeeping diverged: hijacked %d/%d ops %d/%d",
				h1.Hijacked, h8.Hijacked, h1.CommittedOps, h8.CommittedOps)
		}
		pending = pending[:0]
		victims = make(map[uint64]bool)
	}

	projN := w1.NumNodes()
	for i := 0; i < len(script); {
		b := next(&i)
		switch b % 6 {
		case 0, 1:
			if projN >= w1.Config().N-1 || len(pending) >= 8 {
				continue
			}
			pending = append(pending, Op{Kind: OpJoin, Byz: b&0x40 != 0})
			projN++
		case 2:
			if projN <= minPop || len(pending) >= 8 || w1.NumNodes() == 0 {
				continue
			}
			idx := int(next(&i)) % w1.NumNodes()
			x := w1.allNodes[idx]
			if victims[uint64(x)] {
				continue
			}
			victims[uint64(x)] = true
			pending = append(pending, Op{Kind: OpLeave, Victim: x})
			projN--
		case 3:
			cs := w1.Clusters()
			if len(cs) == 0 || len(pending) >= 8 {
				continue
			}
			c := cs[int(next(&i))%len(cs)]
			pending = append(pending, Op{Kind: OpExchange, Target: c})
		case 4:
			flush()
		case 5:
			flush() // classic ops require a quiescent batch queue
			if w1.NumNodes() == 0 {
				continue
			}
			idx := int(next(&i)) % w1.NumNodes()
			x := w1.allNodes[idx]
			if !w1.Contains(x) {
				continue
			}
			corrupted := !w1.IsByzantine(x)
			if corrupted && 3*(w1.NumByzantine()+1) > w1.NumNodes() {
				continue
			}
			if err := w1.SetCorrupted(x, corrupted); err != nil {
				t.Fatal(err)
			}
			if err := w8.SetCorrupted(x, corrupted); err != nil {
				t.Fatal(err)
			}
		}
	}
	flush()
	out.hijacked = h1.Hijacked
	return out
}

// readHookedCorpusSeed parses a checked-in Go fuzz corpus file for
// FuzzHookedWorldOps (format: "go test fuzz v1", then one line per
// argument in Go literal syntax).
func readHookedCorpusSeed(t *testing.T, name string) (uint64, []byte) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "fuzz", "FuzzHookedWorldOps", name))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: unexpected corpus layout: %q", name, lines)
	}
	var seed uint64
	if _, err := fmt.Sscanf(lines[1], "uint64(%d)", &seed); err != nil {
		t.Fatalf("%s: bad seed line %q: %v", name, lines[1], err)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(lines[2], "[]byte("), ")")
	script, err := strconv.Unquote(quoted)
	if err != nil {
		t.Fatalf("%s: bad script line %q: %v", name, lines[2], err)
	}
	return seed, []byte(script)
}

// TestHookedFuzzSeedsExerciseTailHijack pins the reason the two
// seed-tail-hijack-* corpus entries are checked in: each must drive at
// least one op that BOTH falls to the scheduler's serial tail AND
// hijacks walks while replaying there — one per cascade mode. If a
// scheduler change stops these scripts from reaching the hooked tail,
// the corpus has silently lost its coverage and new seeds must be hunted
// (see the FuzzHookedWorldOps comment).
func TestHookedFuzzSeedsExerciseTailHijack(t *testing.T) {
	for _, tc := range []struct {
		name    string
		grouped bool
	}{
		{"seed-tail-hijack-per-receiver", false},
		{"seed-tail-hijack-grouped", true},
	} {
		seed, script := readHookedCorpusSeed(t, tc.name)
		if got := seed&1 == 1; got != tc.grouped {
			t.Errorf("%s: seed %d selects grouped=%v, want %v", tc.name, seed, got, tc.grouped)
		}
		res := runHookedScript(t, seed, script)
		if res.tailHijacks == 0 {
			t.Errorf("%s: no hijacked walk ever landed on the serial tail (hijacked=%d total)",
				tc.name, res.hijacked)
		}
	}
}
