package core

import (
	"testing"
)

// FuzzWorldOps feeds fuzzer-chosen operation scripts through FOUR worlds:
// a serial-layout (Shards=1) and a sharded (Shards=8) world in each of
// the two cascade modes (per-receiver and grouped). After every scheduler
// batch it asserts that (a) the full invariant layer holds in all four
// and (b) each serial/sharded pair is in bit-identical protocol state —
// the classic pair exactly as before, the grouped pair pinning the
// grouped cascade's serial-vs-sharded lockstep under adversarial
// scripts. The two modes legitimately diverge from EACH OTHER (grouping
// changes which swaps happen), so cross-mode equality is not asserted;
// an op that targets a node/cluster present only in one mode's state is
// tolerated per pair as long as the pair agrees. The script drives
// joins, leaves, forced exchanges and allegiance flips; splits, merges
// and transfers are exercised through the operations that trigger them,
// including on the scheduler's serial tail (see seed-cascade-into-merge).
//
// Script encoding (one byte per instruction, wrapping reads for params):
//
//	b%6 == 0,1  queue a join (Byzantine iff b&0x40)
//	b%6 == 2    queue a leave of the (next byte)-indexed node
//	b%6 == 3    queue an exchange of the (next byte)-indexed cluster
//	b%6 == 4    flush the queued batch through ExecBatch
//	b%6 == 5    classic SetCorrupted flip of the (next byte)-indexed node
func FuzzWorldOps(f *testing.F) {
	f.Add(uint64(1), []byte{0, 0, 4, 2, 1, 4})
	f.Add(uint64(7), []byte{0, 2, 0, 3, 5, 4, 2, 2, 2, 3, 4})
	f.Add(uint64(42), []byte{2, 9, 2, 17, 2, 33, 4, 0, 0, 0, 0, 4, 5, 8, 4})
	f.Add(uint64(0xC0FFEE), []byte{3, 1, 3, 2, 4, 2, 250, 0, 64, 4, 2, 7, 2, 8, 2, 9, 4})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		// 128 bytes is enough churn to force merges from the bootstrap
		// population (see seed-cascade-into-merge) while keeping one
		// input's four-world replay cheap.
		if len(script) > 128 {
			script = script[:128]
		}
		mk := func(shards int, grouped bool) *World {
			cfg := DefaultConfig(256)
			cfg.Seed = seed
			cfg.Shards = shards
			cfg.GroupedCascade = grouped
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Bootstrap(96, func(slot int) bool { return slot%5 == 0 }); err != nil {
				t.Fatal(err)
			}
			return w
		}
		type lockstep struct {
			name   string
			s1, s8 *World
		}
		pairs := []lockstep{
			{"per-receiver", mk(1, false), mk(8, false)},
			{"grouped", mk(1, true), mk(8, true)},
		}
		w1 := pairs[0].s1 // the script's reference state
		minPop := 2 * w1.Config().TargetClusterSize()

		var pending []Op
		victims := make(map[uint64]bool)
		next := func(i *int) byte {
			if *i >= len(script) {
				return 0
			}
			b := script[*i]
			*i++
			return b
		}
		flush := func() {
			if len(pending) == 0 {
				return
			}
			for _, p := range pairs {
				r1 := p.s1.ExecBatch(pending)
				r8 := p.s8.ExecBatch(pending)
				for j := range r1 {
					if r1[j].Err != nil && !IsUnknownNode(r1[j].Err) && !IsUnknownCluster(r1[j].Err) {
						t.Fatalf("%s serial op %d: %v", p.name, j, r1[j].Err)
					}
					if (r1[j].Err == nil) != (r8[j].Err == nil) || r1[j].Node != r8[j].Node || r1[j].Deferred != r8[j].Deferred {
						t.Fatalf("%s op %d diverged: serial=%+v sharded=%+v", p.name, j, r1[j], r8[j])
					}
				}
				if err := CheckInvariants(p.s1); err != nil {
					t.Fatalf("%s serial invariants: %v", p.name, err)
				}
				if err := CheckInvariants(p.s8); err != nil {
					t.Fatalf("%s sharded invariants: %v", p.name, err)
				}
				if a, b := worldFingerprint(p.s1), worldFingerprint(p.s8); a != b {
					t.Fatalf("%s states diverged:\n--- serial ---\n%s\n--- sharded ---\n%s", p.name, a, b)
				}
			}
			pending = pending[:0]
			victims = make(map[uint64]bool)
		}

		projN := w1.NumNodes()
		for i := 0; i < len(script); {
			b := next(&i)
			switch b % 6 {
			case 0, 1:
				if projN >= w1.Config().N-1 || len(pending) >= 8 {
					continue
				}
				pending = append(pending, Op{Kind: OpJoin, Byz: b&0x40 != 0})
				projN++
			case 2:
				if projN <= minPop || len(pending) >= 8 || w1.NumNodes() == 0 {
					continue
				}
				idx := int(next(&i)) % w1.NumNodes()
				x := w1.allNodes[idx]
				if victims[uint64(x)] {
					continue
				}
				victims[uint64(x)] = true
				pending = append(pending, Op{Kind: OpLeave, Victim: x})
				projN--
			case 3:
				cs := w1.Clusters()
				if len(cs) == 0 || len(pending) >= 8 {
					continue
				}
				c := cs[int(next(&i))%len(cs)]
				pending = append(pending, Op{Kind: OpExchange, Target: c})
			case 4:
				flush()
			case 5:
				flush() // classic ops require a quiescent batch queue
				if w1.NumNodes() == 0 {
					continue
				}
				idx := int(next(&i)) % w1.NumNodes()
				x := w1.allNodes[idx]
				for _, p := range pairs {
					// The node may have already departed the other mode's
					// state (a leave that failed there); both worlds of a
					// pair agree, so the flip is applied or skipped
					// pair-consistently.
					if !p.s1.Contains(x) {
						continue
					}
					corrupted := !p.s1.IsByzantine(x)
					// Keep the tau regime: never corrupt past ~1/3.
					if corrupted && 3*(p.s1.NumByzantine()+1) > p.s1.NumNodes() {
						continue
					}
					if err := p.s1.SetCorrupted(x, corrupted); err != nil {
						t.Fatal(err)
					}
					if err := p.s8.SetCorrupted(x, corrupted); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		flush()
	})
}
