package core

// The op scheduler: concurrent execution of protocol operations with
// disjoint cluster footprints inside ONE world.
//
// The paper's analysis rests on independence — clusters interact only
// through the exchanges an operation itself triggers — so operations whose
// cluster footprints do not overlap commute. The scheduler exploits this
// in three deterministic phases:
//
//  1. PLAN. Every operation in the batch runs against a read-only snapshot
//     of the world (the pre-batch state) through a copy-on-write planView
//     that records the op's WRITE footprint: the clusters it mutates —
//     the join's insertion target, the leave's source, every exchange
//     partner and cascade receiver. Walk transits and cost reads are
//     read-only against the snapshot and are deliberately NOT part of the
//     footprint: all simultaneous operations of a batch observe the
//     round-start state, exactly as simultaneous operations in one round
//     of the paper's synchronous model do. Each op draws from its own RNG
//     substream, derived in op order from the world stream, and charges
//     its own private ledger — so plans are independent of scheduling and
//     can be computed on worker goroutines.
//  2. ADMIT + APPLY. In op order, a plan is admitted if its write
//     footprint is disjoint from every previously admitted plan's. Write
//     disjointness is sufficient for consistency: a plan only ever moves
//     nodes that are members of its own written clusters (exchange
//     partners pick their replacement from themselves), so disjoint write
//     sets move disjoint node sets and replaying both plans' moves yields
//     one well-defined state. Admitted moves are applied concurrently
//     under the per-shard locks; sampling indexes, ledgers and stats are
//     then folded in op order (serially) so their ordering stays
//     deterministic.
//  3. TAIL. Conflicting plans and structural operations (a join that must
//     split, a leave that must merge or empties its cluster — these mutate
//     the overlay and mint/retire cluster IDs) are discarded and re-run
//     serially, in op order, against the live post-apply state on a fresh
//     substream.
//
// Consequently ExecBatch is a pure function of (world state, batch): a
// Shards=1 world and a Shards=8 world with equal seeds produce IDENTICAL
// results — same Stats, same security counters, same membership, same
// ledger totals — regardless of GOMAXPROCS. Adversary hooks (hijacker,
// steer scorer) plan at full parallelism under the snapshot-scoped hook
// contract (hooks.go): plan-phase Redirect/Score calls are pure reads of
// state fixed before the batch, refreshed serially via BeginBatch, with
// hook bookkeeping folded in op order via CommitOp next to the
// scheduler's own order-sensitive folds; the contract holds
// unconditionally. Divergence from the classic
// one-op-per-call API is confined to (a) per-op RNG substreams instead of
// one shared stream, (b) security settling at batch (= paper time step)
// boundaries rather than per op, and (c) walks inside a batch observing
// the pre-batch snapshot. None of these weaken the paper's guarantees:
// the adversary already chooses its churn against the step-boundary state,
// and randCl's placement distribution is the same under any fixed seed
// derivation.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nowover/internal/exchange"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/walk"
	"nowover/internal/xrand"
)

// OpKind discriminates schedulable operations.
type OpKind int

// Schedulable operation kinds.
const (
	// OpJoin inserts a new node (Algorithm 1).
	OpJoin OpKind = iota
	// OpLeave removes a node (Algorithm 2).
	OpLeave
	// OpExchange force-shuffles one cluster (section 3.1 primitive).
	OpExchange
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpExchange:
		return "exchange"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one schedulable operation.
type Op struct {
	Kind OpKind
	// Byz marks a corrupted joiner (OpJoin).
	Byz bool
	// Contact, when HasContact, is the join's contact cluster; otherwise a
	// uniform cluster is drawn from the op's substream.
	Contact    ids.ClusterID
	HasContact bool
	// Victim is the departing node (OpLeave).
	Victim ids.NodeID
	// Target is the shuffled cluster (OpExchange).
	Target ids.ClusterID
}

// OpResult reports one scheduled operation's outcome.
type OpResult struct {
	// Node is the joined node's ID (OpJoin only; assigned even when the
	// join subsequently failed, since IDs are never reused).
	Node ids.NodeID
	// Err is the operation error, if any.
	Err error
	// Deferred reports that the op ran on the serial tail (conflicting
	// footprint or structural side effects) instead of the concurrent
	// phase; DeferReason says why ("footprint conflict", "split
	// required", "merge required", "cluster emptied").
	Deferred    bool
	DeferReason string
}

// moveKind discriminates planned membership mutations.
type moveKind int

const (
	moveInsert moveKind = iota
	moveRemove
	moveTransfer
)

// planMove is one recorded membership mutation, replayed at apply time.
type planMove struct {
	kind     moveKind
	x        ids.NodeID
	byz      bool
	from, to ids.ClusterID
}

// batchPlan is one op's planned execution: footprint, mutations, costs and
// stat deltas, all computed against the pre-batch snapshot. Plans are
// pooled in the world's scheduler scratch and reset per batch, so their
// footprint set, move list and private ledger are reused allocations.
type batchPlan struct {
	op      Op
	idx     int
	newNode ids.NodeID
	hasNode bool

	writes ids.ClusterSet
	moves  []planMove
	stats  Stats
	led    metrics.Ledger

	err      error
	deferred bool
	reason   string
}

// reset prepares a pooled plan for a new op, retaining grown capacity.
func (p *batchPlan) reset(op Op, idx int) {
	p.op = op
	p.idx = idx
	p.newNode = 0
	p.hasNode = false
	if p.writes == nil {
		p.writes = make(ids.ClusterSet)
	} else {
		clear(p.writes)
	}
	p.moves = p.moves[:0]
	p.stats = Stats{}
	p.led.Reset()
	p.err = nil
	p.deferred = false
	p.reason = ""
}

func (p *batchPlan) deferTo(reason string) {
	p.deferred = true
	p.reason = reason
}

// planView is the copy-on-write world the planner executes an op against:
// reads fall through to the live (quiescent) world, writes land in
// op-local cluster copies and are recorded in the plan's write footprint.
// It implements exchange.World, so the real walk and exchange machinery
// runs unmodified over it. A view lives inside one planContext and is
// reset per op: its overlay maps are cleared (not reallocated) and its
// cluster copies recycle through a private free list.
type planView struct {
	w       *World
	p       *batchPlan
	local   map[ids.ClusterID]*clusterState
	byzOv   map[ids.NodeID]bool // allegiance of nodes this plan inserted
	free    []*clusterState     // retired op-local copies, capacity retained
	baseMax int
	viewMax int
}

var _ exchange.World = (*planView)(nil)

// reset points the view at a new plan and recycles the previous op's
// cluster copies. Free-list order is scheduling-dependent but invisible:
// a recycled record's contents are fully overwritten by the next snapshot.
func (v *planView) reset(p *batchPlan) {
	//nowlint:ordered free-list entries are interchangeable scratch records, fully overwritten by snapshotClusterInto before any read, so recycle order never reaches an output
	for _, cs := range v.local {
		cs.members = cs.members[:0]
		cs.byz = 0
		v.free = append(v.free, cs)
	}
	clear(v.local)
	clear(v.byzOv)
	v.p = p
	base := v.w.MaxClusterSize()
	v.baseMax = base
	v.viewMax = base
}

// planContext is one plan worker's reusable machinery: the view plus a
// walker and exchanger bound to it once, instead of per op. The walker
// config's hijack proxy and steer closure read the world's live hooks, so
// a cached context never goes stale when SetHijacker/SetSteer is called.
type planContext struct {
	view   planView
	walker *walk.Walker
	exch   *exchange.Exchanger
}

func newPlanContext(w *World) (*planContext, error) {
	ctx := &planContext{view: planView{
		w:     w,
		local: make(map[ids.ClusterID]*clusterState),
		byzOv: make(map[ids.NodeID]bool),
	}}
	walker, err := walk.NewWalker(w.walkCfg, &ctx.view)
	if err != nil {
		return nil, err
	}
	exch, err := exchange.New(&ctx.view, walker, w.cfg.Generator)
	if err != nil {
		return nil, err
	}
	ctx.walker, ctx.exch = walker, exch
	return ctx, nil
}

// schedScratch is the world's reusable ExecBatch state: plan records,
// per-op substreams, admission bookkeeping and per-worker plan contexts.
// Everything here is sized once and recycled, so steady-state batches
// allocate nothing beyond amortized growth of the world itself.
type schedScratch struct {
	plans    []batchPlan
	rngs     []xrand.Rand
	batchRng xrand.Rand
	tailRng  xrand.Rand
	accW     ids.ClusterSet
	admitted []*batchPlan
	tail     []*batchPlan
	errs     []error
	ctxs     []*planContext

	// hijacked is the per-op hijacked-walk tally handed to hook CommitOp
	// calls, filled in op order from admitted plans' stats and the serial
	// tail's stat deltas. Only maintained when a BatchHook is registered.
	hijacked []int64

	// planFn/applyFn are the worker bodies handed to runIndexed, built once:
	// a fresh closure per batch would escape to the heap and break the
	// zero-allocation steady state. They capture only the world, reading the
	// per-batch state through its sched scratch.
	planFn  func(worker, i int)
	applyFn func(worker, i int)
}

// ensure sizes the per-op scratch for a batch of n ops.
func (s *schedScratch) ensure(n int) {
	if cap(s.plans) < n {
		s.plans = append(s.plans[:cap(s.plans)], make([]batchPlan, n-cap(s.plans))...)
	}
	s.plans = s.plans[:n]
	if cap(s.rngs) < n {
		s.rngs = append(s.rngs[:cap(s.rngs)], make([]xrand.Rand, n-cap(s.rngs))...)
	}
	s.rngs = s.rngs[:n]
	if cap(s.hijacked) < n {
		s.hijacked = append(s.hijacked[:cap(s.hijacked)], make([]int64, n-cap(s.hijacked))...)
	}
	s.hijacked = s.hijacked[:n]
	for i := range s.hijacked {
		s.hijacked[i] = 0
	}
}

// cs returns the cluster record visible to this plan: the op-local copy
// when the plan has written c, the quiescent world's otherwise.
func (v *planView) cs(c ids.ClusterID) (*clusterState, bool) {
	if cs, ok := v.local[c]; ok {
		return cs, true
	}
	s := v.w.shardFor(c)
	s.mu.RLock()
	cs := s.cluster(c)
	s.mu.RUnlock()
	return cs, cs != nil
}

// cow returns an op-local mutable copy of c, recording the write. The
// copy comes from the view's free list when one is available, so a warm
// planner snapshots without allocating.
func (v *planView) cow(c ids.ClusterID) (*clusterState, error) {
	if cs, ok := v.local[c]; ok {
		return cs, nil
	}
	var cs *clusterState
	if n := len(v.free); n > 0 {
		cs, v.free = v.free[n-1], v.free[:n-1]
	} else {
		cs = &clusterState{}
	}
	if !v.w.snapshotClusterInto(c, cs) {
		v.free = append(v.free, cs)
		return nil, fmt.Errorf("core: plan touched unknown cluster %v", c)
	}
	v.p.writes.Add(c)
	v.local[c] = cs
	return cs, nil
}

func (v *planView) byzOf(x ids.NodeID) bool {
	if b, ok := v.byzOv[x]; ok {
		return b
	}
	return v.w.IsByzantine(x)
}

// --- walk.Topology / exchange.World on the view ---

// NumClusters: structural state is frozen for the batch (structural plans
// are deferred), so the live counter is the snapshot value.
func (v *planView) NumClusters() int { return v.w.NumClusters() }

// NumOverlayEdges: the overlay is never written by admitted plans.
func (v *planView) NumOverlayEdges() int { return v.w.NumOverlayEdges() }

// Degree implements walk.Topology (overlay passthrough).
func (v *planView) Degree(c ids.ClusterID) int { return v.w.Degree(c) }

// NeighborAt implements walk.Topology (overlay passthrough).
func (v *planView) NeighborAt(c ids.ClusterID, i int) ids.ClusterID { return v.w.NeighborAt(c, i) }

// Size implements walk.Topology through the op-local overlay.
func (v *planView) Size(c ids.ClusterID) int {
	if cs, ok := v.cs(c); ok {
		return len(cs.members)
	}
	return 0
}

// Byz implements walk.Topology through the op-local overlay.
func (v *planView) Byz(c ids.ClusterID) int {
	if cs, ok := v.cs(c); ok {
		return cs.byz
	}
	return 0
}

// MaxClusterSize returns max(pre-batch maximum, op-local maximum). When
// the op shrinks the unique largest cluster this overestimates by one
// until the exchange's return swap restores it; the acceptance coin of the
// biased walk then rejects marginally more often, which is deterministic
// and statistically negligible (the paper's rejection analysis only needs
// the denominator to bound cluster sizes from above).
func (v *planView) MaxClusterSize() int { return v.viewMax }

// MemberAt implements exchange.World through the op-local overlay.
func (v *planView) MemberAt(c ids.ClusterID, i int) ids.NodeID {
	cs, _ := v.cs(c)
	return cs.members[i]
}

// Members implements exchange.World (snapshot copy).
func (v *planView) Members(c ids.ClusterID) []ids.NodeID {
	cs, ok := v.cs(c)
	if !ok {
		return nil
	}
	out := make([]ids.NodeID, len(cs.members))
	copy(out, cs.members)
	return out
}

// Transfer implements exchange.World: the move lands in op-local copies
// and is recorded for the apply phase.
func (v *planView) Transfer(x ids.NodeID, from, to ids.ClusterID) error {
	src, err := v.cow(from)
	if err != nil {
		return err
	}
	dst, err := v.cow(to)
	if err != nil {
		return err
	}
	byz := v.byzOf(x)
	if err := src.remove(x, byz); err != nil {
		return err
	}
	dst.add(x, byz)
	if len(dst.members) > v.viewMax {
		v.viewMax = len(dst.members)
	}
	v.p.moves = append(v.p.moves, planMove{kind: moveTransfer, x: x, byz: byz, from: from, to: to})
	v.p.stats.Swaps++
	return nil
}

// insert places a brand-new node into c.
func (v *planView) insert(x ids.NodeID, byz bool, c ids.ClusterID) error {
	cs, err := v.cow(c)
	if err != nil {
		return err
	}
	cs.add(x, byz)
	v.byzOv[x] = byz
	if len(cs.members) > v.viewMax {
		v.viewMax = len(cs.members)
	}
	v.p.moves = append(v.p.moves, planMove{kind: moveInsert, x: x, byz: byz, to: c})
	return nil
}

// remove takes x out of c.
func (v *planView) remove(x ids.NodeID, byz bool, c ids.ClusterID) error {
	cs, err := v.cow(c)
	if err != nil {
		return err
	}
	if err := cs.remove(x, byz); err != nil {
		return err
	}
	v.p.moves = append(v.p.moves, planMove{kind: moveRemove, x: x, byz: byz, from: c})
	return nil
}

// --- planning ---

// planOp computes one op's plan against the quiescent world, on the given
// worker's pooled machinery.
func (w *World) planOp(ctx *planContext, p *batchPlan, rng *xrand.Rand) {
	ctx.view.reset(p)
	v := &ctx.view
	switch p.op.Kind {
	case OpJoin:
		w.planJoin(p, v, ctx.walker, ctx.exch, rng)
	case OpLeave:
		w.planLeave(p, v, ctx.exch, rng)
	case OpExchange:
		w.planExchange(p, ctx.exch, rng)
	default:
		p.err = fmt.Errorf("core: unknown op kind %d", int(p.op.Kind))
	}
}

func (w *World) planJoin(p *batchPlan, v *planView, walker *walk.Walker, exch *exchange.Exchanger, rng *xrand.Rand) {
	contact := p.op.Contact
	if !p.op.HasContact {
		var ok bool
		contact, ok = w.RandomCluster(rng)
		if !ok {
			p.err = fmt.Errorf("core: no clusters to contact")
			return
		}
	} else if !w.hasCluster(contact) {
		p.err = fmt.Errorf("core: join contact %v is not a cluster: %w", contact, ErrUnknownCluster)
		return
	}
	out, err := walker.Biased(&p.led, rng, contact)
	if err != nil {
		p.err = fmt.Errorf("core: join walk: %w", err)
		return
	}
	if out.Hijacked {
		p.stats.HijackedWalks++
	}
	target := out.End
	if err := v.insert(p.newNode, p.op.Byz, target); err != nil {
		p.err = err
		return
	}
	chargeInsertion(v, &p.led, target)
	if w.cfg.ExchangeOnJoin {
		rep, err := exch.Run(&p.led, rng, target)
		if err != nil {
			p.err = fmt.Errorf("core: join exchange: %w", err)
			return
		}
		p.stats.HijackedWalks += int64(rep.Hijacked)
	}
	if v.Size(target) > w.cfg.SplitThreshold() {
		p.deferTo("split required")
		return
	}
	p.stats.Joins++
}

func (w *World) planLeave(p *batchPlan, v *planView, exch *exchange.Exchanger, rng *xrand.Rand) {
	info, ok := w.nodeInfoOf(p.op.Victim)
	if !ok {
		p.err = fmt.Errorf("core: leave of node %v: %w", p.op.Victim, ErrUnknownNode)
		return
	}
	c := info.cluster
	chargeDeparture(v, &p.led, c)

	if err := v.remove(p.op.Victim, info.byz, c); err != nil {
		p.err = err
		return
	}
	if v.Size(c) == 0 {
		p.deferTo("cluster emptied")
		return
	}
	if w.cfg.ExchangeOnLeave {
		rep, err := exch.Run(&p.led, rng, c)
		if err != nil {
			p.err = fmt.Errorf("core: leave exchange: %w", err)
			return
		}
		p.stats.HijackedWalks += int64(rep.Hijacked)
		if w.cfg.LeaveCascade {
			// The cascade plan (shared with the classic path via
			// runLeaveCascade): receivers are enumerated from the
			// pre-batch snapshot and every draw comes from this op's
			// substream. Cascade writes land in the plan's footprint like
			// any other transfer and are applied under the shard locks in
			// op order — and under GroupedCascade the round swaps WITHIN
			// the clusters the primary exchange already wrote, so the
			// leave's write footprint stays ~|C| clusters instead of the
			// ~|C|^2 the per-receiver cascade accumulates. That footprint
			// drop is what lets full-density leave batches pass admission
			// (see BenchmarkShardedWorldBatch's cascade regime).
			hijacked, err := runLeaveCascade(w.cfg.GroupedCascade, exch, v, &p.led, rng, c, rep.Receivers)
			if err != nil {
				p.err = err
				return
			}
			p.stats.HijackedWalks += hijacked
		}
	}
	if v.Size(c) < w.cfg.MergeThreshold() {
		p.deferTo("merge required")
		return
	}
	p.stats.Leaves++
}

func (w *World) planExchange(p *batchPlan, exch *exchange.Exchanger, rng *xrand.Rand) {
	if !w.hasCluster(p.op.Target) {
		p.err = fmt.Errorf("core: exchange on cluster %v: %w", p.op.Target, ErrUnknownCluster)
		return
	}
	rep, err := exch.Run(&p.led, rng, p.op.Target)
	if err != nil {
		p.err = err
		return
	}
	p.stats.HijackedWalks += int64(rep.Hijacked)
}

// --- admission + apply ---

// setsIntersect reports whether the two cluster sets share an element.
func setsIntersect(a, b ids.ClusterSet) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for c := range a {
		if b.Has(c) {
			return true
		}
	}
	return false
}

func unionInto(dst, src ids.ClusterSet) {
	for c := range src {
		dst.Add(c)
	}
}

// conflicts reports whether p's write footprint overlaps the accumulated
// admitted write footprint. Read-only visits (walk transits, cost reads)
// deliberately do not conflict: every plan reads the same pre-batch
// snapshot, per the round-concurrency semantics.
func conflicts(p *batchPlan, accW ids.ClusterSet) bool {
	return setsIntersect(p.writes, accW)
}

// applyPlan replays an admitted plan's membership moves under the shard
// locks. Node records are updated here too (each node is moved by at most
// one admitted plan); the flat sampling indexes are op-order-sensitive and
// handled by the serial post-pass.
func (w *World) applyPlan(p *batchPlan) error {
	for _, m := range p.moves {
		switch m.kind {
		case moveInsert:
			if err := w.insertMember(m.to, m.x, m.byz); err != nil {
				return err
			}
			w.setNodeInfo(m.x, nodeInfo{cluster: m.to, byz: m.byz})
		case moveRemove:
			if err := w.removeMember(m.from, m.x, m.byz); err != nil {
				return err
			}
			w.deleteNodeInfo(m.x)
		case moveTransfer:
			if err := w.applyTransfer(m.x, m.from, m.to, m.byz); err != nil {
				return err
			}
		}
	}
	return nil
}

// schedWorkers picks the apply/plan concurrency: bounded by the batch
// size, the shard count (a serial-layout world runs serially) and the
// machine. The result never affects outcomes, only wall-clock.
func (w *World) schedWorkers(n int) int {
	if s := len(w.shards); s < n {
		n = s
	}
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runIndexed fans fn(worker, 0..n-1) across the given number of workers
// via an atomic claim counter, or runs inline (worker 0) when workers <= 1.
// fn must be safe for concurrent invocation on distinct indexes; the worker
// id lets callers hand each goroutine its own pooled machinery.
func runIndexed(workers, n int, fn func(worker, i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// ExecBatch executes a batch of operations — one paper time step with
// multiple simultaneous arrivals/departures — through the op scheduler.
// Results are positionally aligned with ops. The outcome is deterministic
// in the world seed and the batch contents, independent of the shard count
// and of GOMAXPROCS; see the package comment at the top of this file for
// the phase structure and the exact divergence from the classic
// one-op-per-call API.
//
// ExecBatch must not run concurrently with any other World method; it
// manages its own internal concurrency.
func (w *World) ExecBatch(ops []Op) []OpResult {
	return w.ExecBatchInto(nil, ops)
}

// ExecBatchInto is ExecBatch writing its results into a caller-owned
// slice (grown only when too small), so steady-state batch loops reuse
// one result buffer and the whole plan/apply path runs without per-batch
// garbage. The returned slice is res (or its replacement), resized to
// len(ops).
func (w *World) ExecBatchInto(res []OpResult, ops []Op) []OpResult {
	if cap(res) < len(ops) {
		res = make([]OpResult, len(ops))
	}
	res = res[:len(ops)]
	if len(ops) == 0 {
		return res
	}
	if !w.bootstrapped {
		err := fmt.Errorf("core: batch before bootstrap")
		for i := range res {
			res[i] = OpResult{Err: err}
		}
		return res
	}

	// Serial hook refresh: installed batch-lifecycle hooks fix their
	// snapshot-scoped decision state against the quiescent pre-batch world
	// before any plan worker can consult them (hooks.go).
	hooks, nHooks := w.hookLifecycles()
	for i := 0; i < nHooks; i++ {
		hooks[i].BeginBatch()
	}

	// Per-op substreams and (for joins) node IDs, derived in op order from
	// pooled plan records and in-place-reseeded substreams.
	s := &w.sched
	s.ensure(len(ops))
	w.rng.SplitInto(&s.batchRng, 0xBA7C4)
	for i := range ops {
		p := &s.plans[i]
		p.reset(ops[i], i)
		if ops[i].Kind == OpJoin {
			p.newNode = w.nodeAlloc.NextNode()
			p.hasNode = true
		}
		s.batchRng.SplitInto(&s.rngs[i], uint64(i))
	}

	// Phase 1: plan, possibly on workers. Plans are independent: each
	// reads the quiescent world, draws its own substream, charges its own
	// ledger; each worker plans on its own pooled machinery (view, walker,
	// exchanger). Adversary hooks are consulted concurrently here — pure
	// reads under the hook contract, so hooked worlds plan at full
	// parallelism.
	workers := w.schedWorkers(len(ops))
	for len(s.ctxs) < workers {
		ctx, err := newPlanContext(w)
		if err != nil {
			// Unreachable with a NewWorld-validated config; fail the batch
			// loudly rather than planning with missing machinery.
			for i := range res {
				res[i] = OpResult{Node: s.plans[i].newNode, Err: err}
			}
			return res
		}
		s.ctxs = append(s.ctxs, ctx)
	}
	if s.planFn == nil {
		s.planFn = func(worker, i int) {
			w.planOp(w.sched.ctxs[worker], &w.sched.plans[i], &w.sched.rngs[i])
		}
	}
	runIndexed(workers, len(ops), s.planFn)

	// Phase 2: admit in op order, then apply admitted plans concurrently.
	if s.accW == nil {
		s.accW = make(ids.ClusterSet)
	} else {
		clear(s.accW)
	}
	s.admitted = s.admitted[:0]
	s.tail = s.tail[:0]
	for i := range s.plans {
		p := &s.plans[i]
		switch {
		case p.err != nil:
			res[p.idx] = OpResult{Node: p.newNode, Err: p.err}
		case p.deferred || conflicts(p, s.accW):
			if !p.deferred {
				p.deferTo("footprint conflict")
			}
			s.tail = append(s.tail, p)
		default:
			s.admitted = append(s.admitted, p)
			unionInto(s.accW, p.writes)
		}
	}
	if cap(s.errs) < len(s.admitted) {
		s.errs = make([]error, len(s.admitted))
	}
	s.errs = s.errs[:len(s.admitted)]
	for i := range s.errs {
		s.errs[i] = nil
	}
	if s.applyFn == nil {
		s.applyFn = func(_, i int) {
			w.sched.errs[i] = w.applyPlan(w.sched.admitted[i])
		}
	}
	admitted := s.admitted
	applyErrs := s.errs
	runIndexed(w.schedWorkers(len(admitted)), len(admitted), s.applyFn)

	// Op-ordered post-pass: sampling indexes, ledgers, stats, results.
	for i, p := range admitted {
		if applyErrs[i] != nil {
			// Admission guarantees this cannot happen; surface loudly if a
			// footprint bug ever breaks the guarantee (the invariant suite
			// would then fail consistency too).
			res[p.idx] = OpResult{Node: p.newNode, Err: applyErrs[i]}
			continue
		}
		for _, m := range p.moves {
			switch m.kind {
			case moveInsert:
				w.sampleAdd(m.x, m.byz)
			case moveRemove:
				w.sampleRemove(m.x, m.byz)
			}
		}
		w.led.Merge(&p.led)
		w.stats.accumulate(p.stats)
		if nHooks > 0 {
			s.hijacked[p.idx] = p.stats.HijackedWalks
		}
		res[p.idx] = OpResult{Node: p.newNode}
	}

	// Phase 3: serial tail, in op order, against live state, on fresh
	// substreams (the planning draws were consumed identically in every
	// mode, so a derived stream keeps the tail deterministic too).
	for _, p := range s.tail {
		s.rngs[p.idx].SplitInto(&s.tailRng, 0x7A11)
		tailRng := &s.tailRng
		hijackedBefore := w.stats.HijackedWalks
		var err error
		switch p.op.Kind {
		case OpJoin:
			contact := p.op.Contact
			if !p.op.HasContact {
				var ok bool
				contact, ok = w.RandomCluster(tailRng)
				if !ok {
					err = fmt.Errorf("core: no clusters to contact")
				}
			}
			if err == nil {
				err = w.joinExisting(w.led, tailRng, p.newNode, p.op.Byz, contact, false)
			}
		case OpLeave:
			err = w.leaveWith(w.led, tailRng, p.op.Victim, false)
		case OpExchange:
			err = w.forceExchangeWith(w.led, tailRng, p.op.Target, false)
		}
		if nHooks > 0 {
			s.hijacked[p.idx] = w.stats.HijackedWalks - hijackedBefore
		}
		res[p.idx] = OpResult{Node: p.newNode, Err: err, Deferred: true, DeferReason: p.reason}
	}

	// Hook commit fold: once per op, in op order across admitted and tail
	// alike, after every effect of the batch is in place — the serial step
	// where hook bookkeeping (ratchet counters, budget spend) lands, next
	// to the scheduler's own order-sensitive folds above.
	if nHooks > 0 {
		for i := range res {
			for h := 0; h < nHooks; h++ {
				hooks[h].CommitOp(i, res[i].Err == nil, s.hijacked[i])
			}
		}
	}

	// One settle per batch: the batch is one paper time step.
	w.settleSecurity()
	return res
}
