package core

import (
	"fmt"

	"nowover/internal/ids"
)

// CheckInvariants asserts the global consistency properties the paper's
// maintenance operations promise to preserve, on top of the bookkeeping
// cross-checks of CheckConsistency:
//
//   - every node is a member of exactly one cluster, and the membership
//     union equals the node index (no phantom, duplicated or orphaned
//     nodes);
//   - every cluster's Byzantine counter, security class and the per-shard
//     size multisets equal a recount (via CheckConsistency), and the
//     tracked max cluster size equals the true maximum;
//   - no cluster is empty, none exceeds the split threshold, and — when
//     more than one cluster exists, so merging was possible — none sits
//     below the merge threshold;
//   - the overlay vertex set and the cluster set are identical.
//
// It is the reusable oracle for the randomized-op, fuzz and scheduler
// test layers, valid in both the serial and sharded execution modes: the
// op scheduler defers every structural operation to its serial tail, so
// these invariants must hold at every batch boundary exactly as they do
// after every classic operation.
func CheckInvariants(w *World) error {
	if err := w.CheckConsistency(); err != nil {
		return err
	}

	// Membership union == node index, each node in exactly one cluster.
	// The walk also recomputes the true maximum cluster size so the
	// tracked max (worldShard.maxSize, maintained by noteSizeChange's
	// size-multiset scan-down) is checked against ground truth on every
	// oracle call — the regression oracle for the stale-max recompute.
	seen := make(ids.NodeSet, w.NumNodes())
	lo, hi := w.cfg.MergeThreshold(), w.cfg.SplitThreshold()
	clusters := ids.NewClusterSet()
	trueMax := 0
	for _, s := range w.shards {
		s.mu.RLock()
		// Ascending slot walk = ascending ClusterID within the shard:
		// which violated invariant gets reported is part of the oracle's
		// observable output, so the scan order must come from the cluster
		// IDs, not any map hash seed.
		for slot, cs := range s.clusters {
			if cs == nil {
				continue
			}
			c := s.idAt(slot)
			clusters.Add(c)
			size := len(cs.members)
			if size > trueMax {
				trueMax = size
			}
			if size == 0 {
				s.mu.RUnlock()
				return fmt.Errorf("invariant: cluster %v is empty", c)
			}
			if size > hi {
				s.mu.RUnlock()
				return fmt.Errorf("invariant: cluster %v size %d above split threshold %d", c, size, hi)
			}
			if w.nClusters > 1 && size < lo {
				s.mu.RUnlock()
				return fmt.Errorf("invariant: cluster %v size %d below merge threshold %d", c, size, lo)
			}
			for _, x := range cs.members {
				if !seen.Add(x) {
					s.mu.RUnlock()
					return fmt.Errorf("invariant: node %v is a member of two clusters", x)
				}
			}
		}
		s.mu.RUnlock()
	}
	if seen.Len() != w.NumNodes() {
		return fmt.Errorf("invariant: %d member nodes vs %d indexed nodes", seen.Len(), w.NumNodes())
	}
	if got := w.MaxClusterSize(); got != trueMax {
		return fmt.Errorf("invariant: tracked max cluster size %d, true max %d", got, trueMax)
	}

	// Overlay vertices == cluster set.
	vs := w.overlay.Vertices()
	if len(vs) != clusters.Len() {
		return fmt.Errorf("invariant: overlay has %d vertices vs %d clusters", len(vs), clusters.Len())
	}
	for _, c := range vs {
		if !clusters.Has(c) {
			return fmt.Errorf("invariant: overlay vertex %v is not a cluster", c)
		}
	}
	return nil
}
