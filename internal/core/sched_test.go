package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"nowover/internal/ids"
	"nowover/internal/xrand"
)

// newTestWorld builds a bootstrapped world for scheduler tests: N=512 name
// space, 200 initial nodes, 20% Byzantine.
func newTestWorld(t testing.TB, shards int, seed uint64) *World {
	t.Helper()
	cfg := DefaultConfig(512)
	cfg.Seed = seed
	cfg.Shards = shards
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(200, func(slot int) bool { return slot%5 == 0 }); err != nil {
		t.Fatal(err)
	}
	return w
}

// worldFingerprint renders the complete observable protocol state — sorted
// membership with allegiances, the sampling-index order (which seeds all
// future RandomNode draws), stats, security counters and ledger totals —
// so two worlds can be compared for exact equality.
func worldFingerprint(w *World) string {
	var b strings.Builder
	cs := append([]ids.ClusterID(nil), w.Clusters()...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	for _, c := range cs {
		ms := w.Members(c)
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		fmt.Fprintf(&b, "%v[%d byz=%d]:", c, len(ms), w.Byz(c))
		for _, x := range ms {
			fmt.Fprintf(&b, " %v", x)
			if w.IsByzantine(x) {
				b.WriteString("*")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "order:%v\n", w.allNodes)
	fmt.Fprintf(&b, "stats:%+v\n", w.Stats())
	deg, cap := w.CurrentInsecure()
	fmt.Fprintf(&b, "insecure:%d/%d max=%d n=%d\n", deg, cap, w.MaxClusterSize(), w.NumNodes())
	fmt.Fprintf(&b, "cost:%d/%d\n", w.Ledger().Messages(), w.Ledger().Rounds())
	return b.String()
}

// randomBatch builds a mixed batch of ops against w's current population:
// joins (some Byzantine), leaves with distinct victims, and forced
// exchanges. Deterministic in r.
func randomBatch(w *World, r *xrand.Rand, size int) []Op {
	ops := make([]Op, 0, size)
	used := make(ids.NodeSet)
	for len(ops) < size {
		switch r.Intn(4) {
		case 0, 1:
			ops = append(ops, Op{Kind: OpJoin, Byz: r.Bool(0.2)})
		case 2:
			x, ok := w.RandomNode(r)
			if !ok || !used.Add(x) {
				continue
			}
			ops = append(ops, Op{Kind: OpLeave, Victim: x})
		case 3:
			c, ok := w.RandomCluster(r)
			if !ok {
				continue
			}
			ops = append(ops, Op{Kind: OpExchange, Target: c})
		}
	}
	return ops
}

func TestExecBatchBeforeBootstrap(t *testing.T) {
	cfg := DefaultConfig(512)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.ExecBatch([]Op{{Kind: OpJoin}})
	if res[0].Err == nil {
		t.Fatal("batch before bootstrap accepted")
	}
}

func TestExecBatchJoinsLeavesExchanges(t *testing.T) {
	w := newTestWorld(t, 4, 11)
	n0 := w.NumNodes()
	r := xrand.New(99)
	x1, _ := w.RandomNode(r)
	x2, _ := w.RandomNode(r)
	for x2 == x1 {
		x2, _ = w.RandomNode(r)
	}
	c, _ := w.RandomCluster(r)
	res := w.ExecBatch([]Op{
		{Kind: OpJoin, Byz: false},
		{Kind: OpJoin, Byz: true},
		{Kind: OpLeave, Victim: x1},
		{Kind: OpLeave, Victim: x2},
		{Kind: OpExchange, Target: c},
	})
	for i, rr := range res {
		if rr.Err != nil {
			t.Fatalf("op %d failed: %v", i, rr.Err)
		}
	}
	if res[0].Node == res[1].Node {
		t.Fatal("two joins received the same node ID")
	}
	if !w.Contains(res[0].Node) || !w.Contains(res[1].Node) {
		t.Fatal("joined nodes missing from the world")
	}
	if !w.IsByzantine(res[1].Node) || w.IsByzantine(res[0].Node) {
		t.Fatal("joiner allegiance lost in batch execution")
	}
	if w.Contains(x1) || w.Contains(x2) {
		t.Fatal("leave victims still present")
	}
	if got := w.NumNodes(); got != n0 {
		t.Fatalf("population %d after +2/-2 batch, want %d", got, n0)
	}
	st := w.Stats()
	if st.Joins != 2 || st.Leaves != 2 {
		t.Fatalf("stats joins=%d leaves=%d, want 2/2", st.Joins, st.Leaves)
	}
	if err := CheckInvariants(w); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMatchesSerial is the determinism regression for the op
// scheduler: a serial-layout world (Shards=1) and a sharded world
// (Shards=8) with identical seeds, fed identical batches, must produce
// IDENTICAL results — same Stats, same security counters, same membership,
// same sampling-index order, same ledger totals — after every batch, on
// any GOMAXPROCS. This holds for ALL batches, conflicting or not, because
// planning runs against the pre-batch snapshot on per-op substreams,
// admission is decided in op order from deterministic footprints, and
// conflicting or structural ops re-run on a deterministic serial tail.
//
// Where divergence IS allowed: ExecBatch is NOT required to match the
// classic one-op-per-call API (Join/Leave), which threads a single shared
// RNG stream through every operation and settles security after each op.
// A batch is one paper time step with simultaneous arrivals/departures:
// per-op substreams replace the shared stream and security settles once
// per batch. The paper's guarantees are distributional — randCl placement,
// exchange uniformity and the resulting per-cluster Byzantine
// concentration bounds are unaffected by which fixed seed derivation is
// used, and the adversary's information is step-boundary state in both
// semantics.
func TestShardedMatchesSerial(t *testing.T) {
	serial := newTestWorld(t, 1, 42)
	sharded := newTestWorld(t, 8, 42)
	if fp1, fp8 := worldFingerprint(serial), worldFingerprint(sharded); fp1 != fp8 {
		t.Fatalf("bootstrap fingerprints differ:\n%s\nvs\n%s", fp1, fp8)
	}
	rs := xrand.New(7)
	r8 := xrand.New(7)
	batches := 25
	if testing.Short() {
		batches = 8
	}
	for i := 0; i < batches; i++ {
		b1 := randomBatch(serial, rs, 8)
		b8 := randomBatch(sharded, r8, 8)
		res1 := serial.ExecBatch(b1)
		res8 := sharded.ExecBatch(b8)
		for j := range res1 {
			e1, e8 := fmt.Sprint(res1[j].Err), fmt.Sprint(res8[j].Err)
			if res1[j].Node != res8[j].Node || e1 != e8 || res1[j].Deferred != res8[j].Deferred {
				t.Fatalf("batch %d op %d diverged: serial=%+v sharded=%+v", i, j, res1[j], res8[j])
			}
		}
		if fp1, fp8 := worldFingerprint(serial), worldFingerprint(sharded); fp1 != fp8 {
			t.Fatalf("state diverged after batch %d:\n--- serial ---\n%s\n--- sharded ---\n%s", i, fp1, fp8)
		}
		if err := CheckInvariants(serial); err != nil {
			t.Fatalf("serial invariants after batch %d: %v", i, err)
		}
		if err := CheckInvariants(sharded); err != nil {
			t.Fatalf("sharded invariants after batch %d: %v", i, err)
		}
	}
	if serial.Stats() != sharded.Stats() {
		t.Fatalf("final stats diverged:\n%+v\nvs\n%+v", serial.Stats(), sharded.Stats())
	}
}

// TestBatchRepeatableAcrossRuns: re-running the same scenario yields the
// same fingerprint (guards against map-iteration order leaking into batch
// results).
func TestBatchRepeatableAcrossRuns(t *testing.T) {
	run := func() string {
		w := newTestWorld(t, 8, 1234)
		r := xrand.New(5)
		for i := 0; i < 10; i++ {
			w.ExecBatch(randomBatch(w, r, 6))
		}
		return worldFingerprint(w)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("repeat runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestBatchConflictingLeavesDefer: two departures from the same cluster
// have overlapping footprints; exactly the later one must fall to the
// serial tail, and both must still succeed.
func TestBatchConflictingLeavesDefer(t *testing.T) {
	w := newTestWorld(t, 8, 77)
	var c ids.ClusterID
	for _, cand := range w.Clusters() {
		if w.Size(cand) >= w.cfg.MergeThreshold()+2 {
			c = cand
			break
		}
	}
	ms := w.Members(c)
	res := w.ExecBatch([]Op{
		{Kind: OpLeave, Victim: ms[0]},
		{Kind: OpLeave, Victim: ms[1]},
	})
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("conflicting leaves failed: %v / %v", res[0].Err, res[1].Err)
	}
	if !res[1].Deferred {
		t.Fatal("second leave from the same cluster was not deferred")
	}
	if res[1].DeferReason != "footprint conflict" {
		t.Fatalf("defer reason %q, want footprint conflict", res[1].DeferReason)
	}
	if w.Contains(ms[0]) || w.Contains(ms[1]) {
		t.Fatal("victims still present after batch")
	}
	if err := CheckInvariants(w); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDuplicateVictimErrors: the same victim twice in one batch is a
// conflict; the deferred duplicate must fail with ErrUnknownNode (the node
// is already gone), deterministically.
func TestBatchDuplicateVictimErrors(t *testing.T) {
	w := newTestWorld(t, 8, 3)
	x, _ := w.RandomNode(xrand.New(1))
	res := w.ExecBatch([]Op{
		{Kind: OpLeave, Victim: x},
		{Kind: OpLeave, Victim: x},
	})
	if res[0].Err != nil {
		t.Fatalf("first leave failed: %v", res[0].Err)
	}
	if !IsUnknownNode(res[1].Err) {
		t.Fatalf("duplicate leave error = %v, want ErrUnknownNode", res[1].Err)
	}
	if err := CheckInvariants(w); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSplitRunsOnTail: force a join that must split by shrinking the
// world to few clusters and stuffing one near the threshold via direct
// joins, then confirm the batch defers it and the split actually happens.
func TestBatchSplitRunsOnTail(t *testing.T) {
	w := newTestWorld(t, 4, 9)
	r := xrand.New(2)
	splitBatchHadDeferral := false
	for i := 0; i < 80 && w.Stats().Splits == 0; i++ {
		ops := make([]Op, 6)
		for j := range ops {
			ops[j] = Op{Kind: OpJoin, Byz: r.Bool(0.1)}
		}
		before := w.Stats().Splits
		res := w.ExecBatch(ops)
		deferred := false
		for j, rr := range res {
			if rr.Err != nil {
				t.Fatalf("join %d/%d failed: %v", i, j, rr.Err)
			}
			deferred = deferred || rr.Deferred
		}
		if w.Stats().Splits > before && !deferred {
			t.Fatal("a split happened in a batch with no deferred op: structural work escaped the tail")
		}
		if w.Stats().Splits > before {
			splitBatchHadDeferral = true
		}
		if err := CheckInvariants(w); err != nil {
			t.Fatalf("invariants after batch %d: %v", i, err)
		}
	}
	if w.Stats().Splits == 0 {
		t.Fatal("growth produced no splits")
	}
	if !splitBatchHadDeferral {
		t.Fatal("split batch was not observed")
	}
}

// TestClassicAndBatchedInterleave: mixing the classic API and ExecBatch on
// one world stays deterministic and invariant-preserving.
func TestClassicAndBatchedInterleave(t *testing.T) {
	run := func() string {
		w := newTestWorld(t, 8, 21)
		r := xrand.New(4)
		for i := 0; i < 6; i++ {
			if _, err := w.JoinAuto(false); err != nil {
				t.Fatal(err)
			}
			w.ExecBatch(randomBatch(w, r, 5))
			x, ok := w.RandomNode(r)
			if ok {
				if err := w.Leave(x); err != nil && !IsUnknownNode(err) {
					t.Fatal(err)
				}
			}
			if err := CheckInvariants(w); err != nil {
				t.Fatal(err)
			}
		}
		return worldFingerprint(w)
	}
	if a, b := run(), run(); a != b {
		t.Fatal("interleaved classic+batched execution is not deterministic")
	}
}
