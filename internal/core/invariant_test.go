package core

import (
	"testing"

	"nowover/internal/xrand"
)

// requireInvariants is the test-layer wrapper around the reusable
// CheckInvariants oracle.
func requireInvariants(t testing.TB, w *World) {
	t.Helper()
	if err := CheckInvariants(w); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsHoldAtBootstrap(t *testing.T) {
	for _, shards := range []int{1, 8} {
		w := newTestWorld(t, shards, 5)
		requireInvariants(t, w)
	}
}

// TestInvariantsAfterRandomOps drives randomized operation sequences —
// batched through the op scheduler plus interleaved classic ops — and
// asserts CheckInvariants after every step, in both the serial (Shards=1)
// and sharded (Shards=8) execution modes. This is the reusable
// invariant-layer entry point the ISSUE asks for: any future maintenance
// change that can corrupt membership, Byzantine counts, size bounds or the
// overlay/partition correspondence fails here first.
func TestInvariantsAfterRandomOps(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, shards := range []int{1, 8} {
		for _, seed := range seeds {
			w := newTestWorld(t, shards, seed)
			r := xrand.New(seed ^ 0xBEEF)
			for step := 0; step < 12; step++ {
				switch r.Intn(3) {
				case 0:
					w.ExecBatch(randomBatch(w, r, 1+r.Intn(8)))
				case 1:
					if _, err := w.JoinAuto(r.Bool(0.2)); err != nil {
						t.Fatalf("shards=%d seed=%d: %v", shards, seed, err)
					}
				case 2:
					if x, ok := w.RandomNode(r); ok {
						if err := w.Leave(x); err != nil {
							t.Fatalf("shards=%d seed=%d: %v", shards, seed, err)
						}
					}
				}
				if err := CheckInvariants(w); err != nil {
					t.Fatalf("shards=%d seed=%d step=%d: %v", shards, seed, step, err)
				}
			}
		}
	}
}

// TestInvariantsWithRejoinMerge exercises the MergeRejoinAll strategy
// (pending-rejoin queue) under batches: merges run on the scheduler's
// serial tail and displace nodes that must be re-joined via the classic
// path without breaking any index.
func TestInvariantsWithRejoinMerge(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 17
	cfg.Shards = 8
	cfg.MergeStrategy = MergeRejoinAll
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bootstrap(200, func(slot int) bool { return slot%6 == 0 }); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(31)
	for step := 0; step < 25; step++ {
		// Drain displaced nodes first, like the simulator does.
		for _, x := range w.PendingRejoins() {
			if err := w.Rejoin(x); err != nil {
				t.Fatal(err)
			}
		}
		ops := make([]Op, 0, 4)
		for len(ops) < 4 {
			x, ok := w.RandomNode(r)
			if !ok {
				break
			}
			ops = append(ops, Op{Kind: OpLeave, Victim: x})
		}
		for _, rr := range w.ExecBatch(ops) {
			if rr.Err != nil && !IsUnknownNode(rr.Err) {
				t.Fatal(rr.Err)
			}
		}
		requireInvariants(t, w)
		if w.NumNodes() < 3*w.cfg.TargetClusterSize() {
			break // shrunk far enough to have exercised merges
		}
	}
	if w.Stats().Merges == 0 {
		t.Fatal("shrink run produced no merges")
	}
}

// TestCheckInvariantsDetectsBreakage corrupts the bookkeeping directly and
// confirms the oracle notices — an oracle that cannot fail is worthless.
func TestCheckInvariantsDetectsBreakage(t *testing.T) {
	w := newTestWorld(t, 4, 23)
	// Silently drop one member from a cluster's list without touching any
	// derived index (size multiset, node records, security class):
	// consistency must flag the mismatch.
	for _, s := range w.shards {
		for _, cs := range s.clusters {
			if cs == nil {
				continue
			}
			cs.members = cs.members[:len(cs.members)-1]
			if err := CheckInvariants(w); err == nil {
				t.Fatal("invariant oracle missed a vanished member")
			}
			return
		}
	}
}
