package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	matches := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split streams collided %d times", matches)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() uint64 { return New(9).Split(5).Uint64() }
	if mk() != mk() {
		t.Fatal("Split is not deterministic")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	for _, rate := range []float64{0.5, 1, 4} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			x := r.Exp(rate)
			if x < 0 {
				t.Fatalf("Exp(%v) returned negative %v", rate, x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-1/rate) > 0.05/rate {
			t.Errorf("Exp(%v) mean %.4f, want ~%.4f", rate, mean, 1/rate)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(13)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[PickWeighted(r, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight-3/weight-1 ratio %.2f, want ~3", ratio)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%100 + 1
		m := int(mRaw) % (n + 1)
		s := SampleWithoutReplacement(New(seed), n, m)
		if len(s) != m {
			return false
		}
		seen := make(map[int]bool, m)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementCoverage(t *testing.T) {
	// Every index should be reachable, including index 0 and n-1.
	r := New(17)
	hit := make(map[int]bool)
	for i := 0; i < 500; i++ {
		for _, v := range SampleWithoutReplacement(r, 5, 3) {
			hit[v] = true
		}
	}
	for i := 0; i < 5; i++ {
		if !hit[i] {
			t.Errorf("index %d never sampled", i)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(23)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick reached %d of 3 elements", len(seen))
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const draws = 50000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency %.4f", frac)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, 3, 7)
	b := Derive(42, 3, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams with equal labels diverged at draw %d", i)
		}
	}
}

func TestDeriveLabelSeparation(t *testing.T) {
	// Distinct label tuples — including permutations of the same labels, the
	// directed-link case — must give distinct streams.
	streams := []*Rand{
		Derive(42),
		Derive(42, 3),
		Derive(42, 7),
		Derive(42, 3, 7),
		Derive(42, 7, 3),
		Derive(43, 3, 7),
	}
	firsts := make(map[uint64]int)
	for i, s := range streams {
		v := s.Uint64()
		if j, dup := firsts[v]; dup {
			t.Errorf("streams %d and %d collide on first draw", i, j)
		}
		firsts[v] = i
	}
}

func TestDerivePure(t *testing.T) {
	// Derive is a pure function of (base, labels): unlike Split it consumes
	// no parent state, so creation order must not matter.
	a := Derive(42, 5, 6)
	_ = Derive(42, 9, 9).Uint64() // interleaved derivation
	b := Derive(42, 5, 6)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derivation order changed the stream at draw %d", i)
		}
	}
}
