// Package xrand provides the deterministic randomness substrate used by
// every stochastic component of the simulator.
//
// All protocol randomness flows through a *Rand so that simulation runs are
// reproducible from a single seed. Streams can be split hierarchically
// (Split) so that independent subsystems consume independent substreams and
// adding randomness consumption to one subsystem does not perturb another.
package xrand

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic, splittable pseudo-random stream.
//
// It is NOT safe for concurrent use; give each goroutine its own stream via
// Split.
type Rand struct {
	src *rand.Rand
	// pcg is retained so SplitInto can reseed this stream in place; streams
	// built by Split keep it nil (they are never reseed targets).
	pcg *rand.PCG
}

// New returns a stream seeded from seed.
func New(seed uint64) *Rand {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Rand{src: rand.New(pcg), pcg: pcg}
}

// Split derives an independent substream. The derivation mixes a label so
// that distinct labels yield decorrelated streams.
func (r *Rand) Split(label uint64) *Rand {
	a := r.src.Uint64()
	b := r.src.Uint64()
	return &Rand{src: rand.New(rand.NewPCG(mix(a, label), mix(b, ^label)))}
}

// Derive returns a stream that is a pure function of base and the labels:
// unlike Split it consumes no state from any parent stream, so callers may
// derive substreams lazily and in any order without perturbing each other.
// The loopback transport keys one fault stream per directed link this way
// ((from, to) labels), making drop and jitter draws independent of the
// order links first carry traffic.
func Derive(base uint64, labels ...uint64) *Rand {
	a := mix(base, 0x6e6f776e65740001)
	b := mix(^base, 0x6e6f776e65740002)
	for _, l := range labels {
		a = mix(a, l)
		b = mix(b, ^l)
	}
	return &Rand{src: rand.New(rand.NewPCG(a, b))}
}

// SplitInto reseeds dst in place to the exact substream Split(label) would
// have returned, consuming the same two state words from r. A zero-value
// dst is initialized on first use; afterwards reseeding allocates nothing,
// which is what lets the op scheduler derive per-op substreams without
// per-op garbage. dst must not be a stream whose generator is shared (i.e.
// only zero values and previous SplitInto targets are valid destinations).
func (r *Rand) SplitInto(dst *Rand, label uint64) {
	a := r.src.Uint64()
	b := r.src.Uint64()
	if dst.pcg == nil {
		dst.pcg = rand.NewPCG(mix(a, label), mix(b, ^label))
		dst.src = rand.New(dst.pcg)
		return
	}
	dst.pcg.Seed(mix(a, label), mix(b, ^label))
}

// mix is a SplitMix64-style finalizer combining a state word with a label.
func mix(x, label uint64) uint64 {
	x += 0x9e3779b97f4a7c15 + label
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at protocol boundaries.
func (r *Rand) Intn(n int) int { return r.src.IntN(n) }

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return r.src.Int64() }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: non-positive exponential rate")
	}
	// Inverse CDF on (0,1]; 1-Float64() avoids log(0).
	return -math.Log(1-r.src.Float64()) / rate
}

// Perm returns a uniform permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes the first n elements using swap, Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Pick returns a uniform element of xs. It panics on an empty slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// PickWeighted returns an index i with probability weights[i]/sum(weights).
// Weights must be non-negative with a positive sum.
func PickWeighted(r *Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("xrand: non-positive weight total")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns m distinct uniform indices from [0, n).
// It panics if m > n.
func SampleWithoutReplacement(r *Rand, n, m int) []int {
	if m > n {
		panic("xrand: sample larger than population")
	}
	// Floyd's algorithm: O(m) expected work, no O(n) allocation.
	chosen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for j := n - m; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
