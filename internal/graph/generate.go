package graph

import (
	"fmt"

	"nowover/internal/xrand"
)

// ErdosRenyi adds to g every edge among the given vertices independently
// with probability p — the G(n, p) model the paper draws the initial
// overlay from (p = log^{1+alpha} N / sqrt(N)). Vertices must already be
// present. Existing edges are preserved.
func ErdosRenyi[V comparable](g *Graph[V], r *xrand.Rand, vertices []V, p float64) error {
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			if !r.Bool(p) {
				continue
			}
			if g.HasEdge(vertices[i], vertices[j]) {
				continue
			}
			if err := g.AddEdge(vertices[i], vertices[j]); err != nil {
				return fmt.Errorf("erdos-renyi: %w", err)
			}
		}
	}
	return nil
}

// RandomRegularish wires each vertex to approximately d distinct random
// peers (a configuration-model-style construction used as a baseline
// expander in tests). The resulting degrees lie in [d, 2d] w.h.p.
func RandomRegularish[V comparable](g *Graph[V], r *xrand.Rand, vertices []V, d int) error {
	n := len(vertices)
	if d >= n {
		return fmt.Errorf("graph: degree %d too large for %d vertices", d, n)
	}
	for _, v := range vertices {
		for g.Degree(v) < d {
			u := vertices[r.Intn(n)]
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Ring adds a Hamiltonian cycle over the vertices in the given order — a
// deliberately poor expander used as a negative control in tests.
func Ring[V comparable](g *Graph[V], vertices []V) error {
	n := len(vertices)
	if n < 3 {
		return fmt.Errorf("graph: ring needs >= 3 vertices, got %d", n)
	}
	for i := range vertices {
		if err := g.AddEdge(vertices[i], vertices[(i+1)%n]); err != nil {
			return err
		}
	}
	return nil
}

// Complete adds all pairwise edges over the vertices.
func Complete[V comparable](g *Graph[V], vertices []V) error {
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			if err := g.AddEdge(vertices[i], vertices[j]); err != nil {
				return err
			}
		}
	}
	return nil
}
