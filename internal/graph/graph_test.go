package graph

import (
	"testing"
	"testing/quick"

	"nowover/internal/xrand"
)

func buildPath(t *testing.T, n int) *Graph[int] {
	t.Helper()
	g := New[int]()
	for i := 0; i < n; i++ {
		g.AddVertex(i)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddRemoveVertex(t *testing.T) {
	g := New[string]()
	if !g.AddVertex("a") || g.AddVertex("a") {
		t.Fatal("AddVertex idempotence broken")
	}
	g.AddVertex("b")
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveVertex("a") {
		t.Fatal("RemoveVertex returned false")
	}
	if g.HasVertex("a") || g.NumEdges() != 0 || g.Degree("b") != 0 {
		t.Fatal("vertex removal left stale state")
	}
	if g.RemoveVertex("a") {
		t.Fatal("double removal returned true")
	}
}

func TestEdgeValidation(t *testing.T) {
	g := New[int]()
	g.AddVertex(1)
	g.AddVertex(2)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(1, 3); err == nil {
		t.Error("edge to missing vertex accepted")
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if !g.RemoveEdge(2, 1) {
		t.Error("RemoveEdge by reversed endpoints failed")
	}
	if g.RemoveEdge(1, 2) {
		t.Error("removing absent edge returned true")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := buildPath(t, 5)
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("degrees wrong: %d, %d", g.Degree(0), g.Degree(2))
	}
	if g.MinDegree() != 1 || g.MaxDegree() != 2 {
		t.Errorf("min/max degree = %d/%d", g.MinDegree(), g.MaxDegree())
	}
	nbrs := g.Neighbors(2)
	if len(nbrs) != 2 {
		t.Fatalf("Neighbors(2) = %v", nbrs)
	}
	if g.NeighborAt(2, 0) != nbrs[0] {
		t.Error("NeighborAt disagrees with Neighbors")
	}
	want := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if g.MeanDegree() != want {
		t.Errorf("MeanDegree = %v, want %v", g.MeanDegree(), want)
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := buildPath(t, 6)
	dist := g.BFS(0)
	if dist[5] != 5 {
		t.Errorf("dist 0->5 = %d", dist[5])
	}
	if d := g.Diameter(); d != 5 {
		t.Errorf("path diameter = %d, want 5", d)
	}
	if e := g.Eccentricity(2); e != 3 {
		t.Errorf("eccentricity(2) = %d, want 3", e)
	}
	g2 := New[int]()
	g2.AddVertex(0)
	g2.AddVertex(1)
	if g2.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestComponents(t *testing.T) {
	g := New[int]()
	for i := 0; i < 6; i++ {
		g.AddVertex(i)
	}
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if g.Connected() {
		t.Error("Connected() true for disconnected graph")
	}
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4)
	_ = g.AddEdge(4, 5)
	if !g.Connected() {
		t.Error("Connected() false after linking")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildPath(t, 4)
	c := g.Clone()
	c.RemoveVertex(0)
	if !g.HasVertex(0) || g.NumEdges() != 3 {
		t.Error("clone mutation leaked")
	}
	if c.NumVertices() != 3 {
		t.Error("clone wrong size")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	g := New[int]()
	var vs []int
	for i := 0; i < 200; i++ {
		g.AddVertex(i)
		vs = append(vs, i)
	}
	if err := ErdosRenyi(g, xrand.New(1), vs, 0.1); err != nil {
		t.Fatal(err)
	}
	pairs := 200 * 199 / 2
	want := float64(pairs) * 0.1
	got := float64(g.NumEdges())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("ER edges = %v, want ~%v", got, want)
	}
}

func TestRandomRegularish(t *testing.T) {
	g := New[int]()
	var vs []int
	for i := 0; i < 100; i++ {
		g.AddVertex(i)
		vs = append(vs, i)
	}
	if err := RandomRegularish(g, xrand.New(2), vs, 6); err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if g.Degree(v) < 6 {
			t.Errorf("vertex %d degree %d < 6", v, g.Degree(v))
		}
	}
}

func TestRingAndComplete(t *testing.T) {
	g := New[int]()
	vs := []int{0, 1, 2, 3, 4}
	for _, v := range vs {
		g.AddVertex(v)
	}
	if err := Ring(g, vs); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 || g.MaxDegree() != 2 {
		t.Errorf("ring: edges=%d maxdeg=%d", g.NumEdges(), g.MaxDegree())
	}
	k := New[int]()
	for _, v := range vs {
		k.AddVertex(v)
	}
	if err := Complete(k, vs); err != nil {
		t.Fatal(err)
	}
	if k.NumEdges() != 10 {
		t.Errorf("K5 edges = %d", k.NumEdges())
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	r := xrand.New(3)
	n := 64
	ring := New[int]()
	expander := New[int]()
	var vs []int
	for i := 0; i < n; i++ {
		ring.AddVertex(i)
		expander.AddVertex(i)
		vs = append(vs, i)
	}
	if err := Ring(ring, vs); err != nil {
		t.Fatal(err)
	}
	if err := RandomRegularish(expander, r, vs, 8); err != nil {
		t.Fatal(err)
	}
	gapRing := ring.SpectralGap(r, 200)
	gapExp := expander.SpectralGap(r, 200)
	if gapExp <= gapRing {
		t.Errorf("expander gap %.4f <= ring gap %.4f", gapExp, gapRing)
	}
	if gapRing < 0 || gapExp > 0.55 {
		t.Errorf("gaps out of range: ring=%v exp=%v", gapRing, gapExp)
	}
	k := New[int]()
	for _, v := range vs[:8] {
		k.AddVertex(v)
	}
	if err := Complete(k, vs[:8]); err != nil {
		t.Fatal(err)
	}
	if gapK := k.SpectralGap(r, 200); gapK < 0.4 {
		t.Errorf("complete-graph gap %.4f too small", gapK)
	}
}

func TestExactIsoperimetric(t *testing.T) {
	// K4: removing any subset S (|S|<=2) cuts |S|*(4-|S|) edges; minimum
	// ratio is at |S|=2: 4/2 = 2... and |S|=1: 3/1=3, so I(K4)=2.
	k4 := New[int]()
	vs := []int{0, 1, 2, 3}
	for _, v := range vs {
		k4.AddVertex(v)
	}
	if err := Complete(k4, vs); err != nil {
		t.Fatal(err)
	}
	if got := k4.ExactIsoperimetric(); got != 2 {
		t.Errorf("I(K4) = %v, want 2", got)
	}
	// Path P4: cutting at the middle edge gives 1/2.
	p := buildPath(t, 4)
	if got := p.ExactIsoperimetric(); got != 0.5 {
		t.Errorf("I(P4) = %v, want 0.5", got)
	}
	big := New[int]()
	for i := 0; i < 30; i++ {
		big.AddVertex(i)
	}
	if got := big.ExactIsoperimetric(); got != -1 {
		t.Errorf("oversized exact iso = %v, want -1", got)
	}
}

func TestEstimateIsoperimetricUpperBounds(t *testing.T) {
	r := xrand.New(5)
	p := buildPath(t, 16)
	est := p.EstimateIsoperimetric(r, 100)
	exact := p.ExactIsoperimetric()
	if est < exact-1e-9 {
		t.Errorf("estimate %v below exact %v (must upper-bound)", est, exact)
	}
	// On a path the sweep cut should find something close to the true cut.
	if est > 3*exact {
		t.Errorf("estimate %v too loose vs exact %v", est, exact)
	}
}

func TestEdgeExpansionAndConductance(t *testing.T) {
	g := buildPath(t, 4)
	s := map[int]bool{0: true, 1: true}
	if h := g.EdgeExpansion(s); h != 0.5 {
		t.Errorf("expansion = %v, want 0.5", h)
	}
	// Flipping the side must give the same value (|S| normalization).
	s2 := map[int]bool{2: true, 3: true}
	if h := g.EdgeExpansion(s2); h != 0.5 {
		t.Errorf("flipped expansion = %v, want 0.5", h)
	}
	if c := g.Conductance(s); c <= 0 {
		t.Errorf("conductance = %v", c)
	}
}

func TestVerticesInsertionOrder(t *testing.T) {
	g := New[int]()
	for _, v := range []int{5, 3, 9} {
		g.AddVertex(v)
	}
	vs := g.Vertices()
	if vs[0] != 5 || vs[1] != 3 || vs[2] != 9 {
		t.Errorf("Vertices = %v, want insertion order", vs)
	}
}

func TestGraphInvariantsProperty(t *testing.T) {
	// Random edit scripts preserve: edge count == sum(deg)/2, symmetry.
	if err := quick.Check(func(seed uint64, ops []uint16) bool {
		r := xrand.New(seed)
		g := New[int]()
		const n = 12
		for i := 0; i < n; i++ {
			g.AddVertex(i)
		}
		for _, op := range ops {
			u, v := int(op)%n, int(op>>4)%n
			if u == v {
				continue
			}
			switch {
			case r.Bool(0.5):
				if !g.HasEdge(u, v) {
					_ = g.AddEdge(u, v)
				}
			default:
				g.RemoveEdge(u, v)
			}
		}
		sum := 0
		for _, v := range g.Vertices() {
			sum += g.Degree(v)
			for _, u := range g.Neighbors(v) {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return sum == 2*g.NumEdges()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildPath(t, 4)
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	keys := SortedKeys(h)
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Errorf("SortedKeys = %v", keys)
	}
}
