package graph

// BFS runs a breadth-first search from src and returns the distance map
// (vertices unreachable from src are absent).
func (g *Graph[V]) BFS(src V) map[V]int {
	dist := make(map[V]int, len(g.adj))
	if !g.HasVertex(src) {
		return dist
	}
	dist[src] = 0
	queue := []V{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for empty and
// singleton graphs).
func (g *Graph[V]) Connected() bool {
	if len(g.order) <= 1 {
		return true
	}
	return len(g.BFS(g.order[0])) == len(g.adj)
}

// Components returns the connected components as vertex slices, each in
// insertion order, ordered by their earliest vertex.
func (g *Graph[V]) Components() [][]V {
	seen := make(map[V]bool, len(g.adj))
	var comps [][]V
	for _, v := range g.order {
		if seen[v] {
			continue
		}
		var comp []V
		for u := range g.BFS(v) {
			seen[u] = true
		}
		// Rebuild in insertion order for determinism.
		dist := g.BFS(v)
		for _, u := range g.order {
			if _, ok := dist[u]; ok {
				comp = append(comp, u)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the exact diameter (longest shortest path) of the graph,
// computed by BFS from every vertex. It returns -1 for a disconnected or
// empty graph. Intended for overlay-sized graphs (thousands of vertices).
func (g *Graph[V]) Diameter() int {
	if len(g.order) == 0 {
		return -1
	}
	diam := 0
	for _, v := range g.order {
		dist := g.BFS(v)
		if len(dist) != len(g.adj) {
			return -1
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the maximum BFS distance from v, or -1 if some
// vertex is unreachable.
func (g *Graph[V]) Eccentricity(v V) int {
	dist := g.BFS(v)
	if len(dist) != len(g.adj) {
		return -1
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
