package graph

import (
	"math"

	"nowover/internal/xrand"
)

// SpectralGap estimates the spectral gap of the lazy random walk on g:
// gap = (1 - lambda2)/2 where lambda2 is the second eigenvalue of the
// normalized adjacency matrix D^{-1/2} A D^{-1/2}. The lazy transform maps
// all eigenvalues into [0, 1], so bipartite structure cannot masquerade as
// expansion. Power iteration with deflation against the known principal
// eigenvector (sqrt of degrees) is used; iters controls accuracy.
//
// A positive gap certifies expansion via Cheeger's inequality:
// conductance >= gap (for the lazy walk, phi >= gap and phi <= sqrt(2*gap)
// up to the usual constants). Returns 0 for graphs with < 2 vertices or
// isolated vertices.
func (g *Graph[V]) SpectralGap(r *xrand.Rand, iters int) float64 {
	vs := g.order
	n := len(vs)
	if n < 2 {
		return 0
	}
	idx := make(map[V]int, n)
	deg := make([]float64, n)
	for i, v := range vs {
		idx[v] = i
		deg[i] = float64(len(g.adj[v]))
		if deg[i] == 0 {
			return 0 // isolated vertex: walk is reducible
		}
	}
	// Principal eigenvector of the normalized adjacency: u_i ~ sqrt(d_i).
	u := make([]float64, n)
	var norm float64
	for i := range u {
		u[i] = math.Sqrt(deg[i])
		norm += u[i] * u[i]
	}
	norm = math.Sqrt(norm)
	for i := range u {
		u[i] /= norm
	}

	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		orthonormalize(x, u)
		// y = M_lazy x where M_lazy = (I + D^{-1/2} A D^{-1/2}) / 2.
		for i := range y {
			y[i] = 0
		}
		for i, v := range vs {
			for _, w := range g.adj[v] {
				j := idx[w]
				y[j] += x[i] / math.Sqrt(deg[i]*deg[j])
			}
		}
		for i := range y {
			y[i] = (x[i] + y[i]) / 2
		}
		lambda = dot(x, y) // Rayleigh quotient, since x is unit-norm
		x, y = y, x
	}
	if lambda > 1 {
		lambda = 1
	}
	return 1 - lambda
}

// orthonormalize projects x off u (unit vector) and rescales x to unit norm.
func orthonormalize(x, u []float64) {
	p := dot(x, u)
	var norm float64
	for i := range x {
		x[i] -= p * u[i]
		norm += x[i] * x[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		// Degenerate restart; extremely unlikely with random init.
		x[0] = 1
		return
	}
	for i := range x {
		x[i] /= norm
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Conductance returns the conductance of the cut (S, V\S):
// E(S, S~) / min(vol(S), vol(S~)). Returns 0 for trivial cuts.
func (g *Graph[V]) Conductance(s map[V]bool) float64 {
	var cut, volS, volC float64
	for _, v := range g.order {
		d := float64(len(g.adj[v]))
		if s[v] {
			volS += d
		} else {
			volC += d
		}
	}
	if volS == 0 || volC == 0 {
		return 0
	}
	for _, v := range g.order {
		if !s[v] {
			continue
		}
		for _, w := range g.adj[v] {
			if !s[w] {
				cut++
			}
		}
	}
	return cut / math.Min(volS, volC)
}

// EdgeExpansion returns the edge expansion of the cut: E(S, S~)/|S| with
// |S| <= n/2 enforced by flipping the side if needed. This is the quantity
// inside the paper's isoperimetric constant (Property 1). Returns 0 for
// trivial cuts.
func (g *Graph[V]) EdgeExpansion(s map[V]bool) float64 {
	size := 0
	for _, v := range g.order {
		if s[v] {
			size++
		}
	}
	if size == 0 || size == len(g.order) {
		return 0
	}
	if size > len(g.order)/2 {
		flipped := make(map[V]bool, len(g.order)-size)
		for _, v := range g.order {
			if !s[v] {
				flipped[v] = true
			}
		}
		s = flipped
		size = len(g.order) - size
	}
	cut := 0
	for _, v := range g.order {
		if !s[v] {
			continue
		}
		for _, w := range g.adj[v] {
			if !s[w] {
				cut++
			}
		}
	}
	return float64(cut) / float64(size)
}
