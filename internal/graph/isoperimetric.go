package graph

import (
	"math"
	"sort"

	"nowover/internal/xrand"
)

// _exactIsoLimit bounds exhaustive isoperimetric computation: 2^20 subsets
// with O(n) work each stays around a second.
const _exactIsoLimit = 20

// ExactIsoperimetric computes the exact isoperimetric (edge expansion)
// constant I(G) = min_{0<|S|<=n/2} E(S, S~)/|S| by exhaustive subset
// enumeration over bitmasks. It returns -1 when the graph has more than 20
// vertices (use EstimateIsoperimetric) or fewer than 2.
func (g *Graph[V]) ExactIsoperimetric() float64 {
	n := len(g.order)
	if n < 2 || n > _exactIsoLimit {
		return -1
	}
	idx := make(map[V]int, n)
	for i, v := range g.order {
		idx[v] = i
	}
	adj := make([]uint32, n)
	for i, v := range g.order {
		for _, w := range g.adj[v] {
			adj[i] |= 1 << uint(idx[w])
		}
	}
	best := math.Inf(1)
	half := n / 2
	for s := uint32(1); s < 1<<uint(n); s++ {
		size := popcount32(s)
		if size > half {
			continue
		}
		cut := 0
		rest := s
		for rest != 0 {
			i := trailingZeros32(rest)
			rest &= rest - 1
			cut += popcount32(adj[i] &^ s)
		}
		if h := float64(cut) / float64(size); h < best {
			best = h
		}
	}
	return best
}

func popcount32(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func trailingZeros32(x uint32) int {
	if x == 0 {
		return 32
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// EstimateIsoperimetric returns an upper bound on I(G) obtained from the
// best of (a) spectral sweep cuts (sort vertices by the second eigenvector
// and take the best prefix cut) and (b) random balanced cuts. Upper bounds
// are the honest direction for a minimum; a *high* estimate is evidence of
// expansion, and sweep cuts are near-optimal on expanders by Cheeger theory.
func (g *Graph[V]) EstimateIsoperimetric(r *xrand.Rand, randomCuts int) float64 {
	n := len(g.order)
	if n < 2 {
		return 0
	}
	best := math.Inf(1)

	// Spectral sweep: order vertices by Fiedler-like vector.
	if vec := g.secondVector(r, 60); vec != nil {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return vec[perm[a]] < vec[perm[b]] })
		s := make(map[V]bool, n/2)
		for i := 0; i < n/2; i++ {
			s[g.order[perm[i]]] = true
			if h := g.EdgeExpansion(copySet(s)); h > 0 && h < best {
				best = h
			}
		}
	}

	// Random balanced cuts.
	for c := 0; c < randomCuts; c++ {
		size := 1 + r.Intn(n/2)
		s := make(map[V]bool, size)
		for _, i := range xrand.SampleWithoutReplacement(r, n, size) {
			s[g.order[i]] = true
		}
		if h := g.EdgeExpansion(s); h > 0 && h < best {
			best = h
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

func copySet[V comparable](s map[V]bool) map[V]bool {
	out := make(map[V]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// secondVector returns an approximation of the second eigenvector of the
// lazy normalized adjacency operator (the embedding used for sweep cuts),
// or nil for degenerate graphs.
func (g *Graph[V]) secondVector(r *xrand.Rand, iters int) []float64 {
	vs := g.order
	n := len(vs)
	if n < 2 {
		return nil
	}
	idx := make(map[V]int, n)
	deg := make([]float64, n)
	for i, v := range vs {
		idx[v] = i
		deg[i] = float64(len(g.adj[v]))
		if deg[i] == 0 {
			return nil
		}
	}
	u := make([]float64, n)
	var norm float64
	for i := range u {
		u[i] = math.Sqrt(deg[i])
		norm += u[i] * u[i]
	}
	norm = math.Sqrt(norm)
	for i := range u {
		u[i] /= norm
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	for it := 0; it < iters; it++ {
		orthonormalize(x, u)
		for i := range y {
			y[i] = 0
		}
		for i, v := range vs {
			for _, w := range g.adj[v] {
				j := idx[w]
				y[j] += x[i] / math.Sqrt(deg[i]*deg[j])
			}
		}
		for i := range y {
			y[i] = (x[i] + y[i]) / 2
		}
		x, y = y, x
	}
	// Undo the D^{1/2} conjugation so the sweep is on the walk eigenvector.
	out := make([]float64, n)
	for i := range x {
		out[i] = x[i] / math.Sqrt(deg[i])
	}
	return out
}
