// Package graph provides the dynamic undirected graph substrate used for
// the OVER overlay and for the initialization-phase node network, together
// with the structural analyses the paper's properties are stated in terms
// of: degrees, connectivity, diameter, spectral gap and isoperimetric
// (edge-expansion) constants.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over comparable vertices. Adjacency
// lists preserve insertion order, so iteration is deterministic for a
// deterministic operation sequence. Self-loops and parallel edges are
// rejected. The zero value is not usable; call New.
type Graph[V comparable] struct {
	adj   map[V][]V
	order []V // insertion order of vertices
	edges int
}

// New returns an empty graph.
func New[V comparable]() *Graph[V] {
	return &Graph[V]{adj: make(map[V][]V)}
}

// AddVertex inserts v, returning true if it was not present.
func (g *Graph[V]) AddVertex(v V) bool {
	if _, ok := g.adj[v]; ok {
		return false
	}
	g.adj[v] = nil
	g.order = append(g.order, v)
	return true
}

// HasVertex reports whether v is present.
func (g *Graph[V]) HasVertex(v V) bool {
	_, ok := g.adj[v]
	return ok
}

// RemoveVertex deletes v and all incident edges, returning true if it was
// present.
func (g *Graph[V]) RemoveVertex(v V) bool {
	nbrs, ok := g.adj[v]
	if !ok {
		return false
	}
	for _, u := range nbrs {
		g.removeDirected(u, v)
		g.edges--
	}
	delete(g.adj, v)
	for i, u := range g.order {
		if u == v {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return true
}

// AddEdge inserts the undirected edge {u, v}. It returns an error if either
// endpoint is missing, u == v, or the edge already exists.
func (g *Graph[V]) AddEdge(u, v V) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on %v", u)
	}
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return fmt.Errorf("graph: edge %v-%v references missing vertex", u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge %v-%v", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return nil
}

// RemoveEdge deletes {u, v}, returning true if it existed.
func (g *Graph[V]) RemoveEdge(u, v V) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeDirected(u, v)
	g.removeDirected(v, u)
	g.edges--
	return true
}

func (g *Graph[V]) removeDirected(from, to V) {
	lst := g.adj[from]
	for i, w := range lst {
		if w == to {
			g.adj[from] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// HasEdge reports whether {u, v} exists.
func (g *Graph[V]) HasEdge(u, v V) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v in insertion order. The
// returned slice is a copy.
func (g *Graph[V]) Neighbors(v V) []V {
	nbrs := g.adj[v]
	out := make([]V, len(nbrs))
	copy(out, nbrs)
	return out
}

// NeighborAt returns the i-th neighbor of v without allocating. It panics
// on out-of-range i, matching slice semantics.
func (g *Graph[V]) NeighborAt(v V, i int) V { return g.adj[v][i] }

// Degree returns the degree of v (0 if absent).
func (g *Graph[V]) Degree(v V) int { return len(g.adj[v]) }

// NumVertices returns the vertex count.
func (g *Graph[V]) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph[V]) NumEdges() int { return g.edges }

// Vertices returns all vertices in insertion order. The returned slice is a
// copy.
func (g *Graph[V]) Vertices() []V {
	out := make([]V, len(g.order))
	copy(out, g.order)
	return out
}

// VertexAt returns the i-th vertex in insertion order without copying the
// vertex list; 0 <= i < NumVertices. Uniform vertex draws in hot paths use
// this instead of Vertices to stay allocation-free.
func (g *Graph[V]) VertexAt(i int) V { return g.order[i] }

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph[V]) MinDegree() int {
	first := true
	minDeg := 0
	for _, v := range g.order {
		d := len(g.adj[v])
		if first || d < minDeg {
			minDeg = d
			first = false
		}
	}
	return minDeg
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph[V]) MaxDegree() int {
	maxDeg := 0
	for _, v := range g.order {
		if d := len(g.adj[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// MeanDegree returns the average degree, or 0 for an empty graph.
func (g *Graph[V]) MeanDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// Clone returns a deep copy.
func (g *Graph[V]) Clone() *Graph[V] {
	out := &Graph[V]{
		adj:   make(map[V][]V, len(g.adj)),
		order: make([]V, len(g.order)),
		edges: g.edges,
	}
	copy(out.order, g.order)
	for v, nbrs := range g.adj {
		cp := make([]V, len(nbrs))
		copy(cp, nbrs)
		out.adj[v] = cp
	}
	return out
}

// DegreeHistogram returns degree -> count, with keys sorted by SortedKeys.
func (g *Graph[V]) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, v := range g.order {
		h[len(g.adj[v])]++
	}
	return h
}

// SortedKeys returns the sorted keys of a degree histogram (test helper).
func SortedKeys(h map[int]int) []int {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
