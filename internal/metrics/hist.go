package metrics

// hist.go implements Hist, a bounded log-scale histogram for message and
// round counts: a fixed array of power-of-two buckets, so memory is O(1)
// regardless of how many observations are folded in and Merge is EXACT —
// merging sharded sub-histograms in any order is byte-identical to
// single-stream accumulation (bucket counts are commutative integer sums).
// It trades value resolution for that exactness: a quantile estimate is
// correct in rank but only locates its value to within one power of two.
// The harness uses one Hist per traffic class to histogram per-operation
// message counts by protocol primitive.

import (
	"fmt"
	"math"
	"strings"
)

// Histogram geometry: bucket 0 collects x < 1 (the "zero messages" cell);
// bucket 1+e collects 2^e <= x < 2^(e+1) for e in [0, histMaxExp), with the
// last bucket absorbing everything >= 2^(histMaxExp-1). 2^62 comfortably
// exceeds any message count the cost model can produce.
const (
	histMaxExp  = 62
	histBuckets = 1 + histMaxExp
)

// histBucket maps an observation to its bucket index.
func histBucket(x float64) int {
	if x < 1 || math.IsNaN(x) {
		return 0
	}
	e := math.Ilogb(x)
	if e > histMaxExp-1 {
		e = histMaxExp - 1
	}
	return 1 + e
}

// Hist is a bounded log2-bucketed histogram. The zero value is empty and
// ready to use. Hist is not safe for concurrent use.
type Hist struct {
	buckets [histBuckets]int64
	total   int64
}

// Add folds one observation into the histogram. Negative and NaN values
// land in bucket 0 alongside zero (the cost model never produces them, but
// the histogram must not lose count if a caller does).
func (h *Hist) Add(x float64) {
	h.buckets[histBucket(x)]++
	h.total++
}

// Merge folds another histogram's counts into this one without mutating
// it. Merge is exact: merging sharded sub-histograms in any order is
// byte-identical to accumulating the concatenated stream directly.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.total += o.total
}

// N returns the observation count.
func (h *Hist) N() int64 { return h.total }

// Bucket returns the count in bucket i (0 <= i < NumHistBuckets).
func (h *Hist) Bucket(i int) int64 { return h.buckets[i] }

// BucketLower returns the lower bound of bucket i: 0 for bucket 0 (which
// collects every observation below 1), else 2^(i-1).
func BucketLower(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Ldexp(1, i-1)
}

// NumHistBuckets is the fixed histogram width.
func NumHistBuckets() int { return histBuckets }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// exclusive upper edge of the bucket holding the observation of that rank
// (NaN when empty). Rank is exact; the value is located to within one
// power of two — a factor-2 relative error bound, the price of exact
// mergeability at O(1) memory.
func (h *Hist) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The ceiling matches Sample's convention loosely: rank 1 for q=0,
	// rank total for q=1.
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return BucketLower(i + 1)
		}
	}
	return BucketLower(histBuckets)
}

// String renders the occupied buckets compactly: "[lo,hi)=count" in
// ascending order.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", h.total)
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, " [%.3g,%.3g)=%d", BucketLower(i), BucketLower(i+1), c)
	}
	return b.String()
}
