package metrics

// digest.go implements Digest, a fixed-memory streaming quantile sketch: a
// merging t-digest (Dunning & Ertl, "Computing extremely accurate quantiles
// using t-digests") whose centroids are sized by the k1 scale function, so
// tail quantiles keep near-singleton resolution while the middle of the
// distribution is compressed aggressively. Alongside the centroids it keeps
// the exact count, sum, minimum and maximum, so N/Mean/Min/Max are exact no
// matter how hard the quantile sketch compresses.
//
// Determinism contract: the sketch uses no clock and no randomness, and its
// compaction schedule is purely structural — observations buffer in arrival
// order and compact via a stable sort exactly when the buffer fills (or
// when a quantile is queried, so queries count as part of the sequence).
// The same sequence of Add/Merge/Quantile calls therefore yields the same
// centroids bit for bit, which is what lets the harness merge per-cell and per-replica
// sketches in submission order and keep every rendered table byte-identical
// at any parallelism (the op scheduler's private-ledger discipline, extended
// to distributions).
//
// Merging a RAW sketch — one that has never compacted (fewer buffered
// observations than its compaction threshold) and holds only weight-1
// observations (i.e. was fed by Add, not by merges of compacted sketches)
// — replays those observations in arrival order, so such a merge is
// byte-identical to single-stream accumulation. Merging any other sketch
// folds its centroids and exact sum instead: still deterministic, and
// count/sum/min/max stay exact, but the quantile state approximates the
// concatenated stream — the rank-error bounds (oracle_test.go) are what
// hold unconditionally.

import (
	"fmt"
	"math"
	"sort"
	"unsafe"
)

// DigestCompression is the default centroid budget: quantile rank error
// shrinks roughly linearly as it grows, memory grows linearly with it.
// At 100 the sketch holds well under 1% rank error on the harness's
// cost distributions (see oracle_test.go) in a few kilobytes.
const DigestCompression = 100

// centroid is one weighted point of the sketch.
type centroid struct {
	mean   float64
	weight float64
}

// Digest is a fixed-memory, deterministically mergeable quantile sketch.
// The zero value is an empty sketch at DigestCompression; NewDigest pins an
// explicit compression. Digest is not safe for concurrent use — give each
// goroutine its own and Merge them in a deterministic order.
type Digest struct {
	compression float64
	centroids   []centroid
	buffer      []centroid
	count       float64
	sum         float64
	min, max    float64
}

// NewDigest returns an empty sketch; compression <= 0 selects
// DigestCompression.
func NewDigest(compression float64) *Digest {
	d := &Digest{}
	d.ensure(compression)
	return d
}

// ensure initializes an empty digest at the given compression (<= 0 means
// the package default).
func (d *Digest) ensure(compression float64) {
	if d.compression > 0 {
		return
	}
	if compression <= 0 {
		compression = DigestCompression
	}
	d.compression = compression
	d.min = math.Inf(1)
	d.max = math.Inf(-1)
}

// compactionThreshold sizes the raw buffer: larger buffers amortize the
// sort in compact() better at a fixed O(compression) memory bound.
func (d *Digest) compactionThreshold() int {
	return int(5 * d.compression)
}

// Add folds one observation of weight 1 into the sketch. Observations must
// be finite; NaN and ±Inf are rejected so a buggy cost path cannot poison
// every quantile downstream.
func (d *Digest) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("metrics: non-finite observation %v", x))
	}
	d.ensure(0)
	if x < d.min {
		d.min = x
	}
	if x > d.max {
		d.max = x
	}
	d.sum += x
	d.addCentroid(x, 1)
}

// addCentroid buffers a weighted point without touching min/max/sum (a
// merged centroid's mean is not an observed extreme).
func (d *Digest) addCentroid(mean, weight float64) {
	if weight <= 0 {
		return
	}
	d.buffer = append(d.buffer, centroid{mean, weight})
	d.count += weight
	if len(d.buffer) >= d.compactionThreshold() {
		d.compact()
	}
}

// Merge folds another sketch's state into this one without mutating it, in
// submission order: o's compacted centroids first, then its raw buffer in
// arrival order. If o never compacted, the merge replays its observations
// exactly and is byte-identical to having Added them here directly.
func (d *Digest) Merge(o *Digest) {
	if o == nil || o.count == 0 {
		return
	}
	if o == d {
		// Self-merge doubles the stream; snapshot the source so folding
		// cannot mutate the arrays it is iterating (addCentroid/compact
		// would otherwise reorder them mid-loop).
		cp := *o
		cp.centroids = append([]centroid(nil), o.centroids...)
		cp.buffer = append([]centroid(nil), o.buffer...)
		o = &cp
	}
	d.ensure(o.compression)
	if o.min < d.min {
		d.min = o.min
	}
	if o.max > d.max {
		d.max = o.max
	}
	// A raw source — never compacted AND holding only weight-1 buffered
	// observations (a buffer can carry weight>1 centroids if the source
	// itself absorbed a compacted merge) — is replayed one observation at
	// a time, reproducing the single-stream floating-point summation
	// order bit for bit. Any other source folds o.sum wholesale: exact,
	// but summed in per-shard order.
	raw := len(o.centroids) == 0
	if raw {
		for _, c := range o.buffer {
			if c.weight != 1 {
				raw = false
				break
			}
		}
	}
	if raw {
		for _, c := range o.buffer {
			d.sum += c.mean
			d.addCentroid(c.mean, 1)
		}
		return
	}
	d.sum += o.sum
	for _, c := range o.centroids {
		d.addCentroid(c.mean, c.weight)
	}
	for _, c := range o.buffer {
		d.addCentroid(c.mean, c.weight)
	}
}

// k is the k1 scale function: k(q) = delta/(2*pi) * asin(2q-1). Its slope
// is steepest at q in {0,1}, bounding edge centroids near weight 1.
func (d *Digest) k(q float64) float64 {
	return d.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// kInv inverts the scale function, clamping to [0,1].
func (d *Digest) kInv(k float64) float64 {
	return (math.Sin(math.Min(math.Max(k*2*math.Pi/d.compression, -math.Pi/2), math.Pi/2)) + 1) / 2
}

// compact merges the buffer into the centroid list: stable-sort by mean
// (ties keep arrival order — determinism), then greedily coalesce adjacent
// centroids while the k-size constraint allows.
func (d *Digest) compact() {
	if len(d.buffer) == 0 {
		return
	}
	d.centroids = append(d.centroids, d.buffer...)
	d.buffer = d.buffer[:0]
	sort.SliceStable(d.centroids, func(i, j int) bool {
		return d.centroids[i].mean < d.centroids[j].mean
	})
	if len(d.centroids) <= 1 {
		return
	}
	wSoFar := 0.0
	qLimit := d.kInv(d.k(0) + 1)
	cur := d.centroids[0]
	n := 0 // write index; always <= read index, so in-place is safe
	for _, c := range d.centroids[1:] {
		q := (wSoFar + cur.weight + c.weight) / d.count
		if q <= qLimit {
			cur.mean += c.weight * (c.mean - cur.mean) / (cur.weight + c.weight)
			cur.weight += c.weight
		} else {
			wSoFar += cur.weight
			qLimit = d.kInv(d.k(wSoFar/d.count) + 1)
			d.centroids[n] = cur
			n++
			cur = c
		}
	}
	d.centroids[n] = cur
	d.centroids = d.centroids[:n+1]
}

// N returns the observation count (total folded-in weight).
func (d *Digest) N() int64 { return int64(d.count) }

// Mean returns the exact mean (NaN when empty): the running sum is kept
// outside the sketch, so compression never touches it.
func (d *Digest) Mean() float64 { return d.sum / d.count }

// Min returns the exact minimum observation (NaN when empty).
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return math.NaN()
	}
	return d.min
}

// Max returns the exact maximum observation (NaN when empty).
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return math.NaN()
	}
	return d.max
}

// Quantile returns the estimated q-quantile (0 <= q <= 1), NaN when empty.
// Estimates interpolate between centroid means, pinned to the exact min and
// max at the extremes; rank error is bounded by the compression (see
// oracle_test.go for the measured envelope).
func (d *Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return math.NaN()
	}
	d.compact()
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	target := q * d.count
	cum := 0.0
	for i, c := range d.centroids {
		mid := cum + c.weight/2
		if target < mid {
			if i == 0 {
				// Between the observed minimum and the first centroid.
				if mid == 0 {
					return c.mean
				}
				return d.min + target/mid*(c.mean-d.min)
			}
			prev := d.centroids[i-1]
			prevMid := cum - prev.weight/2
			return prev.mean + (target-prevMid)/(mid-prevMid)*(c.mean-prev.mean)
		}
		cum += c.weight
	}
	last := d.centroids[len(d.centroids)-1]
	lastMid := d.count - last.weight/2
	if d.count == lastMid {
		return d.max
	}
	return last.mean + (target-lastMid)/(d.count-lastMid)*(d.max-last.mean)
}

// Compression reports the centroid budget in effect (0 until the first
// Add/Merge of a zero-value Digest).
func (d *Digest) Compression() float64 { return d.compression }

// Centroids compacts pending observations and reports the current centroid
// count — O(compression) by construction, never O(N).
func (d *Digest) Centroids() int {
	d.compact()
	return len(d.centroids)
}

// Footprint reports the sketch's current memory footprint in bytes (struct
// plus centroid/buffer backing arrays). It is the quantity the memory-guard
// tests pin: bounded by the compression, never by N.
func (d *Digest) Footprint() int {
	return int(unsafe.Sizeof(*d)) +
		int(unsafe.Sizeof(centroid{}))*(cap(d.centroids)+cap(d.buffer))
}

// String summarizes the sketch for table output and logs.
func (d *Digest) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p95=%.3g max=%.3g",
		d.N(), d.Mean(), d.Quantile(0.5), d.Quantile(0.95), d.Max())
}
