package metrics

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"nowover/internal/xrand"
)

// TestDistModes: both modes agree exactly on N/Mean/Max; exact mode's
// quantiles match the Sample oracle bit for bit, sketch mode's sit within
// the rank envelope.
func TestDistModes(t *testing.T) {
	r := xrand.New(3)
	exact := NewDist(true)
	sketch := NewDist(false)
	var oracle Sample
	for i := 0; i < 20000; i++ {
		x := r.Exp(1) * 500
		exact.Add(x)
		sketch.Add(x)
		oracle.Add(x)
	}
	if !exact.Exact() || sketch.Exact() {
		t.Fatal("mode flags wrong")
	}
	if exact.N() != sketch.N() || exact.N() != int64(oracle.N()) {
		t.Errorf("counts diverge: exact %d sketch %d oracle %d", exact.N(), sketch.N(), oracle.N())
	}
	if exact.Mean() != sketch.Mean() {
		t.Errorf("means diverge: exact %v sketch %v", exact.Mean(), sketch.Mean())
	}
	if exact.Max() != sketch.Max() {
		t.Errorf("maxima diverge: exact %v sketch %v", exact.Max(), sketch.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := exact.Quantile(q), oracle.Quantile(q); got != want {
			t.Errorf("exact-mode Quantile(%v) = %v, oracle %v", q, got, want)
		}
	}
	// Sketch memory must be a small fraction of the retained history.
	if sketch.Footprint() >= exact.Footprint()/4 {
		t.Errorf("sketch footprint %dB vs exact %dB", sketch.Footprint(), exact.Footprint())
	}
}

// TestDistExactMergeByteIdentical: exact-mode merge concatenates histories
// in submission order, so sharded accumulation is byte-identical to a
// single stream — the exact-mode face of the merge-equivalence contract.
func TestDistExactMergeByteIdentical(t *testing.T) {
	r := xrand.New(17)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	single := NewDist(true)
	for _, x := range xs {
		single.Add(x)
	}
	shards := make([]Dist, 5)
	for i := range shards {
		shards[i] = NewDist(true)
	}
	per := len(xs) / len(shards)
	for i, x := range xs {
		s := i / per
		if s >= len(shards) {
			s = len(shards) - 1
		}
		shards[s].Add(x)
	}
	merged := NewDist(true)
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if !reflect.DeepEqual(single, merged) {
		t.Error("exact-mode sharded merge not byte-identical to single stream")
	}
}

// TestDistMergeModeMismatchPanics: silently folding a sketch into an exact
// history would fake precision, so it must refuse loudly.
func TestDistMergeModeMismatchPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("mode-mismatched merge did not panic")
		} else if !strings.Contains(fmt.Sprint(r), "sketch-mode") {
			t.Errorf("panic %v does not name the modes", r)
		}
	}()
	exact := NewDist(true)
	sketch := NewDist(false)
	sketch.Add(1)
	exact.Merge(&sketch)
}

// TestDistEmptyContract: both modes answer NaN when empty.
func TestDistEmptyContract(t *testing.T) {
	for _, mode := range []bool{true, false} {
		d := NewDist(mode)
		if d.N() != 0 {
			t.Errorf("mode=%v: empty N = %d", mode, d.N())
		}
		for name, v := range map[string]float64{
			"Mean": d.Mean(), "Max": d.Max(), "Quantile": d.Quantile(0.5),
		} {
			if !math.IsNaN(v) {
				t.Errorf("mode=%v: empty %s = %v, want NaN", mode, name, v)
			}
		}
		if !strings.Contains(d.String(), "n=0") {
			t.Errorf("String() = %q", d.String())
		}
	}
}

// BenchmarkCostSampling is the memory benchmark behind the ISSUE's
// acceptance criterion: per-observation cost of exact vs sketch
// accounting at stream lengths 2^12..2^16 (the per-cell operation counts
// of the wide-range sweep). b.ReportAllocs surfaces allocs/op and B/op;
// the retained-bytes metric reports the accumulator's final footprint —
// O(N) exact, O(compression) sketch.
func BenchmarkCostSampling(b *testing.B) {
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"exact", true}, {"sketch", false}} {
		for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
			b.Run(fmt.Sprintf("%s/obs=%d", mode.name, n), func(b *testing.B) {
				r := xrand.New(9)
				xs := make([]float64, n)
				for i := range xs {
					xs[i] = r.Exp(1) * 1e6 // leave-cost magnitude
				}
				b.ReportAllocs()
				b.ResetTimer()
				var last *Dist
				for i := 0; i < b.N; i++ {
					d := NewDist(mode.exact)
					for _, x := range xs {
						d.Add(x)
					}
					last = &d
				}
				b.StopTimer()
				b.ReportMetric(float64(last.Footprint()), "retained-B")
				b.ReportMetric(float64(last.Footprint())/float64(n), "retained-B/obs")
			})
		}
	}
}
