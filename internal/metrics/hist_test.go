package metrics

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"nowover/internal/xrand"
)

func TestHistBucketMapping(t *testing.T) {
	cases := []struct {
		x      float64
		bucket int
	}{
		{0, 0}, {-5, 0}, {0.5, 0}, {math.NaN(), 0},
		{1, 1}, {1.5, 1}, {2, 2}, {3, 2}, {4, 3},
		{1024, 11}, {math.Ldexp(1, 61), 62}, {math.Ldexp(1, 200), 62},
	}
	for _, c := range cases {
		if got := histBucket(c.x); got != c.bucket {
			t.Errorf("histBucket(%v) = %d, want %d", c.x, got, c.bucket)
		}
	}
	for i := 1; i < NumHistBuckets(); i++ {
		if got, want := BucketLower(i), math.Ldexp(1, i-1); got != want {
			t.Errorf("BucketLower(%d) = %v, want %v", i, got, want)
		}
	}
	if BucketLower(0) != 0 {
		t.Errorf("BucketLower(0) = %v, want 0", BucketLower(0))
	}
}

// TestHistMergeByteIdentical is the histogram half of the merge-equivalence
// satellite: unlike the Digest, Hist merges EXACTLY — sharded
// sub-histograms merged in any order are byte-identical to single-stream
// accumulation, because bucket counts are commutative integer sums.
func TestHistMergeByteIdentical(t *testing.T) {
	r := xrand.New(11)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Exp(1) * math.Pow(10, float64(r.Intn(6)))
	}
	var single Hist
	for _, x := range xs {
		single.Add(x)
	}
	shards := make([]Hist, 7)
	for i, x := range xs {
		shards[i%7].Add(x)
	}
	var fwd, rev Hist
	for i := range shards {
		fwd.Merge(&shards[i])
		rev.Merge(&shards[len(shards)-1-i])
	}
	if !reflect.DeepEqual(single, fwd) || !reflect.DeepEqual(single, rev) {
		t.Error("sharded histogram merge not byte-identical to single stream")
	}
}

// TestHistQuantileRankExact: the quantile's RANK is exact; only the value
// is quantized to its bucket's upper bound (factor-2 relative envelope).
func TestHistQuantileRankExact(t *testing.T) {
	var h Hist
	// 90 observations in [1,2), 10 in [1024, 2048).
	for i := 0; i < 90; i++ {
		h.Add(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Add(1500)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (upper bound of [1,2))", got)
	}
	if got := h.Quantile(0.9); got != 2 {
		t.Errorf("p90 = %v, want 2 — rank 90 of 100 is still the low mode", got)
	}
	if got := h.Quantile(0.91); got != 2048 {
		t.Errorf("p91 = %v, want 2048 (upper bound of the tail bucket)", got)
	}
	if got := h.Quantile(1); got != 2048 {
		t.Errorf("p100 = %v, want 2048", got)
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("p0 = %v, want the first occupied bucket's bound 2", got)
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistEmptyAndString(t *testing.T) {
	var h Hist
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty Hist quantile = %v, want NaN", h.Quantile(0.5))
	}
	h.Add(0) // "zero messages" cell
	h.Add(3)
	h.Add(3)
	s := h.String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "[2,4)=2") {
		t.Errorf("String() = %q, want n=3 and bucket [2,4)=2", s)
	}
	if h.Bucket(0) != 1 {
		t.Errorf("zero bucket count = %d, want 1", h.Bucket(0))
	}
}
