package metrics

// oracle_test.go is the sketch-vs-oracle property suite: every quantile the
// harness reads off a Digest (p50/p90/p99/max) must sit within a fixed
// RANK-error envelope of the exact retained-history Sample, over the
// adversarial input shapes that break naive sketches — heavy-tailed
// power laws (per-operation message costs ARE power-law-ish under churn),
// bimodal mixtures (quiesced clusters vs a tail still absorbing churn,
// the distinction the ISSUE cares about), constant streams (all mass on
// one point), and sorted/reverse-sorted arrival orders (worst case for
// compaction schedules) — across four orders of magnitude of stream size.
//
// Rank error, not value error, is the right metric: a t-digest guarantees
// the estimate's position in the sorted data, while its value can be
// arbitrarily far off in a heavy tail where neighboring ranks are far
// apart.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"nowover/internal/xrand"
)

// oracleDist generates observation streams with adversarial shapes.
type oracleDist struct {
	name string
	gen  func(r *xrand.Rand, n int) []float64
}

func oracleDists() []oracleDist {
	return []oracleDist{
		{"power-law", func(r *xrand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				// Pareto with alpha = 1.2: infinite variance, the tail
				// shape of leave-cascade costs.
				xs[i] = math.Pow(1-r.Float64(), -1/1.2)
			}
			return xs
		}},
		{"bimodal", func(r *xrand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				if r.Bool(0.7) {
					xs[i] = 100 + 10*r.Float64() // quiesced mode
				} else {
					xs[i] = 1e6 + 1e5*r.Float64() // churn-absorbing tail
				}
			}
			return xs
		}},
		{"constant", func(r *xrand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 42
			}
			return xs
		}},
		{"sorted", func(r *xrand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		}},
		{"reverse-sorted", func(r *xrand.Rand, n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		}},
	}
}

// rankBounds returns how many sorted observations are strictly below /
// at-or-below v — the rank interval the value v occupies in the data.
func rankBounds(sorted []float64, v float64) (lo, hi int) {
	lo = sort.SearchFloat64s(sorted, v)
	hi = sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo, hi
}

// checkQuantileRank asserts that the digest's q-estimate lands within
// epsRank*n ranks of the target rank in the exact data.
func checkQuantileRank(t *testing.T, sorted []float64, d *Digest, q, epsRank float64) {
	t.Helper()
	n := len(sorted)
	est := d.Quantile(q)
	lo, hi := rankBounds(sorted, est)
	target := q * float64(n)
	slack := epsRank*float64(n) + 1 // +1 forgives integer rank rounding at tiny n
	if target < float64(lo)-slack || target > float64(hi)+slack {
		t.Errorf("q=%v: estimate %v occupies ranks [%d,%d] of %d, target rank %.1f (allowed slack %.1f)",
			q, est, lo, hi, n, target, slack)
	}
}

// TestDigestMatchesOracle is the oracle property test: p50/p90/p99 within
// rank-error bounds of the exact Sample, and max exact, over every
// adversarial shape at sizes 10..10^6 (the top size runs only outside
// -short). The bounds reflect the k1 scale function at the default
// compression: tight at the tails, loosest at the median.
func TestDigestMatchesOracle(t *testing.T) {
	sizes := []int{10, 100, 1000, 10000, 100000}
	if !testing.Short() {
		sizes = append(sizes, 1000000)
	}
	quantiles := []struct {
		q   float64
		eps float64
	}{
		{0.5, 0.02},
		{0.9, 0.015},
		{0.99, 0.005},
	}
	for _, dist := range oracleDists() {
		for _, n := range sizes {
			t.Run(fmt.Sprintf("%s/n=%d", dist.name, n), func(t *testing.T) {
				xs := dist.gen(xrand.New(uint64(n)^0x0A11CE), n)
				var exact Sample
				d := NewDigest(0)
				for _, x := range xs {
					exact.Add(x)
					d.Add(x)
				}
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				for _, qe := range quantiles {
					checkQuantileRank(t, sorted, d, qe.q, qe.eps)
				}
				// Extremes, count and mean are exact in the sketch, full stop.
				if got, want := d.Max(), exact.Max(); got != want {
					t.Errorf("Max: sketch %v, oracle %v", got, want)
				}
				if got, want := d.Quantile(0), sorted[0]; got != want {
					t.Errorf("Quantile(0): sketch %v, oracle min %v", got, want)
				}
				if got, want := d.N(), int64(exact.N()); got != want {
					t.Errorf("N: sketch %d, oracle %d", got, want)
				}
				if got, want := d.Mean(), exact.Mean(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Errorf("Mean: sketch %v, oracle %v", got, want)
				}
				// The memory side of the bargain: bounded centroids and
				// footprint no matter the stream length.
				if c := d.Centroids(); c > 2*DigestCompression {
					t.Errorf("centroid count %d exceeds 2x compression", c)
				}
				if n >= 10000 && d.Footprint() >= exact.Footprint()/4 {
					t.Errorf("sketch footprint %dB not clearly below exact %dB at n=%d",
						d.Footprint(), exact.Footprint(), n)
				}
			})
		}
	}
}

// TestDigestQuantileMonotone: estimates must be non-decreasing in q — an
// interpolation bug between centroids would violate it long before the
// rank bounds notice.
func TestDigestQuantileMonotone(t *testing.T) {
	for _, dist := range oracleDists() {
		xs := dist.gen(xrand.New(0xB0B), 20000)
		d := NewDigest(0)
		for _, x := range xs {
			d.Add(x)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := d.Quantile(q)
			if v < prev {
				t.Fatalf("%s: Quantile(%v) = %v < previous %v", dist.name, q, v, prev)
			}
			prev = v
		}
	}
}
