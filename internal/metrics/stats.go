package metrics

import (
	"fmt"
	"math"
	"sort"
	"unsafe"
)

// Welford is a streaming accumulator for mean/variance/min/max using
// Welford's numerically stable update. The zero value is an empty
// accumulator.
//
// Empty-accumulator contract (shared with Sample, Digest and Dist):
// Mean, Min and Max return NaN before the first observation, so a
// forgotten Add surfaces as NaN in a table instead of a silent,
// plausible-looking 0. Variance alone keeps the conventional 0 for
// n < 2 (a single observation has zero spread, not undefined spread).
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (NaN for an empty accumulator).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the minimum observation (NaN for an empty accumulator).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the maximum observation (NaN for an empty accumulator).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// String summarizes the accumulator for table output.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g",
		w.n, w.Mean(), w.StdDev(), w.Min(), w.Max())
}

// Sample retains all observations so exact quantiles can be computed: it
// is the oracle the Digest sketch is tested against (oracle_test.go) and
// the exact mode behind the harness's ExactSamples switch. Memory is O(N),
// so sweeps at N >= 2^16 use the sketch instead (Dist).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Merge appends another sample's current history. Quantile results after
// any merge order are identical to single-stream accumulation (exact
// quantiles depend only on the multiset). Byte-identity — including the
// float summation order inside Mean — additionally requires the source
// not to have been queried yet: Quantile/Max sort xs in place, so a
// queried source appends in sorted rather than arrival order. Merging
// unqueried sub-samples in submission order is byte-identical to
// single-stream accumulation — the exact-mode face of the determinism
// contract the Digest sketch keeps approximately.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Footprint reports the retained history's memory in bytes — O(N), the
// quantity the sketch exists to avoid.
func (s *Sample) Footprint() int {
	return int(unsafe.Sizeof(*s)) + 8*cap(s.xs)
}

// Mean returns the sample mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var total float64
	for _, x := range s.xs {
		total += x
	}
	return total / float64(len(s.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation on
// the sorted sample. It returns NaN when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Max returns the maximum observation (NaN when empty).
func (s *Sample) Max() float64 { return s.Quantile(1) }

// TVDistance returns the total-variation distance between two discrete
// distributions given as aligned probability vectors. Vectors need not be
// normalized; they are normalized internally. Mismatched lengths panic.
func TVDistance(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("metrics: TVDistance length mismatch")
	}
	var sp, sq float64
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if sp <= 0 || sq <= 0 {
		panic("metrics: TVDistance non-positive mass")
	}
	var d float64
	for i := range p {
		d += math.Abs(p[i]/sp - q[i]/sq)
	}
	return d / 2
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected probabilities (normalized internally). Cells with zero expected
// probability must have zero observations, otherwise +Inf is returned.
func ChiSquare(observed []int64, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("metrics: ChiSquare length mismatch")
	}
	var n int64
	for _, o := range observed {
		n += o
	}
	var se float64
	for _, e := range expected {
		se += e
	}
	if n == 0 || se <= 0 {
		return 0
	}
	var stat float64
	for i := range observed {
		exp := float64(n) * expected[i] / se
		if exp == 0 {
			if observed[i] != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(observed[i]) - exp
		stat += d * d / exp
	}
	return stat
}

// LinearFit is an ordinary least squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLinear computes an OLS fit. It panics on mismatched or short input.
func FitLinear(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) < 2 {
		panic("metrics: FitLinear needs >= 2 aligned points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("metrics: FitLinear degenerate x")
	}
	b := sxy / sxx
	fit := LinearFit{Intercept: my - b*mx, Slope: b, R2: 1}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// FitPowerLaw fits y ~ c * x^b by regressing log y on log x and returns b
// (the exponent) and the fit. Non-positive points are skipped; at least two
// positive points are required.
func FitPowerLaw(x, y []float64) LinearFit {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	return FitLinear(lx, ly)
}

// FitPolylog fits y ~ c * (log2 x)^b — the shape of every complexity claim
// in the paper — by regressing log y on log log2 x. The returned Slope is
// the polylog exponent b.
func FitPolylog(x, y []float64) LinearFit {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		l2 := math.Log2(x[i])
		if l2 > 1 && y[i] > 0 {
			lx = append(lx, math.Log(l2))
			ly = append(ly, math.Log(y[i]))
		}
	}
	return FitLinear(lx, ly)
}

// Log2 is a convenience wrapper used throughout the experiment harness.
func Log2(x float64) float64 { return math.Log2(x) }
