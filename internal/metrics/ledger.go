// Package metrics provides cost accounting (messages, rounds) and the
// statistics toolkit used by the experiment harness: streaming moments,
// quantiles, distribution distances and polylog/power-law exponent fits.
//
// Every protocol primitive charges its communication cost to a Ledger using
// the paper's cost rules (all-to-all within a cluster, |Ci|x|Cj| between
// adjacent clusters, majority-accept). Experiments snapshot the ledger
// around an operation to obtain exact per-operation costs.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Class labels a category of protocol traffic. Classes let experiments
// decompose an operation's cost into its constituent primitives.
type Class int

// Traffic classes, one per protocol primitive or phase.
const (
	ClassIntraCluster Class = iota // all-to-all within one cluster
	ClassInterCluster              // cluster-to-cluster announcements
	ClassWalk                      // CTRW forwarding between clusters
	ClassRandNum                   // distributed random number generation
	ClassExchange                  // node shuffling transfers
	ClassDiscovery                 // initialization flooding
	ClassAgreement                 // Byzantine agreement traffic
	ClassApplication               // application-layer traffic (broadcast etc.)
	ClassCascade                   // grouped leave-cascade shuffle rounds
	ClassTransport                 // transport-layer overhead (acks, retransmissions)
	numClasses
)

// NumClasses is the number of traffic classes, for callers that keep
// per-class accumulators (e.g. one Hist per class).
const NumClasses = int(numClasses)

var _classNames = [numClasses]string{
	"intra-cluster",
	"inter-cluster",
	"walk",
	"randnum",
	"exchange",
	"discovery",
	"agreement",
	"application",
	"cascade",
	"transport",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return _classNames[c]
}

// Ledger accumulates message and round counts. The zero value is ready to
// use. Ledger is not safe for concurrent use; the simulator is single
// threaded and the live runtime aggregates per-goroutine counts itself.
type Ledger struct {
	msgs   [numClasses]int64
	rounds int64
}

// Charge records n messages of class c. Negative charges are rejected so a
// buggy cost model cannot silently shrink totals.
func (l *Ledger) Charge(c Class, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative charge %d for %v", n, c))
	}
	l.msgs[c] += n
}

// AddRounds records r communication rounds.
func (l *Ledger) AddRounds(r int64) {
	if r < 0 {
		panic(fmt.Sprintf("metrics: negative rounds %d", r))
	}
	l.rounds += r
}

// Reset zeroes the ledger so a pooled private ledger can be reused across
// scheduler batches without reallocation.
func (l *Ledger) Reset() { *l = Ledger{} }

// Merge folds another ledger's totals into this one. The op scheduler
// charges each planned operation to a private ledger and merges them in
// operation order, keeping batch totals deterministic under concurrency.
func (l *Ledger) Merge(other *Ledger) {
	for c := Class(0); c < numClasses; c++ {
		l.msgs[c] += other.msgs[c]
	}
	l.rounds += other.rounds
}

// Messages returns the total message count across all classes.
func (l *Ledger) Messages() int64 {
	var total int64
	for _, m := range l.msgs {
		total += m
	}
	return total
}

// MessagesBy returns the message count for one class.
func (l *Ledger) MessagesBy(c Class) int64 { return l.msgs[c] }

// Rounds returns the total round count.
func (l *Ledger) Rounds() int64 { return l.rounds }

// Snapshot captures the current totals so a caller can compute the cost of
// a single operation as the difference of two snapshots.
type Snapshot struct {
	msgs   [numClasses]int64
	rounds int64
}

// Snapshot returns the current totals.
func (l *Ledger) Snapshot() Snapshot {
	return Snapshot{msgs: l.msgs, rounds: l.rounds}
}

// Cost is the resource consumption of one operation.
type Cost struct {
	Messages int64
	Rounds   int64
	ByClass  map[Class]int64
}

// Since returns the cost accumulated after the given snapshot was taken.
func (l *Ledger) Since(s Snapshot) Cost {
	c := Cost{
		Rounds:  l.rounds - s.rounds,
		ByClass: make(map[Class]int64, int(numClasses)),
	}
	for i := Class(0); i < numClasses; i++ {
		d := l.msgs[i] - s.msgs[i]
		if d != 0 {
			c.ByClass[i] = d
		}
		c.Messages += d
	}
	return c
}

// CostVec is Cost with a dense per-class vector instead of a map: the
// value form allocates nothing, so per-operation cost sampling inside hot
// simulation loops stays garbage-free. Classes with zero delta simply hold
// zero (the map form omits them).
type CostVec struct {
	Messages int64
	Rounds   int64
	ByClass  [numClasses]int64
}

// SinceVec is Since in the allocation-free vector form.
func (l *Ledger) SinceVec(s Snapshot) CostVec {
	c := CostVec{Rounds: l.rounds - s.rounds}
	for i := Class(0); i < numClasses; i++ {
		d := l.msgs[i] - s.msgs[i]
		c.ByClass[i] = d
		c.Messages += d
	}
	return c
}

// String renders the cost compactly for logs and tables.
func (c Cost) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%d rounds=%d", c.Messages, c.Rounds)
	if len(c.ByClass) == 0 {
		return b.String()
	}
	keys := make([]Class, 0, len(c.ByClass))
	for k := range c.ByClass {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b.WriteString(" [")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%v=%d", k, c.ByClass[k])
	}
	b.WriteString("]")
	return b.String()
}
