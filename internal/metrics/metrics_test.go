package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLedgerChargeAndSnapshot(t *testing.T) {
	var l Ledger
	l.Charge(ClassWalk, 10)
	l.Charge(ClassRandNum, 5)
	l.AddRounds(3)
	snap := l.Snapshot()
	l.Charge(ClassWalk, 7)
	l.AddRounds(2)
	cost := l.Since(snap)
	if cost.Messages != 7 {
		t.Errorf("delta messages = %d, want 7", cost.Messages)
	}
	if cost.Rounds != 2 {
		t.Errorf("delta rounds = %d, want 2", cost.Rounds)
	}
	if cost.ByClass[ClassWalk] != 7 {
		t.Errorf("walk delta = %d, want 7", cost.ByClass[ClassWalk])
	}
	if _, ok := cost.ByClass[ClassRandNum]; ok {
		t.Error("unchanged class appears in delta")
	}
	if l.Messages() != 22 || l.Rounds() != 5 {
		t.Errorf("totals = %d/%d, want 22/5", l.Messages(), l.Rounds())
	}
	if l.MessagesBy(ClassRandNum) != 5 {
		t.Errorf("MessagesBy(randnum) = %d", l.MessagesBy(ClassRandNum))
	}
}

func TestLedgerNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	var l Ledger
	l.Charge(ClassWalk, -1)
}

func TestCostString(t *testing.T) {
	var l Ledger
	s := l.Snapshot()
	l.Charge(ClassExchange, 4)
	l.AddRounds(1)
	if got := l.Since(s).String(); got == "" {
		t.Error("empty cost string")
	}
}

// TestEmptyAccumulatorContract pins the shared empty-state contract:
// Mean/Min/Max/Quantile answer NaN before the first observation — never a
// silent, plausible-looking 0 — while counts are 0 and Welford's variance
// keeps its conventional 0 for n < 2.
func TestEmptyAccumulatorContract(t *testing.T) {
	var w Welford
	var s Sample
	for name, v := range map[string]float64{
		"Welford.Mean": w.Mean(), "Welford.Min": w.Min(), "Welford.Max": w.Max(),
		"Sample.Mean": s.Mean(), "Sample.Quantile": s.Quantile(0.5), "Sample.Max": s.Max(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
	if w.N() != 0 || s.N() != 0 {
		t.Errorf("empty counts: welford %d sample %d", w.N(), s.N())
	}
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Errorf("empty variance/sd = %v/%v, want 0 (documented convention)", w.Variance(), w.StdDev())
	}
	// One observation: extremes and mean are that observation, spread 0.
	w.Add(5)
	s.Add(5)
	if w.Mean() != 5 || w.Min() != 5 || w.Max() != 5 || w.Variance() != 0 {
		t.Errorf("single-observation welford: %v", w.String())
	}
	if s.Mean() != 5 || s.Quantile(0.5) != 5 || s.Max() != 5 {
		t.Errorf("single-observation sample: mean %v p50 %v max %v", s.Mean(), s.Quantile(0.5), s.Max())
	}
}

// TestSampleMergeConcatenates: exact-mode merge is concatenation, so a
// sharded accumulation answers exactly what a single stream would.
func TestSampleMergeConcatenates(t *testing.T) {
	var a, b, single Sample
	for i := 1; i <= 50; i++ {
		single.Add(float64(i))
		if i <= 25 {
			a.Add(float64(i))
		} else {
			b.Add(float64(i))
		}
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.N() != single.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), single.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got, want := a.Quantile(q), single.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if a.Mean() != single.Mean() {
		t.Errorf("Mean = %v, want %v", a.Mean(), single.Mean())
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(clean)-1)
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Variance()-wantVar) < 1e-6*(1+wantVar)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Mean() != 50.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestTVDistance(t *testing.T) {
	cases := []struct {
		p, q []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{0, 1}, 1},
		{[]float64{1, 1}, []float64{1, 1}, 0},
		{[]float64{2, 2}, []float64{1, 1}, 0}, // normalization
		{[]float64{0.5, 0.5}, []float64{0.75, 0.25}, 0.25},
	}
	for _, c := range cases {
		if got := TVDistance(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TV(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestTVDistanceSymmetryProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := 0; i < n; i++ {
			p[i] = float64(raw[i]) + 1
			q[i] = float64(raw[n+i]) + 1
			sp += p[i]
			sq += q[i]
		}
		d1 := TVDistance(p, q)
		d2 := TVDistance(q, p)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquare(t *testing.T) {
	obs := []int64{25, 25, 25, 25}
	exp := []float64{1, 1, 1, 1}
	if got := ChiSquare(obs, exp); got != 0 {
		t.Errorf("uniform chi-square = %v, want 0", got)
	}
	obs2 := []int64{50, 0}
	exp2 := []float64{0.5, 0.5}
	if got := ChiSquare(obs2, exp2); math.Abs(got-50) > 1e-9 {
		t.Errorf("chi-square = %v, want 50", got)
	}
	if got := ChiSquare([]int64{1, 1}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("impossible cell should give +Inf, got %v", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit := FitLinear(x, y)
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v on exact data", fit.R2)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 x^2.5
	var x, y []float64
	for _, v := range []float64{2, 4, 8, 16, 32} {
		x = append(x, v)
		y = append(y, 3*math.Pow(v, 2.5))
	}
	fit := FitPowerLaw(x, y)
	if math.Abs(fit.Slope-2.5) > 1e-9 {
		t.Errorf("power-law exponent = %v, want 2.5", fit.Slope)
	}
}

func TestFitPolylog(t *testing.T) {
	// y = 5 (log2 x)^3
	var x, y []float64
	for _, v := range []float64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		x = append(x, v)
		y = append(y, 5*math.Pow(math.Log2(v), 3))
	}
	fit := FitPolylog(x, y)
	if math.Abs(fit.Slope-3) > 1e-9 {
		t.Errorf("polylog exponent = %v, want 3", fit.Slope)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v on exact polylog data", fit.R2)
	}
}

func TestClassString(t *testing.T) {
	if ClassWalk.String() != "walk" {
		t.Errorf("ClassWalk = %q", ClassWalk.String())
	}
	if Class(99).String() == "" {
		t.Error("out-of-range class produced empty string")
	}
}
