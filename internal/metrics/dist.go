package metrics

// dist.go implements Dist, the cost-sampling accumulator behind the
// harness's ExactSamples switch: one observation stream summarized either
// exactly (a retained-history Sample — today's semantics, byte-identical
// tables, O(N) memory) or by sketch (a fixed-memory Digest — the default,
// which is what lets -full sweeps at N >= 2^16 fit in memory). Both modes
// expose the same N/Mean/Quantile/Max surface and both Merge in submission
// order, so the choice never leaks into the plumbing — only into memory
// and into quantile columns (means, extremes and counts are exact in both
// modes).

import "fmt"

// Dist accumulates one observation series exactly or by sketch. The zero
// value is an empty SKETCH-mode accumulator (the harness default);
// NewDist(true) selects exact mode. Dist is not safe for concurrent use —
// give each goroutine its own and Merge in a deterministic order.
type Dist struct {
	exact  bool
	sample Sample
	digest Digest
}

// NewDist returns an empty accumulator: exact mode retains the full
// observation history (Sample), sketch mode stays fixed-memory (Digest).
func NewDist(exact bool) Dist { return Dist{exact: exact} }

// Exact reports which mode the accumulator is in.
func (d *Dist) Exact() bool { return d.exact }

// Add folds one observation in.
func (d *Dist) Add(x float64) {
	if d.exact {
		d.sample.Add(x)
	} else {
		d.digest.Add(x)
	}
}

// Merge folds another accumulator's state into this one without mutating
// it. Exact-mode merge concatenates histories, so merged quantiles always
// equal single-stream accumulation (byte-identity holds for sources not
// yet queried — see Sample.Merge); sketch-mode merge is deterministic
// (and byte-identical while the source is raw — see Digest.Merge). Modes
// must match: silently folding a sketch into an exact history would fake
// precision the data no longer has.
func (d *Dist) Merge(o *Dist) {
	if o == nil {
		return
	}
	if d.exact != o.exact {
		panic(fmt.Sprintf("metrics: merging %s-mode Dist into %s-mode Dist",
			modeName(o.exact), modeName(d.exact)))
	}
	if d.exact {
		d.sample.Merge(&o.sample)
	} else {
		d.digest.Merge(&o.digest)
	}
}

func modeName(exact bool) string {
	if exact {
		return "exact"
	}
	return "sketch"
}

// N returns the observation count.
func (d *Dist) N() int64 {
	if d.exact {
		return int64(d.sample.N())
	}
	return d.digest.N()
}

// Mean returns the mean — exact in both modes (NaN when empty).
func (d *Dist) Mean() float64 {
	if d.exact {
		return d.sample.Mean()
	}
	return d.digest.Mean()
}

// Quantile returns the q-quantile (0 <= q <= 1, NaN when empty): exact in
// exact mode, rank-error bounded in sketch mode (oracle_test.go).
func (d *Dist) Quantile(q float64) float64 {
	if d.exact {
		return d.sample.Quantile(q)
	}
	return d.digest.Quantile(q)
}

// Max returns the maximum observation — exact in both modes (NaN when
// empty).
func (d *Dist) Max() float64 {
	if d.exact {
		return d.sample.Max()
	}
	return d.digest.Max()
}

// Footprint reports the accumulator's current memory footprint in bytes:
// O(N) in exact mode, O(compression) in sketch mode.
func (d *Dist) Footprint() int {
	if d.exact {
		return d.sample.Footprint()
	}
	return d.digest.Footprint()
}

// String summarizes the accumulator for logs.
func (d *Dist) String() string {
	return fmt.Sprintf("mode=%s n=%d mean=%.3g p50=%.3g p95=%.3g max=%.3g",
		modeName(d.exact), d.N(), d.Mean(), d.Quantile(0.5), d.Quantile(0.95), d.Max())
}
