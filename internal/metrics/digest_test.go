package metrics

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"nowover/internal/xrand"
)

// TestDigestMergeRawShardsByteIdentical pins the strongest form of the
// merge-equivalence contract: folding sub-digests that have NOT yet
// compacted (fewer observations than the compaction threshold) replays
// their raw observations in arrival order, so merging them in submission
// order leaves the accumulator bit-for-bit identical to single-stream
// accumulation — including every intermediate compaction the combined
// stream triggers.
func TestDigestMergeRawShardsByteIdentical(t *testing.T) {
	r := xrand.New(7)
	const shardLen = 400 // below the threshold (5*compression = 500)
	const shards = 8     // combined stream compacts several times
	stream := make([]float64, 0, shards*shardLen)
	subs := make([]*Digest, shards)
	for s := 0; s < shards; s++ {
		subs[s] = NewDigest(0)
		for i := 0; i < shardLen; i++ {
			x := r.Exp(1) * 1000
			stream = append(stream, x)
			subs[s].Add(x)
		}
		if got := len(subs[s].centroids); got != 0 {
			t.Fatalf("shard %d compacted (%d centroids); shrink shardLen", s, got)
		}
	}
	single := NewDigest(0)
	for _, x := range stream {
		single.Add(x)
	}
	merged := NewDigest(0)
	for _, sub := range subs {
		merged.Merge(sub)
	}
	if !reflect.DeepEqual(single, merged) {
		t.Errorf("merged raw shards diverge from single-stream state:\nsingle: %+v\nmerged: %+v", single, merged)
	}
}

// TestDigestMergeDeterministic: the same sub-digests merged in the same
// submission order always yield bit-identical state — the property that
// keeps rendered tables byte-identical at any parallelism. Compacted
// sources exercise the centroid-folding path.
func TestDigestMergeDeterministic(t *testing.T) {
	build := func() *Digest {
		r := xrand.New(99)
		subs := make([]*Digest, 6)
		for s := range subs {
			subs[s] = NewDigest(0)
			for i := 0; i < 2000; i++ { // > threshold: each shard compacts
				subs[s].Add(math.Pow(1-r.Float64(), -0.8))
			}
		}
		out := NewDigest(0)
		for _, sub := range subs {
			out.Merge(sub)
		}
		return out
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical merge sequences produced different sketch state")
	}
}

// TestDigestMergeKeepsRankBounds: folding compacted shards is an
// approximation of the concatenated stream, but the rank-error envelope
// must survive the merge.
func TestDigestMergeKeepsRankBounds(t *testing.T) {
	r := xrand.New(13)
	var all []float64
	merged := NewDigest(0)
	for s := 0; s < 10; s++ {
		sub := NewDigest(0)
		for i := 0; i < 5000; i++ {
			x := math.Pow(1-r.Float64(), -1/1.5)
			all = append(all, x)
			sub.Add(x)
		}
		merged.Merge(sub)
	}
	sort.Float64s(all)
	for _, qe := range []struct{ q, eps float64 }{{0.5, 0.03}, {0.9, 0.02}, {0.99, 0.01}} {
		checkQuantileRank(t, all, merged, qe.q, qe.eps)
	}
	if merged.N() != int64(len(all)) {
		t.Errorf("merged N = %d, want %d", merged.N(), len(all))
	}
	if merged.Max() != all[len(all)-1] {
		t.Errorf("merged Max = %v, want %v", merged.Max(), all[len(all)-1])
	}
}

// TestDigestMergeOrderIsPartOfTheContract documents WHY reducers must fix
// a submission order: merging compacted sketches is deterministic but not
// commutative, so a reducer that let goroutine scheduling pick the order
// would produce run-to-run different tables. (If this test ever finds the
// two orders bit-identical, the guard is vacuous — loosen the inputs.)
func TestDigestMergeOrderIsPartOfTheContract(t *testing.T) {
	mk := func(seed uint64, scale float64) *Digest {
		r := xrand.New(seed)
		d := NewDigest(0)
		for i := 0; i < 3000; i++ {
			d.Add(scale * r.Float64())
		}
		return d
	}
	ab := NewDigest(0)
	ab.Merge(mk(1, 1))
	ab.Merge(mk(2, 1e6))
	ba := NewDigest(0)
	ba.Merge(mk(2, 1e6))
	ba.Merge(mk(1, 1))
	if reflect.DeepEqual(ab, ba) {
		t.Skip("orders happened to coincide; the determinism tests above still hold")
	}
	// Both orders still honor the exact aggregates.
	if ab.N() != ba.N() || ab.Max() != ba.Max() || math.Abs(ab.Mean()-ba.Mean()) > 1e-6*ab.Mean() {
		t.Errorf("exact aggregates diverged across merge orders: %v vs %v", ab, ba)
	}
}

// TestDigestMergeChainKeepsExactSum is the regression for a subtle
// raw-replay hazard: merging a compacted sketch into an EMPTY one leaves
// the target with no centroids but weight>1 entries in its buffer; a
// later merge of that target must not mistake it for raw observations
// and recompute the sum as mean*weight (which is no longer the exact sum
// of the original stream). The whole merge chain must preserve Mean/sum
// bit-exactly.
func TestDigestMergeChainKeepsExactSum(t *testing.T) {
	r := xrand.New(31)
	d1 := NewDigest(0)
	for i := 0; i < 2000; i++ { // > threshold: d1 compacts
		d1.Add(r.Float64() * 100)
	}
	mid := NewDigest(0) // empty target: d1's centroids land in mid's buffer
	mid.Merge(d1)
	if len(mid.centroids) != 0 {
		t.Fatalf("setup: mid compacted (%d centroids); the hazard path needs a buffered-only target", len(mid.centroids))
	}
	final := NewDigest(0)
	final.Merge(mid)
	if final.sum != d1.sum {
		t.Errorf("sum drifted through the merge chain: %v vs %v (diff %g)",
			final.sum, d1.sum, final.sum-d1.sum)
	}
	if final.Mean() != d1.Mean() || final.N() != d1.N() || final.Max() != d1.Max() {
		t.Errorf("exact aggregates drifted: mean %v/%v n %d/%d max %v/%v",
			final.Mean(), d1.Mean(), final.N(), d1.N(), final.Max(), d1.Max())
	}
}

// TestDigestSelfMerge: d.Merge(d) doubles the stream instead of
// corrupting the arrays it iterates.
func TestDigestSelfMerge(t *testing.T) {
	r := xrand.New(41)
	d := NewDigest(0)
	var sum float64
	for i := 0; i < 1300; i++ { // compacted centroids AND a non-empty buffer
		x := r.Float64() * 10
		d.Add(x)
		sum += x
	}
	max := d.Max()
	d.Merge(d)
	if d.N() != 2600 {
		t.Errorf("self-merge N = %d, want 2600", d.N())
	}
	if math.Abs(d.sum-2*sum) > 1e-9*sum {
		t.Errorf("self-merge sum = %v, want %v", d.sum, 2*sum)
	}
	if d.Max() != max {
		t.Errorf("self-merge max = %v, want %v", d.Max(), max)
	}
	if c := d.Centroids(); c > 2*DigestCompression {
		t.Errorf("self-merge centroid count %d exceeds bound", c)
	}
}

// TestDigestEmptyContract: empty sketches answer NaN, never a plausible 0.
func TestDigestEmptyContract(t *testing.T) {
	d := NewDigest(0)
	for name, got := range map[string]float64{
		"Mean":     d.Mean(),
		"Min":      d.Min(),
		"Max":      d.Max(),
		"Quantile": d.Quantile(0.5),
	} {
		if !math.IsNaN(got) {
			t.Errorf("empty Digest.%s = %v, want NaN", name, got)
		}
	}
	if d.N() != 0 {
		t.Errorf("empty N = %d", d.N())
	}
	var zero Digest // zero value adopts the default compression on first use
	zero.Add(3)
	if zero.Compression() != DigestCompression {
		t.Errorf("zero-value compression = %v, want %v", zero.Compression(), DigestCompression)
	}
	if zero.Quantile(0.5) != 3 {
		t.Errorf("single-observation p50 = %v, want 3", zero.Quantile(0.5))
	}
}

// TestDigestRejectsNonFinite: NaN/Inf observations must panic loudly
// instead of silently poisoning every later quantile.
func TestDigestRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", bad)
				}
			}()
			NewDigest(0).Add(bad)
		}()
	}
}

// TestDigestFootprintBounded is the memory guard behind the acceptance
// criterion "peak accumulator memory O(1) per cell": a million
// observations must not grow the sketch past a few kilobytes, while the
// exact oracle's history grows linearly without bound.
func TestDigestFootprintBounded(t *testing.T) {
	n := 200000
	if !testing.Short() {
		n = 1000000
	}
	r := xrand.New(5)
	d := NewDigest(0)
	peak := 0
	for i := 0; i < n; i++ {
		d.Add(r.Exp(1) * float64(i%1000+1))
		if f := d.Footprint(); f > peak {
			peak = f
		}
	}
	// 5*compression buffered centroids + compacted list + struct: ~20KB
	// at compression 100. 64KB leaves slack without letting O(N) sneak by
	// (the exact history would be 8*n = 1.6-8 MB here).
	if peak > 64<<10 {
		t.Errorf("peak sketch footprint %dB at n=%d; want O(compression), <= 64KB", peak, n)
	}
	if d.N() != int64(n) {
		t.Errorf("N = %d, want %d", d.N(), n)
	}
}

// TestDigestQueriesDoNotChangeResults: querying mid-stream compacts the
// buffer early, which is allowed to change internal state but must keep
// every exact aggregate and the rank-error envelope intact.
func TestDigestQueriesDoNotChangeResults(t *testing.T) {
	r := xrand.New(21)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = r.Exp(1) * 100
	}
	quiet, chatty := NewDigest(0), NewDigest(0)
	for i, x := range xs {
		quiet.Add(x)
		chatty.Add(x)
		if i%777 == 0 {
			_ = chatty.Quantile(0.5) // mid-stream query compacts early
		}
	}
	if quiet.N() != chatty.N() || quiet.Mean() != chatty.Mean() ||
		quiet.Min() != chatty.Min() || quiet.Max() != chatty.Max() {
		t.Error("mid-stream queries changed exact aggregates")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		checkQuantileRank(t, sorted, chatty, q, 0.03)
	}
}
