package metrics

// FuzzDigest drives an add/shard/merge/checkpoint script decoded from the
// fuzz input against the exact Sample oracle: at every checkpoint the
// shards built so far merge in submission order and the merged sketch's
// p50/p90/p99 must sit inside a conservative rank-error envelope of the
// oracle, with N, Max and Quantile(0) exact. It is the adversarial
// counterpart of oracle_test.go — the fuzzer owns the values AND the
// shard/merge boundaries, hunting compaction-schedule edge cases (ties,
// constant runs, shard splits mid-buffer) no fixed distribution covers.
//
// Wired into CI's fuzz-smoke job alongside FuzzWorldOps: corpus replay on
// every run, a fuzzing budget on the concurrency matrix.

import (
	"math"
	"sort"
	"testing"
)

// fuzzMaxOps caps the script length so a pathological input cannot stall
// the fuzzer on one case.
const fuzzMaxOps = 1 << 12

func FuzzDigest(f *testing.F) {
	f.Add([]byte{})
	// A constant run with a checkpoint.
	constant := []byte{}
	for i := 0; i < 40; i++ {
		constant = append(constant, 0, 0, 42)
	}
	f.Add(append(constant, 3, 0, 0))
	// Mixed magnitudes, a shard split, then a checkpoint.
	f.Add([]byte{
		0, 0, 1, 0, 0, 2, 1, 0x10, 0, 0, 0xFF, 0xFF,
		2, 0, 0,
		1, 0xFF, 0xFF, 0, 0, 7,
		3, 0, 0,
	})
	// Ascending ramp split across three shards.
	ramp := []byte{}
	for i := 0; i < 60; i++ {
		ramp = append(ramp, 0, byte(i>>4), byte(i<<4))
		if i%20 == 19 {
			ramp = append(ramp, 2, 0, 0)
		}
	}
	f.Add(append(ramp, 3, 0, 0))

	f.Fuzz(func(t *testing.T, script []byte) {
		var oracle []float64
		shards := []*Digest{NewDigest(0)}
		cur := func() *Digest { return shards[len(shards)-1] }

		check := func() {
			if len(oracle) == 0 {
				return
			}
			merged := NewDigest(0)
			for _, s := range shards {
				merged.Merge(s)
			}
			sorted := append([]float64(nil), oracle...)
			sort.Float64s(sorted)
			n := float64(len(sorted))
			if merged.N() != int64(len(sorted)) {
				t.Fatalf("N = %d, oracle %d", merged.N(), len(sorted))
			}
			if merged.Max() != sorted[len(sorted)-1] {
				t.Fatalf("Max = %v, oracle %v", merged.Max(), sorted[len(sorted)-1])
			}
			if merged.Quantile(0) != sorted[0] {
				t.Fatalf("Quantile(0) = %v, oracle min %v", merged.Quantile(0), sorted[0])
			}
			for _, q := range []float64{0.5, 0.9, 0.99} {
				est := merged.Quantile(q)
				lo := sort.SearchFloat64s(sorted, est)
				hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > est })
				target := q * n
				slack := 0.05*n + 2 // worst-case envelope incl. merge degradation
				if target < float64(lo)-slack || target > float64(hi)+slack {
					t.Fatalf("q=%v: estimate %v at ranks [%d,%d] of %d, target %.1f",
						q, est, lo, hi, len(sorted), target)
				}
			}
		}

		ops := len(script) / 3
		if ops > fuzzMaxOps {
			ops = fuzzMaxOps
		}
		for i := 0; i < ops; i++ {
			op := script[3*i] & 3
			val := uint16(script[3*i+1])<<8 | uint16(script[3*i+2])
			switch op {
			case 0: // small-magnitude observation
				x := float64(val)
				oracle = append(oracle, x)
				cur().Add(x)
			case 1: // wide-magnitude observation: mantissa * 2^exp
				x := math.Ldexp(float64(val&0x0FFF)+1, int(val>>12))
				oracle = append(oracle, x)
				cur().Add(x)
			case 2: // split: start a new shard
				shards = append(shards, NewDigest(0))
			case 3: // checkpoint: merge all shards in order, verify vs oracle
				check()
			}
		}
		check()
	})
}
