package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, rendered as `file:line: [rule] message`.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one determinism-contract rule.
type Analyzer struct {
	// Name is the rule identifier printed in diagnostics, e.g. "map-order".
	Name string
	// Key is the suppression keyword accepted after //nowlint:, e.g.
	// "ordered". The full Name is accepted too.
	Key string
	// Doc is a one-line description for -rules listings and the README.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Pkg   *Package
	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type-checker did not record
// one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object (use or definition).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// Analyzers returns the full determinism-contract suite in reporting
// order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		RNGDiscipline,
		FloatFoldOrder,
		ShardLockOrder,
		ClassExhaustive,
	}
}

// AnalyzerByKey resolves a suppression keyword (Key or Name) to its
// analyzer, or nil.
func AnalyzerByKey(key string, analyzers []*Analyzer) *Analyzer {
	for _, a := range analyzers {
		if a.Key == key || a.Name == key {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages, applies //nowlint
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppressions (missing justification, unknown rule) are
// themselves diagnostics under the "suppression" rule, so `nowlint` exits
// nonzero on an unjustified silence.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, rule: a.Name, diags: &raw}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	sups := make(map[string]*fileSuppressions)
	for _, pkg := range pkgs {
		sup, supDiags := collectSuppressions(pkg, analyzers)
		out = append(out, supDiags...)
		for file, fs := range sup {
			sups[file] = fs
		}
	}
	for _, d := range raw {
		if fs, ok := sups[d.Pos.Filename]; ok && fs.suppresses(d.Rule, d.Pos.Line) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}
