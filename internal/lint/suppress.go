package lint

import (
	"strings"
)

// Suppression comments silence one rule at one site, and every one must
// carry a written justification:
//
//	//nowlint:ordered cluster walk only folds commutative integer counters
//	//nowlint:file:rng this command reports wall-clock timings to the user
//
// The first form, on its own line or trailing the flagged line, suppresses
// the rule on that line and the next (so it can sit directly above a
// `for ... range` statement). The second form, anywhere in the file,
// suppresses the rule for the whole file. The keyword after the colon is
// the rule's suppression key (e.g. "ordered" for map-order) or its full
// name. A suppression with no justification text, or naming no known
// rule, is itself reported under the "suppression" rule.
const suppressionPrefix = "//nowlint:"

// fileSuppressions records where each rule is silenced within one file.
type fileSuppressions struct {
	wholeFile map[string]bool         // rule name -> suppressed everywhere
	lines     map[int]map[string]bool // line -> rule names suppressed there
}

// suppresses reports whether rule is silenced at the given line. A
// line-scoped comment covers its own line and the one after it.
func (fs *fileSuppressions) suppresses(rule string, line int) bool {
	if fs.wholeFile[rule] {
		return true
	}
	if fs.lines[line][rule] || fs.lines[line-1][rule] {
		return true
	}
	return false
}

// collectSuppressions parses every //nowlint: comment in the package. It
// returns the per-file suppression tables plus diagnostics for malformed
// suppressions (missing justification or unknown rule key).
func collectSuppressions(pkg *Package, analyzers []*Analyzer) (map[string]*fileSuppressions, []Diagnostic) {
	out := make(map[string]*fileSuppressions)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, suppressionPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, suppressionPrefix)
				fileScoped := false
				if strings.HasPrefix(rest, "file:") {
					fileScoped = true
					rest = strings.TrimPrefix(rest, "file:")
				}
				key, reason, _ := strings.Cut(rest, " ")
				key = strings.TrimSpace(key)
				reason = strings.TrimSpace(reason)
				a := AnalyzerByKey(key, analyzers)
				if a == nil {
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Rule: "suppression",
						Msg:  "unknown rule key \"" + key + "\" in //nowlint comment",
					})
					continue
				}
				if reason == "" {
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Rule: "suppression",
						Msg:  "suppression of [" + a.Name + "] has no justification; write //nowlint:" + key + " <why this site cannot break determinism>",
					})
					continue
				}
				fs := out[pos.Filename]
				if fs == nil {
					fs = &fileSuppressions{
						wholeFile: make(map[string]bool),
						lines:     make(map[int]map[string]bool),
					}
					out[pos.Filename] = fs
				}
				if fileScoped {
					fs.wholeFile[a.Name] = true
				} else {
					if fs.lines[pos.Line] == nil {
						fs.lines[pos.Line] = make(map[string]bool)
					}
					fs.lines[pos.Line][a.Name] = true
				}
			}
		}
	}
	return out, diags
}
