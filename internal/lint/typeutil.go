package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Import paths of the packages whose types anchor the rules.
const (
	metricsPath = "nowover/internal/metrics"
	xrandPath   = "nowover/internal/xrand"
	corePath    = "nowover/internal/core"
)

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedAs reports whether t (or *t) is the named type path.name.
func namedAs(t types.Type, path, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isChan reports whether t's underlying type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// baseIdent walks selector/index/star/paren chains down to the root
// identifier: w.stats.MaxByzFractionEver -> w, a[i] -> a.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// pkgFuncCall resolves a call of the form pkg.Fn where pkg is an imported
// package name, returning (import path, function name, true).
func pkgFuncCall(p *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCall resolves a call of the form recv.M(...), returning the
// receiver expression, its type and the method name. Package-level
// function calls return ok=false.
func methodCall(p *Pass, call *ast.CallExpr) (recv ast.Expr, recvType types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	s, isMethod := p.Pkg.Info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return nil, nil, "", false
	}
	return sel.X, s.Recv(), sel.Sel.Name, true
}

// lookupConstInt finds an integer constant by name in a package visible
// from the pass (the package itself or one of its direct imports).
func lookupConstInt(p *Pass, path, name string) (int64, bool) {
	var scope *types.Scope
	if p.Pkg.Types.Path() == path {
		scope = p.Pkg.Types.Scope()
	} else {
		for _, imp := range p.Pkg.Types.Imports() {
			if imp.Path() == path {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return 0, false
	}
	c, ok := scope.Lookup(name).(*types.Const)
	if !ok || c.Val() == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(c.Val()))
}
