// Package lint is the determinism-contract static-analysis suite behind
// cmd/nowlint.
//
// The repo's load-bearing invariant is that simulation output is a pure
// function of the seed: byte-identical tables and ledgers at any
// parallelism or shard count. That contract is enforced dynamically by the
// lockstep/fuzz layers, but a nondeterminism source (an unsorted map walk
// feeding output, an unseeded clock read, an order-sensitive float fold)
// only trips those suites once it fires. The analyzers here catch the
// known hazard classes at go-vet time instead, by parsing and
// type-checking every package in the module with nothing but the standard
// library: go/parser + go/ast + go/types over `go list -json` package
// metadata, with stdlib imports satisfied from the build cache's export
// data (`go list -export`). Zero module dependencies, so tier-1 stays
// hermetic.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage mirrors the subset of `go list -json` metadata the loader
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *listError
}

type listError struct {
	Err string
}

// Package is one parsed and type-checked module package, ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	FilePaths  []string
	Types      *types.Package
	Info       *types.Info
}

// Loader loads module packages (and their in-module import closure) via
// the go tool's package metadata and type-checks them in dependency
// order. Standard-library imports are resolved from compiled export data
// so the loader never needs to type-check the stdlib from source.
type Loader struct {
	fset      *token.FileSet
	pkgs      map[string]*Package // type-checked module packages by import path
	exports   map[string]string   // stdlib import path -> export data file
	stdlib    types.Importer
	moduleDir string
}

// Import implements types.Importer: module packages come from the loader's
// own type-checked cache, everything else from gc export data.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.pkgs[path]; ok {
		return p.Types, nil
	}
	return ld.stdlib.Import(path)
}

// Load lists patterns (plus their dependencies) in moduleDir, then parses
// and type-checks every non-stdlib package found, returning them sorted by
// import path.
func Load(moduleDir string, patterns ...string) ([]*Package, *Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, nil, err
	}

	ld := &Loader{
		fset:      token.NewFileSet(),
		pkgs:      make(map[string]*Package),
		exports:   make(map[string]string),
		moduleDir: moduleDir,
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := ld.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})

	var module []*listPackage
	byPath := make(map[string]*listPackage)
	for _, m := range metas {
		if m.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", m.ImportPath, m.Error.Err)
		}
		if m.Standard {
			ld.exports[m.ImportPath] = m.Export
			continue
		}
		module = append(module, m)
		byPath[m.ImportPath] = m
	}

	// Type-check in dependency order so module imports resolve from the
	// cache. The module's import graph is acyclic (the compiler enforces
	// it), so a postorder DFS is a topological sort.
	var (
		out   []*Package
		visit func(m *listPackage) error
		state = make(map[string]int) // 1 = in progress, 2 = done
	)
	visit = func(m *listPackage) error {
		switch state[m.ImportPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", m.ImportPath)
		case 2:
			return nil
		}
		state[m.ImportPath] = 1
		for _, imp := range m.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		pkg, err := ld.check(m.ImportPath, m.Dir, absFiles(m.Dir, m.GoFiles))
		if err != nil {
			return err
		}
		ld.pkgs[m.ImportPath] = pkg
		out = append(out, pkg)
		state[m.ImportPath] = 2
		return nil
	}
	for _, m := range module {
		if err := visit(m); err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, ld, nil
}

// exportFile resolves a stdlib import path to its compiled export data,
// listing it on demand when it was not in the original patterns' closure
// (fixtures may import stdlib packages the module itself never uses).
func (ld *Loader) exportFile(path string) (string, error) {
	if f, ok := ld.exports[path]; ok && f != "" {
		return f, nil
	}
	metas, err := goList(ld.moduleDir, []string{path})
	if err != nil {
		return "", fmt.Errorf("lint: no export data for %q: %w", path, err)
	}
	for _, m := range metas {
		if m.Standard && m.Export != "" {
			ld.exports[m.ImportPath] = m.Export
		}
	}
	f, ok := ld.exports[path]
	if !ok || f == "" {
		return "", fmt.Errorf("lint: no export data for %q", path)
	}
	return f, nil
}

// LoadDir parses and type-checks one out-of-module directory of Go files
// (a lint fixture) under the given fake import path, resolving its
// imports against the loader's module cache and the stdlib. The package is
// not added to the cache, so a fixture may shadow a real module path (the
// shard-lock-order fixtures fake nowover/internal/core).
func (ld *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	return ld.check(importPath, dir, files)
}

// check parses files and type-checks them as one package.
func (ld *Loader) check(importPath, dir string, files []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       ld.fset,
		FilePaths:  files,
	}
	for _, f := range files {
		syn, err := parser.ParseFile(ld.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", f, err)
		}
		pkg.Files = append(pkg.Files, syn)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(importPath, ld.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// goList shells out to `go list -export -json -deps` and decodes the JSON
// stream. -export records each stdlib dependency's compiled export data
// path (compiling into the build cache on demand), which is what lets the
// type-checker resolve stdlib imports without a source walk.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listPackage
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		out = append(out, &m)
	}
	return out, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}
