package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps whose bodies observe the
// iteration order: appending to an outer slice, writing output, merging
// order-sensitive accumulators (ledgers/digests), drawing from an RNG,
// assigning floats to outer state, or returning a loop-dependent value.
// Go randomizes map iteration per process, so any such site makes output
// a function of the hash seed instead of the simulation seed — the exact
// hazard the determinism contract (byte-identical tables at any
// parallelism) forbids.
//
// The collect-then-sort idiom is recognized and allowed: appending keys
// to a slice that is passed to a sort/slices call after the loop does not
// observe the order. Anything else needs a sorted key walk or a
// //nowlint:ordered <justification>.
var MapOrder = &Analyzer{
	Name: "map-order",
	Key:  "ordered",
	Doc:  "range over a map must not feed order-sensitive sinks (slices, output, ledgers/digests, RNGs, float state, early returns)",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		sortCalls := collectSortCalls(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMap(p.TypeOf(rs.X)) {
				return true
			}
			if sink := findOrderSink(p, rs, sortCalls); sink != "" {
				p.Reportf(rs.For, "map iteration order is observable: the body of `range %s` %s; iterate a sorted key slice or annotate //nowlint:ordered <why order cannot matter>",
					types.ExprString(rs.X), sink)
			}
			return true
		})
	}
}

// collectSortCalls records, for every object passed to a sort.* or
// slices.* call in the file, the latest position of such a call. An
// append inside a map range is harmless when the slice is sorted after
// the loop.
func collectSortCalls(p *Pass, f *ast.File) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, _, ok := pkgFuncCall(p, call)
		if !ok || (path != "sort" && path != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id := baseIdent(arg); id != nil {
				if obj := p.ObjectOf(id); obj != nil {
					if call.End() > out[obj] {
						out[obj] = call.End()
					}
				}
			}
		}
		return true
	})
	return out
}

// findOrderSink returns a description of the first order-sensitive sink in
// the range body, or "" if the body is order-blind.
func findOrderSink(p *Pass, rs *ast.RangeStmt, sortCalls map[types.Object]token.Pos) string {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if s := callSink(p, rs, x, sortCalls); s != "" {
				sink = s
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range x.Lhs {
				if !isFloat(p.TypeOf(lhs)) {
					continue
				}
				id := baseIdent(lhs)
				if id == nil {
					continue
				}
				obj := p.ObjectOf(id)
				if obj != nil && !declaredWithin(obj, rs.Body) {
					sink = "assigns the floating-point value " + types.ExprString(lhs) + " declared outside the loop (float folds and max-updates are evaluated in iteration order)"
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if isLoopConstant(p, res) {
					continue
				}
				sink = "returns a loop-dependent value (which key triggers the return depends on iteration order)"
				return false
			}
		}
		return true
	})
	return sink
}

// callSink classifies a call expression inside a map-range body.
func callSink(p *Pass, rs *ast.RangeStmt, call *ast.CallExpr, sortCalls map[types.Object]token.Pos) string {
	// Builtin append to a slice declared outside the loop.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			target := baseIdent(call.Args[0])
			if target != nil {
				obj := p.ObjectOf(target)
				if obj != nil && !declaredWithin(obj, rs.Body) {
					if pos, sorted := sortCalls[obj]; sorted && pos > rs.End() {
						return "" // collect-then-sort idiom
					}
					return "appends to the slice " + target.Name + " declared outside the loop"
				}
			}
		}
		return ""
	}

	// Package-level calls: fmt printing, xrand helpers.
	if path, name, ok := pkgFuncCall(p, call); ok {
		if path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			return "writes output via fmt." + name
		}
		if path == xrandPath {
			return "draws from the deterministic RNG via xrand." + name + " (consumption order perturbs every later draw)"
		}
		return ""
	}

	// Method calls.
	if _, recvType, name, ok := methodCall(p, call); ok {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "writes output via " + name
		case "Merge":
			return "merges an accumulator via Merge (merge order is observable state)"
		case "Add", "Record", "Observe":
			for _, tn := range [...]string{"Digest", "Dist", "Sample", "Welford"} {
				if namedAs(recvType, metricsPath, tn) {
					return "feeds the order-sensitive accumulator metrics." + tn
				}
			}
		}
		if namedAs(recvType, xrandPath, "Rand") {
			return "draws from the deterministic RNG (consumption order perturbs every later draw)"
		}
	}
	return ""
}

// isLoopConstant reports whether a return expression cannot depend on the
// iteration (a typed constant or nil).
func isLoopConstant(p *Pass, e ast.Expr) bool {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		if tv.Value != nil {
			return true
		}
		if tv.IsNil() {
			return true
		}
	}
	return false
}
