package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// RNGDiscipline enforces the repo's randomness funnel: all stochastic
// behavior in simulation-reachable packages flows through internal/xrand
// streams (seeded, splittable) so a run is a pure function of its seed.
// It forbids importing math/rand, math/rand/v2 or crypto/rand, and calling
// the wall-clock half of the time package — Now, Since, Until, Sleep,
// After, AfterFunc, NewTimer, NewTicker, Tick — anywhere except:
//
//   - internal/xrand itself (the one sanctioned math/rand/v2 wrapper),
//   - cmd/* and examples/* (wall-clock reporting for humans is fine —
//     nothing a command prints about elapsed time feeds a table).
//
// Intentionally wall-clock code inside internal/ (the TCP transport) is
// not exempt: each site must carry a justified //nowlint:rng explaining
// why its timing cannot leak into a simulation result.
var RNGDiscipline = &Analyzer{
	Name: "rng-discipline",
	Key:  "rng",
	Doc:  "simulation-reachable packages draw randomness only via internal/xrand and never read the wall clock",
	Run:  runRNGDiscipline,
}

// forbiddenImports are randomness sources that bypass the seeded funnel.
var forbiddenImports = map[string]string{
	"math/rand":    "an unseeded (or globally seeded) RNG",
	"math/rand/v2": "an RNG outside the xrand funnel",
	"crypto/rand":  "a nondeterministic entropy source",
}

// wallClockCalls is the time-package API that reads or schedules against
// the wall clock. Pure arithmetic on time.Duration/time.Time values stays
// legal — only these entry points observe real time.
var wallClockCalls = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "NewTimer": true,
	"NewTicker": true, "Tick": true,
}

// rngExempt reports whether a package is outside the rule's scope.
func rngExempt(importPath string) bool {
	if importPath == xrandPath {
		return true
	}
	for _, prefix := range [...]string{"nowover/cmd/", "nowover/examples/"} {
		if strings.HasPrefix(importPath, prefix) {
			return true
		}
	}
	return false
}

func runRNGDiscipline(p *Pass) {
	if rngExempt(p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenImports[path]; bad {
				p.Reportf(imp.Pos(), "import of %s (%s) in a simulation-reachable package; draw from an *xrand.Rand substream (rng.Split) instead", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFuncCall(p, call); ok && path == "time" && wallClockCalls[name] {
				p.Reportf(call.Pos(), "time.%s in a simulation-reachable package depends on the wall clock; simulation time is the step counter — move the pacing to cmd/, or justify the site with //nowlint:rng", name)
			}
			return true
		})
	}
}
