package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ShardLockOrder polices multi-shard locking in internal/core. The world
// partitions cluster and node state across independently lockable shards;
// any operation that must hold TWO shard locks at once can deadlock
// against a concurrent operation acquiring the same pair in the opposite
// order — unless both go through the canonical ordered-acquire helper
// (*World).lockShardPair, which always locks the lower shard index first.
// The rule flags a function body that acquires a second distinct
// worldShard/nodeShard mutex while one is still held.
//
// The check is intraprocedural and source-ordered: a heuristic, but one
// that exactly matches how the core package writes its critical sections
// (lock and unlock textually paired inside one function).
var ShardLockOrder = &Analyzer{
	Name: "shard-lock-order",
	Key:  "lockorder",
	Doc:  "multi-shard lock acquisition in internal/core goes through (*World).lockShardPair, never ad-hoc Lock pairs",
	Run:  runShardLockOrder,
}

// canonicalLockHelper is the one function allowed to acquire two shard
// locks directly.
const canonicalLockHelper = "lockShardPair"

type lockEvent struct {
	pos      token.Pos
	expr     string // the mutex owner expression, e.g. "s.mu"
	acquire  bool
	deferred bool
}

func runShardLockOrder(p *Pass) {
	if p.Pkg.ImportPath != corePath {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == canonicalLockHelper {
				continue
			}
			checkLockPairs(p, fd)
		}
	}
}

func checkLockPairs(p *Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := shardLockCall(p, x.Call); ok {
				ev.deferred = true
				events = append(events, ev)
			}
			return false // args of the deferred call cannot lock shards here
		case *ast.CallExpr:
			if ev, ok := shardLockCall(p, x); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	// ast.Inspect is preorder, which matches source order for statements,
	// but sort defensively so nested expressions cannot reorder events.
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int)
	heldCount := 0
	for _, ev := range events {
		switch {
		case ev.acquire:
			if heldCount > 0 && held[ev.expr] == 0 {
				p.Reportf(ev.pos, "second shard lock %s.Lock acquired while another shard lock is held; acquire multi-shard footprints through (*World).%s (index-ordered, deadlock-free)",
					ev.expr, canonicalLockHelper)
			}
			held[ev.expr]++
			heldCount++
		case ev.deferred:
			// A deferred unlock releases at return, not here: the lock
			// stays held for the rest of the body.
		default:
			if held[ev.expr] > 0 {
				held[ev.expr]--
				heldCount--
			}
		}
	}
}

// shardLockCall recognizes <expr>.mu.Lock/RLock/Unlock/RUnlock() where
// <expr> has a shard type (worldShard or nodeShard in internal/core).
func shardLockCall(p *Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	name := sel.Sel.Name
	acquire := name == "Lock" || name == "RLock"
	release := name == "Unlock" || name == "RUnlock"
	if !acquire && !release {
		return lockEvent{}, false
	}
	// The mutex must be a field of a shard-typed owner: owner.mu.Lock().
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != "mu" {
		return lockEvent{}, false
	}
	ownerType := p.TypeOf(muSel.X)
	if ownerType == nil {
		return lockEvent{}, false
	}
	if !namedAs(ownerType, corePath, "worldShard") && !namedAs(ownerType, corePath, "nodeShard") {
		return lockEvent{}, false
	}
	return lockEvent{
		pos:     call.Pos(),
		expr:    types.ExprString(sel.X),
		acquire: acquire,
	}, true
}
