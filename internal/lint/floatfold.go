package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFoldOrder flags compound floating-point accumulation (+=, -=, *=,
// /=) into state declared outside the fold context, when the fold order
// is not deterministic: inside a map-range body, a channel-range body
// (goroutine fan-in), or a `go` function literal. Float addition is not
// associative, so the same multiset of observations folded in two orders
// produces different bits — the hazard PR 5's digest merge-equivalence
// suite had to pin down dynamically. Deterministic orders (slices,
// integer counters) are untouched.
var FloatFoldOrder = &Analyzer{
	Name: "float-fold-order",
	Key:  "floatfold",
	Doc:  "no floating-point += accumulation inside map-range, channel fan-in, or goroutine bodies",
	Run:  runFloatFoldOrder,
}

func runFloatFoldOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		reported := make(map[token.Pos]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				t := p.TypeOf(x.X)
				switch {
				case isMap(t):
					scanFloatFolds(p, x.Body, "a map-range body (iteration order varies)", reported)
				case isChan(t):
					scanFloatFolds(p, x.Body, "a channel fan-in body (arrival order varies)", reported)
				}
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					scanFloatFolds(p, lit.Body, "a goroutine body (scheduling order varies)", reported)
				}
			}
			return true
		})
	}
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func scanFloatFolds(p *Pass, body *ast.BlockStmt, context string, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[as.Tok] || reported[as.Pos()] {
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloat(p.TypeOf(lhs)) {
				continue
			}
			id := baseIdent(lhs)
			if id == nil {
				continue
			}
			obj := p.ObjectOf(id)
			if obj != nil && !declaredWithin(obj, body) {
				reported[as.Pos()] = true
				p.Reportf(as.Pos(), "floating-point accumulation `%s %s ...` inside %s; float addition is not associative — fold into a deterministic order (sorted keys, op-ordered merge) or keep exact integer units",
					types.ExprString(lhs), as.Tok, context)
				break
			}
		}
		return true
	})
}
