package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ClassExhaustive verifies that every switch and every fixed-size array
// indexed by metrics.Class accounts for all NumClasses traffic classes.
// Classes are appended over time (ClassCascade arrived in PR 3); a stale
// `[8]Hist` table or a switch missing the new class would silently drop
// that traffic from every ledger and table, which the dynamic suites only
// catch if a test asserts on the new class specifically.
//
//   - an array indexed by a metrics.Class value must have exactly
//     metrics.NumClasses elements;
//   - a switch whose tag is a metrics.Class must either carry a default
//     clause or enumerate every class value.
var ClassExhaustive = &Analyzer{
	Name: "class-exhaustive",
	Key:  "classes",
	Doc:  "switches and arrays indexed by metrics.Class cover all NumClasses traffic classes",
	Run:  runClassExhaustive,
}

func runClassExhaustive(p *Pass) {
	numClasses, ok := lookupConstInt(p, metricsPath, "NumClasses")
	if !ok {
		return // package neither is nor imports metrics: rule cannot apply
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IndexExpr:
				checkClassIndex(p, x, numClasses)
			case *ast.SwitchStmt:
				checkClassSwitch(p, x, numClasses)
			}
			return true
		})
	}
}

// isClassType reports whether t is metrics.Class (possibly via pointer).
func isClassType(t types.Type) bool {
	return namedAs(t, metricsPath, "Class")
}

func checkClassIndex(p *Pass, idx *ast.IndexExpr, numClasses int64) {
	if !isClassType(p.TypeOf(idx.Index)) {
		return
	}
	t := p.TypeOf(idx.X)
	if t == nil {
		return
	}
	arr, ok := deref(t).Underlying().(*types.Array)
	if !ok {
		return
	}
	if arr.Len() != numClasses {
		p.Reportf(idx.Pos(), "array %s has %d elements but is indexed by a metrics.Class (NumClasses = %d); size it [metrics.NumClasses]T so appended classes cannot truncate the table",
			types.ExprString(idx.X), arr.Len(), numClasses)
	}
}

func checkClassSwitch(p *Pass, sw *ast.SwitchStmt, numClasses int64) {
	if sw.Tag == nil || !isClassType(p.TypeOf(sw.Tag)) {
		return
	}
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: future classes are handled
		}
		for _, e := range cc.List {
			if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					covered[v] = true
				}
			}
		}
	}
	missing := int64(0)
	for c := int64(0); c < numClasses; c++ {
		if !covered[c] {
			missing++
		}
	}
	if missing > 0 {
		p.Reportf(sw.Pos(), "switch on metrics.Class covers %d of %d classes and has no default clause; an appended traffic class would fall through silently",
			int64(len(covered)), numClasses)
	}
}
