// Package maporder is a lint fixture: every hazard class the map-order
// rule must catch, next to the order-blind shapes it must leave alone.
// `// want <rule>` markers are the expected-diagnostic assertions.
package maporder

import (
	"fmt"
	"sort"

	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

// appendOuter leaks iteration order into a slice.
func appendOuter(m map[int]int) []int {
	var out []int
	for k := range m { // want map-order
		out = append(out, k)
	}
	return out
}

// collectThenSort is the sanctioned idiom: the slice is sorted after the
// loop, so the order never escapes.
func collectThenSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// appendInner builds a slice scoped to one iteration: order-blind.
func appendInner(m map[int]int) int {
	n := 0
	for k := range m {
		tmp := []int{}
		tmp = append(tmp, k)
		n += len(tmp)
	}
	return n
}

// printsOutput writes in iteration order.
func printsOutput(m map[int]string) {
	for k, v := range m { // want map-order
		fmt.Println(k, v)
	}
}

// mergesLedger folds accumulators in iteration order.
func mergesLedger(led *metrics.Ledger, shards map[int]*metrics.Ledger) {
	for _, l := range shards { // want map-order
		led.Merge(l)
	}
}

// feedsDigest streams observations into an order-sensitive sketch.
func feedsDigest(d *metrics.Digest, m map[int]float64) {
	for _, v := range m { // want map-order
		d.Add(v)
	}
}

// feedsRNG consumes the deterministic stream in iteration order,
// perturbing every later draw.
func feedsRNG(r *xrand.Rand, m map[int]bool) int {
	n := 0
	for range m { // want map-order
		n += r.Intn(10)
	}
	return n
}

// floatAssign folds a float max-update across iterations.
func floatAssign(m map[int]float64) float64 {
	worst := 0.0
	for _, v := range m { // want map-order
		if v > worst {
			worst = v
		}
	}
	return worst
}

// earlyReturn picks which error to report by iteration order.
func earlyReturn(m map[int]int) error {
	for k, v := range m { // want map-order
		if v < 0 {
			return fmt.Errorf("negative value at %d", k)
		}
	}
	return nil
}

// constReturn answers a pure membership question: any order agrees.
func constReturn(m map[int]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// intCounter is a commutative integer fold: order-blind.
func intCounter(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mapCopy rebuilds a map: writes land keyed, order-blind.
func mapCopy(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
