// Package floatfold is a lint fixture for float-fold-order: compound
// floating-point folds inside nondeterministically-ordered contexts
// (map ranges, channel ranges, goroutine bodies) versus the ordered or
// integer folds the rule must ignore.
package floatfold

func mapFold(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want float-fold-order
	}
	return sum
}

func mapScale(m map[int]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod *= v // want float-fold-order
	}
	return prod
}

func chanFold(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want float-fold-order
	}
	return sum
}

func goFold(xs []float64) float64 {
	var sum float64
	done := make(chan struct{}, len(xs))
	for _, x := range xs {
		go func(x float64) {
			sum += x // want float-fold-order
			done <- struct{}{}
		}(x)
	}
	for range xs {
		<-done
	}
	return sum
}

// sliceFold iterates a slice: order is fixed, no finding.
func sliceFold(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// intFold accumulates integers: exact arithmetic commutes, no finding.
func intFold(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// innerFold folds into a variable scoped to one iteration: no finding.
func innerFold(m map[int]float64) int {
	count := 0
	for range m {
		local := 0.0
		local += 1
		_ = local
		count++
	}
	return count
}
