// Package suppressed is a lint fixture for the suppression machinery:
// a justified suppression silences its rule, a reason-less or unknown-key
// one is itself a finding. Expectations for this package live in
// lint_test.go (not inline markers) because trailing text on a
// //nowlint: comment would be parsed as the suppression reason.
package suppressed

// justified carries a reason: the map-order finding is silenced.
func justified(m map[int]int) []int {
	var out []int
	//nowlint:ordered fixture: the slice is consumed as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sameLine suppresses from a trailing comment on the flagged line.
func sameLine(m map[int]int) []int {
	var out []int
	for k := range m { //nowlint:ordered fixture: consumed as an unordered set
		out = append(out, k)
	}
	return out
}

// missingReason omits the justification: the suppression is rejected
// (so the map-order finding still fires) and reported itself.
func missingReason(m map[int]int) []int {
	var out []int
	//nowlint:ordered
	for k := range m {
		out = append(out, k)
	}
	return out
}

// unknownKey names a rule that does not exist.
func unknownKey(m map[int]int) int {
	//nowlint:bogus this key matches no analyzer
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
