// Package classexh is a lint fixture for ledger-class-exhaustiveness:
// arrays and switches keyed by metrics.Class must track NumClasses.
package classexh

import "nowover/internal/metrics"

// full tracks every class: indexing it is fine.
var full [metrics.NumClasses]int64

// stale was sized before new classes were added.
var stale [4]int64

func chargeFull(c metrics.Class, n int64) {
	full[c] += n
}

func chargeStale(c metrics.Class, n int64) {
	stale[c] += n // want class-exhaustive
}

// describePartial covers two of the classes with no default.
func describePartial(c metrics.Class) string {
	switch c { // want class-exhaustive
	case metrics.ClassWalk:
		return "walk"
	case metrics.ClassExchange:
		return "exchange"
	}
	return "other"
}

// describeDefault is partial but has a default arm: fine.
func describeDefault(c metrics.Class) string {
	switch c {
	case metrics.ClassWalk:
		return "walk"
	default:
		return "other"
	}
}

// describeAll enumerates every class: fine without a default.
func describeAll(c metrics.Class) string {
	switch c {
	case metrics.ClassIntraCluster, metrics.ClassInterCluster,
		metrics.ClassWalk, metrics.ClassRandNum, metrics.ClassExchange,
		metrics.ClassDiscovery, metrics.ClassAgreement,
		metrics.ClassApplication, metrics.ClassCascade,
		metrics.ClassTransport:
		return "known"
	}
	return ""
}
