// Package wallclock is a lint fixture for intentionally wall-clock code
// in a sim-reachable package — the TCP-transport situation. A justified
// //nowlint:rng silences exactly its site; a bare one suppresses nothing
// and is itself a finding (the self-check gate for new wall-clock code).
package wallclock

import "time"

type pacer struct {
	start time.Time
	tick  time.Duration
}

func newPacer(tick time.Duration) *pacer {
	//nowlint:rng the tick epoch of a wall-clock transport; tick values pace socket timeouts and never reach a simulation table
	return &pacer{start: time.Now(), tick: tick}
}

func (p *pacer) nowTick() int64 {
	//nowlint:rng
	return int64(time.Since(p.start) / p.tick) // want rng-discipline
}

func (p *pacer) sleepTicks(n int64) {
	//nowlint:rng wall-clock round pacing; the protocol result is timing-independent
	time.Sleep(time.Duration(n) * p.tick)
}
