// Package core is a lint fixture for shard-lock-order. It is loaded
// under the fake import path nowover/internal/core so its worldShard
// type matches the rule's target, without touching the real package.
package core

import "sync"

type worldShard struct {
	mu sync.RWMutex
	n  int
}

// World owns the shards.
type World struct {
	shards []*worldShard
}

// lockShardPair is the canonical ordered-acquire helper: exempt by name.
func (w *World) lockShardPair(i, j int) func() {
	lo, hi := w.shards[i], w.shards[j]
	if j < i {
		lo, hi = hi, lo
	}
	lo.mu.Lock()
	hi.mu.Lock()
	return func() {
		hi.mu.Unlock()
		lo.mu.Unlock()
	}
}

// adHocPair acquires a second shard lock while holding the first,
// outside the canonical helper.
func (w *World) adHocPair(i, j int) {
	a, b := w.shards[i], w.shards[j]
	a.mu.Lock()
	b.mu.Lock() // want shard-lock-order
	b.mu.Unlock()
	a.mu.Unlock()
}

// deferredHold keeps the first lock held via defer when the second is
// taken.
func (w *World) deferredHold(i, j int) {
	a, b := w.shards[i], w.shards[j]
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want shard-lock-order
	defer b.mu.Unlock()
}

// sequential releases the first shard before touching the second: fine.
func (w *World) sequential(i, j int) int {
	a, b := w.shards[i], w.shards[j]
	a.mu.Lock()
	n := a.n
	a.mu.Unlock()
	b.mu.RLock()
	n += b.n
	b.mu.RUnlock()
	return n
}

// loopLocks holds at most one shard lock at a time: fine.
func (w *World) loopLocks() int {
	n := 0
	for _, s := range w.shards {
		s.mu.RLock()
		n += s.n
		s.mu.RUnlock()
	}
	return n
}
