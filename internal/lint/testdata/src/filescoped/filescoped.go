// Package filescoped is a lint fixture for file-scoped suppression:
// one //nowlint:file: directive silences the rule for the whole file.
package filescoped

//nowlint:file:ordered fixture: this file renders debug output only; ordering is cosmetic

import "fmt"

func dumpAll(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func dumpKeys(m map[int]string) {
	for k := range m {
		fmt.Println(k)
	}
}
