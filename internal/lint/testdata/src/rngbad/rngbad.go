// Package rngbad is a lint fixture: every rng-discipline violation in a
// sim-reachable (non-allowlisted) package. The same file loaded under a
// nowover/cmd/ import path must produce zero findings — see lint_test.go.
package rngbad

import (
	"math/rand" // want rng-discipline
	"time"
)

func draw() int64 {
	return rand.Int63()
}

func elapsed() time.Duration {
	start := time.Now()    // want rng-discipline
	d := time.Since(start) // want rng-discipline
	return d
}

func pace(deadline time.Time) {
	_ = time.Until(deadline)                        // want rng-discipline
	time.Sleep(time.Millisecond)                    // want rng-discipline
	<-time.After(time.Millisecond)                  // want rng-discipline
	_ = time.AfterFunc(time.Millisecond, func() {}) // want rng-discipline
	t := time.NewTimer(time.Millisecond)            // want rng-discipline
	t.Stop()                                        // methods on an existing timer are fine
	k := time.NewTicker(time.Millisecond)           // want rng-discipline
	k.Stop()
	<-time.Tick(time.Millisecond) // want rng-discipline
}

// formatting only: referencing the time package without Now/Since is fine.
func format(t time.Time) string {
	return t.UTC().String()
}
