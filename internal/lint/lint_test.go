package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: each testdata/src package carries `// want <rule>`
// markers on the lines the suite must flag; a fixture run compares the
// marker set against the diagnostics, so both false positives and false
// negatives fail the test.

var (
	loadOnce sync.Once
	modLd    *Loader
	loadErr  error
)

// loadModule type-checks the module packages the fixtures import
// (metrics, xrand) once per test binary.
func loadModule(t *testing.T) *Loader {
	t.Helper()
	loadOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loadErr = err
			return
		}
		_, modLd, loadErr = Load(root, "./internal/metrics", "./internal/xrand")
	})
	if loadErr != nil {
		t.Fatalf("loading module packages: %v", loadErr)
	}
	return modLd
}

// runFixture loads testdata/src/<fixture> under the given import path and
// runs the full analyzer suite on it.
func runFixture(t *testing.T, fixture, importPath string) []Diagnostic {
	t.Helper()
	ld := loadModule(t)
	pkg, err := ld.LoadDir(filepath.Join("testdata", "src", fixture), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	return Run([]*Package{pkg}, Analyzers())
}

var wantRe = regexp.MustCompile(`// want ([a-z][a-z-]*(?: [a-z][a-z-]*)*)\s*$`)

// expectedFindings scans a fixture directory for `// want <rule>` markers
// and returns them as sorted "file:line rule" strings.
func expectedFindings(t *testing.T, fixture string) []string {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var want []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, rule := range strings.Fields(m[1]) {
				want = append(want, fmt.Sprintf("%s:%d %s", e.Name(), i+1, rule))
			}
		}
	}
	sort.Strings(want)
	return want
}

func actualFindings(diags []Diagnostic) []string {
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule))
	}
	sort.Strings(got)
	return got
}

// checkFixture asserts the diagnostic set matches the fixture's markers
// exactly.
func checkFixture(t *testing.T, fixture, importPath string) {
	t.Helper()
	diags := runFixture(t, fixture, importPath)
	want := expectedFindings(t, fixture)
	got := actualFindings(diags)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fixture %s: diagnostics mismatch\n got: %v\nwant: %v", fixture, got, want)
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

func TestMapOrderFixture(t *testing.T)        { checkFixture(t, "maporder", "fixture/maporder") }
func TestFloatFoldFixture(t *testing.T)       { checkFixture(t, "floatfold", "fixture/floatfold") }
func TestRNGFixture(t *testing.T)             { checkFixture(t, "rngbad", "fixture/rngbad") }
func TestClassExhaustiveFixture(t *testing.T) { checkFixture(t, "classexh", "fixture/classexh") }

// TestLockOrderFixture loads the fixture under the real core import path:
// the rule is scoped to nowover/internal/core, and the fixture declares
// its own worldShard so the type match exercises the same predicate.
func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "nowover/internal/core")
}

// TestRNGAllowlistedPath proves the allowlist: the same violating file,
// loaded as a cmd/ package, produces zero findings because commands may
// read the wall clock and host entropy.
func TestRNGAllowlistedPath(t *testing.T) {
	diags := runFixture(t, "rngbad", "nowover/cmd/rngbad")
	if len(diags) != 0 {
		t.Errorf("cmd/ path should be exempt from rng-discipline, got %d diagnostics:", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestFileScopedSuppression: one //nowlint:file: directive silences the
// rule for every site in the file.
func TestFileScopedSuppression(t *testing.T) {
	diags := runFixture(t, "filescoped", "fixture/filescoped")
	if len(diags) != 0 {
		t.Errorf("file-scoped suppression should silence all findings, got %d:", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// lineMatching returns the 1-based line whose trimmed text satisfies
// match, failing the test if it is not unique.
func lineMatching(t *testing.T, path string, match func(string) bool) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	found := 0
	for i, line := range strings.Split(string(data), "\n") {
		if match(strings.TrimSpace(line)) {
			found = i + 1
		}
	}
	if found == 0 {
		t.Fatalf("no line in %s matches", path)
	}
	return found
}

// TestSuppressionDiscipline covers the suppression forms inline markers
// cannot express (trailing text on a //nowlint comment is its reason):
// justified suppressions silence the finding, a reason-less one is
// rejected and reported, an unknown key is reported.
func TestSuppressionDiscipline(t *testing.T) {
	diags := runFixture(t, "suppressed", "fixture/suppressed")
	src := filepath.Join("testdata", "src", "suppressed", "suppressed.go")

	bareLine := lineMatching(t, src, func(s string) bool { return s == "//nowlint:ordered" })
	bogusLine := lineMatching(t, src, func(s string) bool { return strings.HasPrefix(s, "//nowlint:bogus") })

	want := []string{
		// The reason-less suppression does not suppress, so the range it
		// covers still fires, plus the suppression diagnostic itself.
		fmt.Sprintf("suppressed.go:%d map-order", bareLine+1),
		fmt.Sprintf("suppressed.go:%d suppression", bareLine),
		fmt.Sprintf("suppressed.go:%d suppression", bogusLine),
	}
	sort.Strings(want)
	got := actualFindings(diags)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("suppressed fixture: diagnostics mismatch\n got: %v\nwant: %v", got, want)
	}
	for _, d := range diags {
		if d.Pos.Line == bareLine && !strings.Contains(d.Msg, "no justification") {
			t.Errorf("reason-less suppression message should say so, got %q", d.Msg)
		}
		if d.Pos.Line == bogusLine && !strings.Contains(d.Msg, "unknown rule key") {
			t.Errorf("unknown-key suppression message should say so, got %q", d.Msg)
		}
	}
}

// TestWallClockFixture pins the contract for intentionally wall-clock
// code inside internal/ (the TCP transport's shape): a justified
// //nowlint:rng silences exactly its site, while a bare one suppresses
// nothing — the call it sits on still fires, and the suppression itself
// is a finding. This is what makes a reason-less suppression in new
// wall-clock code fail the lint job rather than slip through.
func TestWallClockFixture(t *testing.T) {
	diags := runFixture(t, "wallclock", "fixture/wallclock")
	src := filepath.Join("testdata", "src", "wallclock", "wallclock.go")
	bare := lineMatching(t, src, func(s string) bool { return s == "//nowlint:rng" })
	want := append(expectedFindings(t, "wallclock"), fmt.Sprintf("wallclock.go:%d suppression", bare))
	sort.Strings(want)
	got := actualFindings(diags)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wallclock fixture: diagnostics mismatch\n got: %v\nwant: %v", got, want)
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestSelfCheck is the dogfood gate: the repo's own tree must be clean
// under the full suite. Any new nondeterminism hazard (or stale
// suppression) fails this test before it ever reaches CI's lint job.
func TestSelfCheck(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, _, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repo is not nowlint-clean: %s", d)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:  token.Position{Filename: "world.go", Line: 640},
		Rule: "map-order",
		Msg:  "range over map leaks iteration order",
	}
	want := "world.go:640: [map-order] range over map leaks iteration order"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAnalyzerByKey(t *testing.T) {
	all := Analyzers()
	for _, a := range all {
		if got := AnalyzerByKey(a.Key, all); got != a {
			t.Errorf("AnalyzerByKey(%q) = %v, want %v", a.Key, got, a)
		}
		if got := AnalyzerByKey(a.Name, all); got != a {
			t.Errorf("AnalyzerByKey(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := AnalyzerByKey("bogus", all); got != nil {
		t.Errorf("AnalyzerByKey(bogus) = %v, want nil", got)
	}
}

func TestLoadDirErrors(t *testing.T) {
	ld := loadModule(t)
	if _, err := ld.LoadDir(filepath.Join("testdata", "no-such-dir"), "x"); err == nil {
		t.Error("LoadDir on a missing directory should fail")
	}
	empty := t.TempDir()
	if _, err := ld.LoadDir(empty, "x"); err == nil {
		t.Error("LoadDir on a directory with no Go files should fail")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "bad.go"), []byte("package bad\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.LoadDir(bad, "x"); err == nil {
		t.Error("LoadDir on an unparseable file should fail")
	}
	broken := t.TempDir()
	if err := os.WriteFile(filepath.Join(broken, "broken.go"), []byte("package broken\nvar x NoSuchType\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.LoadDir(broken, "x"); err == nil {
		t.Error("LoadDir on a type-broken file should fail")
	}
}

func TestLoadBadPattern(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(root, "./no/such/package"); err == nil {
		t.Error("Load with a bad pattern should fail")
	}
}
