// Package ba implements synchronous Byzantine agreement, the substrate the
// paper invokes as a black box: once for the initialization phase
// (clusterization via an off-the-shelf protocol, paper section 3.2) and
// implicitly inside every intra-cluster decision (randNum, next-hop
// selection), which are secure while the cluster is more than two thirds
// honest.
//
// Two executable algorithms are provided, both running over a simulated
// lockstep-synchronous full-information network with pluggable Byzantine
// behaviors:
//
//   - Phase-King (Berman-Garay-Perry): n > 4t, t+1 phases of two rounds,
//     O(n^2) messages per phase. The workhorse for live demonstrations.
//   - EIG (exponential information gathering): optimal resilience n > 3t in
//     t+1 rounds, but message size exponential in t; usable for the small
//     committees where optimal resilience at the 1/3 boundary matters.
//
// The paper's own analysis never executes agreement message-by-message; it
// charges costs analytically. Decide mirrors that abstraction for the
// counted simulator: it resolves an intra-cluster decision as secure iff
// the cluster is > 2/3 honest and charges the paper's O(|C|^2) cost.
package ba

import (
	"fmt"
	"sort"

	"nowover/internal/metrics"
)

// Value is an agreement input/output. Agreement is multivalued; binary
// agreement uses {0, 1}.
type Value int64

// Behavior scripts one Byzantine node. Honest nodes are represented by a
// nil Behavior. Send returns the value the node transmits to a specific
// recipient in a given round, given what an honest node would have sent —
// full equivocation power, matching the paper's full-information adversary.
type Behavior interface {
	Send(round, from, to int, honest Value) Value
}

// Silent never sends (modelled as a distinguished absent value).
type Silent struct{}

// Send implements Behavior.
func (Silent) Send(_, _, _ int, _ Value) Value { return Absent }

// Liar always sends the negation-style corruption of the honest value.
type Liar struct{}

// Send implements Behavior.
func (Liar) Send(_, _, _ int, honest Value) Value { return honest ^ 1 }

// Equivocator sends the honest value to even-indexed recipients and its
// complement to odd-indexed ones — the canonical split-the-vote attack.
type Equivocator struct{}

// Send implements Behavior.
func (Equivocator) Send(_, _, to int, honest Value) Value {
	if to%2 == 0 {
		return honest
	}
	return honest ^ 1
}

// Absent marks a missing message (silence). Chosen outside the value space
// used by tests.
const Absent Value = -1 << 62

// Config describes one agreement instance.
type Config struct {
	N         int              // committee size
	Inputs    []Value          // length N; Inputs[i] is node i's proposal
	Byzantine map[int]Behavior // node index -> scripted behavior
}

func (c Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("ba: non-positive committee size %d", c.N)
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("ba: %d inputs for committee of %d", len(c.Inputs), c.N)
	}
	// Sorted walk so which out-of-range index gets reported is a function
	// of the config, not of map iteration order.
	idxs := make([]int, 0, len(c.Byzantine))
	for i := range c.Byzantine {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if i < 0 || i >= c.N {
			return fmt.Errorf("ba: byzantine index %d out of range", i)
		}
	}
	return nil
}

// Result reports the outcome of an agreement execution.
type Result struct {
	Decisions []Value // per-node decision (Byzantine entries are meaningless)
	Rounds    int
	Messages  int64
}

// HonestDecisions returns the decisions of honest nodes only.
func (r Result) HonestDecisions(byz map[int]Behavior) []Value {
	out := make([]Value, 0, len(r.Decisions))
	for i, d := range r.Decisions {
		if _, bad := byz[i]; !bad {
			out = append(out, d)
		}
	}
	return out
}

// Agree reports whether all honest nodes decided the same value, and that
// value.
func (r Result) Agree(byz map[int]Behavior) (Value, bool) {
	hs := r.HonestDecisions(byz)
	if len(hs) == 0 {
		return 0, false
	}
	for _, d := range hs[1:] {
		if d != hs[0] {
			return 0, false
		}
	}
	return hs[0], true
}

// broadcastRound has every node send one value to every node (including
// itself, which costs nothing) and returns the received matrix:
// recv[to][from]. Byzantine senders filter through their Behavior.
func broadcastRound(cfg Config, round int, outgoing []Value, res *Result) [][]Value {
	recv := make([][]Value, cfg.N)
	for to := 0; to < cfg.N; to++ {
		recv[to] = make([]Value, cfg.N)
	}
	for from := 0; from < cfg.N; from++ {
		b := cfg.Byzantine[from]
		for to := 0; to < cfg.N; to++ {
			v := outgoing[from]
			if b != nil {
				v = b.Send(round, from, to, outgoing[from])
			}
			recv[to][from] = v
			if from != to {
				res.Messages++
			}
		}
	}
	res.Rounds++
	return recv
}

// majority returns the most frequent non-Absent value in vs and its count.
// Ties break toward the smaller value for determinism.
func majority(vs []Value) (Value, int) {
	counts := make(map[Value]int, len(vs))
	for _, v := range vs {
		if v != Absent {
			counts[v]++
		}
	}
	var best Value
	bestN := -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	if bestN < 0 {
		return 0, 0
	}
	return best, bestN
}

// PhaseKing runs the Berman-Garay-Perry phase-king protocol for up to
// maxFaults faults. Correctness (agreement + validity) requires
// N > 4*maxFaults; the function executes regardless so experiments can
// probe the failure region. Round complexity 2*(maxFaults+1), message
// complexity O(N^2 * maxFaults).
func PhaseKing(cfg Config, maxFaults int) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if maxFaults < 0 {
		return Result{}, fmt.Errorf("ba: negative fault bound %d", maxFaults)
	}
	res := Result{Decisions: make([]Value, cfg.N)}
	v := make([]Value, cfg.N)
	copy(v, cfg.Inputs)

	for phase := 0; phase <= maxFaults; phase++ {
		// Round 1: everyone broadcasts its current value.
		recv := broadcastRound(cfg, 2*phase, v, &res)
		maj := make([]Value, cfg.N)
		mult := make([]int, cfg.N)
		for i := 0; i < cfg.N; i++ {
			maj[i], mult[i] = majority(recv[i])
		}
		// Round 2: the phase king broadcasts its majority value.
		king := phase % cfg.N
		kingRecv := broadcastOne(cfg, 2*phase+1, king, maj[king], &res)
		for i := 0; i < cfg.N; i++ {
			if mult[i] > cfg.N/2+maxFaults {
				v[i] = maj[i]
			} else {
				kv := kingRecv[i]
				if kv == Absent {
					kv = 0 // default on silent king
				}
				v[i] = kv
			}
		}
	}
	copy(res.Decisions, v)
	return res, nil
}

// broadcastOne has a single sender transmit v to all nodes; the sender's
// Behavior may equivocate. Returns the per-recipient received value.
func broadcastOne(cfg Config, round, from int, v Value, res *Result) []Value {
	recv := make([]Value, cfg.N)
	b := cfg.Byzantine[from]
	for to := 0; to < cfg.N; to++ {
		out := v
		if b != nil {
			out = b.Send(round, from, to, v)
		}
		recv[to] = out
		if from != to {
			res.Messages++
		}
	}
	res.Rounds++
	return recv
}

// Decide is the analytic stand-in used by the counted simulator, mirroring
// the paper's own abstraction: an intra-cluster agreement among size
// members of which byz are Byzantine succeeds iff the cluster is more than
// two thirds honest. It charges the paper's O(size^2) message cost and a
// constant number of rounds to the ledger and reports success.
func Decide(led *metrics.Ledger, size, byz int) bool {
	if size <= 0 {
		return false
	}
	led.Charge(metrics.ClassAgreement, int64(size)*int64(size-1))
	led.AddRounds(_decideRounds)
	return 3*byz < size
}

// _decideRounds is the constant round charge for one black-box agreement;
// the paper treats intra-cluster agreement as O(1) rounds within a time
// step.
const _decideRounds = 3
