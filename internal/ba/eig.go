package ba

import (
	"fmt"
	"sort"
)

// EIG runs exponential information gathering, the classical synchronous
// Byzantine agreement with optimal resilience N > 3t in t+1 rounds
// (Bar-Noy/Dolev/Dwork/Strong formulation). Each node maintains a tree of
// relayed values indexed by fault-free sender paths; decisions are taken by
// recursively resolving the tree with majority votes.
//
// Message size grows as O(N^t), so EIG is only practical for the small
// committees where resilience exactly at the 1/3 boundary matters (the
// paper's representative cluster is Theta(log N) nodes). maxFaults above
// _eigFaultCap is rejected to keep executions tractable.
func EIG(cfg Config, maxFaults int) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if maxFaults < 0 {
		return Result{}, fmt.Errorf("ba: negative fault bound %d", maxFaults)
	}
	if maxFaults > _eigFaultCap {
		return Result{}, fmt.Errorf("ba: EIG fault bound %d exceeds cap %d", maxFaults, _eigFaultCap)
	}

	res := Result{Decisions: make([]Value, cfg.N)}

	// tree[i] maps a path (sequence of distinct node indices, encoded as a
	// string key) to the value node i holds for that path. Level r paths
	// have length r+1; the root level is the senders' own values.
	trees := make([]map[string]Value, cfg.N)
	for i := range trees {
		trees[i] = make(map[string]Value)
	}

	// Round 0: everyone broadcasts its input.
	level := make([]string, 0, cfg.N)
	recv := broadcastRound(cfg, 0, cfg.Inputs, &res)
	for i := 0; i < cfg.N; i++ {
		for from := 0; from < cfg.N; from++ {
			key := pathKey([]int{from})
			trees[i][key] = recv[i][from]
		}
	}
	for from := 0; from < cfg.N; from++ {
		level = append(level, pathKey([]int{from}))
	}

	// Rounds 1..maxFaults: relay the previous level.
	for round := 1; round <= maxFaults; round++ {
		next := extendPaths(level, cfg.N)
		// Each node i sends, for every path p in the previous level, the
		// value it holds for p; recipients store it under p + sender.
		for _, p := range next {
			nodes := decodePath(p)
			sender := nodes[len(nodes)-1]
			honest := trees[sender][pathKey(nodes[:len(nodes)-1])]
			b := cfg.Byzantine[sender]
			for to := 0; to < cfg.N; to++ {
				v := honest
				if b != nil {
					v = b.Send(round, sender, to, honest)
				}
				trees[to][p] = v
				if sender != to {
					res.Messages++
				}
			}
		}
		res.Rounds++
		level = next
	}

	// Resolve: leaves keep their stored values; internal paths take the
	// majority of their children.
	for i := 0; i < cfg.N; i++ {
		resolved := make(map[string]Value, len(trees[i]))
		for _, p := range level {
			resolved[p] = treeDefault(trees[i][p])
		}
		for depth := pathLen(level[0]) - 1; depth >= 1; depth-- {
			parents := pathsOfLen(trees[i], depth)
			for _, p := range parents {
				children := childValues(resolved, p, cfg.N)
				if len(children) == 0 {
					resolved[p] = treeDefault(trees[i][p])
					continue
				}
				m, _ := majority(children)
				resolved[p] = m
			}
		}
		roots := make([]Value, 0, cfg.N)
		for from := 0; from < cfg.N; from++ {
			roots = append(roots, resolved[pathKey([]int{from})])
		}
		m, _ := majority(roots)
		res.Decisions[i] = m
	}
	return res, nil
}

// _eigFaultCap bounds tree growth; N^(t+1) paths with N <= ~12, t <= 3 is
// a few thousand entries.
const _eigFaultCap = 3

func treeDefault(v Value) Value {
	if v == Absent {
		return 0
	}
	return v
}

func pathKey(nodes []int) string {
	b := make([]byte, 0, len(nodes)*2)
	for _, n := range nodes {
		b = append(b, byte(n>>8), byte(n))
	}
	return string(b)
}

func decodePath(key string) []int {
	out := make([]int, 0, len(key)/2)
	for i := 0; i+1 < len(key); i += 2 {
		out = append(out, int(key[i])<<8|int(key[i+1]))
	}
	return out
}

func pathLen(key string) int { return len(key) / 2 }

// extendPaths appends every node not already on the path, in index order.
func extendPaths(level []string, n int) []string {
	var out []string
	for _, p := range level {
		nodes := decodePath(p)
		on := make(map[int]bool, len(nodes))
		for _, x := range nodes {
			on[x] = true
		}
		for next := 0; next < n; next++ {
			if !on[next] {
				out = append(out, pathKey(append(append([]int{}, nodes...), next)))
			}
		}
	}
	return out
}

func pathsOfLen(tree map[string]Value, l int) []string {
	var out []string
	for p := range tree {
		if pathLen(p) == l {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func childValues(resolved map[string]Value, parent string, n int) []Value {
	nodes := decodePath(parent)
	on := make(map[int]bool, len(nodes))
	for _, x := range nodes {
		on[x] = true
	}
	var out []Value
	for next := 0; next < n; next++ {
		if on[next] {
			continue
		}
		child := pathKey(append(append([]int{}, nodes...), next))
		if v, ok := resolved[child]; ok {
			out = append(out, v)
		}
	}
	return out
}
