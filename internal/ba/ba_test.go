package ba

import (
	"testing"
	"testing/quick"

	"nowover/internal/metrics"
)

func inputs(vs ...Value) []Value { return vs }

func TestPhaseKingAllHonestUnanimous(t *testing.T) {
	cfg := Config{N: 5, Inputs: inputs(1, 1, 1, 1, 1)}
	res, err := PhaseKing(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agree(cfg.Byzantine)
	if !ok || v != 1 {
		t.Fatalf("decisions = %v", res.Decisions)
	}
}

func TestPhaseKingValidity(t *testing.T) {
	// All honest nodes propose the same value; it must be decided even
	// with a Byzantine minority (n=5 > 4t with t=1).
	for _, b := range []Behavior{Silent{}, Liar{}, Equivocator{}} {
		cfg := Config{
			N:         5,
			Inputs:    inputs(1, 1, 1, 1, 0),
			Byzantine: map[int]Behavior{4: b},
		}
		res, err := PhaseKing(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := res.Agree(cfg.Byzantine)
		if !ok {
			t.Errorf("%T: honest nodes disagree: %v", b, res.Decisions)
		}
		if v != 1 {
			t.Errorf("%T: validity violated, decided %d", b, v)
		}
	}
}

func TestPhaseKingAgreementMixedInputs(t *testing.T) {
	// Split honest inputs; agreement (not validity) is required.
	behaviors := []Behavior{Silent{}, Liar{}, Equivocator{}}
	for _, b := range behaviors {
		cfg := Config{
			N:         9, // t=2 needs n > 8
			Inputs:    inputs(0, 1, 0, 1, 0, 1, 0, 1, 1),
			Byzantine: map[int]Behavior{2: b, 6: b},
		}
		res, err := PhaseKing(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.Agree(cfg.Byzantine); !ok {
			t.Errorf("%T: honest disagreement: %v", b, res.Decisions)
		}
	}
}

func TestPhaseKingRoundsAndMessages(t *testing.T) {
	cfg := Config{N: 5, Inputs: inputs(0, 0, 0, 0, 0)}
	res, err := PhaseKing(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 { // 2 rounds per phase, t+1 = 2 phases
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if res.Messages <= 0 {
		t.Error("no messages counted")
	}
}

func TestPhaseKingConfigValidation(t *testing.T) {
	if _, err := PhaseKing(Config{N: 0}, 0); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := PhaseKing(Config{N: 2, Inputs: inputs(1)}, 0); err == nil {
		t.Error("accepted mismatched inputs")
	}
	if _, err := PhaseKing(Config{N: 2, Inputs: inputs(1, 1), Byzantine: map[int]Behavior{5: Liar{}}}, 0); err == nil {
		t.Error("accepted out-of-range byzantine index")
	}
	if _, err := PhaseKing(Config{N: 2, Inputs: inputs(1, 1)}, -1); err == nil {
		t.Error("accepted negative fault bound")
	}
}

func TestPhaseKingPropertyRandomByzantine(t *testing.T) {
	// For random honest inputs and up to t < n/4 scripted liars, honest
	// agreement must always hold.
	if err := quick.Check(func(seed uint64, inputBits uint16, byzMask uint8) bool {
		const n, tFaults = 9, 2
		cfg := Config{N: n, Inputs: make([]Value, n), Byzantine: map[int]Behavior{}}
		for i := 0; i < n; i++ {
			cfg.Inputs[i] = Value((inputBits >> i) & 1)
		}
		byzCount := 0
		for i := 0; i < n && byzCount < tFaults; i++ {
			if (byzMask>>i)&1 == 1 {
				switch i % 3 {
				case 0:
					cfg.Byzantine[i] = Liar{}
				case 1:
					cfg.Byzantine[i] = Equivocator{}
				default:
					cfg.Byzantine[i] = Silent{}
				}
				byzCount++
			}
		}
		res, err := PhaseKing(cfg, tFaults)
		if err != nil {
			return false
		}
		_, ok := res.Agree(cfg.Byzantine)
		return ok
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEIGUnanimous(t *testing.T) {
	cfg := Config{N: 4, Inputs: inputs(1, 1, 1, 1)}
	res, err := EIG(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agree(cfg.Byzantine)
	if !ok || v != 1 {
		t.Fatalf("decisions = %v", res.Decisions)
	}
}

func TestEIGOptimalResilience(t *testing.T) {
	// n=4, t=1: below phase-king's n>4t threshold but within EIG's n>3t.
	for _, b := range []Behavior{Liar{}, Equivocator{}, Silent{}} {
		cfg := Config{
			N:         4,
			Inputs:    inputs(1, 1, 1, 0),
			Byzantine: map[int]Behavior{3: b},
		}
		res, err := EIG(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := res.Agree(cfg.Byzantine)
		if !ok {
			t.Errorf("%T: honest disagreement: %v", b, res.Decisions)
		}
		if v != 1 {
			t.Errorf("%T: validity violated: %v", b, res.Decisions)
		}
	}
}

func TestEIGTwoFaults(t *testing.T) {
	// n=7, t=2 (7 > 3*2): agreement with two equivocators.
	cfg := Config{
		N:         7,
		Inputs:    inputs(0, 1, 0, 1, 0, 1, 0),
		Byzantine: map[int]Behavior{1: Equivocator{}, 5: Liar{}},
	}
	res, err := EIG(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agree(cfg.Byzantine); !ok {
		t.Fatalf("honest disagreement: %v", res.Decisions)
	}
}

func TestEIGValidityAllHonest(t *testing.T) {
	cfg := Config{N: 7, Inputs: inputs(1, 1, 1, 1, 1, 1, 1)}
	res, err := EIG(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agree(cfg.Byzantine)
	if !ok || v != 1 {
		t.Fatalf("decisions = %v", res.Decisions)
	}
}

func TestEIGFaultCap(t *testing.T) {
	cfg := Config{N: 20, Inputs: make([]Value, 20)}
	if _, err := EIG(cfg, 5); err == nil {
		t.Error("EIG accepted fault bound above cap")
	}
}

func TestEIGRounds(t *testing.T) {
	cfg := Config{N: 4, Inputs: inputs(0, 0, 0, 0)}
	res, err := EIG(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 { // t+1 rounds
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
}

func TestDecideThreshold(t *testing.T) {
	cases := []struct {
		size, byz int
		want      bool
	}{
		{9, 2, true},
		{9, 3, false}, // exactly 1/3 breaks the strict bound
		{10, 3, true},
		{3, 0, true},
		{3, 1, false},
		{0, 0, false},
	}
	for _, c := range cases {
		var l metrics.Ledger
		if got := Decide(&l, c.size, c.byz); got != c.want {
			t.Errorf("Decide(%d,%d) = %v, want %v", c.size, c.byz, got, c.want)
		}
	}
}

func TestDecideCharges(t *testing.T) {
	var led metrics.Ledger
	Decide(&led, 10, 2)
	if led.Messages() != 90 {
		t.Errorf("Decide charged %d messages, want 90", led.Messages())
	}
	if led.Rounds() == 0 {
		t.Error("Decide charged no rounds")
	}
}

func TestBehaviors(t *testing.T) {
	if (Silent{}).Send(0, 0, 0, 1) != Absent {
		t.Error("Silent not absent")
	}
	if (Liar{}).Send(0, 0, 0, 1) != 0 {
		t.Error("Liar(1) != 0")
	}
	eq := Equivocator{}
	if eq.Send(0, 0, 0, 1) == eq.Send(0, 0, 1, 1) {
		t.Error("Equivocator sent consistent values")
	}
}
