package randnum

import (
	"math"
	"testing"

	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		size, byz int
		want      Security
	}{
		{9, 0, Secure},
		{9, 2, Secure},
		{9, 3, Degraded},  // exactly 1/3
		{9, 4, Degraded},  // below 1/2
		{10, 5, Captured}, // exactly 1/2
		{9, 5, Captured},
		{3, 1, Degraded},
		{2, 1, Captured},
	}
	for _, c := range cases {
		if got := Classify(c.size, c.byz); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.size, c.byz, got, c.want)
		}
	}
}

func TestSecurityString(t *testing.T) {
	for _, s := range []Security{Secure, Degraded, Captured, Security(9)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", int(s))
		}
	}
}

func TestIdealUniform(t *testing.T) {
	var led metrics.Ledger
	r := xrand.New(1)
	gen := Ideal{}
	const rng = 8
	counts := make([]int64, rng)
	const draws = 40000
	for i := 0; i < draws; i++ {
		v, sec, err := gen.Draw(&led, r, Params{Size: 20, Byz: 5, R: rng}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sec != Secure {
			t.Fatalf("security = %v with 5/20 byzantine", sec)
		}
		counts[v]++
	}
	want := float64(draws) / rng
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIdealIgnoresObjectiveWhileSecure(t *testing.T) {
	var led metrics.Ledger
	r := xrand.New(2)
	gen := Ideal{}
	obj := func(v int64) float64 { return float64(-v) } // prefers 0
	zeros := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		v, _, err := gen.Draw(&led, r, Params{Size: 12, Byz: 3, R: 4}, obj)
		if err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / draws
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("objective influenced a secure Ideal draw: P(0) = %.3f", frac)
	}
}

func TestCapturedDrawIsAdversarial(t *testing.T) {
	var led metrics.Ledger
	r := xrand.New(3)
	obj := func(v int64) float64 {
		if v == 5 {
			return 1
		}
		return 0
	}
	for _, gen := range []Generator{Ideal{}, CommitReveal{}} {
		v, sec, err := gen.Draw(&led, r, Params{Size: 10, Byz: 5, R: 8}, obj)
		if err != nil {
			t.Fatal(err)
		}
		if sec != Captured {
			t.Fatalf("%T: security = %v with 5/10", gen, sec)
		}
		if v != 5 {
			t.Errorf("%T: captured draw = %d, want adversary's 5", gen, v)
		}
	}
}

func TestCommitRevealUnbiasedWithoutObjective(t *testing.T) {
	var led metrics.Ledger
	r := xrand.New(4)
	gen := CommitReveal{}
	const rng = 6
	counts := make([]int64, rng)
	const draws = 30000
	for i := 0; i < draws; i++ {
		v, _, err := gen.Draw(&led, r, Params{Size: 15, Byz: 4, R: rng}, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	want := float64(draws) / rng
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestCommitRevealBias(t *testing.T) {
	// With b Byzantine members and an objective preferring value 0, the
	// hit rate on 0 must exceed uniform — the last-revealer advantage.
	var led metrics.Ledger
	r := xrand.New(5)
	gen := CommitReveal{}
	obj := func(v int64) float64 {
		if v == 0 {
			return 1
		}
		return 0
	}
	const rng, draws = 4, 30000
	hits := 0
	for i := 0; i < draws; i++ {
		v, sec, err := gen.Draw(&led, r, Params{Size: 16, Byz: 5, R: rng}, obj)
		if err != nil {
			t.Fatal(err)
		}
		if sec != Secure {
			t.Fatalf("unexpected security %v", sec)
		}
		if v == 0 {
			hits++
		}
	}
	frac := float64(hits) / draws
	// 5 greedy reveal/abort choices: P(miss) ~ (3/4)^6 ~ 0.18 (first state
	// plus five optional additions), so expect well above 0.25 uniform.
	if frac < 0.4 {
		t.Errorf("biased hit rate %.3f, want substantially above uniform 0.25", frac)
	}
}

func TestCommitRevealBiasGrowsWithByz(t *testing.T) {
	gen := CommitReveal{}
	obj := func(v int64) float64 {
		if v == 0 {
			return 1
		}
		return 0
	}
	rate := func(byz int) float64 {
		var led metrics.Ledger
		r := xrand.New(77)
		hits := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			v, _, err := gen.Draw(&led, r, Params{Size: 16, Byz: byz, R: 4}, obj)
			if err != nil {
				t.Fatal(err)
			}
			if v == 0 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	if r1, r4 := rate(1), rate(4); r4 <= r1 {
		t.Errorf("bias with 4 byz (%.3f) not above bias with 1 byz (%.3f)", r4, r1)
	}
}

func TestDrawCostModel(t *testing.T) {
	var led metrics.Ledger
	r := xrand.New(6)
	_, _, err := Ideal{}.Draw(&led, r, Params{Size: 10, Byz: 0, R: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 all-to-all rounds (2*90) + agreement (90).
	if got := led.Messages(); got != 270 {
		t.Errorf("draw charged %d messages, want 270", got)
	}
	if led.Rounds() != 5 {
		t.Errorf("draw charged %d rounds, want 5", led.Rounds())
	}
}

func TestParamValidation(t *testing.T) {
	var led metrics.Ledger
	r := xrand.New(7)
	bad := []Params{
		{Size: 0, Byz: 0, R: 4},
		{Size: 5, Byz: -1, R: 4},
		{Size: 5, Byz: 6, R: 4},
		{Size: 5, Byz: 0, R: 0},
	}
	for _, p := range bad {
		if _, _, err := (Ideal{}).Draw(&led, r, p, nil); err == nil {
			t.Errorf("Ideal accepted %+v", p)
		}
		if _, _, err := (CommitReveal{}).Draw(&led, r, p, nil); err == nil {
			t.Errorf("CommitReveal accepted %+v", p)
		}
	}
}
