// Package randnum implements the paper's randNum primitive: the nodes of a
// cluster agree on a common integer chosen uniformly at random from [0, r).
// The paper defers the construction to its long version and states only its
// contract: cost O(|C|^2) messages, security while the cluster holds more
// than two thirds honest nodes.
//
// Two constructions are provided:
//
//   - Ideal models an unbiasable coin (a VSS-backed construction, matching
//     the paper's security claim): while the cluster is below the agreement
//     threshold the output is exactly uniform.
//   - CommitReveal models the classical hash-commit-then-reveal coin, whose
//     known weakness is last-revealer bias: each Byzantine member may
//     withhold its reveal after seeing all honest shares, steering the
//     output among up to 2^b candidates. The adversary drives the choice
//     through an Objective. This variant exists to *measure* how much the
//     idealization matters (ablation experiment).
//
// Both charge the paper's cost model to the ledger: two all-to-all rounds
// plus one black-box intra-cluster agreement on the reveal set.
package randnum

import (
	"fmt"

	"nowover/internal/ba"
	"nowover/internal/metrics"
	"nowover/internal/xrand"
)

// Params describes the cluster executing one draw.
type Params struct {
	Size int   // cluster size |C|
	Byz  int   // Byzantine members in the cluster
	R    int64 // output range [0, R)
}

func (p Params) validate() error {
	if p.Size <= 0 {
		return fmt.Errorf("randnum: non-positive cluster size %d", p.Size)
	}
	if p.Byz < 0 || p.Byz > p.Size {
		return fmt.Errorf("randnum: byzantine count %d out of [0,%d]", p.Byz, p.Size)
	}
	if p.R <= 0 {
		return fmt.Errorf("randnum: non-positive range %d", p.R)
	}
	return nil
}

// Objective scores an outcome for the adversary; higher is better. A nil
// Objective means the adversary is indifferent.
type Objective func(int64) float64

// Security classifies the trust state of a draw.
type Security int

// Security levels, ordered from safe to broken.
const (
	// Secure: cluster > 2/3 honest; agreement holds and (for Ideal) the
	// output is uniform.
	Secure Security = iota
	// Degraded: cluster has >= 1/3 Byzantine members but still a strict
	// honest majority; agreement may fail but neighbors still hear one
	// voice. Output validity is no longer guaranteed by the paper.
	Degraded
	// Captured: Byzantine members are at least half the cluster; the
	// adversary fully controls the cluster's voice and hence the outcome.
	Captured
)

// String implements fmt.Stringer.
func (s Security) String() string {
	switch s {
	case Secure:
		return "secure"
	case Degraded:
		return "degraded"
	case Captured:
		return "captured"
	default:
		return fmt.Sprintf("security(%d)", int(s))
	}
}

// Classify maps a cluster composition to its security level.
func Classify(size, byz int) Security {
	switch {
	case 2*byz >= size:
		return Captured
	case 3*byz >= size:
		return Degraded
	default:
		return Secure
	}
}

// Generator is a cluster-level distributed randomness source.
type Generator interface {
	// Draw returns the agreed value and the security level under which it
	// was produced. A Captured draw returns an adversary-chosen value.
	Draw(led *metrics.Ledger, r *xrand.Rand, p Params, obj Objective) (int64, Security, error)
}

// chargeDraw applies the paper's cost model for one randNum invocation:
// commit round + reveal round (all-to-all within the cluster) and one
// black-box agreement on the reveal set.
func chargeDraw(led *metrics.Ledger, p Params) {
	allToAll := int64(p.Size) * int64(p.Size-1)
	led.Charge(metrics.ClassRandNum, 2*allToAll)
	led.AddRounds(2)
	ba.Decide(led, p.Size, p.Byz)
}

// Ideal is the unbiasable construction. The zero value is ready to use.
type Ideal struct{}

var _ Generator = Ideal{}

// Draw implements Generator.
func (Ideal) Draw(led *metrics.Ledger, r *xrand.Rand, p Params, obj Objective) (int64, Security, error) {
	if err := p.validate(); err != nil {
		return 0, Secure, err
	}
	chargeDraw(led, p)
	sec := Classify(p.Size, p.Byz)
	if sec == Captured {
		return adversaryChoice(r, p.R, obj), sec, nil
	}
	return int64(r.Intn(int(p.R))), sec, nil
}

// CommitReveal is the biasable construction: Byzantine members may abort
// their reveal after observing honest shares. Aborts are resolved by the
// agreed reveal set; the output is the sum modulo R of revealed shares.
// The adversary picks abort decisions greedily per member in index order,
// which lower-bounds optimal 2^b steering but captures the dominant
// last-revealer advantage.
type CommitReveal struct{}

var _ Generator = CommitReveal{}

// Draw implements Generator.
func (CommitReveal) Draw(led *metrics.Ledger, r *xrand.Rand, p Params, obj Objective) (int64, Security, error) {
	if err := p.validate(); err != nil {
		return 0, Secure, err
	}
	chargeDraw(led, p)
	sec := Classify(p.Size, p.Byz)
	if sec == Captured {
		return adversaryChoice(r, p.R, obj), sec, nil
	}

	honest := p.Size - p.Byz
	var sum int64
	for i := 0; i < honest; i++ {
		sum = (sum + int64(r.Intn(int(p.R)))) % p.R
	}
	if obj == nil || p.Byz == 0 {
		// Indifferent adversary: committed Byzantine shares are already
		// fixed and uniform, so including them keeps the output uniform.
		for i := 0; i < p.Byz; i++ {
			sum = (sum + int64(r.Intn(int(p.R)))) % p.R
		}
		return sum, sec, nil
	}
	// Greedy last-revealer steering: each Byzantine share was committed
	// (uniform), but its reveal can be withheld.
	for i := 0; i < p.Byz; i++ {
		share := int64(r.Intn(int(p.R)))
		with := (sum + share) % p.R
		if obj(with) > obj(sum) {
			sum = with
		}
	}
	return sum, sec, nil
}

// adversaryChoice returns the adversary's preferred value in [0, R): the
// argmax of obj when one exists (scanning is fine at protocol ranges, which
// are O(polylog N)), otherwise uniform.
func adversaryChoice(r *xrand.Rand, rng int64, obj Objective) int64 {
	if obj == nil {
		return int64(r.Intn(int(rng)))
	}
	best := int64(0)
	bestScore := obj(0)
	for v := int64(1); v < rng; v++ {
		if s := obj(v); s > bestScore {
			best, bestScore = v, s
		}
	}
	return best
}
