module nowover

go 1.22
