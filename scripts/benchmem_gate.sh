#!/usr/bin/env sh
# benchmem gate: runs the allocation-sensitive benchmarks with -benchmem and
# fails when any allocs/op exceeds its recorded floor. The floors below are
# the measured steady-state numbers plus just enough headroom for amortized
# structural work (arena doublings, occasional splits) — NOT targets to grow
# into. The lean-regime op hot path (plan -> admit -> apply -> tail, exchange
# ops only) is pinned at exactly 0 allocs/op: the million-node sweeps stand
# on that, so any regression here is a merge blocker, not a soft warning.
#
# Run locally:  ./scripts/benchmem_gate.sh
#
# -benchtime is iteration-pinned (not wall-clock) so the gate measures the
# same amortization window on fast and slow runners alike.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== benchmem gate: core hot paths =="
go test -run '^$' -bench 'BenchmarkExecBatchExchange|BenchmarkExecBatchHookedExchange|BenchmarkExecBatchChurn|BenchmarkSnapshotClusterInto' \
	-benchmem -benchtime 50x ./internal/core/ | tee -a "$out"

echo "== benchmem gate: sharded world batch (lean regime) =="
go test -run '^$' -bench 'BenchmarkShardedWorldBatch/lean' \
	-benchmem -benchtime 50x . | tee -a "$out"

# Floors: "<benchmark-prefix> <max allocs/op>". A line matches the longest
# applicable prefix listed here; benchmarks without a floor are informational.
floors='
BenchmarkExecBatchExchange 0
BenchmarkExecBatchHookedExchange 0
BenchmarkExecBatchChurn 8
BenchmarkSnapshotClusterInto 0
BenchmarkShardedWorldBatch/lean/ 10
'

fail=0
for floor in $(printf '%s' "$floors" | awk 'NF {print $1 "=" $2}'); do
	prefix=${floor%%=*}
	max=${floor##*=}
	matched=0
	while IFS= read -r line; do
		case $line in
		"$prefix"*" allocs/op"*) ;;
		*) continue ;;
		esac
		matched=1
		allocs=$(printf '%s\n' "$line" | awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
		name=$(printf '%s\n' "$line" | awk '{print $1}')
		if [ "$allocs" -gt "$max" ]; then
			echo "FAIL: $name allocated $allocs allocs/op, floor is $max" >&2
			fail=1
		else
			echo "ok:   $name $allocs allocs/op (floor $max)"
		fi
	done <"$out"
	if [ "$matched" -eq 0 ]; then
		echo "FAIL: no benchmark matched floor prefix $prefix (renamed? update the floors table)" >&2
		fail=1
	fi
done

exit "$fail"
