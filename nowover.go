// Package nowover is a Go implementation of NOW (Neighbors On Watch) and
// OVER (Over-Valued Erdos-Renyi graph) from Guerraoui, Huc and Kermarrec,
// "Highly Dynamic Distributed Computing with Byzantine Failures",
// PODC 2013: Byzantine-resilient clustering for networks whose size varies
// polynomially (sqrt(N) <= n <= N) under an adversary controlling up to a
// 1/3 - eps fraction of the nodes.
//
// The package maintains a partition of nodes into clusters of size
// Theta(log N), each more than two thirds honest w.h.p., connected by a
// self-repairing expander overlay. On top of the clustering it provides
// the application services the paper derives: O~(n) broadcast, polylog
// uniform sampling, aggregation and network-wide agreement.
//
// Quick start:
//
//	cfg := nowover.DefaultConfig(1 << 12) // N = 4096 name space
//	sys, err := nowover.New(cfg)
//	if err != nil { ... }
//	// 20% of the initial 1024 nodes are adversary-controlled.
//	err = sys.Bootstrap(1024, nowover.FractionCorrupt(1024, 0.20))
//	id, err := sys.JoinAuto(false) // an honest node arrives
//	err = sys.Leave(id)            // and departs
//	audit := sys.Audit()           // invariant check (Theorem 3's quantities)
//
// The heavier machinery — churn simulation (Simulate), adversary
// strategies, the experiment harness regenerating every claim-table of
// the paper — is exposed through type aliases onto the internal packages;
// see the subdirectories of internal/ for the full documentation, and
// DESIGN.md / EXPERIMENTS.md for the reproduction map.
package nowover

import (
	"fmt"

	"nowover/internal/adversary"
	"nowover/internal/apps"
	"nowover/internal/core"
	"nowover/internal/experiments"
	"nowover/internal/ids"
	"nowover/internal/metrics"
	"nowover/internal/over"
	"nowover/internal/randnum"
	"nowover/internal/sim"
	"nowover/internal/workload"
	"nowover/internal/xrand"
)

// Re-exported identifier types.
type (
	// NodeID identifies a node (unforgeable per the model).
	NodeID = ids.NodeID
	// ClusterID identifies an overlay vertex.
	ClusterID = ids.ClusterID
)

// Protocol configuration and state types.
type (
	// Config parameterizes the protocol; see DefaultConfig.
	Config = core.Config
	// MergeStrategy selects among the paper's merge readings.
	MergeStrategy = core.MergeStrategy
	// Audit is the invariant snapshot (Theorem 3's quantities).
	Audit = core.Audit
	// Stats holds lifetime counters and security high-water marks.
	Stats = core.Stats
	// OverlayHealth is the OVER structural audit (Properties 1-2).
	OverlayHealth = over.Health
	// Security classifies cluster trust (Secure / Degraded / Captured).
	Security = randnum.Security
	// Cost is a message/round consumption record.
	Cost = metrics.Cost
)

// Streaming statistics types: the fixed-memory accumulators behind
// SimConfig.ExactSamples=false (the default), which keep wide-range -full
// sweeps (N up to 2^16 and beyond) in memory. All of them Merge
// deterministically in submission order, extending the op scheduler's
// op-order-merge discipline from ledgers to whole distributions.
type (
	// Digest is a fixed-memory, deterministically mergeable quantile
	// sketch (t-digest-style centroids; exact count/mean/min/max).
	Digest = metrics.Digest
	// Hist is a bounded log-scale histogram (exactly mergeable; used for
	// per-traffic-class message counts).
	Hist = metrics.Hist
	// CostDist is one cost series summarized exactly (retained history)
	// or by sketch, per SimConfig.ExactSamples.
	CostDist = metrics.Dist
	// SimOpCosts is a simulation's per-operation cost distributions (join/
	// leave messages and rounds, plus per-class message histograms).
	SimOpCosts = sim.OpCosts
	// TrafficClass labels a category of protocol traffic (walk, exchange,
	// cascade, ...).
	TrafficClass = metrics.Class
)

// NumTrafficClasses is the number of traffic classes (SimOpCosts.ClassMsgs
// has one histogram per class).
const NumTrafficClasses = metrics.NumClasses

// NewSimOpCosts returns an empty per-operation cost accumulator in the
// given mode, for aggregating OpCosts across runs via Merge (merge in a
// fixed run order to keep aggregates deterministic at any parallelism).
func NewSimOpCosts(exact bool) SimOpCosts { return sim.NewOpCosts(exact) }

// Merge strategies (see DESIGN.md on the paper's ambiguity).
const (
	MergeAbsorbRandom = core.MergeAbsorbRandom
	MergeRejoinAll    = core.MergeRejoinAll
)

// Op scheduler types: batches of operations executed concurrently inside
// one world when its state is sharded (Config.Shards > 1, or
// SetWorldShards). See core.World.ExecBatch.
type (
	// WorldOp is one schedulable operation (join / leave / exchange).
	WorldOp = core.Op
	// WorldOpResult reports a scheduled operation's outcome.
	WorldOpResult = core.OpResult
	// WorldOpKind discriminates schedulable operations.
	WorldOpKind = core.OpKind
)

// Schedulable operation kinds.
const (
	WorldOpJoin     = core.OpJoin
	WorldOpLeave    = core.OpLeave
	WorldOpExchange = core.OpExchange
)

// Security levels.
const (
	Secure   = randnum.Secure
	Degraded = randnum.Degraded
	Captured = randnum.Captured
)

// Simulation layer aliases.
type (
	// SimConfig assembles a full churn simulation.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result
	// Schedule prescribes network size over time.
	Schedule = workload.Schedule
	// Strategy is an adversary churn strategy.
	Strategy = adversary.Strategy
)

// Workload schedules.
type (
	// Steady holds the size constant (pure churn).
	Steady = workload.Steady
	// Linear ramps the size (polynomial growth/shrink).
	Linear = workload.Linear
	// Oscillate swings between two sizes.
	Oscillate = workload.Oscillate
	// FlashCrowd models a join storm.
	FlashCrowd = workload.FlashCrowd
)

// Adversary strategies.
type (
	// RandomChurn is benign dynamics at a tau corruption budget.
	RandomChurn = adversary.RandomChurn
	// JoinLeaveAttack cycles Byzantine nodes at a target cluster.
	JoinLeaveAttack = adversary.JoinLeaveAttack
	// DOSAttack evicts honest members of the target cluster.
	DOSAttack = adversary.DOSAttack
	// Budget enforces the tau corruption bound.
	Budget = adversary.Budget
)

// Adversary hook contract (see core hooks.go): plan-phase hook decisions
// are pure snapshot reads, hook bookkeeping folds through the serial
// batch lifecycle — which is what lets hooked worlds (SimConfig with
// InstallHijacker, World.SetHijacker/SetSteerHook) plan op batches at
// full parallelism with byte-identical results at any shard count.
type (
	// BatchHook is the serial per-batch lifecycle of an adversary hook.
	BatchHook = core.BatchHook
	// Steerer scores clusters for last-revealer bias (SetSteerHook).
	Steerer = core.Steerer
	// CapturedHijacker redirects walks transiting captured clusters to
	// the strategy's snapshot-scoped target fixation.
	CapturedHijacker = adversary.CapturedHijacker
	// TargetProvider is the plan/commit-scoped target contract attack
	// strategies expose (JoinLeaveAttack implements it).
	TargetProvider = adversary.TargetProvider
)

// Experiment harness aliases (regenerates every claim-table; see
// EXPERIMENTS.md).
type (
	// ExperimentTable is a paper-style result table.
	ExperimentTable = experiments.Table
	// ExperimentScale sizes an experiment run.
	ExperimentScale = experiments.Scale
)

// DefaultConfig returns paper-faithful parameters for name-space bound N.
func DefaultConfig(maxN int) Config { return core.DefaultConfig(maxN) }

// Experiments returns the experiment registry (E1-E12 + ablations).
func Experiments() map[string]func(ExperimentScale) (*ExperimentTable, error) {
	reg := experiments.Registry()
	out := make(map[string]func(ExperimentScale) (*ExperimentTable, error), len(reg))
	for id, run := range reg {
		out[id] = run
	}
	return out
}

// ExperimentIDs returns the registry keys in canonical order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiments executes the named experiments concurrently on the
// worker pool — fanning across experiments on top of each experiment's
// own cell fan-out — and returns their tables positionally aligned with
// ids. Tables are byte-identical to a serial sweep at any parallelism.
func RunExperiments(ids []string, s ExperimentScale) ([]*ExperimentTable, error) {
	return experiments.RunMany(ids, s)
}

// SetParallelism fixes the experiment worker-pool size: 1 forces serial
// execution, p > 1 uses exactly p workers, p <= 0 restores the default
// (NOWBENCH_PARALLEL, then GOMAXPROCS). Output tables are byte-identical
// at any setting; only wall-clock changes.
func SetParallelism(p int) { experiments.SetParallelism(p) }

// Parallelism reports the experiment worker-pool size currently in
// effect.
func Parallelism() int { return experiments.Parallelism() }

// ForEachRun fans count independent runs across the experiment worker
// pool (body receives the run index). Callers must make each run
// self-contained — own world, own seed — and collect results into
// index-addressed storage.
func ForEachRun(count int, body func(i int) error) error {
	return experiments.ForEach(count, body)
}

// SetWorldShards fixes the default number of lockable state segments for
// worlds whose Config.Shards is zero: 1 (the default) keeps the fully
// serial layout, n > 1 lets one world execute non-conflicting operations
// concurrently via ExecBatch / SimConfig.OpsPerStep. Results are
// deterministic in the seeds at ANY shard count; only wall-clock changes.
// Worlds created before the call are unaffected.
func SetWorldShards(n int) { core.SetDefaultShards(n) }

// WorldShards reports the default shard count currently in effect.
func WorldShards() int { return core.DefaultShards() }

// SetGroupedCascade fixes the default leave-cascade mode for
// configurations built by DefaultConfig: true batches each leave's
// cascade into one grouped shuffle round over the receiver set (one swap
// per receiver, charged to the cascade ledger class), shrinking the
// leave write footprint from ~|C|^2 to ~|C| clusters; false (the
// default) keeps Algorithm 2's full exchange per receiver. It is the
// harness-wide knob behind the nowbench/nowsim -grouped-cascade flags;
// explicit Config values are unaffected.
func SetGroupedCascade(on bool) { core.SetDefaultGroupedCascade(on) }

// GroupedCascade reports the default leave-cascade mode currently in
// effect.
func GroupedCascade() bool { return core.DefaultGroupedCascade() }

// OpenCheckpointJournal opens (creating or resuming) a per-cell result
// journal and installs it for subsequent experiment runs: completed sweep
// cells are appended as JSON lines and served from the journal on the
// next run, so an interrupted long sweep resumes from its last completed
// cell with byte-identical tables. fingerprint must capture the run
// configuration (see cmd/nowbench); a journal recorded under a different
// fingerprint is refused. nowMillis (optional, may be nil) supplies
// wall-clock timing for benchmark trajectories.
func OpenCheckpointJournal(path, fingerprint string, nowMillis func() int64) error {
	return experiments.OpenJournal(path, fingerprint, nowMillis)
}

// CloseCheckpointJournal uninstalls and closes the active journal.
func CloseCheckpointJournal() error { return experiments.CloseJournal() }

// BenchPoint is one sweep cell's wall-clock timing.
type BenchPoint = experiments.BenchPoint

// BenchTrajectory reports the active journal's per-cell timings (keys
// sorted) for BENCH_*.json emission.
func BenchTrajectory() ([]BenchPoint, int64, bool) { return experiments.BenchTrajectory() }

// QuickScale is the CI-sized experiment scale.
func QuickScale() ExperimentScale { return experiments.QuickScale() }

// FullScale is the long-running experiment scale.
func FullScale() ExperimentScale { return experiments.FullScale() }

// Simulate builds and runs a churn simulation in one call.
func Simulate(cfg SimConfig) (*SimResult, error) {
	runner, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return runner.Run()
}

// NewSimulation builds a runner for multi-phase simulations (use
// Continue for chained schedules).
func NewSimulation(cfg SimConfig) (*sim.Runner, error) { return sim.New(cfg) }

// FractionCorrupt returns a Bootstrap corruption function for an initial
// population of n0 nodes that hands the adversary floor(tau*n0) of them —
// its full budget, exercised up front as the model allows. (The random
// partition scatters the corrupted slots uniformly, so corrupting a
// prefix is equivalent to corrupting any fixed subset.)
func FractionCorrupt(n0 int, tau float64) func(slot int) bool {
	budget := int(tau * float64(n0))
	return func(slot int) bool { return slot < budget }
}

// System is the façade over a live NOW instance: protocol operations,
// audits and the application services, all on one world.
type System struct {
	world *core.World
	n0    int
}

// New builds an un-bootstrapped system.
func New(cfg Config) (*System, error) {
	w, err := core.NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return &System{world: w}, nil
}

// Bootstrap runs the initialization phase at n0 nodes; corrupt decides
// which initial slots the adversary controls (nil for none).
func (s *System) Bootstrap(n0 int, corrupt func(slot int) bool) error {
	s.n0 = n0
	return s.world.Bootstrap(n0, corrupt)
}

// Join executes the Join operation with an explicit contact cluster.
func (s *System) Join(byzantine bool, contact ClusterID) (NodeID, error) {
	return s.world.Join(byzantine, contact)
}

// JoinAuto executes a Join whose contact cluster is uniform (honest
// arrival).
func (s *System) JoinAuto(byzantine bool) (NodeID, error) {
	return s.world.JoinAuto(byzantine)
}

// Leave executes the Leave operation for node x.
func (s *System) Leave(x NodeID) error { return s.world.Leave(x) }

// ExecBatch executes a batch of operations — one time step with multiple
// simultaneous arrivals and departures — through the world's op scheduler.
// On a sharded world (Config.Shards > 1) operations with disjoint cluster
// footprints run concurrently; results are deterministic in the seed
// regardless of the shard count.
func (s *System) ExecBatch(ops []WorldOp) []WorldOpResult { return s.world.ExecBatch(ops) }

// CheckInvariants verifies the global consistency invariants the protocol
// maintains (membership partition, Byzantine counters, size bounds,
// overlay/partition correspondence); nil means all hold.
func (s *System) CheckInvariants() error { return core.CheckInvariants(s.world) }

// Audit returns the invariant snapshot.
func (s *System) Audit() Audit { return s.world.Audit() }

// Stats returns lifetime counters.
func (s *System) Stats() Stats { return s.world.Stats() }

// CheckOverlay runs the OVER structural audit.
func (s *System) CheckOverlay() OverlayHealth { return s.world.OverlayHealth(60, 40) }

// NumNodes returns the live population.
func (s *System) NumNodes() int { return s.world.NumNodes() }

// NumClusters returns the number of clusters.
func (s *System) NumClusters() int { return s.world.NumClusters() }

// Clusters lists the cluster IDs.
func (s *System) Clusters() []ClusterID { return s.world.Clusters() }

// ClusterOf locates a node.
func (s *System) ClusterOf(x NodeID) (ClusterID, bool) { return s.world.ClusterOf(x) }

// Members returns a cluster's member snapshot.
func (s *System) Members(c ClusterID) []NodeID { return s.world.Members(c) }

// IsByzantine reports a node's allegiance (omniscient view, for
// evaluation only — protocol logic never reads it).
func (s *System) IsByzantine(x NodeID) bool { return s.world.IsByzantine(x) }

// TotalCost returns all messages/rounds consumed so far.
func (s *System) TotalCost() Cost {
	return s.world.Ledger().Since(metrics.Snapshot{})
}

// World exposes the underlying protocol state for advanced use (the
// entire internal API: ForceExchange, SetCorrupted, Walker, ...).
func (s *System) World() *core.World { return s.world }

// Broadcast delivers a message from a source cluster to every node and
// reports the cost against the O(n^2) flooding reference.
func (s *System) Broadcast(source ClusterID) (apps.BroadcastReport, error) {
	return apps.Broadcast(s.world.Ledger(), s.world, source)
}

// Sample draws one ~uniform node via randCl, from a random contact.
func (s *System) Sample() (apps.SampleReport, error) {
	sampler, err := apps.NewSampler(s.world, s.world.Walker(), s.world.Generator(), s.world.MemberAt)
	if err != nil {
		return apps.SampleReport{}, err
	}
	contact, ok := s.world.RandomCluster(s.world.Rng())
	if !ok {
		return apps.SampleReport{}, fmt.Errorf("nowover: no clusters")
	}
	return sampler.Sample(s.world.Ledger(), s.world.Rng(), contact)
}

// Aggregate sums value(cluster, memberIndex) over every node via
// convergecast on the overlay tree.
func (s *System) Aggregate(root ClusterID, value func(ClusterID, int) int64) (apps.AggregateReport, error) {
	return apps.Aggregate(s.world.Ledger(), s.world, root, value)
}

// Agree drives a network-wide binary agreement on per-cluster proposals.
func (s *System) Agree(root ClusterID, proposal func(ClusterID) int64) (apps.AgreementReport, error) {
	return apps.Agree(s.world.Ledger(), s.world, root, proposal)
}

// Rand returns a deterministic random stream seeded from the system's
// configuration, for callers who need reproducible auxiliary randomness.
func (s *System) Rand() *xrand.Rand { return s.world.Rng() }

// Report types re-exported for the application services.
type (
	// BroadcastReport summarizes a clustered broadcast.
	BroadcastReport = apps.BroadcastReport
	// SampleReport summarizes one uniform node sample.
	SampleReport = apps.SampleReport
	// AggregateReport summarizes a network aggregation.
	AggregateReport = apps.AggregateReport
	// AgreementReport summarizes a network-wide agreement.
	AgreementReport = apps.AgreementReport
)
