// Benchmark harness: one benchmark per reproduction experiment (the
// paper's claim-tables E1-E12 and ablations A1-A4; see DESIGN.md section 4
// for the claim index), plus micro-benchmarks of the protocol primitives.
//
// Regenerate everything:
//
//	go test -bench=. -benchmem
//	go run ./cmd/nowbench            # the same tables, rendered
//	go run ./cmd/nowbench -full      # the long-running sweep
package nowover_test

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"nowover"
	"nowover/internal/core"
	"nowover/internal/xrand"
)

// benchScale sizes experiment benchmarks: smaller than QuickScale so the
// full `go test -bench=.` sweep stays in minutes.
func benchScale() nowover.ExperimentScale {
	return nowover.ExperimentScale{
		Ns:        []int{256, 512, 1024},
		OpsFactor: 0.5,
		Trials:    2,
		Walks:     200,
		Seed:      1,
	}
}

// runExperiment executes one experiment table per benchmark iteration and
// renders it once (to stderr on -v style runs is noise; we keep the table
// output only when NOWOVER_BENCH_TABLES=1). Cells fan out across the
// experiment worker pool (NOWBENCH_PARALLEL overrides the GOMAXPROCS
// default); tables are byte-identical at any parallelism.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment benchmark skipped in -short mode")
	}
	run, ok := nowover.Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	scale := benchScale()
	var out io.Writer = io.Discard
	if os.Getenv("NOWOVER_BENCH_TABLES") == "1" {
		out = os.Stdout
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := run(scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := table.Render(out); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(table.Rows)), "rows")
		}
	}
}

func BenchmarkE1HonestyUnderChurn(b *testing.B)   { runExperiment(b, "E1") }
func BenchmarkE2PostExchangeTail(b *testing.B)    { runExperiment(b, "E2") }
func BenchmarkE3DriftRecovery(b *testing.B)       { runExperiment(b, "E3") }
func BenchmarkE4RandClCost(b *testing.B)          { runExperiment(b, "E4") }
func BenchmarkE5ExchangeCost(b *testing.B)        { runExperiment(b, "E5") }
func BenchmarkE6OperationCost(b *testing.B)       { runExperiment(b, "E6") }
func BenchmarkE7WalkUniformity(b *testing.B)      { runExperiment(b, "E7") }
func BenchmarkE8OverlayHealth(b *testing.B)       { runExperiment(b, "E8") }
func BenchmarkE9InitCost(b *testing.B)            { runExperiment(b, "E9") }
func BenchmarkE10Applications(b *testing.B)       { runExperiment(b, "E10") }
func BenchmarkE11Baselines(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12SecurityMargins(b *testing.B)    { runExperiment(b, "E12") }
func BenchmarkAblationMergeStrategy(b *testing.B) { runExperiment(b, "A1") }
func BenchmarkAblationLeaveCascade(b *testing.B)  { runExperiment(b, "A2") }
func BenchmarkAblationDegreeRepair(b *testing.B)  { runExperiment(b, "A3") }
func BenchmarkAblationCommitReveal(b *testing.B)  { runExperiment(b, "A4") }

// BenchmarkExperimentSuite measures the wall-clock of a fixed experiment
// subset end to end, serial vs parallel — the headline number for the
// worker-pool runner. The subset (one churn sweep, one walk sweep, one
// grid sweep) is cell-rich so the pool has work to spread.
func BenchmarkExperimentSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("experiment benchmark skipped in -short mode")
	}
	subset := []string{"E1", "E4", "E12"}
	scale := benchScale()
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = auto: NOWBENCH_PARALLEL, then GOMAXPROCS
	} {
		b.Run(mode.name, func(b *testing.B) {
			nowover.SetParallelism(mode.workers)
			defer nowover.SetParallelism(0)
			b.ReportMetric(float64(nowover.Parallelism()), "workers")
			reg := nowover.Experiments()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range subset {
					if _, err := reg[id](scale); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- primitive micro-benchmarks ---

func benchSystem(b *testing.B, maxN, n0 int, tau float64) *nowover.System {
	b.Helper()
	cfg := nowover.DefaultConfig(maxN)
	cfg.Seed = 1
	sys, err := nowover.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Bootstrap(n0, nowover.FractionCorrupt(n0, tau)); err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkJoinOperation(b *testing.B) {
	for _, maxN := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("N=%d", maxN), func(b *testing.B) {
			sys := benchSystem(b, maxN, maxN/4, 0.15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.JoinAuto(false); err != nil {
					b.Fatal(err)
				}
				if sys.NumNodes() >= maxN {
					b.StopTimer()
					sys = benchSystem(b, maxN, maxN/4, 0.15)
					b.StartTimer()
				}
			}
		})
	}
}

func BenchmarkLeaveOperation(b *testing.B) {
	for _, maxN := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("N=%d", maxN), func(b *testing.B) {
			sys := benchSystem(b, maxN, maxN/2, 0.15)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x, err := sys.JoinAuto(false) // keep population steady
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := sys.Leave(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRandClWalk(b *testing.B) {
	for _, maxN := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("N=%d", maxN), func(b *testing.B) {
			sys := benchSystem(b, maxN, maxN/2, 0.15)
			w := sys.World()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start, _ := w.RandomCluster(w.Rng())
				if _, err := w.Walker().Biased(w.Ledger(), w.Rng(), start); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExchangePrimitive(b *testing.B) {
	for _, maxN := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("N=%d", maxN), func(b *testing.B) {
			sys := benchSystem(b, maxN, maxN/2, 0.15)
			w := sys.World()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, _ := w.RandomCluster(w.Rng())
				if err := w.ForceExchange(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUniformSample(b *testing.B) {
	sys := benchSystem(b, 4096, 2048, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcast(b *testing.B) {
	for _, n0 := range []int{512, 2048} {
		b.Run("n0="+strconv.Itoa(n0), func(b *testing.B) {
			sys := benchSystem(b, 4096, n0, 0.15)
			src := sys.Clusters()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Broadcast(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOverlayHealthAudit(b *testing.B) {
	sys := benchSystem(b, 4096, 2048, 0.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := sys.CheckOverlay()
		if !h.Connected {
			b.Fatal("overlay disconnected")
		}
	}
}

func BenchmarkBootstrap(b *testing.B) {
	for _, n0 := range []int{512, 2048} {
		b.Run("n0="+strconv.Itoa(n0), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := nowover.DefaultConfig(4096)
				cfg.Seed = uint64(i + 1)
				sys, err := nowover.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Bootstrap(n0, nowover.FractionCorrupt(n0, 0.2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulationStep(b *testing.B) {
	cfg := nowover.SimConfig{
		Core:        nowover.DefaultConfig(4096),
		InitialSize: 1024,
		Tau:         0.15,
		Steps:       0,
		Seed:        1,
	}
	cfg.Core.Seed = 1
	runner, err := nowover.NewSimulation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := runner.Continue(nil, b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedWorldBatch measures the op scheduler's throughput on ONE
// world at increasing shard counts: every iteration executes a 16-op batch
// of interleaved joins and leaves (steady population) through ExecBatch.
// At shards-1 the scheduler runs fully serially; higher shard counts admit
// operations with disjoint write footprints for concurrent planning and
// apply, so the serial-vs-sharded delta on a multi-core runner is the
// intra-world speedup (a 1-core runner shows only the coordination
// overhead, which is also worth recording). Results are identical at
// every shard count; only wall-clock changes.
//
// Two write-density regimes are measured, because admission is bounded by
// how many clusters one operation mutates:
//
//   - "full": paper-faithful shuffling (exchange on join/leave plus the
//     leave cascade). Each op writes ~|C| clusters, |C|^2 with the
//     cascade, so at simulation scales most batches serialize on the tail
//     and the %deferred metric stays high. Footprints shrink relative to
//     the overlay as n grows: write disjointness needs #clusters >>
//     (K log n)^2, i.e. the production regime (n ~ 10^6) the ROADMAP
//     targets.
//   - "lean": the shuffle-less ablation (no exchanges). Ops write only
//     their target cluster, batches admit almost fully, and the benchmark
//     isolates the scheduler's own scalability from the protocol's write
//     density.
//   - "cascade" / "cascade-grouped": the cascade regime — full-density
//     shuffling on a cluster-rich overlay (K=1/3, so n=1024 spreads over
//     ~250 small clusters instead of ~42 large ones: the #clusters >>
//     footprint admission regime that production scales reach with
//     paper-K), measuring pure 8-leave batches (joins refill the
//     population off-timer) because the leave cascade is exactly what the
//     two sub-regimes differ in. "cascade" runs Algorithm 2's
//     per-receiver cascade, whose ~|C|^2 leave footprint keeps most of a
//     batch on the serial tail; "cascade-grouped" flips
//     Config.GroupedCascade, confining each leave to ~|C| writes. The
//     %deferred delta between the two sub-benchmarks IS the
//     scheduler-admission payoff of grouped cascades (recorded: 74.6% ->
//     28.3% deferred, a 2.6x drop, with ~5x less batch wall-clock even
//     on one core; at 16-op batches the drop is 84% -> 38%, 2.2x).
func BenchmarkShardedWorldBatch(b *testing.B) {
	if testing.Short() {
		b.Skip("sharded world benchmark skipped in -short mode")
	}
	for _, density := range []string{"full", "lean", "cascade", "cascade-grouped"} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards-%d", density, shards), func(b *testing.B) {
				cfg := nowover.DefaultConfig(1 << 12)
				cfg.Seed = 1
				cfg.Shards = shards
				cascadeRegime := false
				switch density {
				case "lean":
					cfg.ExchangeOnJoin = false
					cfg.ExchangeOnLeave = false
					cfg.LeaveCascade = false
				case "cascade", "cascade-grouped":
					cascadeRegime = true
					cfg.K = 1.0 / 3
					cfg.GroupedCascade = density == "cascade-grouped"
				}
				sys, err := nowover.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Bootstrap(1024, nowover.FractionCorrupt(1024, 0.15)); err != nil {
					b.Fatal(err)
				}
				w := sys.World()
				r := xrand.New(7)
				batchSize := 16
				if cascadeRegime {
					batchSize = 8
				}
				deferred := 0
				total := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ops := make([]nowover.WorldOp, 0, batchSize)
					used := make(map[nowover.NodeID]bool, batchSize/2)
					for len(ops) < batchSize {
						if !cascadeRegime && len(ops)%2 == 0 {
							ops = append(ops, nowover.WorldOp{Kind: nowover.WorldOpJoin, Byz: r.Bool(0.15)})
							continue
						}
						x, ok := w.RandomNode(r)
						if !ok || used[x] {
							continue
						}
						used[x] = true
						ops = append(ops, nowover.WorldOp{Kind: nowover.WorldOpLeave, Victim: x})
					}
					for _, rr := range sys.ExecBatch(ops) {
						total++
						if rr.Deferred {
							deferred++
						}
						if rr.Err != nil && !core.IsUnknownNode(rr.Err) {
							b.Fatal(rr.Err)
						}
					}
					if cascadeRegime {
						// Refill the departed population outside the timer so
						// every measured batch sees n ~ 1024 and the deferred
						// metric reflects the cascade alone.
						b.StopTimer()
						for j := 0; j < batchSize; j++ {
							if _, err := sys.JoinAuto(r.Bool(0.15)); err != nil {
								b.Fatal(err)
							}
						}
						b.StartTimer()
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(batchSize), "ops/batch")
				if total > 0 {
					b.ReportMetric(100*float64(deferred)/float64(total), "%deferred")
				}
			})
		}
	}
}
